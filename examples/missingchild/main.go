// Missing child: the paper's headline use case (Section II-B). A crowd of
// tourists photographs a scenic spot; some shots incidentally contain a
// child who is later reported missing. Given a fresh photo of the child at
// a known location, FAST narrows the 60-million-image haystack to the
// correlated group in near real time; the group is then post-verified (by
// the parents, in the paper; against generator ground truth here).
//
//	go run ./examples/missingchild
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/metrics"
	"github.com/fastrepro/fast/internal/workload"
)

func main() {
	log.SetFlags(0)

	// A busy holiday at a popular park: 12 landmarks, 400 crowd photos,
	// 6 children moving through the crowd (30% of photos catch someone).
	fmt.Println("generating the crowd corpus...")
	ds, err := workload.Generate(workload.Spec{
		Name:        "park",
		Scenes:      12,
		Photos:      400,
		Subjects:    6,
		SubjectRate: 0.3,
		Resolution:  64,
		Seed:        2024,
		SceneBase:   3000,
	})
	if err != nil {
		log.Fatalf("generating corpus: %v", err)
	}

	engine := core.NewEngine(core.Config{})
	t0 := time.Now()
	if _, err := engine.Build(ds.Photos); err != nil {
		log.Fatalf("indexing: %v", err)
	}
	fmt.Printf("indexed %d crowd photos in %v (index: %.1f KB)\n\n",
		len(ds.Photos), time.Since(t0).Round(time.Millisecond),
		float64(engine.IndexBytes())/1024)

	// The parents report the child missing and provide a photo taken at
	// the park entrance minutes earlier (a query probe containing the
	// child at a known scene).
	qs, err := ds.Queries(20, 99)
	if err != nil {
		log.Fatalf("queries: %v", err)
	}
	var q workload.Query
	found := false
	for _, cand := range qs {
		if len(cand.Subjects) > 0 {
			q = cand
			found = true
			break
		}
	}
	if !found {
		log.Fatal("no query with a subject; increase SubjectRate")
	}
	child := q.Subjects[0]
	// The clue search is local: the probe says where the child was last
	// seen, so the photos that can contain clues are the ones of that
	// scene. (Appearances at other landmarks surface when the parents
	// repeat the query with probes from those locations.)
	localRelevant := make(map[uint64]bool)
	for id := range q.SubjectRelevant[child] {
		if p := ds.PhotoByID(id); p != nil && p.Scene == q.Scene {
			localRelevant[id] = true
		}
	}
	fmt.Printf("child %d reported missing; probe photo from scene %d\n", child, q.Scene)
	fmt.Printf("the child appears in %d corpus photos overall, %d at this scene (ground truth)\n\n",
		len(q.SubjectRelevant[child]), len(localRelevant))

	// FAST narrows the search: the probe's correlated group.
	t1 := time.Now()
	results, err := engine.Query(q.Probe, 80)
	if err != nil {
		log.Fatalf("query: %v", err)
	}
	queryTime := time.Since(t1)

	// Post-verification: of the retrieved group, which photos actually
	// contain the child? (The paper hands this to the parents; the
	// generator's ground truth stands in for them.)
	ids := make([]uint64, len(results))
	clues := 0
	for i, r := range results {
		ids[i] = r.ID
		if p := ds.PhotoByID(r.ID); p != nil && p.ContainsSubject(child) {
			clues++
		}
	}
	ret := metrics.ScoreRetrieval(ids, localRelevant)

	fmt.Printf("FAST returned %d candidate photos in %v (%.1f%% of the corpus)\n",
		len(results), queryTime.Round(time.Microsecond),
		100*float64(len(results))/float64(len(ds.Photos)))
	fmt.Printf("post-verification finds %d photos showing the child\n", clues)
	fmt.Printf("local subject recall %.0f%% at %.1fx scope reduction\n\n",
		100*ret.Recall(), float64(len(ds.Photos))/float64(max(len(results), 1)))

	fmt.Println("clue timeline (photos containing the child, by capture time):")
	shown := 0
	for _, r := range results {
		p := ds.PhotoByID(r.ID)
		if p == nil || !p.ContainsSubject(child) {
			continue
		}
		fmt.Printf("  %s  photo %-9d scene %-5d score %.3f\n",
			p.Taken.Format("Jan 2 15:04"), p.ID, p.Scene, r.Score)
		shown++
		if shown >= 8 {
			break
		}
	}
	fmt.Println("\neach clue places the child at a known landmark at a known time —")
	fmt.Println("the correlated segments of surveillance video to check first.")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
