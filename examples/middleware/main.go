// Middleware: FAST as storage-system middleware. The paper positions FAST
// as "a system middleware that can run on existing systems ... by using the
// general file system interface"; this example exercises that lifecycle:
// build an index, persist it through the file system, restore it in a fresh
// process state, keep serving queries, and apply retention (deletion +
// compaction) — all without re-extracting a single feature.
//
//	go run ./examples/middleware
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/workload"
)

func main() {
	log.SetFlags(0)

	ds, err := workload.Generate(workload.Spec{
		Name:       "middleware",
		Scenes:     6,
		Photos:     180,
		Resolution: 64,
		Seed:       3,
		SceneBase:  4500,
	})
	if err != nil {
		log.Fatalf("generating corpus: %v", err)
	}

	// 1. Build (in parallel) and snapshot to disk.
	engine := core.NewEngine(core.Config{})
	t0 := time.Now()
	if _, err := engine.BuildParallel(ds.Photos, 0); err != nil {
		log.Fatalf("building: %v", err)
	}
	buildTime := time.Since(t0)

	path := filepath.Join(os.TempDir(), "fast-middleware.idx")
	f, err := os.Create(path)
	if err != nil {
		log.Fatalf("creating snapshot: %v", err)
	}
	n, err := engine.WriteTo(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatalf("writing snapshot: %v", err)
	}
	fmt.Printf("built %d-photo index in %v; snapshot %s (%.1f KB, %.0f B/photo)\n",
		engine.Len(), buildTime.Round(time.Millisecond), path, float64(n)/1024,
		float64(n)/float64(engine.Len()))

	// 2. A "new process" restores the snapshot: no feature re-extraction.
	r, err := os.Open(path)
	if err != nil {
		log.Fatalf("opening snapshot: %v", err)
	}
	t1 := time.Now()
	restored, err := core.ReadEngine(r)
	if cerr := r.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatalf("restoring: %v", err)
	}
	fmt.Printf("restored %d photos in %v (%.0fx faster than building)\n",
		restored.Len(), time.Since(t1).Round(time.Microsecond),
		float64(buildTime)/float64(time.Since(t1)))

	// 3. The restored index serves queries immediately.
	qs, err := ds.Queries(3, 9)
	if err != nil {
		log.Fatalf("queries: %v", err)
	}
	for i, q := range qs {
		t2 := time.Now()
		res, err := restored.Query(q.Probe, 15)
		if err != nil {
			log.Fatalf("query: %v", err)
		}
		hits := 0
		for _, r := range res {
			if q.Relevant[r.ID] {
				hits++
			}
		}
		fmt.Printf("query %d: %d results (%d correlated) in %v\n",
			i+1, len(res), hits, time.Since(t2).Round(time.Microsecond))
	}

	// 4. Retention: the oldest 30 photos age out; compaction reclaims the
	//    tombstones.
	for _, p := range ds.Photos[:30] {
		if err := restored.Delete(p.ID); err != nil {
			log.Fatalf("delete: %v", err)
		}
	}
	if err := restored.Compact(); err != nil {
		log.Fatalf("compact: %v", err)
	}
	fmt.Printf("\nretention removed 30 photos; index now %d photos, %.1f KB resident\n",
		restored.Len(), float64(restored.IndexBytes())/1024)

	if err := os.Remove(path); err != nil {
		log.Fatalf("cleanup: %v", err)
	}
	fmt.Println("snapshot removed; lifecycle complete")
}
