// Smartphone: FAST's energy-aware upload path (Section IV-B8, Figure 8).
// A tourist's phone photographs the same landmarks repeatedly; before each
// upload the client checks whether a near-duplicate was already sent and
// skips the transfer when it was, saving bandwidth and battery relative to
// chunk-level deduplication alone.
//
//	go run ./examples/smartphone
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/fastrepro/fast/internal/chunk"
	"github.com/fastrepro/fast/internal/dedup"
	"github.com/fastrepro/fast/internal/energy"
	"github.com/fastrepro/fast/internal/store"
	"github.com/fastrepro/fast/internal/workload"
)

func main() {
	log.SetFlags(0)

	// A day of sightseeing: 150 photos of 5 landmarks.
	ds, err := workload.Generate(workload.Spec{
		Name:         "daytrip",
		Scenes:       5,
		Photos:       150,
		Resolution:   64,
		MeanSeverity: 0.1,
		Seed:         7,
		SceneBase:    4000,
	})
	if err != nil {
		log.Fatalf("generating photos: %v", err)
	}

	detector := dedup.NewDetector(dedup.Config{})
	chunkIndex := chunk.NewIndex()
	model := energy.DefaultWiFi()
	wifi := store.WiFi()
	chunkRec := energy.NewRecorder(model)
	fastRec := energy.NewRecorder(model)

	// On-the-wire payloads are derived from the 64x64 rasters (~4 KB); real
	// photos are ~1 MB, so transmission is charged at wireScale x the
	// simulated payload to keep the radio/tail energy ratio realistic.
	const wireScale = 256
	var chunkSent, fastSent, raw int64
	skipped := 0
	for _, p := range ds.Photos {
		payload := make([]byte, 0, len(p.Img.Pix))
		for _, v := range p.Img.Pix {
			payload = append(payload, byte(v*255))
		}
		raw += int64(len(payload)) * wireScale

		// Chunk-based baseline: only byte-identical chunks are skipped.
		chunks, err := chunk.CDC(payload, chunk.CDCConfig{Min: 256, Avg: 1024, Max: 4096})
		if err != nil {
			log.Fatalf("chunking: %v", err)
		}
		r := chunkIndex.Add(chunks)
		chunkSent += r.NewBytes * wireScale
		chunkRec.RecordTransmission(r.NewBytes*wireScale, wifi.Transfer(r.NewBytes*wireScale))

		// FAST client: whole near-duplicate images are skipped.
		t0 := time.Now()
		dec, err := detector.Check(p.Img)
		if err != nil {
			log.Fatalf("dedup check: %v", err)
		}
		fastRec.RecordCompute(time.Since(t0))
		if dec.Duplicate {
			skipped++
			fastSent += 64 // summary reference only
			fastRec.RecordTransmission(64, wifi.Transfer(64))
		} else {
			up := int64(len(payload)) * wireScale
			fastSent += up
			fastRec.RecordTransmission(up, wifi.Transfer(up))
		}
	}

	fmt.Printf("photos taken:            %d (%.1f MB at wire scale)\n", len(ds.Photos), float64(raw)/(1<<20))
	fmt.Printf("near-duplicates skipped: %d (%.0f%%)\n", skipped, 100*float64(skipped)/float64(len(ds.Photos)))
	fmt.Printf("\n%-24s %12s %12s\n", "", "chunk-based", "FAST")
	fmt.Printf("%-24s %10.2fMB %10.2fMB\n", "bytes transmitted",
		float64(chunkSent)/(1<<20), float64(fastSent)/(1<<20))
	fmt.Printf("%-24s %11.1fJ %11.1fJ\n", "energy consumed",
		chunkRec.TotalJoules(), fastRec.TotalJoules())
	bw := 100 * (1 - float64(fastSent)/float64(chunkSent))
	sav, err := energy.Savings(chunkRec.TotalJoules(), fastRec.TotalJoules())
	if err != nil {
		log.Fatalf("savings: %v", err)
	}
	fmt.Printf("\nbandwidth saving %.1f%%, energy saving %.1f%%\n", bw, 100*sav)
	fmt.Println("(the paper reports >55.2% bandwidth and 46.9-62.2% energy savings)")
}
