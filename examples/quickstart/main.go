// Quickstart: build a FAST index over a small synthetic photo corpus and
// answer a similarity query.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/workload"
)

func main() {
	log.SetFlags(0)

	// 1. Generate a small corpus: 8 landmark scenes, 160 photos.
	ds, err := workload.Generate(workload.Spec{
		Name:       "quickstart",
		Scenes:     8,
		Photos:     160,
		Resolution: 64,
		Seed:       1,
		SceneBase:  100,
	})
	if err != nil {
		log.Fatalf("generating corpus: %v", err)
	}
	fmt.Printf("corpus: %d photos of %d scenes (%.1f MB simulated)\n",
		len(ds.Photos), ds.Spec.Scenes, float64(ds.TotalBytes)/1e6)

	// 2. Build the FAST index: DoG+PCA-SIFT features -> Bloom summaries ->
	//    LSH semantic groups -> flat cuckoo storage.
	engine := core.NewEngine(core.Config{})
	t0 := time.Now()
	st, err := engine.Build(ds.Photos)
	if err != nil {
		log.Fatalf("building index: %v", err)
	}
	fmt.Printf("indexed %d photos in %v (%d descriptors; %s resident)\n",
		st.Photos, time.Since(t0).Round(time.Millisecond), st.Descriptors,
		byteCount(engine.IndexBytes()))

	// 3. Query with a fresh photo of one of the scenes.
	qs, err := ds.Queries(1, 7)
	if err != nil {
		log.Fatalf("building query: %v", err)
	}
	q := qs[0]
	t1 := time.Now()
	results, err := engine.Query(q.Probe, 10)
	if err != nil {
		log.Fatalf("query: %v", err)
	}
	fmt.Printf("\nquery for scene %d answered in %v, top hits:\n", q.Scene, time.Since(t1).Round(time.Microsecond))
	for i, r := range results {
		p := ds.PhotoByID(r.ID)
		mark := " "
		if p != nil && p.Scene == q.Scene {
			mark = "*" // ground-truth correlated photo
		}
		fmt.Printf("  %2d. photo %-9d score %.3f %s\n", i+1, r.ID, r.Score, mark)
	}
	fmt.Println("\n(* marks photos of the queried scene — the correlated group FAST narrows to)")
}

func byteCount(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
