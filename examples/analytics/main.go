// Analytics: FAST as a generalizable methodology (Section II-A, Figure 1).
// The pipeline — vector extraction, Bloom summarization, LSH semantic
// aggregation, flat-structured addressing — applies to any data type that
// can be represented as multi-dimensional vectors. This example runs it
// over *file metadata records* (the Spyglass/SmartStore setting of Table I):
// synthetic storage-system files described by multi-dimensional attributes,
// grouped semantically so that "find the files correlated with this one"
// resolves in O(1).
//
//	go run ./examples/analytics
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/fastrepro/fast/internal/bloom"
	"github.com/fastrepro/fast/internal/cuckoo"
	"github.com/fastrepro/fast/internal/lsh"
)

// fileRecord is a storage-system file described by multi-dimensional
// attributes (metadata and content fingerprints), the "vector extraction"
// input of Figure 1.
type fileRecord struct {
	id      uint64
	project int // ground truth: files of one project are correlated
	vector  []float64
}

// syntheticFiles generates files clustered by project: files in a project
// share directory depth, owner, extension mix, size scale, access rhythm
// and a content fingerprint theme.
func syntheticFiles(n, projects int, rng *rand.Rand) []fileRecord {
	centers := make([][]float64, projects)
	for p := range centers {
		c := make([]float64, 12)
		for i := range c {
			c[i] = rng.NormFloat64() * 3
		}
		centers[p] = c
	}
	files := make([]fileRecord, n)
	for i := range files {
		p := rng.Intn(projects)
		v := make([]float64, 12)
		for j := range v {
			v[j] = centers[p][j] + rng.NormFloat64()*0.2
		}
		files[i] = fileRecord{id: uint64(i + 1), project: p, vector: v}
	}
	return files
}

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(11))

	const nFiles, nProjects = 4000, 25
	files := syntheticFiles(nFiles, nProjects, rng)
	fmt.Printf("corpus: %d file records across %d projects\n", nFiles, nProjects)

	// SM: summarize each file's attribute vector into a Bloom filter.
	// SA: aggregate the summaries with MinHash LSH.
	// CHS: store records behind flat cuckoo addressing.
	sumCfg := bloom.SummaryConfig{Bits: 2048, K: 4, SubVector: 4, Granularity: 1.0}
	index, err := lsh.NewMinHash(lsh.MinHashParams{Bands: 7, Rows: 1, Seed: 5})
	if err != nil {
		log.Fatalf("lsh: %v", err)
	}
	table, err := cuckoo.NewFlat(2*nFiles, cuckoo.DefaultNeighborhood, 0, 6)
	if err != nil {
		log.Fatalf("cuckoo: %v", err)
	}
	summaries := make([]*bloom.Sparse, nFiles)

	t0 := time.Now()
	for i, f := range files {
		filter, err := bloom.Summarize([][]float64{f.vector}, sumCfg)
		if err != nil {
			log.Fatalf("summarize: %v", err)
		}
		s := bloom.ToSparse(filter)
		summaries[i] = s
		if len(s.Bits) > 0 {
			if err := index.Insert(lsh.ItemID(f.id), s.Bits); err != nil {
				log.Fatalf("lsh insert: %v", err)
			}
		}
		if err := table.Insert(f.id, uint64(i)); err != nil {
			log.Fatalf("table insert: %v", err)
		}
	}
	fmt.Printf("indexed in %v; summaries use %d KB total\n",
		time.Since(t0).Round(time.Millisecond), totalKB(summaries))

	// Query: pick a file, find its correlated group, verify by summary
	// similarity through the flat table.
	const trials = 200
	var recallSum, precSum float64
	var candSum int
	t1 := time.Now()
	for trial := 0; trial < trials; trial++ {
		qi := rng.Intn(nFiles)
		q := files[qi]
		candidates, err := index.Query(summaries[qi].Bits)
		if err != nil {
			log.Fatalf("query: %v", err)
		}
		keys := make([]uint64, len(candidates))
		for i, c := range candidates {
			keys[i] = uint64(c)
		}
		slots := table.LookupBatch(keys, 4)
		var hits, rel int
		groupSize := 0
		for i, slot := range slots {
			if !slot.Found {
				continue
			}
			rec := files[slot.Value]
			sim, err := bloom.JaccardSparse(summaries[qi], summaries[slot.Value])
			if err != nil || sim < 0.2 {
				continue
			}
			_ = keys[i]
			groupSize++
			if rec.project == q.project {
				hits++
			}
		}
		for _, f := range files {
			if f.project == q.project && f.id != q.id {
				rel++
			}
		}
		if rel > 0 {
			recallSum += float64(hits) / float64(rel+1) // +1 for the query file itself
		}
		if groupSize > 0 {
			precSum += float64(hits) / float64(groupSize)
		}
		candSum += groupSize
	}
	perQuery := time.Since(t1) / trials
	fmt.Printf("\n%d correlation queries, %v each on average\n", trials, perQuery.Round(time.Microsecond))
	fmt.Printf("group recall %.0f%%, precision %.0f%%, mean group size %.0f (of %d files)\n",
		100*recallSum/trials, 100*precSum/trials, float64(candSum)/trials, nFiles)
	fmt.Println("\nthe same four modules that index photos group correlated files —")
	fmt.Println("the generality the paper claims for the FAST methodology (Table I).")
}

func totalKB(ss []*bloom.Sparse) int {
	total := 0
	for _, s := range ss {
		total += s.SizeBytes()
	}
	return total / 1024
}
