package fast_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/fastrepro/fast/internal/baseline"
	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/cuckoo"
	"github.com/fastrepro/fast/internal/metrics"
	"github.com/fastrepro/fast/internal/workload"
)

// TestPipelinesAgreeOnObviousMatches drives all four pipelines over the
// same corpus and checks the cross-scheme invariants the paper's evaluation
// rests on.
func TestPipelinesAgreeOnObviousMatches(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	ds, qs := benchData(t)

	pipelines := []core.Pipeline{
		core.NewEngine(core.Config{}),
		baseline.NewSIFT(),
		baseline.NewPCASIFT(),
		baseline.NewRNPE(),
	}
	sizes := map[string]int64{}
	for _, p := range pipelines {
		if _, err := p.Build(ds.Photos); err != nil {
			t.Fatalf("%s build: %v", p.Name(), err)
		}
		sizes[p.Name()] = p.IndexBytes()
	}

	// Table IV invariant: FAST's index is the smallest; SIFT's the largest.
	if sizes["FAST"] >= sizes["SIFT"] || sizes["FAST"] >= sizes["PCA-SIFT"] || sizes["FAST"] >= sizes["RNPE"] {
		t.Errorf("FAST index not smallest: %v", sizes)
	}
	if sizes["SIFT"] <= sizes["PCA-SIFT"] {
		t.Errorf("SIFT index not larger than PCA-SIFT: %v", sizes)
	}

	// Every pipeline must achieve nonzero scene recall on near-duplicate
	// probes, and the content-based schemes must agree on the top scene.
	for _, p := range pipelines {
		var acc metrics.Accuracy
		for _, q := range qs {
			probe := core.Probe{Img: q.Probe}
			if p.Name() == "RNPE" {
				for _, ph := range ds.Photos {
					if ph.Scene == q.Scene {
						loc := ph.Loc
						probe.Loc = &loc
						break
					}
				}
			}
			res, err := p.Search(probe, len(ds.Photos))
			if err != nil {
				t.Fatalf("%s search: %v", p.Name(), err)
			}
			ids := make([]uint64, len(res))
			for i, r := range res {
				ids[i] = r.ID
			}
			acc.Add(metrics.ScoreRetrieval(ids, q.Relevant).Recall())
		}
		if acc.Mean() < 0.25 {
			t.Errorf("%s mean recall %.3f too low", p.Name(), acc.Mean())
		}
	}
}

// TestFASTFasterThanBruteForce measures real wall-clock per query: the
// headline latency claim at laptop scale.
func TestFASTFasterThanBruteForce(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	ds, qs := benchData(t)
	fast := core.NewEngine(core.Config{})
	sift := baseline.NewSIFT()
	if _, err := fast.Build(ds.Photos); err != nil {
		t.Fatal(err)
	}
	if _, err := sift.Build(ds.Photos); err != nil {
		t.Fatal(err)
	}
	timeQueries := func(p core.Pipeline) time.Duration {
		start := time.Now()
		for _, q := range qs {
			if _, err := p.Search(core.Probe{Img: q.Probe}, 20); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	tf := timeQueries(fast)
	ts := timeQueries(sift)
	if tf >= ts {
		t.Errorf("FAST (%v) not faster than SIFT (%v) at %d photos", tf, ts, len(ds.Photos))
	}
}

// TestEngineLifecycle exercises build → insert → delete → persist → restore
// → query as one flow.
func TestEngineLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	ds, qs := benchData(t)
	e := core.NewEngine(core.Config{})
	if _, err := e.BuildParallel(ds.Photos, 2); err != nil {
		t.Fatal(err)
	}

	extra := ds.FreshPhoto(5_000_001, 77)
	if err := e.Insert(extra); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete(ds.Photos[3].ID); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := core.ReadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != e.Len() {
		t.Fatalf("restored Len %d != %d", restored.Len(), e.Len())
	}
	if restored.Contains(ds.Photos[3].ID) {
		t.Error("deleted photo resurrected by restore")
	}
	if !restored.Contains(extra.ID) {
		t.Error("inserted photo lost by restore")
	}
	for _, q := range qs[:3] {
		a, err := e.Query(q.Probe, 30)
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.Query(q.Probe, 30)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("restored query differs: %d vs %d results", len(a), len(b))
		}
	}
}

// TestEngineSurvivesUndersizedTable injects a capacity fault: a flat table
// sized below the corpus must surface ErrTableFull through Build rather
// than corrupting state.
func TestEngineSurvivesUndersizedTable(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	ds, _ := benchData(t)
	e := core.NewEngine(core.Config{TableCapacity: 16}) // 96 photos into 16 cells
	_, err := e.Build(ds.Photos)
	if err == nil {
		t.Fatal("undersized table should fail the build")
	}
	if !errors.Is(err, cuckoo.ErrTableFull) {
		t.Errorf("error does not wrap ErrTableFull: %v", err)
	}
}

// TestWorkloadDeterminismAcrossPipelines ensures the generator gives every
// pipeline exactly the same corpus (the property every comparison relies
// on).
func TestWorkloadDeterminismAcrossPipelines(t *testing.T) {
	spec := workload.Spec{Name: "det", Scenes: 3, Photos: 12, Resolution: 48, Seed: 5, SceneBase: 9500}
	a, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Photos {
		if a.Photos[i].ID != b.Photos[i].ID {
			t.Fatal("generator not deterministic")
		}
		for j := range a.Photos[i].Img.Pix {
			if a.Photos[i].Img.Pix[j] != b.Photos[i].Img.Pix[j] {
				t.Fatal("pixels differ between generations")
			}
		}
	}
}
