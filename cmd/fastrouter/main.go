// Command fastrouter is the stateless front tier of a FAST cluster: it
// holds no index, only a placement ring and a client per fastd shard.
// Queries fan out across the ring's replica sets and merge with the
// engine's exact result ordering (byte-identical to a single node over
// the union corpus); inserts and deletes go synchronously to the photo's
// primary owner and asynchronously to its replicas.
//
//	fastrouter -addr :8210 -replicas 2 -read-policy round-robin \
//	  -shards http://127.0.0.1:8201,http://127.0.0.1:8202,http://127.0.0.1:8203
//
// The -placement-* flags must match the ones the shards were started with
// (fastd -shard-index/-shard-count/-replicas): the ring is a pure function
// of (shards, vnodes, seed), so agreement on the flags is agreement on
// placement, verifiable by comparing ring_fingerprint in /v1/stats.
//
// Read policies (-read-policy):
//
//	primary      query every shard (maximum redundancy, no read scaling)
//	round-robin  rotate a skip window of n-1 shards per query — with
//	             replica factor n every photo still has an owner among the
//	             queried shards, so answers stay complete and identical
//	hedged       round-robin, plus a late fan-out to the skipped shards
//	             when the primary wave is slow (-hedge-timeout)
//
// Failure semantics: with replica factor n, up to n-1 lost shards still
// yield a complete ("partial": false) answer served from the surviving
// replicas; beyond that the router degrades to partial answers and then
// to 503 on majority loss. /healthz reflects the same quorum rule.
//
// POST /v1/ring (fastctl ring-update) drives live reconfiguration; during
// a transition the router double-reads under both placements.
package main

import (
	"errors"
	"flag"
	"log"
	"net/http"
	"strings"
	"time"

	"github.com/fastrepro/fast/internal/client"
	"github.com/fastrepro/fast/internal/placement"
	"github.com/fastrepro/fast/internal/router"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fastrouter: ")
	var (
		addr         = flag.String("addr", ":8210", "listen address")
		shards       = flag.String("shards", "", "comma-separated shard base URLs, in shard-index order (required)")
		vnodes       = flag.Int("placement-vnodes", placement.DefaultVNodes, "virtual nodes per shard on the placement ring")
		seed         = flag.Uint64("placement-seed", 0, "placement ring hash seed (must match the shards')")
		epoch        = flag.Uint64("placement-epoch", 0, "placement ring epoch (live ring updates must advance past it)")
		replicas     = flag.Int("replicas", 1, "replica factor n: writes go to n owners, reads survive n-1 shard losses")
		policy       = flag.String("read-policy", "primary", "replica read policy: primary, round-robin, or hedged")
		hedgeTimeout = flag.Duration("hedge-timeout", 0, "hedged policy: wait this long before fanning out to skipped shards (0 = shard-timeout/4)")
		shardTimeout = flag.Duration("shard-timeout", 2*time.Second, "per-shard call timeout")
		topKLimit    = flag.Int("topk-limit", 0, "per-query result budget cap (0 = serving default)")
	)
	flag.Parse()

	urls := strings.Split(*shards, ",")
	backends := make([]router.Backend, 0, len(urls))
	for _, u := range urls {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		// One quick retry on backpressure; the router's own degradation
		// logic, not the client's backoff, is the failure handler here.
		backends = append(backends, router.NewClientBackend(client.New(u, client.WithRetries(1, 50*time.Millisecond))))
	}
	if len(backends) == 0 {
		log.Fatal("need -shards: comma-separated shard base URLs")
	}

	pol, err := router.ParseReadPolicy(*policy)
	if err != nil {
		log.Fatal(err)
	}
	ring, err := placement.New(placement.Config{
		Shards: len(backends),
		VNodes: *vnodes,
		Seed:   *seed,
		Epoch:  *epoch,
	})
	if err != nil {
		log.Fatal(err)
	}
	rt, err := router.New(router.Config{
		Shards:       backends,
		Ring:         ring,
		Replicas:     *replicas,
		Policy:       pol,
		HedgeTimeout: *hedgeTimeout,
		ShardTimeout: *shardTimeout,
		TopKLimit:    *topKLimit,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	log.Printf("routing %d shards on %s (rf=%d, policy=%s, ring fingerprint %016x, %d vnodes/shard, shard timeout %v)",
		len(backends), *addr, *replicas, pol, ring.Fingerprint(), *vnodes, *shardTimeout)
	if err := http.ListenAndServe(*addr, rt.Handler()); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}
