// Command fastrouter is the stateless front tier of a FAST cluster: it
// holds no index, only a placement ring and a client per fastd shard.
// Queries fan out to every shard and merge with the engine's exact result
// ordering (byte-identical to a single node over the union corpus);
// inserts and deletes are routed to the one shard the ring assigns the
// photo ID.
//
//	fastrouter -addr :8210 \
//	  -shards http://127.0.0.1:8201,http://127.0.0.1:8202,http://127.0.0.1:8203
//
// The -placement-* flags must match the ones the shards were started with
// (fastd -shard-index/-shard-count): the ring is a pure function of
// (shards, vnodes, seed), so agreement on the flags is agreement on
// placement, verifiable by comparing ring_fingerprint in /v1/stats.
//
// Failure semantics: a query that loses a minority of shards answers from
// the rest with "partial": true in the response; losing a majority is a
// 503. /healthz reflects the same quorum rule, so a load balancer fails
// the router only when the cluster behind it is actually down.
package main

import (
	"errors"
	"flag"
	"log"
	"net/http"
	"strings"
	"time"

	"github.com/fastrepro/fast/internal/client"
	"github.com/fastrepro/fast/internal/placement"
	"github.com/fastrepro/fast/internal/router"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fastrouter: ")
	var (
		addr         = flag.String("addr", ":8210", "listen address")
		shards       = flag.String("shards", "", "comma-separated shard base URLs, in shard-index order (required)")
		vnodes       = flag.Int("placement-vnodes", placement.DefaultVNodes, "virtual nodes per shard on the placement ring")
		seed         = flag.Uint64("placement-seed", 0, "placement ring hash seed (must match the shards')")
		epoch        = flag.Uint64("placement-epoch", 0, "placement ring epoch (versioning for rolling topology changes)")
		shardTimeout = flag.Duration("shard-timeout", 2*time.Second, "per-shard call timeout")
		topKLimit    = flag.Int("topk-limit", 0, "per-query result budget cap (0 = serving default)")
	)
	flag.Parse()

	urls := strings.Split(*shards, ",")
	backends := make([]router.Backend, 0, len(urls))
	for _, u := range urls {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		// One quick retry on backpressure; the router's own degradation
		// logic, not the client's backoff, is the failure handler here.
		backends = append(backends, client.New(u, client.WithRetries(1, 50*time.Millisecond)))
	}
	if len(backends) == 0 {
		log.Fatal("need -shards: comma-separated shard base URLs")
	}

	ring, err := placement.New(placement.Config{
		Shards: len(backends),
		VNodes: *vnodes,
		Seed:   *seed,
		Epoch:  *epoch,
	})
	if err != nil {
		log.Fatal(err)
	}
	rt, err := router.New(router.Config{
		Shards:       backends,
		Ring:         ring,
		ShardTimeout: *shardTimeout,
		TopKLimit:    *topKLimit,
	})
	if err != nil {
		log.Fatal(err)
	}

	log.Printf("routing %d shards on %s (ring fingerprint %016x, %d vnodes/shard, shard timeout %v)",
		len(backends), *addr, ring.Fingerprint(), *vnodes, *shardTimeout)
	if err := http.ListenAndServe(*addr, rt.Handler()); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}
