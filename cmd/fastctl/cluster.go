package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/store"
	"github.com/fastrepro/fast/internal/workload"
)

// runClusterCheck implements `fastctl clustercheck`: send the same synthetic
// probes to a cluster router and a single-node oracle holding the union
// corpus and verify the answers are byte-identical — same IDs, same scores,
// same order. This is the cluster's core correctness property (the merge
// uses exactly the engine's tie-break ordering), checked here over the real
// network stack. With -expect-partial it instead asserts that every routed
// answer is flagged partial (the degraded-mode check the CI smoke runs
// after killing a shard).
func runClusterCheck(args []string) {
	fs := flag.NewFlagSet("clustercheck", flag.ExitOnError)
	var (
		routerURL = fs.String("router", "http://127.0.0.1:8210", "fastrouter base URL")
		oracleURL = fs.String("oracle", "", "single-node fastd holding the union corpus (omit to skip identity comparison)")
		queries   = fs.Int("queries", 8, "number of probes to send")
		topK      = fs.Int("topk", 25, "results per query")
		photos    = fs.Int("photos", 300, "probe-generator corpus size (match the shards')")
		scenes    = fs.Int("scenes", 10, "probe-generator scene count (match the shards')")
		seed      = fs.Int64("seed", 1, "probe-generator seed (match the shards')")
		expectP   = fs.Bool("expect-partial", false, "assert every routed answer is flagged partial (degraded-mode check)")
		timeout   = fs.Duration("timeout", time.Minute, "request timeout")
	)
	fs.Parse(args)
	if *oracleURL == "" && !*expectP {
		log.Fatal("fastctl clustercheck: need -oracle (identity check) or -expect-partial (degradation check)")
	}

	ds, err := workload.Generate(workload.Spec{
		Name:        "fastd",
		Scenes:      *scenes,
		Photos:      *photos,
		Subjects:    4,
		SubjectRate: 0.2,
		Resolution:  64,
		Seed:        *seed,
		SceneBase:   6000,
	})
	if err != nil {
		log.Fatalf("fastctl clustercheck: generating probes: %v", err)
	}
	qs, err := ds.Queries(*queries, *seed+100)
	if err != nil {
		log.Fatalf("fastctl clustercheck: %v", err)
	}

	rc := adminClient(*routerURL, *timeout)
	ctx := context.Background()
	var oc = rc
	if *oracleURL != "" {
		oc = adminClient(*oracleURL, *timeout)
	}

	hits, partials := 0, 0
	for qi, q := range qs {
		got, partial, err := rc.QueryDetailed(ctx, q.Probe, *topK)
		if err != nil {
			log.Fatalf("fastctl clustercheck: query %d via router: %v", qi+1, err)
		}
		hits += len(got)
		if partial {
			partials++
		}
		if *expectP {
			if !partial {
				log.Fatalf("fastctl clustercheck: query %d was not flagged partial with a shard down", qi+1)
			}
			continue
		}
		want, err := oc.Query(ctx, q.Probe, *topK)
		if err != nil {
			log.Fatalf("fastctl clustercheck: query %d via oracle: %v", qi+1, err)
		}
		if partial {
			log.Fatalf("fastctl clustercheck: query %d was flagged partial with all shards up", qi+1)
		}
		if err := identical(got, want); err != nil {
			log.Fatalf("fastctl clustercheck: query %d: routed answer differs from oracle: %v", qi+1, err)
		}
	}
	if hits == 0 {
		log.Fatal("fastctl clustercheck: no query returned any results")
	}
	if *expectP {
		fmt.Printf("clustercheck: %d queries degraded gracefully (all flagged partial, %d total results)\n",
			len(qs), hits)
		return
	}
	fmt.Printf("clustercheck: %d queries byte-identical between %s and %s (%d total results)\n",
		len(qs), *routerURL, *oracleURL, hits)
}

// identical compares two result lists for exact equality: length, IDs,
// bit-exact scores, order.
func identical(got, want []core.SearchResult) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d results, oracle has %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("rank %d: got {%d %.17g}, oracle {%d %.17g}",
				i+1, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
		}
	}
	return nil
}

// runInsert implements `fastctl insert`: generate fresh synthetic photos
// (new IDs, not part of any bootstrap corpus) and insert them into a
// running daemon. The CI cluster smoke uses it to churn a primary between
// two catch-ups, so the second transfer has a real diff to ship.
func runInsert(args []string) {
	fs := flag.NewFlagSet("insert", flag.ExitOnError)
	var (
		serverURL = fs.String("server", "http://127.0.0.1:8093", "fastd base URL")
		count     = fs.Int("count", 5, "photos to insert")
		startID   = fs.Uint64("start-id", 900_000, "first photo ID (IDs are sequential from here)")
		photos    = fs.Int("photos", 300, "photo-generator corpus size (match the daemon's)")
		scenes    = fs.Int("scenes", 10, "photo-generator scene count (match the daemon's)")
		seed      = fs.Int64("seed", 1, "photo-generator seed (match the daemon's)")
		timeout   = fs.Duration("timeout", time.Minute, "request timeout")
	)
	fs.Parse(args)
	ds, err := workload.Generate(workload.Spec{
		Name:        "fastd",
		Scenes:      *scenes,
		Photos:      *photos,
		Subjects:    4,
		SubjectRate: 0.2,
		Resolution:  64,
		Seed:        *seed,
		SceneBase:   6000,
	})
	if err != nil {
		log.Fatalf("fastctl insert: generating photos: %v", err)
	}
	c := adminClient(*serverURL, *timeout)
	ctx := context.Background()
	for i := 0; i < *count; i++ {
		p := ds.FreshPhoto(*startID+uint64(i), *seed+200+int64(i))
		if err := c.Insert(ctx, p.ID, p.Img); err != nil {
			log.Fatalf("fastctl insert: photo %d: %v", p.ID, err)
		}
	}
	st, err := c.Stats(ctx)
	if err != nil {
		log.Fatalf("fastctl insert: %v", err)
	}
	fmt.Printf("insert: %d photos (IDs %d..%d) -> %s now serves %d photos\n",
		*count, *startID, *startID+uint64(*count)-1, *serverURL, st.Photos)
}

// runCatchUp implements `fastctl catchup`: synchronize a local generation
// store with a daemon's newest persisted snapshot over the chunk-diff
// protocol, then verify the result reloads to the daemon's photo count.
// Transfer is proportional to the chunk diff: a cold store pulls
// everything, a warm one only what changed. With -expect-reuse the command
// fails unless the transfer actually skipped already-held chunks — the CI
// smoke uses it to prove a second catch-up is a diff, not a re-download.
func runCatchUp(args []string) {
	fs := flag.NewFlagSet("catchup", flag.ExitOnError)
	var (
		serverURL = fs.String("server", "http://127.0.0.1:8093", "fastd base URL (must run with -final-snapshot and chunked snapshots)")
		out       = fs.String("out", "replica.fast", "local replica generation store path")
		keep      = fs.Int("keep", 2, "generations to keep locally")
		save      = fs.Bool("save", false, "ask the daemon to persist a fresh snapshot first (POST /v1/snapshot/save)")
		expReuse  = fs.Bool("expect-reuse", false, "fail unless the transfer reused locally held chunks (diff, not full download)")
		timeout   = fs.Duration("timeout", 5*time.Minute, "request timeout")
	)
	fs.Parse(args)
	c := adminClient(*serverURL, *timeout)
	ctx := context.Background()

	if *save {
		if _, err := c.SnapshotSave(ctx); err != nil {
			log.Fatalf("fastctl catchup: snapshot save: %v", err)
		}
	}
	g := &store.Generations{Path: *out, Keep: *keep, Chunked: true}
	t0 := time.Now()
	res, err := c.CatchUp(ctx, g)
	if err != nil {
		log.Fatalf("fastctl catchup: %v", err)
	}
	elapsed := time.Since(t0).Round(time.Millisecond)

	// Verify the caught-up generation reloads to the daemon's photo count.
	r, err := store.OpenPayload(*out)
	if err != nil {
		log.Fatalf("fastctl catchup: %v", err)
	}
	eng, err := core.ReadEngine(r)
	r.Close()
	if err != nil {
		log.Fatalf("fastctl catchup: caught-up snapshot does not reload: %v", err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		log.Fatalf("fastctl catchup: %s stopped answering: %v", *serverURL, err)
	}
	if eng.Len() != st.Photos {
		log.Fatalf("fastctl catchup: replica reloads to %d photos, daemon reports %d", eng.Len(), st.Photos)
	}
	if *expReuse && (res.ChunksReused == 0 || res.ChunksFetched >= res.Chunks) {
		log.Fatalf("fastctl catchup: expected a chunk-diff transfer, got full: fetched %d of %d chunks (reused %d)",
			res.ChunksFetched, res.Chunks, res.ChunksReused)
	}
	transferred := res.BytesFetched + res.ManifestBytes
	fmt.Printf("catchup: %d photos; fetched %d of %d chunks (%d reused), %d bytes over the wire for a %d-byte payload (%.1f%%) -> %s (verified reload) in %v\n",
		eng.Len(), res.ChunksFetched, res.Chunks, res.ChunksReused,
		transferred, res.PayloadBytes, 100*float64(transferred)/float64(res.PayloadBytes), *out, elapsed)
}
