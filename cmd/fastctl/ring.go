package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"github.com/fastrepro/fast/internal/client"
	"github.com/fastrepro/fast/internal/placement"
	"github.com/fastrepro/fast/internal/replica"
	"github.com/fastrepro/fast/internal/server"
)

// runRingUpdate implements `fastctl ring-update`: drive a live placement
// change across a running cluster with no restarts and no identity
// violations. The command speaks the /v1/ring protocol — router prepare
// (double-read under both rings), shard prepares (each shard acquires its
// newly owned photos from peers in the background), a cluster-wide
// readiness barrier, then shard commits (shed + swap) and the router
// commit that resumes single-ring routing under the new epoch.
//
//	fastctl ring-update -router http://127.0.0.1:8210 \
//	  -shards http://127.0.0.1:8201,http://127.0.0.1:8202,http://127.0.0.1:8203 \
//	  -epoch 2 -placement-seed 42 -replicas 2
//
// The new epoch must advance past the cluster's current one. Every phase
// is idempotent, so re-running the same command after a failure resumes
// the update rather than corrupting it; `-abort` rolls a prepared but
// uncommitted update back instead.
func runRingUpdate(args []string) {
	fs := flag.NewFlagSet("ring-update", flag.ExitOnError)
	var (
		routerURL = fs.String("router", "", "fastrouter base URL (omit for a router-less cluster)")
		shards    = fs.String("shards", "", "comma-separated shard base URLs, in shard-index order (required)")
		vnodes    = fs.Int("placement-vnodes", placement.DefaultVNodes, "virtual nodes per shard on the new ring")
		seed      = fs.Uint64("placement-seed", 0, "hash seed of the new ring")
		epoch     = fs.Uint64("epoch", 0, "epoch of the new ring (must advance past the current one; required)")
		replicas  = fs.Int("replicas", 1, "replica factor of the new ring")
		abort     = fs.Bool("abort", false, "abort a prepared but uncommitted ring update instead")
		poll      = fs.Duration("poll", 200*time.Millisecond, "shard readiness polling interval")
		timeout   = fs.Duration("timeout", 10*time.Minute, "bound on the whole update")
	)
	fs.Parse(args)

	var shardClients []*client.Client
	for _, u := range strings.Split(*shards, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		shardClients = append(shardClients, adminClient(u, *timeout))
	}
	if len(shardClients) == 0 {
		log.Fatal("fastctl ring-update: need -shards: comma-separated shard base URLs")
	}
	var routerClient *client.Client
	if *routerURL != "" {
		routerClient = adminClient(*routerURL, *timeout)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if *abort {
		if err := abortRingUpdate(ctx, routerClient, shardClients); err != nil {
			log.Fatalf("fastctl ring-update: %v", err)
		}
		fmt.Println("ring-update: aborted on every node")
		return
	}
	if *epoch == 0 {
		log.Fatal("fastctl ring-update: need -epoch > 0 (the new ring's epoch, advancing past the current one)")
	}

	t0 := time.Now()
	rep, err := replica.RingUpdate(ctx, replica.RingUpdateOptions{
		Router: routerClient,
		Shards: shardClients,
		Ring: placement.Config{
			Shards: len(shardClients),
			VNodes: *vnodes,
			Seed:   *seed,
			Epoch:  *epoch,
		},
		Replicas:     *replicas,
		PollInterval: *poll,
	})
	if err != nil {
		log.Fatalf("fastctl ring-update: %v (phases are idempotent: re-run to resume, or -abort to roll back)", err)
	}
	acquired, shed := 0, 0
	for i := range rep.Acquired {
		acquired += rep.Acquired[i]
		shed += rep.Shed[i]
	}
	fmt.Printf("ring-update: epoch %d (fingerprint %016x, rf=%d) live on %d shards in %v; %d photos acquired, %d shed\n",
		rep.Epoch, rep.Fingerprint, rep.Replicas, len(shardClients), time.Since(t0).Round(time.Millisecond), acquired, shed)
	for i := range rep.Acquired {
		fmt.Printf("  shard %d: +%d acquired, -%d shed\n", i, rep.Acquired[i], rep.Shed[i])
	}
}

// abortRingUpdate rolls a prepared update back: router first (so
// double-write stops targeting the abandoned ring), then every shard.
func abortRingUpdate(ctx context.Context, routerClient *client.Client, shards []*client.Client) error {
	req := server.RingUpdateRequest{Phase: "abort"}
	if routerClient != nil {
		if _, err := routerClient.RingPhase(ctx, req); err != nil {
			return fmt.Errorf("router abort: %w", err)
		}
	}
	for i, sc := range shards {
		if _, err := sc.RingPhase(ctx, req); err != nil {
			return fmt.Errorf("shard %d abort: %w", i, err)
		}
	}
	return nil
}
