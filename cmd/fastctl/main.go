// Command fastctl builds a FAST index over a synthetic corpus and runs
// similarity queries against it, printing per-query results and summary
// statistics. It is the interactive face of the library:
//
//	fastctl -photos 400 -scenes 10 -queries 20
//	fastctl -photos 1000 -scheme PCA-SIFT -queries 5 -topk 20
//
// It also administers a running fastd daemon:
//
//	fastctl query    -server http://127.0.0.1:8093 -queries 5
//	fastctl snapshot -server http://127.0.0.1:8093 -out index.fast
//	fastctl restore  -server http://127.0.0.1:8093 -in index.fast
//	fastctl insert   -server http://127.0.0.1:8093 -count 5
//
// and checks a cluster deployment (fastrouter + sharded fastd):
//
//	fastctl clustercheck -router http://127.0.0.1:8210 -oracle http://127.0.0.1:8200
//	fastctl catchup      -server http://127.0.0.1:8093 -out replica.fast
//
// clustercheck verifies routed answers byte-identical to a single-node
// oracle (or, with -expect-partial, that a degraded cluster flags its
// answers); catchup synchronizes a local generation store with the
// daemon's newest snapshot over the chunk-diff protocol, transferring only
// missing chunks; insert pushes freshly generated photos into a running
// daemon (churn for catch-up demos and smoke tests).
//
// query sends synthetic probes over the wire (regenerate the daemon's
// corpus parameters with -photos/-scenes/-seed to probe for real matches);
// snapshot streams a hot snapshot of the daemon's index to a local file
// (written via temp file + rename) and verifies it reloads to the photo
// count the daemon reports — with -chunked it lands in a content-addressed
// generation store instead, deduplicating against prior snapshots at the
// same path and printing the dedup ratio; restore uploads a snapshot file
// (monolithic or chunk manifest), replacing the daemon's index in place,
// and verifies the daemon serves the new count.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"time"

	"github.com/fastrepro/fast/internal/baseline"
	"github.com/fastrepro/fast/internal/client"
	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/metrics"
	"github.com/fastrepro/fast/internal/store"
	"github.com/fastrepro/fast/internal/workload"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "query":
			runQuery(os.Args[2:])
			return
		case "snapshot":
			runSnapshot(os.Args[2:])
			return
		case "restore":
			runRestore(os.Args[2:])
			return
		case "clustercheck":
			runClusterCheck(os.Args[2:])
			return
		case "catchup":
			runCatchUp(os.Args[2:])
			return
		case "ring-update":
			runRingUpdate(os.Args[2:])
			return
		case "insert":
			runInsert(os.Args[2:])
			return
		}
	}
	var (
		photos  = flag.Int("photos", 300, "corpus size")
		scenes  = flag.Int("scenes", 10, "number of landmark scenes")
		queries = flag.Int("queries", 10, "number of queries to run")
		topK    = flag.Int("topk", 25, "results per query")
		seed    = flag.Int64("seed", 1, "generator seed")
		scheme  = flag.String("scheme", "FAST", "pipeline: FAST, SIFT, PCA-SIFT or RNPE")
		verbose = flag.Bool("v", false, "print per-result details")
	)
	flag.Parse()

	ds, err := workload.Generate(workload.Spec{
		Name:        "fastctl",
		Scenes:      *scenes,
		Photos:      *photos,
		Subjects:    4,
		SubjectRate: 0.2,
		Resolution:  64,
		Seed:        *seed,
		SceneBase:   6000,
	})
	if err != nil {
		log.Fatalf("fastctl: generating corpus: %v", err)
	}
	fmt.Printf("corpus: %d photos / %d scenes\n", len(ds.Photos), *scenes)

	var p core.Pipeline
	switch *scheme {
	case "FAST":
		p = core.NewEngine(core.Config{})
	case "SIFT":
		p = baseline.NewSIFT()
	case "PCA-SIFT":
		p = baseline.NewPCASIFT()
	case "RNPE":
		p = baseline.NewRNPE()
	default:
		fmt.Fprintf(os.Stderr, "fastctl: unknown scheme %q\n", *scheme)
		os.Exit(2)
	}

	t0 := time.Now()
	st, err := p.Build(ds.Photos)
	if err != nil {
		log.Fatalf("fastctl: building %s index: %v", p.Name(), err)
	}
	fmt.Printf("%s index built in %v (%d descriptors, %.1f KB)\n\n",
		p.Name(), time.Since(t0).Round(time.Millisecond), st.Descriptors,
		float64(p.IndexBytes())/1024)

	qs, err := ds.Queries(*queries, *seed+100)
	if err != nil {
		log.Fatalf("fastctl: queries: %v", err)
	}
	lat := metrics.NewLatency()
	var acc metrics.Accuracy
	for qi, q := range qs {
		probe := core.Probe{Img: q.Probe}
		if *scheme == "RNPE" {
			for _, ph := range ds.Photos {
				if ph.Scene == q.Scene {
					loc := ph.Loc
					probe.Loc = &loc
					break
				}
			}
		}
		t1 := time.Now()
		res, err := p.Search(probe, *topK)
		if err != nil {
			log.Fatalf("fastctl: query %d: %v", qi, err)
		}
		lat.Record(time.Since(t1))
		ids := make([]uint64, len(res))
		for i, r := range res {
			ids[i] = r.ID
		}
		ret := metrics.ScoreRetrieval(ids, q.Relevant)
		acc.Add(ret.Recall())
		fmt.Printf("query %2d (scene %d): %2d results, recall %.2f, precision %.2f\n",
			qi+1, q.Scene, len(res), ret.Recall(), ret.Precision())
		if *verbose {
			for i, r := range res {
				mark := " "
				if q.Relevant[r.ID] {
					mark = "*"
				}
				fmt.Printf("    %2d. photo %-12d score %.3f %s\n", i+1, r.ID, r.Score, mark)
			}
		}
	}
	s := lat.Summarize()
	fmt.Printf("\n%d queries: mean %v, median %v, p99 %v; mean recall %.2f\n",
		s.Count, s.Mean.Round(time.Microsecond), s.Median.Round(time.Microsecond),
		s.P99.Round(time.Microsecond), acc.Mean())
}

// runQuery implements `fastctl query`: send synthetic probes to a running
// daemon and report per-query hit counts and latency. With corpus flags
// matching the daemon's bootstrap (-photos/-scenes/-seed), the probes are
// near-duplicates of indexed photos and should return real matches.
func runQuery(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	var (
		serverURL = fs.String("server", "http://127.0.0.1:8093", "fastd base URL")
		queries   = fs.Int("queries", 5, "number of probes to send")
		topK      = fs.Int("topk", 25, "results per query")
		photos    = fs.Int("photos", 300, "probe-generator corpus size (match the daemon's)")
		scenes    = fs.Int("scenes", 10, "probe-generator scene count (match the daemon's)")
		seed      = fs.Int64("seed", 1, "probe-generator seed (match the daemon's)")
		timeout   = fs.Duration("timeout", time.Minute, "request timeout")
	)
	fs.Parse(args)
	ds, err := workload.Generate(workload.Spec{
		Name:        "fastd",
		Scenes:      *scenes,
		Photos:      *photos,
		Subjects:    4,
		SubjectRate: 0.2,
		Resolution:  64,
		Seed:        *seed,
		SceneBase:   6000,
	})
	if err != nil {
		log.Fatalf("fastctl query: generating probes: %v", err)
	}
	qs, err := ds.Queries(*queries, *seed+100)
	if err != nil {
		log.Fatalf("fastctl query: %v", err)
	}

	c := adminClient(*serverURL, *timeout)
	ctx := context.Background()
	lat := metrics.NewLatency()
	hits := 0
	for qi, q := range qs {
		t0 := time.Now()
		res, err := c.Query(ctx, q.Probe, *topK)
		if err != nil {
			log.Fatalf("fastctl query: query %d: %v", qi+1, err)
		}
		lat.Record(time.Since(t0))
		hits += len(res)
		fmt.Printf("query %2d (scene %d): %2d results", qi+1, q.Scene, len(res))
		if len(res) > 0 {
			fmt.Printf(", best photo %d score %.3f", res[0].ID, res[0].Score)
		}
		fmt.Println()
	}
	s := lat.Summarize()
	fmt.Printf("\n%d queries over the wire: %d total results; mean %v, p99 %v\n",
		s.Count, hits, s.Mean.Round(time.Microsecond), s.P99.Round(time.Microsecond))
	if st, err := c.Stats(ctx); err == nil {
		fmt.Printf("server cache: summary %d hits / %d misses, results %d hits / %d misses, %d singleflight waits, %d deduped (epoch %d)\n",
			st.SummaryCacheHits, st.SummaryCacheMisses, st.ResultCacheHits, st.ResultCacheMisses,
			st.CacheSingleflightWaits, st.QueryDeduped, st.CacheEpoch)
		if st.TieredEnabled {
			fmt.Printf("server cold tier: %d hot / %d cold entries, %d segments (%d bytes on disk, %d tombstones); queries probed %d cold buckets, scanned %d postings / %d bytes; %d migrations, %d compactions\n",
				st.TieredHotEntries, st.TieredColdEntries, st.TieredSegments, st.TieredColdBytes,
				st.TieredTombstones, st.TieredSpillProbes, st.TieredPostingsScanned,
				st.TieredBytesScanned, st.TieredMigrations, st.TieredCompactions)
		}
	}
	if hits == 0 {
		log.Fatal("fastctl query: no query returned any results")
	}
}

// adminClient builds the client shared by the daemon subcommands.
func adminClient(serverURL string, timeout time.Duration) *client.Client {
	return client.New(serverURL, client.WithTimeout(timeout))
}

// snapshotStream adapts the daemon's streaming snapshot endpoint to the
// io.WriterTo the generation store consumes, so the downloaded bytes are
// chunked and deduplicated as they arrive instead of being spooled to a
// temp file first.
type snapshotStream struct {
	c   *client.Client
	ctx context.Context
}

func (s snapshotStream) WriteTo(w io.Writer) (int64, error) {
	return s.c.Snapshot(s.ctx, w)
}

// runSnapshot implements `fastctl snapshot`: stream the daemon's index to a
// local file and verify the bytes reload. With -chunked the stream lands in
// a local content-addressed generation store instead of a monolithic file:
// repeated snapshots of a slowly changing index then cost only the changed
// chunks, and the command reports the dedup effect of this write.
func runSnapshot(args []string) {
	fs := flag.NewFlagSet("snapshot", flag.ExitOnError)
	var (
		serverURL = fs.String("server", "http://127.0.0.1:8093", "fastd base URL")
		out       = fs.String("out", "index.fast", "snapshot destination file")
		chunked   = fs.Bool("chunked", false, "store as content-addressed chunk manifest (dedup against prior generations at -out)")
		keep      = fs.Int("keep", 2, "generations to keep in chunked mode")
		timeout   = fs.Duration("timeout", 5*time.Minute, "request timeout")
	)
	fs.Parse(args)
	c := adminClient(*serverURL, *timeout)
	ctx := context.Background()

	st, err := c.Stats(ctx)
	if err != nil {
		log.Fatalf("fastctl snapshot: %s is not answering: %v", *serverURL, err)
	}
	if *chunked {
		g := &store.Generations{Path: *out, Keep: *keep, Chunked: true}
		t0 := time.Now()
		res, err := g.WriteSnapshot(snapshotStream{c: c, ctx: ctx})
		if err != nil {
			log.Fatalf("fastctl snapshot: %v", err)
		}
		// Verify the manifest reassembles to the photo count the daemon
		// reported.
		r, err := store.OpenPayload(*out)
		if err != nil {
			log.Fatalf("fastctl snapshot: %v", err)
		}
		eng, err := core.ReadEngine(r)
		r.Close()
		if err != nil {
			log.Fatalf("fastctl snapshot: stored snapshot does not reload: %v", err)
		}
		if eng.Len() != st.Photos {
			log.Fatalf("fastctl snapshot: snapshot reloads to %d photos, daemon reported %d", eng.Len(), st.Photos)
		}
		fmt.Printf("snapshot: %d photos, %d logical bytes in %d physical (%.1fx dedup; %d/%d chunks reused; GC reclaimed %d chunks) -> %s (verified reload) in %v\n",
			eng.Len(), res.LogicalBytes, res.PhysicalBytes, res.DedupRatio(),
			res.ChunksReused, res.Chunks, res.GCChunks, *out, time.Since(t0).Round(time.Millisecond))
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(*out), "fastctl-snap-*")
	if err != nil {
		log.Fatalf("fastctl snapshot: %v", err)
	}
	defer os.Remove(tmp.Name())
	t0 := time.Now()
	n, err := c.Snapshot(ctx, tmp)
	if err != nil {
		tmp.Close()
		log.Fatalf("fastctl snapshot: %v", err)
	}
	if err := tmp.Close(); err != nil {
		log.Fatalf("fastctl snapshot: %v", err)
	}

	// Verify the snapshot parses and carries the photo count the daemon
	// reported before renaming it over the destination.
	f, err := os.Open(tmp.Name())
	if err != nil {
		log.Fatalf("fastctl snapshot: %v", err)
	}
	eng, err := core.ReadEngine(f)
	f.Close()
	if err != nil {
		log.Fatalf("fastctl snapshot: downloaded snapshot does not reload: %v", err)
	}
	if eng.Len() != st.Photos {
		log.Fatalf("fastctl snapshot: snapshot reloads to %d photos, daemon reported %d", eng.Len(), st.Photos)
	}
	if err := os.Rename(tmp.Name(), *out); err != nil {
		log.Fatalf("fastctl snapshot: %v", err)
	}
	fmt.Printf("snapshot: %d photos, %d bytes -> %s (verified reload) in %v\n",
		eng.Len(), n, *out, time.Since(t0).Round(time.Millisecond))
}

// runRestore implements `fastctl restore`: upload a snapshot file into the
// daemon and verify it took effect.
func runRestore(args []string) {
	fs := flag.NewFlagSet("restore", flag.ExitOnError)
	var (
		serverURL = fs.String("server", "http://127.0.0.1:8093", "fastd base URL")
		in        = fs.String("in", "index.fast", "snapshot file to upload")
		timeout   = fs.Duration("timeout", 5*time.Minute, "request timeout")
	)
	fs.Parse(args)
	c := adminClient(*serverURL, *timeout)
	ctx := context.Background()

	// Parse locally first: a corrupt file fails here with a snapshot error
	// instead of a server round trip, and the parse yields the photo count
	// the daemon must serve afterwards. OpenPayload resolves chunk-manifest
	// generations transparently, so a -chunked snapshot restores with the
	// same command as a monolithic one — the daemon always receives plain
	// snapshot bytes.
	f, err := store.OpenPayload(*in)
	if err != nil {
		log.Fatalf("fastctl restore: %v", err)
	}
	eng, err := core.ReadEngine(f)
	f.Close()
	if err != nil {
		log.Fatalf("fastctl restore: %s does not parse: %v", *in, err)
	}
	want := eng.Len()

	f, err = store.OpenPayload(*in)
	if err != nil {
		log.Fatalf("fastctl restore: %v", err)
	}
	defer f.Close()
	t0 := time.Now()
	if err := c.Restore(ctx, f); err != nil {
		log.Fatalf("fastctl restore: %v", err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		log.Fatalf("fastctl restore: daemon stopped answering after restore: %v", err)
	}
	if st.Photos != want {
		log.Fatalf("fastctl restore: daemon serves %d photos, snapshot holds %d", st.Photos, want)
	}
	fmt.Printf("restore: %s -> %s, daemon now serves %d photos (verified) in %v\n",
		*in, *serverURL, st.Photos, time.Since(t0).Round(time.Millisecond))
}
