// Command fastctl builds a FAST index over a synthetic corpus and runs
// similarity queries against it, printing per-query results and summary
// statistics. It is the interactive face of the library:
//
//	fastctl -photos 400 -scenes 10 -queries 20
//	fastctl -photos 1000 -scheme PCA-SIFT -queries 5 -topk 20
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/fastrepro/fast/internal/baseline"
	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/metrics"
	"github.com/fastrepro/fast/internal/workload"
)

func main() {
	log.SetFlags(0)
	var (
		photos  = flag.Int("photos", 300, "corpus size")
		scenes  = flag.Int("scenes", 10, "number of landmark scenes")
		queries = flag.Int("queries", 10, "number of queries to run")
		topK    = flag.Int("topk", 25, "results per query")
		seed    = flag.Int64("seed", 1, "generator seed")
		scheme  = flag.String("scheme", "FAST", "pipeline: FAST, SIFT, PCA-SIFT or RNPE")
		verbose = flag.Bool("v", false, "print per-result details")
	)
	flag.Parse()

	ds, err := workload.Generate(workload.Spec{
		Name:        "fastctl",
		Scenes:      *scenes,
		Photos:      *photos,
		Subjects:    4,
		SubjectRate: 0.2,
		Resolution:  64,
		Seed:        *seed,
		SceneBase:   6000,
	})
	if err != nil {
		log.Fatalf("fastctl: generating corpus: %v", err)
	}
	fmt.Printf("corpus: %d photos / %d scenes\n", len(ds.Photos), *scenes)

	var p core.Pipeline
	switch *scheme {
	case "FAST":
		p = core.NewEngine(core.Config{})
	case "SIFT":
		p = baseline.NewSIFT()
	case "PCA-SIFT":
		p = baseline.NewPCASIFT()
	case "RNPE":
		p = baseline.NewRNPE()
	default:
		fmt.Fprintf(os.Stderr, "fastctl: unknown scheme %q\n", *scheme)
		os.Exit(2)
	}

	t0 := time.Now()
	st, err := p.Build(ds.Photos)
	if err != nil {
		log.Fatalf("fastctl: building %s index: %v", p.Name(), err)
	}
	fmt.Printf("%s index built in %v (%d descriptors, %.1f KB)\n\n",
		p.Name(), time.Since(t0).Round(time.Millisecond), st.Descriptors,
		float64(p.IndexBytes())/1024)

	qs, err := ds.Queries(*queries, *seed+100)
	if err != nil {
		log.Fatalf("fastctl: queries: %v", err)
	}
	lat := metrics.NewLatency()
	var acc metrics.Accuracy
	for qi, q := range qs {
		probe := core.Probe{Img: q.Probe}
		if *scheme == "RNPE" {
			for _, ph := range ds.Photos {
				if ph.Scene == q.Scene {
					loc := ph.Loc
					probe.Loc = &loc
					break
				}
			}
		}
		t1 := time.Now()
		res, err := p.Search(probe, *topK)
		if err != nil {
			log.Fatalf("fastctl: query %d: %v", qi, err)
		}
		lat.Record(time.Since(t1))
		ids := make([]uint64, len(res))
		for i, r := range res {
			ids[i] = r.ID
		}
		ret := metrics.ScoreRetrieval(ids, q.Relevant)
		acc.Add(ret.Recall())
		fmt.Printf("query %2d (scene %d): %2d results, recall %.2f, precision %.2f\n",
			qi+1, q.Scene, len(res), ret.Recall(), ret.Precision())
		if *verbose {
			for i, r := range res {
				mark := " "
				if q.Relevant[r.ID] {
					mark = "*"
				}
				fmt.Printf("    %2d. photo %-12d score %.3f %s\n", i+1, r.ID, r.Score, mark)
			}
		}
	}
	s := lat.Summarize()
	fmt.Printf("\n%d queries: mean %v, median %v, p99 %v; mean recall %.2f\n",
		s.Count, s.Mean.Round(time.Microsecond), s.Median.Round(time.Microsecond),
		s.P99.Round(time.Microsecond), acc.Mean())
}
