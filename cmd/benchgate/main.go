// Command benchgate compares a freshly measured query-throughput report
// (BENCH_query.json, produced by `fastbench -exp qps`) against the committed
// baseline and fails when the candidate regresses: a worker-count row losing
// more than the allowed fraction of its queries/sec, or its latency tail
// (p99) blowing up past the allowed ratio. CI runs it after the benchmark
// job; `make bench-gate` runs the same comparison locally.
//
// Rows are matched by worker count and only counts present in both reports
// are compared (the measured worker set includes GOMAXPROCS, which varies by
// machine). A baseline recorded on a host with different hardware
// parallelism is flagged: absolute throughput is still compared, but
// scaling-shape differences on mismatched hosts are expected, so the
// mismatch itself is a warning, not a failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type row struct {
	Workers int     `json:"workers"`
	QPS     float64 `json:"qps"`
	MeanNs  int64   `json:"mean_ns"`
	P50Ns   int64   `json:"p50_ns"`
	P90Ns   int64   `json:"p90_ns"`
	P95Ns   int64   `json:"p95_ns"`
	P99Ns   int64   `json:"p99_ns"`
	Speedup float64 `json:"speedup"`
}

type report struct {
	Corpus   int   `json:"corpus_photos"`
	Queries  int   `json:"queries"`
	TopK     int   `json:"topk"`
	MaxProcs int   `json:"maxprocs"`
	Rows     []row `json:"rows"`
}

func load(path string) (report, error) {
	var r report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Rows) == 0 {
		return r, fmt.Errorf("%s: no benchmark rows", path)
	}
	return r, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_query.json", "committed baseline report")
	candidatePath := flag.String("candidate", "", "freshly measured report (required)")
	maxQPSDrop := flag.Float64("max-qps-drop", 0.20, "fail when a row's qps falls more than this fraction below baseline")
	maxTailRatio := flag.Float64("max-tail-ratio", 2.5, "fail when a row's p99 exceeds baseline p99 by more than this factor")
	flag.Parse()
	if *candidatePath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -candidate is required")
		os.Exit(2)
	}

	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: baseline: %v\n", err)
		os.Exit(2)
	}
	cand, err := load(*candidatePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: candidate: %v\n", err)
		os.Exit(2)
	}

	if base.MaxProcs != 0 && cand.MaxProcs != 0 && base.MaxProcs != cand.MaxProcs {
		fmt.Printf("WARNING: baseline measured at GOMAXPROCS=%d, candidate at GOMAXPROCS=%d; "+
			"scaling shape is not comparable across hosts\n", base.MaxProcs, cand.MaxProcs)
	}
	if base.Corpus != cand.Corpus || base.Queries != cand.Queries || base.TopK != cand.TopK {
		fmt.Printf("WARNING: workload differs (corpus %d→%d, queries %d→%d, topk %d→%d); "+
			"regenerate the baseline if the benchmark itself changed\n",
			base.Corpus, cand.Corpus, base.Queries, cand.Queries, base.TopK, cand.TopK)
	}

	baseByWorkers := make(map[int]row, len(base.Rows))
	for _, r := range base.Rows {
		baseByWorkers[r.Workers] = r
	}

	fmt.Printf("%-8s | %12s %12s %8s | %10s %10s %8s\n",
		"workers", "base qps", "cand qps", "delta", "base p99", "cand p99", "ratio")
	compared, failures := 0, 0
	for _, c := range cand.Rows {
		b, ok := baseByWorkers[c.Workers]
		if !ok {
			continue
		}
		compared++
		delta := c.QPS/b.QPS - 1
		tail := float64(c.P99Ns) / float64(b.P99Ns)
		verdict := ""
		if delta < -*maxQPSDrop {
			verdict = "  FAIL: qps regression"
			failures++
		}
		if tail > *maxTailRatio {
			verdict += "  FAIL: tail blowup"
			failures++
		}
		fmt.Printf("%-8d | %12.1f %12.1f %+7.1f%% | %9.2fms %9.2fms %7.2fx%s\n",
			c.Workers, b.QPS, c.QPS, 100*delta,
			float64(b.P99Ns)/1e6, float64(c.P99Ns)/1e6, tail, verdict)
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no common worker counts between baseline and candidate")
		os.Exit(2)
	}
	if failures > 0 {
		fmt.Printf("\nbenchgate: FAIL (%d violation(s); allowed qps drop %.0f%%, allowed p99 ratio %.1fx)\n",
			failures, 100**maxQPSDrop, *maxTailRatio)
		os.Exit(1)
	}
	fmt.Printf("\nbenchgate: PASS (%d row(s) within thresholds)\n", compared)
}
