// Command imagegen renders a synthetic dataset and reports its properties;
// optionally it dumps rasters as PGM files for visual inspection.
//
//	imagegen -photos 100 -scenes 6
//	imagegen -photos 20 -dump /tmp/photos
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/fastrepro/fast/internal/simimg"
	"github.com/fastrepro/fast/internal/workload"
)

func main() {
	log.SetFlags(0)
	var (
		photos   = flag.Int("photos", 100, "number of photos")
		scenes   = flag.Int("scenes", 8, "number of landmark scenes")
		subjects = flag.Int("subjects", 4, "number of subject identities")
		res      = flag.Int("res", 64, "raster resolution")
		seed     = flag.Int64("seed", 1, "generator seed")
		dump     = flag.String("dump", "", "directory to write PGM rasters into")
	)
	flag.Parse()

	ds, err := workload.Generate(workload.Spec{
		Name:        "imagegen",
		Scenes:      *scenes,
		Photos:      *photos,
		Subjects:    *subjects,
		SubjectRate: 0.25,
		Resolution:  *res,
		Seed:        *seed,
		SceneBase:   7000,
	})
	if err != nil {
		log.Fatalf("imagegen: %v", err)
	}

	fmt.Printf("generated %d photos (%.1f MB simulated originals)\n", len(ds.Photos), float64(ds.TotalBytes)/1e6)
	fmt.Printf("\nper-scene photo counts:\n")
	for scene, ids := range ds.ByScene {
		fmt.Printf("  scene %-6d %4d photos\n", scene, len(ids))
	}
	if len(ds.BySubject) > 0 {
		fmt.Printf("\nper-subject appearances:\n")
		for sid, ids := range ds.BySubject {
			fmt.Printf("  subject %-8d %4d photos\n", sid, len(ids))
		}
	}

	if *dump != "" {
		if err := os.MkdirAll(*dump, 0o755); err != nil {
			log.Fatalf("imagegen: creating %s: %v", *dump, err)
		}
		for i, p := range ds.Photos {
			name := filepath.Join(*dump, fmt.Sprintf("photo_%04d_scene%d.pgm", i, p.Scene))
			f, err := os.Create(name)
			if err != nil {
				log.Fatalf("imagegen: creating %s: %v", name, err)
			}
			err = simimg.WritePGM(f, p.Img)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				log.Fatalf("imagegen: writing %s: %v", name, err)
			}
		}
		fmt.Printf("\nwrote %d PGM files to %s\n", len(ds.Photos), *dump)
	}
}
