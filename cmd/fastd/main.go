// Command fastd serves a FAST index over HTTP: the /v1 JSON API of
// internal/server (query, insert, delete, snapshot, restore, stats) with
// admission control and request coalescing in front of the engine.
//
// The index is bootstrapped either from a snapshot written by a previous
// run (or by fastctl snapshot):
//
//	fastd -addr :8093 -snapshot index.fast
//
// or, for demos and smoke tests, from a freshly generated synthetic
// corpus:
//
//	fastd -addr :8093 -photos 300 -scenes 10
//
// Snapshots are kept in rotated generations (index.fast, index.fast.1,
// ...): every write lands in a temp file, is fsynced, and is renamed into
// place only after the previous generation has been rotated aside, so a
// crash mid-snapshot never loses the last good index. At startup the
// daemon sweeps abandoned temp files and walks the generations
// newest-first until one passes its checksums; /v1/stats reports which
// generation loaded and why.
//
// With -cold-dir the index runs in two tiers: a hot in-RAM tier and a
// disk-resident tier of mmap'd immutable segments, with a background
// compactor migrating entries beyond -cold-watermark to disk. Queries
// answer byte-identically to an all-RAM engine; see DESIGN.md, "Tiered
// index".
//
// On SIGINT/SIGTERM the daemon drains: health checks start failing, new
// requests are refused, in-flight requests finish, and (with
// -final-snapshot) the index is persisted so the next run can resume it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/fastrepro/fast/internal/chunk"
	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/placement"
	"github.com/fastrepro/fast/internal/replica"
	"github.com/fastrepro/fast/internal/server"
	"github.com/fastrepro/fast/internal/store"
	"github.com/fastrepro/fast/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fastd: ")
	var (
		addr        = flag.String("addr", ":8093", "listen address")
		snapshot    = flag.String("snapshot", "", "bootstrap the index from this snapshot (generations tried newest-first)")
		finalSnap   = flag.String("final-snapshot", "", "write the index here during graceful shutdown (rotating generations)")
		generations = flag.Int("snapshot-generations", 2, "snapshot generations to keep (primary + fallbacks)")
		chunked     = flag.Bool("snapshot-chunked", true, "write snapshots as content-addressed chunk manifests (dedup across generations)")
		chunkAvg    = flag.Int("snapshot-chunk-avg", 0, "target chunk size in bytes for chunked snapshots, a power of two (0 = production default 64KB; lower it so small indexes still split into enough chunks to diff)")
		photos      = flag.Int("photos", 300, "synthetic bootstrap corpus size (ignored with -snapshot)")
		scenes      = flag.Int("scenes", 10, "synthetic bootstrap scene count (ignored with -snapshot)")
		seed        = flag.Int64("seed", 1, "synthetic bootstrap generator seed")
		window      = flag.Duration("window", 2*time.Millisecond, "request-coalescing window (0 disables)")
		batchMax    = flag.Int("batch-max", 32, "max probes per coalesced batch")
		workers     = flag.Int("workers", 0, "engine workers per coalesced batch (0 = GOMAXPROCS)")
		maxInflight = flag.Int("max-inflight", 0, "admission: concurrent request limit (0 = 8*GOMAXPROCS)")
		maxQueue    = flag.Int("max-queue", 0, "admission: waiting-line limit before 429 (0 = 4*max-inflight)")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests on shutdown")
		sumCache    = flag.Int("summary-cache", 4096, "probe-summary cache entries (0 disables the tier)")
		resCache    = flag.Int("result-cache", 8192, "ranked-result cache entries (0 disables the tier)")
		shardIndex  = flag.Int("shard-index", -1, "cluster shard mode: serve only the photos the placement ring assigns this shard (-1 = single node)")
		shardCount  = flag.Int("shard-count", 0, "cluster shard mode: total shard count (required with -shard-index)")
		vnodes      = flag.Int("placement-vnodes", placement.DefaultVNodes, "placement ring virtual nodes per shard (must match the router's)")
		placeSeed   = flag.Uint64("placement-seed", 0, "placement ring hash seed (must match the router's)")
		placeEpoch  = flag.Uint64("placement-epoch", 0, "placement ring epoch (live ring updates must advance past it)")
		replicas    = flag.Int("replicas", 1, "cluster shard mode: replica factor n — this shard keeps every photo whose n-owner set it belongs to")
		peers       = flag.String("peers", "", "cluster shard mode: comma-separated peer shard base URLs, indexed by shard number (enables live ring migration)")
		scratchDir  = flag.String("migrate-scratch", "", "scratch directory for chunk-diff peer fetches during ring migration (empty = stream full snapshots)")
		groupExpand = flag.Int("group-expand", 0, "engine group expansion for synthetic bootstraps (0 = engine default, negative disables; forced off in shard mode)")
		coldDir     = flag.String("cold-dir", "", "directory for the disk-resident cold index tier (empty = all-RAM engine)")
		coldWM      = flag.Int("cold-watermark", 0, "hot-tier entry bound: the background compactor migrates entries beyond it to the cold tier (0 = manual migration only)")
		coldBatch   = flag.Int("cold-batch", 0, "entries per cold-tier migration segment (0 = default 256)")
	)
	flag.Parse()

	shardMode := *shardIndex >= 0
	if shardMode && (*shardCount < 1 || *shardIndex >= *shardCount) {
		log.Fatalf("-shard-index %d needs -shard-count > shard-index", *shardIndex)
	}
	// Group expansion re-queries the index with stored summaries of the top
	// hits. Across shards that walk would cross shard boundaries — each
	// shard only holds its own photos — so routed answers could never be
	// byte-identical to a single node. Shard mode therefore forces it off.
	if shardMode && *groupExpand >= 0 {
		if *groupExpand > 0 {
			log.Printf("shard mode: overriding -group-expand %d to disabled (expansion crosses shard boundaries)", *groupExpand)
		}
		*groupExpand = -1
	}

	eng, recovery, err := bootstrap(*snapshot, *generations, *photos, *scenes, *seed, *groupExpand)
	if err != nil {
		log.Fatal(err)
	}

	var shardCfg *server.ShardConfig
	if shardMode {
		if *replicas < 1 || *replicas > *shardCount {
			log.Fatalf("-replicas %d must be in [1, shard-count]", *replicas)
		}
		ringCfg := placement.Config{Shards: *shardCount, VNodes: *vnodes, Seed: *placeSeed, Epoch: *placeEpoch}
		ring, err := placement.New(ringCfg)
		if err != nil {
			log.Fatal(err)
		}
		if eng.GroupExpand() > 0 {
			log.Printf("warning: snapshot-loaded engine has group expansion enabled; sharded answers will not be byte-identical to a single node")
		}
		// Subset the bootstrapped corpus down to this shard's ownership.
		// Dropping non-owned photos from a common corpus (instead of
		// building an independent index per shard) keeps the trained PCA
		// basis — and therefore every score — identical across shards.
		// Ownership is Owners(id, replicas) membership, NOT primacy: with
		// -replicas n > 1 this shard also keeps the photos it backs up, the
		// copies replica reads and fail-over answers are served from.
		kept, dropped, err := replica.Subset(eng, ring, *replicas, *shardIndex)
		if err != nil {
			log.Fatalf("shard subset: %v", err)
		}
		log.Printf("shard %d/%d rf=%d: owns %d photos (dropped %d non-owned, ring fingerprint %016x)",
			*shardIndex, *shardCount, *replicas, kept, dropped, ring.Fingerprint())

		shardCfg = &server.ShardConfig{Index: *shardIndex, Ring: ringCfg, Replicas: *replicas}
		if *peers != "" {
			urls := strings.Split(*peers, ",")
			shardCfg.Fetcher = replica.NewFetcher(urls, *scratchDir)
		}
	}
	// Cache tiers are serving-side configuration, not index contents, so they
	// are applied here rather than persisted in snapshots; /v1/restore carries
	// them onto replacement engines.
	eng.ConfigureCache(*sumCache, *resCache)

	// The cold tier is likewise serving-side state: hot snapshots never
	// contain it (its segments are already durable in -cold-dir), and
	// /v1/restore adopts the open store onto replacement engines. Enabling
	// it after bootstrap reconciles ids the cold catalog already owns out of
	// the snapshot-loaded hot tier, so a crash between migration and
	// snapshot never double-serves an entry.
	if *coldDir != "" {
		swept, err := eng.EnableColdTier(*coldDir, *coldWM, *coldBatch)
		if err != nil {
			log.Fatalf("cold tier: %v", err)
		}
		for _, p := range swept {
			log.Printf("cold tier: removed abandoned temp file %s", p)
		}
		cs := eng.ColdStats()
		log.Printf("cold tier %s: %d entries in %d segments (%d bytes on disk, %d tombstones), watermark %d",
			*coldDir, cs.Entries, cs.Segments, cs.DiskBytes, cs.Tombstones, *coldWM)
	}

	// The persistent generation store backs both POST /v1/snapshot/save and
	// the shutdown snapshot, so a hot save and the final one dedup against
	// each other's chunks.
	var snaps *store.Generations
	if *finalSnap != "" {
		var cdc chunk.Config
		if *chunkAvg > 0 {
			// Scale the whole geometry around the requested average (min at
			// avg/8, max at 8×avg — the spread the benchmark suite uses).
			cdc = chunk.Config{MinSize: *chunkAvg / 8, AvgSize: *chunkAvg, MaxSize: *chunkAvg * 8}
		}
		snaps = &store.Generations{Path: *finalSnap, Keep: *generations, Chunked: *chunked, CDC: cdc}
	}

	srv, err := server.New(server.Config{
		Engine:       eng,
		Window:       *window,
		BatchMax:     *batchMax,
		BatchWorkers: *workers,
		MaxInflight:  *maxInflight,
		MaxQueue:     *maxQueue,
		Recovery:     recovery,
		Snapshots:    snaps,
		Shard:        shardCfg,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen %s: %v", *addr, err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
	}()
	log.Printf("serving %d photos on %s (window %v, batch-max %d, caches %d/%d)",
		eng.Len(), ln.Addr(), *window, *batchMax, *sumCache, *resCache)

	// Wait for a shutdown signal, then drain: refuse new work, let
	// http.Server.Shutdown wait out the in-flight handlers, stop the
	// coalescers, and only then cut the final snapshot — so it contains
	// every insert the server acknowledged.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	log.Printf("%v: draining...", got)

	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		// Drain timeout: handlers are still running, so server.Close's
		// precondition (no handler still submitting to the coalescers) does
		// not hold — closing the job channels under them would panic a
		// straggler on send. Force-close the connections and leave the
		// coalescers alone; the process is about to exit, and anything not
		// yet acknowledged is by definition not owed to a client.
		log.Printf("shutdown: %v (forcing close)", err)
		httpSrv.Close()
	} else {
		srv.Close()
	}

	if snaps != nil {
		res, err := snaps.WriteSnapshot(srv.Engine())
		if err != nil {
			log.Fatalf("final snapshot: %v", err)
		}
		if res.Chunked {
			log.Printf("final snapshot written to %s: %d logical bytes in %d physical (%.1fx dedup; %d/%d chunks reused; GC reclaimed %d chunks / %d bytes)",
				*finalSnap, res.LogicalBytes, res.PhysicalBytes, res.DedupRatio(),
				res.ChunksReused, res.Chunks, res.GCChunks, res.GCBytes)
		} else {
			log.Printf("final snapshot written to %s (%d bytes)", *finalSnap, res.LogicalBytes)
		}
	}
	// Stop the background compactor and unmap the cold segments; the cold
	// tier's own state is already durable (every migration publishes its
	// catalog before the view), so this is teardown, not persistence.
	if *coldDir != "" {
		if err := srv.Engine().CloseColdTier(); err != nil {
			log.Printf("cold tier close: %v", err)
		}
	}
	log.Println("bye")
}

// bootstrap loads the engine from the snapshot generations (sweeping
// aborted temp files and falling back to older generations when the
// primary is torn or corrupt), or builds one over a synthetic corpus when
// no snapshot is given. The returned RecoveryInfo is nil for synthetic
// bootstraps.
func bootstrap(snapshot string, generations, photos, scenes int, seed int64, groupExpand int) (*core.Engine, *store.RecoveryInfo, error) {
	if snapshot != "" {
		g := &store.Generations{Path: snapshot, Keep: generations}
		var eng *core.Engine
		t0 := time.Now()
		info, err := g.Recover(func(path string, r io.Reader) error {
			e, err := core.ReadEngine(r)
			if err != nil {
				return err
			}
			eng = e
			return nil
		})
		if err != nil {
			return nil, nil, fmt.Errorf("recovering snapshot %s: %w", snapshot, err)
		}
		for _, p := range info.Swept {
			log.Printf("recovery: removed abandoned temp file %s", p)
		}
		if info.Fallback {
			log.Printf("recovery: fell back to generation %d (%s): %v",
				info.Generation, info.Loaded, info.Errors)
		}
		log.Printf("loaded %d photos from %s in %v", eng.Len(), info.Loaded, time.Since(t0).Round(time.Millisecond))
		return eng, &info, nil
	}

	ds, err := workload.Generate(workload.Spec{
		Name:        "fastd",
		Scenes:      scenes,
		Photos:      photos,
		Subjects:    4,
		SubjectRate: 0.2,
		Resolution:  64,
		Seed:        seed,
		SceneBase:   6000,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("generating bootstrap corpus: %w", err)
	}
	eng := core.NewEngine(core.Config{GroupExpand: groupExpand})
	t0 := time.Now()
	if _, err := eng.Build(ds.Photos); err != nil {
		return nil, nil, fmt.Errorf("building bootstrap index: %w", err)
	}
	log.Printf("built synthetic index (%d photos, %d scenes) in %v",
		photos, scenes, time.Since(t0).Round(time.Millisecond))
	return eng, nil, nil
}
