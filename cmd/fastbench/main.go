// Command fastbench regenerates the paper's evaluation: every table and
// figure of Section IV, plus the ablation sweeps. Run it with no flags to
// reproduce everything at the default scale, or select one experiment:
//
//	fastbench -exp fig6
//	fastbench -exp all -scale 10000 -queries 25
//
// Experiment IDs: table1, table2, fig3, fig4, table3, table4, fig5, fig6,
// fig7, qps, ingest, serve, snapshot, fig8a, fig8b, ablation. The qps
// experiment reports queries/sec of the sharded concurrent engine
// (Engine.QuerySummaryBatch) at increasing worker counts with the query
// front half hoisted out of the timed region; the ingest experiment
// reports photos/sec of the staged parallel ingest pipeline
// (Engine.InsertBatch) and writes BENCH_ingest.json to -artifacts; the
// serve experiment drives the HTTP serving layer (internal/server) with 64
// concurrent clients, compares coalesced vs naive dispatch, and writes
// BENCH_serve.json to -artifacts; the snapshot experiment measures
// bytes/generation of content-addressed delta snapshots against
// monolithic rewrites at increasing churn and writes BENCH_snapshot.json;
// the cluster experiment runs a 3-shard router + single-node oracle over
// real HTTP, verifies routed answers byte-identical, degrades through
// shard kills, measures replica chunk-diff catch-up, and writes
// BENCH_cluster.json.
//
// For performance work, -cpuprofile and -memprofile write standard pprof
// profiles of the selected experiments:
//
//	fastbench -exp ingest -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/fastrepro/fast/internal/experiments"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment ID to run, or 'all'")
		scale      = flag.Int("scale", 20000, "downscale factor for the paper's photo counts")
		queries    = flag.Int("queries", 15, "real queries per accuracy cell")
		seed       = flag.Int64("seed", 42, "workload seed")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		artifacts  = flag.String("artifacts", ".", "directory for machine-readable results (e.g. BENCH_ingest.json)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	if *list {
		for _, ex := range experiments.All() {
			fmt.Printf("%-10s %s\n", ex.ID, ex.Title)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fastbench: creating CPU profile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "fastbench: starting CPU profile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	env := experiments.NewEnv(experiments.Options{
		Scale:       *scale,
		Queries:     *queries,
		Seed:        *seed,
		Out:         os.Stdout,
		ArtifactDir: *artifacts,
	})

	var toRun []experiments.Experiment
	if *exp == "all" {
		toRun = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			ex, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			toRun = append(toRun, ex)
		}
	}

	start := time.Now()
	for _, ex := range toRun {
		t0 := time.Now()
		if err := ex.Run(env); err != nil {
			fmt.Fprintf(os.Stderr, "fastbench: %s failed: %v\n", ex.ID, err)
			os.Exit(1)
		}
		fmt.Printf("\n[%s completed in %v]\n", ex.ID, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("\nall experiments completed in %v\n", time.Since(start).Round(time.Millisecond))

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fastbench: creating heap profile: %v\n", err)
			os.Exit(1)
		}
		runtime.GC() // settle allocations so the profile reflects live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "fastbench: writing heap profile: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
}
