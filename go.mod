module github.com/fastrepro/fast

go 1.22
