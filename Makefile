# Developer entry points mirroring the CI pipeline (.github/workflows/ci.yml).
# `make ci` runs the same gate the workflow enforces on every push/PR.

GO ?= go

.PHONY: build test race vet bench bench-ingest fmt-check ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector multiplies runtime ~10x, so restrict it to the internal
# packages (where all shared mutable state lives) and the -short variants of
# the churn tests.
race:
	$(GO) test -race -short -timeout=30m ./internal/...

vet:
	$(GO) vet ./...

# Bench smoke: one iteration of every benchmark proves the measurement
# harness still compiles and runs; it is not a performance gate.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run='^$$' ./...

# Ingest throughput sweep: streams the Wuhan corpus through the staged
# parallel pipeline (Engine.InsertBatch) at 1/4/GOMAXPROCS workers and
# writes BENCH_ingest.json for artifact tracking.
bench-ingest:
	$(GO) run ./cmd/fastbench -exp ingest -scale 60000

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: fmt-check build vet test race bench
	@echo "ci: all checks passed"
