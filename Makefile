# Developer entry points mirroring the CI pipeline (.github/workflows/ci.yml).
# `make ci` runs the same gate the workflow enforces on every push/PR.

GO ?= go

.PHONY: build test race vet bench bench-ingest bench-serve bench-cache bench-query bench-snapshot bench-cluster bench-tiered bench-gate serve fmt-check fuzz soak ci

# Per-target budget for `make fuzz`; CI uses 60s per target.
FUZZTIME ?= 30s

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector multiplies runtime ~10x, so restrict it to the internal
# packages (where all shared mutable state lives) and the -short variants of
# the churn tests.
race:
	$(GO) test -race -short -timeout=45m ./internal/...

vet:
	$(GO) vet ./...

# Bench smoke: one iteration of every benchmark proves the measurement
# harness still compiles and runs; it is not a performance gate.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run='^$$' ./...

# Ingest throughput sweep: streams the Wuhan corpus through the staged
# parallel pipeline (Engine.InsertBatch) at 1/4/GOMAXPROCS workers and
# writes BENCH_ingest.json for artifact tracking.
bench-ingest:
	$(GO) run ./cmd/fastbench -exp ingest -scale 60000

# Serving benchmark: boots the HTTP serving layer on a loopback listener,
# drives it with 64 concurrent clients in naive (window=0) and coalesced
# modes, verifies the answers match, and writes BENCH_serve.json.
bench-serve:
	$(GO) run ./cmd/fastbench -exp serve -scale 60000

# Read-path cache sweep: replays a probe stream at 0/50/90% reuse with the
# cache tiers off and cold-on, verifies every cached answer byte-identical
# to a cold recompute, and writes BENCH_cache.json. The identity check is a
# hard gate: any divergence fails the run.
bench-cache:
	$(GO) run ./cmd/fastbench -exp cache -scale 60000

# Query throughput baseline: the QueryBatch worker sweep, written to
# BENCH_query.json (QPS + p50/p95/p99) for run-over-run tracking.
bench-query:
	$(GO) run ./cmd/fastbench -exp qps -scale 60000

# Snapshot cost sweep: writes chunked generations at 0/1/5/50% insert churn,
# compares bytes/generation against monolithic rewrites, verifies every
# level recovers byte-identical, and writes BENCH_snapshot.json. The ≤5%
# churn levels must dedup ≥10x or the run fails. Runs at scale 20000 (the
# 1050-photo Wuhan corpus) so snapshots split into enough chunks for the
# dedup measurement to be meaningful.
bench-snapshot:
	$(GO) run ./cmd/fastbench -exp snapshot -scale 20000

# Cluster tier: 3 HTTP shards behind the fan-out router vs a single-node
# oracle (answers must be byte-identical through the wire), degradation
# through shard kills (partial, then quorum loss), and replica chunk-diff
# catch-up, written to BENCH_cluster.json. The incremental catch-up must
# move <25% of a full snapshot at ~5% churn or the run fails. Runs at
# scale 20000 (1050 photos) so the gate is enforced.
bench-cluster:
	$(GO) run ./cmd/fastbench -exp cluster -scale 20000

# Tiered-index benchmark: an all-RAM oracle vs a tiered engine serving a
# corpus ~12x larger than its hot watermark from mmap'd cold segments.
# Answers at every stage (migration, churn, compaction) must be
# byte-identical to the oracle, the corpus must be ≥10x the watermark, and
# tiered qps must stay within 10x of all-RAM — all three are hard gates
# inside the experiment. Runs at scale 20000 (1050 photos) so the scale
# gates are enforced; writes BENCH_tiered.json.
bench-tiered:
	$(GO) run ./cmd/fastbench -exp tiered -scale 20000

# Perf-regression gate: re-measure the query sweep into a scratch directory
# and compare it against the committed BENCH_query.json baseline. Fails on a
# >20% qps drop or a p99 blowup on any common worker count — the same check
# the CI perf-gate job enforces. Refresh the baseline with `make bench-query`
# (which overwrites BENCH_query.json in place) when a change legitimately
# moves throughput.
bench-gate:
	@mkdir -p .benchgate
	$(GO) run ./cmd/fastbench -exp qps -scale 60000 -artifacts .benchgate
	$(GO) run ./cmd/benchgate -baseline BENCH_query.json -candidate .benchgate/BENCH_query.json

# Boot a demo daemon over a small synthetic corpus. Ctrl-C drains and
# writes fastd.snapshot for the next run.
serve:
	$(GO) run ./cmd/fastd -addr 127.0.0.1:8093 -photos 120 -scenes 6 -final-snapshot fastd.snapshot

# Run every native fuzz target for FUZZTIME each (override: make fuzz
# FUZZTIME=5m). Seed corpora live under each package's testdata/fuzz/.
fuzz:
	$(GO) test -run='^$$' -fuzz='^FuzzDecodeImage$$' -fuzztime=$(FUZZTIME) ./internal/server
	$(GO) test -run='^$$' -fuzz='^FuzzDecodeQueryRequest$$' -fuzztime=$(FUZZTIME) ./internal/server
	$(GO) test -run='^$$' -fuzz='^FuzzReadEngine$$' -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz='^FuzzReadManifest$$' -fuzztime=$(FUZZTIME) ./internal/store
	$(GO) test -run='^$$' -fuzz='^FuzzCuckooInsertDelete$$' -fuzztime=$(FUZZTIME) ./internal/cuckoo

# Failpoint soak: every fault-injection suite (snapshot crash matrix,
# chunk-store crash matrix + GC interleavings, generation rotation,
# injected 429/503 bursts, transport faults, cuckoo exhaustion/rehash,
# interrupted catch-up streams, router fan-out/merge faults, tiered
# migration crash matrix + cold-tier churn) repeated under the race
# detector.
soak:
	$(GO) test -race -count=3 ./internal/failpoint/
	$(GO) test -race -count=3 -timeout=30m \
		-run='CrashRecovery|Generations|Injected|Recovery|Retry|Deadline|Transport|Interleaving|Churn|Interrupted|Fanout|PartialAndQuorum|Replica|RingUpdate|RingTransition' \
		./internal/core/ ./internal/store/ ./internal/cuckoo/ ./internal/client/ ./internal/router/ ./internal/replica/ ./internal/tiered/

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: fmt-check build vet test race bench
	@echo "ci: all checks passed"
