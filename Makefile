# Developer entry points mirroring the CI pipeline (.github/workflows/ci.yml).
# `make ci` runs the same gate the workflow enforces on every push/PR.

GO ?= go

.PHONY: build test race vet bench bench-ingest bench-serve bench-cache bench-query serve fmt-check ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector multiplies runtime ~10x, so restrict it to the internal
# packages (where all shared mutable state lives) and the -short variants of
# the churn tests.
race:
	$(GO) test -race -short -timeout=30m ./internal/...

vet:
	$(GO) vet ./...

# Bench smoke: one iteration of every benchmark proves the measurement
# harness still compiles and runs; it is not a performance gate.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run='^$$' ./...

# Ingest throughput sweep: streams the Wuhan corpus through the staged
# parallel pipeline (Engine.InsertBatch) at 1/4/GOMAXPROCS workers and
# writes BENCH_ingest.json for artifact tracking.
bench-ingest:
	$(GO) run ./cmd/fastbench -exp ingest -scale 60000

# Serving benchmark: boots the HTTP serving layer on a loopback listener,
# drives it with 64 concurrent clients in naive (window=0) and coalesced
# modes, verifies the answers match, and writes BENCH_serve.json.
bench-serve:
	$(GO) run ./cmd/fastbench -exp serve -scale 60000

# Read-path cache sweep: replays a probe stream at 0/50/90% reuse with the
# cache tiers off and cold-on, verifies every cached answer byte-identical
# to a cold recompute, and writes BENCH_cache.json. The identity check is a
# hard gate: any divergence fails the run.
bench-cache:
	$(GO) run ./cmd/fastbench -exp cache -scale 60000

# Query throughput baseline: the QueryBatch worker sweep, written to
# BENCH_query.json (QPS + p50/p95/p99) for run-over-run tracking.
bench-query:
	$(GO) run ./cmd/fastbench -exp qps -scale 60000

# Boot a demo daemon over a small synthetic corpus. Ctrl-C drains and
# writes fastd.snapshot for the next run.
serve:
	$(GO) run ./cmd/fastd -addr 127.0.0.1:8093 -photos 120 -scenes 6 -final-snapshot fastd.snapshot

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: fmt-check build vet test race bench
	@echo "ci: all checks passed"
