package failpoint

// The compiled-in failpoint site inventory. Each constant names one place
// production code consults the framework; the prefix is the owning
// package. DESIGN.md ("Failure model & recovery") documents what failure
// each site simulates and which tests drive it.
const (
	// Snapshot serialization (internal/core). The header site guards the
	// container header write; the section site is evaluated before each
	// section payload; the read site simulates an I/O error at the start
	// of deserialization (distinct from corruption, which the per-section
	// CRCs detect organically).
	CoreSnapshotWriteHeader  = "core/snapshot-write-header"
	CoreSnapshotWriteSection = "core/snapshot-write-section"
	CoreSnapshotRead         = "core/snapshot-read"

	// On-disk snapshot generations (internal/store). Sites bracket every
	// step of the crash-safe write protocol: temp-file creation, the data
	// write itself (arm with a PartialWrite policy for torn writes), the
	// temp fsync, the generation rotation renames, the final rename into
	// place, and the directory sync. A Panic policy at rotate/rename
	// simulates dying inside the vulnerable window.
	StoreSnapshotCreate  = "store/snapshot-create"
	StoreSnapshotWrite   = "store/snapshot-write"
	StoreSnapshotSync    = "store/snapshot-sync"
	StoreSnapshotRotate  = "store/snapshot-rotate"
	StoreSnapshotRename  = "store/snapshot-rename"
	StoreSnapshotDirSync = "store/snapshot-dirsync"

	// Content-addressed chunk store (internal/store, chunked generations).
	// chunk-write fires before each chunk lands in the store, chunk-sync
	// before the chunk file's fsync, manifest-write before the manifest
	// temp file begins its publish sequence (which then runs through the
	// snapshot-* sites above), and chunk-gc at the top of the
	// post-publish / post-recover garbage-collection pass. A Panic policy
	// at chunk-gc simulates dying mid-GC; an Error policy there skips the
	// pass (GC is advisory — the snapshot itself is already durable).
	StoreChunkWrite    = "store/chunk-write"
	StoreChunkSync     = "store/chunk-sync"
	StoreManifestWrite = "store/manifest-write"
	StoreChunkGC       = "store/chunk-gc"

	// Replica catch-up over the chunk store (internal/store). chunk-fetch
	// fires before each missing chunk is consumed from a delta stream on
	// the replica side: an Error policy aborts the transfer mid-stream
	// (the chunks already landed stay durable, so the resumed catch-up is
	// diff-only), a Delay policy simulates a slow primary.
	StoreChunkFetch = "store/chunk-fetch"

	// Query router (internal/router). fanout fires once per shard before
	// the sub-query is issued — Error marks that shard failed (driving the
	// partial-result path deterministically), Delay simulates a slow shard
	// inside the per-shard timeout. merge fires before per-shard answers
	// are merged; Error fails the whole query after fan-out.
	RouterFanout = "router/fanout"
	RouterMerge  = "router/merge"

	// Serving layer (internal/server). The dispatch sites run at the top
	// of the coalesced batch dispatchers: Delay simulates a slow engine,
	// Error fails the whole batch, Panic exercises the dispatcher's
	// panic containment. The inject sites fire in the request gate and
	// synthesize admission-control backpressure (429 with Retry-After,
	// 503) without needing real overload — the client retry tests drive
	// bursts through them.
	ServerDispatchQuery  = "server/dispatch-query"
	ServerDispatchInsert = "server/dispatch-insert"
	ServerInject429      = "server/inject-429"
	ServerInject503      = "server/inject-503"

	// Client transport (internal/client): fires before each HTTP attempt;
	// Error simulates a transport failure (connection reset), Delay a slow
	// network.
	ClientTransport = "client/transport"

	// Cuckoo storage (internal/cuckoo). insert-full forces a kick-chain
	// exhaustion (the paper's rare rehash event) so the stash/rehash
	// machinery can be driven at will; rehash fires at the top of the
	// Resizable grow path.
	CuckooInsertFull = "cuckoo/insert-full"
	CuckooRehash     = "cuckoo/rehash"

	// Disk-resident cold tier (internal/tiered, internal/core). The sites
	// bracket the three steps of the hot→cold migration protocol, in
	// order: segment-write fires inside the segment temp-file write (arm
	// with PartialWrite for a torn segment), segment-publish fires after
	// the segment file is durable but before the catalog generation that
	// references it is published (a crash here leaves an orphan segment
	// the next open sweeps), and migrate fires after the catalog publish
	// but before the migrated entries are removed from the hot tier (a
	// crash here leaves ids resident in both tiers, which recovery
	// reconciles and queries dedup in the meantime).
	TieredSegmentWrite   = "tiered/segment-write"
	TieredSegmentPublish = "tiered/segment-publish"
	TieredMigrate        = "tiered/migrate"

	// Replica-aware routing (internal/router). replica-pick fires while a
	// read policy is choosing its target subset — Error makes the router
	// fall back to the full all-shards fan-out (never a wrong answer, only
	// lost read scaling). hedge fires before a hedged query launches its
	// reserve shards — Error suppresses the hedge so the slow leg must be
	// repaired by the failure fallback instead.
	RouterReplicaPick = "router/replica-pick"
	RouterHedge       = "router/hedge"

	// Live ring reconfiguration (internal/server shard side). ring-install
	// fires inside POST /v1/ring prepare before the pending ring is
	// adopted (Error rejects the install, leaving the current epoch fully
	// intact); migrate fires per peer inside the background acquire loop
	// (Error fails the migration, parking the shard in state "failed"
	// where a re-prepare restarts it — the old epoch keeps serving
	// throughout, and commit is refused until a later attempt succeeds).
	ShardRingInstall = "shard/ring-install"
	ShardMigrate     = "shard/migrate"
)
