// Package failpoint is a deterministic fault-injection framework for
// exercising the failure paths production traffic hits but the happy-path
// tests never do: torn snapshot writes, fsync errors, slow or dying batch
// dispatch, transport faults, cuckoo kick-chain exhaustion.
//
// Design constraints, in order:
//
//   - Zero cost when disabled. Eval and Wrap begin with a single atomic
//     load of a package counter; with no site armed they return
//     immediately, so sites can sit on hot paths (snapshot streaming,
//     cuckoo insertion) without a measurable production tax.
//   - Deterministic. Probabilistic policies draw from a per-site RNG
//     seeded from a global seed plus the site name, so a failing run
//     reproduces from its seed alone.
//   - Explicit inventory. Every site compiled into the binary is a named
//     constant in this package (see sites.go); DESIGN.md documents the
//     full list.
//
// Activation is programmatic (Enable/Disable, used by tests) or via the
// environment for whole-process experiments:
//
//	FAST_FAILPOINTS='store/snapshot-sync=error;client/transport=error:odds=0.3,times=5'
//	FAST_FAILPOINTS_SEED=42
//
// The spec grammar per site is action[(arg)][:mod=val,...] with actions
// error(msg), delay(duration), panic, partial(bytes) and modifiers odds
// (probability in (0,1]), skip (ignore the first N evaluations), times
// (disarm after N fires).
package failpoint

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the default error returned by a firing error or
// partial-write policy. Injected failures wrap it, so code under test can
// assert errors.Is(err, failpoint.ErrInjected).
var ErrInjected = errors.New("failpoint: injected fault")

// Action selects what a firing site does.
type Action int

const (
	// Error makes Eval return the policy error.
	Error Action = iota
	// Delay makes Eval sleep for Policy.Delay, then return nil.
	Delay
	// Panic makes Eval panic (simulating a crash; pair with recover or a
	// subprocess in tests).
	Panic
	// PartialWrite applies only through Wrap: the wrapped writer passes
	// Policy.Bytes bytes through, then fails every subsequent write. Eval
	// treats it as a no-op so one site can guard both the call and the
	// stream it writes.
	PartialWrite
)

// Policy describes how an armed site misbehaves.
type Policy struct {
	Action Action
	// Err is returned by firing Error/PartialWrite policies; nil selects
	// a message wrapping ErrInjected.
	Err error
	// Delay is the sleep for Action == Delay.
	Delay time.Duration
	// Bytes is the number of bytes a PartialWrite lets through before
	// failing.
	Bytes int64
	// Odds is the probability an evaluation fires, drawn from the site's
	// deterministic RNG. 0 or >= 1 means always.
	Odds float64
	// Skip suppresses the first Skip evaluations.
	Skip int
	// Times disarms the site after it has fired this many times; 0 means
	// unlimited.
	Times int
}

// state is one armed site.
type state struct {
	p     Policy
	rng   *rand.Rand
	evals int
	fires int
}

var (
	// active counts armed sites; Eval/Wrap fast-path on it being zero.
	active atomic.Int32

	mu    sync.Mutex
	sites       = map[string]*state{}
	seed  int64 = 1
)

// SetSeed fixes the base seed of every subsequently armed site's RNG.
func SetSeed(s int64) {
	mu.Lock()
	defer mu.Unlock()
	seed = s
}

// Enable arms site with p, replacing any existing policy (and resetting
// its counters).
func Enable(site string, p Policy) {
	if p.Err == nil {
		p.Err = fmt.Errorf("%w at %s", ErrInjected, site)
	}
	mu.Lock()
	defer mu.Unlock()
	if _, ok := sites[site]; !ok {
		active.Add(1)
	}
	h := fnv.New64a()
	io.WriteString(h, site)
	sites[site] = &state{p: p, rng: rand.New(rand.NewSource(seed ^ int64(h.Sum64())))}
}

// Disable disarms site. Disabling an unarmed site is a no-op.
func Disable(site string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := sites[site]; ok {
		delete(sites, site)
		active.Add(-1)
	}
}

// Reset disarms every site.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	active.Add(-int32(len(sites)))
	sites = map[string]*state{}
}

// Enabled reports whether site is armed (fired-out sites still count).
func Enabled(site string) bool {
	if active.Load() == 0 {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	_, ok := sites[site]
	return ok
}

// Hits returns how many times site has fired since it was armed.
func Hits(site string) int {
	mu.Lock()
	defer mu.Unlock()
	if st, ok := sites[site]; ok {
		return st.fires
	}
	return 0
}

// Evals returns how many times site has been evaluated since it was armed.
func Evals(site string) int {
	mu.Lock()
	defer mu.Unlock()
	if st, ok := sites[site]; ok {
		return st.evals
	}
	return 0
}

// List returns the armed site names, sorted.
func List() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(sites))
	for s := range sites {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Eval is the injection point: production code calls it where a fault
// could occur. With no site armed it costs one atomic load. When the
// site's policy fires, Error returns the policy error, Delay sleeps and
// returns nil, Panic panics; PartialWrite is a no-op here (see Wrap).
func Eval(site string) error {
	if active.Load() == 0 {
		return nil
	}
	return evalSlow(site)
}

func evalSlow(site string) error {
	p, fired := arm(site)
	if !fired {
		return nil
	}
	switch p.Action {
	case Error:
		return p.Err
	case Delay:
		time.Sleep(p.Delay)
		return nil
	case Panic:
		panic(fmt.Sprintf("failpoint: injected panic at %s", site))
	default: // PartialWrite only has meaning through Wrap.
		return nil
	}
}

// arm consumes one evaluation of site, returning its policy and whether
// it fires this time.
func arm(site string) (Policy, bool) {
	mu.Lock()
	defer mu.Unlock()
	st, ok := sites[site]
	if !ok {
		return Policy{}, false
	}
	st.evals++
	if st.evals <= st.p.Skip {
		return Policy{}, false
	}
	if st.p.Times > 0 && st.fires >= st.p.Times {
		return Policy{}, false
	}
	if st.p.Odds > 0 && st.p.Odds < 1 && st.rng.Float64() >= st.p.Odds {
		return Policy{}, false
	}
	st.fires++
	return st.p, true
}

// Wrap intercepts a write stream at site. With the site disarmed (or armed
// with a non-PartialWrite policy, or not firing) it returns w unchanged;
// when a PartialWrite policy fires it returns a writer that lets
// Policy.Bytes bytes through and fails afterwards — the torn-write
// simulator for snapshot durability tests.
func Wrap(site string, w io.Writer) io.Writer {
	if active.Load() == 0 {
		return w
	}
	mu.Lock()
	st, ok := sites[site]
	isPartial := ok && st.p.Action == PartialWrite
	mu.Unlock()
	if !isPartial {
		return w
	}
	p, fired := arm(site)
	if !fired {
		return w
	}
	return &partialWriter{w: w, left: p.Bytes, err: p.Err}
}

// partialWriter delivers the configured byte budget, then fails.
type partialWriter struct {
	w    io.Writer
	left int64
	err  error
}

func (p *partialWriter) Write(b []byte) (int, error) {
	if p.left <= 0 {
		return 0, p.err
	}
	if int64(len(b)) <= p.left {
		n, err := p.w.Write(b)
		p.left -= int64(n)
		return n, err
	}
	n, err := p.w.Write(b[:p.left])
	p.left -= int64(n)
	if err != nil {
		return n, err
	}
	return n, p.err
}

// --- spec parsing (environment activation) ---

// ParseSpec parses one policy spec: action[(arg)][:mod=val,...].
func ParseSpec(spec string) (Policy, error) {
	var p Policy
	head, mods, hasMods := strings.Cut(spec, ":")
	action, arg, hasArg := strings.Cut(head, "(")
	if hasArg {
		var ok bool
		arg, ok = strings.CutSuffix(arg, ")")
		if !ok {
			return p, fmt.Errorf("failpoint: unterminated argument in %q", spec)
		}
	}
	switch action {
	case "error":
		p.Action = Error
		if hasArg && arg != "" {
			p.Err = fmt.Errorf("%w: %s", ErrInjected, arg)
		}
	case "delay":
		p.Action = Delay
		if !hasArg {
			return p, fmt.Errorf("failpoint: delay needs a duration in %q", spec)
		}
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return p, fmt.Errorf("failpoint: bad delay %q", arg)
		}
		p.Delay = d
	case "panic":
		p.Action = Panic
	case "partial":
		p.Action = PartialWrite
		if !hasArg {
			return p, fmt.Errorf("failpoint: partial needs a byte count in %q", spec)
		}
		n, err := strconv.ParseInt(arg, 10, 64)
		if err != nil || n < 0 {
			return p, fmt.Errorf("failpoint: bad partial byte count %q", arg)
		}
		p.Bytes = n
	default:
		return p, fmt.Errorf("failpoint: unknown action %q", action)
	}
	if !hasMods {
		return p, nil
	}
	for _, mod := range strings.Split(mods, ",") {
		key, val, ok := strings.Cut(mod, "=")
		if !ok {
			return p, fmt.Errorf("failpoint: bad modifier %q", mod)
		}
		switch key {
		case "odds":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return p, fmt.Errorf("failpoint: bad odds %q", val)
			}
			p.Odds = f
		case "skip":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return p, fmt.Errorf("failpoint: bad skip %q", val)
			}
			p.Skip = n
		case "times":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return p, fmt.Errorf("failpoint: bad times %q", val)
			}
			p.Times = n
		default:
			return p, fmt.Errorf("failpoint: unknown modifier %q", key)
		}
	}
	return p, nil
}

// EnableFromEnv arms sites from a FAST_FAILPOINTS-style string:
// semicolon-separated site=spec pairs. It returns the first parse error
// but arms every valid pair before it.
func EnableFromEnv(env string) error {
	for _, pair := range strings.Split(env, ";") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		site, spec, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("failpoint: missing '=' in %q", pair)
		}
		p, err := ParseSpec(spec)
		if err != nil {
			return err
		}
		Enable(strings.TrimSpace(site), p)
	}
	return nil
}

func init() {
	if s := os.Getenv("FAST_FAILPOINTS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			SetSeed(v)
		}
	}
	if env := os.Getenv("FAST_FAILPOINTS"); env != "" {
		if err := EnableFromEnv(env); err != nil {
			fmt.Fprintf(os.Stderr, "failpoint: ignoring FAST_FAILPOINTS: %v\n", err)
			Reset()
		}
	}
}
