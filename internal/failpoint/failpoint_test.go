package failpoint

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestDisabledIsInert(t *testing.T) {
	Reset()
	if err := Eval("some/site"); err != nil {
		t.Fatalf("disabled Eval returned %v", err)
	}
	var buf bytes.Buffer
	if w := Wrap("some/site", &buf); w != &buf {
		t.Fatal("disabled Wrap did not return the writer unchanged")
	}
	if Enabled("some/site") {
		t.Fatal("unarmed site reports enabled")
	}
}

func TestErrorPolicy(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Enable("t/err", Policy{Action: Error})
	err := Eval("t/err")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if !strings.Contains(err.Error(), "t/err") {
		t.Fatalf("error does not name the site: %v", err)
	}
	if Hits("t/err") != 1 || Evals("t/err") != 1 {
		t.Fatalf("counters: hits=%d evals=%d", Hits("t/err"), Evals("t/err"))
	}
}

func TestCustomError(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	sentinel := errors.New("boom")
	Enable("t/custom", Policy{Action: Error, Err: sentinel})
	if err := Eval("t/custom"); !errors.Is(err, sentinel) {
		t.Fatalf("want sentinel, got %v", err)
	}
}

func TestSkipAndTimes(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Enable("t/st", Policy{Action: Error, Skip: 2, Times: 3})
	var fired int
	for i := 0; i < 10; i++ {
		if Eval("t/st") != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("skip=2 times=3 over 10 evals fired %d times, want 3", fired)
	}
	if Evals("t/st") != 10 || Hits("t/st") != 3 {
		t.Fatalf("counters: evals=%d hits=%d", Evals("t/st"), Hits("t/st"))
	}
}

func TestOddsDeterministic(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	run := func() []bool {
		SetSeed(7)
		Enable("t/odds", Policy{Action: Error, Odds: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = Eval("t/odds") != nil
		}
		Disable("t/odds")
		return out
	}
	a, b := run(), run()
	var fires int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at eval %d", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("odds 0.5 fired %d/%d times — not probabilistic", fires, len(a))
	}
}

func TestDelayPolicy(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Enable("t/delay", Policy{Action: Delay, Delay: 30 * time.Millisecond})
	start := time.Now()
	if err := Eval("t/delay"); err != nil {
		t.Fatalf("delay returned error %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay only slept %v", d)
	}
}

func TestPanicPolicy(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Enable("t/panic", Policy{Action: Panic})
	defer func() {
		if p := recover(); p == nil {
			t.Fatal("panic policy did not panic")
		}
	}()
	Eval("t/panic")
}

func TestPartialWrite(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Enable("t/partial", Policy{Action: PartialWrite, Bytes: 5})
	var buf bytes.Buffer
	w := Wrap("t/partial", &buf)
	n, err := w.Write([]byte("hello world"))
	if n != 5 || !errors.Is(err, ErrInjected) {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	if buf.String() != "hello" {
		t.Fatalf("delivered %q", buf.String())
	}
	if n, err := w.Write([]byte("x")); n != 0 || err == nil {
		t.Fatalf("post-budget write: n=%d err=%v", n, err)
	}
	// Eval at a PartialWrite site must be a no-op so a single site can
	// guard both the call and the stream.
	if err := Eval("t/partial"); err != nil {
		t.Fatalf("Eval on partial policy returned %v", err)
	}
}

func TestPartialWriteExactBudgetMultipleWrites(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Enable("t/partial2", Policy{Action: PartialWrite, Bytes: 6})
	var buf bytes.Buffer
	w := Wrap("t/partial2", &buf)
	if n, err := w.Write([]byte("abc")); n != 3 || err != nil {
		t.Fatalf("in-budget write: n=%d err=%v", n, err)
	}
	if n, err := w.Write([]byte("defg")); n != 3 || err == nil {
		t.Fatalf("budget-crossing write: n=%d err=%v", n, err)
	}
	if buf.String() != "abcdef" {
		t.Fatalf("delivered %q", buf.String())
	}
}

func TestWrapNonPartialPolicyLeavesWriter(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Enable("t/errsite", Policy{Action: Error})
	var buf bytes.Buffer
	if w := Wrap("t/errsite", &buf); w != io.Writer(&buf) {
		t.Fatal("Wrap intercepted a non-PartialWrite site")
	}
	// The non-matching Wrap must not consume a fire.
	if Hits("t/errsite") != 0 {
		t.Fatalf("Wrap consumed %d fires", Hits("t/errsite"))
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec string
		want Policy
	}{
		{"error", Policy{Action: Error}},
		{"error(disk gone)", Policy{Action: Error}},
		{"delay(15ms)", Policy{Action: Delay, Delay: 15 * time.Millisecond}},
		{"panic", Policy{Action: Panic}},
		{"partial(128)", Policy{Action: PartialWrite, Bytes: 128}},
		{"error:odds=0.25,skip=1,times=4", Policy{Action: Error, Odds: 0.25, Skip: 1, Times: 4}},
	}
	for _, tc := range cases {
		p, err := ParseSpec(tc.spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", tc.spec, err)
		}
		if p.Action != tc.want.Action || p.Delay != tc.want.Delay ||
			p.Bytes != tc.want.Bytes || p.Odds != tc.want.Odds ||
			p.Skip != tc.want.Skip || p.Times != tc.want.Times {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", tc.spec, p, tc.want)
		}
	}
	for _, bad := range []string{
		"explode", "delay", "delay(xyz)", "partial(-3)", "partial",
		"error:odds=2", "error:bogus=1", "error:times=x", "error(unterminated",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestEnableFromEnv(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	err := EnableFromEnv(" a/b=error ; c/d=delay(1ms):times=2 ;")
	if err != nil {
		t.Fatalf("EnableFromEnv: %v", err)
	}
	if got := List(); len(got) != 2 || got[0] != "a/b" || got[1] != "c/d" {
		t.Fatalf("armed sites: %v", got)
	}
	if err := EnableFromEnv("no-equals-here"); err == nil {
		t.Fatal("malformed env accepted")
	}
}

// BenchmarkEvalDisabled pins the zero-cost contract: with no site armed,
// Eval is a single atomic load and must stay in the ~1ns range. A
// regression here taxes every instrumented hot path in the tree.
func BenchmarkEvalDisabled(b *testing.B) {
	Reset()
	b.Cleanup(Reset)
	for i := 0; i < b.N; i++ {
		if err := Eval(CuckooInsertFull); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalArmedOtherSite measures the cost when some OTHER site is
// armed — instrumented paths pay a map lookup only in that regime.
func BenchmarkEvalArmedOtherSite(b *testing.B) {
	Reset()
	b.Cleanup(Reset)
	Enable(ClientTransport, Policy{Action: Error})
	for i := 0; i < b.N; i++ {
		if err := Eval(CuckooInsertFull); err != nil {
			b.Fatal(err)
		}
	}
}
