// Package baseline implements the three comparison schemes of the paper's
// evaluation:
//
//   - SIFT (Lowe, ICCV'99): exhaustive 128-d descriptors, brute-force
//     point-by-point matching, features stored in an SQL-backed database on
//     disk. The accuracy reference (100% in Table III) and the slowest
//     scheme everywhere else.
//   - PCA-SIFT (Ke & Sukthankar, CVPR'04): PCA-compacted descriptors with
//     the same brute-force matching and SQL storage; roughly an order of
//     magnitude faster than SIFT, still disk-bound.
//   - RNPE (Liu et al., ICDE'13): real-time near-duplicate photo
//     elimination via error-prone geo tags in an R-tree; fast at low load,
//     O(log n) lookups and tag errors cap its accuracy.
//
// All three implement core.Pipeline so the harness can drive them
// interchangeably with the FAST engine.
package baseline

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/feature"
	"github.com/fastrepro/fast/internal/linalg"
	"github.com/fastrepro/fast/internal/simimg"
	"github.com/fastrepro/fast/internal/store"
)

// maxCorrelationSample bounds the real matching work done per insert when
// extrapolating the brute-force correlation-identification cost.
const maxCorrelationSample = 8

// siftRecord is one indexed photo's descriptor set.
type siftRecord struct {
	id    uint64
	descs []linalg.Vector
	bytes int64
}

// SIFT is the exact-matching baseline.
type SIFT struct {
	Detect feature.DetectConfig
	// Ratio is the match ratio-test threshold; 0 means the library default.
	Ratio float64
	// MinScore drops photos whose match fraction is below this; 0 means 0.05.
	MinScore float64

	records []siftRecord
	byID    map[uint64]int
	sql     *store.SQLStore
	sim     core.SimCost
}

// NewSIFT returns an empty SIFT pipeline backed by a 7200RPM SQL store.
func NewSIFT() *SIFT {
	sql, err := store.NewSQLStore(store.HDD7200(), 0)
	if err != nil {
		panic(err) // impossible: valid constants
	}
	return &SIFT{byID: make(map[uint64]int), sql: sql}
}

// Name implements core.Pipeline.
func (s *SIFT) Name() string { return "SIFT" }

func (s *SIFT) minScore() float64 {
	if s.MinScore == 0 {
		return 0.05
	}
	return s.MinScore
}

// Build implements core.Pipeline.
func (s *SIFT) Build(photos []*simimg.Photo) (core.BuildStats, error) {
	var st core.BuildStats
	if len(photos) == 0 {
		return st, errors.New("baseline: empty corpus")
	}
	s.records = s.records[:0]
	s.byID = make(map[uint64]int, len(photos))
	for _, p := range photos {
		bs, err := s.insert(p)
		if err != nil {
			return st, err
		}
		st.Photos++
		st.FeatureTime += bs.FeatureTime
		st.IndexTime += bs.IndexTime
		st.Descriptors += bs.Descriptors
	}
	return st, nil
}

// Insert implements core.Pipeline.
func (s *SIFT) Insert(p *simimg.Photo) error {
	_, err := s.insert(p)
	return err
}

func (s *SIFT) insert(p *simimg.Photo) (core.BuildStats, error) {
	var st core.BuildStats
	if _, dup := s.byID[p.ID]; dup {
		return st, fmt.Errorf("baseline: photo %d already indexed", p.ID)
	}
	t0 := time.Now()
	_, descs, err := feature.SIFTDescribeAll(p.Img, s.Detect)
	if err != nil {
		return st, fmt.Errorf("baseline: SIFT features for %d: %w", p.ID, err)
	}
	st.FeatureTime = time.Since(t0)
	st.Descriptors = len(descs)

	t1 := time.Now()
	bytes := int64(len(descs) * feature.SIFTDim * 8)
	// Identifying correlated images requires brute-force feature
	// comparisons against every stored photo (the paper's explanation for
	// SIFT's index-storage cost and its linear insertion latency in
	// Figure 5). Matching is executed for real against a bounded sample and
	// extrapolated to the full store, so the code path is exercised without
	// making builds quadratic.
	correlation := s.correlationCost(descs)
	s.sim.ComputeTime += correlation
	s.byID[p.ID] = len(s.records)
	s.records = append(s.records, siftRecord{id: p.ID, descs: descs, bytes: bytes})
	// The features and metadata land in the SQL database on disk.
	lat := s.sql.Put(p.ID, bytes)
	s.sim.StorageTime += lat
	s.sim.Accesses++
	s.sim.BytesMoved += bytes
	st.IndexTime = time.Since(t1) + lat + correlation
	st.Photos = 1
	return st, nil
}

// correlationCost measures descriptor matching against up to
// maxCorrelationSample stored records and extrapolates to the full store.
func (s *SIFT) correlationCost(descs []linalg.Vector) time.Duration {
	n := len(s.records)
	if n == 0 || len(descs) == 0 {
		return 0
	}
	sample := n
	if sample > maxCorrelationSample {
		sample = maxCorrelationSample
	}
	t0 := time.Now()
	for i := 0; i < sample; i++ {
		feature.SimilarityScore(descs, s.records[n-1-i].descs, s.Ratio)
	}
	real := time.Since(t0)
	return time.Duration(float64(real) * float64(n) / float64(sample))
}

// Search implements core.Pipeline: brute-force descriptor matching against
// every stored photo, charging one SQL fetch per photo (the "frequent I/O
// accesses to the low-speed disks" of Section IV-B2).
func (s *SIFT) Search(probe core.Probe, topK int) ([]core.SearchResult, error) {
	if topK <= 0 {
		return nil, fmt.Errorf("baseline: topK must be positive, got %d", topK)
	}
	if probe.Img == nil {
		return nil, errors.New("baseline: SIFT requires a probe image")
	}
	_, qdescs, err := feature.SIFTDescribeAll(probe.Img, s.Detect)
	if err != nil {
		return nil, err
	}
	results := make([]core.SearchResult, 0, len(s.records))
	for i := range s.records {
		rec := &s.records[i]
		_, _, lat := s.sql.Get(rec.id)
		s.sim.StorageTime += lat
		s.sim.Accesses++
		s.sim.BytesMoved += rec.bytes
		score := feature.SimilarityScore(qdescs, rec.descs, s.Ratio)
		if score >= s.minScore() {
			results = append(results, core.SearchResult{ID: rec.id, Score: score})
		}
	}
	sortResults(results)
	if len(results) > topK {
		results = results[:topK]
	}
	return results, nil
}

// IndexBytes implements core.Pipeline: the full descriptor footprint.
func (s *SIFT) IndexBytes() int64 {
	var total int64
	for i := range s.records {
		total += s.records[i].bytes
	}
	return total
}

// SimCost implements core.Pipeline.
func (s *SIFT) SimCost() core.SimCost { return s.sim }

// Len returns the number of indexed photos.
func (s *SIFT) Len() int { return len(s.records) }

// sortResults orders by descending score then ascending ID.
func sortResults(rs []core.SearchResult) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		return rs[i].ID < rs[j].ID
	})
}

var _ core.Pipeline = (*SIFT)(nil)
