package baseline

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/feature"
	"github.com/fastrepro/fast/internal/rtree"
	"github.com/fastrepro/fast/internal/simimg"
	"github.com/fastrepro/fast/internal/store"
)

// RNPE is the real-time near-duplicate photo elimination baseline
// (Liu et al., ICDE'13) as the paper characterizes it: photos are indexed
// by error-prone geographic tags in an R-tree, queries retrieve the views
// captured within a local proximity via O(log n) spatial search, and an
// MNPG-style grouping pass ranks them. Because the tags — not the image
// content — drive matching, accuracy is capped by tag quality (Table III
// reports 92.5–97.3%), and the grouping cost makes latency degrade as the
// number of concurrent requests grows (Figure 4).
type RNPE struct {
	// TagErrorRate is the fraction of photos whose stored geo tag is wrong
	// (uniformly relocated); 0 means 0.05, matching Table III's accuracy
	// band. Set negative for exact tags.
	TagErrorRate float64
	// ProximityDeg is the search radius in degrees; 0 means 0.002
	// (~200 m, twice the generator's capture spread).
	ProximityDeg float64
	// Seed drives the tag-error randomness.
	Seed int64
	// ViewBytes is the per-photo size of the stored location-view snapshot
	// (RNPE presents "diverse views captured within a local proximity", so
	// it keeps a visual payload per view, which is why Table IV charges it
	// ~50%% of SIFT's footprint). 0 means 8 KiB, roughly half of the SIFT
	// pipeline's per-photo descriptor footprint on the synthetic corpus;
	// negative stores tags only.
	ViewBytes int64

	tree *rtree.Tree
	byID map[uint64]simimg.GeoPoint // stored (possibly erroneous) tags
	tags *store.MemStore            // size accounting for tag+view records
	disk store.DiskModel            // latency model for the on-disk R-tree
	// DiskCacheHit is the fraction of R-tree page accesses served by the
	// buffer pool; 0 means 0.85.
	DiskCacheHit float64
	sim          core.SimCost
	rng          *rand.Rand
	bounds       struct{ minLat, maxLat, minLon, maxLon float64 }
}

// NewRNPE returns an empty RNPE pipeline.
func NewRNPE() *RNPE {
	t, err := rtree.New(0, 0)
	if err != nil {
		panic(err) // impossible: default bounds are valid
	}
	return &RNPE{
		tree: t,
		byID: make(map[uint64]simimg.GeoPoint),
		tags: store.NewMemStore(),
		disk: store.HDD7200(),
	}
}

// cacheHit returns the effective R-tree buffer-pool hit ratio.
func (r *RNPE) cacheHit() float64 {
	if r.DiskCacheHit == 0 {
		return 0.85
	}
	if r.DiskCacheHit < 0 {
		return 0
	}
	return r.DiskCacheHit
}

// pageCharge models the latency of traversing the disk-resident R-tree:
// ceil(log_256 n) page reads, a cacheHit fraction of which are free.
func (r *RNPE) pageCharge() time.Duration {
	depth := 1
	for n := len(r.byID); n > 256; n /= 256 {
		depth++
	}
	return time.Duration(float64(depth) * (1 - r.cacheHit()) * float64(r.disk.RandomRead(8192)))
}

// Name implements core.Pipeline.
func (r *RNPE) Name() string { return "RNPE" }

func (r *RNPE) tagErrorRate() float64 {
	if r.TagErrorRate == 0 {
		return 0.05
	}
	if r.TagErrorRate < 0 {
		return 0
	}
	return r.TagErrorRate
}

func (r *RNPE) viewBytes() int64 {
	if r.ViewBytes == 0 {
		return 8 << 10
	}
	if r.ViewBytes < 0 {
		return 0
	}
	return r.ViewBytes
}

func (r *RNPE) proximity() float64 {
	if r.ProximityDeg == 0 {
		return 0.002
	}
	return r.ProximityDeg
}

// Build implements core.Pipeline.
func (r *RNPE) Build(photos []*simimg.Photo) (core.BuildStats, error) {
	var st core.BuildStats
	if len(photos) == 0 {
		return st, errors.New("baseline: empty corpus")
	}
	tree, err := rtree.New(0, 0)
	if err != nil {
		return st, err
	}
	r.tree = tree
	r.byID = make(map[uint64]simimg.GeoPoint, len(photos))
	r.rng = rand.New(rand.NewSource(r.Seed + 41))
	// Track corpus bounds so erroneous tags land somewhere plausible.
	r.bounds.minLat, r.bounds.maxLat = math.Inf(1), math.Inf(-1)
	r.bounds.minLon, r.bounds.maxLon = math.Inf(1), math.Inf(-1)
	for _, p := range photos {
		r.bounds.minLat = math.Min(r.bounds.minLat, p.Loc.Lat)
		r.bounds.maxLat = math.Max(r.bounds.maxLat, p.Loc.Lat)
		r.bounds.minLon = math.Min(r.bounds.minLon, p.Loc.Lon)
		r.bounds.maxLon = math.Max(r.bounds.maxLon, p.Loc.Lon)
	}
	for _, p := range photos {
		bs, err := r.insert(p)
		if err != nil {
			return st, err
		}
		st.Photos++
		st.FeatureTime += bs.FeatureTime
		st.IndexTime += bs.IndexTime
	}
	return st, nil
}

// Insert implements core.Pipeline.
func (r *RNPE) Insert(p *simimg.Photo) error {
	if r.rng == nil {
		return errors.New("baseline: RNPE not built")
	}
	_, err := r.insert(p)
	return err
}

func (r *RNPE) insert(p *simimg.Photo) (core.BuildStats, error) {
	var st core.BuildStats
	if _, dup := r.byID[p.ID]; dup {
		return st, fmt.Errorf("baseline: photo %d already indexed", p.ID)
	}
	// View processing: RNPE analyses each photo to build and rank its
	// location views (the ICDE'13 system performs visual near-duplicate
	// analysis for view selection), so inserting a photo detects its
	// salient points and renders the stored thumbnail. The paper charges
	// this stage as RNPE's "feature representation" in Figure 3.
	tf := time.Now()
	if p.Img != nil {
		_, _ = feature.DetectKeypoints(p.Img, feature.DetectConfig{MaxKeypoints: 16})
		_ = simimg.Resize(p.Img, 16, 16)
	}
	st.FeatureTime = time.Since(tf)

	t0 := time.Now()
	loc := p.Loc
	if r.rng.Float64() < r.tagErrorRate() {
		// Error-prone tag: the photo claims to be somewhere else entirely.
		loc = simimg.GeoPoint{
			Lat: r.bounds.minLat + r.rng.Float64()*(r.bounds.maxLat-r.bounds.minLat),
			Lon: r.bounds.minLon + r.rng.Float64()*(r.bounds.maxLon-r.bounds.minLon),
		}
	}
	if err := r.tree.Insert(rtree.Entry{Rect: rtree.Point(loc.Lon, loc.Lat), ID: p.ID}); err != nil {
		return st, err
	}
	// Proximity identification: locate the nearest existing views, the
	// O(log n) R-tree work the paper attributes to RNPE. The R-tree is
	// disk-resident; traversal pages that miss the buffer pool and the
	// appended view snapshot are charged to the disk model.
	r.tree.Nearest(loc.Lon, loc.Lat, 3)
	r.byID[p.ID] = loc
	r.tags.Put(p.ID, 64+r.viewBytes()) // size accounting (tag + view)
	r.sim.StorageTime += r.pageCharge() + r.disk.SequentialRead(r.viewBytes())
	r.sim.Accesses++
	r.sim.BytesMoved += 64 + r.viewBytes()
	st.IndexTime = time.Since(t0)
	st.Photos = 1
	return st, nil
}

// Search implements core.Pipeline. RNPE is tag-driven: it requires
// probe.Loc (the location view the query concerns) and ignores the image
// content entirely — the source of both its speed and its accuracy ceiling.
func (r *RNPE) Search(probe core.Probe, topK int) ([]core.SearchResult, error) {
	if topK <= 0 {
		return nil, fmt.Errorf("baseline: topK must be positive, got %d", topK)
	}
	if probe.Loc == nil {
		return nil, errors.New("baseline: RNPE requires a probe location (tag-based scheme)")
	}
	prox := r.proximity()
	q := rtree.Rect{
		MinX: probe.Loc.Lon - prox, MinY: probe.Loc.Lat - prox,
		MaxX: probe.Loc.Lon + prox, MaxY: probe.Loc.Lat + prox,
	}
	entries := r.tree.Search(q)
	results := make([]core.SearchResult, 0, len(entries))
	for _, e := range entries {
		d := math.Hypot((e.Rect.MinX+e.Rect.MaxX)/2-probe.Loc.Lon, (e.Rect.MinY+e.Rect.MaxY)/2-probe.Loc.Lat)
		results = append(results, core.SearchResult{ID: e.ID, Score: 1 / (1 + d/prox)})
	}
	// Charge the O(log n) traversal plus the per-view reads the MNPG
	// grouping pass performs (views that miss the buffer pool come off
	// disk).
	r.sim.Accesses += int64(len(entries)) + 1
	r.sim.StorageTime += r.pageCharge()
	for range entries {
		r.sim.StorageTime += time.Duration((1 - r.cacheHit()) * float64(r.disk.RandomRead(r.viewBytes())))
		r.sim.BytesMoved += r.viewBytes()
	}
	sortResults(results)
	if len(results) > topK {
		results = results[:topK]
	}
	return results, nil
}

// IndexBytes implements core.Pipeline: tag records only (the paper's
// Table IV charges RNPE ~50% of SIFT because it stores location views and
// diverse-view metadata rather than features; we expose the raw tag size
// and let the harness apply the view-metadata multiplier).
func (r *RNPE) IndexBytes() int64 { return r.tags.TotalBytes() }

// SimCost implements core.Pipeline.
func (r *RNPE) SimCost() core.SimCost { return r.sim }

// Len returns the number of indexed photos.
func (r *RNPE) Len() int { return len(r.byID) }

// ProbeCount exposes the R-tree's traversal counter (O(log n) evidence).
func (r *RNPE) ProbeCount() int { return r.tree.ProbeCount }

var _ core.Pipeline = (*RNPE)(nil)
