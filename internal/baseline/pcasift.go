package baseline

import (
	"errors"
	"fmt"
	"time"

	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/feature"
	"github.com/fastrepro/fast/internal/linalg"
	"github.com/fastrepro/fast/internal/simimg"
	"github.com/fastrepro/fast/internal/store"
)

// PCASIFT is the compact-descriptor baseline: PCA-projected gradient
// patches with the same brute-force matching and SQL storage as SIFT. The
// paper credits it with an order-of-magnitude query speedup over SIFT at a
// negligible accuracy cost (Table III: 99.996% on average).
type PCASIFT struct {
	Detect feature.DetectConfig
	// Dim is the PCA output dimensionality; 0 means the library default.
	Dim int
	// TrainingSample bounds the images used to fit the PCA basis; 0 means 32.
	TrainingSample int
	// Ratio is the match ratio-test threshold; 0 means the library default.
	Ratio float64
	// MinScore drops photos below this match fraction; 0 means 0.05.
	MinScore float64

	pca     *feature.PCASIFT
	records []siftRecord
	byID    map[uint64]int
	sql     *store.SQLStore
	sim     core.SimCost
}

// NewPCASIFT returns an empty PCA-SIFT pipeline backed by a 7200RPM SQL
// store.
func NewPCASIFT() *PCASIFT {
	sql, err := store.NewSQLStore(store.HDD7200(), 0)
	if err != nil {
		panic(err) // impossible: valid constants
	}
	// The compact records make the database several times smaller than
	// SIFT's, so a far larger fraction of its index pages stays in the
	// buffer pool (the reason Figure 3 charges PCA-SIFT ~40% of SIFT's
	// index-storage time rather than an equal share of seeks).
	sql.CacheHitRatio = 0.6
	return &PCASIFT{byID: make(map[uint64]int), sql: sql}
}

// Name implements core.Pipeline.
func (p *PCASIFT) Name() string { return "PCA-SIFT" }

func (p *PCASIFT) minScore() float64 {
	if p.MinScore == 0 {
		return 0.05
	}
	return p.MinScore
}

// Build implements core.Pipeline: it fits the PCA basis on a sample and
// indexes every photo.
func (p *PCASIFT) Build(photos []*simimg.Photo) (core.BuildStats, error) {
	var st core.BuildStats
	if len(photos) == 0 {
		return st, errors.New("baseline: empty corpus")
	}
	sampleN := p.TrainingSample
	if sampleN == 0 {
		sampleN = 32
	}
	if sampleN > len(photos) {
		sampleN = len(photos)
	}
	stride := len(photos) / sampleN
	if stride == 0 {
		stride = 1
	}
	training := make([]*simimg.Image, 0, sampleN)
	for i := 0; i < len(photos) && len(training) < sampleN; i += stride {
		training = append(training, photos[i].Img)
	}
	pca, err := feature.TrainPCASIFT(training, p.Detect, p.Dim)
	if err != nil {
		return st, fmt.Errorf("baseline: training PCA-SIFT: %w", err)
	}
	p.pca = pca
	p.records = p.records[:0]
	p.byID = make(map[uint64]int, len(photos))
	for _, ph := range photos {
		bs, err := p.insert(ph)
		if err != nil {
			return st, err
		}
		st.Photos++
		st.FeatureTime += bs.FeatureTime
		st.IndexTime += bs.IndexTime
		st.Descriptors += bs.Descriptors
	}
	return st, nil
}

// Insert implements core.Pipeline.
func (p *PCASIFT) Insert(ph *simimg.Photo) error {
	if p.pca == nil {
		return errors.New("baseline: PCA-SIFT not built")
	}
	_, err := p.insert(ph)
	return err
}

func (p *PCASIFT) insert(ph *simimg.Photo) (core.BuildStats, error) {
	var st core.BuildStats
	if _, dup := p.byID[ph.ID]; dup {
		return st, fmt.Errorf("baseline: photo %d already indexed", ph.ID)
	}
	t0 := time.Now()
	_, descs, err := p.pca.DescribeAll(ph.Img, p.Detect)
	if err != nil {
		return st, fmt.Errorf("baseline: PCA-SIFT features for %d: %w", ph.ID, err)
	}
	st.FeatureTime = time.Since(t0)
	st.Descriptors = len(descs)

	t1 := time.Now()
	bytes := int64(len(descs) * p.pca.OutDim * 8)
	// Same brute-force correlation identification as SIFT, over compact
	// descriptors (cheaper per pair, still linear in the store size).
	correlation := p.correlationCost(descs)
	p.sim.ComputeTime += correlation
	p.byID[ph.ID] = len(p.records)
	p.records = append(p.records, siftRecord{id: ph.ID, descs: descs, bytes: bytes})
	lat := p.sql.Put(ph.ID, bytes)
	p.sim.StorageTime += lat
	p.sim.Accesses++
	p.sim.BytesMoved += bytes
	st.IndexTime = time.Since(t1) + lat + correlation
	st.Photos = 1
	return st, nil
}

// correlationCost mirrors SIFT.correlationCost for the compact descriptors.
func (p *PCASIFT) correlationCost(descs []linalg.Vector) time.Duration {
	n := len(p.records)
	if n == 0 || len(descs) == 0 {
		return 0
	}
	sample := n
	if sample > maxCorrelationSample {
		sample = maxCorrelationSample
	}
	t0 := time.Now()
	for i := 0; i < sample; i++ {
		feature.SimilarityScore(descs, p.records[n-1-i].descs, p.Ratio)
	}
	real := time.Since(t0)
	return time.Duration(float64(real) * float64(n) / float64(sample))
}

// Search implements core.Pipeline with brute-force matching over the
// compact descriptors.
func (p *PCASIFT) Search(probe core.Probe, topK int) ([]core.SearchResult, error) {
	if topK <= 0 {
		return nil, fmt.Errorf("baseline: topK must be positive, got %d", topK)
	}
	if probe.Img == nil {
		return nil, errors.New("baseline: PCA-SIFT requires a probe image")
	}
	if p.pca == nil {
		return nil, errors.New("baseline: PCA-SIFT not built")
	}
	_, qdescs, err := p.pca.DescribeAll(probe.Img, p.Detect)
	if err != nil {
		return nil, err
	}
	results := make([]core.SearchResult, 0, len(p.records))
	for i := range p.records {
		rec := &p.records[i]
		_, _, lat := p.sql.Get(rec.id)
		p.sim.StorageTime += lat
		p.sim.Accesses++
		p.sim.BytesMoved += rec.bytes
		score := feature.SimilarityScore(qdescs, rec.descs, p.Ratio)
		if score >= p.minScore() {
			results = append(results, core.SearchResult{ID: rec.id, Score: score})
		}
	}
	sortResults(results)
	if len(results) > topK {
		results = results[:topK]
	}
	return results, nil
}

// IndexBytes implements core.Pipeline.
func (p *PCASIFT) IndexBytes() int64 {
	var total int64
	for i := range p.records {
		total += p.records[i].bytes
	}
	return total
}

// SimCost implements core.Pipeline.
func (p *PCASIFT) SimCost() core.SimCost { return p.sim }

// Len returns the number of indexed photos.
func (p *PCASIFT) Len() int { return len(p.records) }

// ExplainedVariance reports the PCA basis quality (diagnostics).
func (p *PCASIFT) ExplainedVariance() float64 {
	if p.pca == nil {
		return 0
	}
	return p.pca.ExplainedVariance()
}

var _ core.Pipeline = (*PCASIFT)(nil)
