package baseline

import (
	"testing"

	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/metrics"
	"github.com/fastrepro/fast/internal/simimg"
	"github.com/fastrepro/fast/internal/workload"
)

var testDS *workload.Dataset

func dataset(t *testing.T) *workload.Dataset {
	t.Helper()
	if testDS != nil {
		return testDS
	}
	ds, err := workload.Generate(workload.Spec{
		Name:        "baseline-test",
		Scenes:      5,
		Photos:      80,
		Subjects:    3,
		SubjectRate: 0.25,
		Resolution:  64,
		Seed:        31,
		SceneBase:   900,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	testDS = ds
	return ds
}

func sceneLoc(ds *workload.Dataset, scene simimg.SceneID) simimg.GeoPoint {
	for _, p := range ds.Photos {
		if p.Scene == scene {
			return p.Loc
		}
	}
	return simimg.GeoPoint{}
}

func TestSIFTBuildAndSearch(t *testing.T) {
	ds := dataset(t)
	s := NewSIFT()
	st, err := s.Build(ds.Photos)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if st.Photos != len(ds.Photos) || s.Len() != len(ds.Photos) {
		t.Fatalf("built %d/%d photos", st.Photos, s.Len())
	}
	if st.Descriptors == 0 || st.FeatureTime <= 0 {
		t.Errorf("stats missing: %+v", st)
	}
	if s.IndexBytes() <= 0 {
		t.Error("IndexBytes not positive")
	}
	if s.SimCost().StorageTime <= 0 {
		t.Error("no storage cost charged for SQL puts")
	}

	qs, err := ds.Queries(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	var acc metrics.Accuracy
	for _, q := range qs {
		res, err := s.Search(core.Probe{Img: q.Probe}, 100)
		if err != nil {
			t.Fatalf("Search: %v", err)
		}
		ids := make([]uint64, len(res))
		for i, r := range res {
			ids[i] = r.ID
		}
		acc.Add(metrics.ScoreRetrieval(ids, q.Relevant).Recall())
		for i := 1; i < len(res); i++ {
			if res[i].Score > res[i-1].Score {
				t.Fatal("results not sorted")
			}
		}
	}
	if acc.Mean() < 0.4 {
		t.Errorf("SIFT mean scene recall %v too low", acc.Mean())
	}
}

func TestSIFTValidation(t *testing.T) {
	s := NewSIFT()
	if _, err := s.Build(nil); err == nil {
		t.Error("empty corpus should fail")
	}
	ds := dataset(t)
	if _, err := s.Build(ds.Photos[:10]); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(ds.Photos[0]); err == nil {
		t.Error("duplicate insert should fail")
	}
	if _, err := s.Search(core.Probe{}, 5); err == nil {
		t.Error("nil probe image should fail")
	}
	if _, err := s.Search(core.Probe{Img: ds.Photos[0].Img}, 0); err == nil {
		t.Error("topK 0 should fail")
	}
}

func TestPCASIFTBuildAndSearch(t *testing.T) {
	ds := dataset(t)
	p := NewPCASIFT()
	st, err := p.Build(ds.Photos)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if st.Photos != len(ds.Photos) {
		t.Fatalf("built %d photos", st.Photos)
	}
	if ev := p.ExplainedVariance(); ev <= 0 || ev > 1+1e-9 {
		t.Errorf("explained variance %v", ev)
	}
	// PCA-SIFT's index must be smaller than SIFT's (Table IV ordering).
	s := NewSIFT()
	if _, err := s.Build(ds.Photos); err != nil {
		t.Fatal(err)
	}
	if p.IndexBytes() >= s.IndexBytes() {
		t.Errorf("PCA-SIFT index %dB not smaller than SIFT %dB", p.IndexBytes(), s.IndexBytes())
	}

	qs, _ := ds.Queries(5, 4)
	var acc metrics.Accuracy
	for _, q := range qs {
		res, err := p.Search(core.Probe{Img: q.Probe}, 100)
		if err != nil {
			t.Fatalf("Search: %v", err)
		}
		ids := make([]uint64, len(res))
		for i, r := range res {
			ids[i] = r.ID
		}
		acc.Add(metrics.ScoreRetrieval(ids, q.Relevant).Recall())
	}
	if acc.Mean() < 0.3 {
		t.Errorf("PCA-SIFT mean recall %v too low", acc.Mean())
	}
}

func TestPCASIFTUnbuiltErrors(t *testing.T) {
	p := NewPCASIFT()
	ds := dataset(t)
	if err := p.Insert(ds.Photos[0]); err == nil {
		t.Error("Insert before Build should fail")
	}
	if _, err := p.Search(core.Probe{Img: ds.Photos[0].Img}, 5); err == nil {
		t.Error("Search before Build should fail")
	}
}

func TestRNPEBuildAndSearch(t *testing.T) {
	ds := dataset(t)
	r := NewRNPE()
	st, err := r.Build(ds.Photos)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if st.Photos != len(ds.Photos) || r.Len() != len(ds.Photos) {
		t.Fatalf("built %d/%d", st.Photos, r.Len())
	}

	qs, _ := ds.Queries(6, 5)
	var acc metrics.Accuracy
	for _, q := range qs {
		loc := sceneLoc(ds, q.Scene)
		res, err := r.Search(core.Probe{Img: q.Probe, Loc: &loc}, 1000)
		if err != nil {
			t.Fatalf("Search: %v", err)
		}
		ids := make([]uint64, len(res))
		for i, rr := range res {
			ids[i] = rr.ID
		}
		acc.Add(metrics.ScoreRetrieval(ids, q.Relevant).Recall())
	}
	// Tags are error-prone: recall should be high but meaningfully below 1
	// (the Table III gap).
	if acc.Mean() < 0.8 {
		t.Errorf("RNPE recall %v unexpectedly low", acc.Mean())
	}
	if acc.Mean() > 0.995 {
		t.Errorf("RNPE recall %v should show the tag-error ceiling", acc.Mean())
	}
}

func TestRNPERequiresLocation(t *testing.T) {
	ds := dataset(t)
	r := NewRNPE()
	if _, err := r.Build(ds.Photos); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Search(core.Probe{Img: ds.Photos[0].Img}, 5); err == nil {
		t.Error("RNPE without location should fail")
	}
}

func TestRNPEExactTagsPerfectRecall(t *testing.T) {
	ds := dataset(t)
	r := NewRNPE()
	r.TagErrorRate = -1 // exact tags
	if _, err := r.Build(ds.Photos); err != nil {
		t.Fatal(err)
	}
	qs, _ := ds.Queries(4, 6)
	for _, q := range qs {
		loc := sceneLoc(ds, q.Scene)
		res, err := r.Search(core.Probe{Loc: &loc}, 10000)
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]uint64, len(res))
		for i, rr := range res {
			ids[i] = rr.ID
		}
		rec := metrics.ScoreRetrieval(ids, q.Relevant).Recall()
		if rec < 0.999 {
			t.Errorf("scene %d: exact-tag recall %v, want ~1", q.Scene, rec)
		}
	}
}

func TestRNPEUnbuiltInsertFails(t *testing.T) {
	r := NewRNPE()
	ds := dataset(t)
	if err := r.Insert(ds.Photos[0]); err == nil {
		t.Error("Insert before Build should fail")
	}
}

func TestPipelineInterfaces(t *testing.T) {
	var pipelines = []core.Pipeline{NewSIFT(), NewPCASIFT(), NewRNPE()}
	names := map[string]bool{}
	for _, p := range pipelines {
		names[p.Name()] = true
	}
	if !names["SIFT"] || !names["PCA-SIFT"] || !names["RNPE"] {
		t.Errorf("pipeline names = %v", names)
	}
}
