package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"math"
	"testing"
)

// FuzzDecodeImage drives the wire-image decoder with arbitrary dimensions
// and payloads. Invariants: no panic, no allocation proportional to the
// claimed (rather than actual) size, and on success the raster is
// internally consistent and re-encodes losslessly.
func FuzzDecodeImage(f *testing.F) {
	f.Add(4, 4, base64.StdEncoding.EncodeToString(make([]byte, 4*4*8)))
	f.Add(1, 1, base64.StdEncoding.EncodeToString([]byte{0, 0, 0, 0, 0, 0, 0xF0, 0x3F}))
	f.Add(0, 0, "")
	f.Add(-1, 7, "AAAA")
	f.Add(1<<30, 1<<30, "huge dims, short payload")
	f.Add(2, 2, "!!! not base64 !!!")
	// NaN pixel.
	nan := make([]byte, 8)
	for i := range nan {
		nan[i] = 0xFF
	}
	f.Add(1, 1, base64.StdEncoding.EncodeToString(nan))
	f.Fuzz(func(t *testing.T, w, h int, pix string) {
		im, err := DecodeImage(WireImage{W: w, H: h, Pix: pix})
		if err != nil {
			return
		}
		if im.W != w || im.H != h || len(im.Pix) != w*h {
			t.Fatalf("accepted raster inconsistent: %dx%d with %d pixels", im.W, im.H, len(im.Pix))
		}
		for i, v := range im.Pix {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("accepted non-finite pixel at %d", i)
			}
		}
		// Encode/decode must round-trip to bit-identical pixels. (The base64
		// strings themselves may differ: std decoding tolerates
		// non-canonical trailing bits, so compare the decoded rasters.)
		back, err := EncodeImage(im)
		if err != nil {
			t.Fatalf("re-encoding accepted image: %v", err)
		}
		im2, err := DecodeImage(back)
		if err != nil {
			t.Fatalf("decoding re-encoded image: %v", err)
		}
		if im2.W != im.W || im2.H != im.H || len(im2.Pix) != len(im.Pix) {
			t.Fatalf("round trip changed shape for %dx%d", w, h)
		}
		for i := range im.Pix {
			if math.Float64bits(im.Pix[i]) != math.Float64bits(im2.Pix[i]) {
				t.Fatalf("round trip drifted at pixel %d", i)
			}
		}
	})
}

// FuzzDecodeQueryRequest feeds arbitrary JSON through the exact path a
// /v1/query body takes: decode into QueryRequest, then decode the image.
func FuzzDecodeQueryRequest(f *testing.F) {
	good, _ := json.Marshal(QueryRequest{
		Image: WireImage{W: 1, H: 1, Pix: base64.StdEncoding.EncodeToString(make([]byte, 8))},
		TopK:  10,
	})
	f.Add(good)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"image":{"w":1000000000,"h":1000000000,"pix":""},"topk":-5}`))
	f.Add([]byte(`{"image":{"w":1,"h":1,"pix":"` + "\x00" + `"}}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"topk":9e999}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var req QueryRequest
		if err := json.NewDecoder(bytes.NewReader(data)).Decode(&req); err != nil {
			return
		}
		im, err := DecodeImage(req.Image)
		if err != nil {
			return
		}
		if im.W <= 0 || im.H <= 0 || im.W*im.H > maxWirePixels {
			t.Fatalf("decoder accepted out-of-bounds raster %dx%d", im.W, im.H)
		}
	})
}
