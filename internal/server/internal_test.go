package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/metrics"
	"github.com/fastrepro/fast/internal/simimg"
	"github.com/fastrepro/fast/internal/workload"
)

func TestAdmissionSlots(t *testing.T) {
	var rejected metrics.Counter
	a := newAdmission(2, 1, &rejected)
	ctx := context.Background()

	// Two slots acquire without queueing.
	if err := a.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire(ctx); err != nil {
		t.Fatal(err)
	}

	// One waiter fits in the queue; it unblocks when a slot frees.
	waited := make(chan error, 1)
	go func() { waited <- a.acquire(ctx) }()
	// Give the waiter time to enter the queue, then overflow it.
	deadline := time.Now().Add(time.Second)
	for a.waiting.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := a.acquire(ctx); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow acquire: %v, want ErrOverloaded", err)
	}
	if rejected.Load() != 1 {
		t.Fatalf("rejected counter = %d, want 1", rejected.Load())
	}

	a.release()
	if err := <-waited; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
}

func TestAdmissionContextCancel(t *testing.T) {
	var rejected metrics.Counter
	a := newAdmission(1, 4, &rejected)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := a.acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled acquire: %v, want deadline exceeded", err)
	}
	// The abandoned wait must not leak queue capacity.
	if a.waiting.Load() != 0 {
		t.Fatalf("waiting = %d after cancel, want 0", a.waiting.Load())
	}
}

func TestCoalescerBatchesAndWindow(t *testing.T) {
	var mu sync.Mutex
	var batches [][]int
	done := make(chan struct{}, 64)
	c := newCoalescer(20*time.Millisecond, 4, func(b []int) {
		mu.Lock()
		batches = append(batches, b)
		mu.Unlock()
		for range b {
			done <- struct{}{}
		}
	})

	// A burst larger than maxBatch splits into full batches.
	for i := 0; i < 8; i++ {
		c.submit(i)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	// A lone straggler is dispatched by the window timer, not stuck waiting
	// for a full batch.
	c.submit(99)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("window timer never fired for a partial batch")
	}
	c.close()

	mu.Lock()
	defer mu.Unlock()
	total := 0
	for _, b := range batches {
		if len(b) > 4 {
			t.Errorf("batch of %d exceeds maxBatch 4", len(b))
		}
		total += len(b)
	}
	if total != 9 {
		t.Errorf("dispatched %d items, want 9", total)
	}
	if len(batches) < 3 {
		t.Errorf("burst of 8 + straggler produced %d batches, want >= 3", len(batches))
	}
}

func TestCoalescerCloseFlushesTail(t *testing.T) {
	var seen atomic.Int64
	slow := newCoalescer(time.Hour, 128, func(b []int) {
		seen.Add(int64(len(b)))
	})
	for i := 0; i < 5; i++ {
		slow.submit(i)
	}
	// close must dispatch the gathered tail rather than drop it, even though
	// the hour-long window never expires.
	closed := make(chan struct{})
	go func() {
		slow.close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("close hung on an unexpired window")
	}
	if seen.Load() != 5 {
		t.Fatalf("dispatched %d items on close, want 5", seen.Load())
	}
}

// newTestEngine builds a small indexed corpus for white-box tests.
func newTestEngine(t *testing.T) (*core.Engine, *workload.Dataset) {
	t.Helper()
	ds, err := workload.Generate(workload.Spec{
		Name: "server-internal", Scenes: 3, Photos: 24, Subjects: 2,
		SubjectRate: 0.3, Resolution: 64, Seed: 29, SceneBase: 8200,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	eng := core.NewEngine(core.Config{})
	if _, err := eng.Build(ds.Photos); err != nil {
		t.Fatalf("Build: %v", err)
	}
	return eng, ds
}

// TestDispatchPanicFailsBatchNotProcess feeds the coalesced dispatchers
// malformed probes whose processing panics (an image whose Pix backing is
// missing, and a nil image that panics the dedup hash on the dispatch
// goroutine itself). The panic must come back as each job's error — never
// unwind the dispatch or engine-worker goroutines, where it would crash
// the daemon.
func TestDispatchPanicFailsBatchNotProcess(t *testing.T) {
	eng, _ := newTestEngine(t)
	s, err := New(Config{Engine: eng, Window: time.Millisecond, BatchMax: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	hollow := &simimg.Image{W: 64, H: 64} // valid dims, no pixels: At() panics
	for name, img := range map[string]*simimg.Image{"hollow": hollow, "nil": nil} {
		jobs := make([]queryJob, 2)
		for i := range jobs {
			jobs[i] = queryJob{img: img, topK: 5, submitted: time.Now(), resp: make(chan queryResp, 1)}
		}
		s.dispatchQueries(jobs)
		for i, j := range jobs {
			select {
			case r := <-j.resp:
				if r.err == nil {
					t.Errorf("%s probe %d: no error for a panicking query", name, i)
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("%s probe %d: never answered", name, i)
			}
		}
	}

	ins := []insertJob{{
		photo:     &simimg.Photo{ID: 9_300_001, Img: hollow},
		submitted: time.Now(),
		resp:      make(chan error, 1),
	}}
	s.dispatchInserts(ins)
	select {
	case err := <-ins[0].resp:
		if err == nil {
			t.Error("no error for a panicking insert")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("panicking insert never answered")
	}
}

// TestDispatchInsertsResumesAfterFailure feeds a coalesced insert batch
// with a duplicate in the middle; InsertBatch stops at the failure, and the
// dispatcher must answer the victim with the error while still committing
// the photos queued behind it.
func TestDispatchInsertsResumesAfterFailure(t *testing.T) {
	eng, ds := newTestEngine(t)
	s, err := New(Config{Engine: eng, Window: time.Millisecond, BatchMax: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	fresh1 := ds.FreshPhoto(9_200_001, 21)
	dup := ds.Photos[0] // already indexed: InsertBatch fails on it
	fresh2 := ds.FreshPhoto(9_200_002, 22)

	jobs := make([]insertJob, 3)
	for i, p := range []*simimg.Photo{fresh1, dup, fresh2} {
		jobs[i] = insertJob{photo: p, submitted: time.Now(), resp: make(chan error, 1)}
	}
	s.dispatchInserts(jobs)

	if err := <-jobs[0].resp; err != nil {
		t.Fatalf("first insert: %v", err)
	}
	if err := <-jobs[1].resp; err == nil {
		t.Fatal("duplicate insert did not report an error")
	}
	if err := <-jobs[2].resp; err != nil {
		t.Fatalf("insert behind the failure: %v", err)
	}
	if !eng.Contains(fresh1.ID) || !eng.Contains(fresh2.ID) {
		t.Fatal("resumed batch lost a photo")
	}
}
