// Package server is the network serving layer of the FAST reproduction:
// an HTTP/JSON API over net/http wrapping a core.Engine, with the three
// mechanisms a query index needs to survive network fan-in:
//
//   - admission control: a slot semaphore plus a bounded waiting line;
//     work beyond both limits is refused with 429 + Retry-After instead of
//     being allowed to pile onto the scheduler;
//   - request coalescing: concurrently arriving queries are micro-batched
//     (up to BatchMax probes or Window, whichever first) into single
//     Engine.QueryBatch calls so the sharded batch path — not one goroutine
//     per request — does the work; inserts coalesce into InsertBatch the
//     same way;
//   - hot snapshots: /v1/snapshot streams the index through Engine.WriteTo
//     under the engine's read lock, so queries keep flowing while the
//     snapshot is cut.
//
// Endpoints: POST /v1/query, /v1/insert, /v1/delete, /v1/restore;
// GET/POST /v1/snapshot; GET /v1/stats, /healthz.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/failpoint"
	"github.com/fastrepro/fast/internal/metrics"
	"github.com/fastrepro/fast/internal/simimg"
	"github.com/fastrepro/fast/internal/store"
)

// Config parameterizes the serving layer.
type Config struct {
	// Engine is the index to serve; required.
	Engine *core.Engine
	// Window is the coalescing window: after the first probe of a batch
	// arrives, the collector waits at most this long for more before
	// dispatching. 0 disables coalescing — every request runs its own
	// engine call (the naive shape the serve benchmark compares against).
	Window time.Duration
	// BatchMax caps probes per coalesced batch; 0 means 32.
	BatchMax int
	// BatchWorkers is the worker count passed to Engine.QueryBatch /
	// Engine.InsertBatch per dispatched batch; 0 means GOMAXPROCS.
	BatchWorkers int
	// MaxInflight bounds concurrently executing requests; 0 means
	// 8*GOMAXPROCS.
	MaxInflight int
	// MaxQueue bounds requests waiting for an execution slot; beyond it the
	// server answers 429. 0 means 4*MaxInflight.
	MaxQueue int
	// TopKLimit caps per-query result budgets; 0 means 1000.
	TopKLimit int
	// MaxBodyBytes caps request bodies; 0 means 256 MB (restores carry
	// whole snapshots).
	MaxBodyBytes int64
	// Recovery, when non-nil, is the daemon's startup snapshot-recovery
	// report, surfaced by /v1/stats for operator visibility.
	Recovery *store.RecoveryInfo
	// Snapshots, when non-nil, is the daemon's persistent generation store:
	// POST /v1/snapshot/save writes the served engine into it (rotating
	// generations, deduplicating against prior chunks when the store is
	// chunked) and /v1/stats reports its cumulative dedup counters. With a
	// nil store the endpoint answers 501 — streaming GET /v1/snapshot is
	// unaffected.
	Snapshots *store.Generations
	// Shard, when non-nil, makes the server placement-aware: it serves
	// /v1/ring (live ring reconfiguration) and reports its ring state in
	// /v1/stats. Nil for single-node daemons; /v1/ring answers 501 then.
	Shard *ShardConfig
}

func (c Config) withDefaults() Config {
	if c.BatchMax <= 0 {
		c.BatchMax = 32
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 8 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInflight
	}
	if c.TopKLimit <= 0 {
		c.TopKLimit = 1000
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 256 << 20
	}
	return c
}

// serverMetrics aggregates the serving-layer counters /v1/stats reports.
type serverMetrics struct {
	queries      metrics.Counter
	queryErrors  metrics.Counter
	queryDeduped metrics.Counter
	inserts      metrics.Counter
	insertErrors metrics.Counter
	deletes      metrics.Counter
	rejected     metrics.Counter
	snapshots    metrics.Counter
	queryBatch   metrics.IntDist // probes per dispatched query batch
	insertBatch  metrics.IntDist // photos per dispatched insert batch
	queueWait    *metrics.Histogram
}

// Server wraps an engine with the HTTP serving layer. Construct with New,
// mount Handler on an http.Server, and on shutdown call BeginDrain, then
// http.Server.Shutdown, then Close (in that order — Close assumes no
// handler is still submitting work).
type Server struct {
	cfg Config

	engineMu sync.RWMutex
	engine   *core.Engine

	adm       *admission
	queries   *coalescer[queryJob]
	inserts   *coalescer[insertJob]
	met       serverMetrics
	draining  atomic.Bool
	closeOnce sync.Once
	start     time.Time

	// Shard-mode placement state (nil without Config.Shard); see ring.go.
	shardCfg ShardConfig
	ringMu   sync.Mutex
	ring     *shardRing
}

type queryJob struct {
	img       *simimg.Image
	topK      int
	submitted time.Time
	resp      chan queryResp
}

type queryResp struct {
	results []core.SearchResult
	err     error
}

type insertJob struct {
	photo     *simimg.Photo
	submitted time.Time
	resp      chan error
}

// New builds a Server around cfg.Engine.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("server: config needs an engine")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		engine: cfg.Engine,
		start:  time.Now(),
	}
	s.met.queueWait = metrics.NewHistogram()
	s.adm = newAdmission(cfg.MaxInflight, cfg.MaxQueue, &s.met.rejected)
	if cfg.Shard != nil {
		s.shardCfg = *cfg.Shard
		ring, err := newShardRing(s.shardCfg)
		if err != nil {
			return nil, err
		}
		s.ring = ring
	}
	if cfg.Window > 0 {
		s.queries = newCoalescer(cfg.Window, cfg.BatchMax, s.dispatchQueries)
		s.inserts = newCoalescer(cfg.Window, cfg.BatchMax, s.dispatchInserts)
	}
	return s, nil
}

// Engine returns the currently served engine (it changes on /v1/restore).
func (s *Server) Engine() *core.Engine {
	s.engineMu.RLock()
	defer s.engineMu.RUnlock()
	return s.engine
}

func (s *Server) swapEngine(e *core.Engine) {
	s.engineMu.Lock()
	s.engine = e
	s.engineMu.Unlock()
}

// BeginDrain makes the server refuse new work (503 on every /v1 endpoint
// and /healthz) while requests already admitted keep running. The daemon
// calls it before http.Server.Shutdown so load balancers fail the health
// check first.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close stops the coalescers after their in-flight batches finish. It must
// only be called once no handler is still submitting — i.e. after
// http.Server.Shutdown has returned. Close is idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.queries != nil {
			s.queries.close()
		}
		if s.inserts != nil {
			s.inserts.close()
		}
	})
}

// Handler returns the /v1 API mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/insert", s.handleInsert)
	mux.HandleFunc("/v1/delete", s.handleDelete)
	mux.HandleFunc("/v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("/v1/snapshot/save", s.handleSnapshotSave)
	mux.HandleFunc("/v1/snapshot/chunks", s.handleSnapshotChunks)
	mux.HandleFunc("/v1/snapshot/fetch", s.handleSnapshotFetch)
	mux.HandleFunc("/v1/restore", s.handleRestore)
	mux.HandleFunc("/v1/ring", s.handleRing)
	mux.HandleFunc("/v1/stats", s.handleStats)
	return mux
}

// --- helpers ---

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// gate runs the common front half of every engine-touching handler:
// method check, drain check, admission, then the JSON decode
// (body-limited). Admission comes before the decode so the potentially
// expensive body work (up to MaxBodyBytes of JSON plus base64 pixels) runs
// under the same concurrency bound as the engine call — otherwise a flood
// of fat requests could do unbounded decode work while "waiting" for a
// slot. It returns false after writing the refusal; on true the caller
// owns one admission slot and must defer s.adm.release().
func (s *Server) gate(w http.ResponseWriter, r *http.Request, method string, body interface{}) bool {
	if r.Method != method {
		writeError(w, http.StatusMethodNotAllowed, "use %s", method)
		return false
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return false
	}
	// Failpoints: synthesize admission-control backpressure without real
	// overload, so client retry behavior can be driven deterministically.
	if failpoint.Eval(failpoint.ServerInject429) != nil {
		s.met.rejected.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "injected backpressure")
		return false
	}
	if failpoint.Eval(failpoint.ServerInject503) != nil {
		writeError(w, http.StatusServiceUnavailable, "injected unavailability")
		return false
	}
	if err := s.adm.acquire(r.Context()); err != nil {
		if errors.Is(err, ErrOverloaded) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "%v", err)
		} else {
			writeError(w, http.StatusRequestTimeout, "%v", err)
		}
		return false
	}
	if body != nil {
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		if err := dec.Decode(body); err != nil {
			s.adm.release()
			writeError(w, http.StatusBadRequest, "decoding request: %v", err)
			return false
		}
	}
	return true
}

// --- handlers ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !s.gate(w, r, http.MethodPost, &req) {
		return
	}
	defer s.adm.release()
	img, err := DecodeImage(req.Image)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	topK := req.TopK
	if topK <= 0 {
		topK = 50
	}
	if topK > s.cfg.TopKLimit {
		topK = s.cfg.TopKLimit
	}

	// Freshness token: sample the published view epoch BEFORE the query
	// runs. Views are published atomically and monotonically, so whatever
	// view the query ends up reading has epoch ≥ this sample — the answer
	// provably reflects every mutation acknowledged at or below it. (The
	// reverse order would over-claim: a write could land between the query
	// and the sample.)
	epoch := s.Engine().PublishedEpoch()
	var results []core.SearchResult
	if s.queries != nil {
		job := queryJob{img: img, topK: topK, submitted: time.Now(), resp: make(chan queryResp, 1)}
		s.queries.submit(job)
		resp := <-job.resp
		results, err = resp.results, resp.err
	} else {
		results, err = s.Engine().Query(img, topK)
	}
	if err != nil {
		s.met.queryErrors.Inc()
		writeError(w, http.StatusUnprocessableEntity, "query failed: %v", err)
		return
	}
	s.met.queries.Inc()
	out := QueryResponse{Results: make([]WireResult, len(results)), IndexEpoch: epoch}
	for i, res := range results {
		out.Results[i] = WireResult{ID: res.ID, Score: res.Score}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req InsertRequest
	if !s.gate(w, r, http.MethodPost, &req) {
		return
	}
	defer s.adm.release()
	img, err := DecodeImage(req.Image)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	photo := &simimg.Photo{ID: req.ID, Img: img}
	if s.inserts != nil {
		job := insertJob{photo: photo, submitted: time.Now(), resp: make(chan error, 1)}
		s.inserts.submit(job)
		err = <-job.resp
	} else {
		err = s.Engine().Insert(photo)
	}
	if err != nil {
		s.met.insertErrors.Inc()
		writeError(w, http.StatusUnprocessableEntity, "insert failed: %v", err)
		return
	}
	s.met.inserts.Inc()
	// The mutation published before its engine call returned, so the epoch
	// read here bounds it from above: any query reporting IndexEpoch ≥ this
	// value reflects this insert.
	writeJSON(w, http.StatusOK, OKResponse{OK: true, Epoch: s.Engine().PublishedEpoch()})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req DeleteRequest
	if !s.gate(w, r, http.MethodPost, &req) {
		return
	}
	defer s.adm.release()
	if err := s.Engine().Delete(req.ID); err != nil {
		writeError(w, http.StatusUnprocessableEntity, "delete failed: %v", err)
		return
	}
	s.met.deletes.Inc()
	writeJSON(w, http.StatusOK, OKResponse{OK: true, Epoch: s.Engine().PublishedEpoch()})
}

// handleSnapshot streams the index. It deliberately bypasses admission —
// the snapshot holds only the engine's read lock, so it coexists with the
// query load the admission controller is budgeting for.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, err := s.Engine().WriteTo(w); err != nil {
		// Headers are already gone; the client sees a truncated body and
		// ReadEngine rejects it.
		return
	}
	s.met.snapshots.Inc()
}

// handleSnapshotSave writes the served engine into the daemon's persistent
// generation store and reports what the write cost: chunks written vs
// reused, logical vs physical bytes, and what the post-publish GC pass
// reclaimed. Like the streaming snapshot it bypasses admission — the write
// serializes under the engine's read lock, coexisting with query load —
// but unlike it the bytes land in rotated on-disk generations the next
// boot can recover from.
func (s *Server) handleSnapshotSave(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if s.cfg.Snapshots == nil {
		writeError(w, http.StatusNotImplemented, "server has no persistent snapshot store (start fastd with -final-snapshot)")
		return
	}
	res, err := s.cfg.Snapshots.WriteSnapshot(s.Engine())
	if err != nil {
		writeError(w, http.StatusInternalServerError, "snapshot save failed: %v", err)
		return
	}
	s.met.snapshots.Inc()
	writeJSON(w, http.StatusOK, res)
}

// handleRestore replaces the served engine with one deserialized from the
// request body. In-flight requests against the old engine finish against
// it; requests admitted afterwards see the new one.
func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	e, err := core.ReadEngine(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "restore failed: %v", err)
		return
	}
	// Snapshots carry index contents, not serving knobs: carry the old
	// engine's cache configuration onto its replacement. The restored
	// engine starts with empty tiers (fresh object, fresh epoch), so no
	// pre-restore entry can ever be served against the new index.
	e.ConfigureCache(s.Engine().CacheConfig())
	// Hot snapshots never include the cold tier: transfer the old engine's
	// open cold store (mappings and all, so in-flight queries against the
	// old engine keep scanning valid memory) onto the replacement and
	// reconcile ids the snapshot still holds hot.
	if err := e.AdoptColdTier(s.Engine()); err != nil {
		writeError(w, http.StatusBadRequest, "restore failed: %v", err)
		return
	}
	s.swapEngine(e)
	writeJSON(w, http.StatusOK, OKResponse{OK: true})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

// Stats assembles the /v1/stats document.
func (s *Server) Stats() Stats {
	eng := s.Engine()
	est := eng.Stats()
	cs := eng.CacheStats()
	qw := s.met.queueWait.Summarize()
	st := Stats{
		Queries:           s.met.queries.Load(),
		QueryErrors:       s.met.queryErrors.Load(),
		QueryDeduped:      s.met.queryDeduped.Load(),
		Inserts:           s.met.inserts.Load(),
		InsertErrors:      s.met.insertErrors.Load(),
		Deletes:           s.met.deletes.Load(),
		AdmissionRejected: s.met.rejected.Load(),
		Snapshots:         s.met.snapshots.Load(),
		QueryBatches:      s.met.queryBatch.Count(),
		QueryBatchMean:    s.met.queryBatch.Mean(),
		QueryBatchMax:     s.met.queryBatch.Max(),
		InsertBatches:     s.met.insertBatch.Count(),
		InsertBatchMean:   s.met.insertBatch.Mean(),
		InsertBatchMax:    s.met.insertBatch.Max(),
		QueueWaitMeanNs:   qw.Mean.Nanoseconds(),
		QueueWaitP99Ns:    qw.P99.Nanoseconds(),
		Draining:          s.draining.Load(),
		UptimeNs:          time.Since(s.start).Nanoseconds(),
		Photos:            est.Photos,
		Entries:           est.Entries,
		IndexEpoch:        est.Epoch,
		IndexBytes:        est.IndexBytes,
		LSHShards:         est.LSHShards,
		TableShards:       est.TableShards,

		TieredEnabled:         est.Tiered.Enabled,
		TieredHotEntries:      est.Tiered.HotEntries,
		TieredColdEntries:     est.Tiered.ColdEntries,
		TieredSegments:        est.Tiered.Segments,
		TieredTombstones:      est.Tiered.Tombstones,
		TieredColdBytes:       est.Tiered.ColdDiskBytes,
		TieredMigrations:      est.Tiered.Migrations,
		TieredCompactions:     est.Tiered.Compactions,
		TieredSpillProbes:     est.Tiered.SpillProbes,
		TieredPostingsScanned: est.Tiered.ColdPostingsScanned,
		TieredBytesScanned:    est.Tiered.ColdBytesScanned,
		TieredWatermark:       est.Tiered.Watermark,

		SummaryCacheHits:       cs.Summary.Hits,
		SummaryCacheMisses:     cs.Summary.Misses,
		SummaryCacheEntries:    cs.Summary.Entries,
		ResultCacheHits:        cs.Result.Hits,
		ResultCacheMisses:      cs.Result.Misses,
		ResultCacheEntries:     cs.Result.Entries,
		CacheSingleflightWaits: cs.Summary.Waits + cs.Result.Waits,
		CacheEpoch:             cs.Epoch,
	}
	if ri := s.cfg.Recovery; ri != nil {
		st.RecoveryRan = true
		st.RecoveryFallback = ri.Fallback
		st.RecoveryGeneration = ri.Generation
		st.RecoverySource = ri.Loaded
		st.RecoveryErrors = ri.Errors
		st.RecoverySwept = ri.Swept
	}
	if g := s.cfg.Snapshots; g != nil {
		ss := g.Stats()
		st.SnapshotStore = &ss
	}
	st.Ring = s.RingStatus()
	return st
}

// --- coalesced dispatch ---

// dispatchQueries answers one micro-batch through Engine.QueryBatch, after
// collapsing duplicate probes: concurrent requests for the same image (hot
// queries are the norm under real fan-in) share one engine call, the same
// way a CDN collapses identical in-flight fetches. The per-job topK may
// differ across the batch: the engine runs at the batch maximum and each
// job's reply is trimmed to its own budget, which is exact because a
// query's result list at a smaller topK is a prefix of the same query's
// list at a larger one (ranking happens before truncation). Collapsed
// duplicates therefore receive byte-identical answers to what a private
// engine call would have produced.
func (s *Server) dispatchQueries(batch []queryJob) {
	// A panic in the engine (or in this dispatch logic) runs on the
	// coalescer's goroutine, outside net/http's per-connection recover —
	// unguarded it would crash the daemon. Convert it into an error reply
	// to every job of this batch; the non-blocking sends skip jobs already
	// answered before the panic.
	defer func() {
		if p := recover(); p != nil {
			err := fmt.Errorf("server: query batch panicked: %v", p)
			for _, j := range batch {
				select {
				case j.resp <- queryResp{err: err}:
				default:
				}
			}
		}
	}()
	// Failpoint: Delay simulates a slow engine under the coalescer, Error
	// fails the whole batch, Panic exercises the containment above.
	if err := failpoint.Eval(failpoint.ServerDispatchQuery); err != nil {
		err = fmt.Errorf("server: query dispatch failed: %w", err)
		for _, j := range batch {
			select {
			case j.resp <- queryResp{err: err}:
			default:
			}
		}
		return
	}
	now := time.Now()
	maxK := 0
	for _, j := range batch {
		if j.topK > maxK {
			maxK = j.topK
		}
		s.met.queueWait.Record(now.Sub(j.submitted))
	}
	s.met.queryBatch.Record(int64(len(batch)))

	// Group jobs by probe content. Hash buckets are verified pixel-for-pixel
	// so a collision can never splice two distinct probes together.
	type group struct {
		img  *simimg.Image
		jobs []int
	}
	groups := make([]group, 0, len(batch))
	byHash := make(map[uint64][]int, len(batch))
groupJobs:
	for i, j := range batch {
		h := hashImage(j.img)
		for _, gi := range byHash[h] {
			if sameImage(groups[gi].img, j.img) {
				groups[gi].jobs = append(groups[gi].jobs, i)
				continue groupJobs
			}
		}
		byHash[h] = append(byHash[h], len(groups))
		groups = append(groups, group{img: j.img, jobs: []int{i}})
	}
	if d := len(batch) - len(groups); d > 0 {
		s.met.queryDeduped.Add(int64(d))
	}

	imgs := make([]*simimg.Image, len(groups))
	for gi, g := range groups {
		imgs[gi] = g.img
	}
	brs := s.Engine().QueryBatch(imgs, maxK, s.cfg.BatchWorkers, nil)
	for gi, g := range groups {
		for _, i := range g.jobs {
			j := batch[i]
			res, err := brs[gi].Results, brs[gi].Err
			if err == nil && len(res) > j.topK {
				res = res[:j.topK]
			}
			j.resp <- queryResp{results: res, err: err}
		}
	}
}

// hashImage fingerprints a probe's dimensions and exact pixel bits (FNV-1a).
func hashImage(im *simimg.Image) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	mix(uint64(im.W))
	mix(uint64(im.H))
	for _, p := range im.Pix {
		mix(math.Float64bits(p))
	}
	return h
}

// sameImage reports exact equality of two rasters.
func sameImage(a, b *simimg.Image) bool {
	if a.W != b.W || a.H != b.H || len(a.Pix) != len(b.Pix) {
		return false
	}
	for i := range a.Pix {
		if math.Float64bits(a.Pix[i]) != math.Float64bits(b.Pix[i]) {
			return false
		}
	}
	return true
}

// dispatchInserts commits one micro-batch through Engine.InsertBatch.
// InsertBatch stops at the first failing photo; the loop reports that
// failure to its requester and resumes with the remainder, so one bad
// insert (e.g. a duplicate ID) does not poison the requests coalesced
// behind it.
func (s *Server) dispatchInserts(batch []insertJob) {
	// Same panic containment as dispatchQueries: fail the batch, not the
	// process.
	defer func() {
		if p := recover(); p != nil {
			err := fmt.Errorf("server: insert batch panicked: %v", p)
			for _, j := range batch {
				select {
				case j.resp <- err:
				default:
				}
			}
		}
	}()
	if err := failpoint.Eval(failpoint.ServerDispatchInsert); err != nil {
		err = fmt.Errorf("server: insert dispatch failed: %w", err)
		for _, j := range batch {
			select {
			case j.resp <- err:
			default:
			}
		}
		return
	}
	now := time.Now()
	photos := make([]*simimg.Photo, len(batch))
	for i, j := range batch {
		photos[i] = j.photo
		s.met.queueWait.Record(now.Sub(j.submitted))
	}
	s.met.insertBatch.Record(int64(len(batch)))

	rest := batch
	for len(rest) > 0 {
		ps := make([]*simimg.Photo, len(rest))
		for i, j := range rest {
			ps[i] = j.photo
		}
		st, err := s.Engine().InsertBatch(ps, s.cfg.BatchWorkers)
		for i := 0; i < st.Photos && i < len(rest); i++ {
			rest[i].resp <- nil
		}
		if err == nil {
			break
		}
		if st.Photos >= len(rest) {
			break
		}
		rest[st.Photos].resp <- err
		rest = rest[st.Photos+1:]
	}
}
