package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"github.com/fastrepro/fast/internal/store"
)

// Replica catch-up endpoints. A replica recovering from (or cold-starting
// into) a cluster does not need the whole snapshot from its primary — only
// the chunks its local content-addressed store is missing. The protocol is
// replica-driven:
//
//	GET  /v1/snapshot/chunks  → the chunk IDs this server's store holds
//	POST /v1/snapshot/fetch   → body {have: [hex ids]}; response is a
//	                            FASTDLT1 delta stream (manifest + chunks
//	                            not in have) for the newest generation
//
// The replica applies the stream through store.Generations.ApplyDelta,
// which lands chunks durably one at a time and publishes the manifest only
// once complete — so an interrupted transfer costs nothing but the bytes
// already moved, and the retry is automatically diff-only.

// handleSnapshotChunks reports the chunk-ID inventory of the persistent
// store. A replica calls this on its *own* store locally (via
// store.Generations.LiveChunkIDs); the endpoint exists so operators and
// the CI smoke can inspect a node's chunk set remotely, and so a future
// primary-driven push has a discovery path.
func (s *Server) handleSnapshotChunks(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if s.cfg.Snapshots == nil {
		writeError(w, http.StatusNotImplemented, "server has no persistent snapshot store (start fastd with -final-snapshot)")
		return
	}
	ids, err := s.cfg.Snapshots.LiveChunkIDs()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "scanning chunk store: %v", err)
		return
	}
	resp := ChunkSetResponse{Chunked: s.cfg.Snapshots.Chunked, Chunks: make([]string, len(ids))}
	for i, id := range ids {
		resp.Chunks[i] = id.String()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSnapshotFetch streams a delta for the newest persisted generation:
// its manifest plus every chunk not in the request's have-list. Like the
// other snapshot endpoints it bypasses admission — the stream reads the
// immutable chunk store under the generation lock and does not touch the
// engine. Errors detected before the first byte (no store, monolithic
// generation, bad have-list) get proper JSON statuses; a failure
// mid-stream surfaces to the client as a truncated body, which ApplyDelta
// rejects.
func (s *Server) handleSnapshotFetch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if s.cfg.Snapshots == nil {
		writeError(w, http.StatusNotImplemented, "server has no persistent snapshot store (start fastd with -final-snapshot)")
		return
	}
	var req FetchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	have := make(map[store.ChunkID]struct{}, len(req.Have))
	for _, s := range req.Have {
		id, err := store.ParseChunkID(s)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		have[id] = struct{}{}
	}

	// WriteDelta validates the generation before emitting anything, so wrap
	// the writer to detect whether a clean JSON error is still possible.
	cw := &countingWriter{w: w}
	if _, err := s.cfg.Snapshots.WriteDelta(cw, have); err != nil {
		if cw.n == 0 {
			switch {
			case errors.Is(err, store.ErrNotChunked):
				writeError(w, http.StatusConflict, "%v", err)
			default:
				writeError(w, http.StatusInternalServerError, "snapshot delta failed: %v", err)
			}
			return
		}
		// Mid-stream failure: the truncated body fails the client's decode.
		return
	}
	s.met.snapshots.Inc()
}

// countingWriter tracks whether any response bytes have been committed,
// setting the delta content type just before the first byte.
type countingWriter struct {
	w http.ResponseWriter
	n int64
}

func (c *countingWriter) Write(b []byte) (int, error) {
	if c.n == 0 && len(b) > 0 {
		c.w.Header().Set("Content-Type", "application/octet-stream")
	}
	n, err := c.w.Write(b)
	c.n += int64(n)
	return n, err
}
