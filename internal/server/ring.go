package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/failpoint"
	"github.com/fastrepro/fast/internal/placement"
)

// Live ring reconfiguration, shard side.
//
// A shard in a replicated cluster keeps exactly the entries it owns under
// the placement ring: {id : shard ∈ Owners(id, replicas)}. Changing the
// ring (new seed, epoch, vnode count — the shard count is fixed for now)
// therefore means moving entries between shards, and doing it live means
// the move must never create a window where some id is resident nowhere.
// The protocol, driven by fastctl ring-update (see internal/replica):
//
//	prepare   The shard validates the pending ring (epoch must advance),
//	          adopts it as pending, and starts a background acquire: it
//	          fetches every peer's index (via the chunk-diff catch-up
//	          where available) and InsertSummary-adopts each entry it
//	          will own under the pending ring but does not yet hold.
//	          The current ring keeps serving; acquired entries are
//	          duplicates other owners still hold, so answers are
//	          unchanged (the router's merge dedups identical entries).
//	ready     Acquire finished. The shard now holds its entries under
//	          BOTH rings. It reports state "ready" and waits.
//	commit    Only accepted in "ready", and only issued by the driver
//	          after EVERY shard reported ready — the cluster-wide
//	          barrier that makes shedding safe: no shard drops an entry
//	          until all its new owners hold it. The shard sheds entries
//	          it does not own under the pending ring and swaps
//	          current ← pending.
//	abort     Drops the pending ring. Acquired entries remain as
//	          harmless duplicates; the next successful commit sheds
//	          them.
//
// Crash/fault behavior: a failure before commit leaves the current ring
// fully intact (the acquire only ever ADDS duplicate entries); a failure
// mid-shed leaves some no-longer-owned entries deleted — all of which are
// held by their new owners (the barrier ran), so a re-issued commit
// simply resumes shedding. Both epochs stay individually consistent at
// every step, which the crash-matrix test drives through the
// shard/ring-install and shard/migrate failpoints.

// PeerFetcher retrieves another shard's current index as a point-in-time
// engine. internal/replica provides the client-backed implementation
// (chunk-diff catch-up into a scratch store, falling back to a streaming
// snapshot); it lives outside this package because internal/client depends
// on the server's wire types.
type PeerFetcher interface {
	FetchEngine(ctx context.Context, shard int) (*core.Engine, error)
}

// ShardConfig makes a Server placement-aware: it serves /v1/ring and
// subsets/migrates by ring ownership.
type ShardConfig struct {
	// Index is this shard's position on the ring; in [0, Ring.Shards).
	Index int
	// Ring is the placement generation the shard booted with.
	Ring placement.Config
	// Replicas is the replica factor: each id lives on its Replicas
	// ring-order owners. Clamped to [1, Ring.Shards].
	Replicas int
	// Fetcher acquires peer indexes during migration. Required for ring
	// updates on multi-shard rings; a nil fetcher fails migrations (the
	// current ring keeps serving).
	Fetcher PeerFetcher
}

// migrateFetchTimeout bounds one peer fetch during a background acquire.
const migrateFetchTimeout = 5 * time.Minute

// Ring-manager states.
const (
	ringSteady    = "steady"
	ringMigrating = "migrating"
	ringReady     = "ready"
	ringFailed    = "failed"
)

// shardRing is the per-shard reconfiguration state machine. All fields are
// guarded by the server's ringMu; the background acquire goroutine only
// touches them through the guarded setters below.
type shardRing struct {
	index    int
	replicas int // current replica factor
	cur      *placement.Ring

	state           string
	pending         *placement.Ring
	pendingReplicas int
	gen             int // prepare generation; stale acquire goroutines no-op
	acquired        int
	shed            int
	lastErr         string
}

func newShardRing(cfg ShardConfig) (*shardRing, error) {
	ring, err := placement.New(cfg.Ring)
	if err != nil {
		return nil, fmt.Errorf("server: shard ring: %w", err)
	}
	if cfg.Index < 0 || cfg.Index >= ring.Shards() {
		return nil, fmt.Errorf("server: shard index %d out of range [0, %d)", cfg.Index, ring.Shards())
	}
	n := cfg.Replicas
	if n < 1 {
		n = 1
	}
	if n > ring.Shards() {
		n = ring.Shards()
	}
	return &shardRing{index: cfg.Index, replicas: n, cur: ring, state: ringSteady}, nil
}

// ringWire converts a ring + replica factor back to its wire form.
func ringWire(r *placement.Ring, replicas int) RingConfigWire {
	cfg := r.Config()
	return RingConfigWire{Shards: cfg.Shards, VNodes: cfg.VNodes, Seed: cfg.Seed, Epoch: cfg.Epoch, Replicas: replicas}
}

// ringStatusLocked assembles the status document. Callers hold s.ringMu.
func (s *Server) ringStatusLocked() *RingStatusResponse {
	sr := s.ring
	st := &RingStatusResponse{
		Enabled:            true,
		ShardIndex:         sr.index,
		State:              sr.state,
		Current:            ringWire(sr.cur, sr.replicas),
		CurrentFingerprint: sr.cur.Fingerprint(),
		Acquired:           sr.acquired,
		Shed:               sr.shed,
		LastError:          sr.lastErr,
	}
	if sr.pending != nil {
		pw := ringWire(sr.pending, sr.pendingReplicas)
		st.Pending = &pw
		st.PendingFingerprint = sr.pending.Fingerprint()
	}
	return st
}

// RingStatus returns the shard's placement state, or nil when the server
// does not run in shard mode.
func (s *Server) RingStatus() *RingStatusResponse {
	if s.ring == nil {
		return nil
	}
	s.ringMu.Lock()
	defer s.ringMu.Unlock()
	return s.ringStatusLocked()
}

// handleRing serves GET (status) and POST (prepare/commit/abort) /v1/ring.
func (s *Server) handleRing(w http.ResponseWriter, r *http.Request) {
	if s.ring == nil {
		writeError(w, http.StatusNotImplemented, "server is not running in shard mode (start fastd with -shard-count)")
		return
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.RingStatus())
	case http.MethodPost:
		if s.draining.Load() {
			writeError(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		var req RingUpdateRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "decoding request: %v", err)
			return
		}
		st, err := s.ringPhase(req)
		if err != nil {
			writeError(w, http.StatusConflict, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	default:
		writeError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

// ringPhase executes one protocol phase.
func (s *Server) ringPhase(req RingUpdateRequest) (*RingStatusResponse, error) {
	switch strings.ToLower(req.Phase) {
	case "prepare":
		return s.ringPrepare(req.Ring)
	case "commit":
		return s.ringCommit(req.Ring)
	case "abort":
		return s.ringAbort()
	default:
		return nil, fmt.Errorf("server: unknown ring phase %q (want prepare, commit or abort)", req.Phase)
	}
}

func (s *Server) ringPrepare(wire RingConfigWire) (*RingStatusResponse, error) {
	next, err := placement.New(placement.Config{Shards: wire.Shards, VNodes: wire.VNodes, Seed: wire.Seed, Epoch: wire.Epoch})
	if err != nil {
		return nil, err
	}
	nrep := wire.Replicas
	if nrep < 1 {
		nrep = 1
	}
	if nrep > next.Shards() {
		nrep = next.Shards()
	}

	s.ringMu.Lock()
	defer s.ringMu.Unlock()
	sr := s.ring
	if next.Shards() != sr.cur.Shards() {
		return nil, fmt.Errorf("server: ring update changes shard count %d -> %d; resizing is not live-reconfigurable yet", sr.cur.Shards(), next.Shards())
	}
	if s.ring.index >= next.Shards() {
		return nil, fmt.Errorf("server: shard index %d out of range for pending ring", sr.index)
	}
	// Idempotent re-prepare: the same pending ring again either reports
	// progress (migrating/ready) or restarts a failed acquire.
	if sr.pending != nil && sr.pending.Fingerprint() == next.Fingerprint() && sr.pendingReplicas == nrep {
		if sr.state != ringFailed {
			return s.ringStatusLocked(), nil
		}
	} else {
		if sr.state == ringMigrating {
			return nil, fmt.Errorf("server: reconfiguration to epoch %d already in flight", sr.pending.Epoch())
		}
		if next.Epoch() <= sr.cur.Epoch() {
			return nil, fmt.Errorf("server: ring epoch must advance (current %d, proposed %d)", sr.cur.Epoch(), next.Epoch())
		}
	}
	// Failpoint: reject the install outright — the current epoch is
	// untouched, the driver sees a clean refusal.
	if err := failpoint.Eval(failpoint.ShardRingInstall); err != nil {
		return nil, fmt.Errorf("server: ring install failed: %w", err)
	}
	sr.pending = next
	sr.pendingReplicas = nrep
	sr.state = ringMigrating
	sr.acquired = 0
	sr.lastErr = ""
	sr.gen++
	go s.ringAcquire(sr.gen, next, nrep)
	return s.ringStatusLocked(), nil
}

// ringAcquire is the background acquire: adopt, from every peer, the
// entries this shard will own under the pending ring but does not hold.
// It runs without the ring lock; results are reported through
// ringAcquireDone, which drops them if a newer prepare superseded this
// generation.
func (s *Server) ringAcquire(gen int, next *placement.Ring, replicas int) {
	acquired, err := s.acquireFromPeers(next, replicas)
	s.ringAcquireDone(gen, acquired, err)
}

func (s *Server) acquireFromPeers(next *placement.Ring, replicas int) (int, error) {
	acquired := 0
	for peer := 0; peer < next.Shards(); peer++ {
		if peer == s.ring.index {
			continue
		}
		// Failpoint: fail the acquire at a peer boundary; the shard parks
		// in "failed" with everything adopted so far kept (duplicates are
		// harmless) and a re-prepare restarts from scratch.
		if err := failpoint.Eval(failpoint.ShardMigrate); err != nil {
			return acquired, fmt.Errorf("migration interrupted at peer %d: %w", peer, err)
		}
		n, err := s.acquireFromPeer(peer, next, replicas)
		acquired += n
		if err != nil {
			return acquired, err
		}
	}
	return acquired, nil
}

func (s *Server) acquireFromPeer(peer int, next *placement.Ring, replicas int) (int, error) {
	fetcher := s.shardCfg.Fetcher
	if fetcher == nil {
		return 0, fmt.Errorf("no peer fetcher configured; cannot acquire from shard %d", peer)
	}
	ctx, cancel := context.WithTimeout(context.Background(), migrateFetchTimeout)
	defer cancel()
	peng, err := fetcher.FetchEngine(ctx, peer)
	if err != nil {
		return 0, fmt.Errorf("fetching shard %d: %w", peer, err)
	}
	acquired := 0
	for _, id := range peng.IDs() {
		if !next.OwnedBy(id, replicas, s.ring.index) {
			continue
		}
		eng := s.Engine() // re-load per entry: /v1/restore may swap it mid-acquire
		if eng.Contains(id) {
			continue
		}
		sp, ok := peng.SummaryOf(id)
		if !ok {
			// Resident only in the peer snapshot's cold tier; snapshot
			// restores are all-hot, so this cannot happen — but fail loudly
			// rather than silently under-acquire if that invariant shifts.
			return acquired, fmt.Errorf("shard %d holds %d outside RAM; cannot adopt", peer, id)
		}
		if err := eng.InsertSummary(id, sp); err != nil {
			// A concurrent replicated write may have landed the id between
			// the Contains check and the adopt; that duplicate is success.
			if eng.Contains(id) {
				continue
			}
			return acquired, fmt.Errorf("adopting %d from shard %d: %w", id, peer, err)
		}
		acquired++
	}
	return acquired, nil
}

// ringAcquireDone records the acquire outcome for generation gen.
func (s *Server) ringAcquireDone(gen, acquired int, err error) {
	s.ringMu.Lock()
	defer s.ringMu.Unlock()
	sr := s.ring
	if sr.gen != gen || sr.state != ringMigrating {
		return // superseded by a newer prepare or an abort
	}
	sr.acquired = acquired
	if err != nil {
		sr.state = ringFailed
		sr.lastErr = err.Error()
		return
	}
	sr.state = ringReady
}

func (s *Server) ringCommit(wire RingConfigWire) (*RingStatusResponse, error) {
	s.ringMu.Lock()
	defer s.ringMu.Unlock()
	sr := s.ring
	if sr.pending == nil {
		return nil, fmt.Errorf("server: no pending ring to commit")
	}
	if sr.pending.Epoch() != wire.Epoch {
		return nil, fmt.Errorf("server: commit names epoch %d but pending is %d", wire.Epoch, sr.pending.Epoch())
	}
	if sr.state != ringReady {
		return nil, fmt.Errorf("server: pending ring is %q, not ready to commit", sr.state)
	}
	// Failpoint: refuse the commit before any shed — the shard stays
	// "ready" holding entries under both rings, and the driver retries.
	if err := failpoint.Eval(failpoint.ShardMigrate); err != nil {
		return nil, fmt.Errorf("server: ring commit failed: %w", err)
	}
	// Shed entries this shard does not own under the new ring. Safe only
	// because the driver commits strictly after every shard acquired
	// (cluster-wide barrier): each shed entry is already held by all its
	// new owners. A crash mid-loop is recoverable — the remaining
	// duplicates shed on the re-issued commit.
	eng := s.Engine()
	shed := 0
	for _, id := range eng.IDs() {
		if sr.pending.OwnedBy(id, sr.pendingReplicas, sr.index) {
			continue
		}
		if err := eng.Delete(id); err != nil {
			return nil, fmt.Errorf("server: shedding %d: %w", id, err)
		}
		shed++
	}
	sr.shed = shed
	sr.cur = sr.pending
	sr.replicas = sr.pendingReplicas
	sr.pending = nil
	sr.pendingReplicas = 0
	sr.state = ringSteady
	sr.lastErr = ""
	return s.ringStatusLocked(), nil
}

func (s *Server) ringAbort() (*RingStatusResponse, error) {
	s.ringMu.Lock()
	defer s.ringMu.Unlock()
	sr := s.ring
	sr.pending = nil
	sr.pendingReplicas = 0
	sr.gen++ // orphan any in-flight acquire goroutine
	if sr.state != ringSteady {
		sr.state = ringSteady
		sr.lastErr = ""
	}
	return s.ringStatusLocked(), nil
}
