package server_test

import (
	"bytes"
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/server"
)

// TestServeSoak hammers one server from four directions at once — coalesced
// queries, coalesced inserts followed by deletes, hot snapshots (validated
// by reloading them), and stats polls — to give the race detector every
// interleaving the serving layer promises to survive: QueryBatch readers
// against InsertBatch/Delete writers against WriteTo under the engine's
// read lock. Run it under `go test -race` (the CI race job does).
func TestServeSoak(t *testing.T) {
	eng, ds := baseEngine(t)
	s, _, c := startServer(t, server.Config{
		Engine:   eng,
		Window:   time.Millisecond,
		BatchMax: 16,
	})

	soak := 2 * time.Second
	queryClients := 4
	if testing.Short() {
		soak = 500 * time.Millisecond
		queryClients = 2
	}
	ctx, cancel := context.WithTimeout(context.Background(), soak)
	defer cancel()

	qs, err := ds.Queries(4, 77)
	if err != nil {
		t.Fatal(err)
	}

	var queries, inserts, snapshots atomic.Int64
	errs := make(chan error, queryClients+3)
	var wg sync.WaitGroup
	running := func(err error) bool {
		// Work racing the deadline legitimately fails with a context error;
		// anything else is a real defect.
		if err == nil {
			return true
		}
		if ctx.Err() != nil {
			return false
		}
		errs <- err
		return false
	}

	for cl := 0; cl < queryClients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for i := 0; ctx.Err() == nil; i++ {
				res, err := c.Query(ctx, qs[(cl+i)%len(qs)].Probe, 15)
				if !running(err) {
					return
				}
				if len(res) == 0 {
					errs <- errNoResults
					return
				}
				queries.Add(1)
			}
		}(cl)
	}

	// Mutator: insert fresh photos through the coalesced path, then delete
	// them, so the index churns while staying bounded.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); ctx.Err() == nil; i++ {
			p := ds.FreshPhoto(9_300_000+i, int64(i))
			if !running(c.Insert(ctx, p.ID, p.Img)) {
				return
			}
			inserts.Add(1)
			if !running(c.Delete(ctx, p.ID)) {
				return
			}
		}
	}()

	// Snapshotter: cut hot snapshots while everything above runs, and prove
	// each one is a consistent point-in-time image by reloading it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var buf bytes.Buffer
		for ctx.Err() == nil {
			buf.Reset()
			if _, err := c.Snapshot(ctx, &buf); err != nil {
				running(err)
				return
			}
			if _, err := core.ReadEngine(bytes.NewReader(buf.Bytes())); err != nil {
				if ctx.Err() == nil {
					errs <- err
				}
				return
			}
			snapshots.Add(1)
		}
	}()

	// Stats poller: reads every counter the workers are writing.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			if _, err := c.Stats(ctx); !running(err) {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("soak worker failed: %v", err)
	}
	if queries.Load() == 0 || inserts.Load() == 0 || snapshots.Load() == 0 {
		t.Fatalf("soak did not exercise all paths: %d queries, %d inserts, %d snapshots",
			queries.Load(), inserts.Load(), snapshots.Load())
	}
	t.Logf("soak: %d queries, %d insert/delete pairs, %d verified hot snapshots (deduped %d)",
		queries.Load(), inserts.Load(), snapshots.Load(), s.Stats().QueryDeduped)
}

var errNoResults = &emptyResultsError{}

type emptyResultsError struct{}

func (*emptyResultsError) Error() string { return "query returned no results during soak" }
