package server_test

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/server"
)

// TestServeSoak hammers one server from four directions at once — coalesced
// queries, coalesced inserts followed by deletes, hot snapshots (validated
// by reloading them), and stats polls — to give the race detector every
// interleaving the serving layer promises to survive: QueryBatch readers
// against InsertBatch/Delete writers against WriteTo under the engine's
// read lock. Run it under `go test -race` (the CI race job does).
func TestServeSoak(t *testing.T) {
	eng, ds := baseEngine(t)
	s, _, c := startServer(t, server.Config{
		Engine:   eng,
		Window:   time.Millisecond,
		BatchMax: 16,
	})

	soak := 2 * time.Second
	queryClients := 4
	if testing.Short() {
		soak = 500 * time.Millisecond
		queryClients = 2
	}
	ctx, cancel := context.WithTimeout(context.Background(), soak)
	defer cancel()

	qs, err := ds.Queries(4, 77)
	if err != nil {
		t.Fatal(err)
	}

	var queries, inserts, snapshots atomic.Int64
	errs := make(chan error, queryClients+3)
	var wg sync.WaitGroup
	running := func(err error) bool {
		// Work racing the deadline legitimately fails with a context error;
		// anything else is a real defect.
		if err == nil {
			return true
		}
		if ctx.Err() != nil {
			return false
		}
		errs <- err
		return false
	}

	for cl := 0; cl < queryClients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for i := 0; ctx.Err() == nil; i++ {
				res, err := c.Query(ctx, qs[(cl+i)%len(qs)].Probe, 15)
				if !running(err) {
					return
				}
				if len(res) == 0 {
					errs <- errNoResults
					return
				}
				queries.Add(1)
			}
		}(cl)
	}

	// Mutator: insert fresh photos through the coalesced path, then delete
	// them, so the index churns while staying bounded.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); ctx.Err() == nil; i++ {
			p := ds.FreshPhoto(9_300_000+i, int64(i))
			if !running(c.Insert(ctx, p.ID, p.Img)) {
				return
			}
			inserts.Add(1)
			if !running(c.Delete(ctx, p.ID)) {
				return
			}
		}
	}()

	// Snapshotter: cut hot snapshots while everything above runs, and prove
	// each one is a consistent point-in-time image by reloading it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var buf bytes.Buffer
		for ctx.Err() == nil {
			buf.Reset()
			if _, err := c.Snapshot(ctx, &buf); err != nil {
				running(err)
				return
			}
			if _, err := core.ReadEngine(bytes.NewReader(buf.Bytes())); err != nil {
				if ctx.Err() == nil {
					errs <- err
				}
				return
			}
			snapshots.Add(1)
		}
	}()

	// Stats poller: reads every counter the workers are writing.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			if _, err := c.Stats(ctx); !running(err) {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("soak worker failed: %v", err)
	}
	if queries.Load() == 0 || inserts.Load() == 0 || snapshots.Load() == 0 {
		t.Fatalf("soak did not exercise all paths: %d queries, %d inserts, %d snapshots",
			queries.Load(), inserts.Load(), snapshots.Load())
	}
	t.Logf("soak: %d queries, %d insert/delete pairs, %d verified hot snapshots (deduped %d)",
		queries.Load(), inserts.Load(), snapshots.Load(), s.Stats().QueryDeduped)
}

var errNoResults = &emptyResultsError{}

type emptyResultsError struct{}

func (*emptyResultsError) Error() string { return "query returned no results during soak" }

// TestCacheChurnSoak is the epoch-invalidation soak: cached network queries
// race inserts, deletes and snapshot->restore hot swaps (every mutation kind
// that bumps the epoch or replaces the engine), then the index quiesces and
// every cached answer is compared element-for-element against a cold
// QueryUncached recompute. Byte-identical answers after every churn round is
// the result-tier contract; the churn phase itself is the -race workout.
func TestCacheChurnSoak(t *testing.T) {
	eng, ds := baseEngine(t)
	eng.ConfigureCache(512, 512)
	s, _, c := startServer(t, server.Config{
		Engine:   eng,
		Window:   time.Millisecond,
		BatchMax: 16,
	})

	rounds, churn := 4, 300*time.Millisecond
	if testing.Short() {
		rounds, churn = 2, 100*time.Millisecond
	}
	qs, err := ds.Queries(6, 41)
	if err != nil {
		t.Fatal(err)
	}
	const topK = 15
	ctxBg := context.Background()

	var churnQueries, churnMutations, restores atomic.Int64
	for round := 0; round < rounds; round++ {
		// Churn workers run until a deadline but always let their in-flight
		// request COMPLETE (no context cancellation): an abandoned request
		// keeps mutating server-side after the client gives up, which would
		// leak churn into the quiesced verification below.
		deadline := time.Now().Add(churn)
		var wg sync.WaitGroup

		// Cached queries racing the mutators. Their answers are deliberately
		// not compared here — mid-mutation a cached answer may legally
		// reflect the state just before an overlapping write — they exist to
		// give the race detector the query-vs-epoch-bump interleavings.
		for cl := 0; cl < 2; cl++ {
			wg.Add(1)
			go func(cl int) {
				defer wg.Done()
				for i := 0; time.Now().Before(deadline); i++ {
					if _, err := c.Query(ctxBg, qs[(cl+i)%len(qs)].Probe, topK); err == nil {
						churnQueries.Add(1)
					}
				}
			}(cl)
		}

		// Mutator: insert/delete churn. Delete errors are tolerated — a
		// concurrent restore can legitimately roll an insert out from under
		// its delete (the photo then lingers, which the verification handles
		// by recomputing against the actual index state).
		wg.Add(1)
		go func(round int) {
			defer wg.Done()
			for i := uint64(0); time.Now().Before(deadline); i++ {
				p := ds.FreshPhoto(9_600_000+uint64(round)*10_000+i, int64(i))
				if c.Insert(ctxBg, p.ID, p.Img) == nil {
					churnMutations.Add(1)
				}
				_ = c.Delete(ctxBg, p.ID)
			}
		}(round)

		// Hot swapper: snapshot then restore, replacing the served engine
		// (fresh epoch, empty tiers) while cached queries are in flight.
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf bytes.Buffer
			for time.Now().Before(deadline) {
				buf.Reset()
				if _, err := c.Snapshot(ctxBg, &buf); err != nil {
					return
				}
				if err := c.Restore(ctxBg, bytes.NewReader(buf.Bytes())); err != nil {
					return
				}
				restores.Add(1)
				time.Sleep(20 * time.Millisecond)
			}
		}()

		wg.Wait()

		// Quiesced verification: with no writers running, a cached network
		// answer must equal a cold engine recompute exactly. Run the
		// comparisons concurrently so warm hits and singleflight leaders both
		// occur.
		verifyErrs := make(chan error, len(qs))
		for qi := range qs {
			wg.Add(1)
			go func(qi int) {
				defer wg.Done()
				probe := qs[qi].Probe
				want, err := s.Engine().QueryUncached(probe, topK)
				if err != nil {
					verifyErrs <- err
					return
				}
				for pass := 0; pass < 2; pass++ { // miss then hit
					got, err := c.Query(ctxBg, probe, topK)
					if err != nil {
						verifyErrs <- err
						return
					}
					if len(got) != len(want) {
						verifyErrs <- fmt.Errorf("round %d q %d pass %d: %d results, want %d",
							round, qi, pass, len(got), len(want))
						return
					}
					for i := range got {
						if got[i] != want[i] {
							verifyErrs <- fmt.Errorf("round %d q %d pass %d: result[%d] = %+v, want %+v",
								round, qi, pass, i, got[i], want[i])
							return
						}
					}
				}
			}(qi)
		}
		wg.Wait()
		close(verifyErrs)
		for err := range verifyErrs {
			t.Fatalf("cached answer diverged from cold recompute: %v", err)
		}
	}

	if churnQueries.Load() == 0 || churnMutations.Load() == 0 || restores.Load() == 0 {
		t.Fatalf("soak did not exercise all paths: %d queries, %d mutations, %d restores",
			churnQueries.Load(), churnMutations.Load(), restores.Load())
	}
	// The restore hot swap must have carried the cache configuration onto
	// the replacement engine, and the verification passes must have hit.
	if sn, rn := s.Engine().CacheConfig(); sn != 512 || rn != 512 {
		t.Fatalf("cache config lost across restore: (%d, %d)", sn, rn)
	}
	st := s.Stats()
	if st.SummaryCacheHits == 0 || st.ResultCacheHits == 0 {
		t.Fatalf("quiesced verification never hit the cache: %+v", st)
	}
	t.Logf("churn soak: %d racing queries, %d mutations, %d hot restores; summary hits %d, result hits %d, epoch %d",
		churnQueries.Load(), churnMutations.Load(), restores.Load(),
		st.SummaryCacheHits, st.ResultCacheHits, st.CacheEpoch)
}
