package server

import (
	"context"
	"errors"
	"sync/atomic"

	"github.com/fastrepro/fast/internal/metrics"
)

// ErrOverloaded is returned by the admission controller when the waiting
// line is full; handlers translate it to 429 with a Retry-After header.
var ErrOverloaded = errors.New("server: overloaded, retry later")

// admission bounds the work the server accepts: at most maxInflight
// requests execute concurrently, and at most maxQueue more may wait for a
// slot. Anything beyond that is rejected immediately — the paper's serving
// evaluation (500 concurrent clients) only works because the index tier is
// never handed more concurrent work than it can schedule, and an explicit
// 429 lets well-behaved clients back off instead of timing out.
type admission struct {
	slots    chan struct{}
	waiting  atomic.Int64
	maxQueue int64
	rejected *metrics.Counter
}

func newAdmission(maxInflight, maxQueue int, rejected *metrics.Counter) *admission {
	a := &admission{
		slots:    make(chan struct{}, maxInflight),
		maxQueue: int64(maxQueue),
		rejected: rejected,
	}
	for i := 0; i < maxInflight; i++ {
		a.slots <- struct{}{}
	}
	return a
}

// acquire claims an execution slot, waiting in the bounded queue if none is
// free. It returns ErrOverloaded when the queue is full and the context's
// error if the caller gave up first. Every successful acquire must be paired
// with release.
func (a *admission) acquire(ctx context.Context) error {
	// Fast path: free slot, no queueing.
	select {
	case <-a.slots:
		return nil
	default:
	}
	if a.waiting.Add(1) > a.maxQueue {
		a.waiting.Add(-1)
		a.rejected.Inc()
		return ErrOverloaded
	}
	defer a.waiting.Add(-1)
	select {
	case <-a.slots:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (a *admission) release() { a.slots <- struct{}{} }
