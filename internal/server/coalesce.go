package server

import (
	"sync"
	"time"
)

// coalescer is a micro-batching queue: items submitted by concurrent
// request handlers are gathered into batches of up to maxBatch, waiting at
// most window after the first arrival, and handed to dispatch on a fresh
// goroutine — so the collector keeps gathering the next batch while the
// engine processes the current one. This is how network fan-in (hundreds
// of single-probe requests) is converted into the wide Engine.QueryBatch /
// Engine.InsertBatch calls the sharded index paths were built for.
//
// dispatch owns replying to every item it is given; submit-side handlers
// block on their per-item response channel.
type coalescer[T any] struct {
	jobs     chan T
	window   time.Duration
	maxBatch int
	dispatch func([]T)
	wg       sync.WaitGroup
}

// newCoalescer starts the collector goroutine. window must be positive and
// maxBatch at least 1.
func newCoalescer[T any](window time.Duration, maxBatch int, dispatch func([]T)) *coalescer[T] {
	c := &coalescer[T]{
		// The submit channel is buffered to one batch so a burst does not
		// serialize on the collector's loop iterations.
		jobs:     make(chan T, maxBatch),
		window:   window,
		maxBatch: maxBatch,
		dispatch: dispatch,
	}
	c.wg.Add(1)
	go c.run()
	return c
}

// submit hands one item to the collector. It must not be called after
// close; the server's drain sequence guarantees that (handlers are drained
// by http.Server.Shutdown before the coalescers are closed).
func (c *coalescer[T]) submit(t T) { c.jobs <- t }

// close stops the collector after the in-flight batches complete. Items
// already submitted are still dispatched.
func (c *coalescer[T]) close() {
	close(c.jobs)
	c.wg.Wait()
}

func (c *coalescer[T]) run() {
	defer c.wg.Done()
	for {
		first, ok := <-c.jobs
		if !ok {
			return
		}
		batch := make([]T, 1, c.maxBatch)
		batch[0] = first
		timer := time.NewTimer(c.window)
	gather:
		for len(batch) < c.maxBatch {
			select {
			case j, ok := <-c.jobs:
				if !ok {
					break gather // dispatch the tail, then exit on next receive
				}
				batch = append(batch, j)
			case <-timer.C:
				break gather
			}
		}
		timer.Stop()
		c.wg.Add(1)
		go func(b []T) {
			defer c.wg.Done()
			c.dispatch(b)
		}(batch)
	}
}
