package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/fastrepro/fast/internal/chunk"
	"github.com/fastrepro/fast/internal/client"
	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/server"
	"github.com/fastrepro/fast/internal/store"
	"github.com/fastrepro/fast/internal/workload"
)

var (
	baseOnce sync.Once
	baseDS   *workload.Dataset
	baseSnap []byte // snapshot of an engine built over baseDS
)

// baseEngine returns a fresh engine equivalent to the shared built one by
// restoring it from a cached snapshot, so each test can mutate its own copy
// without paying feature extraction again.
func baseEngine(t *testing.T) (*core.Engine, *workload.Dataset) {
	t.Helper()
	baseOnce.Do(func() {
		ds, err := workload.Generate(workload.Spec{
			Name: "server-test", Scenes: 5, Photos: 48, Subjects: 3,
			SubjectRate: 0.3, Resolution: 64, Seed: 19, SceneBase: 8100,
		})
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		e := core.NewEngine(core.Config{})
		if _, err := e.Build(ds.Photos); err != nil {
			t.Fatalf("Build: %v", err)
		}
		var buf bytes.Buffer
		if _, err := e.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		baseDS, baseSnap = ds, buf.Bytes()
	})
	if baseSnap == nil {
		t.Fatal("base engine construction failed earlier")
	}
	e, err := core.ReadEngine(bytes.NewReader(baseSnap))
	if err != nil {
		t.Fatalf("ReadEngine: %v", err)
	}
	return e, baseDS
}

// startServer boots the serving stack on an in-process listener.
func startServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server, *client.Client) {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	c := client.New(hs.URL, client.WithHTTPClient(hs.Client()), client.WithRetries(2, 20*time.Millisecond))
	return s, hs, c
}

// TestQueryIdentityCoalesced is the acceptance check for the coalescing
// path: many concurrent network queries, answered through micro-batched
// Engine.QueryBatch calls with mixed topK budgets, must be byte-identical
// to sequential Engine.Query answers.
func TestQueryIdentityCoalesced(t *testing.T) {
	eng, ds := baseEngine(t)
	s, _, c := startServer(t, server.Config{
		Engine:   eng,
		Window:   10 * time.Millisecond,
		BatchMax: 16,
	})

	qs, err := ds.Queries(8, 33)
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		qi   int
		topK int
		got  []core.SearchResult
		err  error
	}
	const rounds = 4
	results := make(chan result, rounds*len(qs))
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for qi := range qs {
			topK := 50
			if (r+qi)%2 == 1 {
				topK = 5
			}
			wg.Add(1)
			go func(qi, topK int) {
				defer wg.Done()
				got, err := c.Query(context.Background(), qs[qi].Probe, topK)
				results <- result{qi: qi, topK: topK, got: got, err: err}
			}(qi, topK)
		}
	}
	wg.Wait()
	close(results)

	for res := range results {
		if res.err != nil {
			t.Fatalf("query %d: %v", res.qi, res.err)
		}
		want, err := eng.Query(qs[res.qi].Probe, res.topK)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.got) != len(want) {
			t.Fatalf("query %d topK %d: %d results over the wire, %d direct", res.qi, res.topK, len(res.got), len(want))
		}
		for i := range want {
			if res.got[i] != want[i] {
				t.Fatalf("query %d result %d differs: %+v vs %+v", res.qi, i, res.got[i], want[i])
			}
		}
	}

	st := s.Stats()
	if st.Queries != rounds*int64(len(qs)) {
		t.Errorf("stats queries = %d, want %d", st.Queries, rounds*len(qs))
	}
	if st.QueryBatches == 0 {
		t.Error("no coalesced batches dispatched")
	}
	if st.QueryBatchMax < 2 {
		t.Errorf("max batch = %d; coalescing never gathered concurrent queries", st.QueryBatchMax)
	}
	t.Logf("batches=%d mean=%.1f max=%d queueWaitMean=%v",
		st.QueryBatches, st.QueryBatchMean, st.QueryBatchMax, time.Duration(st.QueueWaitMeanNs))
}

func TestInsertDeleteOverWire(t *testing.T) {
	eng, ds := baseEngine(t)
	_, _, c := startServer(t, server.Config{
		Engine:   eng,
		Window:   2 * time.Millisecond,
		BatchMax: 8,
	})
	ctx := context.Background()

	p := ds.FreshPhoto(9_000_001, 5)
	if err := c.Insert(ctx, p.ID, p.Img); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if !eng.Contains(p.ID) {
		t.Fatal("inserted photo missing from engine")
	}
	// Duplicate insert fails without disturbing the index.
	if err := c.Insert(ctx, p.ID, p.Img); err == nil {
		t.Fatal("duplicate insert accepted")
	}
	if err := c.Delete(ctx, p.ID); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if eng.Contains(p.ID) {
		t.Fatal("photo still indexed after delete")
	}
	if err := c.Delete(ctx, p.ID); err == nil {
		t.Fatal("double delete accepted")
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Inserts != 1 || st.InsertErrors != 1 || st.Deletes != 1 {
		t.Errorf("stats inserts/errors/deletes = %d/%d/%d, want 1/1/1", st.Inserts, st.InsertErrors, st.Deletes)
	}
	if st.Photos != eng.Len() {
		t.Errorf("stats photos = %d, engine len %d", st.Photos, eng.Len())
	}
}

func TestSnapshotRestoreOverWire(t *testing.T) {
	engA, ds := baseEngine(t)
	_, _, cA := startServer(t, server.Config{Engine: engA})

	// Server B starts from a deliberately different index: the base corpus
	// minus a few photos.
	engB, _ := baseEngine(t)
	for _, p := range ds.Photos[:5] {
		if err := engB.Delete(p.ID); err != nil {
			t.Fatal(err)
		}
	}
	sB, _, cB := startServer(t, server.Config{Engine: engB})

	ctx := context.Background()
	var snap bytes.Buffer
	n, err := cA.Snapshot(ctx, &snap)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if n != int64(snap.Len()) || n == 0 {
		t.Fatalf("Snapshot reported %d bytes, buffered %d", n, snap.Len())
	}
	if err := cB.Restore(ctx, bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got, want := sB.Engine().Len(), engA.Len(); got != want {
		t.Fatalf("restored engine has %d photos, want %d", got, want)
	}

	qs, err := ds.Queries(4, 91)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range qs {
		want, err := engA.Query(q.Probe, 30)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cB.Query(ctx, q.Probe, 30)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: %d vs %d results after restore", qi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d result %d differs after restore", qi, i)
			}
		}
	}

	// Corrupt restores are refused and leave the engine untouched.
	if err := cB.Restore(ctx, bytes.NewReader(snap.Bytes()[:100])); err == nil {
		t.Fatal("truncated restore accepted")
	}
	if sB.Engine().Len() != engA.Len() {
		t.Fatal("failed restore disturbed the engine")
	}
}

// TestTieredStatsAndRestoreAdoption serves the corpus from a two-tier
// engine (half the photos migrated to the disk-resident cold tier): wire
// answers must be byte-identical to an all-RAM oracle, /v1/stats must
// expose the tiered_* counters, and a hot-snapshot restore must hand the
// open cold store to the replacement engine rather than dropping half the
// corpus.
func TestTieredStatsAndRestoreAdoption(t *testing.T) {
	oracle, ds := baseEngine(t)
	_, _, cA := startServer(t, server.Config{Engine: oracle})

	engB, _ := baseEngine(t)
	if _, err := engB.EnableColdTier(t.TempDir(), 0, 0); err != nil {
		t.Fatalf("EnableColdTier: %v", err)
	}
	if _, err := engB.MigrateCold(len(ds.Photos) / 2); err != nil {
		t.Fatalf("MigrateCold: %v", err)
	}
	sB, _, cB := startServer(t, server.Config{Engine: engB})
	t.Cleanup(func() { sB.Engine().CloseColdTier() })
	ctx := context.Background()

	st, err := cB.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if !st.TieredEnabled {
		t.Fatal("tiered_enabled = false on a tiered engine")
	}
	if st.TieredColdEntries == 0 || st.TieredSegments == 0 {
		t.Fatalf("cold tier empty in stats: %d entries, %d segments", st.TieredColdEntries, st.TieredSegments)
	}
	if got := st.TieredHotEntries + st.TieredColdEntries; got != len(ds.Photos) {
		t.Fatalf("hot+cold = %d, corpus %d", got, len(ds.Photos))
	}
	if st.Photos != len(ds.Photos) || st.TieredColdBytes <= 0 || st.TieredMigrations == 0 {
		t.Fatalf("tiered stats inconsistent: %+v", st)
	}

	checkIdentity := func(stage string) {
		t.Helper()
		qs, err := ds.Queries(4, 77)
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range qs {
			want, err := oracle.Query(q.Probe, 30)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cB.Query(ctx, q.Probe, 30)
			if err != nil {
				t.Fatalf("%s query %d: %v", stage, qi, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s query %d: %d results over the wire, oracle %d", stage, qi, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s query %d result %d: %+v vs oracle %+v", stage, qi, i, got[i], want[i])
				}
			}
		}
	}
	checkIdentity("tiered")

	st2, err := cB.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st2.TieredSpillProbes == 0 || st2.TieredPostingsScanned == 0 {
		t.Fatalf("queries never spilled to the cold tier: probes=%d postings=%d",
			st2.TieredSpillProbes, st2.TieredPostingsScanned)
	}

	// Restore an all-hot snapshot from the oracle's server: the replacement
	// engine must adopt B's open cold tier and reconcile the ids it already
	// serves from disk back out of RAM.
	var snap bytes.Buffer
	if _, err := cA.Snapshot(ctx, &snap); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if err := cB.Restore(ctx, bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	st3, err := cB.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if !st3.TieredEnabled || st3.TieredColdEntries == 0 {
		t.Fatalf("cold tier lost across restore: %+v", st3)
	}
	if got := st3.TieredHotEntries + st3.TieredColdEntries; got != oracle.Len() {
		t.Fatalf("hot+cold = %d after restore, oracle %d", got, oracle.Len())
	}
	checkIdentity("restored")
}

// TestAdmissionBackpressure floods a server whose admission budget is one
// executing request and one waiting request; the overflow must be refused
// with 429 + Retry-After rather than queued without bound.
func TestAdmissionBackpressure(t *testing.T) {
	eng, ds := baseEngine(t)
	// The long window makes the first admitted query hold its slot inside
	// the coalescer until the timer fires, so the rest of the flood
	// deterministically piles up on the admission controller: one waits,
	// the overflow is refused.
	_, hs, _ := startServer(t, server.Config{
		Engine:      eng,
		Window:      300 * time.Millisecond,
		BatchMax:    64,
		MaxInflight: 1,
		MaxQueue:    1,
	})

	qs, err := ds.Queries(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	wi, err := server.EncodeImage(qs[0].Probe)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := json.Marshal(server.QueryRequest{Image: wi, TopK: 10})
	if err != nil {
		t.Fatal(err)
	}

	const flood = 24
	codes := make(chan int, flood)
	var sawRetryAfter sync.Map
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := hs.Client().Post(hs.URL+"/v1/query", "application/json", bytes.NewReader(payload))
			if err != nil {
				codes <- -1
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				sawRetryAfter.Store(resp.Header.Get("Retry-After"), true)
			}
			codes <- resp.StatusCode
		}()
	}
	wg.Wait()
	close(codes)

	counts := map[int]int{}
	for code := range codes {
		counts[code]++
	}
	if counts[http.StatusOK] == 0 {
		t.Errorf("no query got through: %v", counts)
	}
	if counts[http.StatusTooManyRequests] == 0 {
		t.Errorf("no query was refused with 429: %v", counts)
	}
	if _, ok := sawRetryAfter.Load("1"); !ok {
		t.Error("429 responses did not carry Retry-After: 1")
	}
	if counts[-1] > 0 || len(counts) > 2 {
		t.Errorf("unexpected outcomes: %v", counts)
	}
}

// TestDrainRefusesAndFinalSnapshotIsIdentical exercises the graceful
// shutdown contract: requests in flight when the drain begins complete,
// new ones are refused, and a snapshot cut after the drain reloads into an
// engine that answers queries identically.
func TestDrainRefusesAndFinalSnapshotIsIdentical(t *testing.T) {
	eng, ds := baseEngine(t)
	s, hs, c := startServer(t, server.Config{
		Engine:   eng,
		Window:   2 * time.Millisecond,
		BatchMax: 8,
	})
	ctx := context.Background()

	// Mutate through the API so the final snapshot has acknowledged writes
	// to preserve.
	ins := ds.FreshPhoto(9_100_001, 11)
	if err := c.Insert(ctx, ins.ID, ins.Img); err != nil {
		t.Fatal(err)
	}

	qs, err := ds.Queries(6, 55)
	if err != nil {
		t.Fatal(err)
	}
	// In-flight load racing the drain.
	errs := make(chan error, len(qs))
	var wg sync.WaitGroup
	for _, q := range qs {
		wg.Add(1)
		go func(q workload.Query) {
			defer wg.Done()
			_, err := c.Query(ctx, q.Probe, 20)
			errs <- err
		}(q)
	}
	time.Sleep(3 * time.Millisecond)
	s.BeginDrain()
	wg.Wait()
	close(errs)
	for err := range errs {
		// Every pre-drain request either completed or was refused with the
		// drain error — never dropped on the floor or failed differently.
		if err != nil && !isDrainErr(err) {
			t.Fatalf("in-flight query failed: %v", err)
		}
	}

	// New work is refused; health checks fail.
	if _, err := c.Query(ctx, qs[0].Probe, 10); !isDrainErr(err) {
		t.Fatalf("post-drain query: %v, want draining refusal", err)
	}
	if err := c.Healthy(ctx); err == nil {
		t.Fatal("healthz still OK while draining")
	}
	resp, err := hs.Client().Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz = %d while draining, want 503", resp.StatusCode)
	}

	// The drained server's engine snapshot reloads into an engine that
	// answers identically (including the post-boot insert).
	s.Close()
	var snap bytes.Buffer
	if _, err := s.Engine().WriteTo(&snap); err != nil {
		t.Fatal(err)
	}
	restored, err := core.ReadEngine(&snap)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Contains(ins.ID) {
		t.Fatal("final snapshot lost an acknowledged insert")
	}
	for qi, q := range qs {
		want, err := s.Engine().Query(q.Probe, 25)
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.Query(q.Probe, 25)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: %d vs %d results from final snapshot", qi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d result %d differs from final snapshot", qi, i)
			}
		}
	}
}

func isDrainErr(err error) bool {
	return err != nil && bytes.Contains([]byte(err.Error()), []byte("draining"))
}

func TestHealthzAndBadRequests(t *testing.T) {
	eng, _ := baseEngine(t)
	_, hs, c := startServer(t, server.Config{Engine: eng})
	if err := c.Healthy(context.Background()); err != nil {
		t.Fatalf("Healthy: %v", err)
	}

	for _, tc := range []struct {
		name string
		do   func() (*http.Response, error)
		want int
	}{
		{"query GET", func() (*http.Response, error) {
			return hs.Client().Get(hs.URL + "/v1/query")
		}, http.StatusMethodNotAllowed},
		{"query bad json", func() (*http.Response, error) {
			return hs.Client().Post(hs.URL+"/v1/query", "application/json", bytes.NewReader([]byte("{")))
		}, http.StatusBadRequest},
		{"query bad image", func() (*http.Response, error) {
			body, _ := json.Marshal(server.QueryRequest{Image: server.WireImage{W: 4, H: 4, Pix: "AAAA"}})
			return hs.Client().Post(hs.URL+"/v1/query", "application/json", bytes.NewReader(body))
		}, http.StatusBadRequest},
		{"restore garbage", func() (*http.Response, error) {
			return hs.Client().Post(hs.URL+"/v1/restore", "application/octet-stream", bytes.NewReader([]byte("junk")))
		}, http.StatusBadRequest},
		{"stats POST", func() (*http.Response, error) {
			return hs.Client().Post(hs.URL+"/v1/stats", "application/json", nil)
		}, http.StatusMethodNotAllowed},
	} {
		resp, err := tc.do()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var er server.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error == "" {
			t.Errorf("%s: refusal body is not an ErrorResponse (%v)", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

// TestBadRequestsDoNotLeakAdmission hammers a one-slot server with
// requests that fail after admission (malformed JSON bodies): each refusal
// must hand its slot back, or the follow-up legitimate query would starve.
func TestBadRequestsDoNotLeakAdmission(t *testing.T) {
	eng, ds := baseEngine(t)
	_, hs, c := startServer(t, server.Config{Engine: eng, MaxInflight: 1, MaxQueue: 1})
	for i := 0; i < 4; i++ {
		resp, err := hs.Client().Post(hs.URL+"/v1/query", "application/json", bytes.NewReader([]byte("{")))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad json attempt %d: status %d, want %d", i, resp.StatusCode, http.StatusBadRequest)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.Query(ctx, ds.Photos[0].Img, 5); err != nil {
		t.Fatalf("query after bad requests (leaked admission slot?): %v", err)
	}
}

func TestWireImageRoundTrip(t *testing.T) {
	eng, ds := baseEngine(t)
	_ = eng
	img := ds.Photos[0].Img
	wi, err := server.EncodeImage(img)
	if err != nil {
		t.Fatal(err)
	}
	back, err := server.DecodeImage(wi)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != img.W || back.H != img.H {
		t.Fatalf("dims %dx%d, want %dx%d", back.W, back.H, img.W, img.H)
	}
	for i := range img.Pix {
		if back.Pix[i] != img.Pix[i] {
			t.Fatalf("pixel %d: %v != %v (wire transport must be exact)", i, back.Pix[i], img.Pix[i])
		}
	}

	if _, err := server.DecodeImage(server.WireImage{W: -1, H: 4}); err == nil {
		t.Error("negative dimensions accepted")
	}
	if _, err := server.DecodeImage(server.WireImage{W: 1 << 20, H: 1 << 20, Pix: ""}); err == nil {
		t.Error("absurd dimensions accepted")
	}
	// W*H wrapping to 0 (2^32 squared, on 64-bit int) must not slip past the
	// pixel bound and pair up with an empty payload.
	big := int(uint64(1) << 32)
	if _, err := server.DecodeImage(server.WireImage{W: big, H: big, Pix: ""}); err == nil {
		t.Error("overflowing dimensions accepted")
	}
	wi.Pix = wi.Pix[:len(wi.Pix)/2]
	if _, err := server.DecodeImage(wi); err == nil {
		t.Error("short payload accepted")
	}
}

func TestStatsDocument(t *testing.T) {
	eng, ds := baseEngine(t)
	_, hs, c := startServer(t, server.Config{Engine: eng, Window: time.Millisecond})
	ctx := context.Background()
	qs, err := ds.Queries(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if _, err := c.Query(ctx, q.Probe, 10); err != nil {
			t.Fatal(err)
		}
	}
	var snap bytes.Buffer
	if _, err := c.Snapshot(ctx, &snap); err != nil {
		t.Fatal(err)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries != 3 || st.Snapshots != 1 {
		t.Errorf("queries/snapshots = %d/%d, want 3/1", st.Queries, st.Snapshots)
	}
	if st.Photos != eng.Len() || st.IndexBytes <= 0 {
		t.Errorf("photos/index_bytes = %d/%d", st.Photos, st.IndexBytes)
	}
	if st.QueryBatches == 0 || st.QueryBatchMean < 1 {
		t.Errorf("batch stats missing: %+v", st)
	}
	if st.UptimeNs <= 0 {
		t.Error("uptime missing")
	}
	if st.Draining {
		t.Error("draining reported on a live server")
	}

	// The JSON document exposes the documented field names.
	resp, err := hs.Client().Get(fmt.Sprintf("%s/v1/stats", hs.URL))
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, field := range []string{
		"queries", "admission_rejected", "query_batches", "query_batch_mean",
		"queue_wait_mean_ns", "photos", "index_bytes", "draining", "uptime_ns",
	} {
		if _, ok := raw[field]; !ok {
			t.Errorf("stats JSON missing field %q", field)
		}
	}
}

// TestSnapshotSaveEndpoint covers POST /v1/snapshot/save: with a chunked
// generation store configured, a save returns the write's dedup report, a
// second save of the same index reuses every chunk, /v1/stats surfaces the
// store counters, and a store-less server answers 501.
func TestSnapshotSaveEndpoint(t *testing.T) {
	eng, _ := baseEngine(t)
	g := &store.Generations{
		Path:    filepath.Join(t.TempDir(), "index.fast"),
		Chunked: true,
		CDC:     chunk.Config{MinSize: 256, AvgSize: 1024, MaxSize: 8192, Normalization: 2},
	}
	_, hs, _ := startServer(t, server.Config{Engine: eng, Snapshots: g})

	save := func() store.WriteResult {
		t.Helper()
		resp, err := hs.Client().Post(hs.URL+"/v1/snapshot/save", "application/json", nil)
		if err != nil {
			t.Fatalf("save: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("save status %d", resp.StatusCode)
		}
		var res store.WriteResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatalf("decoding save response: %v", err)
		}
		return res
	}

	first := save()
	if !first.Chunked || first.Chunks == 0 || first.ChunksNew == 0 {
		t.Fatalf("first save wrote no chunks: %+v", first)
	}
	second := save()
	if second.ChunksNew != 0 || second.ChunksReused != second.Chunks {
		t.Fatalf("identical re-save did not dedup fully: %+v", second)
	}
	if second.PhysicalBytes >= second.LogicalBytes {
		t.Fatalf("deduped save not cheaper than logical: %+v", second)
	}

	resp, err := hs.Client().Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.SnapshotStore == nil {
		t.Fatal("stats missing snapshot_store")
	}
	if st.SnapshotStore.Snapshots != 2 || st.SnapshotStore.ChunksReused == 0 ||
		st.SnapshotStore.LiveChunks == 0 {
		t.Fatalf("snapshot_store counters wrong: %+v", st.SnapshotStore)
	}
	if st.Snapshots != 2 {
		t.Fatalf("serving snapshot counter = %d, want 2", st.Snapshots)
	}

	// The saved generations must actually be recoverable.
	var restored *core.Engine
	if _, err := g.Recover(func(path string, r io.Reader) error {
		e, err := core.ReadEngine(r)
		if err != nil {
			return err
		}
		restored = e
		return nil
	}); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if restored.Len() != eng.Len() {
		t.Fatalf("recovered Len %d, want %d", restored.Len(), eng.Len())
	}

	// A server without a persistent store refuses the endpoint.
	eng2, _ := baseEngine(t)
	_, hs2, _ := startServer(t, server.Config{Engine: eng2})
	resp2, err := hs2.Client().Post(hs2.URL+"/v1/snapshot/save", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotImplemented {
		t.Fatalf("store-less save status %d, want 501", resp2.StatusCode)
	}
}
