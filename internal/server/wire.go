package server

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"math"

	"github.com/fastrepro/fast/internal/simimg"
	"github.com/fastrepro/fast/internal/store"
)

// The wire format of the /v1 API. Probe and insert images travel as raw
// float64 rasters (little-endian, base64 in JSON) rather than quantized
// PGM, so a query answered over the network is bit-identical to the same
// query issued against the embedded engine — the serving layer adds
// transport, not approximation.

// WireImage is a grayscale raster in transit.
type WireImage struct {
	W   int    `json:"w"`
	H   int    `json:"h"`
	Pix string `json:"pix"` // base64(std) of W*H little-endian float64s
}

// maxWirePixels bounds decoded rasters (64 MB of float64s) so a malicious
// request cannot ask the server to allocate unbounded memory.
const maxWirePixels = 1 << 23

// EncodeImage converts a raster to its wire form.
func EncodeImage(im *simimg.Image) (WireImage, error) {
	if im == nil || im.W <= 0 || im.H <= 0 || len(im.Pix) != im.W*im.H {
		return WireImage{}, fmt.Errorf("server: malformed image")
	}
	buf := make([]byte, 8*len(im.Pix))
	for i, v := range im.Pix {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return WireImage{W: im.W, H: im.H, Pix: base64.StdEncoding.EncodeToString(buf)}, nil
}

// DecodeImage converts a wire image back to a raster, validating the
// dimensions against the payload length. Each dimension is bounded before
// the product is taken in 64-bit, so huge W/H values cannot overflow the
// pixel-count check into a small (or zero) byte budget.
func DecodeImage(wi WireImage) (*simimg.Image, error) {
	if wi.W <= 0 || wi.H <= 0 || wi.W > maxWirePixels || wi.H > maxWirePixels ||
		int64(wi.W)*int64(wi.H) > maxWirePixels {
		return nil, fmt.Errorf("server: unreasonable image dimensions %dx%d", wi.W, wi.H)
	}
	buf, err := base64.StdEncoding.DecodeString(wi.Pix)
	if err != nil {
		return nil, fmt.Errorf("server: image payload: %w", err)
	}
	if len(buf) != 8*wi.W*wi.H {
		return nil, fmt.Errorf("server: image payload is %d bytes, want %d for %dx%d",
			len(buf), 8*wi.W*wi.H, wi.W, wi.H)
	}
	im := simimg.New(wi.W, wi.H)
	for i := range im.Pix {
		v := math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("server: non-finite pixel at index %d", i)
		}
		im.Pix[i] = v
	}
	return im, nil
}

// QueryRequest is the body of POST /v1/query.
type QueryRequest struct {
	Image WireImage `json:"image"`
	TopK  int       `json:"topk"`
}

// WireResult is one ranked hit.
type WireResult struct {
	ID    uint64  `json:"id"`
	Score float64 `json:"score"`
}

// QueryResponse is the body of a successful /v1/query.
//
// Partial and Stale are set only by the cluster router. Partial means the
// responding shards provably do not cover the whole key space (under the
// configured replica factor), so results may be missing entries. Stale
// means the answer is complete but at least one contributing shard had
// unacknowledged replica writes pending, so very recent mutations may not
// be reflected. A single node never sets either.
//
// IndexEpoch is the serving engine's published read-view epoch sampled
// before the query ran — a freshness token: the answer reflects at least
// every mutation whose acknowledgment carried an epoch ≤ this value. The
// router compares it against the largest epoch it has seen acknowledged by
// the shard to detect stale replicas.
type QueryResponse struct {
	Results    []WireResult `json:"results"`
	Partial    bool         `json:"partial,omitempty"`
	Stale      bool         `json:"stale,omitempty"`
	IndexEpoch uint64       `json:"index_epoch,omitempty"`
}

// ChunkSetResponse is the body of GET /v1/snapshot/chunks: the chunk-ID
// inventory (hex SHA-256) of the server's persistent store.
type ChunkSetResponse struct {
	Chunked bool     `json:"chunked"`
	Chunks  []string `json:"chunks"`
}

// FetchRequest is the body of POST /v1/snapshot/fetch: the chunk IDs the
// caller already holds. The response is a binary FASTDLT1 delta stream
// containing the newest generation's manifest plus every referenced chunk
// not listed here.
type FetchRequest struct {
	Have []string `json:"have"`
}

// InsertRequest is the body of POST /v1/insert.
type InsertRequest struct {
	ID    uint64    `json:"id"`
	Image WireImage `json:"image"`
}

// DeleteRequest is the body of POST /v1/delete.
type DeleteRequest struct {
	ID uint64 `json:"id"`
}

// OKResponse acknowledges a mutation. Epoch, when present, is the engine's
// published read-view epoch after the mutation committed: any later query
// reporting an IndexEpoch ≥ this value is guaranteed to reflect the
// mutation (view epochs are monotonic and a mutation publishes before its
// acknowledgment is written). The router records it per shard as the
// freshness floor replica reads are judged against.
type OKResponse struct {
	OK    bool   `json:"ok"`
	Epoch uint64 `json:"epoch,omitempty"`
}

// RingConfigWire is a placement generation on the wire: the exact inputs
// of placement.New plus the replica factor the cluster runs at. Identical
// configs build identical rings (and fingerprints) on every node.
type RingConfigWire struct {
	Shards   int    `json:"shards"`
	VNodes   int    `json:"vnodes,omitempty"`
	Seed     uint64 `json:"seed"`
	Epoch    uint64 `json:"epoch"`
	Replicas int    `json:"replicas"`
}

// RingUpdateRequest is the body of POST /v1/ring — one step of the
// two-phase live reconfiguration protocol (see DESIGN.md, "Replication &
// reconfiguration"). Phase is "prepare" (install the pending ring and
// start acquiring newly-owned entries in the background), "commit" (shed
// no-longer-owned entries and make the pending ring current; refused
// until the background acquire finished) or "abort" (drop the pending
// ring; already-acquired entries are kept as harmless duplicates until a
// later commit sheds them).
type RingUpdateRequest struct {
	Phase string         `json:"phase"`
	Ring  RingConfigWire `json:"ring"`
}

// RingStatusResponse is the body of GET /v1/ring and the reply to every
// /v1/ring phase. State is "steady" (no reconfiguration in flight),
// "migrating" (prepare accepted, background acquire running), "ready"
// (acquire finished, commit will be accepted) or "failed" (acquire
// errored; re-prepare restarts it — the current ring serves throughout).
type RingStatusResponse struct {
	Enabled            bool            `json:"enabled"`
	ShardIndex         int             `json:"shard_index"`
	State              string          `json:"state"`
	Current            RingConfigWire  `json:"current"`
	CurrentFingerprint uint64          `json:"current_fingerprint"`
	Pending            *RingConfigWire `json:"pending,omitempty"`
	PendingFingerprint uint64          `json:"pending_fingerprint,omitempty"`
	Acquired           int             `json:"acquired"` // entries adopted from peers for the pending ring
	Shed               int             `json:"shed"`     // entries dropped at the last commit
	LastError          string          `json:"last_error,omitempty"`
}

// ErrorResponse is the body of every non-2xx JSON reply.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Stats is the body of GET /v1/stats. Field-by-field documentation lives
// in DESIGN.md ("Serving layer"); briefly: Queries/Inserts/Deletes count
// requests that reached the engine, AdmissionRejected counts 429s,
// QueryBatches/InsertBatches count coalesced engine calls with
// *BatchMean/Max their probe counts, and QueueWait* are the microbatcher's
// collection delay percentiles in nanoseconds.
type Stats struct {
	// Serving counters.
	Queries           int64   `json:"queries"`            // queries answered by the engine
	QueryErrors       int64   `json:"query_errors"`       // queries that returned an engine error
	QueryDeduped      int64   `json:"query_deduped"`      // queries answered by a batch-mate's collapsed engine call
	Inserts           int64   `json:"inserts"`            // photos inserted
	InsertErrors      int64   `json:"insert_errors"`      // inserts that returned an engine error
	Deletes           int64   `json:"deletes"`            // photos deleted
	AdmissionRejected int64   `json:"admission_rejected"` // requests refused with 429 (queue full)
	Snapshots         int64   `json:"snapshots"`          // hot snapshots streamed
	QueryBatches      int64   `json:"query_batches"`      // coalesced QueryBatch dispatches
	QueryBatchMean    float64 `json:"query_batch_mean"`   // mean probes per dispatched query batch
	QueryBatchMax     int64   `json:"query_batch_max"`    // largest dispatched query batch
	InsertBatches     int64   `json:"insert_batches"`     // coalesced InsertBatch dispatches
	InsertBatchMean   float64 `json:"insert_batch_mean"`  // mean photos per dispatched insert batch
	InsertBatchMax    int64   `json:"insert_batch_max"`   // largest dispatched insert batch
	QueueWaitMeanNs   int64   `json:"queue_wait_mean_ns"` // mean coalescing delay (submit -> dispatch)
	QueueWaitP99Ns    int64   `json:"queue_wait_p99_ns"`  // p99 coalescing delay
	Draining          bool    `json:"draining"`           // true once graceful shutdown began
	UptimeNs          int64   `json:"uptime_ns"`          // time since the server was constructed

	// Engine state (point-in-time, mutually consistent).
	Photos      int    `json:"photos"`       // live indexed photos (both tiers)
	Entries     int    `json:"entries"`      // entry slots including deletion tombstones
	IndexEpoch  uint64 `json:"index_epoch"`  // epoch of the published lock-free read view
	IndexBytes  int64  `json:"index_bytes"`  // resident index size
	LSHShards   int    `json:"lsh_shards"`   // lock shards per LSH band
	TableShards int    `json:"table_shards"` // lock shards of the flat cuckoo table

	// Disk-resident cold tier (see DESIGN.md, "Tiered index"). All zero
	// when the engine runs without one (tiered_enabled false).
	TieredEnabled         bool  `json:"tiered_enabled"`
	TieredHotEntries      int   `json:"tiered_hot_entries"`      // live entries resident in RAM
	TieredColdEntries     int   `json:"tiered_cold_entries"`     // live entries served from disk
	TieredSegments        int   `json:"tiered_segments"`         // immutable cold segment files
	TieredTombstones      int   `json:"tiered_tombstones"`       // cold deletes awaiting compaction
	TieredColdBytes       int64 `json:"tiered_cold_bytes"`       // on-disk size of live segments
	TieredMigrations      int64 `json:"tiered_migrations"`       // hot→cold segment freezes
	TieredCompactions     int64 `json:"tiered_compactions"`      // cold-tier rewrites
	TieredSpillProbes     int64 `json:"tiered_spill_probes"`     // cold buckets scanned by queries
	TieredPostingsScanned int64 `json:"tiered_postings_scanned"` // cold postings records scored
	TieredBytesScanned    int64 `json:"tiered_bytes_scanned"`    // cold bytes touched by queries
	TieredWatermark       int   `json:"tiered_watermark"`        // hot-tier bound (0 = manual migration)

	// Read-path cache tiers (see DESIGN.md, "Read-path caching"). Zeroes
	// when a tier is disabled.
	SummaryCacheHits       int64  `json:"summary_cache_hits"`       // probes answered from the memoized summary tier
	SummaryCacheMisses     int64  `json:"summary_cache_misses"`     // probes that ran FE+SM
	SummaryCacheEntries    int    `json:"summary_cache_entries"`    // live summary-tier entries
	ResultCacheHits        int64  `json:"result_cache_hits"`        // queries answered from the result tier
	ResultCacheMisses      int64  `json:"result_cache_misses"`      // queries that ran the search back half
	ResultCacheEntries     int    `json:"result_cache_entries"`     // live result-tier entries
	CacheSingleflightWaits int64  `json:"cache_singleflight_waits"` // lookups that piggybacked on a concurrent identical compute
	CacheEpoch             uint64 `json:"cache_epoch"`              // index-mutation epoch versioning the result tier

	// Last startup recovery (static after boot; see DESIGN.md, "Failure
	// model & recovery"). RecoveryRan is false when the daemon started
	// without a snapshot sweep (e.g. fresh synthetic corpus).
	RecoveryRan        bool     `json:"recovery_ran"`
	RecoveryFallback   bool     `json:"recovery_fallback"`         // true when an older generation had to be used
	RecoveryGeneration int      `json:"recovery_generation"`       // generation index loaded (0 = primary)
	RecoverySource     string   `json:"recovery_source"`           // path of the loaded snapshot
	RecoveryErrors     []string `json:"recovery_errors,omitempty"` // load errors from newer generations
	RecoverySwept      []string `json:"recovery_swept,omitempty"`  // abandoned temp files removed

	// SnapshotStore reports the persistent generation store's cumulative
	// dedup effect (chunks written vs reused, logical vs physical bytes,
	// live chunk count, last-GC reclaim) when the daemon has one; nil
	// otherwise. See store.StoreStats for field documentation.
	SnapshotStore *store.StoreStats `json:"snapshot_store,omitempty"`

	// Ring reports the shard's placement state (current/pending ring,
	// migration progress) when the daemon runs in shard mode; nil
	// otherwise. See RingStatusResponse.
	Ring *RingStatusResponse `json:"ring,omitempty"`
}
