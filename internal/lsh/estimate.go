package lsh

import (
	"errors"
	"math"
	"sort"
)

// Proximity is the paper's query-quality measure χ = ||p1* - q|| / ||p1 - q||
// comparing the distance of the true nearest neighbor p1* against the
// searched nearest neighbor p1 for a query q. χ = 1 means the search is
// exact; larger values mean the returned neighbor is farther than optimal.
// (The paper uses this sampling procedure, from the original LSH study, to
// pick R = 600 for Wuhan and R = 900 for Shanghai.)
func Proximity(trueDist, searchedDist float64) float64 {
	if trueDist <= 0 {
		if searchedDist <= 0 {
			return 1
		}
		return math.Inf(1)
	}
	return searchedDist / trueDist
}

// EstimateR picks a radius R for LSH construction by sampling pairwise
// nearest-neighbor distances in the dataset: it returns the given quantile
// (e.g. 0.5 for the median) of each sample point's nearest-neighbor
// distance to the rest of the sample. This mirrors the well-recognized
// sampling method the paper cites: R should be roughly the distance
// between a query point and its nearest neighbors.
func EstimateR(sample [][]float64, quantile float64) (float64, error) {
	if len(sample) < 2 {
		return 0, errors.New("lsh: EstimateR needs at least 2 samples")
	}
	if quantile <= 0 || quantile > 1 {
		return 0, errors.New("lsh: quantile must be in (0, 1]")
	}
	nn := make([]float64, 0, len(sample))
	for i, p := range sample {
		best := math.Inf(1)
		for j, q := range sample {
			if i == j || len(p) != len(q) {
				continue
			}
			var d float64
			for k := range p {
				diff := p[k] - q[k]
				d += diff * diff
			}
			if d < best {
				best = d
			}
		}
		if !math.IsInf(best, 1) {
			nn = append(nn, math.Sqrt(best))
		}
	}
	if len(nn) == 0 {
		return 0, errors.New("lsh: no comparable samples")
	}
	sort.Float64s(nn)
	idx := int(quantile*float64(len(nn))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(nn) {
		idx = len(nn) - 1
	}
	return nn[idx], nil
}

// Sensitivity evaluates the (R, cR, P1, P2) parameters of Definition 1 for
// a single hash function of width omega: P1 = p(R) and P2 = p(cR). A valid
// locality-sensitive family requires P1 > P2 for c > 1.
func Sensitivity(r, c, omega float64) (p1, p2 float64) {
	return CollisionProb(r, omega), CollisionProb(c*r, omega)
}

// AmplifiedProbs lifts the single-function probabilities through the
// AND-OR construction of an (M, L) index: a table matches with p^M and at
// least one of L tables matches with 1-(1-p^M)^L.
func AmplifiedProbs(p float64, m, l int) float64 {
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	pm := math.Pow(p, float64(m))
	return 1 - math.Pow(1-pm, float64(l))
}
