package lsh

import (
	"math"
	"math/rand"
	"testing"
)

// randomSet draws n distinct elements from [0, space).
func randomSet(rng *rand.Rand, n, space int) []uint32 {
	seen := make(map[uint32]bool, n)
	out := make([]uint32, 0, n)
	for len(out) < n {
		x := uint32(rng.Intn(space))
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// overlapSet returns a variant of base sharing roughly frac of its elements.
func overlapSet(rng *rand.Rand, base []uint32, frac float64, space int) []uint32 {
	keep := int(float64(len(base)) * frac)
	out := append([]uint32(nil), base[:keep]...)
	for len(out) < len(base) {
		out = append(out, uint32(space+rng.Intn(space)))
	}
	return out
}

func TestNewMinHashValidation(t *testing.T) {
	if _, err := NewMinHash(MinHashParams{Bands: -1}); err == nil {
		t.Error("negative bands should fail")
	}
	mh, err := NewMinHash(MinHashParams{})
	if err != nil {
		t.Fatalf("NewMinHash: %v", err)
	}
	p := mh.Params()
	if p.Bands != 7 || p.Rows != 1 {
		t.Errorf("defaults = %+v, want bands=7 rows=1", p)
	}
}

func TestMinHashEmptySetRejected(t *testing.T) {
	mh, _ := NewMinHash(MinHashParams{})
	if err := mh.Insert(1, nil); err == nil {
		t.Error("empty insert should fail")
	}
	if _, err := mh.Query(nil); err == nil {
		t.Error("empty query should fail")
	}
}

func TestMinHashIdenticalSetsAlwaysCollide(t *testing.T) {
	mh, _ := NewMinHash(MinHashParams{Seed: 5})
	rng := rand.New(rand.NewSource(1))
	sets := make([][]uint32, 50)
	for i := range sets {
		sets[i] = randomSet(rng, 40, 100000)
		if err := mh.Insert(ItemID(i), sets[i]); err != nil {
			t.Fatal(err)
		}
	}
	if mh.Len() != 50 {
		t.Fatalf("Len = %d", mh.Len())
	}
	for i, s := range sets {
		got, err := mh.Query(s)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, id := range got {
			if id == ItemID(i) {
				found = true
			}
		}
		if !found {
			t.Fatalf("identical set %d did not collide with itself", i)
		}
	}
}

func TestMinHashRecallTracksJaccard(t *testing.T) {
	// High-similarity pairs must collide far more often than low-similarity
	// pairs; rates should roughly match MinHashCollisionProb.
	params := MinHashParams{Bands: 7, Rows: 2, Seed: 9}
	rng := rand.New(rand.NewSource(2))
	trial := func(frac float64) float64 {
		hits := 0
		const trials = 300
		for i := 0; i < trials; i++ {
			mh, _ := NewMinHash(params)
			base := randomSet(rng, 50, 1000000)
			_ = mh.Insert(1, base)
			variant := overlapSet(rng, base, frac, 1000000)
			got, _ := mh.Query(variant)
			if len(got) > 0 {
				hits++
			}
		}
		return float64(hits) / trials
	}
	// frac f of elements shared -> Jaccard f/(2-f).
	high := trial(0.8) // J = 0.67
	low := trial(0.2)  // J = 0.11
	if high < 0.8 {
		t.Errorf("high-similarity recall %v, want >= 0.8", high)
	}
	if low > 0.35 {
		t.Errorf("low-similarity recall %v, want <= 0.35", low)
	}
	wantHigh := MinHashCollisionProb(0.8/(2-0.8), params)
	if math.Abs(high-wantHigh) > 0.15 {
		t.Errorf("high recall %v deviates from theory %v", high, wantHigh)
	}
}

func TestMinHashQueryDeduplicates(t *testing.T) {
	mh, _ := NewMinHash(MinHashParams{Seed: 3})
	set := []uint32{1, 2, 3, 4, 5}
	_ = mh.Insert(42, set)
	got, _ := mh.Query(set)
	count := 0
	for _, id := range got {
		if id == 42 {
			count++
		}
	}
	if count != 1 {
		t.Errorf("item returned %d times, want 1", count)
	}
}

func TestMinHashStats(t *testing.T) {
	mh, _ := NewMinHash(MinHashParams{Seed: 4})
	if st := mh.Stats(); st.Buckets != 0 {
		t.Errorf("fresh stats = %+v", st)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		_ = mh.Insert(ItemID(i), randomSet(rng, 30, 10000))
	}
	st := mh.Stats()
	if st.TotalRefs != 20*7 {
		t.Errorf("TotalRefs = %d, want 140", st.TotalRefs)
	}
}

func TestMinHashCollisionProbMonotone(t *testing.T) {
	params := MinHashParams{Bands: 7, Rows: 2}
	prev := -1.0
	for _, j := range []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9, 1} {
		p := MinHashCollisionProb(j, params)
		if p < prev {
			t.Fatalf("collision prob not monotone at j=%v", j)
		}
		prev = p
	}
	if MinHashCollisionProb(0, params) != 0 {
		t.Error("P(collide | J=0) != 0")
	}
	if MinHashCollisionProb(1, params) != 1 {
		t.Error("P(collide | J=1) != 1")
	}
	if MinHashCollisionProb(-5, params) != 0 || MinHashCollisionProb(5, params) != 1 {
		t.Error("out-of-range j not clamped")
	}
}

func TestEstimateJaccard(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	base := randomSet(rng, 200, 1000000)
	variant := overlapSet(rng, base, 0.5, 1000000) // J = 0.5/1.5 = 0.333
	est := EstimateJaccard(base, variant, 500, 11)
	if math.Abs(est-1.0/3.0) > 0.08 {
		t.Errorf("estimated J = %v, want ~0.333", est)
	}
	if EstimateJaccard(nil, base, 10, 1) != 0 {
		t.Error("empty set estimate should be 0")
	}
	if est := EstimateJaccard(base, base, 100, 2); est != 1 {
		t.Errorf("self estimate = %v, want 1", est)
	}
}

func TestSortIDs(t *testing.T) {
	ids := []ItemID{5, 1, 3}
	SortIDs(ids)
	if ids[0] != 1 || ids[1] != 3 || ids[2] != 5 {
		t.Errorf("SortIDs = %v", ids)
	}
}

func TestMinHashDeterministicAcrossInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	set := randomSet(rng, 30, 10000)
	a, _ := NewMinHash(MinHashParams{Seed: 77})
	b, _ := NewMinHash(MinHashParams{Seed: 77})
	_ = a.Insert(1, set)
	_ = b.Insert(1, set)
	ga, _ := a.Query(set)
	gb, _ := b.Query(set)
	if len(ga) != 1 || len(gb) != 1 {
		t.Fatalf("same-seed instances disagree: %v vs %v", ga, gb)
	}
	c, _ := NewMinHash(MinHashParams{Seed: 78})
	_ = c.Insert(1, set)
	// Different seed still finds the identical set (identical sets always
	// collide under any min-hash family).
	gc, _ := c.Query(set)
	if len(gc) != 1 {
		t.Error("identical set lost under different seed")
	}
}
