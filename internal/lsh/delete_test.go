package lsh

import (
	"math/rand"
	"testing"
)

func TestIndexDelete(t *testing.T) {
	idx, _ := New(Params{Dim: 4, Seed: 1})
	v := []float64{1, 2, 3, 4}
	if err := idx.Insert(9, v); err != nil {
		t.Fatal(err)
	}
	removed, err := idx.Delete(9, v)
	if err != nil || !removed {
		t.Fatalf("Delete = %v, %v", removed, err)
	}
	if idx.Len() != 0 {
		t.Errorf("Len = %d after delete", idx.Len())
	}
	got, _ := idx.Query(v)
	for _, id := range got {
		if id == 9 {
			t.Fatal("deleted item still returned")
		}
	}
	// Second delete is a no-op.
	removed, err = idx.Delete(9, v)
	if err != nil || removed {
		t.Errorf("double delete = %v, %v", removed, err)
	}
	// Dimension mismatch errors.
	if _, err := idx.Delete(9, []float64{1}); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestIndexDeleteLeavesOthersIntact(t *testing.T) {
	idx, _ := New(Params{Dim: 6, Seed: 2})
	rng := rand.New(rand.NewSource(3))
	vecs := make([][]float64, 50)
	for i := range vecs {
		v := make([]float64, 6)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		vecs[i] = v
		_ = idx.Insert(ItemID(i), v)
	}
	for i := 0; i < 25; i++ {
		if removed, err := idx.Delete(ItemID(i), vecs[i]); err != nil || !removed {
			t.Fatalf("delete %d: %v, %v", i, removed, err)
		}
	}
	if idx.Len() != 25 {
		t.Fatalf("Len = %d, want 25", idx.Len())
	}
	// Every survivor is still found by its own vector.
	for i := 25; i < 50; i++ {
		got, err := idx.Query(vecs[i])
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, id := range got {
			if id == ItemID(i) {
				found = true
			}
			if id < 25 {
				t.Fatalf("deleted item %d still indexed", id)
			}
		}
		if !found {
			t.Fatalf("survivor %d lost", i)
		}
	}
}

func TestMinHashDelete(t *testing.T) {
	mh, _ := NewMinHash(MinHashParams{Seed: 4})
	set := []uint32{1, 5, 9, 12}
	if err := mh.Insert(7, set); err != nil {
		t.Fatal(err)
	}
	removed, err := mh.Delete(7, set)
	if err != nil || !removed {
		t.Fatalf("Delete = %v, %v", removed, err)
	}
	if mh.Len() != 0 {
		t.Errorf("Len = %d", mh.Len())
	}
	got, _ := mh.Query(set)
	if len(got) != 0 {
		t.Errorf("deleted item still returned: %v", got)
	}
	if removed, _ := mh.Delete(7, set); removed {
		t.Error("double delete returned true")
	}
	if _, err := mh.Delete(7, nil); err == nil {
		t.Error("empty set should fail")
	}
}

func TestMinHashDeleteSelective(t *testing.T) {
	mh, _ := NewMinHash(MinHashParams{Seed: 5})
	rng := rand.New(rand.NewSource(6))
	sets := make([][]uint32, 40)
	for i := range sets {
		sets[i] = randomSet(rng, 30, 100000)
		_ = mh.Insert(ItemID(i), sets[i])
	}
	for i := 0; i < 40; i += 2 {
		if removed, err := mh.Delete(ItemID(i), sets[i]); err != nil || !removed {
			t.Fatalf("delete %d: %v %v", i, removed, err)
		}
	}
	if mh.Len() != 20 {
		t.Fatalf("Len = %d", mh.Len())
	}
	for i := 1; i < 40; i += 2 {
		got, err := mh.Query(sets[i])
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, id := range got {
			if id == ItemID(i) {
				found = true
			}
			if id%2 == 0 {
				t.Fatalf("deleted item %d returned", id)
			}
		}
		if !found {
			t.Fatalf("survivor %d lost", i)
		}
	}
}
