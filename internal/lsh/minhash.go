package lsh

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/fastrepro/fast/internal/shard"
)

// MinHash is the Jaccard-space LSH family: the collision probability of a
// single min-wise hash equals the Jaccard similarity of the input sets
// exactly. The FAST engine defaults to this family for Semantic
// Aggregation.
//
// Why it exists alongside the paper's p-stable family: the paper feeds
// Bloom-filter bit vectors into floor((a·v+b)/ω) hashes. On our calibrated
// synthetic summaries the l2 gap between correlated and uncorrelated images
// is only ~1.45x, which the AND-OR construction (M=10, L=7) cannot amplify
// into a useful filter: the best achievable operating point retains 93% of
// correlated images while pruning only 24% of the corpus. The same
// summaries separated by Jaccard similarity (0.44 vs 0.10 on average) give
// MinHash banding a usable operating point (see MinHashParams for the
// default choice) — the behaviour the paper's evaluation attributes to its
// SA module. Both families are exercised by the ablation benchmarks.
//
// Concurrency: each band's bucket map is split into independently locked
// shards (selected by the high bits of the band key), so concurrent Query,
// Insert and Delete calls only contend when they land on the same shard of
// the same band. A MinHash is safe for concurrent use without external
// locking.
type MinHash struct {
	params MinHashParams
	seeds  [][]uint64 // [band][row]
	bands  []bandTable
	n      atomic.Int64
}

// bandTable is one band's sharded bucket map.
type bandTable struct {
	shards []minhashShard
}

// minhashShard is one independently locked slice of a band's key space.
type minhashShard struct {
	mu sync.RWMutex
	m  map[uint64][]ItemID
	// pad the shard to its own cache line so neighboring locks do not
	// false-share under concurrent queries.
	_ [24]byte
}

// MinHashParams configures a MinHash index.
type MinHashParams struct {
	Bands int   // L: number of bands (hash tables); 0 means 7 (paper's L)
	Rows  int   // M: min-hashes per band; 0 means 1 (recall-first; see below)
	Seed  int64 // seed for the hash family
}

// The default of one row per band makes the per-band collision probability
// equal the Jaccard similarity itself: with L=7 bands a probe recalls a
// J=0.2 neighbor with probability 1-(1-0.2)^7 ≈ 0.79 while passing a J=0.05
// non-neighbor with probability ~0.30. The paper argues exactly this
// trade (Section III-C2): "reducing false negatives increases query
// accuracy and thus is more important than reducing false positives" —
// surviving false positives are removed by the summary-similarity
// verification step, at O(1) cost per candidate.

func (p MinHashParams) withDefaults() MinHashParams {
	if p.Bands == 0 {
		p.Bands = 7
	}
	if p.Rows == 0 {
		p.Rows = 1
	}
	return p
}

// NewMinHash builds an empty MinHash index.
func NewMinHash(params MinHashParams) (*MinHash, error) {
	params = params.withDefaults()
	if params.Bands < 1 || params.Rows < 1 {
		return nil, fmt.Errorf("lsh: invalid minhash params %+v", params)
	}
	mh := &MinHash{params: params}
	nShards := shard.Count(0, 0)
	state := uint64(params.Seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	for b := 0; b < params.Bands; b++ {
		rows := make([]uint64, params.Rows)
		for r := range rows {
			state = splitmix(state)
			rows[r] = state
		}
		mh.seeds = append(mh.seeds, rows)
		shards := make([]minhashShard, nShards)
		for s := range shards {
			shards[s].m = make(map[uint64][]ItemID)
		}
		mh.bands = append(mh.bands, bandTable{shards: shards})
	}
	return mh, nil
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Params returns the effective parameters.
func (mh *MinHash) Params() MinHashParams { return mh.params }

// Len returns the number of inserted items.
func (mh *MinHash) Len() int { return int(mh.n.Load()) }

// shardOf returns the shard holding key within band b.
func (mh *MinHash) shardOf(b int, key uint64) *minhashShard {
	tb := &mh.bands[b]
	return &tb.shards[shard.Index(key, len(tb.shards))]
}

// signature computes the band key for the given element set.
func (mh *MinHash) signature(band int, set []uint32) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	key := uint64(fnvOffset)
	for _, seed := range mh.seeds[band] {
		minV := ^uint64(0)
		for _, el := range set {
			h := splitmix(uint64(el) ^ seed)
			if h < minV {
				minV = h
			}
		}
		for shift := 0; shift < 64; shift += 8 {
			key ^= (minV >> shift) & 0xff
			key *= fnvPrime
		}
	}
	return key
}

// Insert indexes the item's element set (e.g. the sparse Bloom summary's
// set-bit positions). Empty sets are rejected: they have no min-hash.
func (mh *MinHash) Insert(id ItemID, set []uint32) error {
	if len(set) == 0 {
		return fmt.Errorf("lsh: cannot minhash an empty set (item %d)", id)
	}
	for b := range mh.bands {
		k := mh.signature(b, set)
		sh := mh.shardOf(b, k)
		sh.mu.Lock()
		sh.m[k] = append(sh.m[k], id)
		sh.mu.Unlock()
	}
	mh.n.Add(1)
	return nil
}

// Query returns the distinct candidates colliding with the set in any band,
// in first-seen order.
func (mh *MinHash) Query(set []uint32) ([]ItemID, error) {
	if len(set) == 0 {
		return nil, fmt.Errorf("lsh: cannot minhash an empty set")
	}
	seen := make(map[ItemID]struct{})
	var out []ItemID
	for b := range mh.bands {
		k := mh.signature(b, set)
		sh := mh.shardOf(b, k)
		sh.mu.RLock()
		for _, id := range sh.m[k] {
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				out = append(out, id)
			}
		}
		sh.mu.RUnlock()
	}
	return out, nil
}

// Stats aggregates bucket occupancy across bands.
func (mh *MinHash) Stats() BucketStats {
	var st BucketStats
	for b := range mh.bands {
		for s := range mh.bands[b].shards {
			sh := &mh.bands[b].shards[s]
			sh.mu.RLock()
			for _, bucket := range sh.m {
				st.Buckets++
				st.TotalRefs += len(bucket)
				if len(bucket) > st.MaxLen {
					st.MaxLen = len(bucket)
				}
			}
			sh.mu.RUnlock()
		}
	}
	if st.Buckets > 0 {
		st.MeanLen = float64(st.TotalRefs) / float64(st.Buckets)
	}
	return st
}

// Shards returns the number of independently locked shards per band.
func (mh *MinHash) Shards() int {
	if len(mh.bands) == 0 {
		return 0
	}
	return len(mh.bands[0].shards)
}

// MinHashCollisionProb returns the probability that two sets with Jaccard
// similarity j collide in at least one band: 1 - (1 - j^rows)^bands.
func MinHashCollisionProb(j float64, params MinHashParams) float64 {
	params = params.withDefaults()
	if j < 0 {
		j = 0
	} else if j > 1 {
		j = 1
	}
	pm := 1.0
	for i := 0; i < params.Rows; i++ {
		pm *= j
	}
	q := 1.0
	for i := 0; i < params.Bands; i++ {
		q *= 1 - pm
	}
	return 1 - q
}

// EstimateJaccard estimates the Jaccard similarity of two sets from their
// min-hash signatures over n independent hash functions (used by tests and
// diagnostics).
func EstimateJaccard(a, b []uint32, n int, seed int64) float64 {
	if len(a) == 0 || len(b) == 0 || n <= 0 {
		return 0
	}
	state := uint64(seed)*0x9e3779b97f4a7c15 + 7
	match := 0
	for i := 0; i < n; i++ {
		state = splitmix(state)
		minA, minB := ^uint64(0), ^uint64(0)
		for _, el := range a {
			if h := splitmix(uint64(el) ^ state); h < minA {
				minA = h
			}
		}
		for _, el := range b {
			if h := splitmix(uint64(el) ^ state); h < minB {
				minB = h
			}
		}
		if minA == minB {
			match++
		}
	}
	return float64(match) / float64(n)
}

// SortIDs orders item IDs ascending (helper for deterministic diagnostics
// and tests).
func SortIDs(ids []ItemID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
