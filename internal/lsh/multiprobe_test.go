package lsh

import (
	"math/rand"
	"testing"
)

func TestQueryMultiProbeValidation(t *testing.T) {
	idx, _ := New(Params{Dim: 4, Seed: 1})
	if _, err := idx.QueryMultiProbe([]float64{1}, 2); err == nil {
		t.Error("dimension mismatch should fail")
	}
	if _, err := idx.QueryMultiProbe([]float64{1, 2, 3, 4}, -1); err == nil {
		t.Error("negative probe count should fail")
	}
}

func TestQueryMultiProbeZeroEqualsPlainQuery(t *testing.T) {
	idx, _ := New(Params{Dim: 8, Seed: 2})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		v := make([]float64, 8)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		_ = idx.Insert(ItemID(i), v)
	}
	q := make([]float64, 8)
	for j := range q {
		q[j] = rng.NormFloat64()
	}
	plain, err := idx.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := idx.QueryMultiProbe(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(mp) {
		t.Fatalf("zero-probe multiprobe differs from plain query: %d vs %d", len(plain), len(mp))
	}
	for i := range plain {
		if plain[i] != mp[i] {
			t.Fatal("candidate order differs")
		}
	}
}

func TestQueryMultiProbeImprovesRecall(t *testing.T) {
	// Near neighbors that fall just across a slot boundary are recovered by
	// directed probing. Measure pairwise recall with and without probes.
	const dim = 8
	idx, _ := New(Params{Dim: dim, Omega: 2.0, Seed: 3})
	rng := rand.New(rand.NewSource(4))
	const n = 300
	base := make([][]float64, n)
	for i := range base {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64() * 10
		}
		base[i] = v
		_ = idx.Insert(ItemID(i), v)
	}
	countHits := func(probes int) int {
		hits := 0
		for i, v := range base {
			q := make([]float64, dim)
			for j := range q {
				q[j] = v[j] + rng.NormFloat64()*0.4 // near the stored point
			}
			var ids []ItemID
			var err error
			if probes == 0 {
				ids, err = idx.Query(q)
			} else {
				ids, err = idx.QueryMultiProbe(q, probes)
			}
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range ids {
				if id == ItemID(i) {
					hits++
					break
				}
			}
		}
		return hits
	}
	plain := countHits(0)
	probed := countHits(6)
	if probed <= plain {
		t.Errorf("multi-probe recall %d/%d not above plain %d/%d", probed, n, plain, n)
	}
}

func TestQueryMultiProbeSupersetOfPlain(t *testing.T) {
	idx, _ := New(Params{Dim: 4, Omega: 1.5, Seed: 5})
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		v := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		_ = idx.Insert(ItemID(i), v)
	}
	q := []float64{0.1, -0.2, 0.3, 0.4}
	plain, _ := idx.Query(q)
	probed, _ := idx.QueryMultiProbe(q, 4)
	inProbed := make(map[ItemID]bool, len(probed))
	for _, id := range probed {
		inProbed[id] = true
	}
	for _, id := range plain {
		if !inProbed[id] {
			t.Fatalf("plain candidate %d missing from multi-probe result", id)
		}
	}
}
