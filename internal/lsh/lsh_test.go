package lsh

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Params{Dim: 0}); err == nil {
		t.Error("zero dimension should fail")
	}
	if _, err := New(Params{Dim: 4, L: -1}); err == nil {
		t.Error("negative L should fail")
	}
	idx, err := New(Params{Dim: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p := idx.Params()
	if p.L != 7 || p.M != 10 || p.Omega != 0.85 {
		t.Errorf("defaults = L%d M%d ω%v, want paper values 7/10/0.85", p.L, p.M, p.Omega)
	}
}

func TestInsertQueryDimensionMismatch(t *testing.T) {
	idx, _ := New(Params{Dim: 4})
	if err := idx.Insert(1, []float64{1, 2}); err == nil {
		t.Error("short vector insert should fail")
	}
	if _, err := idx.Query([]float64{1, 2, 3, 4, 5}); err == nil {
		t.Error("long vector query should fail")
	}
}

// cluster generates n points near center with the given spread.
func cluster(rng *rand.Rand, center []float64, n int, spread float64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, len(center))
		for j := range v {
			v[j] = center[j] + rng.NormFloat64()*spread
		}
		out[i] = v
	}
	return out
}

func TestLocalityAwareGrouping(t *testing.T) {
	// The defining property: near points collide far more often than far
	// points. Build two tight, well-separated clusters and query from one.
	const dim = 16
	rng := rand.New(rand.NewSource(1))
	centerA := make([]float64, dim)
	centerB := make([]float64, dim)
	for i := range centerB {
		centerB[i] = 30
	}
	idx, err := New(Params{Dim: dim, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Spread 0.01 puts intra-cluster distances ~0.06, where the amplified
	// collision probability (L=7, M=10, ω=0.85) exceeds 0.99.
	a := cluster(rng, centerA, 50, 0.01)
	b := cluster(rng, centerB, 50, 0.01)
	for i, v := range a {
		if err := idx.Insert(ItemID(i), v); err != nil {
			t.Fatal(err)
		}
	}
	for i, v := range b {
		if err := idx.Insert(ItemID(1000+i), v); err != nil {
			t.Fatal(err)
		}
	}
	if idx.Len() != 100 {
		t.Fatalf("Len = %d, want 100", idx.Len())
	}
	q := cluster(rng, centerA, 1, 0.01)[0]
	got, err := idx.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	var near, far int
	for _, id := range got {
		if id < 1000 {
			near++
		} else {
			far++
		}
	}
	if near < 25 {
		t.Errorf("only %d/50 near-cluster items retrieved", near)
	}
	if far > near/4 {
		t.Errorf("too many far-cluster items: %d far vs %d near", far, near)
	}
}

func TestQueryDeduplicatesCandidates(t *testing.T) {
	idx, _ := New(Params{Dim: 4, Seed: 3})
	v := []float64{1, 2, 3, 4}
	if err := idx.Insert(42, v); err != nil {
		t.Fatal(err)
	}
	got, err := idx.Query(v)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, id := range got {
		if id == 42 {
			count++
		}
	}
	if count != 1 {
		t.Errorf("item 42 returned %d times, want exactly once", count)
	}
}

func TestExactItemAlwaysFound(t *testing.T) {
	// An inserted vector queried verbatim must collide in every table.
	idx, _ := New(Params{Dim: 8, Seed: 11})
	rng := rand.New(rand.NewSource(2))
	vecs := cluster(rng, make([]float64, 8), 100, 5)
	for i, v := range vecs {
		if err := idx.Insert(ItemID(i), v); err != nil {
			t.Fatal(err)
		}
	}
	for i, v := range vecs {
		got, err := idx.Query(v)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, id := range got {
			if id == ItemID(i) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("item %d not found by its own vector", i)
		}
	}
}

func TestMultiProbeFindsMoreCandidates(t *testing.T) {
	const dim = 8
	rng := rand.New(rand.NewSource(5))
	base, _ := New(Params{Dim: dim, Seed: 9})
	probed, _ := New(Params{Dim: dim, Seed: 9, Probes: 10})
	pts := cluster(rng, make([]float64, dim), 300, 1.2)
	for i, v := range pts {
		_ = base.Insert(ItemID(i), v)
		_ = probed.Insert(ItemID(i), v)
	}
	var baseTotal, probedTotal int
	for trial := 0; trial < 20; trial++ {
		q := cluster(rng, make([]float64, dim), 1, 1.2)[0]
		b, _ := base.Query(q)
		p, _ := probed.Query(q)
		baseTotal += len(b)
		probedTotal += len(p)
	}
	if probedTotal < baseTotal {
		t.Errorf("multi-probe found fewer candidates (%d) than plain (%d)", probedTotal, baseTotal)
	}
}

func TestStats(t *testing.T) {
	idx, _ := New(Params{Dim: 4, Seed: 1})
	st := idx.Stats()
	if st.Buckets != 0 || st.TotalRefs != 0 {
		t.Errorf("fresh index stats = %+v", st)
	}
	rng := rand.New(rand.NewSource(3))
	for i, v := range cluster(rng, make([]float64, 4), 50, 1) {
		_ = idx.Insert(ItemID(i), v)
	}
	st = idx.Stats()
	if st.TotalRefs != 50*idx.Params().L {
		t.Errorf("TotalRefs = %d, want %d", st.TotalRefs, 50*idx.Params().L)
	}
	if st.MaxLen < 1 || st.MeanLen <= 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCollisionProbMonotone(t *testing.T) {
	if p := CollisionProb(0, 0.85); p != 1 {
		t.Errorf("p(0) = %v, want 1", p)
	}
	prev := 1.0
	for _, c := range []float64{0.1, 0.5, 1, 2, 5, 10, 50} {
		p := CollisionProb(c, 0.85)
		if p < 0 || p > 1 {
			t.Fatalf("p(%v) = %v out of range", c, p)
		}
		if p > prev+1e-12 {
			t.Fatalf("collision probability not decreasing at c=%v: %v > %v", c, p, prev)
		}
		prev = p
	}
}

func TestSensitivityDefinition(t *testing.T) {
	// Definition 1 requires P1 > P2 for c > 1.
	p1, p2 := Sensitivity(1.0, 2.0, 0.85)
	if p1 <= p2 {
		t.Errorf("P1 = %v <= P2 = %v; family is not (R, cR, P1, P2)-sensitive", p1, p2)
	}
}

func TestAmplifiedProbs(t *testing.T) {
	// Amplification must widen the P1/P2 gap.
	p1, p2 := Sensitivity(1.0, 2.0, 0.85)
	a1 := AmplifiedProbs(p1, 10, 7)
	a2 := AmplifiedProbs(p2, 10, 7)
	if a1/a2 <= p1/p2 {
		t.Errorf("amplification did not widen gap: %v/%v vs %v/%v", a1, a2, p1, p2)
	}
	if AmplifiedProbs(1.5, 2, 2) != 1 {
		t.Error("p > 1 should clamp to 1")
	}
	if AmplifiedProbs(-0.5, 2, 2) != 0 {
		t.Error("p < 0 should clamp to 0")
	}
}

func TestEstimateR(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sample := cluster(rng, make([]float64, 6), 60, 1)
	r, err := EstimateR(sample, 0.5)
	if err != nil {
		t.Fatalf("EstimateR: %v", err)
	}
	if r <= 0 || math.IsInf(r, 0) {
		t.Errorf("R = %v not a usable radius", r)
	}
	// Higher quantile must not yield smaller R.
	r9, err := EstimateR(sample, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if r9 < r {
		t.Errorf("R(0.9) = %v < R(0.5) = %v", r9, r)
	}
}

func TestEstimateRErrors(t *testing.T) {
	if _, err := EstimateR(nil, 0.5); err == nil {
		t.Error("empty sample should fail")
	}
	if _, err := EstimateR([][]float64{{1}, {2}}, 0); err == nil {
		t.Error("quantile 0 should fail")
	}
	if _, err := EstimateR([][]float64{{1}, {2}}, 1.5); err == nil {
		t.Error("quantile > 1 should fail")
	}
	if _, err := EstimateR([][]float64{{1}, {1, 2}}, 0.5); err == nil {
		t.Error("incomparable samples should fail")
	}
}

func TestProximity(t *testing.T) {
	if chi := Proximity(2, 2); chi != 1 {
		t.Errorf("exact search χ = %v, want 1", chi)
	}
	if chi := Proximity(1, 3); chi != 3 {
		t.Errorf("χ = %v, want 3", chi)
	}
	if chi := Proximity(0, 0); chi != 1 {
		t.Errorf("degenerate χ = %v, want 1", chi)
	}
	if chi := Proximity(0, 1); !math.IsInf(chi, 1) {
		t.Errorf("χ with zero true distance = %v, want +Inf", chi)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	mk := func() []ItemID {
		idx, _ := New(Params{Dim: 4, Seed: 99})
		rng := rand.New(rand.NewSource(6))
		for i, v := range cluster(rng, make([]float64, 4), 30, 1) {
			_ = idx.Insert(ItemID(i), v)
		}
		got, _ := idx.Query([]float64{0.1, -0.2, 0.3, 0})
		return got
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic candidate count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic candidates at %d", i)
		}
	}
}
