package lsh

import (
	"fmt"
	"math"
	"sort"
)

// QueryMultiProbe answers a query with query-directed multi-probing
// (Lv et al., VLDB'07 — the paper's reference [28]): beyond the home
// bucket of each table, it probes the T additional buckets whose signatures
// differ by ±1 in the coordinates where the query's projection landed
// closest to a slot boundary. Those are exactly the buckets a near neighbor
// most likely fell into, so directed probing recovers far more false
// negatives per probe than blind ±1 probing of every coordinate.
//
// The returned candidates are deduplicated in first-seen order.
func (idx *Index) QueryMultiProbe(v []float64, probes int) ([]ItemID, error) {
	if len(v) != idx.params.Dim {
		return nil, fmt.Errorf("lsh: vector dimension %d, want %d", len(v), idx.params.Dim)
	}
	if probes < 0 {
		return nil, fmt.Errorf("lsh: probe count must be >= 0, got %d", probes)
	}
	seen := make(map[ItemID]struct{})
	var out []ItemID
	collect := func(tb *table, key uint64) {
		for _, id := range tb.buckets[key] {
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				out = append(out, id)
			}
		}
	}

	for _, tb := range idx.tables {
		sig, fracs := tb.signatureWithOffsets(v, idx.params.Omega)
		collect(tb, keyOf(sig))
		if probes == 0 {
			continue
		}
		// Rank single-coordinate perturbations by boundary distance: for
		// coordinate i, going down costs frac (distance to the lower edge),
		// going up costs 1-frac.
		type perturb struct {
			coord int
			delta int64
			cost  float64
		}
		cands := make([]perturb, 0, 2*len(sig))
		for i, f := range fracs {
			cands = append(cands,
				perturb{coord: i, delta: -1, cost: f},
				perturb{coord: i, delta: +1, cost: 1 - f},
			)
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].cost < cands[b].cost })
		limit := probes
		if limit > len(cands) {
			limit = len(cands)
		}
		for _, p := range cands[:limit] {
			orig := sig[p.coord]
			sig[p.coord] = orig + p.delta
			collect(tb, keyOf(sig))
			sig[p.coord] = orig
		}
	}
	return out, nil
}

// signatureWithOffsets computes the bucket signature plus, per coordinate,
// the fractional position of the projection inside its slot (0 = at the
// lower boundary, 1 = at the upper boundary).
func (tb *table) signatureWithOffsets(v []float64, omega float64) ([]int64, []float64) {
	sig := make([]int64, len(tb.funcs))
	fracs := make([]float64, len(tb.funcs))
	for i := range tb.funcs {
		fn := &tb.funcs[i]
		var dot float64
		for j, x := range v {
			dot += fn.a[j] * x
		}
		pos := (dot + fn.b) / omega
		slot := math.Floor(pos)
		sig[i] = int64(slot)
		fracs[i] = pos - slot
	}
	return sig, fracs
}
