// Package lsh implements the Semantic Aggregation (SA) module of FAST:
// p-stable locality-sensitive hashing (Datar et al., SoCG'04) over the
// Bloom-filter bit vectors produced by the Summarization module.
//
// Each hash function is h_{a,b}(v) = floor((a·v + b) / ω) with a drawn from
// a 2-stable (Gaussian) distribution and b uniform in [0, ω). A table keys
// items by the concatenation g(v) = (h_1(v), ..., h_M(v)), and L independent
// tables widen the gap between the collision probabilities P1 (near) and P2
// (far) from Definition 1 of the paper. The paper's parameters are L=7,
// M=10, ω=0.85.
//
// Because false negatives hurt query accuracy more than false positives
// (Section III-C2), Query can additionally probe the buckets adjacent to the
// query's bucket in each table — the multi-probe extension the paper adopts
// from Lv et al. (VLDB'07).
package lsh

import (
	"fmt"
	"math"
	"math/rand"
)

// ItemID identifies an indexed item (an image in the use case).
type ItemID uint64

// Params configures an LSH index.
type Params struct {
	Dim    int     // input vector dimensionality
	L      int     // number of hash tables; 0 means 7 (paper)
	M      int     // hash functions per table; 0 means 10 (paper)
	Omega  float64 // bucket width ω; 0 means 0.85 (paper)
	Seed   int64   // RNG seed for the hash family
	Probes int     // adjacent buckets probed per coordinate per table (multi-probe); 0 disables
}

func (p Params) withDefaults() Params {
	if p.L == 0 {
		p.L = 7
	}
	if p.M == 0 {
		p.M = 10
	}
	if p.Omega == 0 {
		p.Omega = 0.85
	}
	return p
}

// hashFunc is a single p-stable hash h_{a,b}.
type hashFunc struct {
	a []float64
	b float64
}

func (h *hashFunc) eval(v []float64, omega float64) int64 {
	var dot float64
	for i, x := range v {
		dot += h.a[i] * x
	}
	return int64(math.Floor((dot + h.b) / omega))
}

// table is one LSH hash table.
type table struct {
	funcs   []hashFunc
	buckets map[uint64][]ItemID
}

// Index is an L-table p-stable LSH index.
type Index struct {
	params Params
	tables []*table
	n      int
}

// New constructs an LSH index. It returns an error for invalid dimensions.
func New(params Params) (*Index, error) {
	params = params.withDefaults()
	if params.Dim <= 0 {
		return nil, fmt.Errorf("lsh: dimension must be positive, got %d", params.Dim)
	}
	if params.L < 1 || params.M < 1 || params.Omega <= 0 {
		return nil, fmt.Errorf("lsh: invalid params %+v", params)
	}
	rng := rand.New(rand.NewSource(params.Seed))
	idx := &Index{params: params}
	for t := 0; t < params.L; t++ {
		tb := &table{buckets: make(map[uint64][]ItemID)}
		for m := 0; m < params.M; m++ {
			a := make([]float64, params.Dim)
			for i := range a {
				a[i] = rng.NormFloat64() // 2-stable for the l2 norm
			}
			tb.funcs = append(tb.funcs, hashFunc{a: a, b: rng.Float64() * params.Omega})
		}
		idx.tables = append(idx.tables, tb)
	}
	return idx, nil
}

// Params returns the effective (defaulted) parameters.
func (idx *Index) Params() Params { return idx.params }

// Len returns the number of inserted items.
func (idx *Index) Len() int { return idx.n }

// signature computes the M-coordinate bucket signature of v in table t.
func (tb *table) signature(v []float64, omega float64) []int64 {
	sig := make([]int64, len(tb.funcs))
	for i := range tb.funcs {
		sig[i] = tb.funcs[i].eval(v, omega)
	}
	return sig
}

// keyOf hashes a signature into a 64-bit bucket key (FNV-1a over the
// coordinates).
func keyOf(sig []int64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, s := range sig {
		u := uint64(s)
		for shift := 0; shift < 64; shift += 8 {
			h ^= (u >> shift) & 0xff
			h *= prime
		}
	}
	return h
}

// Insert adds item id with vector v to all L tables. It returns an error on
// dimension mismatch.
func (idx *Index) Insert(id ItemID, v []float64) error {
	if len(v) != idx.params.Dim {
		return fmt.Errorf("lsh: vector dimension %d, want %d", len(v), idx.params.Dim)
	}
	for _, tb := range idx.tables {
		k := keyOf(tb.signature(v, idx.params.Omega))
		tb.buckets[k] = append(tb.buckets[k], id)
	}
	idx.n++
	return nil
}

// Query returns the distinct candidate IDs that share a bucket with v in any
// table. When Params.Probes > 0 it additionally probes the buckets whose
// signature differs by ±1 in single coordinates (the "adjacent buckets" the
// paper groups to cut false negatives), up to Probes coordinates per table.
func (idx *Index) Query(v []float64) ([]ItemID, error) {
	if len(v) != idx.params.Dim {
		return nil, fmt.Errorf("lsh: vector dimension %d, want %d", len(v), idx.params.Dim)
	}
	seen := make(map[ItemID]struct{})
	var out []ItemID
	collect := func(tb *table, key uint64) {
		for _, id := range tb.buckets[key] {
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				out = append(out, id)
			}
		}
	}
	for _, tb := range idx.tables {
		sig := tb.signature(v, idx.params.Omega)
		collect(tb, keyOf(sig))
		probes := idx.params.Probes
		if probes > len(sig) {
			probes = len(sig)
		}
		for c := 0; c < probes; c++ {
			orig := sig[c]
			sig[c] = orig + 1
			collect(tb, keyOf(sig))
			sig[c] = orig - 1
			collect(tb, keyOf(sig))
			sig[c] = orig
		}
	}
	return out, nil
}

// BucketStats summarizes bucket occupancy for load-balance analysis (the
// paper's motivation for moving from vertical addressing to flat cuckoo
// storage is exactly the variable bucket lengths reported here).
type BucketStats struct {
	Buckets   int
	MaxLen    int
	MeanLen   float64
	TotalRefs int
}

// Stats aggregates occupancy over all tables.
func (idx *Index) Stats() BucketStats {
	var st BucketStats
	for _, tb := range idx.tables {
		for _, b := range tb.buckets {
			st.Buckets++
			st.TotalRefs += len(b)
			if len(b) > st.MaxLen {
				st.MaxLen = len(b)
			}
		}
	}
	if st.Buckets > 0 {
		st.MeanLen = float64(st.TotalRefs) / float64(st.Buckets)
	}
	return st
}

// CollisionProb returns the theoretical single-function collision
// probability p(c) for two points at l2 distance c under a 2-stable hash
// with width omega (Datar et al., eq. for the Gaussian case):
//
//	p(c) = 1 - 2Φ(-ω/c) - (2c / (√(2π) ω)) (1 - e^{-ω²/(2c²)})
//
// For c = 0 it returns 1. It is monotonically decreasing in c, which is the
// (R, cR, P1, P2)-sensitivity property of Definition 1.
func CollisionProb(c, omega float64) float64 {
	if c <= 0 {
		return 1
	}
	r := omega / c
	phi := 0.5 * (1 + math.Erf(-r/math.Sqrt2)) // Φ(-ω/c)
	return 1 - 2*phi - (2/(math.Sqrt(2*math.Pi)*r))*(1-math.Exp(-r*r/2))
}
