package lsh

import (
	"fmt"

	"github.com/fastrepro/fast/internal/shard"
)

// View is an immutable, lock-free snapshot of a MinHash index: the same
// band/bucket geometry, frozen. A View is safe for concurrent use by any
// number of goroutines without synchronization — nothing in it is ever
// written after Freeze returns — which is what lets the engine's
// epoch-published read path answer queries without taking any lock.
//
// Sharing discipline: a View's bucket maps are copies of the live shard
// maps, but the []ItemID bucket slices are shared with the live index.
// That is safe because the mutable MinHash only ever *appends* to a bucket
// (writes at indexes beyond every frozen slice's length) or replaces it
// wholesale on delete (Delete is copy-on-write; see delete.go). No frozen
// slice element is ever overwritten in place.
type View struct {
	params MinHashParams
	seeds  [][]uint64
	bands  [][]map[uint64][]ItemID // [band][shard] -> frozen bucket map
	n      int
}

// freezeShard copies one live shard's bucket map (bucket slices shared; see
// the sharing discipline above). Callers hold the engine-level write lock,
// but the shard lock is still taken so Freeze composes with any concurrent
// locked reader (Stats).
func (mh *MinHash) freezeShard(b, s int) map[uint64][]ItemID {
	sh := &mh.bands[b].shards[s]
	sh.mu.RLock()
	m := make(map[uint64][]ItemID, len(sh.m))
	for k, bucket := range sh.m {
		m[k] = bucket
	}
	sh.mu.RUnlock()
	return m
}

// Freeze snapshots the whole index into a fresh View.
func (mh *MinHash) Freeze() *View {
	v := &View{
		params: mh.params,
		seeds:  mh.seeds,
		bands:  make([][]map[uint64][]ItemID, len(mh.bands)),
		n:      mh.Len(),
	}
	for b := range mh.bands {
		shards := make([]map[uint64][]ItemID, len(mh.bands[b].shards))
		for s := range shards {
			shards[s] = mh.freezeShard(b, s)
		}
		v.bands[b] = shards
	}
	return v
}

// Refreeze produces the next View after the given element sets were
// inserted or deleted, re-copying only the band shards those sets hash to
// and sharing every untouched shard map with prev. A prev frozen from a
// different index (or nil) degrades to a full Freeze.
func (mh *MinHash) Refreeze(prev *View, sets ...[]uint32) *View {
	if prev == nil || len(prev.bands) != len(mh.bands) ||
		len(prev.bands) == 0 || len(prev.bands[0]) != len(mh.bands[0].shards) {
		return mh.Freeze()
	}
	v := &View{
		params: mh.params,
		seeds:  mh.seeds,
		bands:  make([][]map[uint64][]ItemID, len(mh.bands)),
		n:      mh.Len(),
	}
	for b := range mh.bands {
		nShards := len(mh.bands[b].shards)
		shards := prev.bands[b]
		var copied []map[uint64][]ItemID
		for _, set := range sets {
			if len(set) == 0 {
				continue
			}
			s := shard.Index(mh.signature(b, set), nShards)
			if copied == nil {
				copied = append([]map[uint64][]ItemID(nil), shards...)
			}
			copied[s] = mh.freezeShard(b, s)
		}
		if copied != nil {
			v.bands[b] = copied
		} else {
			v.bands[b] = shards
		}
	}
	return v
}

// Len returns the number of items in the index at freeze time.
func (v *View) Len() int { return v.n }

// signature computes the band key exactly as the live index does.
func (v *View) signature(band int, set []uint32) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	key := uint64(fnvOffset)
	for _, seed := range v.seeds[band] {
		minV := ^uint64(0)
		for _, el := range set {
			h := splitmix(uint64(el) ^ seed)
			if h < minV {
				minV = h
			}
		}
		for shift := 0; shift < 64; shift += 8 {
			key ^= (minV >> shift) & 0xff
			key *= fnvPrime
		}
	}
	return key
}

// Query returns the distinct candidates colliding with the set in any band,
// in first-seen order — the same traversal the live MinHash.Query performs,
// without any lock.
func (v *View) Query(set []uint32) ([]ItemID, error) {
	return v.AppendQuery(nil, nil, set)
}

// AppendQuery is Query with caller-owned scratch: candidates are appended
// to dst and deduplicated through seen (cleared by the callee when non-nil,
// allocated otherwise). Pooling both across queries keeps the hot read path
// allocation-free.
func (v *View) AppendQuery(dst []ItemID, seen map[ItemID]struct{}, set []uint32) ([]ItemID, error) {
	if len(set) == 0 {
		return dst, fmt.Errorf("lsh: cannot minhash an empty set")
	}
	if seen == nil {
		seen = make(map[ItemID]struct{})
	} else {
		clear(seen)
	}
	for b := range v.bands {
		k := v.signature(b, set)
		shards := v.bands[b]
		bucket := shards[shard.Index(k, len(shards))][k]
		for _, id := range bucket {
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				dst = append(dst, id)
			}
		}
	}
	return dst, nil
}
