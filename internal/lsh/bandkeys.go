package lsh

import "fmt"

// Band-key export for the disk-resident cold tier.
//
// The cold tier stores postings lists keyed by exactly the per-band bucket
// keys the in-RAM MinHash index uses, so a probe's multi-probe order — and
// therefore its candidate set — is identical whether an entry is resident
// in RAM or on disk. These helpers expose the band keys without exposing
// the bucket maps; both the live index and its frozen View compute them
// with the same seed matrix, so keys written at migration time match keys
// probed at query time for the life of the index (the seed matrix is a
// pure function of MinHashParams; see SeedFingerprint).

// AppendBandKeys appends the bucket key of set for every band, in band
// order, and returns the extended slice. Empty sets have no min-hash and
// are rejected, mirroring Insert/Query.
func (mh *MinHash) AppendBandKeys(dst []uint64, set []uint32) ([]uint64, error) {
	if len(set) == 0 {
		return dst, fmt.Errorf("lsh: cannot minhash an empty set")
	}
	for b := range mh.bands {
		dst = append(dst, mh.signature(b, set))
	}
	return dst, nil
}

// AppendBandKeys is the frozen-View form; it computes exactly the keys the
// live index computes.
func (v *View) AppendBandKeys(dst []uint64, set []uint32) ([]uint64, error) {
	if len(set) == 0 {
		return dst, fmt.Errorf("lsh: cannot minhash an empty set")
	}
	for b := range v.bands {
		dst = append(dst, v.signature(b, set))
	}
	return dst, nil
}

// SeedFingerprint condenses the parameters that determine the band seed
// matrix — and therefore every band key this index will ever compute —
// into one value. A cold-tier catalog records it so a segment written
// under one hash family can never be probed under another.
func (mh *MinHash) SeedFingerprint() uint64 { return SeedFingerprintFor(mh.params) }

// SeedFingerprintFor is SeedFingerprint computed from parameters alone
// (defaults applied), so the fingerprint is available before an index is
// built. The seed matrix in NewMinHash is a pure function of the resolved
// (Seed, Bands, Rows) triple, so fingerprinting the triple fingerprints
// the matrix.
func SeedFingerprintFor(params MinHashParams) uint64 {
	params = params.withDefaults()
	fp := splitmix(uint64(params.Seed) ^ 0xfa57c01dfa57c01d)
	fp = splitmix(fp ^ uint64(params.Bands))
	fp = splitmix(fp ^ uint64(params.Rows))
	return fp
}
