package lsh

import (
	"math/rand"
	"sync"
	"testing"
)

// TestMinHashShardedConcurrent runs mixed Insert/Query/Delete/Stats traffic
// against one MinHash index; run under -race to validate the per-shard
// locking discipline.
func TestMinHashShardedConcurrent(t *testing.T) {
	mh, err := NewMinHash(MinHashParams{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if mh.Shards() < 1 {
		t.Fatalf("Shards = %d", mh.Shards())
	}
	mkSet := func(rng *rand.Rand) []uint32 {
		set := make([]uint32, 48)
		for i := range set {
			set[i] = uint32(rng.Intn(4096))
		}
		return set
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				set := mkSet(rng)
				id := ItemID(w*1000 + i)
				switch w % 3 {
				case 0:
					if err := mh.Insert(id, set); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := mh.Query(set); err != nil {
						t.Error(err)
						return
					}
					_ = mh.Stats()
					_ = mh.Len()
				case 2:
					if err := mh.Insert(id, set); err != nil {
						t.Error(err)
						return
					}
					if _, err := mh.Delete(id, set); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// Workers 0 and 3 each inserted 200 and deleted nothing; workers 2 and
	// 5 inserted and deleted in pairs.
	if got := mh.Len(); got != 400 {
		t.Errorf("Len = %d after concurrent churn, want 400", got)
	}
}

// TestMinHashQueryDeterministicOrder re-checks first-seen candidate order
// under the sharded layout: the query result must not depend on shard
// topology, only on band order.
func TestMinHashQueryDeterministicOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	build := func() *MinHash {
		mh, err := NewMinHash(MinHashParams{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return mh
	}
	a, b := build(), build()
	sets := make([][]uint32, 300)
	for i := range sets {
		set := make([]uint32, 64)
		for j := range set {
			set[j] = uint32(rng.Intn(2048))
		}
		sets[i] = set
		if err := a.Insert(ItemID(i), set); err != nil {
			t.Fatal(err)
		}
		if err := b.Insert(ItemID(i), set); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		ra, err := a.Query(sets[i])
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Query(sets[i])
		if err != nil {
			t.Fatal(err)
		}
		if len(ra) != len(rb) {
			t.Fatalf("query %d: %d vs %d candidates", i, len(ra), len(rb))
		}
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("query %d: order diverges at %d (%d vs %d)", i, j, ra[j], rb[j])
			}
		}
	}
}
