package lsh

import "fmt"

// Delete removes item id from the index. The caller must supply the same
// vector the item was inserted with (LSH tables are content-addressed; the
// index stores no reverse mapping to keep its memory footprint at one
// reference per table). It reports whether the item was found in at least
// one table.
func (idx *Index) Delete(id ItemID, v []float64) (bool, error) {
	if len(v) != idx.params.Dim {
		return false, fmt.Errorf("lsh: vector dimension %d, want %d", len(v), idx.params.Dim)
	}
	removed := false
	for _, tb := range idx.tables {
		k := keyOf(tb.signature(v, idx.params.Omega))
		bucket := tb.buckets[k]
		for i, got := range bucket {
			if got == id {
				bucket[i] = bucket[len(bucket)-1]
				bucket = bucket[:len(bucket)-1]
				removed = true
				break
			}
		}
		if len(bucket) == 0 {
			delete(tb.buckets, k)
		} else {
			tb.buckets[k] = bucket
		}
	}
	if removed {
		idx.n--
	}
	return removed, nil
}

// Delete removes item id from the MinHash index; set must be the element
// set it was inserted with. It reports whether the item was found in at
// least one band. Like Insert and Query it locks only the shard the band
// key lands on, so deletions run concurrently with queries.
//
// The surviving bucket is rebuilt copy-on-write rather than compacted in
// place: frozen Views (see view.go) share bucket slices with the live
// index, and an in-place swap-and-truncate would mutate elements a
// lock-free reader may be scanning. Appends stay in place (they only write
// past every frozen length); deletes allocate.
func (mh *MinHash) Delete(id ItemID, set []uint32) (bool, error) {
	if len(set) == 0 {
		return false, fmt.Errorf("lsh: cannot minhash an empty set (item %d)", id)
	}
	removed := false
	for b := range mh.bands {
		k := mh.signature(b, set)
		sh := mh.shardOf(b, k)
		sh.mu.Lock()
		bucket := sh.m[k]
		for i, got := range bucket {
			if got == id {
				next := make([]ItemID, 0, len(bucket)-1)
				next = append(next, bucket[:i]...)
				next = append(next, bucket[i+1:]...)
				bucket = next
				removed = true
				break
			}
		}
		if len(bucket) == 0 {
			delete(sh.m, k)
		} else {
			sh.m[k] = bucket
		}
		sh.mu.Unlock()
	}
	if removed {
		mh.n.Add(-1)
	}
	return removed, nil
}
