package lsh

import (
	"math/rand"
	"testing"
)

// TestMultiProbeSupersetProperty checks, across randomized index shapes,
// corpora, and queries, the defining metamorphic property of multi-probe
// LSH: probing perturbed buckets can only ADD candidates to the exact
// bucket's, never drop any. It also checks monotonicity — more probes
// never shrink the candidate set.
func TestMultiProbeSupersetProperty(t *testing.T) {
	shapes := []Params{
		{Dim: 4, Omega: 1.5, Seed: 5},
		{Dim: 8, L: 3, M: 4, Omega: 0.6, Seed: 21},
		{Dim: 16, L: 5, M: 6, Omega: 1.0, Seed: 101},
		{Dim: 32, L: 2, M: 12, Omega: 0.85, Seed: 9},
		{Dim: 3, L: 7, M: 2, Omega: 2.0, Seed: 64},
	}
	for _, params := range shapes {
		idx, err := New(params)
		if err != nil {
			t.Fatalf("%+v: %v", params, err)
		}
		rng := rand.New(rand.NewSource(params.Seed + 1000))
		vec := func() []float64 {
			v := make([]float64, params.Dim)
			for i := range v {
				v[i] = rng.NormFloat64()
			}
			return v
		}
		for i := 0; i < 200; i++ {
			if err := idx.Insert(ItemID(i+1), vec()); err != nil {
				t.Fatal(err)
			}
		}
		for q := 0; q < 25; q++ {
			query := vec()
			exact, err := idx.Query(query)
			if err != nil {
				t.Fatal(err)
			}
			prev := map[ItemID]bool{}
			for _, id := range exact {
				prev[id] = true
			}
			for _, probes := range []int{1, 2, 4, 8} {
				got, err := idx.QueryMultiProbe(query, probes)
				if err != nil {
					t.Fatal(err)
				}
				cur := map[ItemID]bool{}
				for _, id := range got {
					cur[id] = true
				}
				for id := range prev {
					if !cur[id] {
						t.Fatalf("%+v query %d: probes=%d dropped candidate %d present at lower probe depth",
							params, q, probes, id)
					}
				}
				prev = cur
			}
		}
	}
}
