package bloom

import (
	"fmt"
	"math"
)

// Counting is a counting Bloom filter: each position holds a small counter
// instead of a bit, so items can be removed. The engine's deletion path and
// the smartphone detector's summary eviction use it where a plain filter
// would accumulate stale bits. Counters are 8-bit and saturate at 255
// (saturated counters are never decremented, preserving the no-false-
// negative guarantee at the cost of permanently set positions — the
// standard trade-off).
type Counting struct {
	m        uint32
	k        int
	counters []uint8
	n        int
}

// NewCounting returns a counting filter with m counters and k hash
// functions.
func NewCounting(m uint32, k int) (*Counting, error) {
	if m == 0 || k <= 0 {
		return nil, fmt.Errorf("bloom: invalid parameters m=%d k=%d", m, k)
	}
	return &Counting{m: m, k: k, counters: make([]uint8, m)}, nil
}

// M returns the number of counters.
func (f *Counting) M() uint32 { return f.m }

// K returns the number of hash functions.
func (f *Counting) K() int { return f.k }

// Count returns the number of items currently stored (adds minus removes).
func (f *Counting) Count() int { return f.n }

func (f *Counting) positions(item uint64) []uint32 {
	h1, h2 := hash2(item)
	pos := make([]uint32, f.k)
	for i := 0; i < f.k; i++ {
		pos[i] = (h1 + uint32(i)*h2) % f.m
	}
	return pos
}

// Add inserts item.
func (f *Counting) Add(item uint64) {
	for _, p := range f.positions(item) {
		if f.counters[p] < math.MaxUint8 {
			f.counters[p]++
		}
	}
	f.n++
}

// Contains reports whether item may be stored.
func (f *Counting) Contains(item uint64) bool {
	for _, p := range f.positions(item) {
		if f.counters[p] == 0 {
			return false
		}
	}
	return true
}

// Remove deletes one occurrence of item. It reports false (and changes
// nothing) if the item is definitely not present. Removing an item that was
// never added but passes the membership test corrupts other items' counts —
// the inherent counting-filter caveat — so callers should only remove items
// they know they added.
func (f *Counting) Remove(item uint64) bool {
	pos := f.positions(item)
	for _, p := range pos {
		if f.counters[p] == 0 {
			return false
		}
	}
	for _, p := range pos {
		if f.counters[p] < math.MaxUint8 { // saturated counters stay pinned
			f.counters[p]--
		}
	}
	f.n--
	return true
}

// ToFilter snapshots the counting filter as a plain bit filter (counter>0 →
// bit set), the form the summarization pipeline ships to LSH.
func (f *Counting) ToFilter() *Filter {
	out, err := New(f.m, f.k)
	if err != nil {
		panic(err) // impossible: geometry already validated
	}
	for i, c := range f.counters {
		if c > 0 {
			out.bits[i/64] |= 1 << (uint32(i) % 64)
		}
	}
	out.n = f.n
	return out
}

// MaxCounter returns the largest counter value (diagnostics: values near
// 255 warn of saturation).
func (f *Counting) MaxCounter() uint8 {
	var max uint8
	for _, c := range f.counters {
		if c > max {
			max = c
		}
	}
	return max
}
