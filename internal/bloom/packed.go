package bloom

import "math/bits"

// Word-parallel summary scoring.
//
// The sparse representation (sorted set-bit positions) is what the index
// stores and ships — tens of bytes per photo. But scoring a candidate
// against a probe is a set-intersection problem, and the merge loop of
// JaccardSparse walks both position lists one element at a time. Packing the
// positions back into the filter's natural []uint64 words turns the same
// computation into a fused AND+popcount / OR+popcount pass: 64 bits per
// instruction, no branches, no intermediate allocation — the bitmap-index
// representation argued for by the bitmap-oriented survey line of work.
//
// AndOrCount computes exactly the |A∩B| and |A∪B| cardinalities that
// JaccardSparse computes from the position lists, so a Jaccard score built
// from packed words is bit-for-bit identical (same integer counts, same one
// float64 division) to the sparse merge.

// PackedWords returns the number of 64-bit words a filter of m bits packs
// into.
func PackedWords(m uint32) int { return int(m+63) / 64 }

// AppendPacked packs sorted set-bit positions into dense filter words,
// appending to dst (which is grown and zeroed as needed) and returning the
// packed slice of exactly PackedWords(m) words. Positions ≥ m are ignored;
// the engine validates geometry before any summary is stored, so none occur
// on the query path.
func AppendPacked(dst []uint64, m uint32, setBits []uint32) []uint64 {
	n := PackedWords(m)
	if cap(dst) < n {
		dst = make([]uint64, n)
	} else {
		dst = dst[:n]
		clear(dst)
	}
	for _, b := range setBits {
		if b >= m {
			continue
		}
		dst[b/64] |= 1 << (b % 64)
	}
	return dst
}

// Packed returns a freshly allocated packed-word form of the sparse summary.
func (s *Sparse) Packed() []uint64 { return AppendPacked(nil, s.M, s.Bits) }

// AppendBits appends the set-bit positions of the packed words to dst in
// ascending order and returns the extended slice — the inverse of
// AppendPacked. The cold tier stores only the packed form on disk; group
// expansion reconstructs a stored entry's sparse position list from it, and
// because packing is order-preserving the reconstruction is exactly the
// sorted Bits slice the summary was stored with.
func AppendBits(dst []uint32, words []uint64) []uint32 {
	for wi, w := range words {
		base := uint32(wi * 64)
		for w != 0 {
			dst = append(dst, base+uint32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// AndOrCount returns popcount(a&b) and popcount(a|b) over two equal-length
// word slices — the intersection and union cardinalities of the underlying
// bit sets, computed 64 bits at a time. Callers guarantee len(a) == len(b)
// (both sides packed from the same filter geometry); mismatched lengths are
// truncated to the shorter side.
func AndOrCount(a, b []uint64) (inter, union int) {
	if len(b) < len(a) {
		a = a[:len(b)]
	} else {
		b = b[:len(a)]
	}
	for i, w := range a {
		inter += bits.OnesCount64(w & b[i])
		union += bits.OnesCount64(w | b[i])
	}
	return inter, union
}

// JaccardPacked computes |A∩B|/|A∪B| over packed words: the word-parallel
// form of JaccardSparse. Two empty sets score 1, matching JaccardSparse.
func JaccardPacked(a, b []uint64) float64 {
	inter, union := AndOrCount(a, b)
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}
