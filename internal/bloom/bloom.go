// Package bloom implements the Summarization (SM) module of FAST: per-image
// Bloom filters that hash a set of feature vectors into a fixed-size bit
// array. Two similar images share many identical (quantized) features, so
// their Bloom filters share many identical bits; the Hamming distance
// between filters is therefore a cheap proxy for image similarity, and the
// bit vectors are the inputs to the LSH Semantic Aggregation module.
//
// The package provides both a dense Filter and the paper's sparse
// "only store the non-zero bits" representation (Section III-C1 reports a
// 200KB -> 40B per-image reduction using that trick).
package bloom

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// Filter is a Bloom filter over uint64-encoded items with k independent
// hash functions derived by double hashing (Kirsch-Mitzenmacher).
type Filter struct {
	m    uint32 // number of bits
	k    int    // number of hash functions
	bits []uint64
	n    int // items added
}

// New returns a Bloom filter with m bits and k hash functions.
// It returns an error for non-positive parameters.
func New(m uint32, k int) (*Filter, error) {
	if m == 0 || k <= 0 {
		return nil, fmt.Errorf("bloom: invalid parameters m=%d k=%d", m, k)
	}
	return &Filter{m: m, k: k, bits: make([]uint64, (m+63)/64)}, nil
}

// NewForCapacity sizes a filter for n items at the target false-positive
// rate p using the standard m = -n ln p / (ln 2)^2 and k = (m/n) ln 2
// formulas.
func NewForCapacity(n int, p float64) (*Filter, error) {
	if n <= 0 || p <= 0 || p >= 1 {
		return nil, fmt.Errorf("bloom: invalid capacity n=%d p=%v", n, p)
	}
	m := uint32(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return New(m, k)
}

// M returns the number of bits in the filter.
func (f *Filter) M() uint32 { return f.m }

// K returns the number of hash functions.
func (f *Filter) K() int { return f.k }

// Count returns the number of items added.
func (f *Filter) Count() int { return f.n }

// hash2 derives two independent 32-bit hashes of item via a 64-bit
// mix (SplitMix64 finalizer).
func hash2(item uint64) (uint32, uint32) {
	x := item
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return uint32(x), uint32(x >> 32)
}

// bitFor returns the bit position of hash function i for item.
func (f *Filter) bitFor(item uint64, i int) uint32 {
	h1, h2 := hash2(item)
	return (h1 + uint32(i)*h2) % f.m
}

// Add inserts item into the filter.
func (f *Filter) Add(item uint64) {
	for i := 0; i < f.k; i++ {
		b := f.bitFor(item, i)
		f.bits[b/64] |= 1 << (b % 64)
	}
	f.n++
}

// AddBytes hashes an arbitrary byte string into the filter.
func (f *Filter) AddBytes(p []byte) { f.Add(fnv64(p)) }

// Clone returns an independent deep copy of the filter, including its item
// count. Callers that hand one summary to multiple owners (the engine's
// probe-summary cache) clone so no owner can mutate another's view.
func (f *Filter) Clone() *Filter {
	c := &Filter{m: f.m, k: f.k, n: f.n, bits: make([]uint64, len(f.bits))}
	copy(c.bits, f.bits)
	return c
}

// Contains reports whether item may be in the filter (no false negatives;
// false positives at the configured rate).
func (f *Filter) Contains(item uint64) bool {
	for i := 0; i < f.k; i++ {
		b := f.bitFor(item, i)
		if f.bits[b/64]&(1<<(b%64)) == 0 {
			return false
		}
	}
	return true
}

// ContainsBytes reports whether the byte string may be in the filter.
func (f *Filter) ContainsBytes(p []byte) bool { return f.Contains(fnv64(p)) }

// PopCount returns the number of set bits.
func (f *Filter) PopCount() int {
	var c int
	for _, w := range f.bits {
		c += bits.OnesCount64(w)
	}
	return c
}

// FillRatio returns the fraction of set bits.
func (f *Filter) FillRatio() float64 { return float64(f.PopCount()) / float64(f.m) }

// EstimatedFPRate returns the expected false-positive probability given the
// current fill: (fill)^k.
func (f *Filter) EstimatedFPRate() float64 { return math.Pow(f.FillRatio(), float64(f.k)) }

// HammingDistance returns the number of differing bits between two filters
// of identical geometry. It returns an error on geometry mismatch.
func HammingDistance(a, b *Filter) (int, error) {
	if a.m != b.m || a.k != b.k {
		return 0, fmt.Errorf("bloom: geometry mismatch (m=%d,k=%d) vs (m=%d,k=%d)", a.m, a.k, b.m, b.k)
	}
	var d int
	for i := range a.bits {
		d += bits.OnesCount64(a.bits[i] ^ b.bits[i])
	}
	return d, nil
}

// Jaccard returns |A∩B| / |A∪B| over set bits; 1 for two empty filters.
func Jaccard(a, b *Filter) (float64, error) {
	if a.m != b.m {
		return 0, fmt.Errorf("bloom: geometry mismatch m=%d vs m=%d", a.m, b.m)
	}
	var inter, union int
	for i := range a.bits {
		inter += bits.OnesCount64(a.bits[i] & b.bits[i])
		union += bits.OnesCount64(a.bits[i] | b.bits[i])
	}
	if union == 0 {
		return 1, nil
	}
	return float64(inter) / float64(union), nil
}

// Union ORs other into f in place. It returns an error on geometry mismatch.
func (f *Filter) Union(other *Filter) error {
	if f.m != other.m || f.k != other.k {
		return fmt.Errorf("bloom: geometry mismatch")
	}
	for i := range f.bits {
		f.bits[i] |= other.bits[i]
	}
	f.n += other.n
	return nil
}

// BitVector returns the filter's bits as a float64 vector (one component per
// bit, 0 or 1) — the multi-dimensional point representation fed to LSH.
func (f *Filter) BitVector() []float64 {
	v := make([]float64, f.m)
	for i := uint32(0); i < f.m; i++ {
		if f.bits[i/64]&(1<<(i%64)) != 0 {
			v[i] = 1
		}
	}
	return v
}

// SetBits returns the sorted positions of all set bits — the sparse
// representation the paper stores (only non-zero bits are maintained).
func (f *Filter) SetBits() []uint32 {
	out := make([]uint32, 0, f.PopCount())
	for wi, w := range f.bits {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, uint32(wi*64+b))
			w &= w - 1
		}
	}
	return out
}

// DenseSizeBytes returns the in-memory size of the dense bit array.
func (f *Filter) DenseSizeBytes() int { return len(f.bits) * 8 }

// fnv64 is the FNV-1a 64-bit hash.
func fnv64(p []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range p {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// HashVector quantizes a float vector into a uint64 feature token by
// bucketing each component at the given granularity and FNV-hashing the
// result. Similar vectors quantize to identical tokens, which is what makes
// Bloom summaries of similar images overlap.
func HashVector(v []float64, granularity float64) uint64 {
	if granularity <= 0 {
		granularity = 0.25
	}
	buf := make([]byte, 0, len(v)*2)
	var scratch [2]byte
	for _, x := range v {
		q := int16(math.Round(x / granularity))
		binary.LittleEndian.PutUint16(scratch[:], uint16(q))
		buf = append(buf, scratch[:]...)
	}
	return fnv64(buf)
}
