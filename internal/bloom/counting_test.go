package bloom

import (
	"testing"
	"testing/quick"
)

func TestNewCountingValidation(t *testing.T) {
	if _, err := NewCounting(0, 4); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := NewCounting(64, 0); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestCountingAddRemove(t *testing.T) {
	f, _ := NewCounting(1024, 4)
	f.Add(7)
	f.Add(9)
	if !f.Contains(7) || !f.Contains(9) {
		t.Fatal("added items missing")
	}
	if f.Count() != 2 {
		t.Errorf("Count = %d", f.Count())
	}
	if !f.Remove(7) {
		t.Fatal("Remove(7) = false")
	}
	if f.Contains(7) {
		t.Error("removed item still present")
	}
	if !f.Contains(9) {
		t.Error("unrelated item damaged by removal")
	}
	if f.Count() != 1 {
		t.Errorf("Count after remove = %d", f.Count())
	}
}

func TestCountingRemoveAbsent(t *testing.T) {
	f, _ := NewCounting(1<<16, 6)
	f.Add(1)
	if f.Remove(99999) {
		t.Error("removing an absent item reported success")
	}
	if !f.Contains(1) {
		t.Error("failed removal disturbed stored item")
	}
}

func TestCountingMultiplicity(t *testing.T) {
	f, _ := NewCounting(1024, 4)
	f.Add(5)
	f.Add(5)
	if !f.Remove(5) || !f.Contains(5) {
		t.Error("first removal should leave one occurrence")
	}
	if !f.Remove(5) || f.Contains(5) {
		t.Error("second removal should clear the item")
	}
}

func TestCountingToFilter(t *testing.T) {
	cf, _ := NewCounting(512, 5)
	for i := uint64(1); i <= 20; i++ {
		cf.Add(i)
	}
	plain := cf.ToFilter()
	for i := uint64(1); i <= 20; i++ {
		if !plain.Contains(i) {
			t.Fatalf("snapshot lost item %d", i)
		}
	}
	if plain.Count() != cf.Count() {
		t.Errorf("snapshot count %d != %d", plain.Count(), cf.Count())
	}
	cf.Remove(3)
	snap2 := cf.ToFilter()
	if snap2.Contains(3) && !differsSomewhere(plain, snap2) {
		t.Error("snapshot did not reflect removal")
	}
}

func differsSomewhere(a, b *Filter) bool {
	d, err := HammingDistance(a, b)
	return err == nil && d > 0
}

func TestCountingMaxCounter(t *testing.T) {
	f, _ := NewCounting(16, 2) // tiny filter: collisions guaranteed
	for i := uint64(0); i < 100; i++ {
		f.Add(i)
	}
	if f.MaxCounter() == 0 {
		t.Error("no counter incremented")
	}
}

// Property: add-then-remove returns the filter to "item absent" as long as
// the item itself was added exactly once and no saturation occurred.
func TestCountingAddRemoveProperty(t *testing.T) {
	f := func(items []uint64) bool {
		cf, err := NewCounting(1<<14, 4)
		if err != nil {
			return false
		}
		seen := make(map[uint64]bool)
		for _, it := range items {
			if !seen[it] {
				seen[it] = true
				cf.Add(it)
			}
		}
		for it := range seen {
			if !cf.Contains(it) {
				return false // no false negatives
			}
		}
		for it := range seen {
			if !cf.Remove(it) {
				return false
			}
		}
		return cf.Count() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
