package bloom

import (
	"fmt"
	"sort"
)

// Sparse is the space-efficient summary representation the paper stores:
// only the positions of set bits, sorted ascending. For a typical per-image
// summary this is tens of bytes instead of the dense array (the paper's
// 200KB -> 40B example).
type Sparse struct {
	M    uint32   // geometry of the originating filter
	K    int      //
	Bits []uint32 // sorted set-bit positions
}

// ToSparse converts a dense filter to its sparse form.
func ToSparse(f *Filter) *Sparse {
	return &Sparse{M: f.m, K: f.k, Bits: f.SetBits()}
}

// ToDense reconstructs a dense filter from the sparse form.
func (s *Sparse) ToDense() (*Filter, error) {
	f, err := New(s.M, s.K)
	if err != nil {
		return nil, err
	}
	for _, b := range s.Bits {
		if b >= s.M {
			return nil, fmt.Errorf("bloom: sparse bit %d out of range (m=%d)", b, s.M)
		}
		f.bits[b/64] |= 1 << (b % 64)
	}
	return f, nil
}

// SizeBytes returns the serialized size of the sparse summary
// (4 bytes per set bit plus an 8-byte header).
func (s *Sparse) SizeBytes() int { return 8 + 4*len(s.Bits) }

// Contains reports whether bit b is set.
func (s *Sparse) Contains(b uint32) bool {
	i := sort.Search(len(s.Bits), func(i int) bool { return s.Bits[i] >= b })
	return i < len(s.Bits) && s.Bits[i] == b
}

// HammingDistanceSparse computes the Hamming distance between two sparse
// summaries by merging their sorted bit lists, without densifying.
func HammingDistanceSparse(a, b *Sparse) (int, error) {
	if a.M != b.M {
		return 0, fmt.Errorf("bloom: geometry mismatch m=%d vs m=%d", a.M, b.M)
	}
	i, j, d := 0, 0, 0
	for i < len(a.Bits) && j < len(b.Bits) {
		switch {
		case a.Bits[i] == b.Bits[j]:
			i++
			j++
		case a.Bits[i] < b.Bits[j]:
			d++
			i++
		default:
			d++
			j++
		}
	}
	d += len(a.Bits) - i
	d += len(b.Bits) - j
	return d, nil
}

// JaccardSparse computes |A∩B|/|A∪B| over the sparse bit lists.
func JaccardSparse(a, b *Sparse) (float64, error) {
	if a.M != b.M {
		return 0, fmt.Errorf("bloom: geometry mismatch m=%d vs m=%d", a.M, b.M)
	}
	i, j, inter := 0, 0, 0
	for i < len(a.Bits) && j < len(b.Bits) {
		switch {
		case a.Bits[i] == b.Bits[j]:
			inter++
			i++
			j++
		case a.Bits[i] < b.Bits[j]:
			i++
		default:
			j++
		}
	}
	union := len(a.Bits) + len(b.Bits) - inter
	if union == 0 {
		return 1, nil
	}
	return float64(inter) / float64(union), nil
}
