package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 3); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := New(128, 0); err == nil {
		t.Error("k=0 should fail")
	}
	f, err := New(128, 4)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if f.M() != 128 || f.K() != 4 {
		t.Errorf("geometry = (%d,%d), want (128,4)", f.M(), f.K())
	}
}

func TestNoFalseNegatives(t *testing.T) {
	f, _ := New(1024, 8)
	items := []uint64{0, 1, 42, 1 << 40, ^uint64(0)}
	for _, it := range items {
		f.Add(it)
	}
	for _, it := range items {
		if !f.Contains(it) {
			t.Errorf("false negative for %d", it)
		}
	}
	if f.Count() != len(items) {
		t.Errorf("Count = %d, want %d", f.Count(), len(items))
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	const n = 1000
	f, err := NewForCapacity(n, 0.01)
	if err != nil {
		t.Fatalf("NewForCapacity: %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	inserted := make(map[uint64]bool, n)
	for len(inserted) < n {
		x := rng.Uint64()
		inserted[x] = true
		f.Add(x)
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		x := rng.Uint64()
		if inserted[x] {
			continue
		}
		if f.Contains(x) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Errorf("false-positive rate %v, want <= 0.03 for target 0.01", rate)
	}
}

func TestNewForCapacityValidation(t *testing.T) {
	for _, tc := range []struct {
		n int
		p float64
	}{{0, 0.1}, {10, 0}, {10, 1}, {-5, 0.5}} {
		if _, err := NewForCapacity(tc.n, tc.p); err == nil {
			t.Errorf("NewForCapacity(%d, %v) should fail", tc.n, tc.p)
		}
	}
}

func TestAddBytesContains(t *testing.T) {
	f, _ := New(512, 6)
	f.AddBytes([]byte("hello"))
	if !f.ContainsBytes([]byte("hello")) {
		t.Error("false negative for byte item")
	}
}

func TestHammingDistanceSelfZero(t *testing.T) {
	f, _ := New(256, 4)
	f.Add(7)
	f.Add(9)
	d, err := HammingDistance(f, f)
	if err != nil || d != 0 {
		t.Errorf("self distance = %d, %v", d, err)
	}
}

func TestHammingSimilarSetsCloser(t *testing.T) {
	// Filters sharing most items should be closer than disjoint ones.
	mk := func(items []uint64) *Filter {
		f, _ := New(2048, 6)
		for _, it := range items {
			f.Add(it)
		}
		return f
	}
	base := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	similar := append(append([]uint64{}, base[:9]...), 99)
	disjoint := []uint64{100, 101, 102, 103, 104, 105, 106, 107, 108, 109}
	fb, fs, fd := mk(base), mk(similar), mk(disjoint)
	ds, _ := HammingDistance(fb, fs)
	dd, _ := HammingDistance(fb, fd)
	if ds >= dd {
		t.Errorf("similar distance %d >= disjoint distance %d", ds, dd)
	}
	js, _ := Jaccard(fb, fs)
	jd, _ := Jaccard(fb, fd)
	if js <= jd {
		t.Errorf("similar jaccard %v <= disjoint %v", js, jd)
	}
}

func TestGeometryMismatchErrors(t *testing.T) {
	a, _ := New(128, 4)
	b, _ := New(256, 4)
	if _, err := HammingDistance(a, b); err == nil {
		t.Error("HammingDistance geometry mismatch should fail")
	}
	if _, err := Jaccard(a, b); err == nil {
		t.Error("Jaccard geometry mismatch should fail")
	}
	if err := a.Union(b); err == nil {
		t.Error("Union geometry mismatch should fail")
	}
}

func TestUnion(t *testing.T) {
	a, _ := New(512, 5)
	b, _ := New(512, 5)
	a.Add(1)
	b.Add(2)
	if err := a.Union(b); err != nil {
		t.Fatalf("Union: %v", err)
	}
	if !a.Contains(1) || !a.Contains(2) {
		t.Error("union lost members")
	}
	if a.Count() != 2 {
		t.Errorf("union count = %d, want 2", a.Count())
	}
}

func TestJaccardEmptyFilters(t *testing.T) {
	a, _ := New(128, 4)
	b, _ := New(128, 4)
	j, err := Jaccard(a, b)
	if err != nil || j != 1 {
		t.Errorf("Jaccard(empty, empty) = %v, %v; want 1", j, err)
	}
}

func TestBitVectorAndSetBitsAgree(t *testing.T) {
	f, _ := New(300, 5)
	for i := uint64(0); i < 20; i++ {
		f.Add(i * 37)
	}
	v := f.BitVector()
	if len(v) != 300 {
		t.Fatalf("BitVector length %d, want 300", len(v))
	}
	set := f.SetBits()
	if len(set) != f.PopCount() {
		t.Fatalf("SetBits count %d, PopCount %d", len(set), f.PopCount())
	}
	seen := make(map[uint32]bool)
	for _, b := range set {
		seen[b] = true
		if v[b] != 1 {
			t.Fatalf("bit %d in SetBits but 0 in BitVector", b)
		}
	}
	for i, x := range v {
		if x == 1 && !seen[uint32(i)] {
			t.Fatalf("bit %d set in vector but missing in SetBits", i)
		}
	}
	// SetBits sorted.
	for i := 1; i < len(set); i++ {
		if set[i] <= set[i-1] {
			t.Fatal("SetBits not strictly increasing")
		}
	}
}

func TestFillRatioAndFPEstimate(t *testing.T) {
	f, _ := New(128, 2)
	if f.FillRatio() != 0 {
		t.Error("fresh filter fill ratio != 0")
	}
	for i := uint64(0); i < 50; i++ {
		f.Add(i)
	}
	if fr := f.FillRatio(); fr <= 0 || fr > 1 {
		t.Errorf("fill ratio %v out of range", fr)
	}
	if fp := f.EstimatedFPRate(); fp <= 0 || fp > 1 {
		t.Errorf("estimated FP rate %v out of range", fp)
	}
	if f.DenseSizeBytes() != 16 {
		t.Errorf("DenseSizeBytes = %d, want 16", f.DenseSizeBytes())
	}
}

func TestHashVectorQuantization(t *testing.T) {
	a := []float64{0.10, 0.20, 0.30}
	aNear := []float64{0.11, 0.21, 0.29} // same buckets at coarse granularity
	b := []float64{5, -3, 2}
	if HashVector(a, 0.25) != HashVector(aNear, 0.25) {
		t.Error("nearby vectors should quantize identically at coarse granularity")
	}
	if HashVector(a, 0.25) == HashVector(b, 0.25) {
		t.Error("distant vectors should not collide (with overwhelming probability)")
	}
	// Granularity <= 0 falls back to the default rather than dividing by zero.
	_ = HashVector(a, 0)
}

// Property: an added item is always reported present (no false negatives).
func TestNoFalseNegativeProperty(t *testing.T) {
	f := func(items []uint64) bool {
		bf, err := New(4096, 6)
		if err != nil {
			return false
		}
		for _, it := range items {
			bf.Add(it)
		}
		for _, it := range items {
			if !bf.Contains(it) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Hamming distance is symmetric and satisfies identity.
func TestHammingSymmetryProperty(t *testing.T) {
	f := func(xs, ys []uint64) bool {
		a, _ := New(1024, 4)
		b, _ := New(1024, 4)
		for _, x := range xs {
			a.Add(x)
		}
		for _, y := range ys {
			b.Add(y)
		}
		ab, err1 := HammingDistance(a, b)
		ba, err2 := HammingDistance(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return ab == ba && ab >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
