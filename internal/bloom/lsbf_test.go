package bloom

import (
	"math/rand"
	"testing"
)

func TestNewLSBFValidation(t *testing.T) {
	if _, err := NewLSBF(0, 1024, 4, 1, 1); err == nil {
		t.Error("zero dim should fail")
	}
	if _, err := NewLSBF(8, 0, 4, 1, 1); err == nil {
		t.Error("zero m should fail")
	}
	if _, err := NewLSBF(8, 1024, 0, 1, 1); err == nil {
		t.Error("zero k should fail")
	}
	if _, err := NewLSBF(8, 1024, 4, 0, 1); err == nil {
		t.Error("zero omega should fail")
	}
}

func TestLSBFDimensionMismatch(t *testing.T) {
	f, _ := NewLSBF(4, 1024, 4, 1, 1)
	if err := f.Add([]float64{1, 2}); err == nil {
		t.Error("short Add should fail")
	}
	if _, err := f.Query([]float64{1, 2, 3, 4, 5}); err == nil {
		t.Error("long Query should fail")
	}
}

func TestLSBFExactMembership(t *testing.T) {
	const dim = 8
	f, _ := NewLSBF(dim, 1<<14, 5, 4, 7)
	rng := rand.New(rand.NewSource(1))
	var stored [][]float64
	for i := 0; i < 50; i++ {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64() * 10
		}
		stored = append(stored, v)
		if err := f.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	if f.Count() != 50 {
		t.Errorf("Count = %d", f.Count())
	}
	for i, v := range stored {
		ok, err := f.Query(v)
		if err != nil || !ok {
			t.Fatalf("stored vector %d not found: %v", i, err)
		}
	}
}

func TestLSBFLocalitySensitivity(t *testing.T) {
	// Near probes should be accepted far more often than far probes — the
	// property that distinguishes the LSBF from a standard Bloom filter.
	const dim = 8
	const omega = 8.0
	f, _ := NewLSBF(dim, 1<<14, 5, omega, 9)
	rng := rand.New(rand.NewSource(2))
	var stored [][]float64
	for i := 0; i < 40; i++ {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64() * 50
		}
		stored = append(stored, v)
		_ = f.Add(v)
	}
	nearHits, farHits := 0, 0
	const trials = 200
	for i := 0; i < trials; i++ {
		base := stored[rng.Intn(len(stored))]
		near := make([]float64, dim)
		far := make([]float64, dim)
		for j := range near {
			near[j] = base[j] + rng.NormFloat64()*omega/40
			far[j] = rng.NormFloat64() * 50
		}
		if ok, _ := f.Query(near); ok {
			nearHits++
		}
		if ok, _ := f.Query(far); ok {
			farHits++
		}
	}
	nearRate := float64(nearHits) / trials
	farRate := float64(farHits) / trials
	if nearRate < 0.6 {
		t.Errorf("near acceptance %.2f too low", nearRate)
	}
	if farRate > nearRate/2 {
		t.Errorf("far acceptance %.2f not well below near %.2f", farRate, nearRate)
	}
}

func TestLSBFFillRatio(t *testing.T) {
	f, _ := NewLSBF(4, 1024, 4, 1, 3)
	if f.FillRatio() != 0 {
		t.Error("fresh LSBF has set bits")
	}
	_ = f.Add([]float64{1, 2, 3, 4})
	if fr := f.FillRatio(); fr <= 0 || fr > 1 {
		t.Errorf("fill ratio %v out of range", fr)
	}
}
