package bloom

import "math"

// SubVectorTokens converts a descriptor vector into a set of feature tokens
// using product-quantization-style sub-vectors: the vector is split into
// groups of sub consecutive components, each group is quantized at the given
// granularity, and each quantized group is hashed into one token tagged with
// its group index.
//
// Compared with hashing the whole vector at once (HashVector), sub-vector
// tokens are far more robust to perturbation: a single borderline component
// only invalidates its own group's token, so two descriptors that agree on
// most components still share most tokens. All-zero groups are suppressed
// (see below). Calibration on the synthetic corpus (sub=16,
// granularity=0.5, SIFT descriptors, mild perturbation) gives same-scene
// summaries an average Jaccard similarity of ~0.44 versus ~0.10 across
// scenes — the separation the Summarization module relies on.
func SubVectorTokens(v []float64, sub int, granularity float64) []uint64 {
	return AppendSubVectorTokens(nil, v, sub, granularity)
}

// AppendSubVectorTokens appends the sub-vector tokens of v to dst and
// returns the extended slice. It is the allocation-free form of
// SubVectorTokens: callers that summarize many descriptors reuse one token
// buffer (dst[:0]) across calls instead of allocating per descriptor.
func AppendSubVectorTokens(dst []uint64, v []float64, sub int, granularity float64) []uint64 {
	if sub <= 0 {
		sub = 16
	}
	if granularity <= 0 {
		granularity = 0.5
	}
	groups := (len(v) + sub - 1) / sub
	out := dst
	// The quantized-group scratch lives on the stack at the default
	// sub-vector width; oversized configurations fall back to the heap.
	var arr [72]byte
	buf := arr[:0]
	if sub+2 > len(arr) {
		buf = make([]byte, 0, sub+2)
	}
	for g := 0; g < groups; g++ {
		buf = buf[:0]
		buf = append(buf, byte(g), byte(g>>8))
		informative := false
		for i := g * sub; i < (g+1)*sub && i < len(v); i++ {
			q := int8(math.Round(v[i] / granularity))
			if q != 0 {
				informative = true
			}
			buf = append(buf, byte(q))
		}
		// All-zero groups are "stopword" tokens shared by almost every
		// descriptor; emitting them would inflate the similarity of
		// unrelated images, so they are skipped.
		if informative {
			out = append(out, fnv64(buf))
		}
	}
	return out
}

// AddTokens inserts every token into the filter.
func (f *Filter) AddTokens(tokens []uint64) {
	for _, t := range tokens {
		f.Add(t)
	}
}

// SummaryConfig is the canonical summary geometry used by the FAST pipeline
// and the smartphone-side dedup detector.
type SummaryConfig struct {
	Bits        uint32  // filter size; 0 means 8192
	K           int     // hash functions; 0 means 4 (paper uses k=8 at cloud scale)
	SubVector   int     // sub-vector width for tokens; 0 means 16
	Granularity float64 // quantization step; 0 means 0.5
}

// WithDefaults fills zero fields with calibrated defaults.
func (c SummaryConfig) WithDefaults() SummaryConfig {
	if c.Bits == 0 {
		c.Bits = 8192
	}
	if c.K == 0 {
		c.K = 4
	}
	if c.SubVector == 0 {
		c.SubVector = 16
	}
	if c.Granularity == 0 {
		c.Granularity = 0.5
	}
	return c
}

// Summarize builds the Bloom summary of a descriptor set under the given
// configuration. It is generic over the descriptor's float64-slice type so
// callers holding []linalg.Vector (or any other named []float64) feed it
// directly instead of reallocating a [][]float64 view.
func Summarize[V ~[]float64](descriptors []V, cfg SummaryConfig) (*Filter, error) {
	cfg = cfg.WithDefaults()
	f, err := New(cfg.Bits, cfg.K)
	if err != nil {
		return nil, err
	}
	var tokens []uint64
	for _, d := range descriptors {
		tokens = AppendSubVectorTokens(tokens[:0], []float64(d), cfg.SubVector, cfg.Granularity)
		f.AddTokens(tokens)
	}
	return f, nil
}
