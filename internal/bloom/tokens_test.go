package bloom

import (
	"testing"
)

func TestSubVectorTokensDeterministic(t *testing.T) {
	v := []float64{0.6, -0.3, 0.1, 0.9, 0.0, 0.0, 0.7, 0.2}
	a := SubVectorTokens(v, 4, 0.5)
	b := SubVectorTokens(v, 4, 0.5)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("tokens not deterministic")
		}
	}
}

func TestSubVectorTokensSkipsZeroGroups(t *testing.T) {
	// First group all below granularity/2 -> suppressed; second informative.
	v := []float64{0.1, 0.1, 0.1, 0.1, 0.9, 0.9, 0.9, 0.9}
	toks := SubVectorTokens(v, 4, 0.5)
	if len(toks) != 1 {
		t.Fatalf("got %d tokens, want 1 (zero group suppressed)", len(toks))
	}
	all := []float64{0.01, 0.01, 0.01, 0.01}
	if toks := SubVectorTokens(all, 4, 0.5); len(toks) != 0 {
		t.Errorf("all-zero vector emitted %d tokens", len(toks))
	}
}

func TestSubVectorTokensPartialRobustness(t *testing.T) {
	// Perturbing one component must invalidate at most one token.
	v := make([]float64, 32)
	for i := range v {
		v[i] = 0.6
	}
	w := append([]float64(nil), v...)
	w[5] = 1.4 // crosses a quantization boundary
	a := SubVectorTokens(v, 8, 0.5)
	b := SubVectorTokens(w, 8, 0.5)
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("token counts %d, %d; want 4", len(a), len(b))
	}
	differ := 0
	for i := range a {
		if a[i] != b[i] {
			differ++
		}
	}
	if differ != 1 {
		t.Errorf("%d tokens differ, want exactly 1", differ)
	}
}

func TestSubVectorTokensGroupTagging(t *testing.T) {
	// The same values in different groups must yield different tokens.
	v := []float64{0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9}
	toks := SubVectorTokens(v, 4, 0.5)
	if len(toks) != 2 {
		t.Fatalf("got %d tokens, want 2", len(toks))
	}
	if toks[0] == toks[1] {
		t.Error("identical groups in different positions produced identical tokens")
	}
}

func TestSubVectorTokensDefaults(t *testing.T) {
	v := make([]float64, 40)
	for i := range v {
		v[i] = 1
	}
	// sub<=0 and granularity<=0 must fall back to defaults, not panic.
	toks := SubVectorTokens(v, 0, 0)
	if len(toks) != 3 { // ceil(40/16)
		t.Errorf("default sub produced %d tokens, want 3", len(toks))
	}
}

func TestSummarizeAndConfigDefaults(t *testing.T) {
	cfg := SummaryConfig{}.WithDefaults()
	if cfg.Bits != 8192 || cfg.K != 4 || cfg.SubVector != 16 || cfg.Granularity != 0.5 {
		t.Errorf("defaults = %+v", cfg)
	}
	descs := [][]float64{
		{0.9, 0.8, 0.7, 0.6},
		{0.1, 0.2, 0.9, 0.9},
	}
	f, err := Summarize(descs, SummaryConfig{Bits: 256, K: 3, SubVector: 2, Granularity: 0.5})
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if f.PopCount() == 0 {
		t.Error("summary has no set bits")
	}
	// Identical descriptor sets summarize identically.
	g, _ := Summarize(descs, SummaryConfig{Bits: 256, K: 3, SubVector: 2, Granularity: 0.5})
	if d, _ := HammingDistance(f, g); d != 0 {
		t.Errorf("identical inputs differ by %d bits", d)
	}
}

func TestSummarizeNamedSliceType(t *testing.T) {
	// Summarize is generic over ~[]float64 so callers holding named vector
	// types (e.g. linalg.Vector) can pass descriptors without copying. The
	// summary must not depend on the element type's name.
	type vec []float64
	plain := [][]float64{
		{0.9, 0.8, 0.7, 0.6},
		{0.1, 0.2, 0.9, 0.9},
		{0.55, -0.3, 1.2, 0.0},
	}
	named := make([]vec, len(plain))
	for i, d := range plain {
		named[i] = vec(append([]float64(nil), d...))
	}
	cfg := SummaryConfig{Bits: 256, K: 3, SubVector: 2, Granularity: 0.5}
	a, err := Summarize(plain, cfg)
	if err != nil {
		t.Fatalf("Summarize([][]float64): %v", err)
	}
	b, err := Summarize(named, cfg)
	if err != nil {
		t.Fatalf("Summarize([]vec): %v", err)
	}
	if d, _ := HammingDistance(a, b); d != 0 {
		t.Errorf("named slice type changed summary by %d bits", d)
	}
}

func TestAppendSubVectorTokensReusesDst(t *testing.T) {
	v := []float64{0.6, -0.3, 0.1, 0.9, 0.7, 0.2, 0.8, 0.4}
	want := SubVectorTokens(v, 4, 0.5)
	dst := make([]uint64, 0, 8)
	got := AppendSubVectorTokens(dst, v, 4, 0.5)
	if len(got) != len(want) {
		t.Fatalf("append variant emitted %d tokens, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d differs: %d vs %d", i, got[i], want[i])
		}
	}
	if &got[0] != &dst[:1][0] {
		t.Error("AppendSubVectorTokens did not reuse the provided backing array")
	}
	// Sub-vector sizes beyond the stack scratch must still work (heap path).
	big := make([]float64, 256)
	for i := range big {
		big[i] = 0.9
	}
	if toks := AppendSubVectorTokens(nil, big, 128, 0.5); len(toks) != 2 {
		t.Errorf("large sub-vector emitted %d tokens, want 2", len(toks))
	}
}

func TestAddTokens(t *testing.T) {
	f, _ := New(512, 4)
	toks := []uint64{1, 2, 3}
	f.AddTokens(toks)
	for _, tok := range toks {
		if !f.Contains(tok) {
			t.Errorf("token %d missing after AddTokens", tok)
		}
	}
}
