package bloom

import (
	"testing"
	"testing/quick"
)

func TestSparseRoundTrip(t *testing.T) {
	f, _ := New(512, 6)
	for i := uint64(0); i < 30; i++ {
		f.Add(i * 101)
	}
	s := ToSparse(f)
	if s.M != 512 || s.K != 6 {
		t.Fatalf("sparse geometry (%d,%d), want (512,6)", s.M, s.K)
	}
	back, err := s.ToDense()
	if err != nil {
		t.Fatalf("ToDense: %v", err)
	}
	d, err := HammingDistance(f, back)
	if err != nil || d != 0 {
		t.Errorf("round trip distance = %d, %v", d, err)
	}
}

func TestSparseContains(t *testing.T) {
	s := &Sparse{M: 100, K: 2, Bits: []uint32{3, 17, 64}}
	for _, b := range []uint32{3, 17, 64} {
		if !s.Contains(b) {
			t.Errorf("Contains(%d) = false", b)
		}
	}
	for _, b := range []uint32{0, 4, 99} {
		if s.Contains(b) {
			t.Errorf("Contains(%d) = true", b)
		}
	}
}

func TestSparseToDenseRejectsOutOfRange(t *testing.T) {
	s := &Sparse{M: 64, K: 2, Bits: []uint32{70}}
	if _, err := s.ToDense(); err == nil {
		t.Error("out-of-range bit should fail")
	}
}

func TestSparseSizeBytesMuchSmallerThanDense(t *testing.T) {
	// The paper's core space claim: a sparse summary of a lightly filled
	// filter is far smaller than the dense array.
	f, _ := New(1<<16, 8) // 8 KB dense
	for i := uint64(0); i < 16; i++ {
		f.Add(i)
	}
	s := ToSparse(f)
	if s.SizeBytes() >= f.DenseSizeBytes()/10 {
		t.Errorf("sparse %dB not <10%% of dense %dB", s.SizeBytes(), f.DenseSizeBytes())
	}
}

func TestSparseHammingMatchesDense(t *testing.T) {
	a, _ := New(1024, 5)
	b, _ := New(1024, 5)
	for i := uint64(0); i < 40; i++ {
		a.Add(i)
		if i%3 == 0 {
			b.Add(i)
		} else {
			b.Add(i + 1000)
		}
	}
	want, _ := HammingDistance(a, b)
	got, err := HammingDistanceSparse(ToSparse(a), ToSparse(b))
	if err != nil {
		t.Fatalf("HammingDistanceSparse: %v", err)
	}
	if got != want {
		t.Errorf("sparse hamming %d != dense %d", got, want)
	}
}

func TestSparseJaccardMatchesDense(t *testing.T) {
	a, _ := New(2048, 4)
	b, _ := New(2048, 4)
	for i := uint64(0); i < 25; i++ {
		a.Add(i)
		b.Add(i + 12)
	}
	want, _ := Jaccard(a, b)
	got, err := JaccardSparse(ToSparse(a), ToSparse(b))
	if err != nil {
		t.Fatalf("JaccardSparse: %v", err)
	}
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("sparse jaccard %v != dense %v", got, want)
	}
}

func TestSparseGeometryMismatch(t *testing.T) {
	a := &Sparse{M: 64, K: 2}
	b := &Sparse{M: 128, K: 2}
	if _, err := HammingDistanceSparse(a, b); err == nil {
		t.Error("sparse hamming geometry mismatch should fail")
	}
	if _, err := JaccardSparse(a, b); err == nil {
		t.Error("sparse jaccard geometry mismatch should fail")
	}
}

func TestJaccardSparseEmpty(t *testing.T) {
	a := &Sparse{M: 64, K: 2}
	b := &Sparse{M: 64, K: 2}
	j, err := JaccardSparse(a, b)
	if err != nil || j != 1 {
		t.Errorf("JaccardSparse(empty, empty) = %v, %v; want 1", j, err)
	}
}

// Property: sparse round trip is lossless for arbitrary item sets.
func TestSparseRoundTripProperty(t *testing.T) {
	f := func(items []uint64) bool {
		bf, _ := New(2048, 5)
		for _, it := range items {
			bf.Add(it)
		}
		s := ToSparse(bf)
		back, err := s.ToDense()
		if err != nil {
			return false
		}
		d, err := HammingDistance(bf, back)
		return err == nil && d == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
