package bloom

import (
	"fmt"
	"math"
	"math/rand"
)

// LSBF is a Locality-Sensitive Bloom Filter (Hua, Xiao, Veeravalli, Feng —
// IEEE ToC 2012, the paper's reference [47]): an approximate-membership
// structure that answers "is an item *near* a stored item?" rather than
// exact membership. Standard Bloom filters use uniform hashes, so two
// nearly identical vectors set unrelated bits; the LSBF replaces them with
// p-stable LSH functions, so near vectors map to the same buckets with high
// probability and a positive answer indicates proximity.
//
// The FAST paper cites the LSBF as the in-memory-computing data structure
// its summarization philosophy builds on; it is provided here both for
// completeness and as an alternative front-end filter for the engine
// ("is anything like this probe indexed at all?" before a full query).
type LSBF struct {
	m     uint32
	k     int
	omega float64
	dim   int
	bits  []uint64
	funcs []lsbfFunc
	n     int
	// verification bits: one extra uniform-hash bit per item reduces the
	// false positives that occur when unrelated items happen to share all
	// k LSH buckets (the ToC paper's verification scheme).
	verify []uint64
}

type lsbfFunc struct {
	a []float64
	b float64
}

// NewLSBF builds a locality-sensitive Bloom filter over dim-dimensional
// vectors with m bits, k LSH functions of width omega. omega must reflect
// the distance scale of "near": vectors within ~omega/8 of a stored item
// are reported present with high probability.
func NewLSBF(dim int, m uint32, k int, omega float64, seed int64) (*LSBF, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("bloom: lsbf dimension must be positive, got %d", dim)
	}
	if m == 0 || k <= 0 || omega <= 0 {
		return nil, fmt.Errorf("bloom: invalid lsbf parameters m=%d k=%d omega=%v", m, k, omega)
	}
	rng := rand.New(rand.NewSource(seed))
	f := &LSBF{
		m:      m,
		k:      k,
		omega:  omega,
		dim:    dim,
		bits:   make([]uint64, (m+63)/64),
		verify: make([]uint64, (m+63)/64),
	}
	for i := 0; i < k; i++ {
		a := make([]float64, dim)
		for j := range a {
			a[j] = rng.NormFloat64()
		}
		f.funcs = append(f.funcs, lsbfFunc{a: a, b: rng.Float64() * omega})
	}
	return f, nil
}

// Count returns the number of stored items.
func (f *LSBF) Count() int { return f.n }

// bucketBit maps LSH function i's bucket for v onto a bit position.
func (f *LSBF) bucketBit(v []float64, i int) uint32 {
	fn := &f.funcs[i]
	var dot float64
	for j, x := range v {
		dot += fn.a[j] * x
	}
	bucket := int64(math.Floor((dot + fn.b) / f.omega))
	h := mixLSBF(uint64(bucket) ^ (uint64(i) << 56))
	return uint32(h % uint64(f.m))
}

// verifyBit is the uniform-hash verification bit of v (quantized to the
// omega grid so that near items share it with reasonable probability).
func (f *LSBF) verifyBit(v []float64) uint32 {
	h := uint64(1469598103934665603)
	for i := 0; i < f.k; i++ {
		h ^= uint64(f.bucketBit(v, i))
		h *= 1099511628211
	}
	return uint32(mixLSBF(h) % uint64(f.m))
}

func mixLSBF(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add stores vector v. It returns an error on dimension mismatch.
func (f *LSBF) Add(v []float64) error {
	if len(v) != f.dim {
		return fmt.Errorf("bloom: lsbf vector dimension %d, want %d", len(v), f.dim)
	}
	for i := 0; i < f.k; i++ {
		b := f.bucketBit(v, i)
		f.bits[b/64] |= 1 << (b % 64)
	}
	vb := f.verifyBit(v)
	f.verify[vb/64] |= 1 << (vb % 64)
	f.n++
	return nil
}

// Query reports whether a vector near v has been stored: all k LSH bucket
// bits and the verification bit must be set. Exact re-queries of stored
// vectors always return true; vectors within the omega scale return true
// with high probability; distant vectors return true only on Bloom-style
// false positives.
func (f *LSBF) Query(v []float64) (bool, error) {
	if len(v) != f.dim {
		return false, fmt.Errorf("bloom: lsbf vector dimension %d, want %d", len(v), f.dim)
	}
	for i := 0; i < f.k; i++ {
		b := f.bucketBit(v, i)
		if f.bits[b/64]&(1<<(b%64)) == 0 {
			return false, nil
		}
	}
	vb := f.verifyBit(v)
	return f.verify[vb/64]&(1<<(vb%64)) != 0, nil
}

// FillRatio returns the fraction of set bucket bits (diagnostics).
func (f *LSBF) FillRatio() float64 {
	set := 0
	for _, w := range f.bits {
		for ; w != 0; w &= w - 1 {
			set++
		}
	}
	return float64(set) / float64(f.m)
}
