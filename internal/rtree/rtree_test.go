package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestRectOps(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{1, 1, 3, 3}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("overlapping rects reported disjoint")
	}
	c := Rect{5, 5, 6, 6}
	if a.Intersects(c) {
		t.Error("disjoint rects reported overlapping")
	}
	u := a.Union(b)
	if u != (Rect{0, 0, 3, 3}) {
		t.Errorf("Union = %+v", u)
	}
	if a.Area() != 4 {
		t.Errorf("Area = %v, want 4", a.Area())
	}
	if !u.Contains(a) || a.Contains(u) {
		t.Error("Contains broken")
	}
	if !Point(1, 1).Valid() || (Rect{2, 0, 1, 1}).Valid() {
		t.Error("Valid broken")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(3, 4); err == nil {
		t.Error("max < 2*min should fail")
	}
	if _, err := New(0, 5); err == nil {
		t.Error("min 0 with max set should fail")
	}
	tr, err := New(0, 0)
	if err != nil {
		t.Fatalf("New defaults: %v", err)
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Errorf("fresh tree Len=%d Height=%d", tr.Len(), tr.Height())
	}
}

func TestInsertRejectsInvalidRect(t *testing.T) {
	tr, _ := New(0, 0)
	if err := tr.Insert(Entry{Rect: Rect{1, 1, 0, 0}, ID: 1}); err == nil {
		t.Error("invalid rect should fail")
	}
}

func TestSearchFindsAllInserted(t *testing.T) {
	tr, _ := New(0, 0)
	rng := rand.New(rand.NewSource(1))
	const n = 500
	pts := make([]Rect, n)
	for i := range pts {
		pts[i] = Point(rng.Float64()*100, rng.Float64()*100)
		if err := tr.Insert(Entry{Rect: pts[i], ID: uint64(i)}); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	// Whole-space query returns everything exactly once.
	all := tr.Search(Rect{-1, -1, 101, 101})
	if len(all) != n {
		t.Fatalf("whole-space search returned %d, want %d", len(all), n)
	}
	seen := make(map[uint64]bool)
	for _, e := range all {
		if seen[e.ID] {
			t.Fatalf("duplicate ID %d", e.ID)
		}
		seen[e.ID] = true
	}
	// Range query matches linear scan.
	q := Rect{20, 20, 40, 60}
	got := tr.Search(q)
	want := 0
	for _, p := range pts {
		if p.Intersects(q) {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("range search returned %d, linear scan says %d", len(got), want)
	}
}

func TestTreeHeightLogarithmic(t *testing.T) {
	tr, _ := New(2, 8)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		_ = tr.Insert(Entry{Rect: Point(rng.Float64(), rng.Float64()), ID: uint64(i)})
	}
	h := tr.Height()
	// With fan-out >= 2, height should be well below log2(n)+const; with
	// fan-out 8 expect <= ~7 for 2000 entries.
	if h > 10 {
		t.Errorf("height %d too large for 2000 entries", h)
	}
	if h < 2 {
		t.Errorf("height %d too small; splits never happened", h)
	}
}

func TestNearestMatchesLinearScan(t *testing.T) {
	tr, _ := New(0, 0)
	rng := rand.New(rand.NewSource(3))
	const n = 300
	type pt struct {
		x, y float64
		id   uint64
	}
	pts := make([]pt, n)
	for i := range pts {
		pts[i] = pt{rng.Float64() * 50, rng.Float64() * 50, uint64(i)}
		_ = tr.Insert(Entry{Rect: Point(pts[i].x, pts[i].y), ID: pts[i].id})
	}
	for trial := 0; trial < 10; trial++ {
		qx, qy := rng.Float64()*50, rng.Float64()*50
		const k = 5
		got := tr.Nearest(qx, qy, k)
		if len(got) != k {
			t.Fatalf("Nearest returned %d, want %d", len(got), k)
		}
		dists := make([]float64, n)
		for i, p := range pts {
			dists[i] = math.Hypot(p.x-qx, p.y-qy)
		}
		sort.Float64s(dists)
		for i, e := range got {
			d := math.Hypot((e.Rect.MinX+e.Rect.MaxX)/2-qx, (e.Rect.MinY+e.Rect.MaxY)/2-qy)
			if math.Abs(d-dists[i]) > 1e-9 {
				t.Fatalf("trial %d: k-NN rank %d distance %v, linear scan %v", trial, i, d, dists[i])
			}
		}
	}
}

func TestNearestEdgeCases(t *testing.T) {
	tr, _ := New(0, 0)
	if got := tr.Nearest(0, 0, 3); got != nil {
		t.Error("empty tree Nearest should be nil")
	}
	_ = tr.Insert(Entry{Rect: Point(1, 1), ID: 7})
	if got := tr.Nearest(0, 0, 0); got != nil {
		t.Error("k=0 should be nil")
	}
	got := tr.Nearest(0, 0, 10)
	if len(got) != 1 || got[0].ID != 7 {
		t.Errorf("Nearest = %+v", got)
	}
}

func TestProbeCountGrows(t *testing.T) {
	tr, _ := New(0, 0)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		_ = tr.Insert(Entry{Rect: Point(rng.Float64(), rng.Float64()), ID: uint64(i)})
	}
	before := tr.ProbeCount
	tr.Search(Rect{0, 0, 1, 1})
	if tr.ProbeCount <= before {
		t.Error("ProbeCount did not grow with a search")
	}
}

func TestDuplicatePointsSupported(t *testing.T) {
	tr, _ := New(0, 0)
	for i := 0; i < 50; i++ {
		if err := tr.Insert(Entry{Rect: Point(1, 1), ID: uint64(i)}); err != nil {
			t.Fatalf("duplicate point insert %d: %v", i, err)
		}
	}
	got := tr.Search(Point(1, 1))
	if len(got) != 50 {
		t.Errorf("search returned %d duplicates, want 50", len(got))
	}
}
