package rtree

import (
	"math/rand"
	"testing"
)

func TestDeleteBasic(t *testing.T) {
	tr, _ := New(0, 0)
	for i := 0; i < 20; i++ {
		_ = tr.Insert(Entry{Rect: Point(float64(i), float64(i)), ID: uint64(i + 1)})
	}
	if !tr.Delete(Entry{Rect: Point(5, 5), ID: 6}) {
		t.Fatal("Delete returned false for present entry")
	}
	if tr.Len() != 19 {
		t.Fatalf("Len = %d, want 19", tr.Len())
	}
	got := tr.Search(Point(5, 5))
	for _, e := range got {
		if e.ID == 6 {
			t.Fatal("deleted entry still found")
		}
	}
	// Deleting again fails.
	if tr.Delete(Entry{Rect: Point(5, 5), ID: 6}) {
		t.Error("double delete returned true")
	}
	// Wrong rect for an existing ID fails.
	if tr.Delete(Entry{Rect: Point(99, 99), ID: 7}) {
		t.Error("delete with mismatched rect returned true")
	}
	if tr.Delete(Entry{Rect: Rect{2, 2, 1, 1}, ID: 7}) {
		t.Error("delete with invalid rect returned true")
	}
}

func TestDeleteAllThenReuse(t *testing.T) {
	tr, _ := New(0, 0)
	rng := rand.New(rand.NewSource(1))
	type stored struct {
		r  Rect
		id uint64
	}
	var items []stored
	for i := 0; i < 300; i++ {
		r := Point(rng.Float64()*100, rng.Float64()*100)
		items = append(items, stored{r, uint64(i + 1)})
		if err := tr.Insert(Entry{Rect: r, ID: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	// Delete everything in random order.
	rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
	for i, it := range items {
		if !tr.Delete(Entry{Rect: it.r, ID: it.id}) {
			t.Fatalf("delete %d (id %d) failed", i, it.id)
		}
		if tr.Len() != len(items)-i-1 {
			t.Fatalf("Len = %d after %d deletes", tr.Len(), i+1)
		}
	}
	if got := tr.Search(Rect{-1, -1, 101, 101}); len(got) != 0 {
		t.Fatalf("empty tree still returns %d entries", len(got))
	}
	// The tree remains usable.
	if err := tr.Insert(Entry{Rect: Point(1, 1), ID: 9999}); err != nil {
		t.Fatalf("insert after full drain: %v", err)
	}
	if got := tr.Search(Point(1, 1)); len(got) != 1 {
		t.Fatalf("reinserted entry not found")
	}
}

func TestDeleteKeepsRemainderSearchable(t *testing.T) {
	tr, _ := New(0, 0)
	rng := rand.New(rand.NewSource(2))
	kept := map[uint64]Rect{}
	for i := 0; i < 400; i++ {
		r := Point(rng.Float64()*50, rng.Float64()*50)
		id := uint64(i + 1)
		kept[id] = r
		_ = tr.Insert(Entry{Rect: r, ID: id})
	}
	// Remove every third entry.
	for id := uint64(3); id <= 400; id += 3 {
		if !tr.Delete(Entry{Rect: kept[id], ID: id}) {
			t.Fatalf("delete id %d failed", id)
		}
		delete(kept, id)
	}
	// Every surviving entry is still findable at its exact point.
	for id, r := range kept {
		found := false
		for _, e := range tr.Search(r) {
			if e.ID == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("surviving entry %d lost after deletions", id)
		}
	}
	if tr.Len() != len(kept) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(kept))
	}
}
