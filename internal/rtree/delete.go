package rtree

// Delete removes the entry with the given rectangle and ID. It implements
// Guttman's CondenseTree in simplified form: the entry's leaf is located by
// rectangle descent, the entry removed, and any node left under-full is
// dissolved with its remaining entries re-inserted. It reports whether the
// entry was found.
func (t *Tree) Delete(e Entry) bool {
	if t.size == 0 || !e.Rect.Valid() {
		return false
	}
	var orphans []Entry
	removed := t.deleteRec(t.root, e, &orphans)
	if !removed {
		return false
	}
	t.size--
	// Collapse a root with a single internal child.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	if !t.root.leaf && len(t.root.children) == 0 {
		t.root = &node{leaf: true}
	}
	t.root.rect = recomputeRect(t.root)
	// Re-insert orphans from dissolved nodes.
	for _, o := range orphans {
		t.size-- // Insert will re-increment
		if err := t.Insert(o); err != nil {
			// Orphans came out of the tree, so their rects are valid;
			// Insert cannot fail. Restore the count defensively anyway.
			t.size++
		}
	}
	return true
}

// deleteRec removes e from the subtree rooted at n, collecting entries of
// dissolved under-full nodes into orphans. It returns whether e was found.
func (t *Tree) deleteRec(n *node, e Entry, orphans *[]Entry) bool {
	if n.leaf {
		for i, got := range n.entries {
			if got.ID == e.ID && got.Rect == e.Rect {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				n.rect = recomputeRect(n)
				return true
			}
		}
		return false
	}
	for ci, c := range n.children {
		if !c.rect.Contains(e.Rect) && !c.rect.Intersects(e.Rect) {
			continue
		}
		if !t.deleteRec(c, e, orphans) {
			continue
		}
		// Dissolve under-full children (except when c is the only child of
		// the root path, handled by the caller's collapse step).
		if under(c, t.minEntries) {
			collectEntries(c, orphans)
			n.children = append(n.children[:ci], n.children[ci+1:]...)
		}
		n.rect = recomputeRect(n)
		return true
	}
	return false
}

func under(n *node, min int) bool {
	if n.leaf {
		return len(n.entries) < min
	}
	return len(n.children) < min
}

func collectEntries(n *node, out *[]Entry) {
	if n.leaf {
		*out = append(*out, n.entries...)
		return
	}
	for _, c := range n.children {
		collectEntries(c, out)
	}
}
