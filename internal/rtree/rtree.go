// Package rtree implements a 2-D Guttman R-tree (SIGMOD'84) with quadratic
// node splitting. It is the spatial substrate of the RNPE baseline
// (Liu et al., ICDE'13), which indexes geo-tagged photo "location views" in
// an R-tree and answers proximity queries in O(log n) — the complexity the
// paper contrasts with FAST's O(1) flat addressing.
package rtree

import (
	"fmt"
	"math"
	"sort"
)

// Rect is an axis-aligned rectangle (MinX <= MaxX, MinY <= MaxY).
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Point returns a degenerate rectangle at (x, y).
func Point(x, y float64) Rect { return Rect{x, y, x, y} }

// Valid reports whether the rectangle is well formed.
func (r Rect) Valid() bool { return r.MinX <= r.MaxX && r.MinY <= r.MaxY }

// Area returns the rectangle's area.
func (r Rect) Area() float64 { return (r.MaxX - r.MinX) * (r.MaxY - r.MinY) }

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// Intersects reports whether r and s overlap (boundaries included).
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Contains reports whether r fully contains s.
func (r Rect) Contains(s Rect) bool {
	return r.MinX <= s.MinX && r.MinY <= s.MinY && r.MaxX >= s.MaxX && r.MaxY >= s.MaxY
}

// enlargement returns the area growth of r needed to cover s.
func (r Rect) enlargement(s Rect) float64 { return r.Union(s).Area() - r.Area() }

// centerDist returns the distance between rectangle centers.
func (r Rect) centerDist(s Rect) float64 {
	rx, ry := (r.MinX+r.MaxX)/2, (r.MinY+r.MaxY)/2
	sx, sy := (s.MinX+s.MaxX)/2, (s.MinY+s.MaxY)/2
	return math.Hypot(rx-sx, ry-sy)
}

// Entry is a stored item: a rectangle (often a point) plus a caller ID.
type Entry struct {
	Rect Rect
	ID   uint64
}

type node struct {
	leaf     bool
	rect     Rect
	entries  []Entry // leaf payload
	children []*node // internal children
}

// Tree is a Guttman R-tree.
type Tree struct {
	root       *node
	minEntries int
	maxEntries int
	size       int
	// ProbeCount accumulates the number of nodes visited by searches; the
	// evaluation uses it to charge RNPE its O(log n) traversal cost.
	ProbeCount int
}

// New creates an R-tree with the given node fan-out bounds. min 0 and max 0
// select the common (2, 8) configuration. It returns an error for invalid
// bounds.
func New(minEntries, maxEntries int) (*Tree, error) {
	if minEntries == 0 && maxEntries == 0 {
		minEntries, maxEntries = 2, 8
	}
	if minEntries < 1 || maxEntries < 2*minEntries {
		return nil, fmt.Errorf("rtree: invalid fan-out bounds (%d, %d); need max >= 2*min", minEntries, maxEntries)
	}
	return &Tree{
		root:       &node{leaf: true},
		minEntries: minEntries,
		maxEntries: maxEntries,
	}, nil
}

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (1 for a single leaf).
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}

// Insert adds an entry. It returns an error for malformed rectangles.
func (t *Tree) Insert(e Entry) error {
	if !e.Rect.Valid() {
		return fmt.Errorf("rtree: invalid rect %+v", e.Rect)
	}
	leaf := t.chooseLeaf(t.root, e.Rect)
	leaf.entries = append(leaf.entries, e)
	leaf.rect = recomputeRect(leaf)
	t.size++
	t.adjustPath(e.Rect)
	if len(leaf.entries) > t.maxEntries {
		t.splitAndPropagate(leaf)
	}
	return nil
}

// chooseLeaf descends to the leaf requiring least enlargement.
func (t *Tree) chooseLeaf(n *node, r Rect) *node {
	for !n.leaf {
		best := n.children[0]
		bestGrow := best.rect.enlargement(r)
		for _, c := range n.children[1:] {
			g := c.rect.enlargement(r)
			if g < bestGrow || (g == bestGrow && c.rect.Area() < best.rect.Area()) {
				best, bestGrow = c, g
			}
		}
		n = best
	}
	return n
}

// adjustPath re-expands rectangles on the root-to-leaf path to cover r.
// For simplicity the whole path is recomputed from the root.
func (t *Tree) adjustPath(r Rect) {
	var fix func(n *node) Rect
	fix = func(n *node) Rect {
		if n.leaf {
			n.rect = recomputeRect(n)
			return n.rect
		}
		first := true
		for _, c := range n.children {
			cr := fix(c)
			if first {
				n.rect, first = cr, false
			} else {
				n.rect = n.rect.Union(cr)
			}
		}
		return n.rect
	}
	fix(t.root)
}

func recomputeRect(n *node) Rect {
	if n.leaf {
		if len(n.entries) == 0 {
			return Rect{}
		}
		r := n.entries[0].Rect
		for _, e := range n.entries[1:] {
			r = r.Union(e.Rect)
		}
		return r
	}
	if len(n.children) == 0 {
		return Rect{}
	}
	r := n.children[0].rect
	for _, c := range n.children[1:] {
		r = r.Union(c.rect)
	}
	return r
}

// splitAndPropagate splits an overfull node, walking up from the leaf by
// re-descending from the root (parent pointers are not stored).
func (t *Tree) splitAndPropagate(over *node) {
	a, b := t.splitNode(over)
	if over == t.root {
		t.root = &node{leaf: false, children: []*node{a, b}}
		t.root.rect = a.rect.Union(b.rect)
		return
	}
	parent := t.findParent(t.root, over)
	// Replace over with a, add b.
	for i, c := range parent.children {
		if c == over {
			parent.children[i] = a
			break
		}
	}
	parent.children = append(parent.children, b)
	parent.rect = recomputeRect(parent)
	if len(parent.children) > t.maxEntries {
		t.splitAndPropagate(parent)
	}
}

func (t *Tree) findParent(cur, target *node) *node {
	if cur.leaf {
		return nil
	}
	for _, c := range cur.children {
		if c == target {
			return cur
		}
	}
	for _, c := range cur.children {
		if p := t.findParent(c, target); p != nil {
			return p
		}
	}
	return nil
}

// splitNode applies Guttman's quadratic split.
func (t *Tree) splitNode(n *node) (*node, *node) {
	if n.leaf {
		ga, gb := quadraticSplitRects(entryRects(n.entries), t.minEntries)
		a := &node{leaf: true}
		b := &node{leaf: true}
		for _, i := range ga {
			a.entries = append(a.entries, n.entries[i])
		}
		for _, i := range gb {
			b.entries = append(b.entries, n.entries[i])
		}
		a.rect, b.rect = recomputeRect(a), recomputeRect(b)
		return a, b
	}
	ga, gb := quadraticSplitRects(childRects(n.children), t.minEntries)
	a := &node{leaf: false}
	b := &node{leaf: false}
	for _, i := range ga {
		a.children = append(a.children, n.children[i])
	}
	for _, i := range gb {
		b.children = append(b.children, n.children[i])
	}
	a.rect, b.rect = recomputeRect(a), recomputeRect(b)
	return a, b
}

func entryRects(es []Entry) []Rect {
	rs := make([]Rect, len(es))
	for i, e := range es {
		rs[i] = e.Rect
	}
	return rs
}

func childRects(cs []*node) []Rect {
	rs := make([]Rect, len(cs))
	for i, c := range cs {
		rs[i] = c.rect
	}
	return rs
}

// quadraticSplitRects partitions indices of rects into two groups using
// Guttman's quadratic seeds + greedy assignment, respecting minEntries.
func quadraticSplitRects(rects []Rect, minEntries int) (groupA, groupB []int) {
	// Pick seeds: the pair wasting the most area if grouped.
	seedA, seedB, worst := 0, 1, math.Inf(-1)
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			waste := rects[i].Union(rects[j]).Area() - rects[i].Area() - rects[j].Area()
			if waste > worst {
				worst, seedA, seedB = waste, i, j
			}
		}
	}
	groupA = []int{seedA}
	groupB = []int{seedB}
	rectA, rectB := rects[seedA], rects[seedB]
	remaining := make([]int, 0, len(rects)-2)
	for i := range rects {
		if i != seedA && i != seedB {
			remaining = append(remaining, i)
		}
	}
	for len(remaining) > 0 {
		// Respect minimum fill.
		if len(groupA)+len(remaining) == minEntries {
			groupA = append(groupA, remaining...)
			for _, i := range remaining {
				rectA = rectA.Union(rects[i])
			}
			break
		}
		if len(groupB)+len(remaining) == minEntries {
			groupB = append(groupB, remaining...)
			for _, i := range remaining {
				rectB = rectB.Union(rects[i])
			}
			break
		}
		// Pick the entry with the greatest preference difference.
		bestIdx, bestDiff := 0, math.Inf(-1)
		for ri, i := range remaining {
			dA := rectA.enlargement(rects[i])
			dB := rectB.enlargement(rects[i])
			diff := math.Abs(dA - dB)
			if diff > bestDiff {
				bestDiff, bestIdx = diff, ri
			}
		}
		i := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		dA := rectA.enlargement(rects[i])
		dB := rectB.enlargement(rects[i])
		if dA < dB || (dA == dB && len(groupA) <= len(groupB)) {
			groupA = append(groupA, i)
			rectA = rectA.Union(rects[i])
		} else {
			groupB = append(groupB, i)
			rectB = rectB.Union(rects[i])
		}
	}
	return groupA, groupB
}

// Search returns all entries whose rectangles intersect q.
func (t *Tree) Search(q Rect) []Entry {
	var out []Entry
	t.search(t.root, q, &out)
	return out
}

func (t *Tree) search(n *node, q Rect, out *[]Entry) {
	t.ProbeCount++
	if n.leaf {
		for _, e := range n.entries {
			if e.Rect.Intersects(q) {
				*out = append(*out, e)
			}
		}
		return
	}
	for _, c := range n.children {
		if c.rect.Intersects(q) {
			t.search(c, q, out)
		}
	}
}

// Nearest returns up to k entries closest (center distance) to point
// (x, y), ordered nearest first. It uses best-first traversal.
func (t *Tree) Nearest(x, y float64, k int) []Entry {
	if k <= 0 || t.size == 0 {
		return nil
	}
	q := Point(x, y)
	type cand struct {
		e    Entry
		dist float64
	}
	var cands []cand
	// Simple exhaustive best-first via recursion with pruning against the
	// current k-th best distance.
	var kth = math.Inf(1)
	var visit func(n *node)
	visit = func(n *node) {
		t.ProbeCount++
		if n.leaf {
			for _, e := range n.entries {
				d := e.Rect.centerDist(q)
				if d < kth || len(cands) < k {
					cands = append(cands, cand{e, d})
					sort.Slice(cands, func(i, j int) bool { return cands[i].dist < cands[j].dist })
					if len(cands) > k {
						cands = cands[:k]
					}
					if len(cands) == k {
						kth = cands[k-1].dist
					}
				}
			}
			return
		}
		// Visit children ordered by minimum distance to q.
		order := make([]*node, len(n.children))
		copy(order, n.children)
		sort.Slice(order, func(i, j int) bool {
			return minDist(order[i].rect, x, y) < minDist(order[j].rect, x, y)
		})
		for _, c := range order {
			if minDist(c.rect, x, y) <= kth || len(cands) < k {
				visit(c)
			}
		}
	}
	visit(t.root)
	out := make([]Entry, len(cands))
	for i, c := range cands {
		out[i] = c.e
	}
	return out
}

// minDist returns the minimum distance from (x, y) to rectangle r.
func minDist(r Rect, x, y float64) float64 {
	dx := math.Max(0, math.Max(r.MinX-x, x-r.MaxX))
	dy := math.Max(0, math.Max(r.MinY-y, y-r.MaxY))
	return math.Hypot(dx, dy)
}
