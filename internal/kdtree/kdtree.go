// Package kdtree implements a k-d tree over multi-dimensional points — the
// metadata index underlying Spyglass (Leung et al., FAST'09), which the
// paper's Table I contrasts with FAST's modules: Spyglass maps the
// namespace hierarchy into a K-D tree and answers queries by hierarchical
// addressing (tree descent), where FAST uses flat-structured O(1)
// addressing. The executable Table I comparison in the experiments harness
// drives this package with vectorized file records.
package kdtree

import (
	"fmt"
	"math"
	"sort"
)

// Point is one indexed item: a position plus a caller ID.
type Point struct {
	Vec []float64
	ID  uint64
}

type node struct {
	point       Point
	axis        int
	left, right *node
}

// Tree is a static, median-balanced k-d tree.
type Tree struct {
	root *node
	dim  int
	size int
	// Visited counts nodes touched by searches — the hierarchical-
	// addressing cost Table I contrasts with FAST's constant probes.
	Visited int
}

// Build constructs a balanced tree from the points (the slice is
// reordered). All points must share one dimensionality.
func Build(points []Point) (*Tree, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("kdtree: no points")
	}
	dim := len(points[0].Vec)
	if dim == 0 {
		return nil, fmt.Errorf("kdtree: zero-dimensional points")
	}
	for i, p := range points {
		if len(p.Vec) != dim {
			return nil, fmt.Errorf("kdtree: point %d has dimension %d, want %d", i, len(p.Vec), dim)
		}
	}
	t := &Tree{dim: dim, size: len(points)}
	t.root = build(points, 0, dim)
	return t, nil
}

func build(pts []Point, depth, dim int) *node {
	if len(pts) == 0 {
		return nil
	}
	axis := depth % dim
	sort.Slice(pts, func(i, j int) bool { return pts[i].Vec[axis] < pts[j].Vec[axis] })
	mid := len(pts) / 2
	return &node{
		point: pts[mid],
		axis:  axis,
		left:  build(pts[:mid], depth+1, dim),
		right: build(pts[mid+1:], depth+1, dim),
	}
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.size }

// Dim returns the tree's dimensionality.
func (t *Tree) Dim() int { return t.dim }

// Height returns the tree height.
func (t *Tree) Height() int { return height(t.root) }

func height(n *node) int {
	if n == nil {
		return 0
	}
	l, r := height(n.left), height(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Neighbor is a kNN result.
type Neighbor struct {
	Point Point
	Dist  float64
}

// Nearest returns the k nearest points to q by Euclidean distance, nearest
// first. It returns an error on dimension mismatch.
func (t *Tree) Nearest(q []float64, k int) ([]Neighbor, error) {
	if len(q) != t.dim {
		return nil, fmt.Errorf("kdtree: query dimension %d, want %d", len(q), t.dim)
	}
	if k <= 0 {
		return nil, fmt.Errorf("kdtree: k must be positive, got %d", k)
	}
	var best []Neighbor // sorted ascending by Dist, at most k entries
	var visit func(n *node)
	visit = func(n *node) {
		if n == nil {
			return
		}
		t.Visited++
		d := dist(q, n.point.Vec)
		if len(best) < k || d < best[len(best)-1].Dist {
			best = insertNeighbor(best, Neighbor{Point: n.point, Dist: d}, k)
		}
		diff := q[n.axis] - n.point.Vec[n.axis]
		near, far := n.left, n.right
		if diff > 0 {
			near, far = n.right, n.left
		}
		visit(near)
		// Prune the far side unless the splitting plane is closer than the
		// current k-th best.
		if len(best) < k || math.Abs(diff) < best[len(best)-1].Dist {
			visit(far)
		}
	}
	visit(t.root)
	return best, nil
}

func insertNeighbor(best []Neighbor, nb Neighbor, k int) []Neighbor {
	i := sort.Search(len(best), func(i int) bool { return best[i].Dist >= nb.Dist })
	best = append(best, Neighbor{})
	copy(best[i+1:], best[i:])
	best[i] = nb
	if len(best) > k {
		best = best[:k]
	}
	return best
}

// Range returns every point whose coordinates fall inside the axis-aligned
// box [lo, hi] (inclusive). It returns an error on dimension mismatch.
func (t *Tree) Range(lo, hi []float64) ([]Point, error) {
	if len(lo) != t.dim || len(hi) != t.dim {
		return nil, fmt.Errorf("kdtree: range dimensions %d/%d, want %d", len(lo), len(hi), t.dim)
	}
	for i := range lo {
		if lo[i] > hi[i] {
			return nil, fmt.Errorf("kdtree: empty range on axis %d (%v > %v)", i, lo[i], hi[i])
		}
	}
	var out []Point
	var visit func(n *node)
	visit = func(n *node) {
		if n == nil {
			return
		}
		t.Visited++
		inside := true
		for i, x := range n.point.Vec {
			if x < lo[i] || x > hi[i] {
				inside = false
				break
			}
		}
		if inside {
			out = append(out, n.point)
		}
		if n.point.Vec[n.axis] >= lo[n.axis] {
			visit(n.left)
		}
		if n.point.Vec[n.axis] <= hi[n.axis] {
			visit(n.right)
		}
	}
	visit(t.root)
	return out, nil
}

func dist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
