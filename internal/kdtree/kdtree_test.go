package kdtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func randPoints(rng *rand.Rand, n, dim int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.Float64() * 100
		}
		pts[i] = Point{Vec: v, ID: uint64(i + 1)}
	}
	return pts
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Error("empty build should fail")
	}
	if _, err := Build([]Point{{Vec: nil}}); err == nil {
		t.Error("zero-dim should fail")
	}
	if _, err := Build([]Point{{Vec: []float64{1}}, {Vec: []float64{1, 2}}}); err == nil {
		t.Error("ragged dims should fail")
	}
}

func TestBuildBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr, err := Build(randPoints(rng, 1023, 3))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1023 || tr.Dim() != 3 {
		t.Fatalf("Len/Dim = %d/%d", tr.Len(), tr.Dim())
	}
	// Median splits give height exactly ceil(log2(n+1)) for this n.
	if h := tr.Height(); h != 10 {
		t.Errorf("height = %d, want 10 for 1023 balanced points", h)
	}
}

func TestNearestMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randPoints(rng, 500, 4)
	// Copy: Build reorders its input.
	ref := make([]Point, len(pts))
	for i := range pts {
		ref[i] = Point{Vec: append([]float64(nil), pts[i].Vec...), ID: pts[i].ID}
	}
	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		q := []float64{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
		const k = 7
		got, err := tr.Nearest(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			t.Fatalf("returned %d neighbors, want %d", len(got), k)
		}
		dists := make([]float64, len(ref))
		for i, p := range ref {
			dists[i] = dist(q, p.Vec)
		}
		sort.Float64s(dists)
		for i, nb := range got {
			if math.Abs(nb.Dist-dists[i]) > 1e-9 {
				t.Fatalf("trial %d rank %d: %v vs linear %v", trial, i, nb.Dist, dists[i])
			}
			if i > 0 && got[i].Dist < got[i-1].Dist {
				t.Fatal("neighbors not sorted")
			}
		}
	}
}

func TestNearestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr, _ := Build(randPoints(rng, 10, 2))
	if _, err := tr.Nearest([]float64{1}, 3); err == nil {
		t.Error("dimension mismatch should fail")
	}
	if _, err := tr.Nearest([]float64{1, 2}, 0); err == nil {
		t.Error("k=0 should fail")
	}
	// k > n returns all points.
	got, err := tr.Nearest([]float64{0, 0}, 50)
	if err != nil || len(got) != 10 {
		t.Errorf("k>n: %d results, %v", len(got), err)
	}
}

func TestRangeMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := randPoints(rng, 400, 3)
	ref := make([]Point, len(pts))
	for i := range pts {
		ref[i] = Point{Vec: append([]float64(nil), pts[i].Vec...), ID: pts[i].ID}
	}
	tr, _ := Build(pts)
	lo := []float64{20, 30, 10}
	hi := []float64{60, 80, 90}
	got, err := tr.Range(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]bool{}
	for _, p := range ref {
		in := true
		for i := range lo {
			if p.Vec[i] < lo[i] || p.Vec[i] > hi[i] {
				in = false
			}
		}
		if in {
			want[p.ID] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("range returned %d, linear scan %d", len(got), len(want))
	}
	for _, p := range got {
		if !want[p.ID] {
			t.Fatalf("point %d outside range returned", p.ID)
		}
	}
}

func TestRangeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr, _ := Build(randPoints(rng, 10, 2))
	if _, err := tr.Range([]float64{1}, []float64{2, 3}); err == nil {
		t.Error("dimension mismatch should fail")
	}
	if _, err := tr.Range([]float64{5, 5}, []float64{1, 9}); err == nil {
		t.Error("inverted range should fail")
	}
}

func TestVisitedGrowsLogarithmically(t *testing.T) {
	// kNN on a balanced tree should visit far fewer nodes than the corpus.
	rng := rand.New(rand.NewSource(6))
	tr, _ := Build(randPoints(rng, 4096, 3))
	tr.Visited = 0
	if _, err := tr.Nearest([]float64{50, 50, 50}, 1); err != nil {
		t.Fatal(err)
	}
	if tr.Visited >= tr.Len()/2 {
		t.Errorf("1-NN visited %d of %d nodes; pruning ineffective", tr.Visited, tr.Len())
	}
}
