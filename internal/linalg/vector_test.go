package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVectorAddSub(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, -1, 0.5}
	sum := v.Add(w)
	want := Vector{5, 1, 3.5}
	for i := range want {
		if sum[i] != want[i] {
			t.Errorf("Add[%d] = %v, want %v", i, sum[i], want[i])
		}
	}
	diff := sum.Sub(w)
	for i := range v {
		if !almostEqual(diff[i], v[i], 1e-12) {
			t.Errorf("Sub[%d] = %v, want %v", i, diff[i], v[i])
		}
	}
}

func TestVectorDotNorm(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Dot(v); got != 25 {
		t.Errorf("Dot = %v, want 25", got)
	}
	if got := v.Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := v.Norm1(); got != 7 {
		t.Errorf("Norm1 = %v, want 7", got)
	}
}

func TestVectorNormalize(t *testing.T) {
	v := Vector{3, 4}
	v.Normalize()
	if !almostEqual(v.Norm(), 1, 1e-12) {
		t.Errorf("normalized norm = %v, want 1", v.Norm())
	}
	z := Vector{0, 0}
	z.Normalize() // must not panic or produce NaN
	if z[0] != 0 || z[1] != 0 {
		t.Errorf("zero vector changed by Normalize: %v", z)
	}
}

func TestDist(t *testing.T) {
	v := Vector{0, 0}
	w := Vector{3, 4}
	if got := Dist(v, w); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := Dist1(v, w); got != 7 {
		t.Errorf("Dist1 = %v, want 7", got)
	}
}

func TestCosineSimilarity(t *testing.T) {
	tests := []struct {
		name string
		v, w Vector
		want float64
	}{
		{"parallel", Vector{1, 0}, Vector{2, 0}, 1},
		{"orthogonal", Vector{1, 0}, Vector{0, 1}, 0},
		{"opposite", Vector{1, 0}, Vector{-3, 0}, -1},
		{"zero", Vector{0, 0}, Vector{1, 1}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := CosineSimilarity(tc.v, tc.w); !almostEqual(got, tc.want, 1e-12) {
				t.Errorf("CosineSimilarity = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestMean(t *testing.T) {
	m, err := Mean([]Vector{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatalf("Mean: %v", err)
	}
	if m[0] != 2 || m[1] != 3 {
		t.Errorf("Mean = %v, want [2 3]", m)
	}
	if _, err := Mean(nil); err == nil {
		t.Error("Mean(nil) should fail")
	}
	if _, err := Mean([]Vector{{1}, {1, 2}}); err == nil {
		t.Error("Mean with mixed dimensions should fail")
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot with mismatched lengths should panic")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

// Property: ||v+w|| <= ||v|| + ||w|| (triangle inequality).
func TestTriangleInequalityProperty(t *testing.T) {
	f := func(a, b [8]float64) bool {
		v, w := Vector(a[:]), Vector(b[:])
		for i := range v {
			v[i] = clampFinite(v[i])
			w[i] = clampFinite(w[i])
		}
		return v.Add(w).Norm() <= v.Norm()+w.Norm()+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Dot is symmetric and bilinear in scaling.
func TestDotSymmetryProperty(t *testing.T) {
	f := func(a, b [6]float64, s float64) bool {
		v, w := Vector(a[:]), Vector(b[:])
		s = clampFinite(s)
		for i := range v {
			v[i] = clampFinite(v[i])
			w[i] = clampFinite(w[i])
		}
		if !almostEqual(v.Dot(w), w.Dot(v), 1e-6*(1+math.Abs(v.Dot(w)))) {
			return false
		}
		return almostEqual(v.Scale(s).Dot(w), s*v.Dot(w), 1e-3*(1+math.Abs(s*v.Dot(w))))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampFinite maps arbitrary quick-generated floats into a numerically tame
// range so that property checks are not dominated by overflow.
func clampFinite(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e3)
}
