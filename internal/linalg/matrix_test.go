package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 {
		t.Fatalf("Set/At round trip failed: %+v", m)
	}
	row := m.Row(1)
	if row[2] != 5 {
		t.Errorf("Row(1)[2] = %v, want 5", row[2])
	}
	col := m.Col(2)
	if col[0] != 0 || col[1] != 5 {
		t.Errorf("Col(2) = %v, want [0 5]", col)
	}
}

func TestIdentityMul(t *testing.T) {
	id := Identity(3)
	m := NewMatrix(3, 3)
	for i := range m.Data {
		m.Data[i] = float64(i + 1)
	}
	p, err := id.Mul(m)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	for i := range m.Data {
		if p.Data[i] != m.Data[i] {
			t.Fatalf("I*M != M at %d: %v vs %v", i, p.Data[i], m.Data[i])
		}
	}
}

func TestMulKnown(t *testing.T) {
	a, _ := FromRows([]Vector{{1, 2}, {3, 4}})
	b, _ := FromRows([]Vector{{5, 6}, {7, 8}})
	p, err := a.Mul(b)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	want := []float64{19, 22, 43, 50}
	for i, w := range want {
		if p.Data[i] != w {
			t.Errorf("Mul.Data[%d] = %v, want %v", i, p.Data[i], w)
		}
	}
}

func TestMulDimensionMismatch(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Error("Mul with mismatched inner dimensions should fail")
	}
}

func TestTranspose(t *testing.T) {
	a, _ := FromRows([]Vector{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("T dims = %dx%d, want 3x2", at.Rows, at.Cols)
	}
	for r := 0; r < a.Rows; r++ {
		for c := 0; c < a.Cols; c++ {
			if a.At(r, c) != at.At(c, r) {
				t.Fatalf("T mismatch at (%d,%d)", r, c)
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([]Vector{{1, 0}, {0, 2}, {1, 1}})
	v := a.MulVec(Vector{3, 4})
	want := Vector{3, 8, 7}
	for i := range want {
		if v[i] != want[i] {
			t.Errorf("MulVec[%d] = %v, want %v", i, v[i], want[i])
		}
	}
}

func TestCovarianceKnown(t *testing.T) {
	// Two perfectly correlated dimensions.
	samples := []Vector{{1, 2}, {2, 4}, {3, 6}}
	cov, mean, err := Covariance(samples)
	if err != nil {
		t.Fatalf("Covariance: %v", err)
	}
	if mean[0] != 2 || mean[1] != 4 {
		t.Errorf("mean = %v, want [2 4]", mean)
	}
	// var(x)=1, var(y)=4, cov(x,y)=2 (sample covariance, n-1 divisor).
	want := [][]float64{{1, 2}, {2, 4}}
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			if !almostEqual(cov.At(r, c), want[r][c], 1e-12) {
				t.Errorf("cov(%d,%d) = %v, want %v", r, c, cov.At(r, c), want[r][c])
			}
		}
	}
	if !cov.IsSymmetric(0) {
		t.Error("covariance must be symmetric")
	}
}

func TestCovarianceErrors(t *testing.T) {
	if _, _, err := Covariance([]Vector{{1, 2}}); err == nil {
		t.Error("Covariance with 1 sample should fail")
	}
	if _, _, err := Covariance([]Vector{{1, 2}, {1}}); err == nil {
		t.Error("Covariance with mixed dims should fail")
	}
}

func TestCovariancePSD(t *testing.T) {
	// A covariance matrix must be positive semi-definite: v' C v >= 0.
	rng := rand.New(rand.NewSource(7))
	samples := make([]Vector, 50)
	for i := range samples {
		v := NewVector(6)
		for j := range v {
			v[j] = rng.NormFloat64() * float64(j+1)
		}
		samples[i] = v
	}
	cov, _, err := Covariance(samples)
	if err != nil {
		t.Fatalf("Covariance: %v", err)
	}
	for trial := 0; trial < 100; trial++ {
		v := NewVector(6)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		if q := v.Dot(cov.MulVec(v)); q < -1e-9 {
			t.Fatalf("covariance not PSD: v'Cv = %v", q)
		}
	}
}

func TestFromRowsErrors(t *testing.T) {
	if _, err := FromRows(nil); err == nil {
		t.Error("FromRows(nil) should fail")
	}
	if _, err := FromRows([]Vector{{1}, {1, 2}}); err == nil {
		t.Error("FromRows with ragged rows should fail")
	}
}

func TestIsSymmetric(t *testing.T) {
	m, _ := FromRows([]Vector{{1, 2}, {2, 1}})
	if !m.IsSymmetric(0) {
		t.Error("symmetric matrix reported asymmetric")
	}
	m.Set(0, 1, 3)
	if m.IsSymmetric(1e-9) {
		t.Error("asymmetric matrix reported symmetric")
	}
	rect := NewMatrix(2, 3)
	if rect.IsSymmetric(math.Inf(1)) {
		t.Error("rectangular matrix cannot be symmetric")
	}
}
