// Package linalg provides the small dense linear-algebra kernel used by the
// FAST reproduction: vectors, row-major matrices, covariance estimation, a
// Jacobi eigensolver and principal-components analysis (PCA).
//
// PCA is the core of the PCA-SIFT descriptor (Ke & Sukthankar, CVPR'04) that
// the paper uses for its Feature Extraction module: raw gradient-patch
// descriptors are projected onto the top principal components of a training
// sample, which both compacts the representation and discards loosely
// correlated dimensions.
//
// Everything here is self-contained (stdlib only) and deterministic.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Vector is a dense float64 vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Add returns v + w. It panics if lengths differ.
func (v Vector) Add(w Vector) Vector {
	mustSameLen(len(v), len(w))
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w. It panics if lengths differ.
func (v Vector) Sub(w Vector) Vector {
	mustSameLen(len(v), len(w))
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// AddInPlace adds w into v.
func (v Vector) AddInPlace(w Vector) {
	mustSameLen(len(v), len(w))
	for i := range v {
		v[i] += w[i]
	}
}

// Scale returns s*v.
func (v Vector) Scale(s float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = s * v[i]
	}
	return out
}

// ScaleInPlace multiplies v by s.
func (v Vector) ScaleInPlace(s float64) {
	for i := range v {
		v[i] *= s
	}
}

// Dot returns the inner product of v and w. It panics if lengths differ.
func (v Vector) Dot(w Vector) float64 {
	mustSameLen(len(v), len(w))
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm returns the Euclidean (l2) norm of v.
func (v Vector) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm1 returns the l1 norm of v.
func (v Vector) Norm1() float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// Normalize scales v to unit l2 norm in place. A zero vector is unchanged.
func (v Vector) Normalize() {
	n := v.Norm()
	if n == 0 {
		return
	}
	v.ScaleInPlace(1 / n)
}

// Dist returns the Euclidean distance between v and w.
func Dist(v, w Vector) float64 {
	mustSameLen(len(v), len(w))
	var s float64
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Dist1 returns the Manhattan (l1) distance between v and w.
func Dist1(v, w Vector) float64 {
	mustSameLen(len(v), len(w))
	var s float64
	for i := range v {
		s += math.Abs(v[i] - w[i])
	}
	return s
}

// CosineSimilarity returns the cosine of the angle between v and w, or 0 if
// either vector is zero.
func CosineSimilarity(v, w Vector) float64 {
	nv, nw := v.Norm(), w.Norm()
	if nv == 0 || nw == 0 {
		return 0
	}
	return v.Dot(w) / (nv * nw)
}

// Mean returns the component-wise mean of the vectors. It returns an error
// if vecs is empty or dimensions disagree.
func Mean(vecs []Vector) (Vector, error) {
	if len(vecs) == 0 {
		return nil, errors.New("linalg: mean of empty set")
	}
	d := len(vecs[0])
	m := NewVector(d)
	for _, v := range vecs {
		if len(v) != d {
			return nil, fmt.Errorf("linalg: mixed dimensions %d and %d", d, len(v))
		}
		m.AddInPlace(v)
	}
	m.ScaleInPlace(1 / float64(len(vecs)))
	return m, nil
}

func mustSameLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("linalg: dimension mismatch %d != %d", a, b))
	}
}
