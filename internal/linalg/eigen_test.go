package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestEigenSymDiagonal(t *testing.T) {
	m, _ := FromRows([]Vector{{3, 0}, {0, 1}})
	vals, vecs, err := EigenSym(m)
	if err != nil {
		t.Fatalf("EigenSym: %v", err)
	}
	if !almostEqual(vals[0], 3, 1e-9) || !almostEqual(vals[1], 1, 1e-9) {
		t.Errorf("eigenvalues = %v, want [3 1]", vals)
	}
	// First eigenvector should align with e1.
	if math.Abs(vecs.At(0, 0)) < 0.99 {
		t.Errorf("first eigenvector %v not aligned with e1", vecs.Col(0))
	}
}

func TestEigenSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	m, _ := FromRows([]Vector{{2, 1}, {1, 2}})
	vals, vecs, err := EigenSym(m)
	if err != nil {
		t.Fatalf("EigenSym: %v", err)
	}
	if !almostEqual(vals[0], 3, 1e-9) || !almostEqual(vals[1], 1, 1e-9) {
		t.Errorf("eigenvalues = %v, want [3 1]", vals)
	}
	// Verify A v = lambda v for each pair.
	for i := 0; i < 2; i++ {
		v := vecs.Col(i)
		av := m.MulVec(v)
		for j := range av {
			if !almostEqual(av[j], vals[i]*v[j], 1e-8) {
				t.Errorf("A v != lambda v for pair %d: %v vs %v", i, av, v.Scale(vals[i]))
			}
		}
	}
}

func TestEigenSymRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 12
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			x := rng.NormFloat64()
			m.Set(i, j, x)
			m.Set(j, i, x)
		}
	}
	vals, vecs, err := EigenSym(m)
	if err != nil {
		t.Fatalf("EigenSym: %v", err)
	}
	// Eigenvalues sorted descending.
	for i := 1; i < n; i++ {
		if vals[i] > vals[i-1]+1e-9 {
			t.Fatalf("eigenvalues not sorted: %v", vals)
		}
	}
	// Residual check and orthonormality.
	for i := 0; i < n; i++ {
		v := vecs.Col(i)
		if !almostEqual(v.Norm(), 1, 1e-6) {
			t.Fatalf("eigenvector %d not unit norm: %v", i, v.Norm())
		}
		av := m.MulVec(v)
		res := av.Sub(v.Scale(vals[i])).Norm()
		if res > 1e-6 {
			t.Fatalf("residual for pair %d too large: %v", i, res)
		}
		for j := i + 1; j < n; j++ {
			if dot := v.Dot(vecs.Col(j)); math.Abs(dot) > 1e-6 {
				t.Fatalf("eigenvectors %d,%d not orthogonal: %v", i, j, dot)
			}
		}
	}
	// Trace is preserved: sum of eigenvalues == trace.
	var trace, sum float64
	for i := 0; i < n; i++ {
		trace += m.At(i, i)
		sum += vals[i]
	}
	if !almostEqual(trace, sum, 1e-8) {
		t.Errorf("trace %v != eigenvalue sum %v", trace, sum)
	}
}

func TestEigenSymErrors(t *testing.T) {
	if _, _, err := EigenSym(NewMatrix(2, 3)); err == nil {
		t.Error("non-square matrix should fail")
	}
	asym, _ := FromRows([]Vector{{1, 2}, {3, 4}})
	if _, _, err := EigenSym(asym); err == nil {
		t.Error("asymmetric matrix should fail")
	}
}
