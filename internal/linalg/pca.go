package linalg

import (
	"errors"
	"fmt"
)

// PCA is a fitted principal-components projection: it maps input vectors of
// dimension InputDim onto the top OutputDim principal components of the
// training sample. This is the dimensionality-reduction step of PCA-SIFT.
type PCA struct {
	InputDim  int
	OutputDim int
	Mean      Vector  // training-sample mean, length InputDim
	Basis     *Matrix // OutputDim x InputDim; rows are principal axes
	Explained Vector  // fraction of variance captured per component
}

// FitPCA learns a PCA projection from training samples down to outDim
// dimensions. It returns an error if there are fewer than two samples or
// outDim is out of range.
func FitPCA(samples []Vector, outDim int) (*PCA, error) {
	if len(samples) < 2 {
		return nil, errors.New("linalg: FitPCA requires at least 2 samples")
	}
	inDim := len(samples[0])
	if outDim <= 0 || outDim > inDim {
		return nil, fmt.Errorf("linalg: output dimension %d out of range (1..%d)", outDim, inDim)
	}
	cov, mean, err := Covariance(samples)
	if err != nil {
		return nil, err
	}
	vals, vecs, err := EigenSym(cov)
	if err != nil {
		return nil, err
	}
	var total float64
	for _, v := range vals {
		if v > 0 {
			total += v
		}
	}
	basis := NewMatrix(outDim, inDim)
	explained := NewVector(outDim)
	for c := 0; c < outDim; c++ {
		for r := 0; r < inDim; r++ {
			basis.Set(c, r, vecs.At(r, c))
		}
		if total > 0 && vals[c] > 0 {
			explained[c] = vals[c] / total
		}
	}
	return &PCA{
		InputDim:  inDim,
		OutputDim: outDim,
		Mean:      mean,
		Basis:     basis,
		Explained: explained,
	}, nil
}

// Project maps v onto the principal components. It returns an error if the
// input dimension does not match the fitted projection.
func (p *PCA) Project(v Vector) (Vector, error) {
	out := NewVector(p.OutputDim)
	if err := p.ProjectInto(out, v); err != nil {
		return nil, err
	}
	return out, nil
}

// ProjectInto projects v onto the principal components, writing the result
// into dst (length OutputDim). It allocates nothing: the mean-centering that
// Project materializes as a temporary vector is folded into the
// basis-row dot products, which keeps per-descriptor projection off the
// allocator on the hot feature-extraction path.
func (p *PCA) ProjectInto(dst, v Vector) error {
	if len(v) != p.InputDim {
		return fmt.Errorf("linalg: project dimension %d, want %d", len(v), p.InputDim)
	}
	if len(dst) != p.OutputDim {
		return fmt.Errorf("linalg: projection target dimension %d, want %d", len(dst), p.OutputDim)
	}
	cols := p.Basis.Cols
	for r := 0; r < p.OutputDim; r++ {
		row := p.Basis.Data[r*cols : (r+1)*cols]
		var s float64
		for c, x := range v {
			s += row[c] * (x - p.Mean[c])
		}
		dst[r] = s
	}
	return nil
}

// ProjectAll maps each vector in vs; it stops at the first error.
func (p *PCA) ProjectAll(vs []Vector) ([]Vector, error) {
	out := make([]Vector, len(vs))
	for i, v := range vs {
		pv, err := p.Project(v)
		if err != nil {
			return nil, fmt.Errorf("linalg: sample %d: %w", i, err)
		}
		out[i] = pv
	}
	return out, nil
}

// TotalExplained returns the total fraction of variance captured by the
// retained components.
func (p *PCA) TotalExplained() float64 {
	var s float64
	for _, e := range p.Explained {
		s += e
	}
	return s
}
