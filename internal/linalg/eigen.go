package linalg

import (
	"errors"
	"math"
	"sort"
)

// EigenSym computes the eigenvalues and eigenvectors of a symmetric matrix
// using the cyclic Jacobi rotation method. Eigenpairs are returned sorted by
// descending eigenvalue; column i of the returned matrix is the eigenvector
// for eigenvalue i.
//
// Jacobi is O(d^3) per sweep but extremely robust, which is plenty for the
// small descriptor covariances (d <= a few hundred) used by PCA-SIFT.
func EigenSym(a *Matrix) (values Vector, vectors *Matrix, err error) {
	if a.Rows != a.Cols {
		return nil, nil, errors.New("linalg: EigenSym requires a square matrix")
	}
	if !a.IsSymmetric(1e-9) {
		return nil, nil, errors.New("linalg: EigenSym requires a symmetric matrix")
	}
	n := a.Rows
	m := a.Clone()
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(m)
		if off < 1e-12 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-15 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				rotate(m, v, p, q, c, s)
			}
		}
	}

	vals := NewVector(n)
	for i := 0; i < n; i++ {
		vals[i] = m.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] > vals[idx[j]] })
	sortedVals := NewVector(n)
	sortedVecs := NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, sortedVecs, nil
}

// rotate applies a Jacobi rotation in the (p,q) plane to m and accumulates
// the rotation into v.
func rotate(m, v *Matrix, p, q int, c, s float64) {
	n := m.Rows
	for i := 0; i < n; i++ {
		mip, miq := m.At(i, p), m.At(i, q)
		m.Set(i, p, c*mip-s*miq)
		m.Set(i, q, s*mip+c*miq)
	}
	for i := 0; i < n; i++ {
		mpi, mqi := m.At(p, i), m.At(q, i)
		m.Set(p, i, c*mpi-s*mqi)
		m.Set(q, i, s*mpi+c*mqi)
	}
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

func offDiagNorm(m *Matrix) float64 {
	var s float64
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			if r != c {
				s += m.At(r, c) * m.At(r, c)
			}
		}
	}
	return math.Sqrt(s)
}
