package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// makeAnisotropic generates samples stretched along a known direction so the
// first principal component is predictable.
func makeAnisotropic(rng *rand.Rand, n, d int) []Vector {
	samples := make([]Vector, n)
	for i := range samples {
		v := NewVector(d)
		main := rng.NormFloat64() * 10 // dominant variance along axis 0
		v[0] = main
		for j := 1; j < d; j++ {
			v[j] = rng.NormFloat64() * 0.1
		}
		samples[i] = v
	}
	return samples
}

func TestFitPCARecoversDominantAxis(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := makeAnisotropic(rng, 200, 8)
	p, err := FitPCA(samples, 2)
	if err != nil {
		t.Fatalf("FitPCA: %v", err)
	}
	axis := p.Basis.Row(0)
	if math.Abs(axis[0]) < 0.99 {
		t.Errorf("first principal axis %v not aligned with dominant direction", axis)
	}
	if p.Explained[0] < 0.95 {
		t.Errorf("first component explains %v, want > 0.95", p.Explained[0])
	}
	if te := p.TotalExplained(); te < p.Explained[0] || te > 1+1e-9 {
		t.Errorf("TotalExplained = %v out of range", te)
	}
}

func TestPCAProjectionPreservesNeighborhoods(t *testing.T) {
	// Points close in input space should remain relatively close after PCA
	// when the discarded dimensions carry little variance.
	rng := rand.New(rand.NewSource(2))
	samples := makeAnisotropic(rng, 300, 16)
	p, err := FitPCA(samples, 4)
	if err != nil {
		t.Fatalf("FitPCA: %v", err)
	}
	a := samples[0]
	near := a.Clone()
	near[0] += 0.01
	far := a.Clone()
	far[0] += 25

	pa, _ := p.Project(a)
	pn, _ := p.Project(near)
	pf, _ := p.Project(far)
	if Dist(pa, pn) >= Dist(pa, pf) {
		t.Errorf("projection broke neighborhood order: near %v, far %v", Dist(pa, pn), Dist(pa, pf))
	}
}

func TestPCAProjectDimensionError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p, err := FitPCA(makeAnisotropic(rng, 50, 4), 2)
	if err != nil {
		t.Fatalf("FitPCA: %v", err)
	}
	if _, err := p.Project(NewVector(5)); err == nil {
		t.Error("Project with wrong dimension should fail")
	}
	if _, err := p.ProjectAll([]Vector{NewVector(4), NewVector(3)}); err == nil {
		t.Error("ProjectAll with a bad sample should fail")
	}
}

func TestFitPCAErrors(t *testing.T) {
	if _, err := FitPCA([]Vector{{1, 2}}, 1); err == nil {
		t.Error("FitPCA with 1 sample should fail")
	}
	if _, err := FitPCA([]Vector{{1, 2}, {3, 4}}, 0); err == nil {
		t.Error("FitPCA with outDim 0 should fail")
	}
	if _, err := FitPCA([]Vector{{1, 2}, {3, 4}}, 3); err == nil {
		t.Error("FitPCA with outDim > inDim should fail")
	}
}

func TestPCAProjectionOfMeanIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	samples := makeAnisotropic(rng, 100, 6)
	p, err := FitPCA(samples, 3)
	if err != nil {
		t.Fatalf("FitPCA: %v", err)
	}
	proj, err := p.Project(p.Mean)
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if proj.Norm() > 1e-9 {
		t.Errorf("projection of mean = %v, want 0", proj)
	}
}
