package linalg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// Property: (A B)^T == B^T A^T.
func TestTransposeOfProductProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMatrix(rng, 4, 6)
		b := randomMatrix(rng, 6, 3)
		ab, err := a.Mul(b)
		if err != nil {
			return false
		}
		left := ab.T()
		right, err := b.T().Mul(a.T())
		if err != nil {
			return false
		}
		for i := range left.Data {
			if !almostEqual(left.Data[i], right.Data[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: matrix-vector multiplication distributes over vector addition.
func TestMulVecDistributesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMatrix(rng, 5, 7)
		v := NewVector(7)
		w := NewVector(7)
		for i := range v {
			v[i] = rng.NormFloat64()
			w[i] = rng.NormFloat64()
		}
		left := m.MulVec(v.Add(w))
		right := m.MulVec(v).Add(m.MulVec(w))
		for i := range left {
			if !almostEqual(left[i], right[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: double transpose is the identity.
func TestDoubleTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMatrix(rng, 3, 8)
		tt := m.T().T()
		for i := range m.Data {
			if m.Data[i] != tt.Data[i] {
				return false
			}
		}
		return tt.Rows == m.Rows && tt.Cols == m.Cols
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: PCA projection is affine — project(a) - project(b) equals the
// basis applied to (a - b), independent of the mean.
func TestPCAProjectionAffineProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	samples := makeAnisotropic(rng, 80, 6)
	p, err := FitPCA(samples, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := NewVector(6)
		b := NewVector(6)
		for i := range a {
			a[i] = r.NormFloat64() * 3
			b[i] = r.NormFloat64() * 3
		}
		pa, err1 := p.Project(a)
		pb, err2 := p.Project(b)
		if err1 != nil || err2 != nil {
			return false
		}
		direct := p.Basis.MulVec(a.Sub(b))
		diff := pa.Sub(pb)
		for i := range diff {
			if !almostEqual(diff[i], direct[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
