package linalg

import (
	"errors"
	"fmt"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, Data[r*Cols+c]
}

// NewMatrix returns a zero Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative matrix dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// FromRows builds a matrix whose rows are the given vectors.
func FromRows(rows []Vector) (*Matrix, error) {
	if len(rows) == 0 {
		return nil, errors.New("linalg: FromRows of empty set")
	}
	d := len(rows[0])
	m := NewMatrix(len(rows), d)
	for r, v := range rows {
		if len(v) != d {
			return nil, fmt.Errorf("linalg: row %d has dimension %d, want %d", r, len(v), d)
		}
		copy(m.Data[r*d:(r+1)*d], v)
	}
	return m, nil
}

// At returns the element at (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set stores x at (r, c).
func (m *Matrix) Set(r, c int, x float64) { m.Data[r*m.Cols+c] = x }

// Row returns row r as a Vector sharing the underlying storage.
func (m *Matrix) Row(r int) Vector { return Vector(m.Data[r*m.Cols : (r+1)*m.Cols]) }

// Col returns a copy of column c.
func (m *Matrix) Col(c int) Vector {
	out := NewVector(m.Rows)
	for r := 0; r < m.Rows; r++ {
		out[r] = m.At(r, c)
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			t.Set(c, r, m.At(r, c))
		}
	}
	return t
}

// Mul returns m * b. It returns an error on inner-dimension mismatch.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("linalg: cannot multiply %dx%d by %dx%d", m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(m.Rows, b.Cols)
	for r := 0; r < m.Rows; r++ {
		mrow := m.Data[r*m.Cols : (r+1)*m.Cols]
		orow := out.Data[r*b.Cols : (r+1)*b.Cols]
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for c, bv := range brow {
				orow[c] += mv * bv
			}
		}
	}
	return out, nil
}

// MulVec returns m * v. It panics if len(v) != m.Cols.
func (m *Matrix) MulVec(v Vector) Vector {
	mustSameLen(m.Cols, len(v))
	out := NewVector(m.Rows)
	for r := 0; r < m.Rows; r++ {
		out[r] = Vector(m.Data[r*m.Cols : (r+1)*m.Cols]).Dot(v)
	}
	return out
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for r := 0; r < m.Rows; r++ {
		for c := r + 1; c < m.Cols; c++ {
			d := m.At(r, c) - m.At(c, r)
			if d > tol || d < -tol {
				return false
			}
		}
	}
	return true
}

// Covariance returns the d x d sample covariance matrix of the rows of the
// sample matrix (n rows of dimension d), along with the sample mean.
// It returns an error when n < 2.
func Covariance(samples []Vector) (*Matrix, Vector, error) {
	n := len(samples)
	if n < 2 {
		return nil, nil, errors.New("linalg: covariance requires at least 2 samples")
	}
	mean, err := Mean(samples)
	if err != nil {
		return nil, nil, err
	}
	d := len(mean)
	cov := NewMatrix(d, d)
	centered := NewVector(d)
	for _, s := range samples {
		if len(s) != d {
			return nil, nil, fmt.Errorf("linalg: sample dimension %d, want %d", len(s), d)
		}
		for i := range s {
			centered[i] = s[i] - mean[i]
		}
		for i := 0; i < d; i++ {
			ci := centered[i]
			if ci == 0 {
				continue
			}
			row := cov.Data[i*d : (i+1)*d]
			for j := i; j < d; j++ {
				row[j] += ci * centered[j]
			}
		}
	}
	inv := 1 / float64(n-1)
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			v := cov.At(i, j) * inv
			cov.Set(i, j, v)
			cov.Set(j, i, v)
		}
	}
	return cov, mean, nil
}
