package experiments

import (
	"time"

	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/store"
)

// PaperCluster describes the testbed of Section IV-A.
type PaperCluster struct {
	Nodes int
	Cores int
}

// DefaultPaperCluster is the 256-node, 32-core testbed.
func DefaultPaperCluster() PaperCluster { return PaperCluster{Nodes: 256, Cores: 32} }

// paperPhotos returns the unscaled corpus size for a dataset name.
func paperPhotos(dataset string) int {
	switch dataset {
	case "Wuhan":
		return 21_000_000
	case "Shanghai":
		return 39_000_000
	default:
		return 0
	}
}

// perPhoto extracts average per-photo costs from a scaled build.
type perPhoto struct {
	FeatureCPU  time.Duration // real feature-extraction CPU
	IndexCPU    time.Duration // real index-maintenance CPU
	StorageTime time.Duration // modeled storage latency
	ComputeTime time.Duration // modeled correlation-identification CPU
	IndexBytes  float64       // index footprint per photo
}

func perPhotoCosts(bp *builtPipeline) perPhoto {
	n := bp.build.Photos
	if n == 0 {
		return perPhoto{}
	}
	div := time.Duration(n)
	return perPhoto{
		FeatureCPU:  bp.build.FeatureTime / div,
		IndexCPU:    (bp.build.IndexTime + bp.build.SummaryTime) / div,
		StorageTime: bp.buildSim.StorageTime / div,
		ComputeTime: bp.buildSim.ComputeTime / div,
		IndexBytes:  float64(bp.p.IndexBytes()) / float64(n),
	}
}

// projectBuild projects a scaled build to the paper's corpus and cluster:
// CPU work parallelizes over nodes*cores and storage work over one disk per
// node. The measured per-photo correlation-identification cost is carried
// over as-is rather than re-scaled quadratically: the paper's own Figure 3
// numbers (825s to index 21M photos with SIFT) imply its production
// pipeline bounds the per-photo comparison work (e.g. by sharding and
// by comparing within candidate partitions), so the per-photo cost is
// treated as corpus-size-independent at cluster scale.
//
// It returns (featureRepresentation, indexStorage), Figure 3's two bars.
func projectBuild(bp *builtPipeline, dataset string, cluster PaperCluster) (time.Duration, time.Duration) {
	pp := perPhotoCosts(bp)
	paperN := float64(paperPhotos(dataset))
	cpuLanes := float64(cluster.Nodes * cluster.Cores)
	diskLanes := float64(cluster.Nodes)

	feature := time.Duration(float64(pp.FeatureCPU) * paperN / cpuLanes)
	correlation := float64(pp.ComputeTime) * paperN / cpuLanes
	storage := float64(pp.StorageTime)*paperN/diskLanes + float64(pp.IndexCPU)*paperN/cpuLanes
	return feature, time.Duration(storage + correlation)
}

// queryCost is the per-query service model at paper scale for one scheme.
type queryCost struct {
	Service time.Duration // service time on a node
	// Serialized marks schemes whose per-node work is effectively
	// single-threaded (RNPE's MNPG grouping pass), so concurrent requests
	// queue instead of spreading over cores.
	Serialized bool
}

// projectQuery derives the paper-scale per-query service time for a scheme
// from measured scaled costs.
//
//   - SIFT / PCA-SIFT: each node scans its feature shard from the SQL
//     database (sequential transfer of shardBytes) and brute-force matches
//     (measured real match CPU per stored photo, scaled to the shard).
//   - RNPE: O(log shard) index-page reads plus an MNPG grouping pass over
//     the proximity group; the grouping is serialized per node.
//   - FAST: the measured real query latency — flat addressing makes it
//     independent of corpus size (candidate group size is bounded by the
//     correlated group, not the corpus).
func projectQuery(scheme string, measured measuredQuery, dataset string, cluster PaperCluster) queryCost {
	paperN := float64(paperPhotos(dataset))
	shardN := paperN / float64(cluster.Nodes)
	disk := store.HDD7200()

	switch scheme {
	case "SIFT", "PCA-SIFT":
		shardBytes := int64(measured.perPhotoBytes * shardN)
		scan := disk.SequentialRead(shardBytes)
		match := time.Duration(float64(measured.matchPerPhoto) * shardN)
		return queryCost{Service: scan + match}
	case "RNPE":
		pages := 1
		for n := shardN; n > 256; n /= 256 {
			pages++
		}
		idx := time.Duration(pages) * disk.RandomRead(8192)
		group := time.Duration(float64(measured.matchPerPhoto) * measured.groupFrac * shardN)
		return queryCost{Service: idx + group, Serialized: true}
	case "FAST":
		return queryCost{Service: measured.realQuery}
	default:
		return queryCost{}
	}
}

// measuredQuery carries the scaled-run measurements projectQuery consumes.
type measuredQuery struct {
	perPhotoBytes float64       // index bytes per stored photo
	matchPerPhoto time.Duration // real per-stored-photo match (or group) CPU
	groupFrac     float64       // fraction of the shard touched by grouping
	realQuery     time.Duration // real end-to-end query latency (FAST)
}

// simCostDelta subtracts two SimCost snapshots.
func simCostDelta(after, before core.SimCost) core.SimCost {
	return core.SimCost{
		StorageTime: after.StorageTime - before.StorageTime,
		ComputeTime: after.ComputeTime - before.ComputeTime,
		Accesses:    after.Accesses - before.Accesses,
		BytesMoved:  after.BytesMoved - before.BytesMoved,
	}
}
