package experiments

import (
	"fmt"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/driver"
)

// queryRow is one worker-count measurement of BENCH_query.json. The qps
// and latency columns time only the search back half (SA candidate
// collection, CHS fetch, ranking) replayed through QuerySummaryBatch:
// per-query feature extraction is hoisted out of the timed region (its
// cost is the report-level fe_mean_ns) so the row tracks what the worker
// pool actually parallelizes. Earlier baselines timed FE inside the loop,
// which flattened the scaling curve on few-core hosts and let search-path
// regressions hide inside FE jitter.
type queryRow struct {
	Workers int     `json:"workers"`
	QPS     float64 `json:"qps"`
	MeanNs  int64   `json:"mean_ns"`
	P50Ns   int64   `json:"p50_ns"`
	P90Ns   int64   `json:"p90_ns"`
	P95Ns   int64   `json:"p95_ns"`
	P99Ns   int64   `json:"p99_ns"`
	Speedup float64 `json:"speedup"` // vs the single-worker row
	// EndToEndQPS is the same worker count through the unprepared
	// QueryBatch path (FE inside the timed region) — the number a serving
	// front-end that extracts features per request actually sustains.
	EndToEndQPS float64 `json:"end_to_end_qps"`
}

// queryReport is the BENCH_query.json document — the query-path throughput
// baseline CI tracks run over run. MaxProcs records the hardware parallelism
// the run had (GOMAXPROCS): worker-scaling numbers are only comparable
// between runs with the same value, and the perf gate warns when they differ.
// FEMeanNs is the per-query front-half cost (FE+SM), measured once outside
// the timed region and shared by every row.
type queryReport struct {
	Corpus   int        `json:"corpus_photos"`
	Queries  int        `json:"queries"`
	TopK     int        `json:"topk"`
	MaxProcs int        `json:"maxprocs"`
	FEMeanNs int64      `json:"fe_mean_ns"`
	Rows     []queryRow `json:"rows"`
}

// RunThroughput measures serving throughput of the sharded concurrent
// query engine with a per-stage split. The front half of the query
// pipeline (FE → SM) is computed once per probe outside the timed region;
// the timed region replays only the search back half (SA candidate
// collection → CHS fetch → similarity verification) through
// Engine.QuerySummaryBatch at increasing worker counts. That back half is
// the part the sharded index parallelizes, so its scaling curve is the
// regression signal CI tracks. Each row also reports the end-to-end
// QueryBatch throughput (FE timed per query) — the gap between the two
// columns is the per-request FE tax a serving front-end pays.
func RunThroughput(e *Env) error {
	w := e.Opts().Out
	header(w, "Throughput: concurrent query engine (QuerySummaryBatch over sharded index)")

	bp, err := e.Pipeline("Wuhan", "FAST")
	if err != nil {
		return err
	}
	eng, ok := bp.p.(*core.Engine)
	if !ok {
		return fmt.Errorf("experiments: FAST pipeline is not a *core.Engine")
	}
	ds, err := e.Dataset("Wuhan")
	if err != nil {
		return err
	}
	nq := 4 * e.Opts().Queries
	if nq < 16 {
		nq = 16
	}
	qs, err := ds.Queries(nq, e.Opts().Seed+5)
	if err != nil {
		return err
	}

	lshShards, tableShards := eng.Shards()
	fmt.Fprintf(w, "host: %d hardware thread(s); index: %d shard(s) per LSH band, %d flat-table shard(s)\n\n",
		runtime.NumCPU(), lshShards, tableShards)

	workerSet := map[int]bool{1: true, 2: true, 4: true, runtime.GOMAXPROCS(0): true}
	workers := make([]int, 0, len(workerSet))
	for c := range workerSet {
		workers = append(workers, c)
	}
	sort.Ints(workers)

	report := queryReport{Corpus: len(ds.Photos), Queries: len(qs), TopK: 50, MaxProcs: runtime.GOMAXPROCS(0)}
	fmt.Fprintf(w, "%-8s | %12s %10s %10s %10s | %12s\n",
		"workers", "queries/sec", "mean", "p90", "speedup", "end-to-end")
	var base float64
	for _, c := range workers {
		d := driver.Driver{Clients: c, TopK: 50}
		prep, err := d.RunBatchPrepared(eng, ds, qs)
		if err != nil {
			return err
		}
		if prep.Failures > 0 {
			return fmt.Errorf("experiments: %d of %d prepared queries failed", prep.Failures, prep.Queries)
		}
		full, err := d.RunBatch(eng, ds, qs)
		if err != nil {
			return err
		}
		if full.Failures > 0 {
			return fmt.Errorf("experiments: %d of %d batch queries failed", full.Failures, full.Queries)
		}
		if c == workers[0] {
			base = prep.Throughput
		}
		if report.FEMeanNs == 0 {
			report.FEMeanNs = prep.PrepMean.Nanoseconds()
		}
		fmt.Fprintf(w, "%-8d | %12.1f %10s %10s %9.1fx | %10.1f/s\n",
			c, prep.Throughput, fmtDur(prep.Latency.Mean), fmtDur(prep.Latency.P90),
			prep.Throughput/base, full.Throughput)
		report.Rows = append(report.Rows, queryRow{
			Workers:     c,
			QPS:         prep.Throughput,
			MeanNs:      prep.Latency.Mean.Nanoseconds(),
			P50Ns:       prep.Latency.Median.Nanoseconds(),
			P90Ns:       prep.Latency.P90.Nanoseconds(),
			P95Ns:       prep.Latency.P95.Nanoseconds(),
			P99Ns:       prep.Latency.P99.Nanoseconds(),
			Speedup:     prep.Throughput / base,
			EndToEndQPS: full.Throughput,
		})
	}

	path := filepath.Join(e.Opts().ArtifactDir, "BENCH_query.json")
	if err := writeJSONReport(path, report); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nper-stage split: FE+SM costs %s per query, precomputed outside the\ntimed region; timed rows cover only the search back half, which is\nwhat the shard fan-out parallelizes. end-to-end re-times the same\nworkload with FE inside the loop. batch results are byte-identical to\nthe sequential path at every worker count;\nmachine-readable baseline written to %s\n",
		fmtDur(time.Duration(report.FEMeanNs)), path)
	return nil
}
