package experiments

import (
	"fmt"
	"path/filepath"
	"runtime"
	"sort"

	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/driver"
)

// queryRow is one worker-count measurement of BENCH_query.json.
type queryRow struct {
	Workers int     `json:"workers"`
	QPS     float64 `json:"qps"`
	MeanNs  int64   `json:"mean_ns"`
	P50Ns   int64   `json:"p50_ns"`
	P90Ns   int64   `json:"p90_ns"`
	P95Ns   int64   `json:"p95_ns"`
	P99Ns   int64   `json:"p99_ns"`
	Speedup float64 `json:"speedup"` // vs the single-worker row
}

// queryReport is the BENCH_query.json document — the query-path throughput
// baseline CI tracks run over run. MaxProcs records the hardware parallelism
// the run had (GOMAXPROCS): worker-scaling numbers are only comparable
// between runs with the same value, and the perf gate warns when they differ.
type queryReport struct {
	Corpus   int        `json:"corpus_photos"`
	Queries  int        `json:"queries"`
	TopK     int        `json:"topk"`
	MaxProcs int        `json:"maxprocs"`
	Rows     []queryRow `json:"rows"`
}

// RunThroughput measures end-to-end serving throughput of the sharded
// concurrent query engine: the full query pipeline (FE → SM → SA candidate
// collection → CHS fetch → similarity verification) replayed through
// Engine.QueryBatch at increasing worker counts. Unlike Figure 7, which
// isolates the flat table's batched lookups, this is the whole query path —
// the number a serving front-end actually sustains. Speedup beyond one
// worker requires spare hardware threads; the shard counts show how far the
// locks would let it scale.
func RunThroughput(e *Env) error {
	w := e.Opts().Out
	header(w, "Throughput: concurrent query engine (QueryBatch over sharded index)")

	bp, err := e.Pipeline("Wuhan", "FAST")
	if err != nil {
		return err
	}
	eng, ok := bp.p.(*core.Engine)
	if !ok {
		return fmt.Errorf("experiments: FAST pipeline is not a *core.Engine")
	}
	ds, err := e.Dataset("Wuhan")
	if err != nil {
		return err
	}
	nq := 4 * e.Opts().Queries
	if nq < 16 {
		nq = 16
	}
	qs, err := ds.Queries(nq, e.Opts().Seed+5)
	if err != nil {
		return err
	}

	lshShards, tableShards := eng.Shards()
	fmt.Fprintf(w, "host: %d hardware thread(s); index: %d shard(s) per LSH band, %d flat-table shard(s)\n\n",
		runtime.NumCPU(), lshShards, tableShards)

	workerSet := map[int]bool{1: true, 2: true, 4: true, runtime.GOMAXPROCS(0): true}
	workers := make([]int, 0, len(workerSet))
	for c := range workerSet {
		workers = append(workers, c)
	}
	sort.Ints(workers)

	report := queryReport{Corpus: len(ds.Photos), Queries: len(qs), TopK: 50, MaxProcs: runtime.GOMAXPROCS(0)}
	fmt.Fprintf(w, "%-8s | %12s %10s %10s %10s\n", "workers", "queries/sec", "mean", "p90", "speedup")
	var base float64
	for _, c := range workers {
		res, err := driver.Driver{Clients: c, TopK: 50}.RunBatch(eng, ds, qs)
		if err != nil {
			return err
		}
		if res.Failures > 0 {
			return fmt.Errorf("experiments: %d of %d batch queries failed", res.Failures, res.Queries)
		}
		if c == workers[0] {
			base = res.Throughput
		}
		fmt.Fprintf(w, "%-8d | %12.1f %10s %10s %9.1fx\n",
			c, res.Throughput, fmtDur(res.Latency.Mean), fmtDur(res.Latency.P90), res.Throughput/base)
		report.Rows = append(report.Rows, queryRow{
			Workers: c,
			QPS:     res.Throughput,
			MeanNs:  res.Latency.Mean.Nanoseconds(),
			P50Ns:   res.Latency.Median.Nanoseconds(),
			P90Ns:   res.Latency.P90.Nanoseconds(),
			P95Ns:   res.Latency.P95.Nanoseconds(),
			P99Ns:   res.Latency.P99.Nanoseconds(),
			Speedup: res.Throughput / base,
		})
	}

	path := filepath.Join(e.Opts().ArtifactDir, "BENCH_query.json")
	if err := writeJSONReport(path, report); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n(%d queries per row over the %d-photo corpus; batch results are\nbyte-identical to the sequential path at every worker count;\nmachine-readable baseline written to %s)\n",
		len(qs), len(ds.Photos), path)
	return nil
}
