package experiments

import (
	"fmt"
	"time"

	"github.com/fastrepro/fast/internal/cluster"
	"github.com/fastrepro/fast/internal/driver"
	"github.com/fastrepro/fast/internal/workload"
)

// paperFig3 is Figure 3 as reported: (featureRepresentation, indexStorage)
// seconds per scheme per dataset.
var paperFig3 = map[string]map[string][2]float64{
	"Wuhan": {
		"SIFT":     {240.2, 825.3},
		"PCA-SIFT": {101.8, 327.9},
		"RNPE":     {152.7, 284.3},
		"FAST":     {101.8, 57.4}, // FAST shares PCA-SIFT's feature stage; storage derived from the reported 75.8% total win
	},
	"Shanghai": {
		"SIFT":     {520.6, 1782.6},
		"PCA-SIFT": {230.5, 661.8},
		"RNPE":     {328.6, 601.9},
		"FAST":     {230.5, 25.6},
	},
}

// RunFig3 regenerates Figure 3: index construction latency, split into
// feature representation and index storage, projected from real scaled
// per-photo costs onto the paper's 256-node cluster and corpus sizes.
func RunFig3(e *Env) error {
	w := e.Opts().Out
	header(w, "Figure 3: index construction latency (projected to paper scale)")
	clu := DefaultPaperCluster()
	fmt.Fprintf(w, "projection: per-photo costs measured at scale 1:%d; CPU over %d nodes x %d cores, disks one per node\n\n",
		e.Opts().Scale, clu.Nodes, clu.Cores)
	fmt.Fprintf(w, "%-10s %-10s | %12s %12s %12s | paper(feat/store)\n",
		"Dataset", "Scheme", "feature", "indexstore", "total")
	totals := map[string]map[string]time.Duration{}
	for _, dsName := range []string{"Wuhan", "Shanghai"} {
		totals[dsName] = map[string]time.Duration{}
		for _, scheme := range SchemeNames() {
			bp, err := e.Pipeline(dsName, scheme)
			if err != nil {
				return err
			}
			feat, storage := projectBuild(bp, dsName, clu)
			totals[dsName][scheme] = feat + storage
			pf := paperFig3[dsName][scheme]
			fmt.Fprintf(w, "%-10s %-10s | %12s %12s %12s | %.0fs / %.0fs\n",
				dsName, scheme, fmtDur(feat), fmtDur(storage), fmtDur(feat+storage), pf[0], pf[1])
		}
	}
	for _, dsName := range []string{"Wuhan", "Shanghai"} {
		t := totals[dsName]
		imp := func(base string) float64 {
			if t[base] == 0 {
				return 0
			}
			return 100 * (1 - float64(t["FAST"])/float64(t[base]))
		}
		fmt.Fprintf(w, "\n%s: FAST vs PCA-SIFT %.1f%% faster (paper: %s), vs RNPE %.1f%% (paper: %s)",
			dsName, imp("PCA-SIFT"), map[string]string{"Wuhan": "75.8%", "Shanghai": "71.3%"}[dsName],
			imp("RNPE"), map[string]string{"Wuhan": "74.2%", "Shanghai": "72.3%"}[dsName])
	}
	fmt.Fprintf(w, "\n\nshape check: SIFT slowest; FAST's index-storage stage is far below every baseline\n")
	return nil
}

// fig4Requests are the paper's concurrent-request counts.
var fig4Requests = []int{1000, 2000, 3000, 4000, 5000}

// RunFig4 regenerates Figure 4: average query latency as a function of the
// number of simultaneous requests, per scheme and dataset. Per-query
// service times are projected from real measurements (see projectQuery) and
// scheduled on the simulated 256-node cluster; RNPE's MNPG grouping is
// serialized per node, which is what bends its curve upward.
func RunFig4(e *Env) error {
	w := e.Opts().Out
	header(w, "Figure 4: average query latency vs concurrent requests")
	clu := DefaultPaperCluster()

	for _, dsName := range []string{"Wuhan", "Shanghai"} {
		ds, err := e.Dataset(dsName)
		if err != nil {
			return err
		}
		qs, err := ds.Queries(5, e.Opts().Seed+7)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n--- %s dataset ---\n", dsName)
		fmt.Fprintf(w, "%-10s |", "requests")
		for _, q := range fig4Requests {
			fmt.Fprintf(w, " %10d", q)
		}
		fmt.Fprintf(w, " | paper@5000\n")
		paperAt5000 := map[string]string{
			"SIFT": "35.8min", "PCA-SIFT": "2.0min", "RNPE": "55s", "FAST": "102.6ms",
		}
		for _, scheme := range SchemeNames() {
			bp, err := e.Pipeline(dsName, scheme)
			if err != nil {
				return err
			}
			m, err := measureQueryCosts(bp, ds, qs, scheme)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-10s |", scheme)
			for _, nReq := range fig4Requests {
				qc := projectQuery(scheme, m, dsName, clu)
				cores := clu.Cores
				if qc.Serialized {
					cores = 1
				}
				sim, err := cluster.New(cluster.Config{Nodes: clu.Nodes, CoresPerNode: cores})
				if err != nil {
					return err
				}
				keys := make([]uint64, nReq)
				for i := range keys {
					keys[i] = uint64(e.Opts().Seed) + uint64(i)*2654435761
				}
				st := sim.RunWorkload(keys, func(uint64) time.Duration { return qc.Service })
				fmt.Fprintf(w, " %10s", fmtDur(st.Mean))
			}
			fmt.Fprintf(w, " | %s\n", paperAt5000[scheme])
		}
	}
	// Supplementary real measurement: replay a concurrent-client workload
	// against the scaled FAST index (no projection) to show the measured
	// per-query latency distribution under concurrency.
	ds, err := e.Dataset("Wuhan")
	if err != nil {
		return err
	}
	bp, err := e.Pipeline("Wuhan", "FAST")
	if err != nil {
		return err
	}
	qs, err := ds.Queries(24, e.Opts().Seed+400)
	if err != nil {
		return err
	}
	res, err := driver.Driver{Clients: 8, TopK: 50}.Run(bp.p, ds, qs)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nmeasured (laptop scale, %d concurrent clients, Wuhan): FAST mean %s, p99 %s, recall %.2f\n",
		8, fmtDur(res.Latency.Mean), fmtDur(res.Latency.P99), res.Recall)

	fmt.Fprintf(w, "\nshape check: SIFT >> PCA-SIFT >> RNPE >> FAST; RNPE grows with load while FAST\n")
	fmt.Fprintf(w, "stays flat (its O(1) flat addressing parallelizes across cores); gaps of 1-3\n")
	fmt.Fprintf(w, "orders of magnitude match the paper.\n")
	return nil
}

// measureQueryCosts runs a few real queries through the scaled pipeline to
// extract the measurements projectQuery needs.
func measureQueryCosts(bp *builtPipeline, ds *workload.Dataset, qs []workload.Query, scheme string) (measuredQuery, error) {
	var m measuredQuery
	n := bp.build.Photos
	if n == 0 {
		return m, fmt.Errorf("experiments: %s pipeline empty", scheme)
	}
	m.perPhotoBytes = float64(bp.p.IndexBytes()) / float64(n)

	var total time.Duration
	var groupSizes int
	for _, q := range qs {
		probe := queryProbe(ds, q)
		t0 := time.Now()
		res, err := bp.p.Search(probe, n)
		if err != nil {
			return m, err
		}
		total += time.Since(t0)
		groupSizes += len(res)
	}
	avg := total / time.Duration(len(qs))
	m.realQuery = avg
	// Per-stored-photo matching CPU: the brute-force schemes touch every
	// record per query.
	m.matchPerPhoto = avg / time.Duration(n)
	if scheme == "RNPE" {
		m.groupFrac = float64(groupSizes) / float64(len(qs)) / float64(n)
		if m.groupFrac == 0 {
			m.groupFrac = 0.01
		}
	}
	return m, nil
}

// paperFig5Wuhan is Figure 5 (Wuhan) as reported: seconds to insert 10k.
var paperFig5 = map[string][2]float64{
	// at 10k inserts (Wuhan): SIFT 25.8s, PCA-SIFT 12.7s, RNPE 3.5s, FAST 0.5s
	"SIFT": {25.8, 0}, "PCA-SIFT": {12.7, 0}, "RNPE": {3.5, 0}, "FAST": {0.5, 0},
}

// fig5Batches are the paper's insertion batch sizes (scaled 1:100).
var fig5Batches = []int{100, 200, 300, 400, 500}

// RunFig5 regenerates Figure 5: the latency of inserting new images into an
// existing index. Batches are scaled 1:100 from the paper's 10k–50k. The
// reported time combines real insert wall time with the modeled storage and
// correlation charges, normalized back to the paper's batch sizes.
func RunFig5(e *Env) error {
	w := e.Opts().Out
	header(w, "Figure 5: insertion latency (batches scaled 1:100)")
	for _, dsName := range []string{"Wuhan", "Shanghai"} {
		ds, err := e.Dataset(dsName)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n--- %s dataset ---\n", dsName)
		fmt.Fprintf(w, "%-10s |", "batch")
		for _, b := range fig5Batches {
			fmt.Fprintf(w, " %9dk", b/10) // paper-scale label (x100 / 1000)
		}
		fmt.Fprintf(w, " | growth  paper@10k\n")
		for _, scheme := range SchemeNames() {
			bp, err := e.Pipeline(dsName, scheme)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-10s |", scheme)
			var first, last time.Duration
			inserted := 0
			var cum time.Duration
			for bi, batch := range fig5Batches {
				delta := batch - inserted
				simBefore := bp.p.SimCost()
				t0 := time.Now()
				for j := 0; j < delta; j++ {
					p := ds.FreshPhoto(uint64(90_000_000)+uint64(dsName[0])*1_000_000+uint64(inserted+j), e.Opts().Seed)
					if err := bp.p.Insert(p); err != nil {
						return fmt.Errorf("fig5: %s insert: %w", scheme, err)
					}
				}
				real := time.Since(t0)
				simAfter := bp.p.SimCost()
				d := simCostDelta(simAfter, simBefore)
				cum += real + d.StorageTime + d.ComputeTime
				inserted = batch
				fmt.Fprintf(w, " %10s", fmtDur(cum))
				if bi == 0 {
					first = cum
				}
				last = cum
			}
			growth := float64(last) / float64(first)
			fmt.Fprintf(w, " | %5.1fx   %.1fs\n", growth, paperFig5[scheme][0])
		}
	}
	fmt.Fprintf(w, "\nshape check: SIFT and PCA-SIFT grow steeply (per-insert correlation matching is\n")
	fmt.Fprintf(w, "linear in the store), RNPE grows mildly (O(log n) R-tree), FAST stays nearly\n")
	fmt.Fprintf(w, "proportional to the batch size alone (O(1) LSH + flat storage).\n")
	return nil
}
