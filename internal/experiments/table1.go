package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/fastrepro/fast/internal/bloom"
	"github.com/fastrepro/fast/internal/cuckoo"
	"github.com/fastrepro/fast/internal/kdtree"
	"github.com/fastrepro/fast/internal/lsh"
	"github.com/fastrepro/fast/internal/lsi"
	"github.com/fastrepro/fast/internal/metrics"
	"github.com/fastrepro/fast/internal/vectorize"
)

// RunTable1 makes Table I executable. The paper's Table I maps the FAST
// methodology onto existing searchable storage systems on paper; this
// experiment runs the three addressing/aggregation designs on one
// vectorized file-metadata corpus (the Spyglass/SmartStore setting):
//
//   - FAST: Bloom summaries → MinHash LSH groups → flat cuckoo addressing
//     (O(1) probes);
//   - Spyglass-style: a K-D tree over the raw attribute vectors,
//     hierarchical addressing via kNN descent (O(log n) for low
//     dimensions);
//   - SmartStore-style: Latent Semantic Indexing, correlation queries as
//     cosine scans in concept space (O(n) per query, strong aggregation).
//
// Reported per scheme: correlation-query recall against ground-truth
// project clusters, mean query latency, and the per-query structure
// touches.
func RunTable1(e *Env) error {
	w := e.Opts().Out
	header(w, "Table I (executable): methodology vs Spyglass/SmartStore designs")

	// Vectorized file-record corpus: projects are the correlated groups.
	const (
		nFiles    = 3000
		nProjects = 20
	)
	schema, err := vectorize.NewSchema([]vectorize.Field{
		{Name: "size", Kind: vectorize.LogNumeric, Weight: 0.5},
		{Name: "depth", Kind: vectorize.Numeric, Weight: 0.5},
		{Name: "owner", Kind: vectorize.Categorical, Dims: 8, Weight: 2},
		{Name: "ext", Kind: vectorize.Categorical, Dims: 6, Weight: 1.5},
		{Name: "path", Kind: vectorize.Text, Dims: 12, Weight: 1},
	})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(e.Opts().Seed + 71))
	owners := []string{"alice", "bob", "carol", "dave", "erin", "frank"}
	exts := []string{"c", "go", "h", "md", "dat", "log", "csv"}
	type fileRec struct {
		id      uint64
		project int
		vec     []float64
	}
	records := make([]fileRec, nFiles)
	for i := range records {
		p := rng.Intn(nProjects)
		rec := vectorize.Record{
			"size":  float64(int64(1)<<uint(10+p%8)) * (0.5 + rng.Float64()),
			"depth": float64(2 + p%5),
			"owner": owners[p%len(owners)],
			"ext":   exts[p%len(exts)],
			"path":  fmt.Sprintf("projects proj%d src module%d", p, p%3),
		}
		v, err := schema.Vector(rec)
		if err != nil {
			return err
		}
		// Per-file jitter so records are not byte-identical.
		for j := range v {
			v[j] += rng.NormFloat64() * 0.05
		}
		records[i] = fileRec{id: uint64(i + 1), project: p, vec: v}
	}
	projectOf := make(map[uint64]int, nFiles)
	relevant := make(map[int]map[uint64]bool)
	for _, r := range records {
		projectOf[r.id] = r.project
		if relevant[r.project] == nil {
			relevant[r.project] = make(map[uint64]bool)
		}
		relevant[r.project][r.id] = true
	}

	// --- FAST stack ---
	sumCfg := bloom.SummaryConfig{Bits: 2048, K: 4, SubVector: 4, Granularity: 1.0}
	mh, err := lsh.NewMinHash(lsh.MinHashParams{Seed: e.Opts().Seed})
	if err != nil {
		return err
	}
	flat, err := cuckoo.NewFlat(2*nFiles, cuckoo.DefaultNeighborhood, 0, 3)
	if err != nil {
		return err
	}
	summaries := make(map[uint64]*bloom.Sparse, nFiles)
	for i, r := range records {
		f, err := bloom.Summarize([][]float64{r.vec}, sumCfg)
		if err != nil {
			return err
		}
		sp := bloom.ToSparse(f)
		summaries[r.id] = sp
		if len(sp.Bits) > 0 {
			if err := mh.Insert(lsh.ItemID(r.id), sp.Bits); err != nil {
				return err
			}
		}
		if err := flat.Insert(r.id, uint64(i)); err != nil {
			return err
		}
	}

	// --- Spyglass-style K-D tree ---
	pts := make([]kdtree.Point, nFiles)
	for i, r := range records {
		pts[i] = kdtree.Point{Vec: append([]float64(nil), r.vec...), ID: r.id}
	}
	kd, err := kdtree.Build(pts)
	if err != nil {
		return err
	}

	// --- SmartStore-style LSI ---
	ids := make([]uint64, nFiles)
	vecs := make([][]float64, nFiles)
	for i, r := range records {
		ids[i] = r.id
		vecs[i] = r.vec
	}
	lsiIdx, err := lsi.Build(ids, vecs, 10)
	if err != nil {
		return err
	}

	// --- Drive identical correlation queries through all three ---
	const trials = 60
	groupSize := nFiles / nProjects
	type row struct {
		name    string
		lat     *metrics.Latency
		acc     *metrics.Accuracy
		touches string
	}
	rows := []row{
		{"FAST (LSH+cuckoo)", metrics.NewLatency(), &metrics.Accuracy{}, fmt.Sprintf("%d cells + bands", flat.ProbeWidth())},
		{"Spyglass (K-D tree)", metrics.NewLatency(), &metrics.Accuracy{}, "O(log n) descent"},
		{"SmartStore (LSI)", metrics.NewLatency(), &metrics.Accuracy{}, "O(n) concept scan"},
	}
	for trial := 0; trial < trials; trial++ {
		q := records[rng.Intn(nFiles)]
		rel := relevant[q.project]

		// FAST: LSH candidates + flat-table fetch + Jaccard verify.
		t0 := time.Now()
		var fastIDs []uint64
		if sp := summaries[q.id]; len(sp.Bits) > 0 {
			cands, err := mh.Query(sp.Bits)
			if err != nil {
				return err
			}
			keys := make([]uint64, len(cands))
			for i, c := range cands {
				keys[i] = uint64(c)
			}
			slots := flat.LookupBatch(keys, 1)
			for i, slot := range slots {
				if !slot.Found {
					continue
				}
				sim, err := bloom.JaccardSparse(sp, summaries[keys[i]])
				if err == nil && sim >= 0.2 {
					fastIDs = append(fastIDs, keys[i])
				}
			}
		}
		rows[0].lat.Record(time.Since(t0))
		rows[0].acc.Add(metrics.ScoreRetrieval(fastIDs, rel).Recall())

		// Spyglass: kNN in the K-D tree.
		t1 := time.Now()
		nbs, err := kd.Nearest(q.vec, groupSize)
		if err != nil {
			return err
		}
		kdIDs := make([]uint64, len(nbs))
		for i, nb := range nbs {
			kdIDs[i] = nb.Point.ID
		}
		rows[1].lat.Record(time.Since(t1))
		rows[1].acc.Add(metrics.ScoreRetrieval(kdIDs, rel).Recall())

		// SmartStore: cosine scan in LSI concept space.
		t2 := time.Now()
		res, err := lsiIdx.Query(q.vec, groupSize)
		if err != nil {
			return err
		}
		lsiIDs := make([]uint64, len(res))
		for i, r := range res {
			lsiIDs[i] = r.ID
		}
		rows[2].lat.Record(time.Since(t2))
		rows[2].acc.Add(metrics.ScoreRetrieval(lsiIDs, rel).Recall())
	}

	fmt.Fprintf(w, "corpus: %d vectorized file records, %d projects, %d queries\n\n", nFiles, nProjects, trials)
	fmt.Fprintf(w, "%-22s | %8s %12s %s\n", "design", "recall", "query", "addressing cost")
	for _, r := range rows {
		s := r.lat.Summarize()
		fmt.Fprintf(w, "%-22s | %8.3f %12s %s\n", r.name, r.acc.Mean(), fmtDur(s.Mean), r.touches)
	}
	fmt.Fprintf(w, "\nshape check: all three recover the correlated groups; FAST's flat addressing\n")
	fmt.Fprintf(w, "answers in constant structure touches while the K-D tree descends O(log n)\n")
	fmt.Fprintf(w, "and LSI scans the corpus — Table I's hierarchical-vs-flat contrast, executed.\n")
	return nil
}
