// Package experiments regenerates every table and figure of the paper's
// evaluation (Section IV) on the synthetic substrate. Each experiment
// prints the measured values next to the paper's reported values so the
// reader can check the *shape* — who wins, by roughly what factor, where
// trends bend — rather than absolute numbers, which depend on the authors'
// 256-node testbed and 200 TB corpus.
//
// Methodology split:
//
//   - Data-structure behaviour (Fig 6 rehash probability, Fig 7 multicore
//     scaling, all accuracy/space results) is measured for real on the
//     scaled corpus.
//   - Cluster-scale latencies (Fig 3, Fig 4, Fig 5) are *projected*: real
//     per-photo/per-query costs measured on the scaled corpus are combined
//     with the store package's device models and the cluster package's
//     queueing simulator at the paper's scale (21M/39M photos, 256 nodes).
//
// The per-experiment index in DESIGN.md maps each experiment to its
// modules; EXPERIMENTS.md records a full paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/fastrepro/fast/internal/baseline"
	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/simimg"
	"github.com/fastrepro/fast/internal/workload"
)

// Options configures a harness run.
type Options struct {
	// Scale divides the paper's photo counts; 0 means 20000
	// (1050 Wuhan / 1950 Shanghai photos).
	Scale int
	// Queries is the number of real queries per accuracy cell; 0 means 15.
	Queries int
	// Seed randomizes workloads deterministically.
	Seed int64
	// Out receives the reports.
	Out io.Writer
	// ArtifactDir is where experiments that emit machine-readable results
	// (e.g. BENCH_ingest.json) write them; "" means the working directory.
	ArtifactDir string
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 20000
	}
	if o.Queries <= 0 {
		o.Queries = 15
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.ArtifactDir == "" {
		o.ArtifactDir = "."
	}
	return o
}

// builtPipeline couples a pipeline with its build statistics.
type builtPipeline struct {
	p     core.Pipeline
	build core.BuildStats
	// buildSim is the SimCost accumulated during Build only.
	buildSim core.SimCost
}

// dsEnv is one dataset's lazily provisioned state.
type dsEnv struct {
	ds        *workload.Dataset
	pipelines map[string]*builtPipeline
}

// Env provisions datasets and built pipelines once per run.
type Env struct {
	opts Options
	sets map[string]*dsEnv
}

// NewEnv returns an empty environment.
func NewEnv(opts Options) *Env {
	return &Env{opts: opts.withDefaults(), sets: make(map[string]*dsEnv)}
}

// Opts returns the effective options.
func (e *Env) Opts() Options { return e.opts }

// Dataset returns (generating on first use) the named dataset:
// "Wuhan" or "Shanghai".
func (e *Env) Dataset(name string) (*workload.Dataset, error) {
	if env, ok := e.sets[name]; ok {
		return env.ds, nil
	}
	var spec workload.Spec
	switch name {
	case "Wuhan":
		spec = workload.Wuhan(e.opts.Scale)
	case "Shanghai":
		spec = workload.Shanghai(e.opts.Scale)
	default:
		return nil, fmt.Errorf("experiments: unknown dataset %q", name)
	}
	fmt.Fprintf(e.opts.Out, "[env] generating %s dataset (%d photos, scale 1:%d)...\n",
		name, spec.Photos, e.opts.Scale)
	ds, err := workload.Generate(spec)
	if err != nil {
		return nil, err
	}
	e.sets[name] = &dsEnv{ds: ds, pipelines: make(map[string]*builtPipeline)}
	return ds, nil
}

// SchemeNames lists the four schemes in the paper's presentation order.
func SchemeNames() []string { return []string{"SIFT", "PCA-SIFT", "RNPE", "FAST"} }

// newPipeline constructs an unbuilt pipeline by scheme name.
func newPipeline(name string, seed int64) (core.Pipeline, error) {
	switch name {
	case "SIFT":
		return baseline.NewSIFT(), nil
	case "PCA-SIFT":
		return baseline.NewPCASIFT(), nil
	case "RNPE":
		r := baseline.NewRNPE()
		r.Seed = seed
		return r, nil
	case "FAST":
		return core.NewEngine(core.Config{}), nil
	default:
		return nil, fmt.Errorf("experiments: unknown scheme %q", name)
	}
}

// Pipeline returns (building on first use) the named scheme indexed over
// the named dataset.
func (e *Env) Pipeline(dataset, scheme string) (*builtPipeline, error) {
	ds, err := e.Dataset(dataset)
	if err != nil {
		return nil, err
	}
	env := e.sets[dataset]
	if bp, ok := env.pipelines[scheme]; ok {
		return bp, nil
	}
	p, err := newPipeline(scheme, e.opts.Seed)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(e.opts.Out, "[env] building %s index over %s (%d photos)...\n",
		scheme, dataset, len(ds.Photos))
	t0 := time.Now()
	st, err := p.Build(ds.Photos)
	if err != nil {
		return nil, fmt.Errorf("experiments: building %s over %s: %w", scheme, dataset, err)
	}
	fmt.Fprintf(e.opts.Out, "[env] built %s/%s in %v\n", scheme, dataset, time.Since(t0).Round(time.Millisecond))
	bp := &builtPipeline{p: p, build: st, buildSim: p.SimCost()}
	env.pipelines[scheme] = bp
	return bp, nil
}

// queryProbe adapts a workload query to a core.Probe, attaching the geo
// hint tag-based schemes need.
func queryProbe(ds *workload.Dataset, q workload.Query) core.Probe {
	probe := core.Probe{Img: q.Probe}
	for _, p := range ds.Photos {
		if p.Scene == q.Scene {
			loc := p.Loc
			probe.Loc = &loc
			break
		}
	}
	return probe
}

// Experiment is one runnable reproduction unit.
type Experiment struct {
	ID    string // e.g. "fig3"
	Title string
	Run   func(e *Env) error
}

// All returns the experiments in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table I (executable): FAST vs Spyglass/SmartStore designs", RunTable1},
		{"table2", "Table II: properties of the collected image sets", RunTable2},
		{"fig3", "Figure 3: index construction latency", RunFig3},
		{"fig4", "Figure 4: average query latency vs concurrent requests", RunFig4},
		{"table3", "Table III: query accuracy normalized to SIFT", RunTable3},
		{"table4", "Table IV: space overhead normalized to SIFT", RunTable4},
		{"fig5", "Figure 5: insertion latency", RunFig5},
		{"fig6", "Figure 6: insertion failure (rehash) probability", RunFig6},
		{"fig7", "Figure 7: multicore-enabled parallel queries", RunFig7},
		{"qps", "Throughput: sharded concurrent query engine (QueryBatch)", RunThroughput},
		{"cache", "Read-path cache: reuse sweep, cached vs uncached (identity-verified)", RunCache},
		{"ingest", "Throughput: staged parallel ingest pipeline (InsertBatch)", RunIngest},
		{"serve", "Serving: coalesced network queries vs naive goroutine-per-request", RunServe},
		{"snapshot", "Snapshot: content-addressed delta generations vs monolithic rewrites", RunSnapshot},
		{"cluster", "Cluster: sharded fan-out identity, degradation, replica chunk-diff catch-up", RunCluster},
		{"tiered", "Tiered index: disk-resident cold tier vs all-RAM oracle (identity-verified)", RunTiered},
		{"fig8a", "Figure 8a: network transmission overhead", RunFig8a},
		{"fig8b", "Figure 8b: smartphone energy consumption", RunFig8b},
		{"ablation", "Ablations: design-choice sweeps", RunAblation},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, ex := range All() {
		if ex.ID == id {
			return ex, nil
		}
	}
	ids := make([]string, 0, len(All()))
	for _, ex := range All() {
		ids = append(ids, ex.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, ids)
}

// header prints a section banner.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n================================================================\n%s\n================================================================\n", title)
}

// fmtDur renders durations compactly.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.1fmin", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.1fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1000)
	}
}

// fmtBytes renders byte counts compactly.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<40:
		return fmt.Sprintf("%.1fTB", float64(b)/(1<<40))
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// sceneLocation returns a representative capture location for a scene.
func sceneLocation(ds *workload.Dataset, scene simimg.SceneID) *simimg.GeoPoint {
	for _, p := range ds.Photos {
		if p.Scene == scene {
			loc := p.Loc
			return &loc
		}
	}
	return nil
}
