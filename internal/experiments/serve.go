package experiments

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"github.com/fastrepro/fast/internal/client"
	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/metrics"
	"github.com/fastrepro/fast/internal/server"
	"github.com/fastrepro/fast/internal/simimg"
)

// serveClients is the concurrent-client count of the serving benchmark. The
// acceptance bar for the coalesced path is set at this fan-in: with this
// many clients hammering one index, micro-batching must beat the naive
// goroutine-per-request shape.
const serveClients = 64

// serveRow is one serving-mode measurement in BENCH_serve.json.
type serveRow struct {
	Mode              string  `json:"mode"` // "naive" or "coalesced"
	WindowMs          float64 `json:"window_ms"`
	Clients           int     `json:"clients"`
	Requests          int     `json:"requests"`
	QPS               float64 `json:"qps"`
	MeanNs            int64   `json:"mean_ns"`
	P50Ns             int64   `json:"p50_ns"`
	P95Ns             int64   `json:"p95_ns"`
	P99Ns             int64   `json:"p99_ns"`
	QueryBatches      int64   `json:"query_batches"`
	QueryBatchMean    float64 `json:"query_batch_mean"`
	QueryBatchMax     int64   `json:"query_batch_max"`
	QueryDeduped      int64   `json:"query_deduped"`
	AdmissionRejected int64   `json:"admission_rejected"`
}

// serveReport is the BENCH_serve.json document.
type serveReport struct {
	Experiment       string     `json:"experiment"`
	GOMAXPROCS       int        `json:"gomaxprocs"`
	Photos           int        `json:"photos"`
	TopK             int        `json:"topk"`
	IdenticalResults bool       `json:"identical_results"` // naive vs coalesced answers matched
	CoalescedSpeedup float64    `json:"coalesced_speedup"` // coalesced QPS / naive QPS
	Rows             []serveRow `json:"rows"`
}

// RunServe benchmarks the network serving layer end to end: a real
// fastd-shaped server (internal/server over a TCP listener) is driven by 64
// concurrent internal/client clients, once with coalescing disabled
// (window 0: every request runs its own engine call, the naive shape) and
// once with the micro-batching coalescer in front of Engine.QueryBatch.
// Per-request latency percentiles and end-to-end QPS are printed and
// written to BENCH_serve.json; the two modes' answers are verified
// identical probe by probe before any throughput claim is made.
func RunServe(e *Env) error {
	w := e.Opts().Out
	header(w, "Serving: coalesced network queries vs naive goroutine-per-request")

	ds, err := e.Dataset("Wuhan")
	if err != nil {
		return err
	}
	bp, err := e.Pipeline("Wuhan", "FAST")
	if err != nil {
		return err
	}
	eng, ok := bp.p.(*core.Engine)
	if !ok {
		return fmt.Errorf("experiments: FAST pipeline is not a core.Engine")
	}

	nProbes := e.Opts().Queries
	if nProbes < 8 {
		nProbes = 8
	}
	qs, err := ds.Queries(nProbes, e.Opts().Seed+7)
	if err != nil {
		return err
	}
	probes := make([]*simimg.Image, len(qs))
	for i, q := range qs {
		probes[i] = q.Probe
	}
	const topK = 20
	perClient := 6
	total := serveClients * perClient

	fmt.Fprintf(w, "host: %d hardware thread(s); %d photos indexed, %d clients x %d queries each (topK %d)\n\n",
		runtime.NumCPU(), eng.Len(), serveClients, perClient, topK)
	fmt.Fprintf(w, "%-10s | %10s %10s %10s %10s %10s | %s\n",
		"mode", "qps", "p50", "p95", "p99", "mean", "batching")

	report := serveReport{
		Experiment: "serve",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Photos:     eng.Len(),
		TopK:       topK,
	}
	modes := []struct {
		name   string
		window time.Duration
	}{
		{"naive", 0},
		{"coalesced", 2 * time.Millisecond},
	}
	answers := make([][][]core.SearchResult, len(modes))
	for mi, mode := range modes {
		row, ans, err := runServeMode(eng, probes, mode.window, topK, perClient)
		if err != nil {
			return fmt.Errorf("experiments: serve mode %s: %w", mode.name, err)
		}
		row.Mode = mode.name
		answers[mi] = ans
		batching := "off"
		if row.QueryBatches > 0 {
			batching = fmt.Sprintf("%d batches, mean %.1f, max %d, %d collapsed",
				row.QueryBatches, row.QueryBatchMean, row.QueryBatchMax, row.QueryDeduped)
		}
		fmt.Fprintf(w, "%-10s | %10.1f %10s %10s %10s %10s | %s\n",
			mode.name, row.QPS,
			fmtDur(time.Duration(row.P50Ns)), fmtDur(time.Duration(row.P95Ns)),
			fmtDur(time.Duration(row.P99Ns)), fmtDur(time.Duration(row.MeanNs)), batching)
		report.Rows = append(report.Rows, row)
	}

	// Both modes must answer every probe identically — the coalescer adds
	// batching, not approximation.
	report.IdenticalResults = true
	for pi := range probes {
		a, b := answers[0][pi], answers[1][pi]
		if len(a) != len(b) {
			report.IdenticalResults = false
			break
		}
		for i := range a {
			if a[i] != b[i] {
				report.IdenticalResults = false
				break
			}
		}
	}
	if !report.IdenticalResults {
		return fmt.Errorf("experiments: serve modes returned different answers for the same probes (%d checked)", len(probes))
	}
	if report.Rows[0].QPS > 0 {
		report.CoalescedSpeedup = report.Rows[1].QPS / report.Rows[0].QPS
	}
	fmt.Fprintf(w, "\nanswers identical across modes (%d probes); coalesced/naive QPS = %.2fx\n",
		len(probes), report.CoalescedSpeedup)
	fmt.Fprintf(w, "(%d requests per mode; serving includes HTTP transport, JSON codec, admission)\n", total)

	path := filepath.Join(e.Opts().ArtifactDir, "BENCH_serve.json")
	if err := writeJSONReport(path, report); err != nil {
		return err
	}
	fmt.Fprintf(w, "machine-readable results written to %s\n", path)
	return nil
}

// runServeMode boots one server configuration on a loopback listener, runs
// the concurrent client load against it, and returns the measured row plus
// the per-probe answers (queried sequentially after the timed window, for
// the cross-mode identity check).
func runServeMode(eng *core.Engine, probes []*simimg.Image, window time.Duration, topK, perClient int) (serveRow, [][]core.SearchResult, error) {
	srv, err := server.New(server.Config{
		Engine:   eng,
		Window:   window,
		BatchMax: 32,
		// Generous admission so this measures coalescing, not backpressure:
		// all clients fit in the building at once.
		MaxInflight: 4 * serveClients,
		MaxQueue:    8 * serveClients,
	})
	if err != nil {
		return serveRow{}, nil, err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return serveRow{}, nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()

	// A pooled transport sized for the fan-in, so connection churn does not
	// pollute the latency distribution.
	transport := &http.Transport{
		MaxIdleConns:        2 * serveClients,
		MaxIdleConnsPerHost: 2 * serveClients,
	}
	defer transport.CloseIdleConnections()
	c := client.New("http://"+ln.Addr().String(),
		client.WithHTTPClient(&http.Client{Transport: transport, Timeout: 60 * time.Second}),
		client.WithRetries(4, 10*time.Millisecond))
	ctx := context.Background()

	// Warm the connections and the engine's caches outside the timed window.
	for i := 0; i < 4; i++ {
		if _, err := c.Query(ctx, probes[i%len(probes)], topK); err != nil {
			return serveRow{}, nil, fmt.Errorf("warmup query: %w", err)
		}
	}

	lat := metrics.NewLatency()
	errCh := make(chan error, serveClients)
	var wg sync.WaitGroup
	t0 := time.Now()
	for cl := 0; cl < serveClients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				probe := probes[(cl*perClient+i)%len(probes)]
				q0 := time.Now()
				if _, err := c.Query(ctx, probe, topK); err != nil {
					errCh <- err
					return
				}
				lat.Record(time.Since(q0))
			}
		}(cl)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	close(errCh)
	if err := <-errCh; err != nil {
		return serveRow{}, nil, err
	}

	// Sequential per-probe answers for the identity check.
	answers := make([][]core.SearchResult, len(probes))
	for pi, probe := range probes {
		res, err := c.Query(ctx, probe, topK)
		if err != nil {
			return serveRow{}, nil, fmt.Errorf("identity query %d: %w", pi, err)
		}
		answers[pi] = res
	}

	st := srv.Stats()
	sum := lat.Summarize()
	row := serveRow{
		WindowMs:          float64(window.Microseconds()) / 1000,
		Clients:           serveClients,
		Requests:          sum.Count,
		QPS:               float64(sum.Count) / elapsed.Seconds(),
		MeanNs:            sum.Mean.Nanoseconds(),
		P50Ns:             sum.Median.Nanoseconds(),
		P95Ns:             sum.P95.Nanoseconds(),
		P99Ns:             sum.P99.Nanoseconds(),
		QueryBatches:      st.QueryBatches,
		QueryBatchMean:    st.QueryBatchMean,
		QueryBatchMax:     st.QueryBatchMax,
		QueryDeduped:      st.QueryDeduped,
		AdmissionRejected: st.AdmissionRejected,
	}
	return row, answers, nil
}
