package experiments

import (
	"fmt"

	"github.com/fastrepro/fast/internal/metrics"
	"github.com/fastrepro/fast/internal/simimg"
)

// RunTable2 regenerates Table II: the properties of the collected image
// sets (counts, sizes, format mix, landmarks), at the configured scale.
func RunTable2(e *Env) error {
	w := e.Opts().Out
	header(w, "Table II: properties of the collected image sets (scaled 1:"+fmt.Sprint(e.Opts().Scale)+")")
	fmt.Fprintf(w, "%-10s %10s %12s %28s %10s\n", "Dataset", "No.Images", "Total Size", "File Type", "Landmarks")
	for _, name := range []string{"Wuhan", "Shanghai"} {
		ds, err := e.Dataset(name)
		if err != nil {
			return err
		}
		counts := map[simimg.Format]int{}
		for _, p := range ds.Photos {
			counts[p.Fmt]++
		}
		n := len(ds.Photos)
		mix := fmt.Sprintf("bmp(%d%%), jpeg(%d%%), gif(%d%%)",
			100*counts[simimg.BMP]/n, 100*counts[simimg.JPEG]/n, 100*counts[simimg.GIF]/n)
		fmt.Fprintf(w, "%-10s %10d %12s %28s %10d\n",
			name, n, fmtBytes(ds.TotalBytes), mix, ds.Spec.Scenes)
	}
	fmt.Fprintf(w, "\npaper: Wuhan 21M images / 62.7TB / 16 landmarks; Shanghai 39M / 152.5TB / 22 landmarks\n")
	fmt.Fprintf(w, "       (format mix bmp 11%%/9%%, jpeg 74%%/79%%, gif 15%%/12%%)\n")
	return nil
}

// paperTable3 is the accuracy Table III as printed in the paper.
var paperTable3 = map[string]map[int]map[string]float64{
	"Wuhan": {
		1000: {"PCA-SIFT": 0.999995, "RNPE": 0.973, "FAST": 0.99999},
		2000: {"PCA-SIFT": 0.999992, "RNPE": 0.965, "FAST": 0.99997},
		3000: {"PCA-SIFT": 0.999984, "RNPE": 0.959, "FAST": 0.99995},
		4000: {"PCA-SIFT": 0.999977, "RNPE": 0.941, "FAST": 0.99994},
		5000: {"PCA-SIFT": 0.999965, "RNPE": 0.935, "FAST": 0.99990},
	},
	"Shanghai": {
		1000: {"PCA-SIFT": 0.999992, "RNPE": 0.963, "FAST": 0.99998},
		2000: {"PCA-SIFT": 0.999988, "RNPE": 0.953, "FAST": 0.99994},
		3000: {"PCA-SIFT": 0.999982, "RNPE": 0.942, "FAST": 0.99991},
		4000: {"PCA-SIFT": 0.999969, "RNPE": 0.935, "FAST": 0.99988},
		5000: {"PCA-SIFT": 0.999957, "RNPE": 0.925, "FAST": 0.99986},
	},
}

// table3Rows are the paper's concurrent-request counts; each maps to a
// scaled number of real queries.
var table3Rows = []int{1000, 2000, 3000, 4000, 5000}

// RunTable3 regenerates Table III: per-scheme retrieval accuracy normalized
// to SIFT. Each row evaluates a growing set of real queries (the paper's
// 1000–5000 concurrent requests, scaled); per-query recall is measured
// against generator ground truth (the paper used 1,000 human verifiers; the
// generator is exact) and normalized to SIFT's recall on the same queries.
func RunTable3(e *Env) error {
	w := e.Opts().Out
	header(w, "Table III: query accuracy normalized to SIFT")
	fmt.Fprintf(w, "%-10s %8s | %8s %9s %8s %8s | paper (PCA-SIFT / RNPE / FAST)\n",
		"Dataset", "Queries", "SIFT", "PCA-SIFT", "RNPE", "FAST")
	for _, dsName := range []string{"Wuhan", "Shanghai"} {
		ds, err := e.Dataset(dsName)
		if err != nil {
			return err
		}
		for rowIdx, row := range table3Rows {
			nq := e.Opts().Queries * (rowIdx + 1)
			qs, err := ds.Queries(nq, e.Opts().Seed+int64(row))
			if err != nil {
				return err
			}
			accs := map[string]*metrics.Accuracy{}
			for _, scheme := range SchemeNames() {
				bp, err := e.Pipeline(dsName, scheme)
				if err != nil {
					return err
				}
				acc := &metrics.Accuracy{}
				for _, q := range qs {
					probe := queryProbe(ds, q)
					res, err := bp.p.Search(probe, len(ds.Photos))
					if err != nil {
						return fmt.Errorf("table3: %s query: %w", scheme, err)
					}
					ids := make([]uint64, len(res))
					for i, r := range res {
						ids[i] = r.ID
					}
					acc.Add(metrics.ScoreRetrieval(ids, q.Relevant).Recall())
				}
				accs[scheme] = acc
			}
			norm := func(s string) float64 {
				v, err := accs[s].NormalizedTo(accs["SIFT"])
				if err != nil {
					return 0
				}
				return v
			}
			pt := paperTable3[dsName][row]
			fmt.Fprintf(w, "%-10s %8d | %8.4f %9.4f %8.4f %8.4f | %.4f / %.3f / %.4f\n",
				dsName, row, 1.0, norm("PCA-SIFT"), norm("RNPE"), norm("FAST"),
				pt["PCA-SIFT"], pt["RNPE"], pt["FAST"])
		}
	}
	fmt.Fprintf(w, "\nshape check: SIFT is the reference; PCA-SIFT matches it; FAST and RNPE trade\n")
	fmt.Fprintf(w, "a few points of accuracy for orders-of-magnitude latency wins. FAST's gap to\n")
	fmt.Fprintf(w, "the paper's 99.99%% reflects the synthetic corpus: 64x64 rasters yield ~30\n")
	fmt.Fprintf(w, "keypoints per image versus hundreds for 1MB photos, so summary overlap (and\n")
	fmt.Fprintf(w, "LSH recall) is lower here. The qualitative claim — near-SIFT accuracy at\n")
	fmt.Fprintf(w, "matchless speed, with false positives tolerated for post-verification —\n")
	fmt.Fprintf(w, "is reproduced.\n")
	return nil
}

// RunTable4 regenerates Table IV: index space overhead normalized to SIFT.
func RunTable4(e *Env) error {
	w := e.Opts().Out
	header(w, "Table IV: space overhead normalized to SIFT")
	paper := map[string]map[string]float64{
		"Wuhan":    {"SIFT": 1, "PCA-SIFT": 0.82, "RNPE": 0.58, "FAST": 0.14},
		"Shanghai": {"SIFT": 1, "PCA-SIFT": 0.73, "RNPE": 0.45, "FAST": 0.11},
	}
	fmt.Fprintf(w, "%-10s | %10s %12s %10s | %10s %12s %10s\n",
		"Scheme", "Wuhan", "(bytes)", "paper", "Shanghai", "(bytes)", "paper")
	baselines := map[string]int64{}
	sizes := map[string]map[string]int64{"Wuhan": {}, "Shanghai": {}}
	for _, dsName := range []string{"Wuhan", "Shanghai"} {
		for _, scheme := range SchemeNames() {
			bp, err := e.Pipeline(dsName, scheme)
			if err != nil {
				return err
			}
			sizes[dsName][scheme] = bp.p.IndexBytes()
			if scheme == "SIFT" {
				baselines[dsName] = bp.p.IndexBytes()
			}
		}
	}
	for _, scheme := range SchemeNames() {
		wb := sizes["Wuhan"][scheme]
		sb := sizes["Shanghai"][scheme]
		fmt.Fprintf(w, "%-10s | %10.3f %12s %10.2f | %10.3f %12s %10.2f\n",
			scheme,
			float64(wb)/float64(baselines["Wuhan"]), fmtBytes(wb), paper["Wuhan"][scheme],
			float64(sb)/float64(baselines["Shanghai"]), fmtBytes(sb), paper["Shanghai"][scheme])
	}
	fmt.Fprintf(w, "\nshape check: SIFT > PCA-SIFT > RNPE > FAST, with FAST an order of magnitude\n")
	fmt.Fprintf(w, "below SIFT (paper: 0.11-0.14). FAST's summaries fit in memory; SIFT's do not.\n")
	return nil
}
