package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"

	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/driver"
)

// ingestRow is one worker-count measurement of the ingest sweep, serialized
// into BENCH_ingest.json so the performance trajectory of the write path is
// tracked across PRs.
type ingestRow struct {
	Workers      int     `json:"workers"`
	PhotosPerSec float64 `json:"photos_per_sec"`
	NsPerPhoto   float64 `json:"ns_per_photo"`
	Speedup      float64 `json:"speedup"`
	FeatureNs    int64   `json:"feature_ns"` // summed FE CPU time across workers
	SummaryNs    int64   `json:"summary_ns"` // summed SM CPU time across workers
	IndexNs      int64   `json:"index_ns"`   // SA+CHS commit time (sequential)
}

// ingestReport is the BENCH_ingest.json document.
type ingestReport struct {
	Experiment   string      `json:"experiment"`
	BuildPhotos  int         `json:"build_photos"`
	IngestPhotos int         `json:"ingest_photos"`
	GOMAXPROCS   int         `json:"gomaxprocs"`
	Rows         []ingestRow `json:"rows"`
}

// RunIngest measures the staged parallel ingest pipeline end to end: an
// engine is built over a bootstrap slice of the corpus, then the remaining
// photos stream in through Engine.InsertBatch (FE+SM worker pool feeding the
// ordered SA+CHS committer) at increasing worker counts. The index contents
// are identical at every worker count — the sweep varies only throughput —
// which is asserted here by comparing index sizes after each run. Results
// are printed and emitted as BENCH_ingest.json in the artifact directory.
func RunIngest(e *Env) error {
	w := e.Opts().Out
	header(w, "Throughput: staged parallel ingest pipeline (InsertBatch over pooled FE/SM)")

	ds, err := e.Dataset("Wuhan")
	if err != nil {
		return err
	}
	// Bootstrap on a third of the corpus (PCA training + initial index),
	// stream the rest. The table is sized for the full corpus so the sweep
	// measures ingest, not rehashing.
	split := len(ds.Photos) / 3
	if split < 8 {
		split = len(ds.Photos) / 2
	}
	boot, stream := ds.Photos[:split], ds.Photos[split:]
	if len(stream) == 0 {
		return fmt.Errorf("experiments: corpus too small for an ingest sweep (%d photos)", len(ds.Photos))
	}

	workerSet := map[int]bool{1: true, 4: true, runtime.GOMAXPROCS(0): true}
	workers := make([]int, 0, len(workerSet))
	for c := range workerSet {
		workers = append(workers, c)
	}
	sort.Ints(workers)

	fmt.Fprintf(w, "host: %d hardware thread(s); bootstrap %d photos, stream %d photos\n\n",
		runtime.NumCPU(), len(boot), len(stream))
	fmt.Fprintf(w, "%-8s | %12s %12s %10s %10s\n", "workers", "photos/sec", "ns/photo", "wall", "speedup")

	report := ingestReport{
		Experiment:   "ingest",
		BuildPhotos:  len(boot),
		IngestPhotos: len(stream),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
	}
	var base float64
	var wantBytes int64
	for _, c := range workers {
		eng := core.NewEngine(core.Config{TableCapacity: 2 * len(ds.Photos), IngestWorkers: 1})
		if _, err := eng.Build(boot); err != nil {
			return fmt.Errorf("experiments: bootstrap build: %w", err)
		}
		res, err := driver.Driver{}.RunIngest(eng, stream, c)
		if err != nil {
			return fmt.Errorf("experiments: ingest at %d workers: %w", c, err)
		}
		if eng.Len() != len(ds.Photos) {
			return fmt.Errorf("experiments: ingest at %d workers indexed %d of %d photos", c, eng.Len(), len(ds.Photos))
		}
		if wantBytes == 0 {
			wantBytes = eng.IndexBytes()
		} else if got := eng.IndexBytes(); got != wantBytes {
			return fmt.Errorf("experiments: ingest at %d workers produced index of %d bytes, want %d", c, got, wantBytes)
		}
		if base == 0 {
			base = res.Throughput
		}
		nsPerPhoto := float64(res.Elapsed.Nanoseconds()) / float64(res.Photos)
		fmt.Fprintf(w, "%-8d | %12.1f %12.0f %10s %9.1fx\n",
			c, res.Throughput, nsPerPhoto, fmtDur(res.Elapsed), res.Throughput/base)
		report.Rows = append(report.Rows, ingestRow{
			Workers:      c,
			PhotosPerSec: res.Throughput,
			NsPerPhoto:   nsPerPhoto,
			Speedup:      res.Throughput / base,
			FeatureNs:    res.Stats.FeatureTime.Nanoseconds(),
			SummaryNs:    res.Stats.SummaryTime.Nanoseconds(),
			IndexNs:      res.Stats.IndexTime.Nanoseconds(),
		})
	}

	path := filepath.Join(e.Opts().ArtifactDir, "BENCH_ingest.json")
	if err := writeJSONReport(path, report); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n(index contents verified identical across worker counts; machine-readable\nresults written to %s)\n", path)
	return nil
}

// writeJSONReport atomically-ish writes a machine-readable benchmark
// document (truncate+write is fine for a CI artifact).
func writeJSONReport(path string, report interface{}) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiments: creating %s: %w", path, err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return fmt.Errorf("experiments: writing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("experiments: closing %s: %w", path, err)
	}
	return nil
}
