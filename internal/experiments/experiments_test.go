package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/workload"
)

// tinyEnv provisions an environment small enough for unit tests:
// scale 1:300000 gives 70 Wuhan / 130 Shanghai photos.
func tinyEnv() (*Env, *bytes.Buffer) {
	var buf bytes.Buffer
	return NewEnv(Options{Scale: 300000, Queries: 2, Seed: 3, Out: &buf}), &buf
}

func TestAllRegistryAndByID(t *testing.T) {
	all := All()
	if len(all) != 19 {
		t.Fatalf("registry has %d experiments, want 19", len(all))
	}
	for _, ex := range all {
		got, err := ByID(ex.ID)
		if err != nil || got.ID != ex.ID {
			t.Errorf("ByID(%q) = %v, %v", ex.ID, got.ID, err)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown ID should fail")
	}
}

func TestEnvDatasetCachingAndErrors(t *testing.T) {
	e, _ := tinyEnv()
	a, err := e.Dataset("Wuhan")
	if err != nil {
		t.Fatalf("Dataset: %v", err)
	}
	b, err := e.Dataset("Wuhan")
	if err != nil || a != b {
		t.Error("dataset not cached")
	}
	if _, err := e.Dataset("Paris"); err == nil {
		t.Error("unknown dataset should fail")
	}
}

func TestEnvPipelineCaching(t *testing.T) {
	e, _ := tinyEnv()
	a, err := e.Pipeline("Wuhan", "FAST")
	if err != nil {
		t.Fatalf("Pipeline: %v", err)
	}
	b, err := e.Pipeline("Wuhan", "FAST")
	if err != nil || a != b {
		t.Error("pipeline not cached")
	}
	if _, err := e.Pipeline("Wuhan", "BOGUS"); err == nil {
		t.Error("unknown scheme should fail")
	}
}

func TestRunTable1(t *testing.T) {
	e, buf := tinyEnv()
	if err := RunTable1(e); err != nil {
		t.Fatalf("RunTable1: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"FAST (LSH+cuckoo)", "Spyglass (K-D tree)", "SmartStore (LSI)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunTable2(t *testing.T) {
	e, buf := tinyEnv()
	if err := RunTable2(e); err != nil {
		t.Fatalf("RunTable2: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"Wuhan", "Shanghai", "Landmarks", "jpeg"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunIngest(t *testing.T) {
	var buf bytes.Buffer
	dir := t.TempDir()
	e := NewEnv(Options{Scale: 300000, Queries: 2, Seed: 3, Out: &buf, ArtifactDir: dir})
	if err := RunIngest(e); err != nil {
		t.Fatalf("RunIngest: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"photos/sec", "speedup", "identical"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_ingest.json"))
	if err != nil {
		t.Fatalf("artifact not written: %v", err)
	}
	var report ingestReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("artifact not valid JSON: %v", err)
	}
	if report.Experiment != "ingest" || len(report.Rows) == 0 {
		t.Errorf("artifact content: %+v", report)
	}
	for _, row := range report.Rows {
		if row.PhotosPerSec <= 0 || row.Workers <= 0 {
			t.Errorf("bad row: %+v", row)
		}
	}
}

func TestRunTable4(t *testing.T) {
	e, buf := tinyEnv()
	if err := RunTable4(e); err != nil {
		t.Fatalf("RunTable4: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"SIFT", "PCA-SIFT", "RNPE", "FAST", "shape check"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFig3(t *testing.T) {
	e, buf := tinyEnv()
	if err := RunFig3(e); err != nil {
		t.Fatalf("RunFig3: %v", err)
	}
	if !strings.Contains(buf.String(), "feature") {
		t.Error("Fig3 output missing feature column")
	}
}

func TestRunFig6(t *testing.T) {
	e, buf := tinyEnv()
	if err := RunFig6(e); err != nil {
		t.Fatalf("RunFig6: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "standard cuckoo") || !strings.Contains(out, "FAST flat") {
		t.Error("Fig6 output missing variants")
	}
}

func TestRunFig7(t *testing.T) {
	e, buf := tinyEnv()
	if err := RunFig7(e); err != nil {
		t.Fatalf("RunFig7: %v", err)
	}
	if !strings.Contains(buf.String(), "speedup") {
		t.Error("Fig7 output missing speedup column")
	}
}

func TestRunThroughput(t *testing.T) {
	var buf bytes.Buffer
	dir := t.TempDir()
	e := NewEnv(Options{Scale: 300000, Queries: 2, Seed: 3, Out: &buf, ArtifactDir: dir})
	if err := RunThroughput(e); err != nil {
		t.Fatalf("RunThroughput: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"queries/sec", "speedup", "shard"} {
		if !strings.Contains(out, want) {
			t.Errorf("qps output missing %q", want)
		}
	}
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_query.json"))
	if err != nil {
		t.Fatalf("artifact not written: %v", err)
	}
	var report queryReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("artifact not valid JSON: %v", err)
	}
	if len(report.Rows) == 0 || report.Queries == 0 {
		t.Errorf("artifact content: %+v", report)
	}
	for _, row := range report.Rows {
		if row.QPS <= 0 || row.Workers <= 0 || row.P99Ns < row.P50Ns {
			t.Errorf("bad row: %+v", row)
		}
	}
}

func TestRunTiered(t *testing.T) {
	var buf bytes.Buffer
	dir := t.TempDir()
	e := NewEnv(Options{Scale: 300000, Queries: 2, Seed: 3, Out: &buf, ArtifactDir: dir})
	if err := RunTiered(e); err != nil {
		t.Fatalf("RunTiered: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"byte-identical", "tiered qps", "cold tier"} {
		if !strings.Contains(out, want) {
			t.Errorf("tiered output missing %q", want)
		}
	}
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_tiered.json"))
	if err != nil {
		t.Fatalf("artifact not written: %v", err)
	}
	var report tieredReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("artifact not valid JSON: %v", err)
	}
	if report.ColdEntries == 0 || report.Segments == 0 || report.IdentityChecks == 0 ||
		report.SpillProbes == 0 || len(report.Rows) == 0 {
		t.Errorf("artifact content: %+v", report)
	}
	for _, row := range report.Rows {
		if row.HotQPS <= 0 || row.TieredQPS <= 0 || row.Workers <= 0 {
			t.Errorf("bad row: %+v", row)
		}
	}
	// The tiered experiment runs on private engine copies: the shared env
	// engine must not have grown a cold tier or lost photos.
	if bp, err := e.Pipeline("Wuhan", "FAST"); err == nil {
		eng := bp.p.(*core.Engine)
		if eng.Stats().Tiered.Enabled {
			t.Error("env engine left with a cold tier enabled")
		}
	}
}

func TestRunCache(t *testing.T) {
	var buf bytes.Buffer
	dir := t.TempDir()
	e := NewEnv(Options{Scale: 300000, Queries: 2, Seed: 3, Out: &buf, ArtifactDir: dir})
	if err := RunCache(e); err != nil {
		t.Fatalf("RunCache: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"speedup", "verified byte-identical"} {
		if !strings.Contains(out, want) {
			t.Errorf("cache output missing %q", want)
		}
	}
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_cache.json"))
	if err != nil {
		t.Fatalf("artifact not written: %v", err)
	}
	var report cacheReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("artifact not valid JSON: %v", err)
	}
	if len(report.Rows) != 3 {
		t.Fatalf("want 3 reuse rows, got %+v", report.Rows)
	}
	for _, row := range report.Rows {
		if !row.IdentityVerified {
			t.Errorf("row %.0f%% not identity-verified", row.Reuse*100)
		}
		if row.CachedQPS <= 0 || row.UncachedQPS <= 0 || row.Distinct <= 0 {
			t.Errorf("bad row: %+v", row)
		}
	}
	// The experiment must leave the shared env engine with the tiers off.
	if bp, err := e.Pipeline("Wuhan", "FAST"); err == nil {
		eng := bp.p.(*core.Engine)
		if s, r := eng.CacheConfig(); s != 0 || r != 0 {
			t.Errorf("env engine left with caches on: %d/%d", s, r)
		}
	}
}

func TestReuseStreamDeterministicAndBounded(t *testing.T) {
	fresh := make([]workload.Query, 10)
	a := reuseStream(fresh, 40, 0.5, 7)
	b := reuseStream(fresh, 40, 0.5, 7)
	if len(a) != 40 || len(b) != 40 {
		t.Fatalf("stream lengths: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Probe != b[i].Probe {
			t.Fatalf("stream not deterministic at %d", i)
		}
	}
	// Zero reuse consumes fresh probes in order until the pool runs dry.
	zero := reuseStream(fresh, 10, 0, 7)
	for i := range zero {
		if &fresh[i].Probe != &zero[i].Probe && fresh[i].Probe != zero[i].Probe {
			t.Fatalf("zero-reuse stream diverged at %d", i)
		}
	}
}

func TestProjectBuildScalesWithCorpus(t *testing.T) {
	e, _ := tinyEnv()
	bp, err := e.Pipeline("Wuhan", "FAST")
	if err != nil {
		t.Fatal(err)
	}
	clu := DefaultPaperCluster()
	fw, sw := projectBuild(bp, "Wuhan", clu)
	fs, ss := projectBuild(bp, "Shanghai", clu)
	if fw <= 0 || sw <= 0 {
		t.Fatalf("projection not positive: %v, %v", fw, sw)
	}
	// Shanghai's corpus is larger, so the projected times must be larger.
	if fs <= fw || ss < sw {
		t.Errorf("projection does not scale with corpus: wuhan (%v,%v) shanghai (%v,%v)", fw, sw, fs, ss)
	}
}

func TestPaperPhotos(t *testing.T) {
	if paperPhotos("Wuhan") != 21_000_000 || paperPhotos("Shanghai") != 39_000_000 {
		t.Error("paper corpus sizes wrong")
	}
	if paperPhotos("X") != 0 {
		t.Error("unknown dataset should be 0")
	}
}

func TestFormattingHelpers(t *testing.T) {
	if got := fmtBytes(512); got != "512B" {
		t.Errorf("fmtBytes(512) = %s", got)
	}
	if got := fmtBytes(2 << 20); !strings.Contains(got, "MB") {
		t.Errorf("fmtBytes(2MB) = %s", got)
	}
	if got := fmtBytes(3 << 40); !strings.Contains(got, "TB") {
		t.Errorf("fmtBytes(3TB) = %s", got)
	}
}

func TestProjectQueryShapes(t *testing.T) {
	// The Figure 4 service-time model must preserve the paper's ordering at
	// paper scale: SIFT > PCA-SIFT > FAST, with RNPE serialized.
	clu := DefaultPaperCluster()
	m := measuredQuery{
		perPhotoBytes: 14_000,                 // SIFT-class footprint
		matchPerPhoto: 300 * time.Microsecond, // per stored photo
		groupFrac:     0.05,
		realQuery:     5 * time.Millisecond,
	}
	sift := projectQuery("SIFT", m, "Wuhan", clu)
	mSmall := m
	mSmall.perPhotoBytes = 2_200
	mSmall.matchPerPhoto = 60 * time.Microsecond
	pca := projectQuery("PCA-SIFT", mSmall, "Wuhan", clu)
	rnpe := projectQuery("RNPE", m, "Wuhan", clu)
	fast := projectQuery("FAST", m, "Wuhan", clu)

	if !(sift.Service > pca.Service && pca.Service > fast.Service) {
		t.Errorf("ordering violated: sift %v, pca %v, fast %v", sift.Service, pca.Service, fast.Service)
	}
	if !rnpe.Serialized || sift.Serialized || fast.Serialized {
		t.Error("serialization flags wrong")
	}
	if fast.Service != m.realQuery {
		t.Errorf("FAST service %v should equal measured %v", fast.Service, m.realQuery)
	}
	if unknown := projectQuery("NOPE", m, "Wuhan", clu); unknown.Service != 0 {
		t.Error("unknown scheme should project to zero")
	}
}

func TestRunSnapshot(t *testing.T) {
	var buf bytes.Buffer
	dir := t.TempDir()
	e := NewEnv(Options{Scale: 300000, Queries: 2, Seed: 3, Out: &buf, ArtifactDir: dir})
	if err := RunSnapshot(e); err != nil {
		t.Fatalf("RunSnapshot: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"dedup", "monolithic/gen", "chunked/gen"} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot output missing %q", want)
		}
	}
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_snapshot.json"))
	if err != nil {
		t.Fatalf("artifact not written: %v", err)
	}
	var report snapshotReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("artifact not valid JSON: %v", err)
	}
	if len(report.Rows) != 4 || report.Corpus == 0 || report.CDCAvg == 0 {
		t.Fatalf("artifact content: %+v", report)
	}
	for _, row := range report.Rows {
		if row.MonolithicBytesPerGen <= 0 || row.ChunkedBytesPerGen <= 0 || row.DedupRatio <= 0 {
			t.Errorf("bad row: %+v", row)
		}
		// Unchurned generations must be dramatically cheaper than monolithic
		// rewrites at any corpus size: only the manifest is written.
		if row.ChurnPct == 0 && row.DedupRatio < 5 {
			t.Errorf("0%% churn dedup ratio %.1f — chunk reuse broken", row.DedupRatio)
		}
	}
}

func TestRunCluster(t *testing.T) {
	var buf bytes.Buffer
	dir := t.TempDir()
	e := NewEnv(Options{Scale: 300000, Queries: 2, Seed: 3, Out: &buf, ArtifactDir: dir})
	if err := RunCluster(e); err != nil {
		t.Fatalf("RunCluster: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"byte-identical", "partial", "quorum lost", "catch-up"} {
		if !strings.Contains(out, want) {
			t.Errorf("cluster output missing %q", want)
		}
	}
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_cluster.json"))
	if err != nil {
		t.Fatalf("artifact not written: %v", err)
	}
	var report clusterReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("artifact not valid JSON: %v", err)
	}
	if !report.IdentityExact || !report.PartialVerified || !report.QuorumVerified {
		t.Fatalf("gates not verified: %+v", report)
	}
	if report.Shards != clusterShards || report.Corpus == 0 || report.IdentityQueries == 0 {
		t.Fatalf("artifact content: %+v", report)
	}
	if report.ColdTransferBytes <= 0 || report.DeltaTransferBytes <= 0 {
		t.Fatalf("transfer accounting missing: %+v", report)
	}
	// Even on a tiny corpus the incremental catch-up must move fewer bytes
	// than the cold one — the diff property, independent of the 25% gate.
	if report.DeltaTransferBytes >= report.ColdTransferBytes {
		t.Errorf("incremental catch-up (%d bytes) not cheaper than cold (%d bytes)",
			report.DeltaTransferBytes, report.ColdTransferBytes)
	}
}
