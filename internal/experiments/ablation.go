package experiments

import (
	"fmt"
	"math/rand"

	"github.com/fastrepro/fast/internal/bloom"
	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/cuckoo"
	"github.com/fastrepro/fast/internal/feature"
	"github.com/fastrepro/fast/internal/lsh"
	"github.com/fastrepro/fast/internal/metrics"
)

// RunAblation sweeps the design choices DESIGN.md calls out:
//
//  1. MinHash banding (bands x rows) — recall vs candidate-set size, the
//     false-negative/false-positive trade of Section III-C2;
//  2. the paper's p-stable family vs MinHash on the same summaries;
//  3. cuckoo neighborhood width ν — failure probability vs probe fan-out
//     (the Figure 6 mechanism);
//  4. Bloom summary size — accuracy vs space (the Table III/IV trade);
//  5. FE front end — DoG scale-space detection vs Harris corners (how much
//     accuracy depends on the detector's invariance properties).
func RunAblation(e *Env) error {
	w := e.Opts().Out
	header(w, "Ablations")

	ds, err := e.Dataset("Wuhan")
	if err != nil {
		return err
	}
	qs, err := ds.Queries(10, e.Opts().Seed+99)
	if err != nil {
		return err
	}

	// --- 1. MinHash banding sweep ---
	fmt.Fprintf(w, "\n[1] LSH banding (MinHash bands x rows): recall vs precision vs candidates\n")
	fmt.Fprintf(w, "%-12s | %8s %10s %12s\n", "bands x rows", "recall", "precision", "cand. frac")
	for _, cfg := range []lsh.MinHashParams{
		{Bands: 4, Rows: 1}, {Bands: 7, Rows: 1}, {Bands: 14, Rows: 1},
		{Bands: 7, Rows: 2}, {Bands: 14, Rows: 2},
	} {
		eng := core.NewEngine(core.Config{LSH: cfg})
		if _, err := eng.Build(ds.Photos); err != nil {
			return err
		}
		var acc, prec metrics.Accuracy
		var cand int
		for _, q := range qs {
			res, err := eng.Query(q.Probe, len(ds.Photos))
			if err != nil {
				return err
			}
			ids := make([]uint64, len(res))
			for i, r := range res {
				ids[i] = r.ID
			}
			ret := metrics.ScoreRetrieval(ids, q.Relevant)
			acc.Add(ret.Recall())
			prec.Add(ret.Precision())
			cand += len(res)
		}
		frac := float64(cand) / float64(len(qs)*len(ds.Photos))
		fmt.Fprintf(w, "%5dx%-6d | %8.3f %10.3f %12.3f\n", cfg.Bands, cfg.Rows, acc.Mean(), prec.Mean(), frac)
	}
	fmt.Fprintf(w, "(more bands -> higher recall and larger candidate sets; rows=2 prunes\n")
	fmt.Fprintf(w, " aggressively but loses recall — the paper prioritizes false negatives)\n")

	// --- 2. p-stable vs MinHash on identical summaries ---
	fmt.Fprintf(w, "\n[2] p-stable LSH (paper family) vs MinHash on the same summaries\n")
	if err := ablatePStable(e, w); err != nil {
		return err
	}

	// --- 3. Cuckoo neighborhood sweep ---
	fmt.Fprintf(w, "\n[3] flat-cuckoo neighborhood ν: failure probability and probe width at 96%% load\n")
	fmt.Fprintf(w, "%-6s | %12s %12s\n", "ν", "fail prob", "probe width")
	for _, nu := range []int{0, 1, 2, 4, 8} {
		const capacity = 1 << 14
		fails, attempts := 0, 0
		for trial := 0; trial < 8; trial++ {
			tb, err := cuckoo.NewFlat(capacity, nu, 0, e.Opts().Seed+int64(trial))
			if err != nil {
				return err
			}
			rng := rand.New(rand.NewSource(int64(trial) + 5))
			for i := 0; i < capacity*96/100; i++ {
				attempts++
				if err := tb.Insert(rng.Uint64()|1, 1); err != nil {
					fails++
				}
			}
		}
		width := 2 * (nu + 1)
		fmt.Fprintf(w, "%-6d | %12.2e %12d\n", nu, float64(fails)/float64(attempts), width)
	}
	fmt.Fprintf(w, "(wider neighborhoods trade constant probe fan-out for reliability)\n")

	// --- 4. Bloom summary size sweep ---
	fmt.Fprintf(w, "\n[4] Bloom summary size: recall/precision vs per-image summary bytes\n")
	fmt.Fprintf(w, "%-8s | %8s %10s %14s\n", "bits", "recall", "precision", "bytes/image")
	for _, bits := range []uint32{1024, 4096, 8192, 16384} {
		eng := core.NewEngine(core.Config{Summary: bloom.SummaryConfig{Bits: bits}})
		if _, err := eng.Build(ds.Photos); err != nil {
			return err
		}
		var acc, prec metrics.Accuracy
		for _, q := range qs {
			res, err := eng.Query(q.Probe, len(ds.Photos))
			if err != nil {
				return err
			}
			ids := make([]uint64, len(res))
			for i, r := range res {
				ids[i] = r.ID
			}
			ret := metrics.ScoreRetrieval(ids, q.Relevant)
			acc.Add(ret.Recall())
			prec.Add(ret.Precision())
		}
		perImage := float64(eng.IndexBytes()) / float64(len(ds.Photos))
		fmt.Fprintf(w, "%-8d | %8.3f %10.3f %14.0f\n", bits, acc.Mean(), prec.Mean(), perImage)
	}
	fmt.Fprintf(w, "(small filters inflate similarity through bit collisions: recall rises,\n")
	fmt.Fprintf(w, " precision falls — the false-positive/space trade of Tables III/IV)\n")

	// --- 5. FE front end: DoG vs Harris ---
	fmt.Fprintf(w, "\n[5] FE front end: DoG scale space vs Harris corners\n")
	fmt.Fprintf(w, "%-10s | %8s %10s\n", "detector", "recall", "precision")
	for _, det := range []struct {
		name string
		cfg  feature.DetectConfig
	}{
		{"DoG", feature.DetectConfig{}},
		{"Harris", feature.DetectConfig{UseHarris: true}},
	} {
		eng := core.NewEngine(core.Config{Detect: det.cfg})
		if _, err := eng.Build(ds.Photos); err != nil {
			return err
		}
		var acc, prec metrics.Accuracy
		for _, q := range qs {
			res, err := eng.Query(q.Probe, len(ds.Photos))
			if err != nil {
				return err
			}
			ids := make([]uint64, len(res))
			for i, r := range res {
				ids[i] = r.ID
			}
			ret := metrics.ScoreRetrieval(ids, q.Relevant)
			acc.Add(ret.Recall())
			prec.Add(ret.Precision())
		}
		fmt.Fprintf(w, "%-10s | %8.3f %10.3f\n", det.name, acc.Mean(), prec.Mean())
	}
	fmt.Fprintf(w, "(on this corpus, whose perturbations zoom by at most ±25%%, Harris's denser\n")
	fmt.Fprintf(w, " and highly repeatable corners recall more than DoG; DoG's scale-space\n")
	fmt.Fprintf(w, " invariance — the paper's choice — pays off under the larger viewpoint\n")
	fmt.Fprintf(w, " changes of real photography, Section III-B)\n")
	return nil
}

// ablatePStable compares the two LSH families over the engine's real
// summaries: it indexes every photo's summary under both families and
// reports recall of scene groups and candidate fractions.
func ablatePStable(e *Env, w interface{ Write([]byte) (int, error) }) error {
	ds, err := e.Dataset("Wuhan")
	if err != nil {
		return err
	}
	bp, err := e.Pipeline("Wuhan", "FAST")
	if err != nil {
		return err
	}
	eng := bp.p.(*core.Engine)

	// Collect summaries via the engine's public Summarize.
	summaries := make(map[uint64]*bloom.Filter, len(ds.Photos))
	for _, p := range ds.Photos {
		f, err := eng.Summarize(p.Img)
		if err != nil {
			return err
		}
		summaries[p.ID] = f
	}

	dim := int(bloom.SummaryConfig{}.WithDefaults().Bits)
	ps, err := lsh.New(lsh.Params{Dim: dim, Seed: e.Opts().Seed})
	if err != nil {
		return err
	}
	// A second p-stable index with ω chosen from the data (R estimated by
	// the paper's sampling procedure, ω = 8R so near neighbors collide with
	// p ≈ 0.9 per function).
	sample := make([][]float64, 0, 64)
	for _, f := range summaries {
		sample = append(sample, f.BitVector())
		if len(sample) == 64 {
			break
		}
	}
	r, err := lsh.EstimateR(sample, 0.5)
	if err != nil || r == 0 {
		r = 20
	}
	psTuned, err := lsh.New(lsh.Params{Dim: dim, Omega: 8 * r, Seed: e.Opts().Seed})
	if err != nil {
		return err
	}
	mh, err := lsh.NewMinHash(lsh.MinHashParams{Seed: e.Opts().Seed})
	if err != nil {
		return err
	}
	for id, f := range summaries {
		bv := f.BitVector()
		if err := ps.Insert(lsh.ItemID(id), bv); err != nil {
			return err
		}
		if err := psTuned.Insert(lsh.ItemID(id), bv); err != nil {
			return err
		}
		sp := bloom.ToSparse(f)
		if len(sp.Bits) == 0 {
			continue
		}
		if err := mh.Insert(lsh.ItemID(id), sp.Bits); err != nil {
			return err
		}
	}

	qs, err := ds.Queries(8, e.Opts().Seed+123)
	if err != nil {
		return err
	}
	type fam struct {
		name  string
		query func(f *bloom.Filter) ([]lsh.ItemID, error)
	}
	fams := []fam{
		{"p-stable (L7,M10,ω.85)", func(f *bloom.Filter) ([]lsh.ItemID, error) { return ps.Query(f.BitVector()) }},
		{fmt.Sprintf("p-stable (ω=8R=%.0f)", 8*r), func(f *bloom.Filter) ([]lsh.ItemID, error) { return psTuned.Query(f.BitVector()) }},
		{"MinHash (L7,M1)", func(f *bloom.Filter) ([]lsh.ItemID, error) {
			sp := bloom.ToSparse(f)
			if len(sp.Bits) == 0 {
				return nil, nil
			}
			return mh.Query(sp.Bits)
		}},
	}
	fmt.Fprintf(w, "%-24s | %8s %12s\n", "family", "recall", "cand. frac")
	for _, fm := range fams {
		var acc metrics.Accuracy
		cand := 0
		for _, q := range qs {
			probe, err := eng.Summarize(q.Probe)
			if err != nil {
				return err
			}
			ids, err := fm.query(probe)
			if err != nil {
				return err
			}
			u := make([]uint64, len(ids))
			for i, id := range ids {
				u[i] = uint64(id)
			}
			acc.Add(metrics.ScoreRetrieval(u, q.Relevant).Recall())
			cand += len(ids)
		}
		frac := float64(cand) / float64(len(qs)*len(ds.Photos))
		fmt.Fprintf(w, "%-24s | %8.3f %12.3f\n", fm.name, acc.Mean(), frac)
	}
	fmt.Fprintf(w, "(at the paper's ω=0.85 nothing collides on these summaries; with ω tuned to\n")
	fmt.Fprintf(w, " the data the family recalls neighbors but passes most of the corpus — the\n")
	fmt.Fprintf(w, " narrow l2 gap cannot be amplified. MinHash works in Jaccard space, where\n")
	fmt.Fprintf(w, " the same summaries separate cleanly — see the lsh package docs)\n")
	return nil
}
