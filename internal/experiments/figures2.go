package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"github.com/fastrepro/fast/internal/chunk"
	"github.com/fastrepro/fast/internal/cluster"
	"github.com/fastrepro/fast/internal/cuckoo"
	"github.com/fastrepro/fast/internal/dedup"
	"github.com/fastrepro/fast/internal/energy"
	"github.com/fastrepro/fast/internal/simimg"
	"github.com/fastrepro/fast/internal/store"
	"github.com/fastrepro/fast/internal/workload"
)

// RunFig6 regenerates Figure 6: insertion-failure (rehash) probability of
// FAST's flat-structured cuckoo table versus standard cuckoo hashing, as a
// function of the number of items inserted. The experiment inserts random
// keys into fixed-capacity tables and reports the cumulative failure
// probability in item-count buckets; many independent trials make the rare
// flat-table failures measurable.
func RunFig6(e *Env) error {
	w := e.Opts().Out
	header(w, "Figure 6: insertion failure (rehash) probability")
	const (
		capacity = 1 << 16
		trials   = 40
	)
	// Single-slot two-choice cuckoo hashing has a load threshold of 0.5:
	// below it failures are rare events (the paper's 1e-3/1e-6 regime),
	// above it insertion collapses. Matching the paper means measuring both
	// tables in the rare-failure regime, so we fill to 52%% of capacity.
	target := capacity * 52 / 100
	buckets := 8
	bucketSize := target / buckets

	type variant struct {
		name string
		mk   func(seed int64) cuckoo.Table
	}
	variants := []variant{
		{"standard cuckoo", func(seed int64) cuckoo.Table {
			t, _ := cuckoo.NewStandard(capacity, 0, seed)
			return t
		}},
		{"FAST flat (ν=4)", func(seed int64) cuckoo.Table {
			t, _ := cuckoo.NewFlat(capacity, cuckoo.DefaultNeighborhood, 0, seed)
			return t
		}},
	}

	fmt.Fprintf(w, "capacity %d cells, %d trials, inserting to %.0f%% load\n\n", capacity, trials, 100*float64(target)/capacity)
	fmt.Fprintf(w, "%-18s |", "items inserted")
	for b := 1; b <= buckets; b++ {
		fmt.Fprintf(w, " %9d", b*bucketSize)
	}
	fmt.Fprintf(w, "\n")

	overall := map[string]float64{}
	for _, v := range variants {
		fails := make([]int, buckets)
		attempts := make([]int, buckets)
		for trial := 0; trial < trials; trial++ {
			tb := v.mk(e.Opts().Seed + int64(trial))
			rng := rand.New(rand.NewSource(e.Opts().Seed + 1000 + int64(trial)))
			for i := 0; i < target; i++ {
				b := i / bucketSize
				if b >= buckets {
					b = buckets - 1
				}
				attempts[b]++
				if err := tb.Insert(rng.Uint64()|1, 1); err != nil {
					fails[b]++
				}
			}
		}
		fmt.Fprintf(w, "%-18s |", v.name)
		var totalF, totalA int
		for b := 0; b < buckets; b++ {
			p := float64(fails[b]) / float64(attempts[b])
			totalF += fails[b]
			totalA += attempts[b]
			fmt.Fprintf(w, " %9.2e", p)
		}
		overall[v.name] = float64(totalF) / float64(totalA)
		fmt.Fprintf(w, "\n")
	}
	ratio := 0.0
	if overall["FAST flat (ν=4)"] > 0 {
		ratio = overall["standard cuckoo"] / overall["FAST flat (ν=4)"]
	}
	attemptsTotal := trials * target
	fmt.Fprintf(w, "\noverall: standard %.2e vs flat %.2e", overall["standard cuckoo"], overall["FAST flat (ν=4)"])
	if ratio > 0 {
		fmt.Fprintf(w, " (%.0fx lower)", ratio)
	} else {
		fmt.Fprintf(w, " (no flat failures in %d inserts; probability < %.1e)", attemptsTotal, 1/float64(attemptsTotal))
	}
	fmt.Fprintf(w, "\npaper: 3.6e-3 vs 1.61e-6 (Wuhan), 4.8e-3 vs 1.77e-6 (Shanghai) — ~3 orders of magnitude\n")
	return nil
}

// fig7Cores is the core-count sweep of Figure 7.
var fig7Cores = []int{1, 2, 4, 8, 16, 32}

// RunFig7 regenerates Figure 7: query latency on a multicore node as a
// function of the number of cores used. Two measurements are reported:
//
//   - the real wall-clock latency of a large batch of flat-table lookups
//     with the given worker count (the data structure the paper credits for
//     the parallelism), and
//   - the simulated per-query latency on a cluster node with that many
//     cores serving a fixed request batch (the figure's setting).
func RunFig7(e *Env) error {
	w := e.Opts().Out
	header(w, "Figure 7: multicore-enabled parallel queries")
	fmt.Fprintf(w, "host has %d hardware thread(s): the real batch-lookup column can speed up\n", runtime.NumCPU())
	fmt.Fprintf(w, "at most that much; the simulated column models one 32-core node of the\n")
	fmt.Fprintf(w, "paper's testbed, where the flat probes' independence yields the linear trend.\n\n")

	// Real measurement: batched flat-cuckoo probing.
	const tableCap = 1 << 20
	flat, err := cuckoo.NewFlat(tableCap, cuckoo.DefaultNeighborhood, 0, e.Opts().Seed)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(e.Opts().Seed))
	keys := make([]uint64, tableCap/2)
	for i := range keys {
		keys[i] = rng.Uint64() | 1
		if err := flat.Insert(keys[i], uint64(i)); err != nil {
			return err
		}
	}
	// Shuffle in misses.
	probeKeys := make([]uint64, len(keys))
	for i := range probeKeys {
		if i%4 == 0 {
			probeKeys[i] = rng.Uint64() | 1
		} else {
			probeKeys[i] = keys[rng.Intn(len(keys))]
		}
	}

	fmt.Fprintf(w, "%-8s | %16s %10s | %16s %10s\n", "cores", "batch lookups", "speedup", "simulated query", "speedup")
	var base, simBase time.Duration
	for _, cores := range fig7Cores {
		// Best of several repetitions suppresses scheduler noise.
		elapsed := time.Duration(1 << 62)
		for rep := 0; rep < 5; rep++ {
			t0 := time.Now()
			flat.LookupBatch(probeKeys, cores)
			if d := time.Since(t0); d < elapsed {
				elapsed = d
			}
		}

		// Simulated per-query latency with a fixed service time spread over
		// a single node's cores.
		node, err := cluster.New(cluster.Config{Nodes: 1, CoresPerNode: cores})
		if err != nil {
			return err
		}
		reqs := make([]uint64, 512)
		for i := range reqs {
			reqs[i] = uint64(i)
		}
		st := node.RunWorkload(reqs, func(uint64) time.Duration { return 10 * time.Millisecond })

		if cores == 1 {
			base = elapsed
			simBase = st.Mean
		}
		fmt.Fprintf(w, "%-8d | %16s %9.1fx | %16s %9.1fx\n",
			cores, fmtDur(elapsed), float64(base)/float64(elapsed),
			fmtDur(st.Mean), float64(simBase)/float64(st.Mean))
	}
	fmt.Fprintf(w, "\nshape check: simulated latency decreases almost linearly with cores\n")
	fmt.Fprintf(w, "(paper Fig. 7); real-thread scaling follows on machines with that many cores\n")
	return nil
}

// RunFig8a regenerates Figure 8a: network transmission overhead of FAST's
// near-duplicate-aware uploads versus chunk-based transmission, across
// three user groups and growing image batches.
func RunFig8a(e *Env) error {
	w := e.Opts().Out
	header(w, "Figure 8a: network transmission overhead (bandwidth consumed, MB)")
	res, err := runSmartphone(e)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-22s |", "images")
	for _, n := range fig8Batches {
		fmt.Fprintf(w, " %9d", n)
	}
	fmt.Fprintf(w, "\n")
	for _, g := range res {
		fmt.Fprintf(w, "%-22s |", g.name+" chunk")
		for _, pt := range g.points {
			fmt.Fprintf(w, " %8.1fM", float64(pt.chunkBytes)/1e6)
		}
		fmt.Fprintf(w, "\n%-22s |", g.name+" FAST")
		for _, pt := range g.points {
			fmt.Fprintf(w, " %8.1fM", float64(pt.fastBytes)/1e6)
		}
		last := g.points[len(g.points)-1]
		fmt.Fprintf(w, "   (saving %.1f%%)\n", 100*(1-float64(last.fastBytes)/float64(last.chunkBytes)))
	}
	fmt.Fprintf(w, "\npaper: FAST achieves >55.2%% bandwidth savings, growing with batch size\n")
	return nil
}

// RunFig8b regenerates Figure 8b: smartphone energy consumption for the
// same upload batches, via the Monsoon-style energy model.
func RunFig8b(e *Env) error {
	w := e.Opts().Out
	header(w, "Figure 8b: smartphone energy consumption (joules)")
	res, err := runSmartphone(e)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-22s |", "images")
	for _, n := range fig8Batches {
		fmt.Fprintf(w, " %9d", n)
	}
	fmt.Fprintf(w, "\n")
	for _, g := range res {
		fmt.Fprintf(w, "%-22s |", g.name+" chunk")
		for _, pt := range g.points {
			fmt.Fprintf(w, " %8.0fJ", pt.chunkJoules)
		}
		fmt.Fprintf(w, "\n%-22s |", g.name+" FAST")
		for _, pt := range g.points {
			fmt.Fprintf(w, " %8.0fJ", pt.fastJoules)
		}
		last := g.points[len(g.points)-1]
		sav, _ := energy.Savings(last.chunkJoules, last.fastJoules)
		fmt.Fprintf(w, "   (saving %.1f%%)\n", 100*sav)
	}
	fmt.Fprintf(w, "\npaper: 46.9%%-62.2%% energy savings across the three user groups\n")
	return nil
}

// fig8Batches are the upload batch sizes (paper: 100-600).
var fig8Batches = []int{100, 200, 300, 400, 500, 600}

type fig8Point struct {
	chunkBytes, fastBytes   int64
	chunkJoules, fastJoules float64
}

type fig8Group struct {
	name   string
	points []fig8Point
}

var fig8Cache []fig8Group

// payloadScale is the factor by which on-the-wire payloads are reduced for
// experiment speed; energy and reported bandwidth are charged at unscaled
// size so the radio-vs-tail ratio matches real 1MB-class photos.
const payloadScale = 1000

// runSmartphone simulates the three crowdsourcing user groups uploading
// photo batches. The chunk-based baseline deduplicates byte-identical
// chunks; FAST's client additionally skips whole near-duplicate images via
// the dedup detector, transmitting only the compact summary for skipped
// images. Energy is charged by the model of the energy package.
func runSmartphone(e *Env) ([]fig8Group, error) {
	if fig8Cache != nil {
		return fig8Cache, nil
	}
	w := e.Opts().Out
	model := energy.DefaultWiFi()
	wifi := store.WiFi()

	var out []fig8Group
	for g := 0; g < 3; g++ {
		name := fmt.Sprintf("group%d", g+1)
		fmt.Fprintf(w, "[env] simulating %s uploads (%d images)...\n", name, fig8Batches[len(fig8Batches)-1])
		// Each group shoots its own disjoint set of landmarks; crowds
		// re-photograph the same scenes constantly, so near-duplicates
		// dominate. 8 scenes per group over up to 600 shots.
		spec := workload.Spec{
			Name:         name,
			Scenes:       8,
			Photos:       fig8Batches[len(fig8Batches)-1],
			Resolution:   64,
			MeanSeverity: 0.10,
			Seed:         e.Opts().Seed + int64(g)*977,
			SceneBase:    simimg.SceneID(5000 + g*100),
		}
		ds, err := workload.Generate(spec)
		if err != nil {
			return nil, err
		}

		detector := dedup.NewDetector(dedup.Config{})
		chunkIndex := chunk.NewIndex()
		chunkRec := energy.NewRecorder(model)
		fastRec := energy.NewRecorder(model)
		var chunkBytes, fastBytes int64
		var points []fig8Point
		next := 0
		for _, p := range ds.Photos {
			// Simulated on-the-wire image payload (content-addressable
			// bytes derived from the raster so identical scenes produce
			// overlapping chunks).
			payload := imagePayload(p)

			// Chunk-based baseline: CDC + fingerprint dedup, transmit new
			// chunks only.
			chunks, err := chunk.CDC(payload, chunk.CDCConfig{})
			if err != nil {
				return nil, err
			}
			r := chunkIndex.Add(chunks)
			chunkBytes += r.NewBytes * payloadScale
			chunkRec.RecordTransmission(r.NewBytes*payloadScale, wifi.Transfer(r.NewBytes*payloadScale))

			// FAST client: near-duplicate detection first.
			t0 := time.Now()
			dec, err := detector.Check(p.Img)
			if err != nil {
				return nil, err
			}
			fastRec.RecordCompute(time.Since(t0))
			if dec.Duplicate {
				// Only a summary reference is uploaded.
				const summaryBytes = 64
				fastBytes += summaryBytes
				fastRec.RecordTransmission(summaryBytes, wifi.Transfer(summaryBytes))
			} else {
				up := int64(len(payload)) * payloadScale
				fastBytes += up
				fastRec.RecordTransmission(up, wifi.Transfer(up))
			}

			if next < len(fig8Batches) && int(p.ID-ds.Photos[0].ID)+1 == fig8Batches[next] {
				points = append(points, fig8Point{
					chunkBytes:  chunkBytes,
					fastBytes:   fastBytes,
					chunkJoules: chunkRec.TotalJoules(),
					fastJoules:  fastRec.TotalJoules(),
				})
				next++
			}
		}
		for next < len(fig8Batches) {
			points = append(points, fig8Point{chunkBytes, fastBytes, chunkRec.TotalJoules(), fastRec.TotalJoules()})
			next++
		}
		out = append(out, fig8Group{name: name, points: points})
	}
	fig8Cache = out
	return out, nil
}

// imagePayload derives a deterministic byte payload from the photo's raster
// (a stand-in for its encoded file). Identical regions across retakes yield
// identical bytes, which is what chunk-level dedup can exploit; the payload
// size tracks the photo's simulated file size at a reduced scale.
func imagePayload(p *simimg.Photo) []byte {
	// 1 byte per pixel, repeated to ~SizeBytes/1000 (keeps the experiment
	// fast while preserving relative sizes).
	target := int(p.SizeBytes / 1000)
	if target < len(p.Img.Pix) {
		target = len(p.Img.Pix)
	}
	out := make([]byte, 0, target)
	for len(out) < target {
		for _, v := range p.Img.Pix {
			out = append(out, byte(v*255))
			if len(out) >= target {
				break
			}
		}
	}
	return out
}
