package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/driver"
)

// tieredQPSRow is one worker-count comparison in BENCH_tiered.json: the
// same prepared query stream through the all-RAM oracle and the tiered
// engine. Ratio is hot/tiered — how much the disk spill costs.
type tieredQPSRow struct {
	Workers   int     `json:"workers"`
	HotQPS    float64 `json:"hot_qps"`
	TieredQPS float64 `json:"tiered_qps"`
	Ratio     float64 `json:"ratio"`
}

// tieredReport is the BENCH_tiered.json document.
type tieredReport struct {
	Corpus    int `json:"corpus_photos"`
	Watermark int `json:"watermark"`
	// CorpusOverWatermark is the headline scale claim: how many times
	// larger the served corpus is than the RAM-resident hot tier.
	CorpusOverWatermark float64        `json:"corpus_over_watermark"`
	HotEntries          int            `json:"hot_entries"`
	ColdEntries         int            `json:"cold_entries"`
	Segments            int            `json:"segments"`
	ColdDiskBytes       int64          `json:"cold_disk_bytes"`
	Migrations          int64          `json:"migrations"`
	Compactions         int64          `json:"compactions"`
	SpillProbes         int64          `json:"spill_probes"`
	ColdPostingsScanned int64          `json:"cold_postings_scanned"`
	ColdBytesScanned    int64          `json:"cold_bytes_scanned"`
	IdentityChecks      int            `json:"identity_checks"` // oracle-compared queries across all stages
	Rows                []tieredQPSRow `json:"rows"`
}

// RunTiered is the acceptance benchmark for the disk-resident tiered
// index. An all-RAM oracle engine and a tiered copy (hot watermark ~1/12
// of the corpus, the rest served from mmap'd cold segments) answer the
// same query stream at every stage — after migration, after insert/delete
// churn, after compaction — and every answer must be byte-identical; any
// divergence fails the run. The run then measures the qps cost of the
// cold spill at increasing worker counts. Gates (enforced at bench scale,
// ≥500 photos): the corpus must be ≥10x the hot watermark, and tiered qps
// must stay within 10x of the all-RAM engine.
func RunTiered(e *Env) error {
	w := e.Opts().Out
	header(w, "Tiered index: hot in-RAM tier + mmap'd cold postings (identity-verified)")

	bp, err := e.Pipeline("Wuhan", "FAST")
	if err != nil {
		return err
	}
	built, ok := bp.p.(*core.Engine)
	if !ok {
		return fmt.Errorf("experiments: FAST pipeline is not a *core.Engine")
	}
	ds, err := e.Dataset("Wuhan")
	if err != nil {
		return err
	}

	// Both engines are fresh copies restored from one serialization of the
	// shared built engine: they differ only in tier placement, and the
	// churn below never leaks into other experiments of the same run.
	var base bytes.Buffer
	if _, err := built.WriteTo(&base); err != nil {
		return err
	}
	oracle, err := core.ReadEngine(bytes.NewReader(base.Bytes()))
	if err != nil {
		return fmt.Errorf("experiments: restoring oracle engine: %w", err)
	}
	tiered, err := core.ReadEngine(bytes.NewReader(base.Bytes()))
	if err != nil {
		return fmt.Errorf("experiments: restoring tiered engine: %w", err)
	}

	scratch, err := os.MkdirTemp("", "fast-tiered-bench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(scratch)

	watermark := len(ds.Photos) / 12
	if watermark < 8 {
		watermark = 8
	}
	if _, err := tiered.EnableColdTier(filepath.Join(scratch, "cold"), watermark, 128); err != nil {
		return fmt.Errorf("experiments: enabling cold tier: %w", err)
	}
	defer tiered.CloseColdTier()

	// Drain the hot tier to the watermark synchronously so the measured
	// state is deterministic; the background compactor covers the churn
	// phase below.
	for {
		over := tiered.Stats().Tiered.HotEntries - watermark
		if over <= 0 {
			break
		}
		if over > 128 {
			over = 128
		}
		n, err := tiered.MigrateCold(over)
		if err != nil {
			return fmt.Errorf("experiments: migrating to cold tier: %w", err)
		}
		if n == 0 {
			break
		}
	}
	ts := tiered.Stats().Tiered
	fmt.Fprintf(w, "corpus: %d photos; hot watermark %d (%.1fx corpus/watermark)\n",
		len(ds.Photos), watermark, float64(len(ds.Photos))/float64(watermark))
	fmt.Fprintf(w, "cold tier: %d entries in %d segments, %s on disk; hot tier holds %d\n\n",
		ts.ColdEntries, ts.Segments, fmtBytes(ts.ColdDiskBytes), ts.HotEntries)

	nq := 2 * e.Opts().Queries
	if nq < 12 {
		nq = 12
	}
	qs, err := ds.Queries(nq, e.Opts().Seed+11)
	if err != nil {
		return err
	}
	identityChecks := 0
	checkIdentity := func(stage string) error {
		for qi, q := range qs {
			want, err := oracle.Query(q.Probe, 40)
			if err != nil {
				return err
			}
			got, err := tiered.Query(q.Probe, 40)
			if err != nil {
				return err
			}
			if len(got) != len(want) {
				return fmt.Errorf("experiments: tiered %s query %d: %d results, oracle %d",
					stage, qi, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					return fmt.Errorf("experiments: tiered %s query %d result %d drifted (%+v vs oracle %+v)",
						stage, qi, i, got[i], want[i])
				}
			}
			identityChecks++
		}
		fmt.Fprintf(w, "identity %-16s %d queries byte-identical to the all-RAM oracle\n", stage+":", len(qs))
		return nil
	}
	if err := checkIdentity("after migration"); err != nil {
		return err
	}

	// Churn: fresh inserts (pushing the hot tier over its watermark, so
	// the background compactor migrates behind them) plus deletes striding
	// the original corpus — most land on cold-resident entries and become
	// catalog tombstones. Both engines see the same mutations.
	inserts := watermark / 2
	if inserts < 8 {
		inserts = 8
	}
	nextID := uint64(8_500_000)
	for i := 0; i < inserts; i++ {
		p := ds.FreshPhoto(nextID, int64(3000+i))
		if err := oracle.Insert(p); err != nil {
			return fmt.Errorf("experiments: churn insert: %w", err)
		}
		if err := tiered.Insert(p); err != nil {
			return fmt.Errorf("experiments: churn insert (tiered): %w", err)
		}
		nextID++
	}
	deletes := inserts / 2
	for i := 0; i < deletes; i++ {
		id := ds.Photos[(i*17)%len(ds.Photos)].ID
		if !oracle.Contains(id) {
			continue
		}
		if err := oracle.Delete(id); err != nil {
			return fmt.Errorf("experiments: churn delete: %w", err)
		}
		if err := tiered.Delete(id); err != nil {
			return fmt.Errorf("experiments: churn delete (tiered): %w", err)
		}
	}
	if err := checkIdentity("after churn"); err != nil {
		return err
	}

	// Wait for the background compactor to drain the insert overshoot, so
	// the qps measurement below sees a settled hot tier.
	settle := time.Now()
	for tiered.Stats().Tiered.HotEntries > watermark {
		if time.Since(settle) > 30*time.Second {
			return fmt.Errorf("experiments: compactor failed to drain hot tier to %d (at %d)",
				watermark, tiered.Stats().Tiered.HotEntries)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Fold the delete tombstones away and verify answers survive the
	// segment rewrite.
	if err := tiered.CompactColdTier(); err != nil {
		return fmt.Errorf("experiments: compacting cold tier: %w", err)
	}
	if ts := tiered.Stats().Tiered; ts.Tombstones != 0 {
		return fmt.Errorf("experiments: %d tombstones survived compaction", ts.Tombstones)
	}
	if err := checkIdentity("after compaction"); err != nil {
		return err
	}
	if oracle.Len() != tiered.Len() {
		return fmt.Errorf("experiments: tiered engine serves %d photos, oracle %d", tiered.Len(), oracle.Len())
	}

	// QPS: the same prepared stream through both engines. The tiered
	// engine pays mmap'd bucket scans for every probe whose candidates
	// spill past the hot tier; the ratio bounds that cost.
	fmt.Fprintf(w, "\n%-8s | %12s %12s %8s\n", "workers", "hot qps", "tiered qps", "ratio")
	final := tiered.Stats().Tiered
	report := tieredReport{
		Corpus:              len(ds.Photos),
		Watermark:           watermark,
		CorpusOverWatermark: float64(len(ds.Photos)) / float64(watermark),
		HotEntries:          final.HotEntries,
		ColdEntries:         final.ColdEntries,
		Segments:            final.Segments,
		ColdDiskBytes:       final.ColdDiskBytes,
		Migrations:          final.Migrations,
		Compactions:         final.Compactions,
		IdentityChecks:      identityChecks,
	}
	worstRatio := 0.0
	workerSet := map[int]bool{1: true, 4: true, runtime.GOMAXPROCS(0): true}
	workers := make([]int, 0, len(workerSet))
	for c := range workerSet {
		workers = append(workers, c)
	}
	sort.Ints(workers)
	for _, c := range workers {
		d := driver.Driver{Clients: c, TopK: 50}
		hot, err := d.RunBatchPrepared(oracle, ds, qs)
		if err != nil {
			return err
		}
		cold, err := d.RunBatchPrepared(tiered, ds, qs)
		if err != nil {
			return err
		}
		if hot.Failures > 0 || cold.Failures > 0 {
			return fmt.Errorf("experiments: %d hot / %d tiered queries failed", hot.Failures, cold.Failures)
		}
		ratio := hot.Throughput / cold.Throughput
		if ratio > worstRatio {
			worstRatio = ratio
		}
		report.Rows = append(report.Rows, tieredQPSRow{
			Workers: c, HotQPS: hot.Throughput, TieredQPS: cold.Throughput, Ratio: ratio,
		})
		fmt.Fprintf(w, "%-8d | %12.1f %12.1f %7.2fx\n", c, hot.Throughput, cold.Throughput, ratio)
	}
	st := tiered.Stats().Tiered
	report.SpillProbes = st.SpillProbes
	report.ColdPostingsScanned = st.ColdPostingsScanned
	report.ColdBytesScanned = st.ColdBytesScanned
	if st.SpillProbes == 0 {
		return fmt.Errorf("experiments: no query ever probed the cold tier — the measurement is vacuous")
	}

	// Acceptance gates, enforced at bench scale only: tiny smoke corpora
	// cannot put 10x the watermark on disk, and their qps ratios measure
	// fixed per-query overhead rather than the spill path.
	gateNote := "scale gates not enforced (corpus below bench scale)"
	if len(ds.Photos) >= 500 {
		if report.CorpusOverWatermark < 10 {
			return fmt.Errorf("experiments: corpus is only %.1fx the hot watermark — below the 10x gate",
				report.CorpusOverWatermark)
		}
		if worstRatio > 10 {
			return fmt.Errorf("experiments: tiered qps is %.1fx slower than all-RAM — above the 10x gate", worstRatio)
		}
		gateNote = fmt.Sprintf("gates clear: corpus %.1fx watermark (≥10x), worst qps ratio %.2fx (≤10x)",
			report.CorpusOverWatermark, worstRatio)
	}

	path := filepath.Join(e.Opts().ArtifactDir, "BENCH_tiered.json")
	if err := writeJSONReport(path, report); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n(cold spill: %d bucket probes scanned %d postings / %s across the run;\n%s;\nmachine-readable report written to %s)\n",
		st.SpillProbes, st.ColdPostingsScanned, fmtBytes(st.ColdBytesScanned), gateNote, path)
	return nil
}
