package experiments

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/fastrepro/fast/internal/chunk"
	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/metrics"
	"github.com/fastrepro/fast/internal/store"
)

// snapshotCDC is the chunking geometry the benchmark runs at. It is
// smaller than the production default (2KB/64KB/1MB) because the laptop-
// scale corpus serializes to a few hundred KB, not the multi-GB indexes
// the default targets: scaling the chunk size down with the payload keeps
// the chunks-per-snapshot count — and therefore the granularity of dedup
// the measurement exercises — representative. The geometry is recorded in
// BENCH_snapshot.json so runs are only compared like for like.
var snapshotCDC = chunk.Config{MinSize: 256, AvgSize: 2048, MaxSize: 16384, Normalization: 2}

// snapshotRow is one churn level's measurement in BENCH_snapshot.json.
type snapshotRow struct {
	ChurnPct      float64 `json:"churn_pct"`
	InsertsPerGen int     `json:"inserts_per_gen"`
	Generations   int     `json:"generations"` // churned writes measured (after the base write)
	// MonolithicBytesPerGen is what a monolithic generation costs: the
	// serialized payload size (mean over the churned writes).
	MonolithicBytesPerGen int64 `json:"monolithic_bytes_per_gen"`
	// ChunkedBytesPerGen is what a chunked generation actually wrote: new
	// chunk bytes plus the manifest (mean over the churned writes).
	ChunkedBytesPerGen int64   `json:"chunked_bytes_per_gen"`
	DedupRatio         float64 `json:"dedup_ratio"` // monolithic / chunked
	ChunksPerGen       int     `json:"chunks_per_gen"`
	ChunksReusedPerGen int     `json:"chunks_reused_per_gen"`
	WriteP50Ns         int64   `json:"write_p50_ns"`
	WriteP99Ns         int64   `json:"write_p99_ns"`
}

// snapshotReport is the BENCH_snapshot.json document.
type snapshotReport struct {
	Corpus  int           `json:"corpus_photos"`
	CDCMin  int           `json:"cdc_min"`
	CDCAvg  int           `json:"cdc_avg"`
	CDCMax  int           `json:"cdc_max"`
	CDCNorm int           `json:"cdc_normalization"`
	Rows    []snapshotRow `json:"rows"`
}

// RunSnapshot measures what the content-addressed snapshot store buys:
// bytes written per generation at increasing churn rates, against the
// monolithic cost of rewriting the whole serialized index every time. Each
// churn level starts from a fresh copy of the built engine and its own
// generation store, writes a base generation, then alternates batches of
// inserts (FAST's streaming-ingest churn) with snapshot writes; the row
// reports the mean per-generation cost of the churned writes, the dedup
// ratio, and write latency percentiles. After the last write the level's
// store is recovered and every probe must answer byte-identical to the
// live engine — a run that dedups well but recovers wrong fails here.
func RunSnapshot(e *Env) error {
	w := e.Opts().Out
	header(w, "Snapshot: content-addressed delta generations (FastCDC + manifests)")

	bp, err := e.Pipeline("Wuhan", "FAST")
	if err != nil {
		return err
	}
	eng, ok := bp.p.(*core.Engine)
	if !ok {
		return fmt.Errorf("experiments: FAST pipeline is not a *core.Engine")
	}
	ds, err := e.Dataset("Wuhan")
	if err != nil {
		return err
	}
	qs, err := ds.Queries(6, e.Opts().Seed+9)
	if err != nil {
		return err
	}

	// Each churn level mutates its own engine copy, restored from one
	// cached serialization, so levels are independent and repeatable.
	var base bytes.Buffer
	if _, err := eng.WriteTo(&base); err != nil {
		return err
	}

	const gens = 4
	scratch, err := os.MkdirTemp("", "fast-snapshot-bench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(scratch)
	fmt.Fprintf(w, "corpus: %d photos; chunking %d/%d/%d (min/avg/max), %d churned generations per level\n\n",
		len(ds.Photos), snapshotCDC.MinSize, snapshotCDC.AvgSize, snapshotCDC.MaxSize, gens)
	fmt.Fprintf(w, "%-8s | %14s %14s %9s %10s %10s\n",
		"churn", "monolithic/gen", "chunked/gen", "dedup", "write p50", "write p99")

	report := snapshotReport{
		Corpus: len(ds.Photos),
		CDCMin: snapshotCDC.MinSize, CDCAvg: snapshotCDC.AvgSize,
		CDCMax: snapshotCDC.MaxSize, CDCNorm: snapshotCDC.Normalization,
	}
	for li, churnPct := range []float64{0, 1, 5, 50} {
		lvl, err := core.ReadEngine(bytes.NewReader(base.Bytes()))
		if err != nil {
			return fmt.Errorf("experiments: restoring level engine: %w", err)
		}
		g := &store.Generations{
			Path:    filepath.Join(scratch, fmt.Sprintf("churn%d.fast", li)),
			Chunked: true,
			CDC:     snapshotCDC,
			Keep:    2,
		}
		if _, err := g.WriteSnapshot(lvl); err != nil {
			return fmt.Errorf("experiments: base snapshot at %.0f%% churn: %w", churnPct, err)
		}

		inserts := int(float64(len(ds.Photos)) * churnPct / 100)
		lat := metrics.NewLatency()
		var logical, physical int64
		var chunks, reused int
		nextID := uint64(7_000_000 + li*1_000_000)
		for gen := 0; gen < gens; gen++ {
			for i := 0; i < inserts; i++ {
				if err := lvl.Insert(ds.FreshPhoto(nextID, int64(li*1000+gen*100+i))); err != nil {
					return fmt.Errorf("experiments: churn insert: %w", err)
				}
				nextID++
			}
			t0 := time.Now()
			res, err := g.WriteSnapshot(lvl)
			if err != nil {
				return fmt.Errorf("experiments: churned snapshot: %w", err)
			}
			lat.Record(time.Since(t0))
			logical += res.LogicalBytes
			physical += res.PhysicalBytes
			chunks += res.Chunks
			reused += res.ChunksReused
		}

		// Identity gate: the level's newest generation must recover to the
		// live engine's exact answers.
		var restored *core.Engine
		if _, err := g.Recover(func(path string, r io.Reader) error {
			re, err := core.ReadEngine(r)
			if err != nil {
				return err
			}
			restored = re
			return nil
		}); err != nil {
			return fmt.Errorf("experiments: recovering %.0f%% churn store: %w", churnPct, err)
		}
		if restored.Len() != lvl.Len() {
			return fmt.Errorf("experiments: %.0f%% churn: recovered %d photos, live engine has %d",
				churnPct, restored.Len(), lvl.Len())
		}
		for qi, q := range qs {
			want, err := lvl.Query(q.Probe, 40)
			if err != nil {
				return err
			}
			got, err := restored.Query(q.Probe, 40)
			if err != nil {
				return err
			}
			if len(got) != len(want) {
				return fmt.Errorf("experiments: %.0f%% churn query %d: recovered %d results, live %d",
					churnPct, qi, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					return fmt.Errorf("experiments: %.0f%% churn query %d: result %d drifted (%+v vs %+v)",
						churnPct, qi, i, got[i], want[i])
				}
			}
		}

		s := lat.Summarize()
		row := snapshotRow{
			ChurnPct:              churnPct,
			InsertsPerGen:         inserts,
			Generations:           gens,
			MonolithicBytesPerGen: logical / gens,
			ChunkedBytesPerGen:    physical / gens,
			DedupRatio:            float64(logical) / float64(physical),
			ChunksPerGen:          chunks / gens,
			ChunksReusedPerGen:    reused / gens,
			WriteP50Ns:            s.Median.Nanoseconds(),
			WriteP99Ns:            s.P99.Nanoseconds(),
		}
		report.Rows = append(report.Rows, row)
		fmt.Fprintf(w, "%-8s | %14s %14s %8.1fx %10s %10s\n",
			fmt.Sprintf("%.0f%%", churnPct), fmtBytes(row.MonolithicBytesPerGen),
			fmtBytes(row.ChunkedBytesPerGen), row.DedupRatio,
			fmtDur(s.Median), fmtDur(s.P99))
	}

	// Acceptance gate: at ≤5% churn a chunked generation must cost at
	// least 10x less than a monolithic one. Only enforced at bench scale —
	// on tiny smoke corpora the snapshot splits into a handful of chunks
	// and per-write overhead (the manifest, boundary resync) dominates, so
	// the ratio measures chunk-count granularity, not dedup.
	gateNote := "10x dedup gate not enforced (corpus below bench scale)"
	if len(ds.Photos) >= 500 {
		for _, row := range report.Rows {
			if row.ChurnPct <= 5 && row.DedupRatio < 10 {
				return fmt.Errorf("experiments: dedup ratio %.1fx at %.0f%% churn — below the 10x gate",
					row.DedupRatio, row.ChurnPct)
			}
		}
		gateNote = "≤5% churn levels all clear the 10x dedup gate"
	}

	path := filepath.Join(e.Opts().ArtifactDir, "BENCH_snapshot.json")
	if err := writeJSONReport(path, report); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n(every level's store recovered byte-identical to its live engine;\n%s;\nmachine-readable report written to %s)\n", gateNote, path)
	return nil
}
