package experiments

import (
	"fmt"
	"math/rand"
	"path/filepath"

	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/driver"
	"github.com/fastrepro/fast/internal/workload"
)

// Cache tier sizes used by the experiment — the fastd defaults.
const (
	cacheExpSummaryEntries = 4096
	cacheExpResultEntries  = 8192
)

// cacheRow is one reuse-rate measurement of BENCH_cache.json.
type cacheRow struct {
	Reuse            float64 `json:"reuse"`             // fraction of probes repeating an earlier probe
	Queries          int     `json:"queries"`           // stream length
	Distinct         int     `json:"distinct"`          // distinct probes in the stream
	UncachedQPS      float64 `json:"uncached_qps"`      //
	UncachedP50Ns    int64   `json:"uncached_p50_ns"`   //
	UncachedP99Ns    int64   `json:"uncached_p99_ns"`   //
	CachedQPS        float64 `json:"cached_qps"`        //
	CachedP50Ns      int64   `json:"cached_p50_ns"`     //
	CachedP99Ns      int64   `json:"cached_p99_ns"`     //
	Speedup          float64 `json:"speedup"`           // cached QPS / uncached QPS
	SummaryHits      int64   `json:"summary_hits"`      //
	SummaryMisses    int64   `json:"summary_misses"`    //
	ResultHits       int64   `json:"result_hits"`       //
	ResultMisses     int64   `json:"result_misses"`     //
	IdentityVerified bool    `json:"identity_verified"` // cached answers compared against cold recomputes
}

// cacheReport is the BENCH_cache.json document.
type cacheReport struct {
	Corpus       int        `json:"corpus_photos"`
	Clients      int        `json:"clients"`
	TopK         int        `json:"topk"`
	SummaryCache int        `json:"summary_cache_entries"`
	ResultCache  int        `json:"result_cache_entries"`
	Rows         []cacheRow `json:"rows"`
}

// reuseStream builds a probe stream of the given length where each position
// repeats an earlier probe with probability reuse (uniformly over the probes
// already used) and otherwise consumes the next fresh probe. Deterministic
// for a given seed.
func reuseStream(fresh []workload.Query, length int, reuse float64, seed int64) []workload.Query {
	rng := rand.New(rand.NewSource(seed))
	stream := make([]workload.Query, 0, length)
	next := 0
	for i := 0; i < length; i++ {
		if (i > 0 && rng.Float64() < reuse) || next >= len(fresh) {
			stream = append(stream, stream[rng.Intn(len(stream))])
			continue
		}
		stream = append(stream, fresh[next])
		next++
	}
	return stream
}

// RunCache measures the tiered read-path cache (probe-summary memoization +
// epoch-versioned result cache) across probe-reuse rates: the same query
// stream replayed through QueryBatch with the tiers off and then cold-on.
// Before any number is reported, every distinct probe's cached answer is
// compared element-for-element against a cold QueryUncached recompute; a
// single mismatch fails the experiment (and the CI job running it).
func RunCache(e *Env) error {
	w := e.Opts().Out
	header(w, "Read-path cache: reuse sweep, cached vs uncached (identity-verified)")

	bp, err := e.Pipeline("Wuhan", "FAST")
	if err != nil {
		return err
	}
	eng, ok := bp.p.(*core.Engine)
	if !ok {
		return fmt.Errorf("experiments: FAST pipeline is not a *core.Engine")
	}
	// The env's engine is shared across experiments; leave it the way the
	// others expect it (tiers off) no matter how this experiment exits.
	defer eng.ConfigureCache(0, 0)

	ds, err := e.Dataset("Wuhan")
	if err != nil {
		return err
	}
	length := 16 * e.Opts().Queries
	if length < 120 {
		length = 120
	}
	fresh, err := ds.Queries(length, e.Opts().Seed+9)
	if err != nil {
		return err
	}

	const topK = 50
	d := driver.Driver{Clients: 8, TopK: topK}
	report := cacheReport{
		Corpus:       len(ds.Photos),
		Clients:      8,
		TopK:         topK,
		SummaryCache: cacheExpSummaryEntries,
		ResultCache:  cacheExpResultEntries,
	}

	fmt.Fprintf(w, "%-6s | %12s %12s %9s | %10s %10s | %s\n",
		"reuse", "uncached q/s", "cached q/s", "speedup", "cached p50", "cached p99", "hits (sum/res)")
	for _, reuse := range []float64{0, 0.5, 0.9} {
		stream := reuseStream(fresh, length, reuse, e.Opts().Seed+int64(reuse*100))

		eng.ConfigureCache(0, 0)
		uncached, err := d.RunBatch(eng, ds, stream)
		if err != nil {
			return err
		}
		if uncached.Failures > 0 {
			return fmt.Errorf("experiments: %d uncached queries failed", uncached.Failures)
		}

		eng.ConfigureCache(cacheExpSummaryEntries, cacheExpResultEntries) // cold tiers
		cached, err := d.RunBatch(eng, ds, stream)
		if err != nil {
			return err
		}
		if cached.Failures > 0 {
			return fmt.Errorf("experiments: %d cached queries failed", cached.Failures)
		}
		st := eng.CacheStats()

		// Identity gate: every distinct probe, answered warm from the cache,
		// must match a cold recompute byte for byte.
		seen := map[int]bool{}
		for _, q := range stream {
			qi := indexOf(fresh, q)
			if seen[qi] {
				continue
			}
			seen[qi] = true
			want, err := eng.QueryUncached(q.Probe, topK)
			if err != nil {
				return err
			}
			got, err := eng.Query(q.Probe, topK)
			if err != nil {
				return err
			}
			if len(got) != len(want) {
				return fmt.Errorf("experiments: cache identity violation (reuse %.0f%%, probe %d): %d results cached vs %d cold",
					reuse*100, qi, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					return fmt.Errorf("experiments: cache identity violation (reuse %.0f%%, probe %d, rank %d): %+v cached vs %+v cold",
						reuse*100, qi, i, got[i], want[i])
				}
			}
		}

		row := cacheRow{
			Reuse:            reuse,
			Queries:          len(stream),
			Distinct:         len(seen),
			UncachedQPS:      uncached.Throughput,
			UncachedP50Ns:    uncached.Latency.Median.Nanoseconds(),
			UncachedP99Ns:    uncached.Latency.P99.Nanoseconds(),
			CachedQPS:        cached.Throughput,
			CachedP50Ns:      cached.Latency.Median.Nanoseconds(),
			CachedP99Ns:      cached.Latency.P99.Nanoseconds(),
			Speedup:          cached.Throughput / uncached.Throughput,
			SummaryHits:      st.Summary.Hits,
			SummaryMisses:    st.Summary.Misses,
			ResultHits:       st.Result.Hits,
			ResultMisses:     st.Result.Misses,
			IdentityVerified: true,
		}
		report.Rows = append(report.Rows, row)
		fmt.Fprintf(w, "%-6.0f%%| %12.1f %12.1f %8.1fx | %10s %10s | %d/%d\n",
			reuse*100, row.UncachedQPS, row.CachedQPS, row.Speedup,
			fmtDur(cached.Latency.Median), fmtDur(cached.Latency.P99),
			row.SummaryHits, row.ResultHits)
	}

	path := filepath.Join(e.Opts().ArtifactDir, "BENCH_cache.json")
	if err := writeJSONReport(path, report); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n(every distinct probe's cached answer verified byte-identical to a cold\nrecompute before reporting; machine-readable results written to %s)\n", path)
	return nil
}

// indexOf locates a query in the fresh pool by probe pointer (streams reuse
// the pool's Query values, so pointer identity is exact).
func indexOf(fresh []workload.Query, q workload.Query) int {
	for i := range fresh {
		if fresh[i].Probe == q.Probe {
			return i
		}
	}
	return -1
}
