package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"github.com/fastrepro/fast/internal/client"
	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/metrics"
	"github.com/fastrepro/fast/internal/placement"
	"github.com/fastrepro/fast/internal/router"
	"github.com/fastrepro/fast/internal/server"
	"github.com/fastrepro/fast/internal/store"
)

// clusterShards is the topology the experiment measures: small enough to
// run as in-process HTTP servers, large enough that fan-out, merge, and
// the quorum rule (tolerate 1 of 3 down) all do real work.
const clusterShards = 3

// clusterReport is the BENCH_cluster.json document.
type clusterReport struct {
	Corpus          int    `json:"corpus_photos"`
	Shards          int    `json:"shards"`
	VNodes          int    `json:"vnodes_per_shard"`
	RingFingerprint string `json:"ring_fingerprint"`
	// Ring balance over the real corpus: photos on the smallest and
	// largest shard.
	SpreadMin int `json:"spread_min"`
	SpreadMax int `json:"spread_max"`
	// Identity: routed answers compared against the single-node oracle.
	IdentityQueries int  `json:"identity_queries"`
	IdentityExact   bool `json:"identity_exact"`
	// Latency of the routed path vs the single node, over the wire.
	RouterP50Ns int64 `json:"router_p50_ns"`
	RouterP99Ns int64 `json:"router_p99_ns"`
	SingleP50Ns int64 `json:"single_p50_ns"`
	SingleP99Ns int64 `json:"single_p99_ns"`
	// Degradation: one shard killed mid-run.
	PartialVerified bool `json:"partial_verified"`
	QuorumVerified  bool `json:"quorum_verified"`
	// Replica catch-up over the chunk store.
	ColdTransferBytes  int64   `json:"cold_transfer_bytes"`
	ColdPayloadBytes   int64   `json:"cold_payload_bytes"`
	ChurnPct           float64 `json:"churn_pct"`
	DeltaTransferBytes int64   `json:"delta_transfer_bytes"`
	DeltaPayloadBytes  int64   `json:"delta_payload_bytes"`
	DeltaChunksFetched int     `json:"delta_chunks_fetched"`
	DeltaChunksReused  int     `json:"delta_chunks_reused"`
	// DeltaTransferPct is the incremental catch-up's wire cost as a
	// percentage of a full snapshot transfer (the <25% acceptance gate).
	DeltaTransferPct float64 `json:"delta_transfer_pct"`
}

// RunCluster measures the multi-node tier end to end, over real HTTP:
//
//   - byte-identity: the same probes against a 3-shard router and a
//     single-node oracle holding the union corpus must answer exactly the
//     same results in the same order (scores bit-identical through the
//     JSON wire);
//   - graceful degradation: killing one shard flips answers to
//     partial-but-correct merges of the survivors; killing a second is a
//     quorum loss;
//   - replica catch-up: a cold replica pulls the full chunk set from a
//     primary, and after ~5% churn the second catch-up must transfer
//     < 25% of the full snapshot (the chunk-diff acceptance gate).
//
// Group expansion is disabled on oracle and shards alike — expansion
// re-queries the index with stored summaries of top hits, which crosses
// shard boundaries, so cluster serving always runs with it off.
func RunCluster(e *Env) error {
	w := e.Opts().Out
	header(w, "Cluster: sharded fan-out/merge identity, degradation, replica catch-up")

	ds, err := e.Dataset("Wuhan")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "[cluster] building union oracle (%d photos, expansion off)...\n", len(ds.Photos))
	oracle := core.NewEngine(core.Config{GroupExpand: -1})
	if _, err := oracle.Build(ds.Photos); err != nil {
		return err
	}
	var union bytes.Buffer
	if _, err := oracle.WriteTo(&union); err != nil {
		return err
	}

	ring, err := placement.New(placement.Config{Shards: clusterShards, VNodes: placement.DefaultVNodes, Seed: uint64(e.Opts().Seed)})
	if err != nil {
		return err
	}
	report := clusterReport{
		Corpus:          len(ds.Photos),
		Shards:          clusterShards,
		VNodes:          placement.DefaultVNodes,
		RingFingerprint: fmt.Sprintf("%016x", ring.Fingerprint()),
	}

	// Shard engines restore the oracle's serialization (same trained basis,
	// same geometry — the precondition for identical scores) and drop the
	// photos the ring places elsewhere; exactly fastd -shard-index's boot.
	ids := oracle.IDs()
	spread := ring.Spread(ids)
	report.SpreadMin, report.SpreadMax = spread[0], spread[0]
	for _, n := range spread[1:] {
		if n < report.SpreadMin {
			report.SpreadMin = n
		}
		if n > report.SpreadMax {
			report.SpreadMax = n
		}
	}
	fmt.Fprintf(w, "[cluster] ring %s: %d photos spread %v across %d shards\n",
		report.RingFingerprint, len(ids), spread, clusterShards)

	shardSrvs := make([]*httptest.Server, clusterShards)
	backends := make([]router.Backend, clusterShards)
	shardEngines := make([]*core.Engine, clusterShards)
	for s := 0; s < clusterShards; s++ {
		eng, err := core.ReadEngine(bytes.NewReader(union.Bytes()))
		if err != nil {
			return err
		}
		for _, id := range ids {
			if ring.Owner(id) != s {
				if err := eng.Delete(id); err != nil {
					return err
				}
			}
		}
		srv, err := server.New(server.Config{Engine: eng})
		if err != nil {
			return err
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		shardSrvs[s] = ts
		shardEngines[s] = eng
		backends[s] = client.New(ts.URL, client.WithHTTPClient(ts.Client()), client.WithRetries(1, 10*time.Millisecond))
	}

	// The single-node oracle also serves over HTTP so both sides of the
	// comparison pay the same wire (and prove float64 JSON exactness).
	oracleSrv, err := server.New(server.Config{Engine: oracle})
	if err != nil {
		return err
	}
	oracleTS := httptest.NewServer(oracleSrv.Handler())
	defer oracleTS.Close()
	oracleClient := client.New(oracleTS.URL, client.WithHTTPClient(oracleTS.Client()))

	rt, err := router.New(router.Config{Shards: backends, Ring: ring, ShardTimeout: 10 * time.Second})
	if err != nil {
		return err
	}
	routerTS := httptest.NewServer(rt.Handler())
	defer routerTS.Close()
	routerClient := client.New(routerTS.URL, client.WithHTTPClient(routerTS.Client()))

	// --- identity gate ---
	qs, err := ds.Queries(12, e.Opts().Seed+23)
	if err != nil {
		return err
	}
	const topK = 40
	ctx := context.Background()
	routed := metrics.NewLatency()
	single := metrics.NewLatency()
	for qi, q := range qs {
		t0 := time.Now()
		want, err := oracleClient.Query(ctx, q.Probe, topK)
		if err != nil {
			return fmt.Errorf("experiments: oracle query %d: %w", qi, err)
		}
		single.Record(time.Since(t0))
		t1 := time.Now()
		got, partial, err := routerClient.QueryDetailed(ctx, q.Probe, topK)
		if err != nil {
			return fmt.Errorf("experiments: routed query %d: %w", qi, err)
		}
		routed.Record(time.Since(t1))
		if partial {
			return fmt.Errorf("experiments: query %d flagged partial with all shards up", qi)
		}
		if len(got) != len(want) {
			return fmt.Errorf("experiments: query %d: routed %d results, oracle %d", qi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("experiments: query %d rank %d: routed {%d %.17g}, oracle {%d %.17g}",
					qi, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
			}
		}
	}
	report.IdentityQueries = len(qs)
	report.IdentityExact = true
	rs, ss := routed.Summarize(), single.Summarize()
	report.RouterP50Ns, report.RouterP99Ns = rs.Median.Nanoseconds(), rs.P99.Nanoseconds()
	report.SingleP50Ns, report.SingleP99Ns = ss.Median.Nanoseconds(), ss.P99.Nanoseconds()
	fmt.Fprintf(w, "[cluster] %d routed queries byte-identical to the single-node oracle\n", len(qs))
	fmt.Fprintf(w, "[cluster] latency over the wire: routed p50 %s p99 %s, single-node p50 %s p99 %s\n",
		fmtDur(rs.Median), fmtDur(rs.P99), fmtDur(ss.Median), fmtDur(ss.P99))

	// --- degradation: kill one shard, then a second ---
	shardSrvs[clusterShards-1].Close()
	got, partial, err := routerClient.QueryDetailed(ctx, qs[0].Probe, topK)
	if err != nil {
		return fmt.Errorf("experiments: query with one shard down: %w", err)
	}
	if !partial {
		return fmt.Errorf("experiments: one shard down but answer not flagged partial")
	}
	var liveLists [][]core.SearchResult
	for s := 0; s < clusterShards-1; s++ {
		res, err := shardEngines[s].Query(qs[0].Probe, topK)
		if err != nil {
			return err
		}
		liveLists = append(liveLists, res)
	}
	want := router.MergeTopK(liveLists, topK)
	if len(got) != len(want) {
		return fmt.Errorf("experiments: partial answer has %d results, survivors merge to %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("experiments: partial answer rank %d: %+v, survivors %+v", i, got[i], want[i])
		}
	}
	report.PartialVerified = true
	fmt.Fprintf(w, "[cluster] 1 shard killed: answers partial and exactly the survivors' merge\n")

	shardSrvs[clusterShards-2].Close()
	if _, _, err := routerClient.QueryDetailed(ctx, qs[0].Probe, topK); err == nil {
		return fmt.Errorf("experiments: majority of shards down but query succeeded")
	}
	report.QuorumVerified = true
	fmt.Fprintf(w, "[cluster] 2 shards killed: quorum lost, queries refused\n")

	// --- replica catch-up over the chunk store ---
	scratch, err := os.MkdirTemp("", "fast-cluster-bench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(scratch)
	primaryEng, err := core.ReadEngine(bytes.NewReader(union.Bytes()))
	if err != nil {
		return err
	}
	primaryGens := &store.Generations{
		Path:    filepath.Join(scratch, "primary.fast"),
		Chunked: true,
		CDC:     snapshotCDC,
		Keep:    2,
	}
	primarySrv, err := server.New(server.Config{Engine: primaryEng, Snapshots: primaryGens})
	if err != nil {
		return err
	}
	primaryTS := httptest.NewServer(primarySrv.Handler())
	defer primaryTS.Close()
	pc := client.New(primaryTS.URL, client.WithHTTPClient(primaryTS.Client()))
	if _, err := pc.SnapshotSave(ctx); err != nil {
		return err
	}

	replica := &store.Generations{
		Path:    filepath.Join(scratch, "replica.fast"),
		Chunked: true,
		CDC:     snapshotCDC,
		Keep:    2,
	}
	cold, err := pc.CatchUp(ctx, replica)
	if err != nil {
		return fmt.Errorf("experiments: cold catch-up: %w", err)
	}
	report.ColdTransferBytes = cold.BytesFetched + cold.ManifestBytes
	report.ColdPayloadBytes = cold.PayloadBytes
	fmt.Fprintf(w, "[cluster] cold replica: %s over the wire for a %s payload (%d chunks)\n",
		fmtBytes(report.ColdTransferBytes), fmtBytes(cold.PayloadBytes), cold.Chunks)

	// ~5% churn on the primary, then the incremental catch-up.
	churn := len(ds.Photos) * 5 / 100
	if churn < 1 {
		churn = 1
	}
	report.ChurnPct = 100 * float64(churn) / float64(len(ds.Photos))
	nextID := uint64(9_000_000)
	for i := 0; i < churn; i++ {
		if err := primaryEng.Insert(ds.FreshPhoto(nextID, int64(3000+i))); err != nil {
			return err
		}
		nextID++
	}
	if _, err := pc.SnapshotSave(ctx); err != nil {
		return err
	}
	delta, err := pc.CatchUp(ctx, replica)
	if err != nil {
		return fmt.Errorf("experiments: incremental catch-up: %w", err)
	}
	report.DeltaTransferBytes = delta.BytesFetched + delta.ManifestBytes
	report.DeltaPayloadBytes = delta.PayloadBytes
	report.DeltaChunksFetched = delta.ChunksFetched
	report.DeltaChunksReused = delta.ChunksReused
	report.DeltaTransferPct = 100 * float64(report.DeltaTransferBytes) / float64(delta.PayloadBytes)
	fmt.Fprintf(w, "[cluster] %.1f%% churn: catch-up moved %s of a %s payload (%.1f%%; %d/%d chunks reused)\n",
		report.ChurnPct, fmtBytes(report.DeltaTransferBytes), fmtBytes(delta.PayloadBytes),
		report.DeltaTransferPct, delta.ChunksReused, delta.Chunks)

	// The caught-up replica must recover to the primary's exact answers.
	var restored *core.Engine
	if _, err := replica.Recover(func(_ string, r io.Reader) error {
		re, err := core.ReadEngine(r)
		if err != nil {
			return err
		}
		restored = re
		return nil
	}); err != nil {
		return fmt.Errorf("experiments: recovering replica: %w", err)
	}
	if restored.Len() != primaryEng.Len() {
		return fmt.Errorf("experiments: replica recovered %d photos, primary has %d", restored.Len(), primaryEng.Len())
	}
	for qi, q := range qs[:4] {
		want, err := primaryEng.Query(q.Probe, topK)
		if err != nil {
			return err
		}
		got, err := restored.Query(q.Probe, topK)
		if err != nil {
			return err
		}
		if len(got) != len(want) {
			return fmt.Errorf("experiments: replica query %d: %d results, primary %d", qi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("experiments: replica query %d rank %d drifted (%+v vs %+v)", qi, i, got[i], want[i])
			}
		}
	}
	fmt.Fprintf(w, "[cluster] caught-up replica answers byte-identical to the live primary\n")

	// Acceptance gate: incremental catch-up must move < 25% of a full
	// snapshot at ≤5% divergence. Enforced only at bench scale — on tiny
	// smoke corpora the payload is a handful of chunks and the manifest
	// dominates, so the percentage measures granularity, not the diff.
	gateNote := "25% transfer gate not enforced (corpus below bench scale)"
	if len(ds.Photos) >= 500 {
		if report.DeltaTransferPct >= 25 {
			return fmt.Errorf("experiments: incremental catch-up moved %.1f%% of a full snapshot — above the 25%% gate",
				report.DeltaTransferPct)
		}
		gateNote = fmt.Sprintf("catch-up at %.1f%% churn clears the <25%% transfer gate (%.1f%%)",
			report.ChurnPct, report.DeltaTransferPct)
	}

	path := filepath.Join(e.Opts().ArtifactDir, "BENCH_cluster.json")
	if err := writeJSONReport(path, report); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n(routed answers byte-identical over the wire; degradation and quorum verified;\n%s;\nmachine-readable report written to %s)\n", gateNote, path)
	return nil
}
