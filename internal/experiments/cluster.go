package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"github.com/fastrepro/fast/internal/client"
	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/metrics"
	"github.com/fastrepro/fast/internal/placement"
	"github.com/fastrepro/fast/internal/replica"
	"github.com/fastrepro/fast/internal/router"
	"github.com/fastrepro/fast/internal/server"
	"github.com/fastrepro/fast/internal/store"
	"github.com/fastrepro/fast/internal/workload"
)

// clusterShards is the topology the experiment measures: small enough to
// run as in-process HTTP servers, large enough that fan-out, merge, and
// the quorum rule (tolerate 1 of 3 down) all do real work.
const clusterShards = 3

// clusterReport is the BENCH_cluster.json document.
type clusterReport struct {
	Corpus          int    `json:"corpus_photos"`
	Shards          int    `json:"shards"`
	VNodes          int    `json:"vnodes_per_shard"`
	RingFingerprint string `json:"ring_fingerprint"`
	// Ring balance over the real corpus: photos on the smallest and
	// largest shard.
	SpreadMin int `json:"spread_min"`
	SpreadMax int `json:"spread_max"`
	// Identity: routed answers compared against the single-node oracle.
	IdentityQueries int  `json:"identity_queries"`
	IdentityExact   bool `json:"identity_exact"`
	// Latency of the routed path vs the single node, over the wire.
	RouterP50Ns int64 `json:"router_p50_ns"`
	RouterP99Ns int64 `json:"router_p99_ns"`
	SingleP50Ns int64 `json:"single_p50_ns"`
	SingleP99Ns int64 `json:"single_p99_ns"`
	// Degradation: one shard killed mid-run.
	PartialVerified bool `json:"partial_verified"`
	QuorumVerified  bool `json:"quorum_verified"`
	// Replica catch-up over the chunk store.
	ColdTransferBytes  int64   `json:"cold_transfer_bytes"`
	ColdPayloadBytes   int64   `json:"cold_payload_bytes"`
	ChurnPct           float64 `json:"churn_pct"`
	DeltaTransferBytes int64   `json:"delta_transfer_bytes"`
	DeltaPayloadBytes  int64   `json:"delta_payload_bytes"`
	DeltaChunksFetched int     `json:"delta_chunks_fetched"`
	DeltaChunksReused  int     `json:"delta_chunks_reused"`
	// DeltaTransferPct is the incremental catch-up's wire cost as a
	// percentage of a full snapshot transfer (the <25% acceptance gate).
	DeltaTransferPct float64 `json:"delta_transfer_pct"`
	// Replica tier (rf=2 over the same corpus): every read policy
	// byte-identical to the oracle, observed read scaling under
	// round-robin (fraction of shard queries per routed query; the
	// theoretical floor is (S-n+1)/S), write freshness lag, live ring
	// reconfiguration, and fail-over with a full (non-partial) answer.
	ReplicaFactor         int      `json:"replica_factor"`
	ReplicaPoliciesExact  []string `json:"replica_policies_exact"`
	RoundRobinShardFrac   float64  `json:"round_robin_shard_fraction"`
	ReplicaRRP50Ns        int64    `json:"replica_rr_p50_ns"`
	ReplicaRRP99Ns        int64    `json:"replica_rr_p99_ns"`
	ReplicaInserts        int      `json:"replica_inserts"`
	ReplicaLagPending     int64    `json:"replica_lag_pending"`
	ReplicaQuiesceNs      int64    `json:"replica_quiesce_ns"`
	RingUpdateVerified    bool     `json:"ring_update_identity"`
	RingUpdateAcquired    int      `json:"ring_update_acquired"`
	RingUpdateShed        int      `json:"ring_update_shed"`
	ReplicaKillFullAnswer bool     `json:"replica_kill_full_answer"`
}

// RunCluster measures the multi-node tier end to end, over real HTTP:
//
//   - byte-identity: the same probes against a 3-shard router and a
//     single-node oracle holding the union corpus must answer exactly the
//     same results in the same order (scores bit-identical through the
//     JSON wire);
//   - graceful degradation: killing one shard flips answers to
//     partial-but-correct merges of the survivors; killing a second is a
//     quorum loss;
//   - replica catch-up: a cold replica pulls the full chunk set from a
//     primary, and after ~5% churn the second catch-up must transfer
//     < 25% of the full snapshot (the chunk-diff acceptance gate).
//
// Group expansion is disabled on oracle and shards alike — expansion
// re-queries the index with stored summaries of top hits, which crosses
// shard boundaries, so cluster serving always runs with it off.
func RunCluster(e *Env) error {
	w := e.Opts().Out
	header(w, "Cluster: sharded fan-out/merge identity, degradation, replica catch-up")

	ds, err := e.Dataset("Wuhan")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "[cluster] building union oracle (%d photos, expansion off)...\n", len(ds.Photos))
	oracle := core.NewEngine(core.Config{GroupExpand: -1})
	if _, err := oracle.Build(ds.Photos); err != nil {
		return err
	}
	var union bytes.Buffer
	if _, err := oracle.WriteTo(&union); err != nil {
		return err
	}

	ring, err := placement.New(placement.Config{Shards: clusterShards, VNodes: placement.DefaultVNodes, Seed: uint64(e.Opts().Seed)})
	if err != nil {
		return err
	}
	report := clusterReport{
		Corpus:          len(ds.Photos),
		Shards:          clusterShards,
		VNodes:          placement.DefaultVNodes,
		RingFingerprint: fmt.Sprintf("%016x", ring.Fingerprint()),
	}

	// Shard engines restore the oracle's serialization (same trained basis,
	// same geometry — the precondition for identical scores) and drop the
	// photos the ring places elsewhere; exactly fastd -shard-index's boot.
	ids := oracle.IDs()
	spread := ring.Spread(ids)
	report.SpreadMin, report.SpreadMax = spread[0], spread[0]
	for _, n := range spread[1:] {
		if n < report.SpreadMin {
			report.SpreadMin = n
		}
		if n > report.SpreadMax {
			report.SpreadMax = n
		}
	}
	fmt.Fprintf(w, "[cluster] ring %s: %d photos spread %v across %d shards\n",
		report.RingFingerprint, len(ids), spread, clusterShards)

	shardSrvs := make([]*httptest.Server, clusterShards)
	backends := make([]router.Backend, clusterShards)
	shardEngines := make([]*core.Engine, clusterShards)
	for s := 0; s < clusterShards; s++ {
		eng, err := core.ReadEngine(bytes.NewReader(union.Bytes()))
		if err != nil {
			return err
		}
		for _, id := range ids {
			if ring.Owner(id) != s {
				if err := eng.Delete(id); err != nil {
					return err
				}
			}
		}
		srv, err := server.New(server.Config{Engine: eng})
		if err != nil {
			return err
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		shardSrvs[s] = ts
		shardEngines[s] = eng
		backends[s] = router.NewClientBackend(client.New(ts.URL, client.WithHTTPClient(ts.Client()), client.WithRetries(1, 10*time.Millisecond)))
	}

	// The single-node oracle also serves over HTTP so both sides of the
	// comparison pay the same wire (and prove float64 JSON exactness).
	oracleSrv, err := server.New(server.Config{Engine: oracle})
	if err != nil {
		return err
	}
	oracleTS := httptest.NewServer(oracleSrv.Handler())
	defer oracleTS.Close()
	oracleClient := client.New(oracleTS.URL, client.WithHTTPClient(oracleTS.Client()))

	rt, err := router.New(router.Config{Shards: backends, Ring: ring, ShardTimeout: 10 * time.Second})
	if err != nil {
		return err
	}
	defer rt.Close()
	routerTS := httptest.NewServer(rt.Handler())
	defer routerTS.Close()
	routerClient := client.New(routerTS.URL, client.WithHTTPClient(routerTS.Client()))

	// --- identity gate ---
	qs, err := ds.Queries(12, e.Opts().Seed+23)
	if err != nil {
		return err
	}
	const topK = 40
	ctx := context.Background()
	routed := metrics.NewLatency()
	single := metrics.NewLatency()
	for qi, q := range qs {
		t0 := time.Now()
		want, err := oracleClient.Query(ctx, q.Probe, topK)
		if err != nil {
			return fmt.Errorf("experiments: oracle query %d: %w", qi, err)
		}
		single.Record(time.Since(t0))
		t1 := time.Now()
		got, partial, err := routerClient.QueryDetailed(ctx, q.Probe, topK)
		if err != nil {
			return fmt.Errorf("experiments: routed query %d: %w", qi, err)
		}
		routed.Record(time.Since(t1))
		if partial {
			return fmt.Errorf("experiments: query %d flagged partial with all shards up", qi)
		}
		if len(got) != len(want) {
			return fmt.Errorf("experiments: query %d: routed %d results, oracle %d", qi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("experiments: query %d rank %d: routed {%d %.17g}, oracle {%d %.17g}",
					qi, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
			}
		}
	}
	report.IdentityQueries = len(qs)
	report.IdentityExact = true
	rs, ss := routed.Summarize(), single.Summarize()
	report.RouterP50Ns, report.RouterP99Ns = rs.Median.Nanoseconds(), rs.P99.Nanoseconds()
	report.SingleP50Ns, report.SingleP99Ns = ss.Median.Nanoseconds(), ss.P99.Nanoseconds()
	fmt.Fprintf(w, "[cluster] %d routed queries byte-identical to the single-node oracle\n", len(qs))
	fmt.Fprintf(w, "[cluster] latency over the wire: routed p50 %s p99 %s, single-node p50 %s p99 %s\n",
		fmtDur(rs.Median), fmtDur(rs.P99), fmtDur(ss.Median), fmtDur(ss.P99))

	// --- degradation: kill one shard, then a second ---
	shardSrvs[clusterShards-1].Close()
	got, partial, err := routerClient.QueryDetailed(ctx, qs[0].Probe, topK)
	if err != nil {
		return fmt.Errorf("experiments: query with one shard down: %w", err)
	}
	if !partial {
		return fmt.Errorf("experiments: one shard down but answer not flagged partial")
	}
	var liveLists [][]core.SearchResult
	for s := 0; s < clusterShards-1; s++ {
		res, err := shardEngines[s].Query(qs[0].Probe, topK)
		if err != nil {
			return err
		}
		liveLists = append(liveLists, res)
	}
	want := router.MergeTopK(liveLists, topK)
	if len(got) != len(want) {
		return fmt.Errorf("experiments: partial answer has %d results, survivors merge to %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("experiments: partial answer rank %d: %+v, survivors %+v", i, got[i], want[i])
		}
	}
	report.PartialVerified = true
	fmt.Fprintf(w, "[cluster] 1 shard killed: answers partial and exactly the survivors' merge\n")

	shardSrvs[clusterShards-2].Close()
	if _, _, err := routerClient.QueryDetailed(ctx, qs[0].Probe, topK); err == nil {
		return fmt.Errorf("experiments: majority of shards down but query succeeded")
	}
	report.QuorumVerified = true
	fmt.Fprintf(w, "[cluster] 2 shards killed: quorum lost, queries refused\n")

	// --- replica catch-up over the chunk store ---
	scratch, err := os.MkdirTemp("", "fast-cluster-bench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(scratch)
	primaryEng, err := core.ReadEngine(bytes.NewReader(union.Bytes()))
	if err != nil {
		return err
	}
	primaryGens := &store.Generations{
		Path:    filepath.Join(scratch, "primary.fast"),
		Chunked: true,
		CDC:     snapshotCDC,
		Keep:    2,
	}
	primarySrv, err := server.New(server.Config{Engine: primaryEng, Snapshots: primaryGens})
	if err != nil {
		return err
	}
	primaryTS := httptest.NewServer(primarySrv.Handler())
	defer primaryTS.Close()
	pc := client.New(primaryTS.URL, client.WithHTTPClient(primaryTS.Client()))
	if _, err := pc.SnapshotSave(ctx); err != nil {
		return err
	}

	replStore := &store.Generations{
		Path:    filepath.Join(scratch, "replica.fast"),
		Chunked: true,
		CDC:     snapshotCDC,
		Keep:    2,
	}
	cold, err := pc.CatchUp(ctx, replStore)
	if err != nil {
		return fmt.Errorf("experiments: cold catch-up: %w", err)
	}
	report.ColdTransferBytes = cold.BytesFetched + cold.ManifestBytes
	report.ColdPayloadBytes = cold.PayloadBytes
	fmt.Fprintf(w, "[cluster] cold replica: %s over the wire for a %s payload (%d chunks)\n",
		fmtBytes(report.ColdTransferBytes), fmtBytes(cold.PayloadBytes), cold.Chunks)

	// ~5% churn on the primary, then the incremental catch-up.
	churn := len(ds.Photos) * 5 / 100
	if churn < 1 {
		churn = 1
	}
	report.ChurnPct = 100 * float64(churn) / float64(len(ds.Photos))
	nextID := uint64(9_000_000)
	for i := 0; i < churn; i++ {
		if err := primaryEng.Insert(ds.FreshPhoto(nextID, int64(3000+i))); err != nil {
			return err
		}
		nextID++
	}
	if _, err := pc.SnapshotSave(ctx); err != nil {
		return err
	}
	delta, err := pc.CatchUp(ctx, replStore)
	if err != nil {
		return fmt.Errorf("experiments: incremental catch-up: %w", err)
	}
	report.DeltaTransferBytes = delta.BytesFetched + delta.ManifestBytes
	report.DeltaPayloadBytes = delta.PayloadBytes
	report.DeltaChunksFetched = delta.ChunksFetched
	report.DeltaChunksReused = delta.ChunksReused
	report.DeltaTransferPct = 100 * float64(report.DeltaTransferBytes) / float64(delta.PayloadBytes)
	fmt.Fprintf(w, "[cluster] %.1f%% churn: catch-up moved %s of a %s payload (%.1f%%; %d/%d chunks reused)\n",
		report.ChurnPct, fmtBytes(report.DeltaTransferBytes), fmtBytes(delta.PayloadBytes),
		report.DeltaTransferPct, delta.ChunksReused, delta.Chunks)

	// The caught-up replica must recover to the primary's exact answers.
	var restored *core.Engine
	if _, err := replStore.Recover(func(_ string, r io.Reader) error {
		re, err := core.ReadEngine(r)
		if err != nil {
			return err
		}
		restored = re
		return nil
	}); err != nil {
		return fmt.Errorf("experiments: recovering replica: %w", err)
	}
	if restored.Len() != primaryEng.Len() {
		return fmt.Errorf("experiments: replica recovered %d photos, primary has %d", restored.Len(), primaryEng.Len())
	}
	for qi, q := range qs[:4] {
		want, err := primaryEng.Query(q.Probe, topK)
		if err != nil {
			return err
		}
		got, err := restored.Query(q.Probe, topK)
		if err != nil {
			return err
		}
		if len(got) != len(want) {
			return fmt.Errorf("experiments: replica query %d: %d results, primary %d", qi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("experiments: replica query %d rank %d drifted (%+v vs %+v)", qi, i, got[i], want[i])
			}
		}
	}
	fmt.Fprintf(w, "[cluster] caught-up replica answers byte-identical to the live primary\n")

	// Acceptance gate: incremental catch-up must move < 25% of a full
	// snapshot at ≤5% divergence. Enforced only at bench scale — on tiny
	// smoke corpora the payload is a handful of chunks and the manifest
	// dominates, so the percentage measures granularity, not the diff.
	gateNote := "25% transfer gate not enforced (corpus below bench scale)"
	if len(ds.Photos) >= 500 {
		if report.DeltaTransferPct >= 25 {
			return fmt.Errorf("experiments: incremental catch-up moved %.1f%% of a full snapshot — above the 25%% gate",
				report.DeltaTransferPct)
		}
		gateNote = fmt.Sprintf("catch-up at %.1f%% churn clears the <25%% transfer gate (%.1f%%)",
			report.ChurnPct, report.DeltaTransferPct)
	}

	// --- replica tier: rf=2 read scaling, freshness, live reconfiguration ---
	if err := clusterReplicaTier(e, w, ds, union.Bytes(), qs, oracleClient, &report); err != nil {
		return err
	}

	path := filepath.Join(e.Opts().ArtifactDir, "BENCH_cluster.json")
	if err := writeJSONReport(path, report); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n(routed answers byte-identical over the wire; degradation and quorum verified;\n%s;\nmachine-readable report written to %s)\n", gateNote, path)
	return nil
}

// clusterReplicaTier measures the replica-aware read path over real HTTP:
// an rf=2 cluster of clusterShards shards over the same union corpus,
// checked for byte-identity under every read policy, observed read
// scaling under round-robin, replicated-write freshness, a live ring
// update under continuous query load, and — last, because it kills a
// shard — a full (non-partial) fail-over answer.
func clusterReplicaTier(e *Env, w io.Writer, ds *workload.Dataset, union []byte, qs []workload.Query, oracleClient *client.Client, report *clusterReport) error {
	const rf = 2
	const topK = 40
	ctx := context.Background()
	report.ReplicaFactor = rf

	ringCfg := placement.Config{Shards: clusterShards, VNodes: placement.DefaultVNodes, Seed: uint64(e.Opts().Seed), Epoch: 1}
	ring, err := placement.New(ringCfg)
	if err != nil {
		return err
	}

	// Shard engines are clones of the union oracle subset by Owners(id, rf)
	// membership — each photo lives on rf shards, exactly what fastd
	// -replicas boots. The peer fetcher resolves lazily over the client
	// slice because the servers exist before their URLs do.
	shardTS := make([]*httptest.Server, clusterShards)
	shardClients := make([]*client.Client, clusterShards)
	backends := make([]router.Backend, clusterShards)
	fetcher := &replica.Fetcher{Resolve: func(shard int) (*client.Client, error) {
		if shard < 0 || shard >= len(shardClients) || shardClients[shard] == nil {
			return nil, fmt.Errorf("no peer client for shard %d", shard)
		}
		return shardClients[shard], nil
	}}
	copies := 0
	for s := 0; s < clusterShards; s++ {
		eng, err := core.ReadEngine(bytes.NewReader(union))
		if err != nil {
			return err
		}
		kept, _, err := replica.Subset(eng, ring, rf, s)
		if err != nil {
			return err
		}
		copies += kept
		srv, err := server.New(server.Config{
			Engine: eng,
			Shard:  &server.ShardConfig{Index: s, Ring: ringCfg, Replicas: rf, Fetcher: fetcher},
		})
		if err != nil {
			return err
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		shardTS[s] = ts
		shardClients[s] = client.New(ts.URL, client.WithHTTPClient(ts.Client()))
		backends[s] = router.NewClientBackend(client.New(ts.URL, client.WithHTTPClient(ts.Client()), client.WithRetries(1, 10*time.Millisecond)))
	}
	if copies != rf*len(ds.Photos) {
		return fmt.Errorf("experiments: rf=%d subsetting left %d photo copies, want %d", rf, copies, rf*len(ds.Photos))
	}
	fmt.Fprintf(w, "[cluster] replica tier rf=%d: %d photo copies across %d shards\n", rf, copies, clusterShards)

	sumShardQueries := func() (int64, error) {
		var sum int64
		for _, sc := range shardClients {
			st, err := sc.Stats(ctx)
			if err != nil {
				return 0, err
			}
			sum += st.Queries
		}
		return sum, nil
	}

	// Every read policy must answer byte-identically to the oracle; the
	// round-robin pass additionally measures read scaling: with replica
	// factor n each query needs only S-n+1 of S shards.
	for _, pol := range []router.ReadPolicy{router.ReadPrimary, router.ReadRoundRobin, router.ReadHedged} {
		prt, err := router.New(router.Config{Shards: backends, Ring: ring, Replicas: rf, Policy: pol, ShardTimeout: 10 * time.Second})
		if err != nil {
			return err
		}
		pts := httptest.NewServer(prt.Handler())
		pclient := client.New(pts.URL, client.WithHTTPClient(pts.Client()))
		before, err := sumShardQueries()
		if err != nil {
			return err
		}
		lat := metrics.NewLatency()
		for qi, q := range qs {
			want, err := oracleClient.Query(ctx, q.Probe, topK)
			if err != nil {
				return err
			}
			t0 := time.Now()
			got, resp, err := pclient.QueryFull(ctx, q.Probe, topK)
			if err != nil {
				return fmt.Errorf("experiments: %s query %d: %w", pol, qi, err)
			}
			lat.Record(time.Since(t0))
			if resp.Partial || resp.Stale {
				return fmt.Errorf("experiments: %s query %d flagged partial=%v stale=%v with all shards up", pol, qi, resp.Partial, resp.Stale)
			}
			if err := identicalResults(got, want); err != nil {
				return fmt.Errorf("experiments: %s query %d: %w", pol, qi, err)
			}
		}
		after, err := sumShardQueries()
		if err != nil {
			return err
		}
		frac := float64(after-before) / float64(len(qs)*clusterShards)
		if pol == router.ReadRoundRobin {
			report.RoundRobinShardFrac = frac
			ls := lat.Summarize()
			report.ReplicaRRP50Ns, report.ReplicaRRP99Ns = ls.Median.Nanoseconds(), ls.P99.Nanoseconds()
			// The theoretical per-query fan-out floor is (S-rf+1)/S; a
			// fraction near 1.0 would mean no read scaling happened.
			if frac > float64(clusterShards-rf+1)/float64(clusterShards)+0.1 {
				return fmt.Errorf("experiments: round-robin queried %.2f of shards per read, expected ~%.2f",
					frac, float64(clusterShards-rf+1)/float64(clusterShards))
			}
		}
		report.ReplicaPoliciesExact = append(report.ReplicaPoliciesExact, string(pol))
		fmt.Fprintf(w, "[cluster] policy %-11s: %d queries byte-identical (%.2f shard queries/query, p50 %s)\n",
			pol, len(qs), frac, fmtDur(lat.Summarize().Median))
		pts.Close()
		prt.Close()
	}

	// The long-lived round-robin router carries the write, reconfiguration
	// and fail-over phases.
	rrt, err := router.New(router.Config{Shards: backends, Ring: ring, Replicas: rf, Policy: router.ReadRoundRobin, ShardTimeout: 10 * time.Second})
	if err != nil {
		return err
	}
	defer rrt.Close()
	rrtTS := httptest.NewServer(rrt.Handler())
	defer rrtTS.Close()
	rrtClient := client.New(rrtTS.URL, client.WithHTTPClient(rrtTS.Client()))

	// Replicated writes: each insert goes synchronously to its primary and
	// asynchronously to its replica; the freshness lag (pending applies) is
	// observable in stats and drains to zero on quiesce.
	const replicaInserts = 10
	for i := 0; i < replicaInserts; i++ {
		p := ds.FreshPhoto(8_000_000+uint64(i), int64(4000+i))
		if err := rrtClient.Insert(ctx, p.ID, p.Img); err != nil {
			return fmt.Errorf("experiments: replicated insert %d: %w", p.ID, err)
		}
		if err := oracleClient.Insert(ctx, p.ID, p.Img); err != nil {
			return err
		}
	}
	report.ReplicaInserts = replicaInserts
	report.ReplicaLagPending = rrt.Stats(ctx).AsyncPending
	t0 := time.Now()
	qctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	err = rrt.QuiesceReplicas(qctx)
	cancel()
	if err != nil {
		return fmt.Errorf("experiments: quiescing replica applies: %w", err)
	}
	report.ReplicaQuiesceNs = time.Since(t0).Nanoseconds()
	wantCopies := rf * (len(ds.Photos) + replicaInserts)
	var have int
	for _, sc := range shardClients {
		st, err := sc.Stats(ctx)
		if err != nil {
			return err
		}
		have += st.Photos
	}
	if have != wantCopies {
		return fmt.Errorf("experiments: after replicated writes the cluster holds %d photo copies, want %d", have, wantCopies)
	}
	fmt.Fprintf(w, "[cluster] %d replicated inserts: lag %d pending, quiesced in %s, every photo on %d shards\n",
		replicaInserts, report.ReplicaLagPending, fmtDur(time.Duration(report.ReplicaQuiesceNs)), rf)

	// Live ring update under continuous query load: a new seed reshuffles
	// placement while a background prober demands full, fresh,
	// byte-identical answers the whole time. The router double-reads during
	// the transition and every shard acquires before any shard sheds, so
	// no probe may ever see an identity violation.
	stopLoad := make(chan struct{})
	loadErr := make(chan error, 1)
	loadDone := make(chan struct{})
	var loadQueries int
	go func() {
		defer close(loadDone)
		for i := 0; ; i++ {
			select {
			case <-stopLoad:
				return
			default:
			}
			q := qs[i%len(qs)]
			want, err := oracleClient.Query(ctx, q.Probe, topK)
			if err != nil {
				loadErr <- err
				return
			}
			got, resp, err := rrtClient.QueryFull(ctx, q.Probe, topK)
			if err != nil {
				loadErr <- fmt.Errorf("mid-update query: %w", err)
				return
			}
			if resp.Partial || resp.Stale {
				loadErr <- fmt.Errorf("mid-update query flagged partial=%v stale=%v", resp.Partial, resp.Stale)
				return
			}
			if err := identicalResults(got, want); err != nil {
				loadErr <- fmt.Errorf("mid-update identity violation: %w", err)
				return
			}
			loadQueries++
		}
	}()
	next := ringCfg
	next.Seed = ringCfg.Seed + 9157
	next.Epoch = 2
	rep, uerr := replica.RingUpdate(ctx, replica.RingUpdateOptions{
		Router:       rrtClient,
		Shards:       shardClients,
		Ring:         next,
		Replicas:     rf,
		PollInterval: 20 * time.Millisecond,
	})
	close(stopLoad)
	<-loadDone
	select {
	case lerr := <-loadErr:
		return fmt.Errorf("experiments: query load during ring update: %w", lerr)
	default:
	}
	if uerr != nil {
		return fmt.Errorf("experiments: ring update: %w", uerr)
	}
	for i := range rep.Acquired {
		report.RingUpdateAcquired += rep.Acquired[i]
		report.RingUpdateShed += rep.Shed[i]
	}
	// Post-update invariants: the new epoch is live everywhere, the copy
	// count is unchanged, and answers are still byte-identical.
	if st := rrt.Stats(ctx); st.RingEpoch != next.Epoch || st.RingTransition {
		return fmt.Errorf("experiments: router did not land on epoch %d (epoch %d, transition %v)", next.Epoch, st.RingEpoch, st.RingTransition)
	}
	have = 0
	for s, sc := range shardClients {
		rst, err := sc.RingStatus(ctx)
		if err != nil {
			return err
		}
		if rst.State != "steady" || rst.Current.Epoch != next.Epoch {
			return fmt.Errorf("experiments: shard %d post-update state %q epoch %d", s, rst.State, rst.Current.Epoch)
		}
		st, err := sc.Stats(ctx)
		if err != nil {
			return err
		}
		have += st.Photos
	}
	if have != wantCopies {
		return fmt.Errorf("experiments: ring update changed the copy count: %d, want %d", have, wantCopies)
	}
	for qi, q := range qs {
		want, err := oracleClient.Query(ctx, q.Probe, topK)
		if err != nil {
			return err
		}
		got, resp, err := rrtClient.QueryFull(ctx, q.Probe, topK)
		if err != nil {
			return fmt.Errorf("experiments: post-update query %d: %w", qi, err)
		}
		if resp.Partial || resp.Stale {
			return fmt.Errorf("experiments: post-update query %d flagged partial=%v stale=%v", qi, resp.Partial, resp.Stale)
		}
		if err := identicalResults(got, want); err != nil {
			return fmt.Errorf("experiments: post-update query %d: %w", qi, err)
		}
	}
	report.RingUpdateVerified = true
	fmt.Fprintf(w, "[cluster] live ring update to epoch %d under load (%d mid-update probes): %d acquired, %d shed, identity preserved\n",
		next.Epoch, loadQueries, report.RingUpdateAcquired, report.RingUpdateShed)

	// Fail-over: kill one shard. With rf=2 the survivors still hold every
	// photo, so answers stay FULL — partial=false and byte-identical —
	// where the rf=1 cluster above could only degrade to partial.
	shardTS[0].Close()
	for qi, q := range qs {
		want, err := oracleClient.Query(ctx, q.Probe, topK)
		if err != nil {
			return err
		}
		got, resp, err := rrtClient.QueryFull(ctx, q.Probe, topK)
		if err != nil {
			return fmt.Errorf("experiments: query %d with a replica down: %w", qi, err)
		}
		if resp.Partial {
			return fmt.Errorf("experiments: query %d flagged partial with rf=%d and one shard down", qi, rf)
		}
		if err := identicalResults(got, want); err != nil {
			return fmt.Errorf("experiments: query %d with a replica down: %w", qi, err)
		}
	}
	report.ReplicaKillFullAnswer = true
	fmt.Fprintf(w, "[cluster] 1 of %d shards killed at rf=%d: %d queries still full and byte-identical\n",
		clusterShards, rf, len(qs))
	return nil
}

// identicalResults compares two result lists for exact equality: length,
// IDs, bit-exact scores, order.
func identicalResults(got, want []core.SearchResult) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d results, oracle has %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("rank %d: got {%d %.17g}, oracle {%d %.17g}",
				i+1, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
		}
	}
	return nil
}
