package energy

import (
	"math"
	"testing"
	"time"
)

func TestTransmissionScalesWithBytes(t *testing.T) {
	m := DefaultWiFi()
	if m.Transmission(0) != 0 {
		t.Error("zero bytes should cost nothing")
	}
	small := m.Transmission(1 << 20)
	large := m.Transmission(10 << 20)
	if large <= small {
		t.Errorf("10MB (%v J) not more than 1MB (%v J)", large, small)
	}
	// Tail cost makes two small transfers more expensive than one combined.
	if 2*m.Transmission(1<<20) <= m.Transmission(2<<20) {
		t.Error("per-transfer tail cost missing")
	}
}

func TestComputeAndIdle(t *testing.T) {
	m := DefaultWiFi()
	if m.Compute(0) != 0 || m.Idle(-time.Second) != 0 {
		t.Error("non-positive durations should cost nothing")
	}
	if math.Abs(m.Compute(2*time.Second)-3.0) > 1e-9 {
		t.Errorf("Compute(2s) = %v, want 3 J at 1.5 W", m.Compute(2*time.Second))
	}
	if math.Abs(m.Idle(time.Second)-0.8) > 1e-9 {
		t.Errorf("Idle(1s) = %v, want 0.8 J", m.Idle(time.Second))
	}
}

func TestRecorderAccumulates(t *testing.T) {
	r := NewRecorder(DefaultWiFi())
	r.RecordTransmission(5<<20, 2*time.Second)
	r.RecordCompute(time.Second)
	if r.TotalJoules() <= 0 {
		t.Error("no energy recorded")
	}
	if r.Elapsed() != 3*time.Second {
		t.Errorf("Elapsed = %v, want 3s", r.Elapsed())
	}
	trace := r.Trace()
	if len(trace) != 2 {
		t.Fatalf("trace has %d samples, want 2", len(trace))
	}
	if trace[0].At >= trace[1].At {
		t.Error("trace timestamps not increasing")
	}
	for _, s := range trace {
		if s.Watts <= 0 {
			t.Errorf("sample power %v not positive", s.Watts)
		}
	}
}

func TestRecorderZeroElapsedClamped(t *testing.T) {
	r := NewRecorder(DefaultWiFi())
	r.RecordCompute(0)
	if r.Elapsed() <= 0 {
		t.Error("zero-elapsed event should still advance the trace")
	}
}

func TestSavings(t *testing.T) {
	s, err := Savings(100, 40)
	if err != nil || math.Abs(s-0.6) > 1e-12 {
		t.Errorf("Savings = %v, %v; want 0.6", s, err)
	}
	if _, err := Savings(0, 10); err == nil {
		t.Error("zero baseline should fail")
	}
	s, _ = Savings(50, 60)
	if s >= 0 {
		t.Errorf("regression should yield negative savings, got %v", s)
	}
}
