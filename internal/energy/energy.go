// Package energy models smartphone energy consumption for the Figure 8
// experiments. The paper measures upload energy with a Monsoon power
// monitor; we replace the instrument with a parameterized model: radio
// transmission energy proportional to bytes sent (plus a per-transfer tail),
// and CPU energy proportional to compute time. The model's constants come
// from the battery-power literature the paper cites (streaming transmission
// measurements over WiFi).
package energy

import (
	"fmt"
	"time"
)

// Model holds the energy cost constants.
type Model struct {
	// TxJoulesPerMB is radio energy per megabyte transmitted.
	TxJoulesPerMB float64
	// TailJoules is the fixed radio tail-state cost per transfer batch.
	TailJoules float64
	// CPUWatts is the active-compute power draw.
	CPUWatts float64
	// IdleWatts is the baseline draw while the screen is awake (the paper's
	// setup keeps the screen on with fixed brightness).
	IdleWatts float64
}

// DefaultWiFi returns constants for WiFi uploads on a 2013-era smartphone:
// ~5 J/MB radio energy, 1 J tail, 1.5 W active CPU, 0.8 W awake-idle.
func DefaultWiFi() Model {
	return Model{TxJoulesPerMB: 5, TailJoules: 1, CPUWatts: 1.5, IdleWatts: 0.8}
}

// Transmission returns the radio energy (joules) for sending bytes.
func (m Model) Transmission(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return m.TxJoulesPerMB*float64(bytes)/1e6 + m.TailJoules
}

// Compute returns the CPU energy (joules) for the given active time.
func (m Model) Compute(d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return m.CPUWatts * d.Seconds()
}

// Idle returns the baseline energy for the given elapsed time.
func (m Model) Idle(d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return m.IdleWatts * d.Seconds()
}

// Sample is one reading of a Monsoon-style power trace.
type Sample struct {
	At    time.Duration
	Watts float64
}

// Recorder accumulates a power trace the way the Monsoon monitor does
// (the paper samples voltage and current at 6 kHz; we record one sample per
// recorded event, which is sufficient for energy integration).
type Recorder struct {
	model   Model
	samples []Sample
	joules  float64
	now     time.Duration
}

// NewRecorder returns a recorder over the given model.
func NewRecorder(model Model) *Recorder { return &Recorder{model: model} }

// RecordTransmission advances the trace through a transfer of bytes taking
// elapsed time and accumulates its energy.
func (r *Recorder) RecordTransmission(bytes int64, elapsed time.Duration) {
	j := r.model.Transmission(bytes) + r.model.Idle(elapsed)
	r.addEvent(j, elapsed)
}

// RecordCompute advances the trace through an active-CPU interval.
func (r *Recorder) RecordCompute(elapsed time.Duration) {
	j := r.model.Compute(elapsed) + r.model.Idle(elapsed)
	r.addEvent(j, elapsed)
}

func (r *Recorder) addEvent(joules float64, elapsed time.Duration) {
	if elapsed <= 0 {
		elapsed = time.Millisecond
	}
	r.joules += joules
	r.now += elapsed
	r.samples = append(r.samples, Sample{At: r.now, Watts: joules / elapsed.Seconds()})
}

// TotalJoules returns the accumulated energy.
func (r *Recorder) TotalJoules() float64 { return r.joules }

// Elapsed returns the trace duration.
func (r *Recorder) Elapsed() time.Duration { return r.now }

// Trace returns the recorded samples.
func (r *Recorder) Trace() []Sample { return r.samples }

// Savings returns the fractional energy saving of measured vs baseline.
// It returns an error when baseline is non-positive.
func Savings(baseline, measured float64) (float64, error) {
	if baseline <= 0 {
		return 0, fmt.Errorf("energy: baseline must be positive, got %v", baseline)
	}
	return 1 - measured/baseline, nil
}
