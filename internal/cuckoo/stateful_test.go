package cuckoo

import (
	"math/rand"
	"testing"
)

// TestFlatMatchesMapUnderMixedOps drives the flat table and a reference map
// through the same random operation sequence and checks they agree after
// every step — a stateful model test for the CHS module.
func TestFlatMatchesMapUnderMixedOps(t *testing.T) {
	tb, err := NewFlat(4096, DefaultNeighborhood, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(99))
	keys := make([]uint64, 600)
	for i := range keys {
		keys[i] = rng.Uint64() | 1
	}
	const steps = 20000
	for step := 0; step < steps; step++ {
		k := keys[rng.Intn(len(keys))]
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // insert/update
			v := rng.Uint64()
			if err := tb.Insert(k, v); err != nil {
				t.Fatalf("step %d: insert: %v", step, err)
			}
			ref[k] = v
		case 5, 6: // delete
			got := tb.Delete(k)
			_, want := ref[k]
			if got != want {
				t.Fatalf("step %d: Delete(%d) = %v, want %v", step, k, got, want)
			}
			delete(ref, k)
		default: // lookup
			v, ok := tb.Lookup(k)
			wantV, wantOK := ref[k]
			if ok != wantOK || v != wantV {
				t.Fatalf("step %d: Lookup(%d) = (%d,%v), want (%d,%v)",
					step, k, v, ok, wantV, wantOK)
			}
		}
		if tb.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, ref %d", step, tb.Len(), len(ref))
		}
	}
	// Final sweep: every reference entry is present with the right value.
	for k, v := range ref {
		got, ok := tb.Lookup(k)
		if !ok || got != v {
			t.Fatalf("final: Lookup(%d) = (%d,%v), want (%d,true)", k, got, ok, v)
		}
	}
}

// TestResizableMatchesMapUnderGrowth repeats the model test while forcing
// growth through a deliberately tiny initial table.
func TestResizableMatchesMapUnderGrowth(t *testing.T) {
	r, err := NewResizable(16, DefaultNeighborhood, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	ref := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(123))
	for step := 0; step < 5000; step++ {
		k := uint64(rng.Intn(800)) + 1
		switch rng.Intn(6) {
		case 0, 1, 2, 3:
			v := rng.Uint64()
			if err := r.Insert(k, v); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			ref[k] = v
		case 4:
			got := r.Delete(k)
			_, want := ref[k]
			if got != want {
				t.Fatalf("step %d: delete mismatch", step)
			}
			delete(ref, k)
		default:
			v, ok := r.Lookup(k)
			wantV, wantOK := ref[k]
			if ok != wantOK || (ok && v != wantV) {
				t.Fatalf("step %d: lookup mismatch", step)
			}
		}
	}
	if r.Len() != len(ref) {
		t.Fatalf("Len = %d, ref %d", r.Len(), len(ref))
	}
	if r.Rehashes() == 0 {
		t.Error("tiny table never grew under 800 distinct keys")
	}
}
