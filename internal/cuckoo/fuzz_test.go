package cuckoo

import (
	"encoding/binary"
	"errors"
	"testing"
)

// FuzzCuckooInsertDelete replays an arbitrary operation stream — 9-byte
// records of (op, key) — against both the fixed Flat table and the
// Resizable wrapper, with a plain map as the oracle. Invariants: every
// key the model holds is findable with the model's value, every key it
// does not hold is absent, and Len always matches. ErrTableFull from the
// fixed table is legal (the item lands in the stash and must still be
// findable); any other error is a bug.
func FuzzCuckooInsertDelete(f *testing.F) {
	rec := func(op byte, key uint64) []byte {
		b := make([]byte, 9)
		b[0] = op
		binary.LittleEndian.PutUint64(b[1:], key)
		return b
	}
	f.Add(append(rec(0, 1), rec(0, 2)...))
	f.Add(append(append(rec(0, 1), rec(1, 1)...), rec(0, 1)...))
	f.Add(rec(2, 7))
	var burst []byte
	for k := uint64(1); k <= 64; k++ {
		burst = append(burst, rec(0, k)...)
	}
	f.Add(burst)
	f.Fuzz(func(t *testing.T, data []byte) {
		flat, err := NewFlat(64, 2, 0, 99)
		if err != nil {
			t.Fatal(err)
		}
		rz, err := NewResizable(32, 2, 0, 99)
		if err != nil {
			t.Fatal(err)
		}
		model := map[uint64]uint64{}
		for off := 0; off+9 <= len(data) && off < 9*4096; off += 9 {
			op := data[off] % 3
			// Confine keys to a small range so delete/reinsert collisions
			// actually happen; key 0 is reserved by the table.
			key := binary.LittleEndian.Uint64(data[off+1:])%512 + 1
			switch op {
			case 0: // insert / update
				val := key * 3
				if err := flat.Insert(key, val); err != nil && !errors.Is(err, ErrTableFull) {
					t.Fatalf("flat insert %d: %v", key, err)
				}
				if err := rz.Insert(key, val); err != nil {
					t.Fatalf("resizable insert %d: %v", key, err)
				}
				model[key] = val
			case 1: // delete
				want := false
				if _, ok := model[key]; ok {
					want = true
					delete(model, key)
				}
				if got := flat.Delete(key); got != want {
					t.Fatalf("flat delete %d = %v, want %v", key, got, want)
				}
				if got := rz.Delete(key); got != want {
					t.Fatalf("resizable delete %d = %v, want %v", key, got, want)
				}
			case 2: // lookup probe for a key that may be absent
				_, inModel := model[key]
				if _, ok := flat.Lookup(key); ok != inModel {
					t.Fatalf("flat lookup %d = %v, want %v", key, ok, inModel)
				}
			}
		}
		if flat.Len() != len(model) || rz.Len() != len(model) {
			t.Fatalf("len drift: flat=%d resizable=%d model=%d", flat.Len(), rz.Len(), len(model))
		}
		for k, v := range model {
			if got, ok := flat.Lookup(k); !ok || got != v {
				t.Fatalf("flat lost key %d (ok=%v got=%d want=%d)", k, ok, got, v)
			}
			if got, ok := rz.Lookup(k); !ok || got != v {
				t.Fatalf("resizable lost key %d (ok=%v got=%d want=%d)", k, ok, got, v)
			}
		}
	})
}
