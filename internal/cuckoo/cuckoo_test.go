package cuckoo

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewStandardValidation(t *testing.T) {
	if _, err := NewStandard(0, 0, 1); err == nil {
		t.Error("zero capacity should fail")
	}
	tb, err := NewStandard(100, 0, 1)
	if err != nil {
		t.Fatalf("NewStandard: %v", err)
	}
	if tb.Cap() != 128 {
		t.Errorf("Cap = %d, want next pow2 128", tb.Cap())
	}
}

func TestStandardInsertLookupDelete(t *testing.T) {
	tb, _ := NewStandard(1024, 0, 1)
	for k := uint64(1); k <= 100; k++ {
		if err := tb.Insert(k, k*10); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	if tb.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tb.Len())
	}
	for k := uint64(1); k <= 100; k++ {
		v, ok := tb.Lookup(k)
		if !ok || v != k*10 {
			t.Fatalf("Lookup(%d) = %d, %v", k, v, ok)
		}
	}
	if _, ok := tb.Lookup(9999); ok {
		t.Error("Lookup of absent key returned true")
	}
	if !tb.Delete(50) {
		t.Error("Delete(50) = false")
	}
	if _, ok := tb.Lookup(50); ok {
		t.Error("deleted key still present")
	}
	if tb.Delete(50) {
		t.Error("double delete returned true")
	}
	if tb.Len() != 99 {
		t.Errorf("Len after delete = %d, want 99", tb.Len())
	}
}

func TestStandardUpdateInPlace(t *testing.T) {
	tb, _ := NewStandard(64, 0, 1)
	if err := tb.Insert(7, 1); err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(7, 2); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d after update, want 1", tb.Len())
	}
	v, _ := tb.Lookup(7)
	if v != 2 {
		t.Errorf("value = %d, want 2", v)
	}
}

func TestStandardRejectsKeyZero(t *testing.T) {
	tb, _ := NewStandard(64, 0, 1)
	if err := tb.Insert(0, 1); err == nil {
		t.Error("key 0 must be rejected")
	}
}

func TestStandardFailsAtHighLoad(t *testing.T) {
	// Single-slot two-choice cuckoo cannot sustain loads near 1.
	tb, _ := NewStandard(256, 50, 42)
	rng := rand.New(rand.NewSource(1))
	var failed bool
	for i := 0; i < 256; i++ {
		if err := tb.Insert(rng.Uint64()|1, 1); err != nil {
			failed = true
			if !errors.Is(err, ErrTableFull) {
				t.Fatalf("failure not wrapped in ErrTableFull: %v", err)
			}
			break
		}
	}
	if !failed {
		t.Error("standard cuckoo filled a table to load 1.0 without failure")
	}
	if tb.Stats().Failures == 0 {
		t.Error("failure not recorded in stats")
	}
}

func TestNewFlatValidation(t *testing.T) {
	if _, err := NewFlat(0, 4, 0, 1); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := NewFlat(64, -1, 0, 1); err == nil {
		t.Error("negative neighborhood should fail")
	}
	if _, err := NewFlat(4, 10, 0, 1); err == nil {
		t.Error("neighborhood >= size should fail")
	}
}

func TestFlatInsertLookupDelete(t *testing.T) {
	tb, _ := NewFlat(1024, DefaultNeighborhood, 0, 1)
	for k := uint64(1); k <= 700; k++ {
		if err := tb.Insert(k, k+5); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	if tb.Len() != 700 {
		t.Fatalf("Len = %d, want 700", tb.Len())
	}
	for k := uint64(1); k <= 700; k++ {
		v, ok := tb.Lookup(k)
		if !ok || v != k+5 {
			t.Fatalf("Lookup(%d) = %d, %v", k, v, ok)
		}
	}
	if !tb.Delete(123) || tb.Delete(123) {
		t.Error("delete semantics broken")
	}
	if _, ok := tb.Lookup(123); ok {
		t.Error("deleted key still found")
	}
}

func TestFlatUpdateInPlace(t *testing.T) {
	tb, _ := NewFlat(64, 2, 0, 1)
	_ = tb.Insert(9, 1)
	_ = tb.Insert(9, 7)
	if tb.Len() != 1 {
		t.Errorf("Len = %d, want 1", tb.Len())
	}
	if v, _ := tb.Lookup(9); v != 7 {
		t.Errorf("value = %d, want 7", v)
	}
}

func TestFlatProbeWidthConstant(t *testing.T) {
	tb, _ := NewFlat(1024, 4, 0, 1)
	if tb.ProbeWidth() != 10 {
		t.Errorf("ProbeWidth = %d, want 10 for ν=4", tb.ProbeWidth())
	}
	// Probes per lookup must equal ProbeWidth for a miss.
	before := tb.Stats().Probes
	tb.Lookup(12345)
	if got := tb.Stats().Probes - before; got != tb.ProbeWidth() {
		t.Errorf("miss probed %d cells, want %d", got, tb.ProbeWidth())
	}
}

func TestFlatSustainsHigherLoadThanStandard(t *testing.T) {
	// The Figure 6 mechanism: at the same high load, flat addressing fails
	// far less often than standard cuckoo hashing.
	const capacity = 1 << 12
	target := capacity * 95 / 100
	run := func(tb Table) int {
		rng := rand.New(rand.NewSource(7))
		fails := 0
		for i := 0; i < target; i++ {
			if err := tb.Insert(rng.Uint64()|1, 1); err != nil {
				fails++
			}
		}
		return fails
	}
	std, _ := NewStandard(capacity, 0, 3)
	flat, _ := NewFlat(capacity, DefaultNeighborhood, 0, 3)
	sf, ff := run(std), run(flat)
	if ff >= sf {
		t.Errorf("flat failures %d >= standard failures %d at load 0.95", ff, sf)
	}
	if ff > 0 {
		t.Errorf("flat cuckoo failed %d times at load 0.95; expect ~0", ff)
	}
	if flat.Stats().NeighborHits == 0 {
		t.Error("no neighbor placements recorded; adjacent storage inactive")
	}
}

func TestFlatZeroNeighborhoodDegeneratesToStandardBehavior(t *testing.T) {
	// ν=0 keeps only the two homes; failures should reappear at high load.
	const capacity = 1 << 10
	tb, _ := NewFlat(capacity, 0, 50, 5)
	rng := rand.New(rand.NewSource(9))
	fails := 0
	for i := 0; i < capacity; i++ {
		if err := tb.Insert(rng.Uint64()|1, 1); err != nil {
			fails++
		}
	}
	if fails == 0 {
		t.Error("ν=0 flat table filled to load 1.0 without failures")
	}
}

func TestFlatLookupBatchMatchesSequential(t *testing.T) {
	tb, _ := NewFlat(4096, 4, 0, 11)
	rng := rand.New(rand.NewSource(13))
	keys := make([]uint64, 2000)
	for i := range keys {
		keys[i] = rng.Uint64() | 1
		if i%2 == 0 {
			if err := tb.Insert(keys[i], uint64(i)); err != nil {
				t.Fatalf("Insert: %v", err)
			}
		}
	}
	for _, workers := range []int{0, 1, 2, 8, 64} {
		res := tb.LookupBatch(keys, workers)
		if len(res) != len(keys) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(res), len(keys))
		}
		for i, r := range res {
			v, ok := tb.Lookup(keys[i])
			if r.Found != ok || r.Value != v {
				t.Fatalf("workers=%d key %d: batch (%d,%v) vs seq (%d,%v)",
					workers, keys[i], r.Value, r.Found, v, ok)
			}
		}
	}
	if res := tb.LookupBatch(nil, 4); len(res) != 0 {
		t.Error("empty batch should return empty results")
	}
}

func TestStatsFailureProbability(t *testing.T) {
	var s Stats
	if s.FailureProbability() != 0 {
		t.Error("empty stats probability != 0")
	}
	s.Inserts = 100
	s.Failures = 1
	if p := s.FailureProbability(); p != 0.01 {
		t.Errorf("probability = %v, want 0.01", p)
	}
}

func TestHashPairDistinct(t *testing.T) {
	f := func(key uint64) bool {
		b1, b2 := hashPair(key, 1023)
		return b1 != b2 && b1 <= 1023 && b2 <= 1023
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: insert-then-lookup round-trips for arbitrary key/value sets at
// modest load.
func TestFlatRoundTripProperty(t *testing.T) {
	f := func(pairs map[uint64]uint64) bool {
		tb, err := NewFlat(4*len(pairs)+64, 4, 0, 17)
		if err != nil {
			return false
		}
		for k, v := range pairs {
			if k == 0 {
				continue
			}
			if err := tb.Insert(k, v); err != nil {
				return false
			}
		}
		for k, v := range pairs {
			if k == 0 {
				continue
			}
			got, ok := tb.Lookup(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

var _ Table = (*Standard)(nil)
var _ Table = (*Flat)(nil)
