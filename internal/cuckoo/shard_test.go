package cuckoo

import (
	"math/rand"
	"sync"
	"testing"
)

// TestFlatShardsRoundTrip forces a multi-shard table (independent of the
// host's GOMAXPROCS) and checks that the sharded layout preserves the flat
// table's semantics.
func TestFlatShardsRoundTrip(t *testing.T) {
	tb, err := NewFlatShards(1<<14, DefaultNeighborhood, 0, 1, 4)
	if err != nil {
		t.Fatalf("NewFlatShards: %v", err)
	}
	if tb.Shards() != 4 {
		t.Fatalf("Shards = %d, want 4", tb.Shards())
	}
	if tb.Cap() != 1<<14 {
		t.Fatalf("Cap = %d, want %d", tb.Cap(), 1<<14)
	}
	rng := rand.New(rand.NewSource(3))
	keys := make([]uint64, 5000)
	for i := range keys {
		keys[i] = rng.Uint64() | 1
		if err := tb.Insert(keys[i], uint64(i)); err != nil {
			t.Fatalf("Insert(%d): %v", keys[i], err)
		}
	}
	if tb.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", tb.Len(), len(keys))
	}
	for i, k := range keys {
		v, ok := tb.Lookup(k)
		if !ok || v != uint64(i) {
			t.Fatalf("Lookup(%d) = (%d,%v), want (%d,true)", k, v, ok, i)
		}
	}
	res := tb.LookupBatch(keys, 4)
	for i, r := range res {
		if !r.Found || r.Value != uint64(i) {
			t.Fatalf("batch lookup %d = %+v", i, r)
		}
	}
	if !tb.Delete(keys[0]) || tb.Delete(keys[0]) {
		t.Error("delete semantics broken on sharded table")
	}
	if tb.Len() != len(keys)-1 {
		t.Errorf("Len after delete = %d", tb.Len())
	}
}

// TestFlatShardsStatsAggregate checks that stats sum across shards and that
// a miss still probes exactly ProbeWidth cells (within one shard).
func TestFlatShardsStatsAggregate(t *testing.T) {
	tb, err := NewFlatShards(1<<14, 4, 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	before := tb.Stats().Probes
	tb.Lookup(987654321) // miss, empty stash
	if got := tb.Stats().Probes - before; got != tb.ProbeWidth() {
		t.Errorf("miss probed %d cells, want %d", got, tb.ProbeWidth())
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		if err := tb.Insert(rng.Uint64()|1, 1); err != nil {
			t.Fatal(err)
		}
	}
	if st := tb.Stats(); st.Inserts != 1000 {
		t.Errorf("aggregated Inserts = %d, want 1000", st.Inserts)
	}
}

// TestFlatShardsValidation covers the explicit-shard constructor's argument
// checks.
func TestFlatShardsValidation(t *testing.T) {
	if _, err := NewFlatShards(1<<14, 4, 0, 1, 3); err == nil {
		t.Error("non-power-of-two shard count should fail")
	}
	// A shard count that would make per-shard size <= neighborhood is
	// reduced, not rejected.
	tb, err := NewFlatShards(64, 4, 0, 1, 64)
	if err != nil {
		t.Fatalf("oversized shard count: %v", err)
	}
	if tb.Cap()/tb.Shards() <= tb.Neighborhood() {
		t.Errorf("shard size %d not reduced below neighborhood %d",
			tb.Cap()/tb.Shards(), tb.Neighborhood())
	}
}

// TestFlatShardsConcurrent hammers a multi-shard table with mixed inserts,
// deletes, lookups and batch lookups; run under -race to validate the
// per-shard locking.
func TestFlatShardsConcurrent(t *testing.T) {
	tb, err := NewFlatShards(1<<15, DefaultNeighborhood, 0, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	const perWorker = 400
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			keys := make([]uint64, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				k := rng.Uint64() | 1
				keys = append(keys, k)
				switch w % 3 {
				case 0:
					_ = tb.Insert(k, uint64(i))
				case 1:
					_, _ = tb.Lookup(k)
					_ = tb.Stats()
				case 2:
					_ = tb.Insert(k, uint64(i))
					_ = tb.Delete(k)
				}
			}
			tb.LookupBatch(keys, 2)
		}(w)
	}
	wg.Wait()
	// Workers 0 and 3 inserted and kept their keys; verify a sample.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < perWorker; i++ {
		k := rng.Uint64() | 1
		if _, ok := tb.Lookup(k); !ok {
			t.Fatalf("key %d from worker 0 lost", k)
		}
	}
}
