package cuckoo

import (
	"errors"
	"fmt"

	"github.com/fastrepro/fast/internal/failpoint"
)

// Range calls fn for every stored entry; iteration stops if fn returns
// false. Shards are visited in order, each under its read lock; the table
// must not be mutated from within fn.
func (t *Flat) Range(fn func(key, value uint64) bool) {
	for s := range t.shards {
		sh := &t.shards[s]
		sh.mu.RLock()
		for _, c := range sh.cells {
			if c.Key != 0 {
				if !fn(c.Key, c.Value) {
					sh.mu.RUnlock()
					return
				}
			}
		}
		for _, c := range sh.stash {
			if !fn(c.Key, c.Value) {
				sh.mu.RUnlock()
				return
			}
		}
		sh.mu.RUnlock()
	}
}

// Range calls fn for every stored entry; iteration stops if fn returns
// false.
func (t *Standard) Range(fn func(key, value uint64) bool) {
	for _, c := range t.cells {
		if c.Key != 0 {
			if !fn(c.Key, c.Value) {
				return
			}
		}
	}
	for _, c := range t.stash {
		if !fn(c.Key, c.Value) {
			return
		}
	}
}

// Resizable wraps a Flat table with the production failure policy: when an
// insertion fails (the Figure 6 rehash event), the table is rebuilt at
// twice the capacity with a fresh hash seed and the insertion retried. The
// paper measures how *rare* FAST makes this event; Resizable is what a
// deployment does on the residual failures.
type Resizable struct {
	table        *Flat
	neighborhood int
	maxKicks     int
	seed         int64
	rehashes     int
	// MaxRehashes bounds consecutive grow attempts per insert (a safety
	// valve against adversarial keys); 0 means 8.
	MaxRehashes int
}

// NewResizable creates an auto-resizing flat table.
func NewResizable(capacity, neighborhood, maxKicks int, seed int64) (*Resizable, error) {
	t, err := NewFlat(capacity, neighborhood, maxKicks, seed)
	if err != nil {
		return nil, err
	}
	return &Resizable{
		table:        t,
		neighborhood: neighborhood,
		maxKicks:     maxKicks,
		seed:         seed,
	}, nil
}

// Len returns the number of stored entries.
func (r *Resizable) Len() int { return r.table.Len() }

// Cap returns the current cell count.
func (r *Resizable) Cap() int { return r.table.Cap() }

// Rehashes returns how many grow-and-rebuild events have occurred.
func (r *Resizable) Rehashes() int { return r.rehashes }

// Stats returns the current table's statistics (reset by each rehash).
func (r *Resizable) Stats() Stats { return r.table.Stats() }

// Lookup returns the value for key and whether it is present.
func (r *Resizable) Lookup(key uint64) (uint64, bool) { return r.table.Lookup(key) }

// LookupBatch resolves many keys concurrently (see Flat.LookupBatch).
func (r *Resizable) LookupBatch(keys []uint64, workers int) []LookupResult {
	return r.table.LookupBatch(keys, workers)
}

// Delete removes key, reporting whether it was present.
func (r *Resizable) Delete(key uint64) bool { return r.table.Delete(key) }

// Insert stores (key, value), growing the table as needed. It fails only
// when MaxRehashes consecutive grow attempts cannot place the key.
func (r *Resizable) Insert(key, value uint64) error {
	maxRehash := r.MaxRehashes
	if maxRehash == 0 {
		maxRehash = 8
	}
	for attempt := 0; ; attempt++ {
		err := r.table.Insert(key, value)
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrTableFull) {
			return err
		}
		if attempt >= maxRehash {
			return fmt.Errorf("cuckoo: insert failed after %d rehashes: %w", attempt, err)
		}
		if err := r.grow(); err != nil {
			return err
		}
	}
}

// grow rebuilds the table at double capacity with a fresh seed; Range
// covers both the cells and the stash, so nothing is lost.
func (r *Resizable) grow() error {
	// Failpoint: a rehash that itself fails (e.g. allocation pressure at
	// the worst moment) must surface rather than lose entries.
	if err := failpoint.Eval(failpoint.CuckooRehash); err != nil {
		return fmt.Errorf("cuckoo: rehash: %w", err)
	}
	r.rehashes++
	r.seed = r.seed*6364136223846793005 + 1442695040888963407
	bigger, err := NewFlat(r.table.Cap()*2, r.neighborhood, r.maxKicks, r.seed)
	if err != nil {
		return err
	}
	var insertErr error
	r.table.Range(func(k, v uint64) bool {
		if err := bigger.Insert(k, v); err != nil {
			insertErr = err
			return false
		}
		return true
	})
	if insertErr != nil {
		// Extremely unlikely at half load; grow again recursively.
		r.table = bigger
		return r.grow()
	}
	r.table = bigger
	return nil
}
