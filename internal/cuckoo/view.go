package cuckoo

import "github.com/fastrepro/fast/internal/shard"

// View is an immutable, lock-free snapshot of a Flat table. Every shard's
// cells and stash are deep-copied at freeze time, so a View observes one
// consistent placement and is safe for concurrent use without any lock —
// the flat design's constant-width independent probes then run with zero
// synchronization, which is what the engine's epoch-published read path
// needs from the CHS module.
type View struct {
	shards []*viewShard
	nu     int
	n      int
}

// viewShard is one frozen sub-table. Shard pointers are shared across
// successive Views when the shard did not change (see Refreeze).
type viewShard struct {
	cells []KeyValue
	stash []KeyValue
	mask  uint64
}

// freezeShard deep-copies one live shard under its read lock.
func (t *Flat) freezeShard(s int) *viewShard {
	sh := &t.shards[s]
	sh.mu.RLock()
	vs := &viewShard{
		cells: append([]KeyValue(nil), sh.cells...),
		mask:  sh.mask,
	}
	if len(sh.stash) > 0 {
		vs.stash = append([]KeyValue(nil), sh.stash...)
	}
	sh.mu.RUnlock()
	return vs
}

// Freeze snapshots the whole table into a fresh View.
func (t *Flat) Freeze() *View {
	v := &View{shards: make([]*viewShard, len(t.shards)), nu: t.nu, n: t.Len()}
	for s := range t.shards {
		v.shards[s] = t.freezeShard(s)
	}
	return v
}

// Refreeze produces the next View after the given keys were inserted,
// updated or deleted, re-copying only the shards that own those keys and
// sharing every untouched frozen shard with prev. This is sound because a
// Flat operation never escapes its key's shard: both homes, all neighbor
// cells, the whole kick chain and the stash live inside one sub-table. A
// prev frozen from a different table (or nil) degrades to a full Freeze.
func (t *Flat) Refreeze(prev *View, keys ...uint64) *View {
	if prev == nil || len(prev.shards) != len(t.shards) || prev.nu != t.nu {
		return t.Freeze()
	}
	v := &View{
		shards: append([]*viewShard(nil), prev.shards...),
		nu:     t.nu,
		n:      t.Len(),
	}
	for _, key := range keys {
		s := t.shardIndex(key)
		v.shards[s] = t.freezeShard(s)
	}
	return v
}

// shardIndex returns the index of the sub-table responsible for key,
// mirroring shardOf.
func (t *Flat) shardIndex(key uint64) int {
	if len(t.shards) == 1 {
		return 0
	}
	return shard.Index(mix(key^0x94d049bb133111eb), len(t.shards))
}

// Len returns the number of stored entries at freeze time.
func (v *View) Len() int { return v.n }

// Lookup probes the constant-width candidate set plus the stash, exactly as
// the live table's read path does, without any lock or counter update.
func (v *View) Lookup(key uint64) (uint64, bool) {
	sh := v.shards[0]
	if len(v.shards) > 1 {
		sh = v.shards[shard.Index(mix(key^0x94d049bb133111eb), len(v.shards))]
	}
	b1, b2 := hashPair(key, sh.mask)
	for d := 0; d <= v.nu; d++ {
		c := (b1 + uint64(d)) & sh.mask
		if sh.cells[c].Key == key {
			return sh.cells[c].Value, true
		}
	}
	for d := 0; d <= v.nu; d++ {
		c := (b2 + uint64(d)) & sh.mask
		if sh.cells[c].Key == key {
			return sh.cells[c].Value, true
		}
	}
	for i := range sh.stash {
		if sh.stash[i].Key == key {
			return sh.stash[i].Value, true
		}
	}
	return 0, false
}
