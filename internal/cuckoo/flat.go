package cuckoo

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"github.com/fastrepro/fast/internal/failpoint"
	"github.com/fastrepro/fast/internal/shard"
)

// Flat is FAST's flat-structured cuckoo table with adjacent neighboring
// storage: a key may live in either of its two home cells or in any of the
// Neighborhood cells that follow a home (wrapping around the table). Lookups
// probe 2*(Neighborhood+1) cells — a constant — and the probes are
// independent, which is what exposes the query parallelism Figure 7
// exploits on multicore machines.
//
// Concurrency: the cell array is partitioned into independently locked
// sub-tables (shards, a power of two near GOMAXPROCS). A key's shard is
// derived from a hash independent of its in-shard home buckets, so both
// homes, all neighbor cells and any kick chain stay within one shard — a
// single lock acquisition per operation, and operations on different shards
// never contend. Small tables collapse to one shard (sharding a few
// thousand cells would only raise the load variance).
type Flat struct {
	shards []flatShard
	nu     int // neighborhood width ν
}

// flatShard is one independently locked sub-table.
type flatShard struct {
	mu       sync.RWMutex
	cells    []KeyValue
	stash    []KeyValue // overflow for items whose kick chain exhausted
	mask     uint64
	n        int
	nu       int
	maxKicks int
	rng      *rand.Rand
	stats    Stats
}

// DefaultNeighborhood is the ν used by the FAST prototype experiments.
const DefaultNeighborhood = 4

// flatShardMinCells is the smallest per-shard cell count the automatic
// policy allows: below this, hashing imbalance across shards would push
// individual shards to materially higher load factors than the table-wide
// average (raising the rehash probability the flat design exists to
// suppress), and the lock being split buys nothing.
const flatShardMinCells = 4096

// NewFlat creates a flat-structured table with at least capacity cells.
// neighborhood < 0 is invalid; 0 degenerates to standard two-home cuckoo
// (useful for ablations). maxKicks 0 selects DefaultMaxKicks. The shard
// count is chosen automatically (see NewFlatShards).
func NewFlat(capacity, neighborhood, maxKicks int, seed int64) (*Flat, error) {
	return NewFlatShards(capacity, neighborhood, maxKicks, seed, 0)
}

// NewFlatShards is NewFlat with an explicit shard count: a power of two,
// or 0 to derive it from GOMAXPROCS and the table size. Each shard must
// keep more cells than the neighborhood width.
func NewFlatShards(capacity, neighborhood, maxKicks int, seed int64, shards int) (*Flat, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("cuckoo: capacity must be positive, got %d", capacity)
	}
	if neighborhood < 0 {
		return nil, fmt.Errorf("cuckoo: neighborhood must be >= 0, got %d", neighborhood)
	}
	if maxKicks == 0 {
		maxKicks = DefaultMaxKicks
	}
	size := nextPow2(capacity)
	if neighborhood >= size {
		return nil, fmt.Errorf("cuckoo: neighborhood %d >= table size %d", neighborhood, size)
	}
	if shards == 0 {
		shards = shard.Count(size, flatShardMinCells)
	}
	if shards < 1 || shards&(shards-1) != 0 {
		return nil, fmt.Errorf("cuckoo: shard count %d is not a power of two", shards)
	}
	for shards > 1 && size/shards <= neighborhood {
		shards >>= 1
	}
	perShard := size / shards
	if perShard < 2 {
		perShard = 2
	}
	t := &Flat{shards: make([]flatShard, shards), nu: neighborhood}
	for s := range t.shards {
		sh := &t.shards[s]
		sh.cells = make([]KeyValue, perShard)
		sh.mask = uint64(perShard - 1)
		sh.nu = neighborhood
		sh.maxKicks = maxKicks
		sh.rng = rand.New(rand.NewSource(seed + int64(s)*0x9e3779b9))
	}
	return t, nil
}

// shardOf returns the sub-table responsible for key. The shard hash stream
// is independent of the in-shard home hashes (hashPair), so partitioning
// does not correlate with bucket placement.
func (t *Flat) shardOf(key uint64) *flatShard {
	if len(t.shards) == 1 {
		return &t.shards[0]
	}
	return &t.shards[shard.Index(mix(key^0x94d049bb133111eb), len(t.shards))]
}

// Neighborhood returns ν.
func (t *Flat) Neighborhood() int { return t.nu }

// Shards returns the number of independently locked sub-tables.
func (t *Flat) Shards() int { return len(t.shards) }

// Len returns the number of stored entries.
func (t *Flat) Len() int {
	n := 0
	for s := range t.shards {
		sh := &t.shards[s]
		sh.mu.RLock()
		n += sh.n
		sh.mu.RUnlock()
	}
	return n
}

// Cap returns the number of cells.
func (t *Flat) Cap() int {
	return len(t.shards) * len(t.shards[0].cells)
}

// Stats returns cumulative statistics aggregated over all shards.
func (t *Flat) Stats() Stats {
	var total Stats
	for s := range t.shards {
		sh := &t.shards[s]
		sh.mu.RLock()
		st := sh.stats
		sh.mu.RUnlock()
		total.Inserts += st.Inserts
		total.Failures += st.Failures
		total.Kicks += st.Kicks
		total.Probes += st.Probes
		total.Lookups += st.Lookups
		total.NeighborHits += st.NeighborHits
		if st.MaxChain > total.MaxChain {
			total.MaxChain = st.MaxChain
		}
	}
	return total
}

// LoadFactor returns n / capacity.
func (t *Flat) LoadFactor() float64 {
	return float64(t.Len()) / float64(t.Cap())
}

// ProbeWidth returns the constant number of cells a lookup examines.
func (t *Flat) ProbeWidth() int { return 2 * (t.nu + 1) }

// probeCells yields the candidate cell indices for key within the shard:
// each home followed by its ν neighbors.
func (sh *flatShard) probeCells(key uint64) []uint64 {
	b1, b2 := hashPair(key, sh.mask)
	cells := make([]uint64, 0, 2*(sh.nu+1))
	for d := 0; d <= sh.nu; d++ {
		cells = append(cells, (b1+uint64(d))&sh.mask)
	}
	for d := 0; d <= sh.nu; d++ {
		cells = append(cells, (b2+uint64(d))&sh.mask)
	}
	return cells
}

// Lookup probes the constant-width candidate set. It takes the shard's
// write lock because it updates the probe statistics; for contention-free
// concurrent reads use LookupBatch, which skips the counters.
func (t *Flat) Lookup(key uint64) (uint64, bool) {
	sh := t.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.lookupLocked(key)
}

func (sh *flatShard) lookupLocked(key uint64) (uint64, bool) {
	sh.stats.Lookups++
	for _, c := range sh.probeCells(key) {
		sh.stats.Probes++
		if sh.cells[c].Key == key {
			return sh.cells[c].Value, true
		}
	}
	for i := range sh.stash {
		sh.stats.Probes++
		if sh.stash[i].Key == key {
			return sh.stash[i].Value, true
		}
	}
	return 0, false
}

// lookupRead is the counter-free read-only probe used by LookupBatch.
func (sh *flatShard) lookupRead(key uint64) (uint64, bool) {
	b1, b2 := hashPair(key, sh.mask)
	for d := 0; d <= sh.nu; d++ {
		c := (b1 + uint64(d)) & sh.mask
		if sh.cells[c].Key == key {
			return sh.cells[c].Value, true
		}
	}
	for d := 0; d <= sh.nu; d++ {
		c := (b2 + uint64(d)) & sh.mask
		if sh.cells[c].Key == key {
			return sh.cells[c].Value, true
		}
	}
	for i := range sh.stash {
		if sh.stash[i].Key == key {
			return sh.stash[i].Value, true
		}
	}
	return 0, false
}

// Insert stores (key, value). The placement strategy is:
//  1. replace an existing entry for key;
//  2. use any empty cell in the candidate set (counted as a NeighborHit
//     when it is not one of the two homes);
//  3. otherwise evict a pseudo-random candidate and re-place it
//     recursively, up to maxKicks displacements.
func (t *Flat) Insert(key, value uint64) error {
	if key == 0 {
		return errors.New("cuckoo: key 0 is reserved")
	}
	sh := t.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.insertLocked(key, value)
}

func (sh *flatShard) insertLocked(key, value uint64) error {
	cur := KeyValue{Key: key, Value: value}
	chain := 0
	for i := 0; i <= sh.maxKicks; i++ {
		cells := sh.probeCells(cur.Key)
		if chain == 0 {
			// Replace in place. (A displaced victim's key is never present
			// in the table — it is in hand — so this only applies before
			// the first eviction.)
			for _, c := range cells {
				if sh.cells[c].Key == cur.Key {
					sh.cells[c].Value = cur.Value
					return nil
				}
			}
			for i := range sh.stash {
				if sh.stash[i].Key == cur.Key {
					sh.stash[i].Value = cur.Value
					return nil
				}
			}
			// Failpoint: simulate kick-chain exhaustion for a genuinely new
			// key, driving the stash/rehash machinery without needing a
			// pathologically full table.
			if failpoint.Eval(failpoint.CuckooInsertFull) != nil {
				break
			}
		}
		// Empty cell anywhere in the flat neighborhood.
		for ci, c := range cells {
			if sh.cells[c].Key == 0 {
				sh.cells[c] = cur
				sh.n++
				sh.stats.Inserts++
				if ci != 0 && ci != sh.nu+1 {
					sh.stats.NeighborHits++
				}
				if chain > sh.stats.MaxChain {
					sh.stats.MaxChain = chain
				}
				return nil
			}
		}
		if i == sh.maxKicks {
			break
		}
		// Evict a pseudo-random candidate and continue with the victim.
		victim := cells[sh.rng.Intn(len(cells))]
		cur, sh.cells[victim] = sh.cells[victim], cur
		chain++
		sh.stats.Kicks++
	}
	// Park the unplaced item in the stash: the insertion completes, but the
	// rehash event is still reported (and counted in Stats.Failures).
	sh.stash = append(sh.stash, cur)
	sh.n++
	sh.stats.Inserts++
	sh.stats.Failures++
	return fmt.Errorf("%w: key %d after %d kicks", ErrTableFull, cur.Key, sh.maxKicks)
}

// Delete removes key if present.
func (t *Flat) Delete(key uint64) bool {
	sh := t.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, c := range sh.probeCells(key) {
		if sh.cells[c].Key == key {
			sh.cells[c] = KeyValue{}
			sh.n--
			return true
		}
	}
	for i := range sh.stash {
		if sh.stash[i].Key == key {
			sh.stash[i] = sh.stash[len(sh.stash)-1]
			sh.stash = sh.stash[:len(sh.stash)-1]
			sh.n--
			return true
		}
	}
	return false
}

// LookupBatch resolves many keys concurrently using up to workers
// goroutines (0 means GOMAXPROCS). Results are positionally aligned with
// keys; missing keys yield (0, false). This is the multicore parallel-query
// path of Figure 7: every lookup touches a constant, independent set of
// cells inside one shard, so worker goroutines only serialize when two keys
// land on the same shard at the same instant, and throughput scales nearly
// linearly with cores.
func (t *Flat) LookupBatch(keys []uint64, workers int) []LookupResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(keys) {
		workers = len(keys)
	}
	results := make([]LookupResult, len(keys))
	if len(keys) == 0 {
		return results
	}
	var wg sync.WaitGroup
	chunk := (len(keys) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(keys) {
			hi = len(keys)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				// Probe without touching shared stats (read-only scan).
				sh := t.shardOf(keys[i])
				sh.mu.RLock()
				v, ok := sh.lookupRead(keys[i])
				sh.mu.RUnlock()
				if ok {
					results[i] = LookupResult{Value: v, Found: true}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return results
}

// LookupResult is one entry of a batched lookup.
type LookupResult struct {
	Value uint64
	Found bool
}
