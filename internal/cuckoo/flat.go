package cuckoo

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
)

// Flat is FAST's flat-structured cuckoo table with adjacent neighboring
// storage: a key may live in either of its two home cells or in any of the
// Neighborhood cells that follow a home (wrapping around the table). Lookups
// probe 2*(Neighborhood+1) cells — a constant — and the probes are
// independent, which is what exposes the query parallelism Figure 7
// exploits on multicore machines.
type Flat struct {
	cells    []KeyValue
	stash    []KeyValue // overflow for items whose kick chain exhausted
	mask     uint64
	n        int
	nu       int // neighborhood width ν
	maxKicks int
	rng      *rand.Rand
	stats    Stats
	mu       sync.RWMutex
}

// DefaultNeighborhood is the ν used by the FAST prototype experiments.
const DefaultNeighborhood = 4

// NewFlat creates a flat-structured table with at least capacity cells.
// neighborhood < 0 is invalid; 0 degenerates to standard two-home cuckoo
// (useful for ablations). maxKicks 0 selects DefaultMaxKicks.
func NewFlat(capacity, neighborhood, maxKicks int, seed int64) (*Flat, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("cuckoo: capacity must be positive, got %d", capacity)
	}
	if neighborhood < 0 {
		return nil, fmt.Errorf("cuckoo: neighborhood must be >= 0, got %d", neighborhood)
	}
	if maxKicks == 0 {
		maxKicks = DefaultMaxKicks
	}
	size := nextPow2(capacity)
	if neighborhood >= size {
		return nil, fmt.Errorf("cuckoo: neighborhood %d >= table size %d", neighborhood, size)
	}
	return &Flat{
		cells:    make([]KeyValue, size),
		mask:     uint64(size - 1),
		nu:       neighborhood,
		maxKicks: maxKicks,
		rng:      rand.New(rand.NewSource(seed)),
	}, nil
}

// Neighborhood returns ν.
func (t *Flat) Neighborhood() int { return t.nu }

// Len returns the number of stored entries.
func (t *Flat) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.n
}

// Cap returns the number of cells.
func (t *Flat) Cap() int { return len(t.cells) }

// Stats returns cumulative statistics.
func (t *Flat) Stats() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.stats
}

// LoadFactor returns n / capacity.
func (t *Flat) LoadFactor() float64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return float64(t.n) / float64(len(t.cells))
}

// ProbeWidth returns the constant number of cells a lookup examines.
func (t *Flat) ProbeWidth() int { return 2 * (t.nu + 1) }

// probeCells yields the candidate cell indices for key: each home followed
// by its ν neighbors.
func (t *Flat) probeCells(key uint64) []uint64 {
	b1, b2 := hashPair(key, t.mask)
	cells := make([]uint64, 0, t.ProbeWidth())
	for d := 0; d <= t.nu; d++ {
		cells = append(cells, (b1+uint64(d))&t.mask)
	}
	for d := 0; d <= t.nu; d++ {
		cells = append(cells, (b2+uint64(d))&t.mask)
	}
	return cells
}

// Lookup probes the constant-width candidate set. It takes the write lock
// because it updates the probe statistics; for contention-free concurrent
// reads use LookupBatch, which skips the counters.
func (t *Flat) Lookup(key uint64) (uint64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lookupLocked(key)
}

func (t *Flat) lookupLocked(key uint64) (uint64, bool) {
	t.stats.Lookups++
	for _, c := range t.probeCells(key) {
		t.stats.Probes++
		if t.cells[c].Key == key {
			return t.cells[c].Value, true
		}
	}
	for i := range t.stash {
		t.stats.Probes++
		if t.stash[i].Key == key {
			return t.stash[i].Value, true
		}
	}
	return 0, false
}

// Insert stores (key, value). The placement strategy is:
//  1. replace an existing entry for key;
//  2. use any empty cell in the candidate set (counted as a NeighborHit
//     when it is not one of the two homes);
//  3. otherwise evict a pseudo-random candidate and re-place it
//     recursively, up to maxKicks displacements.
func (t *Flat) Insert(key, value uint64) error {
	if key == 0 {
		return errors.New("cuckoo: key 0 is reserved")
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	cur := KeyValue{Key: key, Value: value}
	chain := 0
	for i := 0; i <= t.maxKicks; i++ {
		cells := t.probeCells(cur.Key)
		if chain == 0 {
			// Replace in place. (A displaced victim's key is never present
			// in the table — it is in hand — so this only applies before
			// the first eviction.)
			for _, c := range cells {
				if t.cells[c].Key == cur.Key {
					t.cells[c].Value = cur.Value
					return nil
				}
			}
			for i := range t.stash {
				if t.stash[i].Key == cur.Key {
					t.stash[i].Value = cur.Value
					return nil
				}
			}
		}
		// Empty cell anywhere in the flat neighborhood.
		for ci, c := range cells {
			if t.cells[c].Key == 0 {
				t.cells[c] = cur
				t.n++
				t.stats.Inserts++
				if ci != 0 && ci != t.nu+1 {
					t.stats.NeighborHits++
				}
				if chain > t.stats.MaxChain {
					t.stats.MaxChain = chain
				}
				return nil
			}
		}
		if i == t.maxKicks {
			break
		}
		// Evict a pseudo-random candidate and continue with the victim.
		victim := cells[t.rng.Intn(len(cells))]
		cur, t.cells[victim] = t.cells[victim], cur
		chain++
		t.stats.Kicks++
	}
	// Park the unplaced item in the stash: the insertion completes, but the
	// rehash event is still reported (and counted in Stats.Failures).
	t.stash = append(t.stash, cur)
	t.n++
	t.stats.Inserts++
	t.stats.Failures++
	return fmt.Errorf("%w: key %d after %d kicks", ErrTableFull, cur.Key, t.maxKicks)
}

// Delete removes key if present.
func (t *Flat) Delete(key uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, c := range t.probeCells(key) {
		if t.cells[c].Key == key {
			t.cells[c] = KeyValue{}
			t.n--
			return true
		}
	}
	for i := range t.stash {
		if t.stash[i].Key == key {
			t.stash[i] = t.stash[len(t.stash)-1]
			t.stash = t.stash[:len(t.stash)-1]
			t.n--
			return true
		}
	}
	return false
}

// LookupBatch resolves many keys concurrently using up to workers
// goroutines (0 means GOMAXPROCS). Results are positionally aligned with
// keys; missing keys yield (0, false). This is the multicore parallel-query
// path of Figure 7: because every lookup touches a constant, independent
// set of cells, throughput scales nearly linearly with cores.
func (t *Flat) LookupBatch(keys []uint64, workers int) []LookupResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(keys) {
		workers = len(keys)
	}
	results := make([]LookupResult, len(keys))
	if len(keys) == 0 {
		return results
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	var wg sync.WaitGroup
	chunk := (len(keys) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(keys) {
			hi = len(keys)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				// Probe without touching shared stats (read-only scan).
				for _, c := range t.probeCells(keys[i]) {
					if t.cells[c].Key == keys[i] {
						results[i] = LookupResult{Value: t.cells[c].Value, Found: true}
						break
					}
				}
				if !results[i].Found {
					for s := range t.stash {
						if t.stash[s].Key == keys[i] {
							results[i] = LookupResult{Value: t.stash[s].Value, Found: true}
							break
						}
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return results
}

// LookupResult is one entry of a batched lookup.
type LookupResult struct {
	Value uint64
	Found bool
}
