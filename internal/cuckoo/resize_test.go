package cuckoo

import (
	"math/rand"
	"testing"
)

func TestRangeVisitsAllEntries(t *testing.T) {
	flat, _ := NewFlat(256, 2, 0, 1)
	want := map[uint64]uint64{}
	for k := uint64(1); k <= 100; k++ {
		want[k] = k * 3
		if err := flat.Insert(k, k*3); err != nil {
			t.Fatal(err)
		}
	}
	got := map[uint64]uint64{}
	flat.Range(func(k, v uint64) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range[%d] = %d, want %d", k, got[k], v)
		}
	}
	// Early termination.
	count := 0
	flat.Range(func(uint64, uint64) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early-terminated Range visited %d", count)
	}
}

func TestStandardRange(t *testing.T) {
	std, _ := NewStandard(256, 0, 1)
	for k := uint64(1); k <= 50; k++ {
		if err := std.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	std.Range(func(k, v uint64) bool {
		if k != v {
			t.Fatalf("Range pair (%d,%d)", k, v)
		}
		n++
		return true
	})
	if n != 50 {
		t.Errorf("visited %d entries, want 50", n)
	}
}

func TestResizableGrowsPastCapacity(t *testing.T) {
	// Insert far more items than the initial capacity; the table must grow
	// transparently and retain everything.
	r, err := NewResizable(64, DefaultNeighborhood, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	rng := rand.New(rand.NewSource(2))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64() | 1
		if err := r.Insert(keys[i], uint64(i)); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	if r.Len() != n {
		t.Fatalf("Len = %d, want %d", r.Len(), n)
	}
	if r.Cap() < n {
		t.Fatalf("Cap = %d did not grow past %d", r.Cap(), n)
	}
	if r.Rehashes() == 0 {
		t.Error("no rehashes recorded despite 15x overflow")
	}
	for i, k := range keys {
		v, ok := r.Lookup(k)
		if !ok || v != uint64(i) {
			t.Fatalf("key %d lost after growth: (%d, %v)", k, v, ok)
		}
	}
}

func TestResizableDeleteAndBatch(t *testing.T) {
	r, _ := NewResizable(128, DefaultNeighborhood, 0, 3)
	for k := uint64(1); k <= 60; k++ {
		if err := r.Insert(k, k+7); err != nil {
			t.Fatal(err)
		}
	}
	if !r.Delete(30) || r.Delete(30) {
		t.Error("delete semantics broken")
	}
	keys := []uint64{1, 30, 60}
	res := r.LookupBatch(keys, 2)
	if !res[0].Found || res[1].Found || !res[2].Found {
		t.Errorf("batch results wrong: %+v", res)
	}
	if r.Stats().Inserts == 0 {
		t.Error("stats not exposed")
	}
}

func TestResizableRejectsKeyZero(t *testing.T) {
	r, _ := NewResizable(64, 2, 0, 1)
	if err := r.Insert(0, 1); err == nil {
		t.Error("key 0 must be rejected without growing")
	}
	if r.Rehashes() != 0 {
		t.Error("invalid key triggered a rehash")
	}
}
