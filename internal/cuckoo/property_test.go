package cuckoo

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/fastrepro/fast/internal/failpoint"
)

// checkAllFindable asserts every model key resolves — via both the scalar
// and the batch lookup paths — and that the table holds nothing extra.
func checkAllFindable(t *testing.T, label string, flat *Flat, model map[uint64]uint64) {
	t.Helper()
	if flat.Len() != len(model) {
		t.Fatalf("%s: Len = %d, model has %d", label, flat.Len(), len(model))
	}
	keys := make([]uint64, 0, len(model))
	for k, v := range model {
		got, ok := flat.Lookup(k)
		if !ok || got != v {
			t.Fatalf("%s: key %d: ok=%v got=%d want=%d", label, k, ok, got, v)
		}
		keys = append(keys, k)
	}
	for i, lr := range flat.LookupBatch(keys, 4) {
		if want := model[keys[i]]; !lr.Found || lr.Value != want {
			t.Fatalf("%s: batch lookup %d: %+v want %d", label, keys[i], lr, want)
		}
	}
}

// TestFlatPropertyRandomOps drives seeded random insert/update/delete
// mixes at several load levels and checks the full findability invariant
// after each phase.
func TestFlatPropertyRandomOps(t *testing.T) {
	for _, seed := range []int64{1, 42, 777} {
		rng := rand.New(rand.NewSource(seed))
		flat, err := NewFlat(2048, 2, 0, seed)
		if err != nil {
			t.Fatal(err)
		}
		model := map[uint64]uint64{}
		for phase := 0; phase < 4; phase++ {
			for op := 0; op < 600; op++ {
				key := uint64(rng.Intn(1500)) + 1
				switch rng.Intn(3) {
				case 0, 1: // bias toward inserts to push load up
					val := rng.Uint64()
					if err := flat.Insert(key, val); err != nil && !errors.Is(err, ErrTableFull) {
						t.Fatalf("seed %d: insert: %v", seed, err)
					}
					model[key] = val
				case 2:
					want := false
					if _, ok := model[key]; ok {
						want = true
						delete(model, key)
					}
					if got := flat.Delete(key); got != want {
						t.Fatalf("seed %d: delete %d = %v want %v", seed, key, got, want)
					}
				}
			}
			checkAllFindable(t, "phase", flat, model)
		}
	}
}

// TestResizableLoadFactorBounded grows under sustained insertion and
// checks the load factor never exceeds 1 (more entries than cells is
// impossible by construction, but the stash could hide violations).
func TestResizableLoadFactorBounded(t *testing.T) {
	rz, err := NewResizable(64, 2, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	model := map[uint64]uint64{}
	for k := uint64(1); k <= 5000; k++ {
		if err := rz.Insert(k, k*7); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
		model[k] = k * 7
		if lf := float64(rz.Len()) / float64(rz.Cap()); lf > 1.0 {
			t.Fatalf("load factor %f > 1 at %d entries", lf, rz.Len())
		}
	}
	for k, v := range model {
		if got, ok := rz.Lookup(k); !ok || got != v {
			t.Fatalf("key %d lost across growth (ok=%v got=%d)", k, ok, got)
		}
	}
}

// TestDeleteInsertIdempotent: delete followed by insert of the same pair
// restores exactly the observable state, repeatedly, from any starting
// fill.
func TestDeleteInsertIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	flat, err := NewFlat(512, 2, 0, 13)
	if err != nil {
		t.Fatal(err)
	}
	model := map[uint64]uint64{}
	for i := 0; i < 300; i++ {
		k := uint64(rng.Intn(400)) + 1
		v := rng.Uint64()
		if err := flat.Insert(k, v); err != nil && !errors.Is(err, ErrTableFull) {
			t.Fatal(err)
		}
		model[k] = v
	}
	keys := make([]uint64, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	for round := 0; round < 3; round++ {
		for _, k := range keys {
			v := model[k]
			if !flat.Delete(k) {
				t.Fatalf("round %d: delete %d reported absent", round, k)
			}
			if _, ok := flat.Lookup(k); ok {
				t.Fatalf("round %d: key %d visible after delete", round, k)
			}
			if err := flat.Insert(k, v); err != nil && !errors.Is(err, ErrTableFull) {
				t.Fatalf("round %d: reinsert %d: %v", round, k, err)
			}
			if got, ok := flat.Lookup(k); !ok || got != v {
				t.Fatalf("round %d: key %d after delete+insert: ok=%v got=%d want=%d", round, k, ok, got, v)
			}
		}
		checkAllFindable(t, "idempotency round", flat, model)
	}
}

// TestInjectedInsertFullLandsInStash forces a kick-chain exhaustion via
// failpoint on a nearly-empty table: the insert must report ErrTableFull
// (the rehash signal) yet still complete into the stash.
func TestInjectedInsertFullLandsInStash(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	failpoint.Reset()
	flat, err := NewFlat(1024, 2, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	failpoint.Enable(failpoint.CuckooInsertFull, failpoint.Policy{Action: failpoint.Error, Times: 1})
	err = flat.Insert(42, 4242)
	if !errors.Is(err, ErrTableFull) {
		t.Fatalf("injected exhaustion returned %v, want ErrTableFull", err)
	}
	if got, ok := flat.Lookup(42); !ok || got != 4242 {
		t.Fatalf("stashed key lost: ok=%v got=%d", ok, got)
	}
	if st := flat.Stats(); st.Failures != 1 {
		t.Fatalf("Failures = %d, want 1", st.Failures)
	}
	// Updating and deleting a stashed key must work like any other.
	if err := flat.Insert(42, 99); err != nil {
		t.Fatalf("updating stashed key: %v", err)
	}
	if got, _ := flat.Lookup(42); got != 99 {
		t.Fatalf("stashed key update lost: %d", got)
	}
	if !flat.Delete(42) {
		t.Fatal("stashed key not deletable")
	}
}

// TestInjectedInsertFullTriggersRehash: the Resizable wrapper must answer
// an injected exhaustion with a grow-and-rebuild that loses nothing.
func TestInjectedInsertFullTriggersRehash(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	failpoint.Reset()
	rz, err := NewResizable(256, 2, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 100; k++ {
		if err := rz.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	capBefore := rz.Cap()
	failpoint.Enable(failpoint.CuckooInsertFull, failpoint.Policy{Action: failpoint.Error, Times: 1})
	if err := rz.Insert(500, 500); err != nil {
		t.Fatalf("insert through injected exhaustion: %v", err)
	}
	if rz.Rehashes() != 1 {
		t.Fatalf("Rehashes = %d, want 1", rz.Rehashes())
	}
	if rz.Cap() <= capBefore {
		t.Fatalf("capacity did not grow: %d -> %d", capBefore, rz.Cap())
	}
	for k := uint64(1); k <= 100; k++ {
		if got, ok := rz.Lookup(k); !ok || got != k {
			t.Fatalf("key %d lost across injected rehash", k)
		}
	}
	if got, ok := rz.Lookup(500); !ok || got != 500 {
		t.Fatal("triggering key lost")
	}
}

// TestInjectedRehashFailureSurfaces: when the rehash itself is made to
// fail, the error reaches the caller instead of being swallowed.
func TestInjectedRehashFailureSurfaces(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	failpoint.Reset()
	rz, err := NewResizable(256, 2, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	failpoint.Enable(failpoint.CuckooInsertFull, failpoint.Policy{Action: failpoint.Error, Times: 1})
	failpoint.Enable(failpoint.CuckooRehash, failpoint.Policy{Action: failpoint.Error})
	err = rz.Insert(7, 7)
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("want injected rehash error, got %v", err)
	}
}
