// Package cuckoo implements the Cuckoo-Hashing Storage (CHS) module of FAST:
// flat-structured addressing for correlation-aware groups.
//
// Two tables are provided:
//
//   - Standard: textbook cuckoo hashing (Pagh & Rodler, ESA'01) with two
//     hash functions and single-slot buckets. Insertions displace residents
//     recursively; an insertion that exceeds the kick budget fails, which in
//     a real system forces a rehash. This is the paper's comparison point in
//     Figure 6.
//
//   - Flat: FAST's variant with *adjacent neighboring storage*
//     (Section III, "we address this problem via adjacent neighboring
//     storage"): every key still has two home buckets, but it may reside in
//     any of the ν cells following either home. Lookups therefore probe a
//     constant 2(ν+1) cells — trivially parallelizable, the paper's
//     flat-structured O(1) addressing — while insertions almost always find
//     a free neighbor cell instead of starting a kick chain. The failure
//     (rehash) probability drops by orders of magnitude (Figure 6 reports
//     ~1.7e-6 vs ~4e-3 at the paper's load).
//
// Both tables satisfy the Table interface so the evaluation harness can
// drive them interchangeably.
package cuckoo

import (
	"errors"
	"fmt"
	"math/rand"
)

// ErrTableFull is returned when an insertion cannot be placed within the
// kick budget; a production system would rehash into a larger table.
var ErrTableFull = errors.New("cuckoo: insertion failed (rehash required)")

// KeyValue is one stored entry. Key 0 is reserved as the empty marker, so
// callers must not insert key 0 (the constructors document this and Insert
// rejects it).
type KeyValue struct {
	Key   uint64
	Value uint64
}

// Table is the common interface of the two cuckoo variants.
type Table interface {
	// Insert stores (key, value), replacing any existing value for key.
	// It returns ErrTableFull when the placement fails.
	Insert(key, value uint64) error
	// Lookup returns the value for key and whether it is present.
	Lookup(key uint64) (uint64, bool)
	// Delete removes key, reporting whether it was present.
	Delete(key uint64) bool
	// Len returns the number of stored entries.
	Len() int
	// Cap returns the number of cells.
	Cap() int
	// Stats returns cumulative operation statistics.
	Stats() Stats
}

// Stats counts the work done by a table since creation.
type Stats struct {
	Inserts      int // completed insertions (including stash placements)
	Failures     int // insertions that overflowed to the stash (rehash events)
	Kicks        int // displacement steps across all insertions
	Probes       int // cells examined by lookups
	Lookups      int
	MaxChain     int // longest single-insert kick chain observed
	NeighborHits int // flat only: placements resolved by a neighbor cell
}

// FailureProbability returns Failures / Inserts, the empirical rehash
// probability plotted in Figure 6 (every insertion completes — overflow
// lands in the stash — so Inserts is the attempt count).
func (s Stats) FailureProbability() float64 {
	if s.Inserts == 0 {
		return 0
	}
	return float64(s.Failures) / float64(s.Inserts)
}

// hashPair derives the two bucket indices for key in a table of size
// (power-of-two) mask+1. The two hashes come from independent SplitMix64
// streams.
func hashPair(key uint64, mask uint64) (uint64, uint64) {
	h1 := mix(key ^ 0x9e3779b97f4a7c15)
	h2 := mix(key ^ 0xc2b2ae3d27d4eb4f)
	b1 := h1 & mask
	b2 := h2 & mask
	if b1 == b2 { // force distinct homes
		b2 = (b2 + 1) & mask
	}
	return b1, b2
}

func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// nextPow2 rounds n up to a power of two (minimum 2).
func nextPow2(n int) int {
	p := 2
	for p < n {
		p <<= 1
	}
	return p
}

// Standard is the textbook two-function, single-slot cuckoo table, plus a
// stash: when a displacement chain exceeds the kick budget the item in hand
// is parked in a small overflow list instead of being lost. The insertion
// still reports ErrTableFull — the signal Figure 6 counts — but the table
// remains complete, which is what lets a wrapper rehash lazily.
type Standard struct {
	cells    []KeyValue
	stash    []KeyValue
	mask     uint64
	n        int
	maxKicks int
	rng      *rand.Rand
	stats    Stats
}

// DefaultMaxKicks bounds the displacement chain before declaring failure.
const DefaultMaxKicks = 500

// NewStandard creates a standard cuckoo table with at least capacity cells
// (rounded up to a power of two). maxKicks 0 selects DefaultMaxKicks.
// Key 0 is reserved and cannot be stored.
func NewStandard(capacity, maxKicks int, seed int64) (*Standard, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("cuckoo: capacity must be positive, got %d", capacity)
	}
	if maxKicks == 0 {
		maxKicks = DefaultMaxKicks
	}
	size := nextPow2(capacity)
	return &Standard{
		cells:    make([]KeyValue, size),
		mask:     uint64(size - 1),
		maxKicks: maxKicks,
		rng:      rand.New(rand.NewSource(seed)),
	}, nil
}

// Len returns the number of stored entries.
func (t *Standard) Len() int { return t.n }

// Cap returns the number of cells.
func (t *Standard) Cap() int { return len(t.cells) }

// Stats returns cumulative statistics.
func (t *Standard) Stats() Stats { return t.stats }

// Lookup probes the two home cells and the stash.
func (t *Standard) Lookup(key uint64) (uint64, bool) {
	t.stats.Lookups++
	b1, b2 := hashPair(key, t.mask)
	t.stats.Probes += 2
	if t.cells[b1].Key == key {
		return t.cells[b1].Value, true
	}
	if t.cells[b2].Key == key {
		return t.cells[b2].Value, true
	}
	for i := range t.stash {
		t.stats.Probes++
		if t.stash[i].Key == key {
			return t.stash[i].Value, true
		}
	}
	return 0, false
}

// Insert stores (key, value), kicking residents as needed.
func (t *Standard) Insert(key, value uint64) error {
	if key == 0 {
		return errors.New("cuckoo: key 0 is reserved")
	}
	b1, b2 := hashPair(key, t.mask)
	// Replace in place if present.
	if t.cells[b1].Key == key {
		t.cells[b1].Value = value
		return nil
	}
	if t.cells[b2].Key == key {
		t.cells[b2].Value = value
		return nil
	}
	for i := range t.stash {
		if t.stash[i].Key == key {
			t.stash[i].Value = value
			return nil
		}
	}
	cur := KeyValue{Key: key, Value: value}
	pos := b1
	if t.cells[b1].Key != 0 && t.cells[b2].Key == 0 {
		pos = b2
	}
	chain := 0
	for i := 0; i < t.maxKicks; i++ {
		if t.cells[pos].Key == 0 {
			t.cells[pos] = cur
			t.n++
			t.stats.Inserts++
			if chain > t.stats.MaxChain {
				t.stats.MaxChain = chain
			}
			return nil
		}
		// Evict the resident and move it to its alternate home.
		cur, t.cells[pos] = t.cells[pos], cur
		chain++
		t.stats.Kicks++
		a1, a2 := hashPair(cur.Key, t.mask)
		if pos == a1 {
			pos = a2
		} else {
			pos = a1
		}
	}
	// The chain exhausted its kick budget: park the item in hand in the
	// stash so no data is lost, and report the rehash event.
	t.stash = append(t.stash, cur)
	t.n++
	t.stats.Inserts++
	t.stats.Failures++
	return fmt.Errorf("%w: key %d after %d kicks", ErrTableFull, cur.Key, t.maxKicks)
}

// Delete removes key if present.
func (t *Standard) Delete(key uint64) bool {
	b1, b2 := hashPair(key, t.mask)
	if t.cells[b1].Key == key {
		t.cells[b1] = KeyValue{}
		t.n--
		return true
	}
	if t.cells[b2].Key == key {
		t.cells[b2] = KeyValue{}
		t.n--
		return true
	}
	for i := range t.stash {
		if t.stash[i].Key == key {
			t.stash[i] = t.stash[len(t.stash)-1]
			t.stash = t.stash[:len(t.stash)-1]
			t.n--
			return true
		}
	}
	return false
}

// LoadFactor returns n / capacity.
func (t *Standard) LoadFactor() float64 { return float64(t.n) / float64(len(t.cells)) }
