package tiered

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/fastrepro/fast/internal/failpoint"
)

var testOpts = Options{M: 256, K: 4, Bands: 4, SeedFP: 0xfa57fa57}

// testEntry builds a deterministic entry for id: words and band keys are
// pure functions of the id so reopened state can be checked value-for-value.
func testEntry(opts Options, id uint64) Entry {
	words := make([]uint64, int(opts.M+63)/64)
	for i := range words {
		words[i] = id*0x9e3779b97f4a7c15 + uint64(i)
	}
	keys := make([]uint64, opts.Bands)
	for b := range keys {
		// Small key space so buckets genuinely collide across entries.
		keys[b] = uint64(b)<<32 | (id % 7)
	}
	return Entry{ID: id, Words: words, Keys: keys}
}

func openTest(t *testing.T, dir string) *Store {
	t.Helper()
	opts := testOpts
	opts.Dir = dir
	s, _, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func migrateIDs(t *testing.T, s *Store, ids ...uint64) {
	t.Helper()
	batch := make([]Entry, len(ids))
	for i, id := range ids {
		batch[i] = testEntry(s.opts, id)
	}
	if err := s.Migrate(batch); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
}

// assertLive checks the view scores exactly want: every live id is found in
// its buckets with its exact words, and nothing else passes the owner check.
func assertLive(t *testing.T, s *Store, want ...uint64) {
	t.Helper()
	v := s.View()
	if v.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", v.Len(), len(want))
	}
	scratch := make([]uint64, s.wordN)
	for _, id := range want {
		if !v.Contains(id) {
			t.Fatalf("Contains(%d) = false", id)
		}
		e := testEntry(s.opts, id)
		// Every band bucket for the id must yield the id with exact words
		// from exactly one owning segment.
		for b, key := range e.Keys {
			found := false
			for si, seg := range v.Segments() {
				p := seg.Bucket(b, key)
				for i := 0; i < p.Len(); i++ {
					if p.ID(i) != id || !v.Owns(id, si) {
						continue
					}
					got := p.Words(i, scratch)
					for wi := range got {
						if got[wi] != e.Words[wi] {
							t.Fatalf("id %d band %d word %d = %#x, want %#x", id, b, wi, got[wi], e.Words[wi])
						}
					}
					found = true
				}
			}
			if !found {
				t.Fatalf("id %d not found in band %d bucket %#x", id, b, key)
			}
		}
		seg, rec, ok := v.Lookup(id)
		if !ok {
			t.Fatalf("Lookup(%d) missed", id)
		}
		got := seg.RecordWords(rec, scratch)
		for wi := range got {
			if got[wi] != e.Words[wi] {
				t.Fatalf("Lookup(%d) word %d = %#x, want %#x", id, wi, got[wi], e.Words[wi])
			}
		}
	}
}

func TestMigrateRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	migrateIDs(t, s, 1, 2, 3, 4, 5)
	migrateIDs(t, s, 6, 7)
	assertLive(t, s, 1, 2, 3, 4, 5, 6, 7)
	if got := s.Stats(); got.Segments != 2 || got.Entries != 7 || got.Migrations != 2 {
		t.Fatalf("Stats = %+v", got)
	}

	// Reopen: identical state from disk.
	s.Close()
	s2 := openTest(t, dir)
	assertLive(t, s2, 1, 2, 3, 4, 5, 6, 7)
}

func TestMigrateRejects(t *testing.T) {
	s := openTest(t, t.TempDir())
	migrateIDs(t, s, 1)
	if err := s.Migrate([]Entry{testEntry(s.opts, 1)}); err == nil {
		t.Fatal("re-migrating a live id should fail")
	}
	bad := testEntry(s.opts, 2)
	bad.Words = bad.Words[:1]
	if err := s.Migrate([]Entry{bad}); err == nil {
		t.Fatal("wrong word count should fail")
	}
	bad = testEntry(s.opts, 2)
	bad.Keys = bad.Keys[:1]
	if err := s.Migrate([]Entry{bad}); err == nil {
		t.Fatal("wrong key count should fail")
	}
}

func TestDeleteTombstoneDurable(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	migrateIDs(t, s, 1, 2, 3)
	if ok, err := s.Delete(2); err != nil || !ok {
		t.Fatalf("Delete(2) = %v, %v", ok, err)
	}
	if ok, err := s.Delete(99); err != nil || ok {
		t.Fatalf("Delete(99) = %v, %v (want miss)", ok, err)
	}
	assertLive(t, s, 1, 3)
	if s.Stats().Tombstones != 1 {
		t.Fatalf("Tombstones = %d, want 1", s.Stats().Tombstones)
	}

	s.Close()
	s2 := openTest(t, dir)
	assertLive(t, s2, 1, 3)

	// A deleted id can come back via a later migration; the tombstone is
	// cleared in the same catalog generation.
	migrateIDs(t, s2, 2)
	assertLive(t, s2, 1, 2, 3)
	if s2.Stats().Tombstones != 0 {
		t.Fatalf("Tombstones = %d after re-migrate, want 0", s2.Stats().Tombstones)
	}
	s2.Close()
	s3 := openTest(t, dir)
	assertLive(t, s3, 1, 2, 3)
}

func TestReplaceAllCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	migrateIDs(t, s, 1, 2, 3)
	migrateIDs(t, s, 4, 5)
	if _, err := s.Delete(2); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if df := s.DeadFraction(); df <= 0 {
		t.Fatalf("DeadFraction = %v, want > 0 after delete", df)
	}
	old := s.View()

	live := []Entry{testEntry(s.opts, 1), testEntry(s.opts, 3), testEntry(s.opts, 4), testEntry(s.opts, 5)}
	if err := s.ReplaceAll(live); err != nil {
		t.Fatalf("ReplaceAll: %v", err)
	}
	assertLive(t, s, 1, 3, 4, 5)
	if st := s.Stats(); st.Segments != 1 || st.Tombstones != 0 || st.Compactions != 1 {
		t.Fatalf("Stats after compaction = %+v", st)
	}
	if df := s.DeadFraction(); df != 0 {
		t.Fatalf("DeadFraction = %v after compaction, want 0", df)
	}
	// Readers holding the pre-compaction view still scan valid memory even
	// though the old files are unlinked.
	for _, seg := range old.Segments() {
		if _, err := os.Stat(seg.path); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("old segment file %s still on disk", seg.path)
		}
		p := seg.Bucket(0, 1)
		for i := 0; i < p.Len(); i++ {
			_ = p.ID(i)
			_ = p.Words(i, make([]uint64, s.wordN))
		}
	}

	s.Close()
	s2 := openTest(t, dir)
	assertLive(t, s2, 1, 3, 4, 5)
}

func TestOpenSweepsOrphans(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	migrateIDs(t, s, 1, 2)
	s.Close()

	// A segment written but never cataloged (death before catalog publish).
	orphan := segPath(dir, 99)
	if _, err := writeSegment(orphan, s.geo, []Entry{testEntry(s.opts, 42)}); err != nil {
		t.Fatalf("writeSegment: %v", err)
	}
	s2 := openTest(t, dir)
	assertLive(t, s2, 1, 2)
	if _, err := os.Stat(orphan); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("orphan segment not swept at open")
	}
}

func TestOpenRejectsGeometryMismatch(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	migrateIDs(t, s, 1)
	s.Close()

	opts := testOpts
	opts.Dir = dir
	opts.Bands = 8
	if _, _, err := Open(opts); err == nil {
		t.Fatal("Open with mismatched bands should fail")
	}
	opts = testOpts
	opts.Dir = dir
	opts.SeedFP = 1
	if _, _, err := Open(opts); err == nil {
		t.Fatal("Open with mismatched seed fingerprint should fail")
	}
}

func TestCorruptSegmentFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	migrateIDs(t, s, 1, 2, 3)
	seg := s.View().Segments()[0].path
	s.Close()

	// Flip a byte in the postings region: body CRC must reject the segment,
	// and with the only catalog generation referencing it, open fails loudly
	// rather than serving corrupt summaries.
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-10] ^= 0xff
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	opts := testOpts
	opts.Dir = dir
	if _, _, err := Open(opts); err == nil {
		t.Fatal("Open over a corrupt segment should fail")
	}
}

func TestCatalogGenerationsFallback(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	migrateIDs(t, s, 1, 2)
	migrateIDs(t, s, 3) // second catalog generation
	s.Close()

	// Corrupt the primary catalog: recovery falls back to the previous
	// generation, which describes the state before the last migration. The
	// segment the lost generation added is swept as an orphan.
	cat := filepath.Join(dir, "catalog.fast")
	raw, err := os.ReadFile(cat)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(cat, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir)
	assertLive(t, s2, 1, 2)
	if got := len(s2.View().Segments()); got != 1 {
		t.Fatalf("segments after fallback = %d, want 1", got)
	}
}

func TestMigrateFailpointCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	migrateIDs(t, s, 1, 2)

	// Torn segment write: the temp never renames, nothing changes.
	failpoint.Enable(failpoint.TieredSegmentWrite, failpoint.Policy{Action: failpoint.PartialWrite, Bytes: 32})
	err := s.Migrate([]Entry{testEntry(s.opts, 3)})
	failpoint.Reset()
	if err == nil {
		t.Fatal("Migrate under PartialWrite should fail")
	}
	assertLive(t, s, 1, 2)

	// Death between segment publish and catalog publish: the migration
	// fails, the view is unchanged, and the durable-but-unreferenced
	// segment is reclaimed at the next open.
	failpoint.Enable(failpoint.TieredSegmentPublish, failpoint.Policy{Action: failpoint.Error})
	err = s.Migrate([]Entry{testEntry(s.opts, 3)})
	failpoint.Reset()
	if err == nil {
		t.Fatal("Migrate under publish failpoint should fail")
	}
	assertLive(t, s, 1, 2)
	s.Close()

	s2 := openTest(t, dir)
	assertLive(t, s2, 1, 2)
	// The retry after "recovery" succeeds and reuses the sequence number.
	migrateIDs(t, s2, 3)
	assertLive(t, s2, 1, 2, 3)

	// No stray files: every .fastseg on disk is referenced.
	known := make(map[string]bool)
	for _, seg := range s2.View().Segments() {
		known[filepath.Base(seg.path)] = true
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "seg-*"+segSuffix))
	for _, m := range matches {
		if !known[filepath.Base(m)] {
			t.Fatalf("unreferenced segment file %s", m)
		}
	}
}
