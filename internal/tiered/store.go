// Package tiered implements the disk-resident cold tier of the two-tier
// index. The hot tier (internal/core) keeps recent entries in the lock-free
// epoch-published RAM view; this package holds everything migrated out of
// it, laid out IVF-style on disk: each LSH band bucket maps to a postings
// list of packed summaries in an immutable CRC'd segment file, opened
// read-only with mmap and scanned sequentially per probed bucket. Because
// postings carry the same packed word layout bloom.AndOrCount consumes and
// are keyed by the same band keys the in-RAM index computes, a probe that
// spills here collects exactly the candidates it would have collected had
// the entries stayed resident — the foundation of the engine's tiered
// byte-identity guarantee.
//
// Durability is delegated to internal/store: segment files go through the
// temp→fsync→rename→dirsync publish sequence, and the catalog — the
// ordered segment list plus the tombstone set — is a store.Generations
// snapshot with fallback. Mutations (Migrate, Delete, ReplaceAll) publish
// the catalog first and only then swap the in-memory View, so a crash at
// any step leaves either the old state or the new one, never a mix; an
// orphaned segment (written but never cataloged) is swept at the next Open.
package tiered

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/fastrepro/fast/internal/failpoint"
	"github.com/fastrepro/fast/internal/store"
)

// Options configures a cold-tier store. M, K, Bands, and SeedFP pin the
// geometry; opening an existing catalog written under different parameters
// fails rather than silently mis-scoring.
type Options struct {
	// Dir holds the catalog generations and segment files.
	Dir string
	// M and K are the summary filter geometry (bits, hash count).
	M uint32
	K int
	// Bands is the LSH band count; each entry carries one key per band.
	Bands int
	// SeedFP is lsh.SeedFingerprint() of the hash family the band keys are
	// computed under.
	SeedFP uint64
	// Keep is the catalog generation count (0 means store.Generations'
	// default of 2).
	Keep int
}

// Store is the cold tier: an atomically-published View over immutable
// mmap'd segments, plus the mutation protocol that grows and compacts it.
// Reads (View and everything hanging off it) are lock-free; mutations
// serialize on mu and publish catalog-then-view.
type Store struct {
	opts  Options
	geo   geometry
	wordN int
	cat   *store.Generations

	mu      sync.Mutex
	nextSeq uint64
	tombs   map[uint64]struct{}
	retired []*Segment // compacted away, mappings kept for old-view readers
	closed  bool

	view atomic.Pointer[View]

	migrations  atomic.Int64
	compactions atomic.Int64
	spillProbes atomic.Int64
	postings    atomic.Int64
	bytesRead   atomic.Int64
}

// View is an immutable snapshot of the cold tier: the live segments in
// catalog order and the ownership map. A posting for id inside segment i is
// live iff owner[id] == i — this one rule subsumes both tombstones (deleted
// ids own nothing) and cross-segment duplicates (a re-migrated id is owned
// by its newest segment, stale copies in older segments score nothing).
type View struct {
	segs  []*Segment
	owner map[uint64]int32
}

// Len is the live cold entry count.
func (v *View) Len() int {
	if v == nil {
		return 0
	}
	return len(v.owner)
}

// Contains reports whether id is live in the cold tier.
func (v *View) Contains(id uint64) bool {
	if v == nil {
		return false
	}
	_, ok := v.owner[id]
	return ok
}

// Segments returns the live segments in catalog order. Callers must not
// mutate the slice.
func (v *View) Segments() []*Segment {
	if v == nil {
		return nil
	}
	return v.segs
}

// Owns reports whether segment index seg is the live home of id — the
// staleness filter cold scans apply per posting.
func (v *View) Owns(id uint64, seg int) bool {
	si, ok := v.owner[id]
	return ok && int(si) == seg
}

// Lookup resolves id to its owning segment and record ordinal.
func (v *View) Lookup(id uint64) (*Segment, int, bool) {
	if v == nil {
		return nil, 0, false
	}
	si, ok := v.owner[id]
	if !ok {
		return nil, 0, false
	}
	seg := v.segs[si]
	rec, ok := seg.byID[id]
	if !ok {
		return nil, 0, false
	}
	return seg, int(rec), true
}

// AppendIDs appends every live cold id to dst (unordered) and returns the
// extended slice.
func (v *View) AppendIDs(dst []uint64) []uint64 {
	if v == nil {
		return dst
	}
	for id := range v.owner {
		dst = append(dst, id)
	}
	return dst
}

// Open recovers (or initializes) the cold tier at opts.Dir. The catalog is
// recovered through its generations newest-first; a generation whose
// referenced segments are missing or corrupt fails to load, falling back to
// the previous generation. Segment files no catalog generation references —
// crash debris from a death between segment publish and catalog publish —
// are removed. Returns the store and the paths swept.
func Open(opts Options) (*Store, []string, error) {
	if opts.Dir == "" {
		return nil, nil, errors.New("tiered: Dir required")
	}
	if opts.M == 0 || opts.Bands <= 0 {
		return nil, nil, errors.New("tiered: M and Bands must be set")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("tiered: %w", err)
	}
	geo := geometry{m: opts.M, k: uint32(opts.K), bands: uint32(opts.Bands), seedFP: opts.SeedFP}
	s := &Store{
		opts:    opts,
		geo:     geo,
		wordN:   geo.words(),
		cat:     &store.Generations{Path: filepath.Join(opts.Dir, "catalog.fast"), Keep: opts.Keep},
		tombs:   make(map[uint64]struct{}),
		nextSeq: 1,
	}
	var cata catalog
	var segs []*Segment
	info, err := s.cat.Recover(func(path string, r io.Reader) error {
		enc, rerr := io.ReadAll(r)
		if rerr != nil {
			return rerr
		}
		c, derr := decodeCatalog(enc)
		if derr != nil {
			return derr
		}
		if c.geo != geo {
			return fmt.Errorf("tiered: catalog geometry mismatch: catalog has m=%d k=%d bands=%d seed %#x, index is m=%d k=%d bands=%d seed %#x",
				c.geo.m, c.geo.k, c.geo.bands, c.geo.seedFP, geo.m, geo.k, geo.bands, geo.seedFP)
		}
		opened := make([]*Segment, 0, len(c.segs))
		fail := func(err error) error {
			for _, o := range opened {
				o.close()
			}
			return err
		}
		for _, cs := range c.segs {
			seg, serr := openSegment(segPath(opts.Dir, cs.seq), cs.seq, geo)
			if serr != nil {
				return fail(serr)
			}
			opened = append(opened, seg)
			if uint64(seg.Entries()) != cs.entries {
				return fail(fmt.Errorf("tiered: segment %016x holds %d entries, catalog says %d", cs.seq, seg.Entries(), cs.entries))
			}
		}
		cata = c
		segs = opened
		return nil
	})
	swept := info.Swept
	if err != nil {
		if !errors.Is(err, store.ErrNoSnapshot) {
			return nil, nil, err
		}
		cata = catalog{geo: geo, nextSeq: 1}
	}
	if cata.nextSeq > 0 {
		s.nextSeq = cata.nextSeq
	}
	for _, id := range cata.tombs {
		s.tombs[id] = struct{}{}
	}
	owner := make(map[uint64]int32)
	for i, seg := range segs {
		for id := range seg.byID {
			owner[id] = int32(i)
		}
	}
	for id := range s.tombs {
		delete(owner, id)
	}
	s.view.Store(&View{segs: segs, owner: owner})
	swept = append(swept, s.sweepOrphans(segs)...)
	return s, swept, nil
}

// sweepOrphans removes segment files the live catalog does not reference.
func (s *Store) sweepOrphans(live []*Segment) []string {
	known := make(map[string]struct{}, len(live))
	for _, seg := range live {
		known[seg.path] = struct{}{}
	}
	matches, _ := filepath.Glob(filepath.Join(s.opts.Dir, "seg-*"+segSuffix))
	var swept []string
	for _, m := range matches {
		if _, ok := known[m]; ok {
			continue
		}
		if os.Remove(m) == nil {
			swept = append(swept, m)
		}
	}
	return swept
}

// Options returns the directory and geometry the store was opened with.
func (s *Store) Options() Options { return s.opts }

// View returns the current cold-tier snapshot for lock-free reading.
func (s *Store) View() *View { return s.view.Load() }

// Len is the live cold entry count.
func (s *Store) Len() int { return s.view.Load().Len() }

// Contains reports whether id is live in the cold tier.
func (s *Store) Contains(id uint64) bool { return s.view.Load().Contains(id) }

// AppendIDs appends every live cold id to dst (unordered).
func (s *Store) AppendIDs(dst []uint64) []uint64 { return s.view.Load().AppendIDs(dst) }

func (s *Store) validateBatch(batch []Entry) error {
	for i := range batch {
		e := &batch[i]
		if len(e.Words) != s.wordN {
			return fmt.Errorf("tiered: photo %d carries %d summary words, geometry needs %d", e.ID, len(e.Words), s.wordN)
		}
		if len(e.Keys) != int(s.geo.bands) {
			return fmt.Errorf("tiered: photo %d carries %d band keys, geometry needs %d", e.ID, len(e.Keys), s.geo.bands)
		}
	}
	return nil
}

func (s *Store) publishCatalog(c catalog) error {
	enc := c.encode()
	if _, err := s.cat.Write(bytes.NewReader(enc)); err != nil {
		return fmt.Errorf("tiered: publishing catalog: %w", err)
	}
	return nil
}

func (s *Store) catSegsLocked(v *View) []catSeg {
	out := make([]catSeg, len(v.segs))
	for i, seg := range v.segs {
		out[i] = catSeg{seq: seg.seq, entries: uint64(seg.Entries())}
	}
	return out
}

func tombList(m map[uint64]struct{}) []uint64 {
	out := make([]uint64, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Migrate freezes batch into a new segment and publishes it. The protocol —
// write+fsync the segment, publish the catalog naming it, swap the view —
// matches the failpoint sites: a death inside the write leaves a torn temp
// or a CRC-rejected file, a death before the catalog publish leaves a
// durable orphan the next Open sweeps, and in both cases the prior catalog
// still describes a consistent store. Tombstones for re-migrated ids are
// cleared in the same catalog generation.
func (s *Store) Migrate(batch []Entry) error {
	if len(batch) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("tiered: store closed")
	}
	if err := s.validateBatch(batch); err != nil {
		return err
	}
	cur := s.view.Load()
	for i := range batch {
		if cur.Contains(batch[i].ID) {
			return fmt.Errorf("tiered: photo %d already in cold tier", batch[i].ID)
		}
	}
	seq := s.nextSeq
	path := segPath(s.opts.Dir, seq)
	if _, err := writeSegment(path, s.geo, batch); err != nil {
		return err
	}
	seg, err := openSegment(path, seq, s.geo)
	if err != nil {
		os.Remove(path)
		return err
	}
	// The segment is durable but unreferenced until the catalog names it.
	if err := failpoint.Eval(failpoint.TieredSegmentPublish); err != nil {
		seg.close()
		return fmt.Errorf("tiered: publishing segment %016x: %w", seq, err)
	}
	newTombs := make(map[uint64]struct{}, len(s.tombs))
	for id := range s.tombs {
		newTombs[id] = struct{}{}
	}
	for i := range batch {
		delete(newTombs, batch[i].ID)
	}
	cat := catalog{
		geo:     s.geo,
		nextSeq: seq + 1,
		segs:    append(s.catSegsLocked(cur), catSeg{seq: seq, entries: uint64(len(batch))}),
		tombs:   tombList(newTombs),
	}
	if err := s.publishCatalog(cat); err != nil {
		seg.close()
		return err
	}
	s.nextSeq = seq + 1
	s.tombs = newTombs
	segs := make([]*Segment, len(cur.segs)+1)
	copy(segs, cur.segs)
	segs[len(cur.segs)] = seg
	owner := make(map[uint64]int32, len(cur.owner)+len(batch))
	for id, si := range cur.owner {
		owner[id] = si
	}
	idx := int32(len(segs) - 1)
	for i := range batch {
		owner[batch[i].ID] = idx
	}
	s.view.Store(&View{segs: segs, owner: owner})
	s.migrations.Add(1)
	return nil
}

// Delete tombstones a cold id: the catalog gains the id, the published view
// drops it from ownership (so no posting scores), and the record itself
// lingers on disk until the next ReplaceAll folds it away. Returns whether
// the id was live; a miss is not an error.
func (s *Store) Delete(id uint64) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, errors.New("tiered: store closed")
	}
	cur := s.view.Load()
	if !cur.Contains(id) {
		return false, nil
	}
	newTombs := make(map[uint64]struct{}, len(s.tombs)+1)
	for t := range s.tombs {
		newTombs[t] = struct{}{}
	}
	newTombs[id] = struct{}{}
	cat := catalog{geo: s.geo, nextSeq: s.nextSeq, segs: s.catSegsLocked(cur), tombs: tombList(newTombs)}
	if err := s.publishCatalog(cat); err != nil {
		return false, err
	}
	s.tombs = newTombs
	owner := make(map[uint64]int32, len(cur.owner))
	for oid, si := range cur.owner {
		if oid != id {
			owner[oid] = si
		}
	}
	s.view.Store(&View{segs: cur.segs, owner: owner})
	return true, nil
}

// ReplaceAll rewrites the cold tier as one segment holding exactly batch —
// the compaction path. The caller passes every live cold entry (with band
// keys recomputed under the same hash family); tombstoned and superseded
// records simply don't appear in the new segment, the tombstone set resets
// to empty, and the old segment files are unlinked. Their mappings stay
// alive until Close for readers still holding an old view.
func (s *Store) ReplaceAll(batch []Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("tiered: store closed")
	}
	if err := s.validateBatch(batch); err != nil {
		return err
	}
	cur := s.view.Load()
	seq := s.nextSeq
	var segs []*Segment
	var catSegs []catSeg
	if len(batch) > 0 {
		path := segPath(s.opts.Dir, seq)
		if _, err := writeSegment(path, s.geo, batch); err != nil {
			return err
		}
		seg, err := openSegment(path, seq, s.geo)
		if err != nil {
			os.Remove(path)
			return err
		}
		if err := failpoint.Eval(failpoint.TieredSegmentPublish); err != nil {
			seg.close()
			return fmt.Errorf("tiered: publishing segment %016x: %w", seq, err)
		}
		segs = []*Segment{seg}
		catSegs = []catSeg{{seq: seq, entries: uint64(len(batch))}}
	}
	cat := catalog{geo: s.geo, nextSeq: seq + 1, segs: catSegs}
	if err := s.publishCatalog(cat); err != nil {
		for _, seg := range segs {
			seg.close()
		}
		return err
	}
	s.nextSeq = seq + 1
	s.tombs = make(map[uint64]struct{})
	owner := make(map[uint64]int32, len(batch))
	for i := range batch {
		owner[batch[i].ID] = 0
	}
	s.view.Store(&View{segs: segs, owner: owner})
	for _, old := range cur.segs {
		s.retired = append(s.retired, old)
		os.Remove(old.path)
	}
	s.compactions.Add(1)
	return nil
}

// DeadFraction is the share of on-disk records that score nothing —
// tombstoned or superseded by a newer segment. The engine's compactor uses
// it as the rewrite trigger.
func (s *Store) DeadFraction() float64 {
	v := s.view.Load()
	var disk int
	for _, seg := range v.segs {
		disk += seg.Entries()
	}
	if disk == 0 {
		return 0
	}
	return 1 - float64(len(v.owner))/float64(disk)
}

// NoteSpill folds one query's cold-scan accounting into the store counters:
// buckets probed, postings records scanned, bytes touched.
func (s *Store) NoteSpill(probes, postings, bytes int64) {
	s.spillProbes.Add(probes)
	s.postings.Add(postings)
	s.bytesRead.Add(bytes)
}

// Stats is a point-in-time summary of the cold tier, surfaced by
// /v1/stats as the tiered_* block.
type Stats struct {
	Entries         int   `json:"entries"`
	Segments        int   `json:"segments"`
	Tombstones      int   `json:"tombstones"`
	DiskBytes       int64 `json:"disk_bytes"`
	Migrations      int64 `json:"migrations"`
	Compactions     int64 `json:"compactions"`
	SpillProbes     int64 `json:"spill_probes"`
	PostingsScanned int64 `json:"postings_scanned"`
	BytesScanned    int64 `json:"bytes_scanned"`
}

// Stats returns the current counters.
func (s *Store) Stats() Stats {
	v := s.view.Load()
	s.mu.Lock()
	tombs := len(s.tombs)
	s.mu.Unlock()
	st := Stats{
		Entries:         v.Len(),
		Segments:        len(v.Segments()),
		Tombstones:      tombs,
		Migrations:      s.migrations.Load(),
		Compactions:     s.compactions.Load(),
		SpillProbes:     s.spillProbes.Load(),
		PostingsScanned: s.postings.Load(),
		BytesScanned:    s.bytesRead.Load(),
	}
	for _, seg := range v.Segments() {
		st.DiskBytes += seg.fileBytes
	}
	return st
}

// Close unmaps every live and retired segment. The caller must guarantee no
// in-flight readers still hold a View — in the engine this is the shutdown
// path, after the serving layer has drained.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, seg := range s.view.Load().Segments() {
		if err := seg.close(); err != nil && first == nil {
			first = err
		}
	}
	for _, seg := range s.retired {
		if err := seg.close(); err != nil && first == nil {
			first = err
		}
	}
	s.retired = nil
	s.view.Store(&View{owner: map[uint64]int32{}})
	return first
}
