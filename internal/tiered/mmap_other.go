//go:build !unix

package tiered

import (
	"io"
	"os"
	"unsafe"
)

// Fallback for hosts without mmap: read the whole file into a buffer backed
// by a []uint64 allocation, so the postings region keeps the 8-byte
// alignment the zero-copy word view relies on. Capacity is then bounded by
// RAM again, but the format, CRCs, and query path are identical.
type mapping struct{ data []byte }

func mapFile(f *os.File, size int64) (*mapping, []byte, error) {
	if size == 0 {
		return &mapping{}, nil, nil
	}
	backing := make([]uint64, (size+7)/8)
	buf := unsafe.Slice((*byte)(unsafe.Pointer(&backing[0])), size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), buf); err != nil {
		return nil, nil, err
	}
	return &mapping{data: buf}, buf, nil
}

func (m *mapping) close() error {
	if m != nil {
		m.data = nil
	}
	return nil
}
