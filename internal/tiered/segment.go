package tiered

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"unsafe"

	"github.com/fastrepro/fast/internal/bloom"
	"github.com/fastrepro/fast/internal/failpoint"
	"github.com/fastrepro/fast/internal/store"
)

// Segment file format ("FASTSEG1"), all integers little-endian:
//
//	header   64 B   magic[8] version:u32 m:u32 k:u32 wordsPerEntry:u32
//	                bands:u32 bucketCount:u32 entryCount:u64 seedFP:u64
//	                records:u64 headerCRC:u32(bytes 0..56) pad:u32
//	dir      bucketCount × 32 B   band:u32 pad:u32 key:u64 start:u64 count:u64
//	                sorted by (band, key); start/count are record ordinals
//	postings records × stride B   id:u64 words[wordsPerEntry]:u64
//	trailer  4 B    CRC-32C over dir+postings
//
// The postings region is the IVF layout: each directory entry is one LSH
// band bucket, its postings are the packed summaries of every entry hashing
// there. Records are duplicated once per band — the honest inverted-file
// trade: ~bands× the disk of a row store, bought back as one sequential
// scan per probed bucket with zero deserialization, because the word layout
// on disk is exactly the []uint64 layout bloom.AndOrCount consumes. The
// header is 64 B and directory entries 32 B, so the postings region — and
// every 8·(1+words)-stride record in it — stays 8-byte aligned for the
// zero-copy word view.
const (
	segMagic     = "FASTSEG1"
	segVersion   = 1
	segHeaderLen = 64
	segDirEntLen = 32
	segSuffix    = ".fastseg"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// geometry pins the filter and hash-family parameters a segment was written
// under; a segment can only ever be probed under the identical geometry
// (the byte-identity argument needs the same words and the same band keys
// on both tiers).
type geometry struct {
	m      uint32
	k      uint32
	bands  uint32
	seedFP uint64
}

func (g geometry) words() int { return bloom.PackedWords(g.m) }

// Entry is one summary handed to the cold tier: the packed filter words and
// the LSH bucket key for every band, computed by the engine's own index so
// cold probes land in exactly the buckets hot probes would.
type Entry struct {
	ID    uint64
	Words []uint64 // packed summary, bloom.PackedWords(m) words
	Keys  []uint64 // bucket key per band, band order
}

func segPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%016x%s", seq, segSuffix))
}

// writeSegment publishes batch as an immutable segment file at path via the
// crash-safe temp→fsync→rename→dirsync sequence. The tiered/segment-write
// failpoint fires at the top of the payload write and wraps the writer, so
// a PartialWrite policy produces a torn segment the CRCs reject at open.
func writeSegment(path string, geo geometry, batch []Entry) (int64, error) {
	type bucketRef struct {
		band uint32
		key  uint64
	}
	buckets := make(map[bucketRef][]int)
	for i := range batch {
		for b, key := range batch[i].Keys {
			br := bucketRef{uint32(b), key}
			buckets[br] = append(buckets[br], i)
		}
	}
	order := make([]bucketRef, 0, len(buckets))
	for br := range buckets {
		order = append(order, br)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].band != order[j].band {
			return order[i].band < order[j].band
		}
		return order[i].key < order[j].key
	})
	words := geo.words()
	stride := 8 * (1 + words)
	records := 0
	for _, br := range order {
		records += len(buckets[br])
	}

	return store.PublishFile(path, func(w io.Writer) (int64, error) {
		if err := failpoint.Eval(failpoint.TieredSegmentWrite); err != nil {
			return 0, err
		}
		bw := bufio.NewWriterSize(failpoint.Wrap(failpoint.TieredSegmentWrite, w), 1<<16)
		le := binary.LittleEndian

		var hdr [segHeaderLen]byte
		copy(hdr[:8], segMagic)
		le.PutUint32(hdr[8:], segVersion)
		le.PutUint32(hdr[12:], geo.m)
		le.PutUint32(hdr[16:], geo.k)
		le.PutUint32(hdr[20:], uint32(words))
		le.PutUint32(hdr[24:], geo.bands)
		le.PutUint32(hdr[28:], uint32(len(order)))
		le.PutUint64(hdr[32:], uint64(len(batch)))
		le.PutUint64(hdr[40:], geo.seedFP)
		le.PutUint64(hdr[48:], uint64(records))
		le.PutUint32(hdr[56:], crc32.Checksum(hdr[:56], castagnoli))
		if _, err := bw.Write(hdr[:]); err != nil {
			return 0, err
		}

		crc := uint32(0)
		emit := func(b []byte) error {
			crc = crc32.Update(crc, castagnoli, b)
			_, err := bw.Write(b)
			return err
		}

		var dent [segDirEntLen]byte
		start := uint64(0)
		for _, br := range order {
			n := uint64(len(buckets[br]))
			le.PutUint32(dent[0:], br.band)
			le.PutUint32(dent[4:], 0)
			le.PutUint64(dent[8:], br.key)
			le.PutUint64(dent[16:], start)
			le.PutUint64(dent[24:], n)
			if err := emit(dent[:]); err != nil {
				return 0, err
			}
			start += n
		}

		rec := make([]byte, stride)
		for _, br := range order {
			for _, i := range buckets[br] {
				e := &batch[i]
				le.PutUint64(rec[0:], e.ID)
				for wi, wv := range e.Words {
					le.PutUint64(rec[8+8*wi:], wv)
				}
				if err := emit(rec); err != nil {
					return 0, err
				}
			}
		}

		le.PutUint32(dent[:4], crc)
		if _, err := bw.Write(dent[:4]); err != nil {
			return 0, err
		}
		if err := bw.Flush(); err != nil {
			return 0, err
		}
		return int64(segHeaderLen + segDirEntLen*len(order) + stride*records + 4), nil
	})
}

// Segment is one immutable on-disk postings file, opened read-only and
// mmap'd. All fields are set at open and never mutated, so a Segment is
// safe for concurrent lock-free readers.
type Segment struct {
	path      string
	seq       uint64
	geo       geometry
	words     int
	stride    int
	mm        *mapping
	data      []byte
	dir       []dirEnt
	postOff   int
	records   int
	byID      map[uint64]int32 // id → first record ordinal
	fileBytes int64
}

type dirEnt struct {
	band  uint32
	start int32
	count int32
	key   uint64
}

// openSegment maps the file and validates everything — magic, version,
// header CRC, geometry, declared size, body CRC, directory order and
// ranges — before any reader can touch it, so a torn or corrupt segment is
// rejected at open rather than mis-scored at query time.
func openSegment(path string, seq uint64, geo geometry) (*Segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < segHeaderLen+4 {
		return nil, fmt.Errorf("tiered: segment %s: truncated (%d bytes)", filepath.Base(path), size)
	}
	mm, data, err := mapFile(f, size)
	if err != nil {
		return nil, fmt.Errorf("tiered: mapping segment %s: %w", filepath.Base(path), err)
	}
	s := &Segment{path: path, seq: seq, geo: geo, mm: mm, data: data, fileBytes: size}
	if err := s.parse(); err != nil {
		mm.close()
		return nil, fmt.Errorf("tiered: segment %s: %w", filepath.Base(path), err)
	}
	return s, nil
}

func (s *Segment) parse() error {
	le := binary.LittleEndian
	h := s.data[:segHeaderLen]
	if string(h[:8]) != segMagic {
		return fmt.Errorf("bad magic %q", h[:8])
	}
	if v := le.Uint32(h[8:]); v != segVersion {
		return fmt.Errorf("unsupported version %d", v)
	}
	if got, want := crc32.Checksum(h[:56], castagnoli), le.Uint32(h[56:]); got != want {
		return fmt.Errorf("header CRC mismatch")
	}
	got := geometry{m: le.Uint32(h[12:]), k: le.Uint32(h[16:]), bands: le.Uint32(h[24:]), seedFP: le.Uint64(h[40:])}
	if got != s.geo {
		return fmt.Errorf("geometry mismatch: segment written under m=%d k=%d bands=%d seed %#x, index is m=%d k=%d bands=%d seed %#x",
			got.m, got.k, got.bands, got.seedFP, s.geo.m, s.geo.k, s.geo.bands, s.geo.seedFP)
	}
	s.words = int(le.Uint32(h[20:]))
	if s.words != s.geo.words() {
		return fmt.Errorf("word count %d does not match m=%d", s.words, s.geo.m)
	}
	s.stride = 8 * (1 + s.words)
	bucketCount := int(le.Uint32(h[28:]))
	entries := le.Uint64(h[32:])
	records := le.Uint64(h[48:])
	if records > 1<<31-1 {
		return fmt.Errorf("record count %d out of range", records)
	}
	want := int64(segHeaderLen) + int64(segDirEntLen)*int64(bucketCount) + int64(s.stride)*int64(records) + 4
	if int64(len(s.data)) != want {
		return fmt.Errorf("size %d does not match header (want %d)", len(s.data), want)
	}
	body := s.data[segHeaderLen : len(s.data)-4]
	if got, want := crc32.Checksum(body, castagnoli), le.Uint32(s.data[len(s.data)-4:]); got != want {
		return fmt.Errorf("body CRC mismatch")
	}

	s.postOff = segHeaderLen + segDirEntLen*bucketCount
	s.records = int(records)
	s.dir = make([]dirEnt, bucketCount)
	off := segHeaderLen
	var prev dirEnt
	for i := range s.dir {
		start, count := le.Uint64(s.data[off+16:]), le.Uint64(s.data[off+24:])
		if start+count > records {
			return fmt.Errorf("directory entry %d out of range", i)
		}
		d := dirEnt{
			band:  le.Uint32(s.data[off:]),
			key:   le.Uint64(s.data[off+8:]),
			start: int32(start),
			count: int32(count),
		}
		if d.band >= s.geo.bands {
			return fmt.Errorf("directory entry %d names band %d of %d", i, d.band, s.geo.bands)
		}
		if i > 0 && (d.band < prev.band || (d.band == prev.band && d.key <= prev.key)) {
			return fmt.Errorf("directory not sorted at entry %d", i)
		}
		s.dir[i] = d
		prev = d
		off += segDirEntLen
	}

	s.byID = make(map[uint64]int32, entries)
	for r := 0; r < s.records; r++ {
		id := le.Uint64(s.data[s.postOff+r*s.stride:])
		if _, ok := s.byID[id]; !ok {
			s.byID[id] = int32(r)
		}
	}
	if uint64(len(s.byID)) != entries {
		return fmt.Errorf("entry count mismatch: header says %d, postings hold %d", entries, len(s.byID))
	}
	return nil
}

// Entries is the unique-id count of the segment.
func (s *Segment) Entries() int { return len(s.byID) }

// FileBytes is the on-disk segment size.
func (s *Segment) FileBytes() int64 { return s.fileBytes }

// Seq is the segment's catalog sequence number.
func (s *Segment) Seq() uint64 { return s.seq }

// Lookup returns the first record ordinal holding id.
func (s *Segment) Lookup(id uint64) (int, bool) {
	rec, ok := s.byID[id]
	return int(rec), ok
}

// Bucket returns the postings list of (band, key), empty if the segment has
// no such bucket. Binary search over the (band, key)-sorted directory.
func (s *Segment) Bucket(band int, key uint64) Postings {
	i := sort.Search(len(s.dir), func(i int) bool {
		d := &s.dir[i]
		return d.band > uint32(band) || (d.band == uint32(band) && d.key >= key)
	})
	if i < len(s.dir) && s.dir[i].band == uint32(band) && s.dir[i].key == key {
		return Postings{seg: s, start: int(s.dir[i].start), n: int(s.dir[i].count)}
	}
	return Postings{}
}

// RecordWords returns the packed summary words of record rec — see
// Postings.Words for the scratch contract.
func (s *Segment) RecordWords(rec int, scratch []uint64) []uint64 {
	return s.wordsAt(s.postOff+rec*s.stride+8, scratch)
}

func (s *Segment) close() error { return s.mm.close() }

// hostLittleEndian gates the zero-copy word view: on little-endian hosts
// the on-disk word layout is the in-memory one.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// wordsAt returns the record's words as a []uint64. On little-endian hosts
// this reinterprets the mapped bytes in place — the mmap base is page-
// aligned (the fallback buffer is []uint64-backed) and off is always a
// multiple of 8, so the view is aligned; scratch is untouched. Elsewhere it
// decodes into scratch, which must have capacity for the segment's word
// count.
func (s *Segment) wordsAt(off int, scratch []uint64) []uint64 {
	b := s.data[off : off+8*s.words]
	if hostLittleEndian {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), s.words)
	}
	scratch = scratch[:s.words]
	for i := range scratch {
		scratch[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return scratch
}

// Postings is one bucket's postings list: a contiguous run of fixed-stride
// records scanned sequentially. The zero value is an empty list.
type Postings struct {
	seg   *Segment
	start int
	n     int
}

// Len is the record count of the list.
func (p Postings) Len() int { return p.n }

// ID returns the photo id of record i.
func (p Postings) ID(i int) uint64 {
	return binary.LittleEndian.Uint64(p.seg.data[p.seg.postOff+(p.start+i)*p.seg.stride:])
}

// Words returns the packed summary words of record i, zero-copy where the
// host allows (see wordsAt).
func (p Postings) Words(i int, scratch []uint64) []uint64 {
	return p.seg.wordsAt(p.seg.postOff+(p.start+i)*p.seg.stride+8, scratch)
}

// Bytes is the on-disk size of the list — what one sequential scan of the
// bucket reads.
func (p Postings) Bytes() int64 {
	if p.seg == nil {
		return 0
	}
	return int64(p.n) * int64(p.seg.stride)
}
