package tiered

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Catalog format ("FASTTCT1"), all integers little-endian:
//
//	magic[8] version:u32 m:u32 k:u32 bands:u32 seedFP:u64 nextSeq:u64
//	segCount:u32 tombCount:u32
//	segCount × (seq:u64 entries:u64)
//	tombCount × id:u64          (sorted ascending)
//	crc:u32                     (CRC-32C over everything before it)
//
// The catalog is the cold tier's single point of truth: the ordered list of
// live segments (later segments override earlier ones for duplicated ids)
// and the tombstone set of cold ids deleted since their segment was
// written. It is tiny and rewritten whole through store.Generations, so
// every catalog mutation inherits the snapshot machinery's crash-safety and
// generation fallback.
const (
	catMagic   = "FASTTCT1"
	catVersion = 1
)

type catSeg struct {
	seq     uint64
	entries uint64
}

type catalog struct {
	geo     geometry
	nextSeq uint64
	segs    []catSeg
	tombs   []uint64
}

func (c *catalog) encode() []byte {
	buf := make([]byte, 0, 8+4+12+8+8+8+16*len(c.segs)+8*len(c.tombs)+4)
	var tmp [8]byte
	le := binary.LittleEndian
	u32 := func(v uint32) {
		le.PutUint32(tmp[:4], v)
		buf = append(buf, tmp[:4]...)
	}
	u64 := func(v uint64) {
		le.PutUint64(tmp[:8], v)
		buf = append(buf, tmp[:8]...)
	}
	buf = append(buf, catMagic...)
	u32(catVersion)
	u32(c.geo.m)
	u32(c.geo.k)
	u32(c.geo.bands)
	u64(c.geo.seedFP)
	u64(c.nextSeq)
	u32(uint32(len(c.segs)))
	u32(uint32(len(c.tombs)))
	for _, s := range c.segs {
		u64(s.seq)
		u64(s.entries)
	}
	for _, id := range c.tombs {
		u64(id)
	}
	u32(crc32.Checksum(buf, castagnoli))
	return buf
}

func decodeCatalog(b []byte) (catalog, error) {
	const fixed = 8 + 4 + 12 + 8 + 8 + 8 // through tombCount
	var c catalog
	if len(b) < fixed+4 {
		return c, fmt.Errorf("tiered: catalog truncated (%d bytes)", len(b))
	}
	le := binary.LittleEndian
	if got, want := crc32.Checksum(b[:len(b)-4], castagnoli), le.Uint32(b[len(b)-4:]); got != want {
		return c, fmt.Errorf("tiered: catalog CRC mismatch")
	}
	if string(b[:8]) != catMagic {
		return c, fmt.Errorf("tiered: catalog bad magic %q", b[:8])
	}
	if v := le.Uint32(b[8:]); v != catVersion {
		return c, fmt.Errorf("tiered: catalog unsupported version %d", v)
	}
	c.geo = geometry{m: le.Uint32(b[12:]), k: le.Uint32(b[16:]), bands: le.Uint32(b[20:]), seedFP: le.Uint64(b[24:])}
	c.nextSeq = le.Uint64(b[32:])
	segCount := int(le.Uint32(b[40:]))
	tombCount := int(le.Uint32(b[44:]))
	if want := fixed + 16*segCount + 8*tombCount + 4; len(b) != want {
		return c, fmt.Errorf("tiered: catalog size %d does not match header (want %d)", len(b), want)
	}
	off := fixed
	c.segs = make([]catSeg, segCount)
	for i := range c.segs {
		c.segs[i] = catSeg{seq: le.Uint64(b[off:]), entries: le.Uint64(b[off+8:])}
		off += 16
	}
	c.tombs = make([]uint64, tombCount)
	for i := range c.tombs {
		c.tombs[i] = le.Uint64(b[off:])
		off += 8
	}
	return c, nil
}
