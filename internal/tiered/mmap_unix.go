//go:build unix

package tiered

import (
	"os"
	"syscall"
)

// mapping is a read-only mmap of a segment file. A mapping outlives the
// file name: segments retired by compaction keep their mappings alive until
// Store.Close so lock-free readers still holding an old view never fault —
// POSIX keeps a mapping of an unlinked file valid until munmap, so removing
// the retired file reclaims disk while the pages stay readable.
type mapping struct{ data []byte }

func mapFile(f *os.File, size int64) (*mapping, []byte, error) {
	if size == 0 {
		return &mapping{}, nil, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return &mapping{data: b}, b, nil
}

func (m *mapping) close() error {
	if m == nil || m.data == nil {
		return nil
	}
	b := m.data
	m.data = nil
	return syscall.Munmap(b)
}
