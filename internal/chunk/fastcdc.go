package chunk

// This file implements FastCDC content-defined chunking (Xia et al.,
// USENIX ATC'16) — the splitter behind the content-addressed snapshot
// store. It coexists with the simpler Rabin-style CDC above, which remains
// the Figure 8 transmission baseline.
//
// A rolling gear hash walks the byte stream and declares a chunk boundary
// wherever the hash's top bits are all zero under a mask. Because the
// boundary decision depends only on a small window of content (the last ~64
// bytes feeding the gear hash), inserting or deleting bytes shifts at most
// the chunks around the edit: the cut points downstream re-synchronize on
// the same content, so unchanged regions of consecutive snapshots produce
// byte-identical chunks and deduplicate perfectly.
//
// Two FastCDC refinements over plain gear CDC are used:
//
//   - cut-point skipping: the first MinSize bytes of every chunk are not
//     hashed at all, which both enforces the minimum and skips ~MinSize of
//     hashing work per chunk;
//   - normalized chunking: before the AvgSize point a *harder* mask
//     (Normalization extra bits) suppresses early cuts, after it an *easier*
//     mask encourages one — pulling the size distribution toward AvgSize and
//     away from the exponential tail plain CDC produces.

import (
	"fmt"
	"math/bits"
)

// Default chunk geometry: 2 KB / 64 KB / 1 MB with normalization level 2.
// These are the production snapshot-store settings; benchmarks at laptop
// corpus scale use a proportionally smaller geometry (see the snapshot
// experiment) so the granularity-to-payload ratio stays representative.
const (
	DefaultMinSize       = 2 << 10
	DefaultAvgSize       = 64 << 10
	DefaultMaxSize       = 1 << 20
	DefaultNormalization = 2
)

// Config is the chunking geometry. The zero value selects the defaults
// above via WithDefaults.
type Config struct {
	// MinSize is the smallest chunk ever emitted (except the final chunk of
	// a stream, which may be shorter). Bytes below MinSize are not hashed.
	MinSize int
	// AvgSize is the target expected chunk size; must be a power of two.
	AvgSize int
	// MaxSize forces a cut regardless of content.
	MaxSize int
	// Normalization is how many mask bits to add before the AvgSize point
	// and remove after it (FastCDC's "normalized chunking" level).
	Normalization int
}

// WithDefaults fills zero fields with the package defaults.
func (c Config) WithDefaults() Config {
	if c.MinSize == 0 {
		c.MinSize = DefaultMinSize
	}
	if c.AvgSize == 0 {
		c.AvgSize = DefaultAvgSize
	}
	if c.MaxSize == 0 {
		c.MaxSize = DefaultMaxSize
	}
	if c.Normalization == 0 {
		c.Normalization = DefaultNormalization
	}
	return c
}

// validate rejects geometries the cut loop cannot honor.
func (c Config) validate() error {
	if c.MinSize < 64 {
		return fmt.Errorf("chunk: MinSize %d below minimum 64", c.MinSize)
	}
	if c.MaxSize > 1<<30 {
		return fmt.Errorf("chunk: MaxSize %d above maximum %d", c.MaxSize, 1<<30)
	}
	if c.AvgSize&(c.AvgSize-1) != 0 {
		return fmt.Errorf("chunk: AvgSize %d is not a power of two", c.AvgSize)
	}
	if !(c.MinSize <= c.AvgSize && c.AvgSize <= c.MaxSize) {
		return fmt.Errorf("chunk: need MinSize <= AvgSize <= MaxSize, got %d/%d/%d",
			c.MinSize, c.AvgSize, c.MaxSize)
	}
	if c.Normalization < 0 || c.Normalization > 4 {
		return fmt.Errorf("chunk: Normalization %d outside [0,4]", c.Normalization)
	}
	b := bits.TrailingZeros(uint(c.AvgSize))
	if b-c.Normalization < 1 || b+c.Normalization > 48 {
		return fmt.Errorf("chunk: AvgSize %d with normalization %d leaves no usable mask",
			c.AvgSize, c.Normalization)
	}
	return nil
}

// gearTable is the deterministic per-byte random table the rolling hash
// mixes in. It is generated once from a fixed seed with splitmix64, so the
// cut points — and therefore chunk identities and cross-generation dedup —
// are stable across processes and versions. Changing the seed is safe for
// correctness (manifests record explicit chunk lists) but would break
// dedup between snapshots written before and after the change.
var gearTable = func() [256]uint64 {
	var t [256]uint64
	s := uint64(0xfa57c0dec4a11d01) // fixed seed; see comment above
	for i := range t {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		t[i] = z ^ (z >> 31)
	}
	return t
}()

// Writer is a push-mode chunker: bytes stream in through Write, and every
// completed chunk is handed to the emit callback in order. The slice passed
// to emit aliases the Writer's internal buffer and is only valid for the
// duration of the call — hash or copy it before returning. Call Flush after
// the last Write to emit the trailing chunk(s).
type Writer struct {
	cfg          Config
	maskS, maskL uint64 // harder mask before AvgSize, easier after
	buf          []byte
	emit         func(chunk []byte) error
	flushed      bool
}

// NewWriter validates the geometry (after applying defaults) and returns a
// push-mode chunker feeding emit.
func NewWriter(cfg Config, emit func(chunk []byte) error) (*Writer, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if emit == nil {
		return nil, fmt.Errorf("chunk: NewWriter needs an emit callback")
	}
	b := bits.TrailingZeros(uint(cfg.AvgSize))
	sBits := uint(b + cfg.Normalization)
	lBits := uint(b - cfg.Normalization)
	return &Writer{
		cfg: cfg,
		// Top-of-word masks: with the gear hash's left shift, the high bits
		// carry the most mixed entropy.
		maskS: ^uint64(0) << (64 - sBits),
		maskL: ^uint64(0) << (64 - lBits),
		emit:  emit,
	}, nil
}

// Write buffers p and emits every chunk whose boundary is already
// determined by the bytes seen so far. It always reports len(p) consumed
// unless emit fails.
func (w *Writer) Write(p []byte) (int, error) {
	if w.flushed {
		return 0, fmt.Errorf("chunk: Write after Flush")
	}
	w.buf = append(w.buf, p...)
	for {
		cut, ok := w.cut(w.buf, false)
		if !ok {
			return len(p), nil
		}
		if err := w.emit(w.buf[:cut]); err != nil {
			return 0, err
		}
		w.buf = w.buf[:copy(w.buf, w.buf[cut:])]
	}
}

// Flush emits the buffered tail as one or more final chunks. The stream's
// last chunk may be shorter than MinSize. The Writer cannot be reused.
func (w *Writer) Flush() error {
	w.flushed = true
	for len(w.buf) > 0 {
		cut, _ := w.cut(w.buf, true)
		if err := w.emit(w.buf[:cut]); err != nil {
			return err
		}
		w.buf = w.buf[:copy(w.buf, w.buf[cut:])]
	}
	w.buf = nil
	return nil
}

// cut finds the next boundary in data. It returns (n, true) when the first
// chunk is data[:n], or (0, false) when more bytes are needed to decide.
// With final set, end-of-data is itself a boundary.
func (w *Writer) cut(data []byte, final bool) (int, bool) {
	if len(data) == 0 {
		return 0, false
	}
	if len(data) <= w.cfg.MinSize {
		if final {
			return len(data), true
		}
		return 0, false
	}
	n, forced := len(data), false
	if n >= w.cfg.MaxSize {
		n, forced = w.cfg.MaxSize, true
	}
	mid := w.cfg.AvgSize
	if mid > n {
		mid = n
	}
	var h uint64
	i := w.cfg.MinSize // cut-point skipping: bytes [0,MinSize) are never hashed
	for ; i < mid; i++ {
		h = (h << 1) + gearTable[data[i]]
		if h&w.maskS == 0 {
			return i + 1, true
		}
	}
	for ; i < n; i++ {
		h = (h << 1) + gearTable[data[i]]
		if h&w.maskL == 0 {
			return i + 1, true
		}
	}
	if forced || final {
		return n, true
	}
	return 0, false
}

// Split cuts data in one call and returns the boundary offsets (exclusive
// chunk ends; the last offset equals len(data) unless data is empty). It is
// the batch convenience over Writer, used by tests and benchmarks.
func Split(cfg Config, data []byte) ([]int, error) {
	var (
		cuts []int
		off  int
	)
	w, err := NewWriter(cfg, func(c []byte) error {
		off += len(c)
		cuts = append(cuts, off)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(data); err != nil {
		return nil, err
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return cuts, nil
}
