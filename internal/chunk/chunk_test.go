package chunk

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func reassemble(chunks []Chunk) []byte {
	var out []byte
	for _, c := range chunks {
		out = append(out, c.Data...)
	}
	return out
}

func TestFixedChunking(t *testing.T) {
	data := []byte("abcdefghij")
	chunks, err := Fixed(data, 4)
	if err != nil {
		t.Fatalf("Fixed: %v", err)
	}
	if len(chunks) != 3 {
		t.Fatalf("got %d chunks, want 3", len(chunks))
	}
	if !bytes.Equal(reassemble(chunks), data) {
		t.Error("fixed chunks do not reassemble to input")
	}
	if chunks[2].Offset != 8 || len(chunks[2].Data) != 2 {
		t.Errorf("last chunk = %+v", chunks[2])
	}
	if _, err := Fixed(data, 0); err == nil {
		t.Error("size 0 should fail")
	}
}

func TestFixedEmptyInput(t *testing.T) {
	chunks, err := Fixed(nil, 8)
	if err != nil || len(chunks) != 0 {
		t.Errorf("empty input: %v, %d chunks", err, len(chunks))
	}
}

func TestCDCReassembles(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := randBytes(rng, 200_000)
	chunks, err := CDC(data, CDCConfig{})
	if err != nil {
		t.Fatalf("CDC: %v", err)
	}
	if !bytes.Equal(reassemble(chunks), data) {
		t.Fatal("CDC chunks do not reassemble to input")
	}
	cfg, _ := CDCConfig{}.withDefaults()
	for i, c := range chunks[:len(chunks)-1] {
		if len(c.Data) < cfg.Min || len(c.Data) > cfg.Max {
			t.Fatalf("chunk %d size %d outside [%d,%d]", i, len(c.Data), cfg.Min, cfg.Max)
		}
	}
	// Average size should be in the right ballpark (loose factor of 4).
	avg := len(data) / len(chunks)
	if avg < cfg.Avg/4 || avg > cfg.Avg*4 {
		t.Errorf("average chunk size %d far from target %d", avg, cfg.Avg)
	}
}

func TestCDCValidation(t *testing.T) {
	if _, err := CDC(nil, CDCConfig{Min: 10, Avg: 5, Max: 20}); err == nil {
		t.Error("avg < min should fail")
	}
	if _, err := CDC(nil, CDCConfig{Min: 10, Avg: 24, Max: 100}); err == nil {
		t.Error("non-power-of-two avg should fail")
	}
	if _, err := CDC(nil, CDCConfig{Min: 10, Avg: 16, Max: 12}); err == nil {
		t.Error("max < avg should fail")
	}
}

func TestCDCShiftInvariance(t *testing.T) {
	// The dedup-critical property: content shared between two streams at
	// different offsets still yields mostly identical chunks.
	rng := rand.New(rand.NewSource(2))
	shared := randBytes(rng, 150_000)
	prefixA := randBytes(rng, 3_333)
	prefixB := randBytes(rng, 7_777)
	a, err := CDC(append(append([]byte{}, prefixA...), shared...), CDCConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CDC(append(append([]byte{}, prefixB...), shared...), CDCConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fpA := make(map[uint64]bool)
	for _, c := range a {
		fpA[c.FP] = true
	}
	var sharedBytes, dupBytes int64
	for _, c := range b {
		sharedBytes += int64(len(c.Data))
		if fpA[c.FP] {
			dupBytes += int64(len(c.Data))
		}
	}
	if ratio := float64(dupBytes) / float64(sharedBytes); ratio < 0.7 {
		t.Errorf("only %.0f%% of shifted shared content deduplicated", ratio*100)
	}
}

func TestIndexDedup(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := randBytes(rng, 50_000)
	chunks, err := CDC(data, CDCConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex()
	first := ix.Add(chunks)
	if first.NewBytes != first.TotalBytes || first.DupBytes != 0 {
		t.Errorf("first add should be all-new: %+v", first)
	}
	second := ix.Add(chunks)
	if second.NewBytes != 0 || second.DupBytes != second.TotalBytes {
		t.Errorf("second add should be all-duplicate: %+v", second)
	}
	if ix.Len() != first.NewChunks {
		t.Errorf("index len %d, want %d", ix.Len(), first.NewChunks)
	}
}

func TestFingerprintDeterministic(t *testing.T) {
	if Fingerprint([]byte("abc")) != Fingerprint([]byte("abc")) {
		t.Error("fingerprint not deterministic")
	}
	if Fingerprint([]byte("abc")) == Fingerprint([]byte("abd")) {
		t.Error("distinct content collided (overwhelmingly unlikely)")
	}
}

// Property: chunking always reassembles losslessly.
func TestCDCLosslessProperty(t *testing.T) {
	f := func(data []byte) bool {
		chunks, err := CDC(data, CDCConfig{Min: 8, Avg: 32, Max: 128})
		if err != nil {
			return false
		}
		return bytes.Equal(reassemble(chunks), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
