package chunk

import (
	"bytes"
	"math/rand"
	"testing"
)

// cdcBytes is deterministic pseudo-random content standing in for a
// serialized snapshot payload.
func cdcBytes(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// testCfg is a small geometry so tests exercise many chunks cheaply.
var testCfg = Config{MinSize: 256, AvgSize: 1024, MaxSize: 8192, Normalization: 2}

// split pushes data through a Writer in the given write sizes (cycled) and
// returns copies of the emitted chunks.
func split(t *testing.T, cfg Config, data []byte, writeSizes ...int) [][]byte {
	t.Helper()
	if len(writeSizes) == 0 {
		writeSizes = []int{len(data)}
	}
	var chunks [][]byte
	w, err := NewWriter(cfg, func(c []byte) error {
		chunks = append(chunks, append([]byte(nil), c...))
		return nil
	})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	rest := data
	for i := 0; len(rest) > 0; i++ {
		n := writeSizes[i%len(writeSizes)]
		if n > len(rest) {
			n = len(rest)
		}
		if _, err := w.Write(rest[:n]); err != nil {
			t.Fatalf("Write: %v", err)
		}
		rest = rest[n:]
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return chunks
}

// Chunking must be lossless: the chunks concatenate back to the input, and
// every chunk (except possibly the last) respects the size bounds.
func TestWriterReassemblesAndBounds(t *testing.T) {
	data := cdcBytes(300_000, 1)
	chunks := split(t, testCfg, data)
	var got []byte
	for i, c := range chunks {
		got = append(got, c...)
		last := i == len(chunks)-1
		if len(c) > testCfg.MaxSize {
			t.Errorf("chunk %d: size %d exceeds max %d", i, len(c), testCfg.MaxSize)
		}
		if !last && len(c) < testCfg.MinSize {
			t.Errorf("chunk %d: size %d below min %d (not final)", i, len(c), testCfg.MinSize)
		}
	}
	if !bytes.Equal(got, data) {
		t.Fatal("reassembled bytes differ from input")
	}
	if len(chunks) < 100 {
		t.Fatalf("expected many chunks at avg %d over %d bytes, got %d",
			testCfg.AvgSize, len(data), len(chunks))
	}
}

// Cut points are a pure function of content: the same stream must produce
// the same chunks regardless of how the bytes are batched into Write calls.
func TestWriterDeterministicAcrossWriteSizes(t *testing.T) {
	data := cdcBytes(150_000, 2)
	ref := split(t, testCfg, data)
	for _, sizes := range [][]int{{1}, {7, 13}, {4096}, {100_000}, {1, 8192, 3}} {
		got := split(t, testCfg, data, sizes...)
		if len(got) != len(ref) {
			t.Fatalf("write sizes %v: %d chunks, want %d", sizes, len(got), len(ref))
		}
		for i := range got {
			if !bytes.Equal(got[i], ref[i]) {
				t.Fatalf("write sizes %v: chunk %d differs", sizes, i)
			}
		}
	}
}

// The dedup property itself: editing a region in the middle of the stream
// must leave the chunk sequence outside a small window around the edit
// unchanged — cut points re-synchronize on content. This is what makes
// snapshot bytes-written proportional to churn.
func TestEditLocality(t *testing.T) {
	data := cdcBytes(400_000, 3)
	before := split(t, testCfg, data)

	// Insert 1000 new bytes at ~1/3 of the stream: everything after the
	// edit shifts by 1000 bytes, which defeats fixed-size blocking but not
	// CDC.
	edited := append([]byte(nil), data[:130_000]...)
	edited = append(edited, cdcBytes(1000, 4)...)
	edited = append(edited, data[130_000:]...)
	after := split(t, testCfg, edited)

	ident := make(map[string]bool, len(before))
	for _, c := range before {
		ident[string(c)] = true
	}
	var reusedBytes, totalBytes int
	for _, c := range after {
		totalBytes += len(c)
		if ident[string(c)] {
			reusedBytes += len(c)
		}
	}
	if frac := float64(reusedBytes) / float64(totalBytes); frac < 0.90 {
		t.Fatalf("only %.0f%% of bytes reused after a 1000-byte insert; CDC should localize the edit", 100*frac)
	}
}

// Normalization must pull sizes toward the average: the bulk of chunks in
// a long random stream land within [avg/4, 4*avg].
func TestNormalizedSizeDistribution(t *testing.T) {
	data := cdcBytes(1_000_000, 5)
	chunks := split(t, testCfg, data)
	inBand := 0
	for _, c := range chunks {
		if len(c) >= testCfg.AvgSize/4 && len(c) <= 4*testCfg.AvgSize {
			inBand++
		}
	}
	if frac := float64(inBand) / float64(len(chunks)); frac < 0.8 {
		t.Fatalf("only %.0f%% of %d chunks within [avg/4, 4avg]", 100*frac, len(chunks))
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{MinSize: 16, AvgSize: 1024, MaxSize: 8192, Normalization: 2},  // min too small
		{MinSize: 256, AvgSize: 1000, MaxSize: 8192, Normalization: 2}, // avg not power of two
		{MinSize: 256, AvgSize: 128, MaxSize: 8192, Normalization: 2},  // avg < min
		{MinSize: 256, AvgSize: 1024, MaxSize: 512, Normalization: 2},  // max < avg
		{MinSize: 256, AvgSize: 1024, MaxSize: 8192, Normalization: 9}, // normalization out of range
	}
	for _, cfg := range bad {
		if _, err := NewWriter(cfg, func([]byte) error { return nil }); err == nil {
			t.Errorf("config %+v: want validation error", cfg)
		}
	}
	if _, err := NewWriter(Config{}, nil); err == nil {
		t.Error("nil emit: want error")
	}
	// Zero config adopts the documented defaults.
	w, err := NewWriter(Config{}, func([]byte) error { return nil })
	if err != nil {
		t.Fatalf("zero config: %v", err)
	}
	if w.cfg.MinSize != DefaultMinSize || w.cfg.AvgSize != DefaultAvgSize ||
		w.cfg.MaxSize != DefaultMaxSize || w.cfg.Normalization != DefaultNormalization {
		t.Errorf("defaults not applied: %+v", w.cfg)
	}
}

func TestSplitOffsets(t *testing.T) {
	data := cdcBytes(50_000, 6)
	cuts, err := Split(testCfg, data)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if len(cuts) == 0 || cuts[len(cuts)-1] != len(data) {
		t.Fatalf("cuts %v do not cover %d bytes", cuts, len(data))
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			t.Fatalf("cuts not strictly increasing: %v", cuts)
		}
	}
	// Empty input chunks to nothing.
	empty, err := Split(testCfg, nil)
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty input: cuts=%v err=%v", empty, err)
	}
}

func TestWriteAfterFlushRejected(t *testing.T) {
	w, err := NewWriter(testCfg, func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Fatal("Write after Flush: want error")
	}
}

func BenchmarkSplit(b *testing.B) {
	data := cdcBytes(4<<20, 7)
	cfg := Config{} // production geometry
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Split(cfg, data); err != nil {
			b.Fatal(err)
		}
	}
}
