// Package chunk implements fixed-size and content-defined chunking with
// rolling-hash boundaries plus chunk fingerprinting. It is the substrate of
// the "chunk-based transmission scheme" that Figure 8 compares FAST
// against: the baseline uploads every image as deduplicated chunks, so its
// savings come only from byte-identical regions, whereas FAST's
// near-duplicate detection skips whole similar images.
package chunk

import (
	"fmt"
)

// Chunk is one piece of a byte stream.
type Chunk struct {
	Offset int
	Data   []byte
	FP     uint64 // fingerprint (FNV-1a of the content)
}

// Fingerprint hashes content with FNV-1a 64.
func Fingerprint(p []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range p {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// Fixed splits data into fixed-size chunks (the last may be short).
// It returns an error for non-positive size.
func Fixed(data []byte, size int) ([]Chunk, error) {
	if size <= 0 {
		return nil, fmt.Errorf("chunk: size must be positive, got %d", size)
	}
	var out []Chunk
	for off := 0; off < len(data); off += size {
		end := off + size
		if end > len(data) {
			end = len(data)
		}
		c := Chunk{Offset: off, Data: data[off:end]}
		c.FP = Fingerprint(c.Data)
		out = append(out, c)
	}
	return out, nil
}

// CDCConfig configures content-defined chunking.
type CDCConfig struct {
	Min, Avg, Max int // chunk size bounds; Avg must be a power of two
	Window        int // rolling window; 0 means 48
}

func (c CDCConfig) withDefaults() (CDCConfig, error) {
	if c.Min == 0 && c.Avg == 0 && c.Max == 0 {
		c = CDCConfig{Min: 2048, Avg: 8192, Max: 65536}
	}
	if c.Window == 0 {
		c.Window = 48
	}
	if c.Min <= 0 || c.Avg < c.Min || c.Max < c.Avg {
		return c, fmt.Errorf("chunk: invalid bounds min=%d avg=%d max=%d", c.Min, c.Avg, c.Max)
	}
	if c.Avg&(c.Avg-1) != 0 {
		return c, fmt.Errorf("chunk: avg %d must be a power of two", c.Avg)
	}
	return c, nil
}

// CDC splits data at content-defined boundaries using a polynomial rolling
// hash (Rabin-style): a boundary is declared where the rolling hash's low
// bits are all zero (mask = avg-1), subject to the min/max bounds. Identical
// content regions therefore produce identical chunks regardless of their
// offset, which is the property deduplication relies on.
func CDC(data []byte, cfg CDCConfig) ([]Chunk, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	mask := uint64(cfg.Avg - 1)
	var out []Chunk
	start := 0
	const prime = 31
	// Precompute prime^(window-1) for the rolling update.
	pow := uint64(1)
	for i := 0; i < cfg.Window-1; i++ {
		pow *= prime
	}
	var h uint64
	for i := 0; i < len(data); i++ {
		// Update rolling hash over the trailing window.
		if i-start < cfg.Window {
			h = h*prime + uint64(data[i])
		} else {
			h = (h-uint64(data[i-cfg.Window])*pow)*prime + uint64(data[i])
		}
		n := i - start + 1
		if (n >= cfg.Min && h&mask == mask) || n >= cfg.Max {
			c := Chunk{Offset: start, Data: data[start : i+1]}
			c.FP = Fingerprint(c.Data)
			out = append(out, c)
			start = i + 1
			h = 0
		}
	}
	if start < len(data) {
		c := Chunk{Offset: start, Data: data[start:]}
		c.FP = Fingerprint(c.Data)
		out = append(out, c)
	}
	return out, nil
}

// Index is a fingerprint set used for chunk-level deduplication.
type Index struct {
	seen map[uint64]int // fingerprint -> chunk length
}

// NewIndex returns an empty chunk index.
func NewIndex() *Index { return &Index{seen: make(map[uint64]int)} }

// Len returns the number of distinct fingerprints.
func (ix *Index) Len() int { return len(ix.seen) }

// DedupResult summarizes a deduplicated transfer.
type DedupResult struct {
	TotalChunks int
	NewChunks   int
	TotalBytes  int64
	NewBytes    int64 // bytes that actually need transmission
	DupBytes    int64 // bytes suppressed by the index
}

// Add deduplicates the chunks against the index, inserting new fingerprints
// and returning the transfer summary.
func (ix *Index) Add(chunks []Chunk) DedupResult {
	var r DedupResult
	for _, c := range chunks {
		r.TotalChunks++
		r.TotalBytes += int64(len(c.Data))
		if _, dup := ix.seen[c.FP]; dup {
			r.DupBytes += int64(len(c.Data))
			continue
		}
		ix.seen[c.FP] = len(c.Data)
		r.NewChunks++
		r.NewBytes += int64(len(c.Data))
	}
	return r
}
