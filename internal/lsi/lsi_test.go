package lsi

import (
	"math/rand"
	"testing"
)

// topicCorpus builds documents clustered around topic centers.
func topicCorpus(rng *rand.Rand, topics, perTopic, dim int) (ids []uint64, vecs [][]float64, topicOf map[uint64]int) {
	centers := make([][]float64, topics)
	for t := range centers {
		c := make([]float64, dim)
		for i := range c {
			c[i] = rng.NormFloat64() * 5
		}
		centers[t] = c
	}
	topicOf = make(map[uint64]int)
	id := uint64(1)
	for t := 0; t < topics; t++ {
		for d := 0; d < perTopic; d++ {
			v := make([]float64, dim)
			for i := range v {
				v[i] = centers[t][i] + rng.NormFloat64()*0.4
			}
			ids = append(ids, id)
			vecs = append(vecs, v)
			topicOf[id] = t
			id++
		}
	}
	return ids, vecs, topicOf
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build([]uint64{1}, [][]float64{{1, 2}, {3, 4}}, 1); err == nil {
		t.Error("id/vector count mismatch should fail")
	}
	if _, err := Build([]uint64{1}, [][]float64{{1, 2}}, 1); err == nil {
		t.Error("single document should fail")
	}
	if _, err := Build([]uint64{1, 2}, [][]float64{{1, 2}, {3, 4}}, 5); err == nil {
		t.Error("k > dim should fail")
	}
}

func TestQueryFindsTopicMates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ids, vecs, topicOf := topicCorpus(rng, 5, 30, 16)
	ix, err := Build(ids, vecs, 5)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if ix.Len() != 150 || ix.K() != 5 {
		t.Fatalf("Len/K = %d/%d", ix.Len(), ix.K())
	}
	if ex := ix.Explained(); ex < 0.8 {
		t.Errorf("concept space explains only %.2f of variance", ex)
	}
	// Querying with a document's own vector should return topic mates.
	for trial := 0; trial < 10; trial++ {
		qi := rng.Intn(len(ids))
		res, err := ix.Query(vecs[qi], 25)
		if err != nil {
			t.Fatal(err)
		}
		sameTopic := 0
		for _, r := range res {
			if topicOf[r.ID] == topicOf[ids[qi]] {
				sameTopic++
			}
		}
		if sameTopic < 20 {
			t.Errorf("trial %d: only %d/25 hits share the query topic", trial, sameTopic)
		}
		for i := 1; i < len(res); i++ {
			if res[i].Cosine > res[i-1].Cosine {
				t.Fatal("results not sorted by cosine")
			}
		}
	}
}

func TestQueryValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ids, vecs, _ := topicCorpus(rng, 2, 5, 8)
	ix, _ := Build(ids, vecs, 2)
	if _, err := ix.Query(vecs[0], 0); err == nil {
		t.Error("topK 0 should fail")
	}
	if _, err := ix.Query([]float64{1, 2}, 3); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestGroupRecoversTopics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ids, vecs, topicOf := topicCorpus(rng, 4, 25, 12)
	ix, err := Build(ids, vecs, 4)
	if err != nil {
		t.Fatal(err)
	}
	groups := ix.Group(0.8)
	// Every document appears exactly once.
	seen := map[uint64]bool{}
	total := 0
	for _, g := range groups {
		for _, id := range g {
			if seen[id] {
				t.Fatalf("document %d in two groups", id)
			}
			seen[id] = true
			total++
		}
	}
	if total != len(ids) {
		t.Fatalf("groups cover %d/%d documents", total, len(ids))
	}
	// The four largest groups should be topic-pure and large.
	if len(groups) < 4 {
		t.Fatalf("only %d groups", len(groups))
	}
	for gi, g := range groups[:4] {
		if len(g) < 15 {
			t.Errorf("group %d has only %d members", gi, len(g))
			continue
		}
		counts := map[int]int{}
		for _, id := range g {
			counts[topicOf[id]]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		if purity := float64(best) / float64(len(g)); purity < 0.9 {
			t.Errorf("group %d purity %.2f", gi, purity)
		}
	}
	// Groups sorted largest first.
	for i := 1; i < len(groups); i++ {
		if len(groups[i]) > len(groups[i-1]) {
			t.Fatal("groups not sorted by size")
		}
	}
}
