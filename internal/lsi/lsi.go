// Package lsi implements Latent Semantic Indexing (Deerwester et al.,
// JASIS'90) — the semantic-aggregation tool of SmartStore (Hua et al.,
// SC'09), which the paper's Table I lines up against FAST's LSH-based
// clustering. Documents (or file records) are represented as feature
// vectors; LSI projects them onto the top-k eigenvectors of the corpus
// covariance (equivalently, the dominant left singular subspace), and
// correlation queries run as cosine similarity in the concept space.
//
// The executable Table I comparison uses this package to contrast
// SmartStore-style aggregation (O(n·d·k) batch factorization, O(n) query
// scan in concept space) with FAST's O(1) LSH grouping over the same
// vectorized records.
package lsi

import (
	"errors"
	"fmt"
	"sort"

	"github.com/fastrepro/fast/internal/linalg"
)

// Index is a fitted LSI model plus the projected corpus.
type Index struct {
	pca  *linalg.PCA // covariance eigenbasis = LSI concept space
	ids  []uint64
	docs []linalg.Vector // projected documents, unit-normalized
}

// Build factorizes the corpus into a k-dimensional concept space and
// projects every document into it. It returns an error when the corpus is
// too small or k is out of range.
func Build(ids []uint64, vectors [][]float64, k int) (*Index, error) {
	if len(ids) != len(vectors) {
		return nil, fmt.Errorf("lsi: %d ids but %d vectors", len(ids), len(vectors))
	}
	if len(vectors) < 2 {
		return nil, errors.New("lsi: need at least 2 documents")
	}
	samples := make([]linalg.Vector, len(vectors))
	for i, v := range vectors {
		samples[i] = linalg.Vector(v)
	}
	pca, err := linalg.FitPCA(samples, k)
	if err != nil {
		return nil, fmt.Errorf("lsi: factorization: %w", err)
	}
	idx := &Index{pca: pca, ids: append([]uint64(nil), ids...)}
	idx.docs = make([]linalg.Vector, len(samples))
	for i, s := range samples {
		p, err := pca.Project(s)
		if err != nil {
			return nil, err
		}
		p.Normalize()
		idx.docs[i] = p
	}
	return idx, nil
}

// Len returns the number of indexed documents.
func (ix *Index) Len() int { return len(ix.ids) }

// K returns the concept-space dimensionality.
func (ix *Index) K() int { return ix.pca.OutputDim }

// Explained returns the fraction of corpus variance the concept space
// captures.
func (ix *Index) Explained() float64 { return ix.pca.TotalExplained() }

// Result is one correlation hit.
type Result struct {
	ID     uint64
	Cosine float64
}

// Query projects the vector into concept space and returns the topK most
// cosine-similar documents, best first. Cost is a full scan of the
// projected corpus — the O(n) SmartStore query model that the Table I
// experiment contrasts with FAST's O(1) bucket probe.
func (ix *Index) Query(vector []float64, topK int) ([]Result, error) {
	if topK <= 0 {
		return nil, fmt.Errorf("lsi: topK must be positive, got %d", topK)
	}
	p, err := ix.pca.Project(linalg.Vector(vector))
	if err != nil {
		return nil, err
	}
	p.Normalize()
	out := make([]Result, 0, len(ix.docs))
	for i, d := range ix.docs {
		out = append(out, Result{ID: ix.ids[i], Cosine: p.Dot(d)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cosine != out[j].Cosine {
			return out[i].Cosine > out[j].Cosine
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > topK {
		out = out[:topK]
	}
	return out, nil
}

// Group clusters the corpus greedily in concept space: documents within
// cosine >= threshold of a group's seed join that group (SmartStore's
// semantic grouping of correlated files). Groups are returned largest
// first; every document lands in exactly one group.
func (ix *Index) Group(threshold float64) [][]uint64 {
	assigned := make([]bool, len(ix.docs))
	var groups [][]uint64
	for i := range ix.docs {
		if assigned[i] {
			continue
		}
		group := []uint64{ix.ids[i]}
		assigned[i] = true
		for j := i + 1; j < len(ix.docs); j++ {
			if assigned[j] {
				continue
			}
			if ix.docs[i].Dot(ix.docs[j]) >= threshold {
				group = append(group, ix.ids[j])
				assigned[j] = true
			}
		}
		groups = append(groups, group)
	}
	sort.Slice(groups, func(a, b int) bool { return len(groups[a]) > len(groups[b]) })
	return groups
}
