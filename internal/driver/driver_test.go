package driver

import (
	"errors"
	"sync/atomic"
	"testing"

	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/simimg"
	"github.com/fastrepro/fast/internal/workload"
)

// smallSpec mirrors the workload package's test corpus.
func smallSpec() workload.Spec {
	return workload.Spec{
		Name:        "driver-test",
		Scenes:      4,
		Photos:      40,
		Subjects:    3,
		SubjectRate: 0.5,
		Resolution:  48,
		Seed:        7,
		SceneBase:   9100,
	}
}

// stubPipeline lets driver tests run without a real engine.
type stubPipeline struct {
	calls  atomic.Int64
	fail   bool
	result []core.SearchResult
}

func (s *stubPipeline) Name() string { return "stub" }
func (s *stubPipeline) Build([]*simimg.Photo) (core.BuildStats, error) {
	return core.BuildStats{}, nil
}
func (s *stubPipeline) Insert(*simimg.Photo) error { return nil }
func (s *stubPipeline) Search(core.Probe, int) ([]core.SearchResult, error) {
	s.calls.Add(1)
	if s.fail {
		return nil, errors.New("stub failure")
	}
	return s.result, nil
}
func (s *stubPipeline) IndexBytes() int64     { return 0 }
func (s *stubPipeline) SimCost() core.SimCost { return core.SimCost{} }

var _ core.Pipeline = (*stubPipeline)(nil)

func TestDriverValidation(t *testing.T) {
	d := Driver{}
	if _, err := d.Run(nil, nil, nil); err == nil {
		t.Error("nil pipeline should fail")
	}
	ds, _ := workload.Generate(smallSpec())
	if _, err := d.Run(&stubPipeline{}, ds, nil); err == nil {
		t.Error("empty query set should fail")
	}
}

func TestDriverRunsEveryQuery(t *testing.T) {
	ds, err := workload.Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	qs, err := ds.Queries(20, 3)
	if err != nil {
		t.Fatal(err)
	}
	stub := &stubPipeline{result: []core.SearchResult{{ID: ds.Photos[0].ID, Score: 1}}}
	res, err := Driver{Clients: 4}.Run(stub, ds, qs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := stub.calls.Load(); got != 20 {
		t.Errorf("pipeline saw %d queries, want 20", got)
	}
	if res.Queries != 20 || res.Failures != 0 {
		t.Errorf("result = %+v", res)
	}
	if res.Latency.Count != 20 {
		t.Errorf("latency samples = %d", res.Latency.Count)
	}
	if res.Recall < 0 || res.Recall > 1 {
		t.Errorf("recall = %v", res.Recall)
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed not positive")
	}
}

func TestDriverCountsFailures(t *testing.T) {
	ds, err := workload.Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	qs, _ := ds.Queries(10, 4)
	stub := &stubPipeline{fail: true}
	res, err := Driver{Clients: 2}.Run(stub, ds, qs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Failures != 10 {
		t.Errorf("Failures = %d, want 10", res.Failures)
	}
	if res.Latency.Count != 0 {
		t.Errorf("failed queries recorded latency: %d", res.Latency.Count)
	}
}

func TestDriverClampsClients(t *testing.T) {
	ds, err := workload.Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	qs, _ := ds.Queries(3, 5)
	stub := &stubPipeline{}
	// More clients than queries must not deadlock or drop work.
	res, err := Driver{Clients: 100}.Run(stub, ds, qs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 3 {
		t.Errorf("Queries = %d", res.Queries)
	}
}

func TestDriverEndToEndWithEngine(t *testing.T) {
	ds, err := workload.Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(core.Config{})
	if _, err := eng.Build(ds.Photos); err != nil {
		t.Fatal(err)
	}
	qs, _ := ds.Queries(6, 6)
	res, err := Driver{Clients: 3, TopK: 20}.Run(eng, ds, qs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Failures != 0 {
		t.Errorf("engine failures: %d", res.Failures)
	}
	if res.Latency.Mean <= 0 {
		t.Error("no latency recorded")
	}
	if res.Throughput <= 0 {
		t.Error("no throughput computed")
	}
}

func TestRunBatchValidation(t *testing.T) {
	d := Driver{}
	if _, err := d.RunBatch(nil, nil, nil); err == nil {
		t.Error("nil engine should fail")
	}
	ds, _ := workload.Generate(smallSpec())
	if _, err := d.RunBatch(core.NewEngine(core.Config{}), ds, nil); err == nil {
		t.Error("empty query set should fail")
	}
}

func TestRunBatchMatchesRun(t *testing.T) {
	ds, err := workload.Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(core.Config{})
	if _, err := eng.Build(ds.Photos); err != nil {
		t.Fatal(err)
	}
	qs, err := ds.Queries(8, 13)
	if err != nil {
		t.Fatal(err)
	}
	d := Driver{Clients: 4, TopK: 20}
	seq, err := d.Run(eng, ds, qs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	batch, err := d.RunBatch(eng, ds, qs)
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	if batch.Queries != len(qs) || batch.Failures != 0 {
		t.Errorf("batch result = %+v", batch)
	}
	// The engine is deterministic, so the batch path must reproduce the
	// per-query replay's retrieval quality (up to float summation order,
	// which depends on client scheduling in Run).
	if diff := batch.Recall - seq.Recall; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("batch recall %v != per-query recall %v", batch.Recall, seq.Recall)
	}
	if batch.Latency.Count != len(qs) {
		t.Errorf("batch latency samples = %d, want %d", batch.Latency.Count, len(qs))
	}
	if batch.Throughput <= 0 || batch.Elapsed <= 0 {
		t.Errorf("batch throughput/elapsed not positive: %+v", batch)
	}
}
