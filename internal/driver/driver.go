// Package driver replays query workloads against search pipelines from
// many concurrent clients — the paper's evaluation issues requests
// "simultaneously ... from 500 clients". It sits above both the workload
// generator and the pipelines, collecting latency and retrieval-quality
// statistics per run.
package driver

import (
	"fmt"
	"sync"
	"time"

	"github.com/fastrepro/fast/internal/bloom"
	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/metrics"
	"github.com/fastrepro/fast/internal/simimg"
	"github.com/fastrepro/fast/internal/workload"
)

// Driver replays a query workload against a pipeline from many concurrent
// clients. Each client loops over its share of the query stream, recording
// per-query latency and retrieval quality.
type Driver struct {
	// Clients is the number of concurrent issuers; 0 means 8 (a laptop-
	// scale stand-in for the paper's 500).
	Clients int
	// TopK is the per-query result budget; 0 means 50.
	TopK int
}

// DriverResult aggregates a replay.
type DriverResult struct {
	Latency    metrics.Summary
	Recall     float64 // mean scene recall over all queries
	Queries    int
	Failures   int     // queries that returned an error
	Throughput float64 // completed queries per second of wall time
	Elapsed    time.Duration
}

// Run replays the queries against p. Geo hints are attached for tag-based
// schemes. It returns an error only for setup problems; per-query errors
// are counted in Failures.
func (d Driver) Run(p core.Pipeline, ds *workload.Dataset, queries []workload.Query) (DriverResult, error) {
	if p == nil || ds == nil {
		return DriverResult{}, fmt.Errorf("workload: driver needs a pipeline and dataset")
	}
	if len(queries) == 0 {
		return DriverResult{}, fmt.Errorf("workload: driver needs at least one query")
	}
	clients := d.Clients
	if clients <= 0 {
		clients = 8
	}
	if clients > len(queries) {
		clients = len(queries)
	}
	topK := d.TopK
	if topK <= 0 {
		topK = 50
	}

	// Pre-resolve geo hints once (scene → a capture location).
	locs := make(map[simimg.SceneID]*simimg.GeoPoint)
	for _, q := range queries {
		if _, ok := locs[q.Scene]; ok {
			continue
		}
		for _, ph := range ds.Photos {
			if ph.Scene == q.Scene {
				loc := ph.Loc
				locs[q.Scene] = &loc
				break
			}
		}
	}

	lat := metrics.NewLatency()
	var acc metrics.Accuracy
	var failures int
	var mu sync.Mutex

	start := time.Now()
	var wg sync.WaitGroup
	work := make(chan int)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for qi := range work {
				q := queries[qi]
				probe := core.Probe{Img: q.Probe, Loc: locs[q.Scene]}
				t0 := time.Now()
				res, err := p.Search(probe, topK)
				elapsed := time.Since(t0)
				mu.Lock()
				if err != nil {
					failures++
				} else {
					lat.Record(elapsed)
					ids := make([]uint64, len(res))
					for i, r := range res {
						ids[i] = r.ID
					}
					acc.Add(metrics.ScoreRetrieval(ids, q.Relevant).Recall())
				}
				mu.Unlock()
			}
		}()
	}
	for qi := range queries {
		work <- qi
	}
	close(work)
	wg.Wait()

	elapsed := time.Since(start)
	return DriverResult{
		Latency:    lat.Summarize(),
		Recall:     acc.Mean(),
		Queries:    len(queries),
		Failures:   failures,
		Throughput: throughput(len(queries)-failures, elapsed),
		Elapsed:    elapsed,
	}, nil
}

// throughput converts a completion count and wall time into queries/sec.
func throughput(completed int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(completed) / elapsed.Seconds()
}

// IngestResult aggregates one ingest replay: wall time and photos/sec of
// streaming a photo batch into a built engine, plus the engine's own
// per-stage cost split.
type IngestResult struct {
	Photos     int
	Elapsed    time.Duration
	Throughput float64 // photos per second of wall time
	Stats      core.BuildStats
}

// RunIngest streams photos into a built engine through the staged ingest
// pipeline (Engine.InsertBatch) at the given FE+SM worker count (0 means
// GOMAXPROCS) and reports wall-clock ingest throughput — the arrival rate
// the index sustains while staying queryable, the near-real-time half of
// the paper's evaluation.
func (d Driver) RunIngest(e *core.Engine, photos []*simimg.Photo, workers int) (IngestResult, error) {
	if e == nil {
		return IngestResult{}, fmt.Errorf("workload: ingest driver needs an engine")
	}
	if len(photos) == 0 {
		return IngestResult{}, fmt.Errorf("workload: ingest driver needs at least one photo")
	}
	start := time.Now()
	st, err := e.InsertBatch(photos, workers)
	elapsed := time.Since(start)
	if err != nil {
		return IngestResult{}, err
	}
	return IngestResult{
		Photos:     st.Photos,
		Elapsed:    elapsed,
		Throughput: throughput(st.Photos, elapsed),
		Stats:      st,
	}, nil
}

// RunBatch replays the queries through the engine's batch path: one
// QueryBatch call fans the whole stream across a worker pool sized by
// Clients, with per-query latency recorded into a metrics.Histogram (the
// fixed-memory collector long-running drivers use) instead of the
// sample-keeping Latency. Results are identical to per-query Search calls;
// only the concurrency shape differs — this is the path a serving front-end
// uses after the sharded-query-engine change.
//
// The geo-hint resolution of Run is skipped: the FAST engine is
// content-based and ignores hints.
func (d Driver) RunBatch(e *core.Engine, ds *workload.Dataset, queries []workload.Query) (DriverResult, error) {
	if e == nil || ds == nil {
		return DriverResult{}, fmt.Errorf("workload: batch driver needs an engine and dataset")
	}
	if len(queries) == 0 {
		return DriverResult{}, fmt.Errorf("workload: driver needs at least one query")
	}
	clients := d.Clients
	if clients <= 0 {
		clients = 8
	}
	topK := d.TopK
	if topK <= 0 {
		topK = 50
	}

	imgs := make([]*simimg.Image, len(queries))
	for i, q := range queries {
		imgs[i] = q.Probe
	}

	hist := metrics.NewHistogram()
	start := time.Now()
	batch := e.QueryBatch(imgs, topK, clients, hist)
	elapsed := time.Since(start)

	var acc metrics.Accuracy
	failures := 0
	for i, br := range batch {
		if br.Err != nil {
			failures++
			continue
		}
		ids := make([]uint64, len(br.Results))
		for j, r := range br.Results {
			ids[j] = r.ID
		}
		acc.Add(metrics.ScoreRetrieval(ids, queries[i].Relevant).Recall())
	}

	return DriverResult{
		Latency:    hist.Summarize(),
		Recall:     acc.Mean(),
		Queries:    len(queries),
		Failures:   failures,
		Throughput: throughput(len(queries)-failures, elapsed),
		Elapsed:    elapsed,
	}, nil
}

// PreparedBatchResult is a RunBatchPrepared replay: the timed region
// covers only the search back half, with the front half's cost reported
// separately so serialization effects and per-query FE cost can be told
// apart.
type PreparedBatchResult struct {
	DriverResult
	// PrepElapsed is the total FE+SM time spent preparing the summaries
	// (outside the timed region); PrepMean is per query.
	PrepElapsed time.Duration
	PrepMean    time.Duration
}

// RunBatchPrepared is RunBatch with the query front half (FE+SM) hoisted
// out of the timed region: every probe's summary is computed once up
// front, then the timed QuerySummaryBatch call replays only the search
// back half (SA+CHS+ranking) across the worker pool. Because the back
// half is what the sharded index and the lock-free read path parallelize,
// this is the measurement that shows worker scaling — RunBatch's numbers
// are dominated by per-query FE, which is embarrassingly parallel but
// CPU-bound, so on few-core hosts it flattens the curve and hides
// search-path regressions.
//
// Results are identical to RunBatch's: the prepared summaries are exactly
// what the full pipeline computes per probe.
func (d Driver) RunBatchPrepared(e *core.Engine, ds *workload.Dataset, queries []workload.Query) (PreparedBatchResult, error) {
	if e == nil || ds == nil {
		return PreparedBatchResult{}, fmt.Errorf("workload: batch driver needs an engine and dataset")
	}
	if len(queries) == 0 {
		return PreparedBatchResult{}, fmt.Errorf("workload: driver needs at least one query")
	}
	clients := d.Clients
	if clients <= 0 {
		clients = 8
	}
	topK := d.TopK
	if topK <= 0 {
		topK = 50
	}

	// Untimed front half: FE+SM once per probe.
	prepStart := time.Now()
	summaries := make([]*bloom.Sparse, len(queries))
	for i, q := range queries {
		f, err := e.Summarize(q.Probe)
		if err != nil {
			return PreparedBatchResult{}, fmt.Errorf("workload: preparing summary %d: %w", i, err)
		}
		summaries[i] = bloom.ToSparse(f)
	}
	prepElapsed := time.Since(prepStart)

	hist := metrics.NewHistogram()
	start := time.Now()
	batch := e.QuerySummaryBatch(summaries, topK, clients, hist)
	elapsed := time.Since(start)

	var acc metrics.Accuracy
	failures := 0
	for i, br := range batch {
		if br.Err != nil {
			failures++
			continue
		}
		ids := make([]uint64, len(br.Results))
		for j, r := range br.Results {
			ids[j] = r.ID
		}
		acc.Add(metrics.ScoreRetrieval(ids, queries[i].Relevant).Recall())
	}

	return PreparedBatchResult{
		DriverResult: DriverResult{
			Latency:    hist.Summarize(),
			Recall:     acc.Mean(),
			Queries:    len(queries),
			Failures:   failures,
			Throughput: throughput(len(queries)-failures, elapsed),
			Elapsed:    elapsed,
		},
		PrepElapsed: prepElapsed,
		PrepMean:    prepElapsed / time.Duration(len(queries)),
	}, nil
}
