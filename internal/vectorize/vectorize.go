// Package vectorize implements the Vector Extraction (VE) module of the
// FAST methodology for non-image data (Figure 1, Section II-A): "most data
// types can be represented as vectors based on their multi-dimensional
// attributes, including metadata (e.g., created time, size,
// filename/record-name) and contents (e.g., chunk fingerprints ...)".
//
// A Schema maps a record's typed fields onto a fixed-dimensional float
// vector: numeric fields become scaled components, categorical fields are
// feature-hashed into sign bins, timestamps become cyclical (sin/cos)
// encodings, and free text is token-hashed. The resulting vectors feed the
// same SM→SA→CHS pipeline the image use case uses — this is what lets FAST
// serve as "a system middleware" over Spyglass/SmartStore-class metadata
// (Table I).
package vectorize

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Kind selects a field encoder.
type Kind uint8

// Supported field kinds.
const (
	// Numeric encodes a float64 (or integer) as Weight * scale(value).
	Numeric Kind = iota
	// LogNumeric encodes Weight * log1p(|value|) * sign — robust for sizes
	// and counts spanning orders of magnitude.
	LogNumeric
	// Categorical feature-hashes a string into Dims components of ±Weight.
	Categorical
	// Timestamp encodes a time.Time as cyclical hour-of-day and day-of-week
	// components (4 dims) scaled by Weight.
	Timestamp
	// Text token-hashes a free-text string into Dims components
	// (bag-of-words with the hashing trick).
	Text
)

// Field describes one record attribute.
type Field struct {
	Name   string
	Kind   Kind
	Weight float64 // component scale; 0 means 1
	Dims   int     // hashed width for Categorical/Text; 0 means 8
}

// Schema is an ordered field list; the output vector layout is the
// concatenation of each field's encoding.
type Schema struct {
	fields []Field
	dim    int
}

// NewSchema validates the field list and computes the output layout.
func NewSchema(fields []Field) (*Schema, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("vectorize: schema needs at least one field")
	}
	s := &Schema{fields: make([]Field, len(fields))}
	seen := map[string]bool{}
	for i, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("vectorize: field %d has no name", i)
		}
		if seen[f.Name] {
			return nil, fmt.Errorf("vectorize: duplicate field %q", f.Name)
		}
		seen[f.Name] = true
		if f.Weight == 0 {
			f.Weight = 1
		}
		if f.Dims == 0 {
			f.Dims = 8
		}
		if f.Dims < 1 {
			return nil, fmt.Errorf("vectorize: field %q has dims %d", f.Name, f.Dims)
		}
		s.fields[i] = f
		s.dim += fieldWidth(f)
	}
	return s, nil
}

// Dim returns the output vector dimensionality.
func (s *Schema) Dim() int { return s.dim }

func fieldWidth(f Field) int {
	switch f.Kind {
	case Numeric, LogNumeric:
		return 1
	case Timestamp:
		return 4
	case Categorical, Text:
		return f.Dims
	default:
		return 0
	}
}

// Record is one data item: field name → value. Supported value types per
// kind: Numeric/LogNumeric take float64, int, int64; Categorical and Text
// take string; Timestamp takes time.Time.
type Record map[string]interface{}

// Vector encodes the record under the schema. Missing fields encode as
// zeros (absent attributes carry no affinity); mistyped fields are errors.
func (s *Schema) Vector(r Record) ([]float64, error) {
	out := make([]float64, 0, s.dim)
	for _, f := range s.fields {
		val, present := r[f.Name]
		enc, err := encodeField(f, val, present)
		if err != nil {
			return nil, err
		}
		out = append(out, enc...)
	}
	return out, nil
}

func encodeField(f Field, val interface{}, present bool) ([]float64, error) {
	width := fieldWidth(f)
	if !present {
		return make([]float64, width), nil
	}
	switch f.Kind {
	case Numeric, LogNumeric:
		x, err := toFloat(val)
		if err != nil {
			return nil, fmt.Errorf("vectorize: field %q: %w", f.Name, err)
		}
		if f.Kind == LogNumeric {
			sign := 1.0
			if x < 0 {
				sign = -1
			}
			x = sign * math.Log1p(math.Abs(x))
		}
		return []float64{f.Weight * x}, nil
	case Timestamp:
		t, ok := val.(time.Time)
		if !ok {
			return nil, fmt.Errorf("vectorize: field %q: want time.Time, got %T", f.Name, val)
		}
		hour := float64(t.Hour()) + float64(t.Minute())/60
		dow := float64(t.Weekday())
		return []float64{
			f.Weight * math.Sin(2*math.Pi*hour/24),
			f.Weight * math.Cos(2*math.Pi*hour/24),
			f.Weight * math.Sin(2*math.Pi*dow/7),
			f.Weight * math.Cos(2*math.Pi*dow/7),
		}, nil
	case Categorical:
		sv, ok := val.(string)
		if !ok {
			return nil, fmt.Errorf("vectorize: field %q: want string, got %T", f.Name, val)
		}
		enc := make([]float64, f.Dims)
		h := hashString(f.Name + "\x00" + sv)
		idx := int(h % uint64(f.Dims))
		sign := 1.0
		if (h>>32)&1 == 1 {
			sign = -1
		}
		enc[idx] = sign * f.Weight
		return enc, nil
	case Text:
		sv, ok := val.(string)
		if !ok {
			return nil, fmt.Errorf("vectorize: field %q: want string, got %T", f.Name, val)
		}
		enc := make([]float64, f.Dims)
		for _, tok := range strings.Fields(strings.ToLower(sv)) {
			h := hashString(f.Name + "\x00" + tok)
			idx := int(h % uint64(f.Dims))
			sign := 1.0
			if (h>>32)&1 == 1 {
				sign = -1
			}
			enc[idx] += sign * f.Weight
		}
		return enc, nil
	default:
		return nil, fmt.Errorf("vectorize: field %q has unknown kind %d", f.Name, f.Kind)
	}
}

func toFloat(v interface{}) (float64, error) {
	switch x := v.(type) {
	case float64:
		return x, nil
	case float32:
		return float64(x), nil
	case int:
		return float64(x), nil
	case int64:
		return float64(x), nil
	case uint64:
		return float64(x), nil
	default:
		return 0, fmt.Errorf("want numeric, got %T", v)
	}
}

// hashString is FNV-1a 64 over the string bytes.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
