package vectorize

import (
	"math"
	"testing"
	"time"
)

func schemaOrDie(t *testing.T, fields []Field) *Schema {
	t.Helper()
	s, err := NewSchema(fields)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(nil); err == nil {
		t.Error("empty schema should fail")
	}
	if _, err := NewSchema([]Field{{Name: ""}}); err == nil {
		t.Error("unnamed field should fail")
	}
	if _, err := NewSchema([]Field{{Name: "a"}, {Name: "a"}}); err == nil {
		t.Error("duplicate field should fail")
	}
	if _, err := NewSchema([]Field{{Name: "a", Kind: Categorical, Dims: -1}}); err == nil {
		t.Error("negative dims should fail")
	}
}

func TestDimLayout(t *testing.T) {
	s := schemaOrDie(t, []Field{
		{Name: "size", Kind: LogNumeric},
		{Name: "owner", Kind: Categorical, Dims: 16},
		{Name: "mtime", Kind: Timestamp},
		{Name: "name", Kind: Text, Dims: 32},
	})
	if s.Dim() != 1+16+4+32 {
		t.Errorf("Dim = %d, want 53", s.Dim())
	}
}

func TestNumericEncoding(t *testing.T) {
	s := schemaOrDie(t, []Field{{Name: "x", Kind: Numeric, Weight: 2}})
	v, err := s.Vector(Record{"x": 3.5})
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 7 {
		t.Errorf("v[0] = %v, want 7", v[0])
	}
	// Integer types accepted.
	for _, raw := range []interface{}{int(3), int64(3), uint64(3), float32(3)} {
		v, err := s.Vector(Record{"x": raw})
		if err != nil || v[0] != 6 {
			t.Errorf("%T: v = %v, err = %v", raw, v, err)
		}
	}
	if _, err := s.Vector(Record{"x": "nope"}); err == nil {
		t.Error("string in numeric field should fail")
	}
}

func TestLogNumericSymmetry(t *testing.T) {
	s := schemaOrDie(t, []Field{{Name: "x", Kind: LogNumeric}})
	pos, _ := s.Vector(Record{"x": 100.0})
	neg, _ := s.Vector(Record{"x": -100.0})
	if pos[0] <= 0 || neg[0] >= 0 || pos[0] != -neg[0] {
		t.Errorf("log encoding asymmetric: %v vs %v", pos[0], neg[0])
	}
	big, _ := s.Vector(Record{"x": 1e9})
	if big[0] > 25 {
		t.Errorf("log encoding did not compress: %v", big[0])
	}
}

func TestCategoricalEncoding(t *testing.T) {
	s := schemaOrDie(t, []Field{{Name: "owner", Kind: Categorical, Dims: 16}})
	a1, _ := s.Vector(Record{"owner": "alice"})
	a2, _ := s.Vector(Record{"owner": "alice"})
	b, _ := s.Vector(Record{"owner": "bob"})
	var nonZeroA, dot float64
	same := true
	for i := range a1 {
		if a1[i] != a2[i] {
			same = false
		}
		if a1[i] != 0 {
			nonZeroA++
		}
		dot += a1[i] * b[i]
	}
	if !same {
		t.Error("categorical encoding not deterministic")
	}
	if nonZeroA != 1 {
		t.Errorf("categorical should set exactly one component, set %v", nonZeroA)
	}
	if dot != 0 {
		t.Error("distinct categories should hash to distinct bins here")
	}
	if _, err := s.Vector(Record{"owner": 42}); err == nil {
		t.Error("non-string categorical should fail")
	}
}

func TestTimestampCyclical(t *testing.T) {
	s := schemaOrDie(t, []Field{{Name: "t", Kind: Timestamp}})
	midnight, _ := s.Vector(Record{"t": time.Date(2014, 10, 6, 0, 0, 0, 0, time.UTC)})
	almostMidnight, _ := s.Vector(Record{"t": time.Date(2014, 10, 6, 23, 59, 0, 0, time.UTC)})
	noon, _ := s.Vector(Record{"t": time.Date(2014, 10, 6, 12, 0, 0, 0, time.UTC)})
	dist := func(a, b []float64) float64 {
		var d float64
		for i := range a[:2] { // hour components only
			d += (a[i] - b[i]) * (a[i] - b[i])
		}
		return math.Sqrt(d)
	}
	if dist(midnight, almostMidnight) >= dist(midnight, noon) {
		t.Error("cyclical encoding broken: 23:59 farther from 00:00 than noon")
	}
	if _, err := s.Vector(Record{"t": "2014"}); err == nil {
		t.Error("non-time timestamp should fail")
	}
}

func TestTextBagOfWords(t *testing.T) {
	s := schemaOrDie(t, []Field{{Name: "desc", Kind: Text, Dims: 64}})
	a, _ := s.Vector(Record{"desc": "holiday photo at the tower"})
	b, _ := s.Vector(Record{"desc": "photo at the tower on holiday"})
	c, _ := s.Vector(Record{"desc": "quarterly budget spreadsheet"})
	cos := func(x, y []float64) float64 {
		var dot, nx, ny float64
		for i := range x {
			dot += x[i] * y[i]
			nx += x[i] * x[i]
			ny += y[i] * y[i]
		}
		if nx == 0 || ny == 0 {
			return 0
		}
		return dot / math.Sqrt(nx*ny)
	}
	if cos(a, b) < 0.8 { // b has one extra token ("on")
		t.Errorf("same-word texts cosine %v, want ~1", cos(a, b))
	}
	if cos(a, c) >= cos(a, b) {
		t.Errorf("unrelated text as close as related: %v vs %v", cos(a, c), cos(a, b))
	}
}

func TestMissingFieldsEncodeAsZeros(t *testing.T) {
	s := schemaOrDie(t, []Field{
		{Name: "x", Kind: Numeric},
		{Name: "owner", Kind: Categorical, Dims: 4},
	})
	v, err := s.Vector(Record{})
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 5 {
		t.Fatalf("len = %d, want 5", len(v))
	}
	for i, x := range v {
		if x != 0 {
			t.Errorf("component %d = %v, want 0", i, x)
		}
	}
}

func TestVectorStableLayout(t *testing.T) {
	s := schemaOrDie(t, []Field{
		{Name: "a", Kind: Numeric},
		{Name: "b", Kind: Numeric},
	})
	v, _ := s.Vector(Record{"a": 1.0, "b": 2.0})
	if v[0] != 1 || v[1] != 2 {
		t.Errorf("layout not schema-ordered: %v", v)
	}
}
