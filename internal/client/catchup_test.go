package client

import (
	"context"
	"io"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/fastrepro/fast/internal/chunk"
	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/server"
	"github.com/fastrepro/fast/internal/store"
	"github.com/fastrepro/fast/internal/workload"
)

// testCDC keeps chunks small so kilobyte test snapshots span many of them.
var testCDC = chunk.Config{MinSize: 256, AvgSize: 1024, MaxSize: 8192, Normalization: 2}

// newSnapshotServer builds an engine-backed server with a chunked
// generation store, the shape of a cluster primary.
func newSnapshotServer(t *testing.T) (*httptest.Server, *core.Engine, *workload.Dataset) {
	t.Helper()
	ds, err := workload.Generate(workload.Spec{
		Name: "client-catchup", Scenes: 4, Photos: 60, Subjects: 2,
		SubjectRate: 0.2, Resolution: 32, Seed: 9, SceneBase: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(core.Config{})
	if _, err := eng.Build(ds.Photos); err != nil {
		t.Fatal(err)
	}
	gens := &store.Generations{
		Path:    filepath.Join(t.TempDir(), "snap"),
		Chunked: true,
		CDC:     testCDC,
	}
	srv, err := server.New(server.Config{Engine: eng, Snapshots: gens})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.BeginDrain()
		srv.Close()
	})
	return hs, eng, ds
}

// recoverEngine loads the newest generation of a replica store as an engine.
func recoverEngine(t *testing.T, g *store.Generations) *core.Engine {
	t.Helper()
	var eng *core.Engine
	if _, err := g.Recover(func(_ string, r io.Reader) error {
		var err error
		eng, err = core.ReadEngine(r)
		return err
	}); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return eng
}

// TestCatchUpColdThenIncremental runs the full replica catch-up loop over
// HTTP: a cold replica pulls the complete chunk set, and after primary
// churn the second pull ships only the diff — with the recovered replica
// engine holding exactly the primary's photo set both times.
func TestCatchUpColdThenIncremental(t *testing.T) {
	hs, eng, ds := newSnapshotServer(t)
	c := New(hs.URL, WithRetries(1, time.Millisecond))
	ctx := context.Background()

	if _, err := c.SnapshotSave(ctx); err != nil {
		t.Fatalf("SnapshotSave: %v", err)
	}
	ids, chunked, err := c.ChunkSet(ctx)
	if err != nil || !chunked || len(ids) == 0 {
		t.Fatalf("ChunkSet: ids=%d chunked=%v err=%v", len(ids), chunked, err)
	}

	replica := &store.Generations{Path: filepath.Join(t.TempDir(), "snap"), Chunked: true, CDC: testCDC}
	cold, err := c.CatchUp(ctx, replica)
	if err != nil {
		t.Fatalf("cold CatchUp: %v", err)
	}
	if cold.ChunksFetched != cold.Chunks || cold.ChunksReused != 0 || cold.Chunks == 0 {
		t.Fatalf("cold catch-up should fetch the full set: %+v", cold)
	}
	if got, want := recoverEngine(t, replica).Len(), eng.Len(); got != want {
		t.Fatalf("replica recovered %d photos, primary has %d", got, want)
	}

	// Churn ~5% on the primary, persist, catch up again.
	fresh := 3
	for i := 0; i < fresh; i++ {
		p := ds.FreshPhoto(uint64(900_000+i), int64(40+i))
		if err := eng.Insert(p); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	if _, err := c.SnapshotSave(ctx); err != nil {
		t.Fatalf("SnapshotSave after churn: %v", err)
	}
	inc, err := c.CatchUp(ctx, replica)
	if err != nil {
		t.Fatalf("incremental CatchUp: %v", err)
	}
	if inc.ChunksReused == 0 {
		t.Fatalf("incremental catch-up reused nothing: %+v", inc)
	}
	if transferred := inc.BytesFetched + inc.ManifestBytes; transferred >= inc.PayloadBytes {
		t.Fatalf("incremental transfer %d not smaller than full payload %d", transferred, inc.PayloadBytes)
	}
	if got, want := recoverEngine(t, replica).Len(), eng.Len(); got != want {
		t.Fatalf("replica recovered %d photos after churn, primary has %d", got, want)
	}
}

// TestCatchUpRequiresChunkedStore: a monolithic primary store answers
// /v1/snapshot/fetch with a clean 409, not a broken stream.
func TestCatchUpRequiresChunkedStore(t *testing.T) {
	ds, err := workload.Generate(workload.Spec{
		Name: "client-mono", Scenes: 2, Photos: 20, Subjects: 2,
		SubjectRate: 0.2, Resolution: 32, Seed: 11, SceneBase: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(core.Config{})
	if _, err := eng.Build(ds.Photos); err != nil {
		t.Fatal(err)
	}
	gens := &store.Generations{Path: filepath.Join(t.TempDir(), "snap")} // monolithic
	srv, err := server.New(server.Config{Engine: eng, Snapshots: gens})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	c := New(hs.URL, WithRetries(0, time.Millisecond))
	ctx := context.Background()
	if _, err := c.SnapshotSave(ctx); err != nil {
		t.Fatalf("SnapshotSave: %v", err)
	}
	replica := &store.Generations{Path: filepath.Join(t.TempDir(), "snap"), Chunked: true}
	if _, err := c.CatchUp(ctx, replica); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("CatchUp against monolithic store: got %v, want 409", err)
	}
}
