// Package client is the Go client for the fastd serving API
// (internal/server): typed wrappers over the /v1 endpoints with context
// propagation, per-request timeouts, and bounded retries that honor the
// server's admission-control backpressure (429 + Retry-After, 503).
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/failpoint"
	"github.com/fastrepro/fast/internal/server"
	"github.com/fastrepro/fast/internal/simimg"
)

// Client talks to one fastd instance. It is safe for concurrent use.
type Client struct {
	base      string
	hc        *http.Client
	timeout   time.Duration // per-attempt timeout; applied after options so WithTimeout/WithHTTPClient compose in any order
	retries   int           // attempts beyond the first
	retryWait time.Duration // base backoff, doubled per attempt
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (tests use the in-process
// listener's client; production tunes pooling).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithTimeout sets the per-attempt timeout (default 30s). It composes with
// WithHTTPClient in either order: the timeout is applied to the final
// transport once all options have run.
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.timeout = d }
}

// WithRetries sets how many times a failed request is retried and the base
// backoff between attempts (doubled each retry). Only transport errors and
// backpressure statuses (429, 503) are retried; other HTTP errors are
// returned immediately. Default: 3 retries, 100ms base.
func WithRetries(n int, base time.Duration) Option {
	return func(c *Client) { c.retries, c.retryWait = n, base }
}

// New returns a client for the server at base (e.g. "http://127.0.0.1:8093").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:      strings.TrimRight(base, "/"),
		hc:        &http.Client{Timeout: 30 * time.Second},
		retries:   3,
		retryWait: 100 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	if c.timeout > 0 {
		// Copy rather than mutate: the http.Client may be caller-owned
		// (WithHTTPClient) and shared with other code.
		hc := *c.hc
		hc.Timeout = c.timeout
		c.hc = &hc
	}
	return c
}

// retryable reports whether a response status is worth retrying, and the
// wait the server asked for (0 if none). Retry-After is parsed in both
// RFC 9110 forms: delay-seconds and HTTP-date.
func retryable(resp *http.Response) (bool, time.Duration) {
	if resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusServiceUnavailable {
		return false, 0
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			return true, time.Duration(secs) * time.Second
		}
		if at, err := http.ParseTime(ra); err == nil {
			if d := time.Until(at); d > 0 {
				return true, d
			}
		}
	}
	return true, 0
}

// do issues one request with retries. body is re-sent from the buffered
// payload on each attempt; out (when non-nil) receives the decoded JSON of
// a 2xx response.
func (c *Client) do(ctx context.Context, method, path string, payload []byte, contentType string, out interface{}) error {
	var lastErr error
	wait := c.retryWait
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			// The caller's deadline caps total elapsed time: if the next
			// backoff cannot complete before it, stop now and report the
			// last real failure instead of sleeping into a guaranteed
			// context error.
			if dl, ok := ctx.Deadline(); ok && time.Now().Add(wait).After(dl) {
				return fmt.Errorf("client: %s %s: deadline would expire during %v backoff (last error: %w)",
					method, path, wait, lastErr)
			}
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return fmt.Errorf("client: %s %s: %w (last error: %v)", method, path, ctx.Err(), lastErr)
			}
			wait *= 2
		}
		var body io.Reader
		if payload != nil {
			body = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
		if err != nil {
			return err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		if err := failpoint.Eval(failpoint.ClientTransport); err != nil {
			lastErr = err // injected transport fault: retry like a real one
			continue
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = err // transport error: retry
			continue
		}
		if resp.StatusCode == http.StatusOK {
			if out != nil {
				err = json.NewDecoder(resp.Body).Decode(out)
			}
			resp.Body.Close()
			return err
		}
		retry, serverWait := retryable(resp)
		lastErr = decodeError(resp)
		resp.Body.Close()
		if !retry {
			return lastErr
		}
		if serverWait > wait {
			wait = serverWait
		}
	}
	return fmt.Errorf("client: %s %s failed after %d attempts: %w", method, path, c.retries+1, lastErr)
}

// decodeError turns a non-2xx reply into an error carrying the server's
// message when it sent one.
func decodeError(resp *http.Response) error {
	var er server.ErrorResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&er); err == nil && er.Error != "" {
		return fmt.Errorf("client: server returned %d: %s", resp.StatusCode, er.Error)
	}
	return fmt.Errorf("client: server returned %d", resp.StatusCode)
}

func marshalJSON(v interface{}) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}
	return b, nil
}

// Query runs one probe image and returns the ranked hits. Use
// QueryDetailed to also observe a cluster router's partial-result flag.
func (c *Client) Query(ctx context.Context, img *simimg.Image, topK int) ([]core.SearchResult, error) {
	results, _, err := c.QueryDetailed(ctx, img, topK)
	return results, err
}

// Insert indexes one photo under the given ID.
func (c *Client) Insert(ctx context.Context, id uint64, img *simimg.Image) error {
	wi, err := server.EncodeImage(img)
	if err != nil {
		return err
	}
	payload, err := marshalJSON(server.InsertRequest{ID: id, Image: wi})
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, "/v1/insert", payload, "application/json", nil)
}

// Delete removes one photo from the index.
func (c *Client) Delete(ctx context.Context, id uint64) error {
	payload, err := marshalJSON(server.DeleteRequest{ID: id})
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, "/v1/delete", payload, "application/json", nil)
}

// Snapshot streams a hot snapshot of the server's index into w and returns
// the byte count. Snapshots are not retried: a half-written sink cannot be
// rewound by the client.
func (c *Client) Snapshot(ctx context.Context, w io.Writer) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/snapshot", nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, decodeError(resp)
	}
	return io.Copy(w, resp.Body)
}

// Restore replaces the server's engine with the snapshot read from r.
// Not retried for the same reason uploads generally aren't: r may not be
// rewindable.
func (c *Client) Restore(ctx context.Context, r io.Reader) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/restore", r)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return nil
}

// Stats fetches the serving and engine counters.
func (c *Client) Stats(ctx context.Context) (server.Stats, error) {
	var st server.Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, "", &st)
	return st, err
}

// Healthy returns nil when the server answers /healthz with 200.
func (c *Client) Healthy(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, "", nil)
}
