package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// stub answers /v1/delete with a scripted status sequence (last status
// repeats) and records how many attempts arrived.
func stub(t *testing.T, statuses ...int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(hits.Add(1)) - 1
		if n >= len(statuses) {
			n = len(statuses) - 1
		}
		status := statuses[n]
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "0")
		}
		if status == http.StatusOK {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			w.Write([]byte(`{"ok":true}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write([]byte(`{"error":"scripted failure"}`))
	}))
	t.Cleanup(hs.Close)
	return hs, &hits
}

func TestRetriesBackpressureThenSucceeds(t *testing.T) {
	hs, hits := stub(t, http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusOK)
	c := New(hs.URL, WithRetries(3, time.Millisecond))
	if err := c.Delete(context.Background(), 1); err != nil {
		t.Fatalf("Delete after 429,503,200: %v", err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}

func TestNoRetryOnClientError(t *testing.T) {
	hs, hits := stub(t, http.StatusBadRequest)
	c := New(hs.URL, WithRetries(3, time.Millisecond))
	err := c.Delete(context.Background(), 1)
	if err == nil || !strings.Contains(err.Error(), "scripted failure") {
		t.Fatalf("Delete: %v, want server's message", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d attempts for a 400, want 1 (no retry)", got)
	}
}

func TestRetriesExhausted(t *testing.T) {
	hs, hits := stub(t, http.StatusTooManyRequests)
	c := New(hs.URL, WithRetries(2, time.Millisecond))
	err := c.Delete(context.Background(), 1)
	if err == nil || !strings.Contains(err.Error(), "failed after 3 attempts") {
		t.Fatalf("Delete: %v, want exhaustion error", err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}

// TestTimeoutSurvivesOptionOrder pins the fix for order-dependent options:
// WithTimeout must stick whether it runs before or after WithHTTPClient,
// and must not mutate the caller's http.Client.
func TestTimeoutSurvivesOptionOrder(t *testing.T) {
	for _, opts := range [][]Option{
		{WithTimeout(5 * time.Second), WithHTTPClient(&http.Client{})},
		{WithHTTPClient(&http.Client{}), WithTimeout(5 * time.Second)},
	} {
		c := New("http://127.0.0.1:1", opts...)
		if c.hc.Timeout != 5*time.Second {
			t.Errorf("opts %v: timeout = %v, want 5s", opts, c.hc.Timeout)
		}
	}
	shared := &http.Client{Timeout: time.Minute}
	New("http://127.0.0.1:1", WithHTTPClient(shared), WithTimeout(time.Second))
	if shared.Timeout != time.Minute {
		t.Errorf("caller's http.Client mutated: timeout = %v, want 1m", shared.Timeout)
	}
}

func TestContextCancelsRetryLoop(t *testing.T) {
	hs, _ := stub(t, http.StatusServiceUnavailable)
	c := New(hs.URL, WithRetries(10, 50*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.Delete(ctx, 1)
	if err == nil {
		t.Fatal("Delete succeeded against a permanently unavailable server")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retry loop ignored context cancellation (ran %v)", elapsed)
	}
}
