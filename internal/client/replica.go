package client

import (
	"context"
	"net/http"

	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/server"
	"github.com/fastrepro/fast/internal/simimg"
)

// Replica-aware client surface: the epoch-carrying variants the cluster
// router's freshness tracking consumes, plus the /v1/ring wire the live
// reconfiguration driver speaks. The plain Query/Insert/Delete methods
// stay unchanged for callers that don't do replica bookkeeping.

// QueryFull runs one probe and returns the decoded results together with
// the complete wire response (partial/stale flags, freshness epoch).
func (c *Client) QueryFull(ctx context.Context, img *simimg.Image, topK int) ([]core.SearchResult, server.QueryResponse, error) {
	wi, err := server.EncodeImage(img)
	if err != nil {
		return nil, server.QueryResponse{}, err
	}
	payload, err := marshalJSON(server.QueryRequest{Image: wi, TopK: topK})
	if err != nil {
		return nil, server.QueryResponse{}, err
	}
	var out server.QueryResponse
	if err := c.do(ctx, http.MethodPost, "/v1/query", payload, "application/json", &out); err != nil {
		return nil, server.QueryResponse{}, err
	}
	results := make([]core.SearchResult, len(out.Results))
	for i, r := range out.Results {
		results[i] = core.SearchResult{ID: r.ID, Score: r.Score}
	}
	return results, out, nil
}

// InsertEpoch is Insert returning the shard's post-ack published view
// epoch — the freshness floor the router judges later answers against.
func (c *Client) InsertEpoch(ctx context.Context, id uint64, img *simimg.Image) (uint64, error) {
	wi, err := server.EncodeImage(img)
	if err != nil {
		return 0, err
	}
	payload, err := marshalJSON(server.InsertRequest{ID: id, Image: wi})
	if err != nil {
		return 0, err
	}
	var ok server.OKResponse
	if err := c.do(ctx, http.MethodPost, "/v1/insert", payload, "application/json", &ok); err != nil {
		return 0, err
	}
	return ok.Epoch, nil
}

// DeleteEpoch is Delete returning the shard's post-ack published view epoch.
func (c *Client) DeleteEpoch(ctx context.Context, id uint64) (uint64, error) {
	payload, err := marshalJSON(server.DeleteRequest{ID: id})
	if err != nil {
		return 0, err
	}
	var ok server.OKResponse
	if err := c.do(ctx, http.MethodPost, "/v1/delete", payload, "application/json", &ok); err != nil {
		return 0, err
	}
	return ok.Epoch, nil
}

// RingStatus fetches the node's placement state (shard or router).
func (c *Client) RingStatus(ctx context.Context) (server.RingStatusResponse, error) {
	var st server.RingStatusResponse
	err := c.do(ctx, http.MethodGet, "/v1/ring", nil, "", &st)
	return st, err
}

// RingPhase executes one live-reconfiguration phase (prepare, commit or
// abort) against the node. Phases are idempotent on the server side, so
// the client's normal backpressure retries are safe.
func (c *Client) RingPhase(ctx context.Context, req server.RingUpdateRequest) (server.RingStatusResponse, error) {
	payload, err := marshalJSON(req)
	if err != nil {
		return server.RingStatusResponse{}, err
	}
	var st server.RingStatusResponse
	if err := c.do(ctx, http.MethodPost, "/v1/ring", payload, "application/json", &st); err != nil {
		return server.RingStatusResponse{}, err
	}
	return st, nil
}
