package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/failpoint"
	"github.com/fastrepro/fast/internal/server"
	"github.com/fastrepro/fast/internal/workload"
)

// retryStub answers /v1/delete with a scripted status sequence; each 429
// carries the given Retry-After header value.
func retryStub(t *testing.T, retryAfter string, statuses ...int) (*httptest.Server, *atomic.Int64, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	var lastGap atomic.Int64 // ns between the two most recent attempts
	var lastAt atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now().UnixNano()
		if prev := lastAt.Swap(now); prev != 0 {
			lastGap.Store(now - prev)
		}
		n := int(hits.Add(1)) - 1
		if n >= len(statuses) {
			n = len(statuses) - 1
		}
		status := statuses[n]
		w.Header().Set("Content-Type", "application/json")
		if status == http.StatusTooManyRequests && retryAfter != "" {
			w.Header().Set("Retry-After", retryAfter)
		}
		if status == http.StatusOK {
			w.WriteHeader(status)
			w.Write([]byte(`{"ok":true}`))
			return
		}
		w.WriteHeader(status)
		w.Write([]byte(`{"error":"scripted"}`))
	}))
	t.Cleanup(hs.Close)
	return hs, &hits, &lastGap
}

// A 429's integer Retry-After stretches the backoff to at least the
// server's ask.
func TestRetryAfterSecondsHonored(t *testing.T) {
	hs, hits, gap := retryStub(t, "1", http.StatusTooManyRequests, http.StatusOK)
	c := New(hs.URL, WithRetries(2, time.Millisecond))
	start := time.Now()
	if err := c.Delete(context.Background(), 1); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if got := hits.Load(); got != 2 {
		t.Fatalf("attempts = %d, want 2", got)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("retried after %v, ignoring Retry-After: 1", elapsed)
	}
	if g := time.Duration(gap.Load()); g < 900*time.Millisecond {
		t.Fatalf("attempt gap %v < Retry-After", g)
	}
}

// An HTTP-date Retry-After works the same as delay-seconds.
func TestRetryAfterHTTPDateHonored(t *testing.T) {
	date := time.Now().Add(1200 * time.Millisecond).UTC().Format(http.TimeFormat)
	hs, _, gap := retryStub(t, date, http.StatusTooManyRequests, http.StatusOK)
	c := New(hs.URL, WithRetries(2, time.Millisecond))
	if err := c.Delete(context.Background(), 1); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	// http.TimeFormat has second granularity, so the parsed wait can round
	// down by up to a second from the 1.2s target; anything clearly above
	// the 1ms base backoff proves the date was honored.
	if g := time.Duration(gap.Load()); g < 100*time.Millisecond {
		t.Fatalf("attempt gap %v ignored HTTP-date Retry-After", g)
	}
}

// When the caller's deadline cannot survive the server's Retry-After, the
// client gives up immediately instead of sleeping into a guaranteed
// context error — and reports the server's last real answer.
func TestDeadlineCapsRetryAfter(t *testing.T) {
	hs, hits, _ := retryStub(t, "30", http.StatusTooManyRequests)
	c := New(hs.URL, WithRetries(5, time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.Delete(ctx, 1)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Delete succeeded against a 429-only server")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("client slept %v into a 30s Retry-After with a 300ms deadline", elapsed)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (no point retrying past the deadline)", got)
	}
	if !strings.Contains(err.Error(), "scripted") {
		t.Fatalf("error %v lost the server's last answer", err)
	}
}

// newFaultServer builds a real engine + serving stack for failpoint-driven
// burst tests; the returned ID is a photo the engine actually holds.
func newFaultServer(t *testing.T) (*httptest.Server, uint64) {
	t.Helper()
	ds, err := workload.Generate(workload.Spec{
		Name: "client-fp", Scenes: 3, Photos: 30, Subjects: 2,
		SubjectRate: 0.2, Resolution: 32, Seed: 5, SceneBase: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(core.Config{})
	if _, err := eng.Build(ds.Photos); err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.BeginDrain()
		srv.Close()
	})
	return hs, ds.Photos[0].ID
}

// A burst of injected 429s followed by recovery: the client retries
// through the burst, honoring the server's Retry-After, and succeeds.
func TestRetriesThroughInjected429Burst(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	failpoint.Reset()
	hs, id := newFaultServer(t)
	// The server's injected 429 carries Retry-After: 1 — one of them, then
	// healthy (each extra 429 costs a real 1s+ wait, so keep the burst
	// short; the longer-burst shape is covered by the deadline test below).
	failpoint.Enable(failpoint.ServerInject429, failpoint.Policy{Action: failpoint.Error, Times: 1})
	c := New(hs.URL, WithRetries(5, time.Millisecond))
	start := time.Now()
	if err := c.Delete(context.Background(), id); err != nil {
		t.Fatalf("Delete through 429 burst: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("Retry-After:1 wait finished in %v", elapsed)
	}
	if got := failpoint.Hits(failpoint.ServerInject429); got != 1 {
		t.Fatalf("injected %d 429s, want 1", got)
	}
}

// A 503 burst without Retry-After falls back to exponential backoff.
func TestRetriesThroughInjected503Burst(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	failpoint.Reset()
	hs, id := newFaultServer(t)
	failpoint.Enable(failpoint.ServerInject503, failpoint.Policy{Action: failpoint.Error, Times: 2})
	c := New(hs.URL, WithRetries(4, time.Millisecond))
	if err := c.Delete(context.Background(), id); err != nil {
		t.Fatalf("Delete through 503 burst: %v", err)
	}
	if got := failpoint.Hits(failpoint.ServerInject503); got != 2 {
		t.Fatalf("injected %d 503s, want 2", got)
	}
}

// An injected 429/503 burst longer than the caller's deadline budget must
// surface within the deadline, not after the full retry schedule.
func TestInjectedBurstRespectsDeadline(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	failpoint.Reset()
	hs, id := newFaultServer(t)
	failpoint.Enable(failpoint.ServerInject429, failpoint.Policy{Action: failpoint.Error})
	c := New(hs.URL, WithRetries(10, time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.Delete(ctx, id)
	if err == nil {
		t.Fatal("Delete succeeded through a permanent 429 wall")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline-capped retry ran %v", elapsed)
	}
}

// Transport faults injected at the client's own failpoint retry like real
// connection errors.
func TestTransportFailpointRetries(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	failpoint.Reset()
	hs, hits, _ := retryStub(t, "", http.StatusOK)
	failpoint.Enable(failpoint.ClientTransport, failpoint.Policy{Action: failpoint.Error, Times: 2})
	c := New(hs.URL, WithRetries(3, time.Millisecond))
	if err := c.Delete(context.Background(), 1); err != nil {
		t.Fatalf("Delete through transport faults: %v", err)
	}
	// The two injected faults never reached the server.
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want 1", got)
	}
	if got := failpoint.Hits(failpoint.ClientTransport); got != 2 {
		t.Fatalf("transport failpoint fired %d times, want 2", got)
	}
}

// Exhausting retries on transport faults reports the injected error.
func TestTransportFailpointExhaustion(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	failpoint.Reset()
	hs, hits, _ := retryStub(t, "", http.StatusOK)
	failpoint.Enable(failpoint.ClientTransport, failpoint.Policy{Action: failpoint.Error})
	c := New(hs.URL, WithRetries(2, time.Millisecond))
	err := c.Delete(context.Background(), 1)
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("want injected transport error, got %v", err)
	}
	if got := hits.Load(); got != 0 {
		t.Fatalf("server saw %d attempts, want 0", got)
	}
}
