package client

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"

	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/server"
	"github.com/fastrepro/fast/internal/simimg"
	"github.com/fastrepro/fast/internal/store"
)

// Replica catch-up: the client half of the chunk-diff protocol (see
// internal/server/catchup.go). CatchUp is the whole loop — advertise the
// local chunk set, fetch the delta, apply it — and is what fastctl catchup
// and a recovering replica shard run.

// QueryDetailed is Query plus the router's partial-result flag: partial is
// true when the answer came from a cluster router that lost one or more
// shards inside quorum, so the results cover the reachable shards only.
// Against a single fastd it is always false.
func (c *Client) QueryDetailed(ctx context.Context, img *simimg.Image, topK int) ([]core.SearchResult, bool, error) {
	results, out, err := c.QueryFull(ctx, img, topK)
	return results, out.Partial, err
}

// SnapshotSave asks the server to persist its engine into its generation
// store and returns the write accounting (chunks reused vs written).
func (c *Client) SnapshotSave(ctx context.Context) (store.WriteResult, error) {
	var res store.WriteResult
	err := c.do(ctx, http.MethodPost, "/v1/snapshot/save", nil, "", &res)
	return res, err
}

// ChunkSet fetches the server's chunk-ID inventory and whether its store
// is chunked.
func (c *Client) ChunkSet(ctx context.Context) ([]store.ChunkID, bool, error) {
	var resp server.ChunkSetResponse
	if err := c.do(ctx, http.MethodGet, "/v1/snapshot/chunks", nil, "", &resp); err != nil {
		return nil, false, err
	}
	ids := make([]store.ChunkID, len(resp.Chunks))
	for i, s := range resp.Chunks {
		id, err := store.ParseChunkID(s)
		if err != nil {
			return nil, false, fmt.Errorf("client: chunk inventory: %w", err)
		}
		ids[i] = id
	}
	return ids, resp.Chunked, nil
}

// FetchDelta requests a snapshot delta relative to the given have-set and
// returns the raw FASTDLT1 stream. Not retried: the response is a stream
// the caller consumes incrementally (and a partially applied delta makes
// the retry cheaper anyway — apply, then fetch again with the larger
// have-set). The caller must Close the reader.
func (c *Client) FetchDelta(ctx context.Context, have []store.ChunkID) (io.ReadCloser, error) {
	hex := make([]string, len(have))
	for i, id := range have {
		hex[i] = id.String()
	}
	payload, err := marshalJSON(server.FetchRequest{Have: hex})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/snapshot/fetch", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		err := decodeError(resp)
		resp.Body.Close()
		return nil, err
	}
	return resp.Body, nil
}

// CatchUp synchronizes a local generation store with the server's newest
// snapshot: advertise the local chunk inventory, fetch the diff, apply it.
// The applied manifest becomes the local primary generation, recoverable
// through the normal store.Generations.Recover path. Transfer cost is
// proportional to the chunk diff; a cold (empty) store receives the full
// set, an interrupted run resumes diff-only because landed chunks are
// durable and re-advertised.
func (c *Client) CatchUp(ctx context.Context, g *store.Generations) (store.ApplyResult, error) {
	have, err := g.LiveChunkIDs()
	if err != nil {
		return store.ApplyResult{}, err
	}
	body, err := c.FetchDelta(ctx, have)
	if err != nil {
		return store.ApplyResult{}, err
	}
	defer body.Close()
	return g.ApplyDelta(body)
}
