// Package shard centralizes the shard-count policy used by the concurrent
// index structures (the LSH bucket maps and the flat cuckoo table): a
// structure is split into N independently locked shards, with N a power of
// two near GOMAXPROCS, so concurrent readers and writers touching different
// shards never contend on the same lock.
package shard

import "runtime"

// MaxShards bounds the automatic shard count; beyond this the per-shard
// lock cost outweighs the contention win on any realistic host.
const MaxShards = 64

// Count returns the shard count for a structure with the given number of
// addressable units (cells, buckets, ...): the smallest power of two that is
// >= GOMAXPROCS, clamped to [1, MaxShards], and further reduced so that each
// shard keeps at least minPerShard units. units <= 0 or minPerShard <= 0
// disable the size-based reduction.
func Count(units, minPerShard int) int {
	n := ceilPow2(runtime.GOMAXPROCS(0))
	if n > MaxShards {
		n = MaxShards
	}
	if units > 0 && minPerShard > 0 {
		for n > 1 && units/n < minPerShard {
			n >>= 1
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// ceilPow2 rounds n up to a power of two (minimum 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Index maps an already-mixed 64-bit hash to a shard in [0, n) where n is a
// power of two. It uses the high bits so structures that consume the low
// bits for their own bucket addressing stay uncorrelated with the shard
// choice.
func Index(hash uint64, n int) int {
	return int((hash >> 48) & uint64(n-1))
}
