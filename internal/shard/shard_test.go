package shard

import (
	"runtime"
	"testing"
)

func TestCountIsPowerOfTwo(t *testing.T) {
	for _, units := range []int{0, 1, 100, 1 << 20} {
		n := Count(units, 4096)
		if n < 1 || n&(n-1) != 0 {
			t.Errorf("Count(%d, 4096) = %d, not a power of two >= 1", units, n)
		}
		if n > MaxShards {
			t.Errorf("Count(%d, 4096) = %d exceeds MaxShards", units, n)
		}
	}
}

func TestCountNearGOMAXPROCS(t *testing.T) {
	n := Count(1<<30, 1)
	procs := runtime.GOMAXPROCS(0)
	if n < 1 || (procs <= MaxShards && n < procs) {
		t.Errorf("Count = %d below GOMAXPROCS %d with no size pressure", n, procs)
	}
	if n >= 2*procs && n > 1 {
		t.Errorf("Count = %d not near GOMAXPROCS %d", n, procs)
	}
}

func TestCountRespectsMinPerShard(t *testing.T) {
	// 1000 units with at least 4096 per shard forces a single shard.
	if n := Count(1000, 4096); n != 1 {
		t.Errorf("Count(1000, 4096) = %d, want 1", n)
	}
	// Disabled floor keeps the GOMAXPROCS-derived count.
	if a, b := Count(0, 0), Count(1<<30, 1); a != b {
		t.Errorf("disabled floor changed count: %d vs %d", a, b)
	}
}

func TestIndexInRange(t *testing.T) {
	for _, n := range []int{1, 2, 8, 64} {
		seen := make(map[int]bool)
		for h := uint64(0); h < 1<<16; h++ {
			// Spread the hash across the high bits Index consumes.
			i := Index(h<<48|h, n)
			if i < 0 || i >= n {
				t.Fatalf("Index out of range: %d for n=%d", i, n)
			}
			seen[i] = true
		}
		if n > 1 && len(seen) < 2 {
			t.Errorf("Index never varied for n=%d", n)
		}
	}
}
