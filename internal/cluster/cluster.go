// Package cluster simulates the paper's evaluation testbed: a 256-node
// cluster where every node has a 32-core CPU, 64 GB of RAM, a 7200RPM disk
// and a Gigabit NIC. The simulator is a deterministic queueing model: each
// node owns per-core availability timelines, a task submitted to a node is
// scheduled on the earliest-free core, and cross-node interactions charge
// network transfer time. Experiment harnesses express work as service
// durations (computed from operation counts and the store/disk models) and
// read back completion times, so cluster-scale latencies are reproduced
// without wall-clock cost.
package cluster

import (
	"fmt"
	"sort"
	"time"

	"github.com/fastrepro/fast/internal/placement"
	"github.com/fastrepro/fast/internal/store"
)

// Config describes the simulated cluster.
type Config struct {
	Nodes        int // number of nodes; 0 means 256 (paper)
	CoresPerNode int // cores per node; 0 means 32 (paper)
	Net          store.NetworkModel
	Disk         store.DiskModel
	// PlacementVNodes / PlacementSeed parameterize the consistent-hash
	// ring keys are routed by (internal/placement — the same ring the real
	// router and shards use, so simulated and real placement cannot
	// drift). Zero values take the placement defaults.
	PlacementVNodes int
	PlacementSeed   uint64
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 256
	}
	if c.CoresPerNode == 0 {
		c.CoresPerNode = 32
	}
	if c.Net == (store.NetworkModel{}) {
		c.Net = store.GigabitEthernet()
	}
	if c.Disk == (store.DiskModel{}) {
		c.Disk = store.HDD7200()
	}
	return c
}

// Node is one simulated machine.
type Node struct {
	ID    int
	cores []time.Duration // next-free time per core
	busy  time.Duration   // total busy time accumulated
	tasks int
}

// Cluster is the simulated machine room.
type Cluster struct {
	cfg   Config
	nodes []*Node
	ring  *placement.Ring
	down  map[int]bool // failure injection; see failure.go
}

// New builds a cluster. It returns an error for non-positive sizes.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Nodes < 1 || cfg.CoresPerNode < 1 {
		return nil, fmt.Errorf("cluster: invalid config %+v", cfg)
	}
	ring, err := placement.New(placement.Config{
		Shards: cfg.Nodes,
		VNodes: cfg.PlacementVNodes,
		Seed:   cfg.PlacementSeed,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	c := &Cluster{cfg: cfg, ring: ring}
	for i := 0; i < cfg.Nodes; i++ {
		c.nodes = append(c.nodes, &Node{ID: i, cores: make([]time.Duration, cfg.CoresPerNode)})
	}
	return c, nil
}

// Config returns the effective configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Nodes returns the node count.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// Disk returns the per-node disk model.
func (c *Cluster) Disk() store.DiskModel { return c.cfg.Disk }

// Net returns the interconnect model.
func (c *Cluster) Net() store.NetworkModel { return c.cfg.Net }

// Submit schedules a task needing service time on the given node, arriving
// at the given simulated time. It returns the task's completion time. The
// task runs on the earliest-available core (FCFS per node).
func (c *Cluster) Submit(node int, arrival, service time.Duration) (time.Duration, error) {
	if node < 0 || node >= len(c.nodes) {
		return 0, fmt.Errorf("cluster: node %d out of range [0, %d)", node, len(c.nodes))
	}
	if service < 0 {
		return 0, fmt.Errorf("cluster: negative service time %v", service)
	}
	n := c.nodes[node]
	// Earliest-free core.
	best := 0
	for i := 1; i < len(n.cores); i++ {
		if n.cores[i] < n.cores[best] {
			best = i
		}
	}
	start := n.cores[best]
	if arrival > start {
		start = arrival
	}
	done := start + service
	n.cores[best] = done
	n.busy += service
	n.tasks++
	return done, nil
}

// Route maps an item key to its owning node (the dataset is "randomly
// distributed among the nodes" in the paper). Routing delegates to the
// shared consistent-hash ring so the simulator exercises exactly the
// placement the real router and shards use.
func (c *Cluster) Route(key uint64) int {
	return c.ring.Owner(key)
}

// Ring exposes the cluster's placement ring, so harnesses can assert the
// simulated assignment matches a real tier built from the same config.
func (c *Cluster) Ring() *placement.Ring { return c.ring }

// Broadcast schedules the same service on every node at the given arrival
// and returns the time the slowest node finishes plus one network round
// trip (scatter/gather aggregation).
func (c *Cluster) Broadcast(arrival, service time.Duration) (time.Duration, error) {
	var maxDone time.Duration
	for i := range c.nodes {
		done, err := c.Submit(i, arrival, service)
		if err != nil {
			return 0, err
		}
		if done > maxDone {
			maxDone = done
		}
	}
	return maxDone + c.cfg.Net.RTT, nil
}

// Utilization returns the mean busy fraction across nodes at the horizon of
// the latest completion.
func (c *Cluster) Utilization() float64 {
	var horizon time.Duration
	for _, n := range c.nodes {
		for _, t := range n.cores {
			if t > horizon {
				horizon = t
			}
		}
	}
	if horizon == 0 {
		return 0
	}
	var busy time.Duration
	for _, n := range c.nodes {
		busy += n.busy
	}
	capacity := horizon * time.Duration(len(c.nodes)*c.cfg.CoresPerNode)
	return float64(busy) / float64(capacity)
}

// TaskCount returns the number of tasks scheduled so far.
func (c *Cluster) TaskCount() int {
	total := 0
	for _, n := range c.nodes {
		total += n.tasks
	}
	return total
}

// Reset clears all node timelines.
func (c *Cluster) Reset() {
	for _, n := range c.nodes {
		for i := range n.cores {
			n.cores[i] = 0
		}
		n.busy = 0
		n.tasks = 0
	}
}

// RunWorkload schedules a batch of independent tasks (key → service time)
// arriving simultaneously at time zero, routing each by key, and returns
// latency statistics over the batch. This models Figure 4's "N simultaneous
// requests" experiments.
func (c *Cluster) RunWorkload(keys []uint64, service func(key uint64) time.Duration) WorkloadStats {
	lat := make([]time.Duration, 0, len(keys))
	for _, k := range keys {
		node := c.Route(k)
		done, err := c.Submit(node, 0, service(k))
		if err != nil {
			continue
		}
		// One network round trip to deliver the request and the response.
		lat = append(lat, done+c.cfg.Net.RTT)
	}
	return summarize(lat)
}

// WorkloadStats aggregates completion latencies.
type WorkloadStats struct {
	Count    int
	Mean     time.Duration
	Median   time.Duration
	P99      time.Duration
	Max      time.Duration
	Makespan time.Duration // completion time of the last task
}

func summarize(lat []time.Duration) WorkloadStats {
	var st WorkloadStats
	st.Count = len(lat)
	if st.Count == 0 {
		return st
	}
	sorted := make([]time.Duration, len(lat))
	copy(sorted, lat)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, l := range sorted {
		sum += l
	}
	st.Mean = sum / time.Duration(st.Count)
	st.Median = sorted[st.Count/2]
	p99 := st.Count * 99 / 100
	if p99 >= st.Count {
		p99 = st.Count - 1
	}
	st.P99 = sorted[p99]
	st.Max = sorted[st.Count-1]
	st.Makespan = st.Max
	return st
}
