package cluster

import (
	"testing"
	"time"

	"github.com/fastrepro/fast/internal/store"
)

func small() *Cluster {
	c, err := New(Config{Nodes: 4, CoresPerNode: 2})
	if err != nil {
		panic(err)
	}
	return c
}

func TestNewDefaults(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if c.Nodes() != 256 || c.Config().CoresPerNode != 32 {
		t.Errorf("defaults = %d nodes x %d cores, want 256x32", c.Nodes(), c.Config().CoresPerNode)
	}
	if _, err := New(Config{Nodes: -1}); err == nil {
		t.Error("negative nodes should fail")
	}
}

func TestSubmitSerializesOnBusyCores(t *testing.T) {
	c := small() // 2 cores per node
	d := 10 * time.Millisecond
	t1, _ := c.Submit(0, 0, d)
	t2, _ := c.Submit(0, 0, d)
	t3, _ := c.Submit(0, 0, d)
	if t1 != d || t2 != d {
		t.Errorf("first two tasks should run in parallel: %v, %v", t1, t2)
	}
	if t3 != 2*d {
		t.Errorf("third task should queue: %v, want %v", t3, 2*d)
	}
}

func TestSubmitRespectsArrival(t *testing.T) {
	c := small()
	done, _ := c.Submit(1, 50*time.Millisecond, 10*time.Millisecond)
	if done != 60*time.Millisecond {
		t.Errorf("completion = %v, want 60ms", done)
	}
}

func TestSubmitValidation(t *testing.T) {
	c := small()
	if _, err := c.Submit(99, 0, time.Millisecond); err == nil {
		t.Error("bad node should fail")
	}
	if _, err := c.Submit(0, 0, -time.Millisecond); err == nil {
		t.Error("negative service should fail")
	}
}

func TestRouteStableAndInRange(t *testing.T) {
	c := small()
	for k := uint64(0); k < 1000; k++ {
		n := c.Route(k)
		if n < 0 || n >= c.Nodes() {
			t.Fatalf("Route(%d) = %d out of range", k, n)
		}
		if n != c.Route(k) {
			t.Fatal("Route not deterministic")
		}
	}
	// Roughly balanced: every node receives some keys.
	counts := make([]int, c.Nodes())
	for k := uint64(0); k < 4000; k++ {
		counts[c.Route(k)]++
	}
	for i, n := range counts {
		if n < 500 {
			t.Errorf("node %d received only %d/4000 keys", i, n)
		}
	}
}

func TestBroadcast(t *testing.T) {
	c := small()
	d := 5 * time.Millisecond
	done, err := c.Broadcast(0, d)
	if err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	want := d + c.Net().RTT
	if done != want {
		t.Errorf("Broadcast completion = %v, want %v", done, want)
	}
	if c.TaskCount() != c.Nodes() {
		t.Errorf("TaskCount = %d, want %d", c.TaskCount(), c.Nodes())
	}
}

func TestRunWorkloadQueueingGrowsWithLoad(t *testing.T) {
	// More simultaneous requests per core -> higher mean latency. This is
	// the Figure 4 mechanism for the baselines.
	mk := func(n int) WorkloadStats {
		c := small() // 4 nodes x 2 cores = 8 servers
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(i)
		}
		return c.RunWorkload(keys, func(uint64) time.Duration { return time.Millisecond })
	}
	light := mk(8)
	heavy := mk(800)
	if heavy.Mean <= light.Mean {
		t.Errorf("queueing invisible: heavy mean %v <= light mean %v", heavy.Mean, light.Mean)
	}
	if heavy.Count != 800 {
		t.Errorf("Count = %d, want 800", heavy.Count)
	}
	if heavy.P99 < heavy.Median || heavy.Max < heavy.P99 {
		t.Errorf("percentiles disordered: %+v", heavy)
	}
	if heavy.Makespan != heavy.Max {
		t.Errorf("makespan %v != max %v", heavy.Makespan, heavy.Max)
	}
}

func TestRunWorkloadEmpty(t *testing.T) {
	c := small()
	st := c.RunWorkload(nil, func(uint64) time.Duration { return time.Second })
	if st.Count != 0 || st.Mean != 0 {
		t.Errorf("empty workload stats = %+v", st)
	}
}

func TestUtilizationAndReset(t *testing.T) {
	c := small()
	if c.Utilization() != 0 {
		t.Error("fresh cluster utilization != 0")
	}
	// Saturate node 0 only: utilization well below 1.
	for i := 0; i < 10; i++ {
		_, _ = c.Submit(0, 0, time.Millisecond)
	}
	u := c.Utilization()
	if u <= 0 || u >= 1 {
		t.Errorf("utilization = %v, want in (0, 1)", u)
	}
	c.Reset()
	if c.Utilization() != 0 || c.TaskCount() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestMoreCoresShortenMakespan(t *testing.T) {
	// The Figure 7 mechanism: the same task batch completes faster with
	// more cores.
	run := func(cores int) time.Duration {
		c, err := New(Config{Nodes: 1, CoresPerNode: cores, Net: store.GigabitEthernet()})
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]uint64, 64)
		for i := range keys {
			keys[i] = uint64(i)
		}
		st := c.RunWorkload(keys, func(uint64) time.Duration { return time.Millisecond })
		return st.Makespan
	}
	m1, m4, m16 := run(1), run(4), run(16)
	if !(m1 > m4 && m4 > m16) {
		t.Errorf("makespans not decreasing with cores: %v, %v, %v", m1, m4, m16)
	}
	// Near-linear speedup at this load: m1/m16 should be close to 16.
	ratio := float64(m1) / float64(m16)
	if ratio < 8 {
		t.Errorf("speedup %v far from linear", ratio)
	}
}
