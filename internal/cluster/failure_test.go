package cluster

import (
	"errors"
	"testing"
	"time"
)

func TestSetDownValidation(t *testing.T) {
	c := small()
	if err := c.SetDown(99, true); err == nil {
		t.Error("out-of-range node should fail")
	}
	if err := c.SetDown(0, true); err != nil {
		t.Fatalf("SetDown: %v", err)
	}
	if !c.IsDown(0) || c.Live() != 3 {
		t.Errorf("IsDown/Live wrong after failure: %v %d", c.IsDown(0), c.Live())
	}
	if err := c.SetDown(0, false); err != nil {
		t.Fatal(err)
	}
	if c.IsDown(0) || c.Live() != 4 {
		t.Error("recovery did not restore node")
	}
}

func TestRouteLiveSkipsFailedNodes(t *testing.T) {
	c := small()
	// Find a key owned by node 1, then fail node 1.
	var key uint64
	for k := uint64(0); ; k++ {
		if c.Route(k) == 1 {
			key = k
			break
		}
	}
	if err := c.SetDown(1, true); err != nil {
		t.Fatal(err)
	}
	node, err := c.RouteLive(key)
	if err != nil {
		t.Fatalf("RouteLive: %v", err)
	}
	if node == 1 {
		t.Error("RouteLive returned the failed node")
	}
	if node != 2 { // linear fallback: next node in ring order
		t.Errorf("fallback node = %d, want 2", node)
	}
	// Keys owned by healthy nodes are unaffected.
	for k := uint64(0); k < 50; k++ {
		if c.Route(k) != 1 {
			got, err := c.RouteLive(k)
			if err != nil || got != c.Route(k) {
				t.Fatalf("healthy key rerouted: %d -> %d (%v)", c.Route(k), got, err)
			}
		}
	}
}

func TestSubmitLiveRejectsDownNode(t *testing.T) {
	c := small()
	_ = c.SetDown(2, true)
	if _, err := c.SubmitLive(2, 0, time.Millisecond); !errors.Is(err, ErrNodeDown) {
		t.Errorf("SubmitLive on down node: %v", err)
	}
	if _, err := c.SubmitLive(0, 0, time.Millisecond); err != nil {
		t.Errorf("SubmitLive on live node: %v", err)
	}
	// Bad node index still reports range error, not down error.
	if _, err := c.SubmitLive(99, 0, time.Millisecond); errors.Is(err, ErrNodeDown) {
		t.Error("range error misreported as down")
	}
}

func TestAllNodesDown(t *testing.T) {
	c := small()
	for i := 0; i < c.Nodes(); i++ {
		_ = c.SetDown(i, true)
	}
	if c.Live() != 0 {
		t.Fatalf("Live = %d", c.Live())
	}
	if _, err := c.RouteLive(1); !errors.Is(err, ErrClusterDown) {
		t.Errorf("RouteLive with no live nodes: %v", err)
	}
	st := c.RunWorkloadLive([]uint64{1, 2, 3}, func(uint64) time.Duration { return time.Millisecond })
	if st.Count != 0 {
		t.Errorf("dead cluster completed %d tasks", st.Count)
	}
}

func TestFailureShiftsLoadToSurvivors(t *testing.T) {
	// With half the nodes down, the same workload takes longer (fewer
	// servers) but still completes fully.
	keys := make([]uint64, 400)
	for i := range keys {
		keys[i] = uint64(i)
	}
	service := func(uint64) time.Duration { return time.Millisecond }

	healthy := small()
	healthyStats := healthy.RunWorkloadLive(keys, service)

	degraded := small()
	_ = degraded.SetDown(0, true)
	_ = degraded.SetDown(1, true)
	degradedStats := degraded.RunWorkloadLive(keys, service)

	if degradedStats.Count != len(keys) {
		t.Fatalf("degraded cluster completed %d/%d", degradedStats.Count, len(keys))
	}
	if degradedStats.Mean <= healthyStats.Mean {
		t.Errorf("failure did not increase latency: %v vs %v", degradedStats.Mean, healthyStats.Mean)
	}
	// No task may have run on a failed node.
	if degraded.nodes[0].tasks != 0 || degraded.nodes[1].tasks != 0 {
		t.Error("failed nodes executed tasks")
	}
}
