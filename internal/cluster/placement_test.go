package cluster

import (
	"testing"

	"github.com/fastrepro/fast/internal/placement"
)

// TestRouteMatchesPlacementRing pins the contract the real cluster tier
// depends on: the simulator's Route and an independently constructed
// placement.Ring with the same parameters assign every key to the same
// shard, so policies validated in simulation transfer to the networked
// router unchanged.
func TestRouteMatchesPlacementRing(t *testing.T) {
	cfg := Config{Nodes: 7, CoresPerNode: 2, PlacementVNodes: 48, PlacementSeed: 99}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ring, err := placement.New(placement.Config{Shards: 7, VNodes: 48, Seed: 99})
	if err != nil {
		t.Fatalf("placement.New: %v", err)
	}
	if c.Ring().Fingerprint() != ring.Fingerprint() {
		t.Fatalf("simulator ring fingerprint %x != standalone ring %x",
			c.Ring().Fingerprint(), ring.Fingerprint())
	}
	for k := uint64(0); k < 20_000; k++ {
		if got, want := c.Route(k), ring.Owner(k); got != want {
			t.Fatalf("Route(%d) = %d, placement ring says %d", k, got, want)
		}
	}
}
