package cluster

import (
	"errors"
	"fmt"
	"time"
)

// ErrNodeDown is returned when a task is submitted to a failed node.
var ErrNodeDown = errors.New("cluster: node is down")

// ErrClusterDown is returned when no live node remains.
var ErrClusterDown = errors.New("cluster: all nodes are down")

// SetDown marks a node failed (down=true) or recovered (down=false).
// Failed nodes reject Submit and are skipped by RouteLive. Recovery keeps
// the node's previous timeline (its cores resume from where they were).
func (c *Cluster) SetDown(node int, down bool) error {
	if node < 0 || node >= len(c.nodes) {
		return fmt.Errorf("cluster: node %d out of range [0, %d)", node, len(c.nodes))
	}
	if c.down == nil {
		c.down = make(map[int]bool)
	}
	if down {
		c.down[node] = true
	} else {
		delete(c.down, node)
	}
	return nil
}

// Live returns the number of nodes currently up.
func (c *Cluster) Live() int { return len(c.nodes) - len(c.down) }

// IsDown reports whether a node is failed.
func (c *Cluster) IsDown(node int) bool { return c.down[node] }

// RouteLive maps a key to its owning node, skipping failed nodes by
// deterministic linear probing (the next live node in ring order takes over
// the shard, the usual consistent-fallback policy). It returns an error
// when every node is down.
func (c *Cluster) RouteLive(key uint64) (int, error) {
	if c.Live() == 0 {
		return 0, ErrClusterDown
	}
	node := c.Route(key)
	for i := 0; i < len(c.nodes); i++ {
		cand := (node + i) % len(c.nodes)
		if !c.down[cand] {
			return cand, nil
		}
	}
	return 0, ErrClusterDown // unreachable given the Live check
}

// SubmitLive is Submit with failure awareness: it rejects tasks for down
// nodes.
func (c *Cluster) SubmitLive(node int, arrival, service time.Duration) (time.Duration, error) {
	if node >= 0 && node < len(c.nodes) && c.down[node] {
		return 0, fmt.Errorf("%w: node %d", ErrNodeDown, node)
	}
	return c.Submit(node, arrival, service)
}

// RunWorkloadLive schedules the batch like RunWorkload but routes around
// failed nodes; keys whose shards have no live fallback are dropped from
// the statistics (Count reflects completions).
func (c *Cluster) RunWorkloadLive(keys []uint64, service func(key uint64) time.Duration) WorkloadStats {
	lat := make([]time.Duration, 0, len(keys))
	for _, k := range keys {
		node, err := c.RouteLive(k)
		if err != nil {
			continue
		}
		done, err := c.Submit(node, 0, service(k))
		if err != nil {
			continue
		}
		lat = append(lat, done+c.cfg.Net.RTT)
	}
	return summarize(lat)
}
