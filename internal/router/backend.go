package router

import (
	"context"

	"github.com/fastrepro/fast/internal/client"
	"github.com/fastrepro/fast/internal/server"
	"github.com/fastrepro/fast/internal/simimg"
)

// ClientBackend adapts *client.Client to the Backend interface, carrying
// the wire-level freshness tokens (query IndexEpoch, mutation ack Epoch)
// through to the router's replica ledger.
type ClientBackend struct {
	C *client.Client
}

// NewClientBackend wraps a fastd client as a router backend.
func NewClientBackend(c *client.Client) ClientBackend { return ClientBackend{C: c} }

func (b ClientBackend) Query(ctx context.Context, img *simimg.Image, topK int) (Answer, error) {
	results, resp, err := b.C.QueryFull(ctx, img, topK)
	if err != nil {
		return Answer{}, err
	}
	return Answer{Results: results, Epoch: resp.IndexEpoch}, nil
}

func (b ClientBackend) Insert(ctx context.Context, id uint64, img *simimg.Image) (uint64, error) {
	return b.C.InsertEpoch(ctx, id, img)
}

func (b ClientBackend) Delete(ctx context.Context, id uint64) (uint64, error) {
	return b.C.DeleteEpoch(ctx, id)
}

func (b ClientBackend) Stats(ctx context.Context) (server.Stats, error) { return b.C.Stats(ctx) }

func (b ClientBackend) Healthy(ctx context.Context) error { return b.C.Healthy(ctx) }
