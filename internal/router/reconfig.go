package router

import (
	"fmt"

	"github.com/fastrepro/fast/internal/placement"
	"github.com/fastrepro/fast/internal/server"
)

// Router side of live ring reconfiguration. The driver (fastctl
// ring-update, internal/replica.RingUpdate) sequences the phases:
//
//	1. RingPrepare on the router — from here every query double-reads
//	   (full fan-out, coverage checked under both rings) and every write
//	   double-writes (union of both rings' owner sets).
//	2. prepare on every shard — each installs the pending ring and
//	   acquires its newly-owned entries in the background.
//	3. Wait for every shard to report "ready" — the cluster-wide barrier.
//	4. commit on every shard — each sheds no-longer-owned entries.
//	5. RingCommit on the router — single-ring routing resumes under the
//	   new epoch, and the per-shard dirty flags are cleared (the
//	   migration just re-synced every replica from its peers).
//
// A driver crash strands the router in the transition window, which is
// safe (double-reading and double-writing are conservative) and visible
// in /v1/stats (ring_transition); re-running the driver with the same
// target ring is idempotent, and RingAbort backs out.

// RingPrepare installs next as the pending ring, entering the double-
// read/double-write window. The shard count cannot change (resizing needs
// backend reconfiguration, not just remapping); the epoch must advance.
func (rt *Router) RingPrepare(cfg placement.Config, replicas int) error {
	next, err := placement.New(cfg)
	if err != nil {
		return err
	}
	if next.Shards() != len(rt.cfg.Shards) {
		return fmt.Errorf("router: pending ring has %d shards, router has %d backends",
			next.Shards(), len(rt.cfg.Shards))
	}
	if replicas < 1 {
		replicas = 1
	}
	if replicas > next.Shards() {
		replicas = next.Shards()
	}
	rt.ringMu.Lock()
	defer rt.ringMu.Unlock()
	if rt.next != nil && rt.next.Fingerprint() == next.Fingerprint() && rt.nextReplicas == replicas {
		return nil // idempotent re-prepare
	}
	if rt.next != nil {
		return fmt.Errorf("router: reconfiguration to epoch %d already in flight", rt.next.Epoch())
	}
	if next.Epoch() <= rt.ring.Epoch() {
		return fmt.Errorf("router: ring epoch must advance (current %d, proposed %d)", rt.ring.Epoch(), next.Epoch())
	}
	rt.next = next
	rt.nextReplicas = replicas
	return nil
}

// RingCommit makes the pending ring current, ending the transition
// window. It also clears the per-shard dirty flags: the committed
// migration re-synced every shard's contents from its peers, so replicas
// previously marked dirty (failed async applies) are trustworthy again.
func (rt *Router) RingCommit(epoch uint64) error {
	rt.ringMu.Lock()
	defer rt.ringMu.Unlock()
	if rt.next == nil {
		if rt.ring.Epoch() == epoch {
			return nil // idempotent re-commit
		}
		return fmt.Errorf("router: no pending ring to commit")
	}
	if rt.next.Epoch() != epoch {
		return fmt.Errorf("router: commit names epoch %d but pending is %d", epoch, rt.next.Epoch())
	}
	rt.ring = rt.next
	rt.replicas = rt.nextReplicas
	rt.next = nil
	rt.nextReplicas = 0
	for i := range rt.health {
		rt.health[i].failed.Store(0)
	}
	rt.met.ringUpdates.Inc()
	return nil
}

// RingAbort drops the pending ring, if any, returning to single-ring
// routing under the current epoch.
func (rt *Router) RingAbort() {
	rt.ringMu.Lock()
	defer rt.ringMu.Unlock()
	rt.next = nil
	rt.nextReplicas = 0
}

// RingStatus reports the router's placement state in the same wire shape
// the shards use (ShardIndex -1 marks the router; Acquired/Shed stay zero
// — the router holds no index to migrate).
func (rt *Router) RingStatus() *server.RingStatusResponse {
	rt.ringMu.Lock()
	defer rt.ringMu.Unlock()
	cfg := rt.ring.Config()
	st := &server.RingStatusResponse{
		Enabled:    true,
		ShardIndex: -1,
		State:      "steady",
		Current: server.RingConfigWire{
			Shards: cfg.Shards, VNodes: cfg.VNodes, Seed: cfg.Seed, Epoch: cfg.Epoch,
			Replicas: rt.replicas,
		},
		CurrentFingerprint: rt.ring.Fingerprint(),
	}
	if rt.next != nil {
		ncfg := rt.next.Config()
		st.State = "migrating"
		st.Pending = &server.RingConfigWire{
			Shards: ncfg.Shards, VNodes: ncfg.VNodes, Seed: ncfg.Seed, Epoch: ncfg.Epoch,
			Replicas: rt.nextReplicas,
		}
		st.PendingFingerprint = rt.next.Fingerprint()
	}
	return st
}

// RingPhase executes one wire-level protocol phase against the router.
func (rt *Router) RingPhase(req server.RingUpdateRequest) (*server.RingStatusResponse, error) {
	switch req.Phase {
	case "prepare":
		cfg := placement.Config{Shards: req.Ring.Shards, VNodes: req.Ring.VNodes, Seed: req.Ring.Seed, Epoch: req.Ring.Epoch}
		if err := rt.RingPrepare(cfg, req.Ring.Replicas); err != nil {
			return nil, err
		}
	case "commit":
		if err := rt.RingCommit(req.Ring.Epoch); err != nil {
			return nil, err
		}
	case "abort":
		rt.RingAbort()
	default:
		return nil, fmt.Errorf("router: unknown ring phase %q (want prepare, commit or abort)", req.Phase)
	}
	return rt.RingStatus(), nil
}
