// Package router is the stateless front tier of the FAST cluster: it owns
// no index, only a placement ring and a client per shard. Queries fan out
// to every shard and the per-shard topK lists are merged with exactly the
// engine's ordering, so a routed answer is byte-identical to what a single
// node holding the union corpus would return (the property test and the CI
// cluster smoke enforce this). Inserts and deletes go to the single shard
// the ring assigns the photo ID.
//
// Failure semantics: every shard call runs under its own timeout. A query
// that loses a minority of shards still answers — flagged partial — from
// the shards that responded; losing a majority is a quorum failure and the
// query errors (HTTP 503). Mutations have exactly one owning shard, so a
// dead owner fails the mutation outright.
package router

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/failpoint"
	"github.com/fastrepro/fast/internal/metrics"
	"github.com/fastrepro/fast/internal/placement"
	"github.com/fastrepro/fast/internal/server"
	"github.com/fastrepro/fast/internal/simimg"
)

// Backend is one shard as the router sees it: the subset of the fastd
// client surface fan-out needs. *client.Client satisfies it; tests
// substitute in-process fakes.
type Backend interface {
	Query(ctx context.Context, img *simimg.Image, topK int) ([]core.SearchResult, error)
	Insert(ctx context.Context, id uint64, img *simimg.Image) error
	Delete(ctx context.Context, id uint64) error
	Stats(ctx context.Context) (server.Stats, error)
	Healthy(ctx context.Context) error
}

// Config parameterizes a Router.
type Config struct {
	// Shards are the backends, indexed exactly as the placement ring's
	// shard numbers. Required, at least one.
	Shards []Backend
	// Ring is the placement ring routing photo IDs to shards. Its shard
	// count must equal len(Shards). Required.
	Ring *placement.Ring
	// ShardTimeout bounds each per-shard call; 0 means 2s.
	ShardTimeout time.Duration
	// TopKLimit caps per-query result budgets; 0 means 1000 (the serving
	// layer's own default).
	TopKLimit int
}

// ErrQuorumLost is returned when a majority of shards failed to answer a
// query; wrapped errors carry the per-shard failures.
var ErrQuorumLost = errors.New("router: a majority of shards is unreachable")

// Router fans queries out and routes mutations by placement.
type Router struct {
	cfg Config

	met struct {
		queries        metrics.Counter
		queryErrors    metrics.Counter
		partialQueries metrics.Counter
		quorumLost     metrics.Counter
		inserts        metrics.Counter
		insertErrors   metrics.Counter
		deletes        metrics.Counter
		shardErrors    metrics.Counter
	}
	start time.Time
}

// New validates cfg and builds a Router.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("router: config needs at least one shard")
	}
	if cfg.Ring == nil {
		return nil, errors.New("router: config needs a placement ring")
	}
	if cfg.Ring.Shards() != len(cfg.Shards) {
		return nil, fmt.Errorf("router: ring has %d shards, config has %d backends",
			cfg.Ring.Shards(), len(cfg.Shards))
	}
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = 2 * time.Second
	}
	if cfg.TopKLimit <= 0 {
		cfg.TopKLimit = 1000
	}
	return &Router{cfg: cfg, start: time.Now()}, nil
}

// Ring exposes the placement ring (the HTTP layer reports its epoch and
// fingerprint in /v1/stats so operators can verify ring agreement).
func (rt *Router) Ring() *placement.Ring { return rt.cfg.Ring }

// MergeTopK merges per-shard topK lists into the global topK with exactly
// the engine's result ordering: score descending, ID ascending on ties.
// Shards partition the photo space, but the merge dedups by ID anyway
// (keeping the first, i.e. highest-ranked, occurrence) so a misconfigured
// overlap degrades to correct answers rather than duplicates. The global
// topK is always a subset of the union of per-shard topKs: a result
// ranking in the global top k must rank in the top k of its own shard.
func MergeTopK(lists [][]core.SearchResult, topK int) []core.SearchResult {
	n := 0
	for _, l := range lists {
		n += len(l)
	}
	merged := make([]core.SearchResult, 0, n)
	for _, l := range lists {
		merged = append(merged, l...)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Score != merged[j].Score {
			return merged[i].Score > merged[j].Score
		}
		return merged[i].ID < merged[j].ID
	})
	out := merged[:0]
	seen := make(map[uint64]struct{}, len(merged))
	for _, r := range merged {
		if _, dup := seen[r.ID]; dup {
			continue
		}
		seen[r.ID] = struct{}{}
		out = append(out, r)
		if len(out) == topK {
			break
		}
	}
	return out
}

// Query fans the probe to every shard and merges. partial is true when at
// least one shard failed but a majority answered; the results then cover
// the answering shards only. When a majority fails the error wraps
// ErrQuorumLost.
func (rt *Router) Query(ctx context.Context, img *simimg.Image, topK int) (results []core.SearchResult, partial bool, err error) {
	if topK <= 0 {
		topK = 50
	}
	if topK > rt.cfg.TopKLimit {
		topK = rt.cfg.TopKLimit
	}
	type answer struct {
		results []core.SearchResult
		err     error
	}
	answers := make([]answer, len(rt.cfg.Shards))
	var wg sync.WaitGroup
	for i, shard := range rt.cfg.Shards {
		wg.Add(1)
		go func(i int, shard Backend) {
			defer wg.Done()
			// Failpoint: Error deterministically fails this shard's leg
			// (driving the partial/quorum paths), Delay simulates a slow
			// shard racing the per-shard timeout.
			if err := failpoint.Eval(failpoint.RouterFanout); err != nil {
				answers[i].err = err
				return
			}
			sctx, cancel := context.WithTimeout(ctx, rt.cfg.ShardTimeout)
			defer cancel()
			answers[i].results, answers[i].err = shard.Query(sctx, img, topK)
		}(i, shard)
	}
	wg.Wait()

	lists := make([][]core.SearchResult, 0, len(answers))
	var shardErrs []error
	for i, a := range answers {
		if a.err != nil {
			rt.met.shardErrors.Inc()
			shardErrs = append(shardErrs, fmt.Errorf("shard %d: %w", i, a.err))
			continue
		}
		lists = append(lists, a.results)
	}
	failed := len(shardErrs)
	if failed*2 > len(rt.cfg.Shards) {
		rt.met.quorumLost.Inc()
		rt.met.queryErrors.Inc()
		return nil, false, fmt.Errorf("%w: %d of %d shards failed: %v",
			ErrQuorumLost, failed, len(rt.cfg.Shards), errors.Join(shardErrs...))
	}
	if err := failpoint.Eval(failpoint.RouterMerge); err != nil {
		rt.met.queryErrors.Inc()
		return nil, false, fmt.Errorf("router: merging shard answers: %w", err)
	}
	rt.met.queries.Inc()
	if failed > 0 {
		rt.met.partialQueries.Inc()
	}
	return MergeTopK(lists, topK), failed > 0, nil
}

// Insert routes the photo to its owning shard.
func (rt *Router) Insert(ctx context.Context, id uint64, img *simimg.Image) error {
	owner := rt.cfg.Ring.Owner(id)
	sctx, cancel := context.WithTimeout(ctx, rt.cfg.ShardTimeout)
	defer cancel()
	if err := rt.cfg.Shards[owner].Insert(sctx, id, img); err != nil {
		rt.met.insertErrors.Inc()
		return fmt.Errorf("router: shard %d (owner of %d): %w", owner, id, err)
	}
	rt.met.inserts.Inc()
	return nil
}

// Delete routes the deletion to the photo's owning shard.
func (rt *Router) Delete(ctx context.Context, id uint64) error {
	owner := rt.cfg.Ring.Owner(id)
	sctx, cancel := context.WithTimeout(ctx, rt.cfg.ShardTimeout)
	defer cancel()
	if err := rt.cfg.Shards[owner].Delete(sctx, id); err != nil {
		rt.met.insertErrors.Inc()
		return fmt.Errorf("router: shard %d (owner of %d): %w", owner, id, err)
	}
	rt.met.deletes.Inc()
	return nil
}

// ShardStats is one shard's row in the router's stats document.
type ShardStats struct {
	Shard   int    `json:"shard"`
	Healthy bool   `json:"healthy"`
	Error   string `json:"error,omitempty"`
	// Photos/Queries are the shard's own counters (zero when unreachable).
	Photos  int   `json:"photos"`
	Queries int64 `json:"queries"`
}

// Stats is the router's /v1/stats document: its own fan-out counters, the
// ring identity both tiers must agree on, and a per-shard health/corpus
// row (fetched live, under the per-shard timeout).
type Stats struct {
	Shards          int          `json:"shards"`
	ShardsHealthy   int          `json:"shards_healthy"`
	RingEpoch       uint64       `json:"ring_epoch"`
	RingFingerprint uint64       `json:"ring_fingerprint"`
	Queries         int64        `json:"queries"`
	QueryErrors     int64        `json:"query_errors"`
	PartialQueries  int64        `json:"partial_queries"`
	QuorumLost      int64        `json:"quorum_lost"`
	Inserts         int64        `json:"inserts"`
	InsertErrors    int64        `json:"insert_errors"`
	Deletes         int64        `json:"deletes"`
	ShardErrors     int64        `json:"shard_errors"`
	PhotosTotal     int          `json:"photos_total"`
	UptimeNs        int64        `json:"uptime_ns"`
	PerShard        []ShardStats `json:"per_shard"`
}

// Stats polls every shard (concurrently, under the shard timeout) and
// assembles the aggregate document.
func (rt *Router) Stats(ctx context.Context) Stats {
	st := Stats{
		Shards:          len(rt.cfg.Shards),
		RingEpoch:       rt.cfg.Ring.Epoch(),
		RingFingerprint: rt.cfg.Ring.Fingerprint(),
		Queries:         rt.met.queries.Load(),
		QueryErrors:     rt.met.queryErrors.Load(),
		PartialQueries:  rt.met.partialQueries.Load(),
		QuorumLost:      rt.met.quorumLost.Load(),
		Inserts:         rt.met.inserts.Load(),
		InsertErrors:    rt.met.insertErrors.Load(),
		Deletes:         rt.met.deletes.Load(),
		ShardErrors:     rt.met.shardErrors.Load(),
		UptimeNs:        time.Since(rt.start).Nanoseconds(),
		PerShard:        make([]ShardStats, len(rt.cfg.Shards)),
	}
	var wg sync.WaitGroup
	for i, shard := range rt.cfg.Shards {
		wg.Add(1)
		go func(i int, shard Backend) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, rt.cfg.ShardTimeout)
			defer cancel()
			row := ShardStats{Shard: i}
			if ss, err := shard.Stats(sctx); err != nil {
				row.Error = err.Error()
			} else {
				row.Healthy = true
				row.Photos = ss.Photos
				row.Queries = ss.Queries
			}
			st.PerShard[i] = row
		}(i, shard)
	}
	wg.Wait()
	for _, row := range st.PerShard {
		if row.Healthy {
			st.ShardsHealthy++
			st.PhotosTotal += row.Photos
		}
	}
	return st
}

// Healthy reports whether a majority of shards answers its health check.
func (rt *Router) Healthy(ctx context.Context) error {
	healthy := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, shard := range rt.cfg.Shards {
		wg.Add(1)
		go func(shard Backend) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, rt.cfg.ShardTimeout)
			defer cancel()
			if shard.Healthy(sctx) == nil {
				mu.Lock()
				healthy++
				mu.Unlock()
			}
		}(shard)
	}
	wg.Wait()
	if healthy*2 <= len(rt.cfg.Shards) {
		return fmt.Errorf("%w: %d of %d shards healthy", ErrQuorumLost, healthy, len(rt.cfg.Shards))
	}
	return nil
}
