// Package router is the stateless front tier of the FAST cluster: it owns
// no index, only a placement ring and a client per shard. Queries fan out
// across the ring's replica sets under a configurable read policy and the
// per-shard topK lists are merged with exactly the engine's ordering, so a
// routed answer is byte-identical to what a single node holding the union
// corpus would return whenever the responding shards cover the key space
// (the property test and the CI smoke jobs enforce this). Writes go to
// every owner the ring assigns: the primary synchronously (its ack is the
// caller's ack), the replicas through per-shard async apply queues whose
// depth is the replication lag /v1/stats reports.
//
// Replica reads. With replica factor n, every id lives on its n ring-order
// owners, so ANY subset of Shards-n+1 shards covers the whole id space
// (placement.Ring.Covers — an n-owner set cannot be disjoint from it).
// The router exploits that pigeonhole fact twice:
//
//   - Failure tolerance: a query is full (partial:false) as long as the
//     shards that answered cover; with n ≥ 2 any single shard can die
//     mid-fan-out and the merged answer is still byte-identical to the
//     oracle, because every entry the dead shard held has a bit-identical
//     copy on a surviving owner and the merge dedups by id.
//   - Read scaling: the round-robin and hedged policies deliberately skip
//     a rotating window of n-1 shards per query (preferring to skip stale
//     ones), cutting per-shard query load to (Shards-n+1)/Shards of the
//     primary policy's while answers stay byte-identical.
//
// Freshness. Mutation acks carry the shard engine's published view epoch;
// the router keeps, per shard, the largest epoch it has seen acknowledged
// plus the count of async applies still in flight (and failed). A shard's
// answer is fresh iff nothing is pending or failed for it and the epoch
// its answer reports has reached the acknowledged floor. A query whose
// fresh responders cover is served from exactly those; one that needs a
// stale shard to cover answers with stale:true; one whose responders do
// not cover at all answers partial:true (or fails with ErrQuorumLost when
// a majority is down).
//
// Reconfiguration. During a live ring update (see internal/server/ring.go
// for the shard side) the router holds both rings: reads fan out to every
// shard and must cover under BOTH rings to count as full, and writes go to
// the union of both rings' owner sets, so no window exists where a key is
// unreadable or a new owner misses a write.
package router

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/failpoint"
	"github.com/fastrepro/fast/internal/metrics"
	"github.com/fastrepro/fast/internal/placement"
	"github.com/fastrepro/fast/internal/server"
	"github.com/fastrepro/fast/internal/simimg"
)

// Answer is one shard's reply to a fanned-out query: the ranked results
// plus the freshness token (the shard engine's published view epoch
// sampled before the query ran).
type Answer struct {
	Results []core.SearchResult
	Epoch   uint64
}

// Backend is one shard as the router sees it: the subset of the fastd
// client surface fan-out needs. Mutations return the shard's post-ack view
// epoch (the freshness floor later answers are judged against).
// ClientBackend adapts *client.Client; tests substitute in-process fakes.
type Backend interface {
	Query(ctx context.Context, img *simimg.Image, topK int) (Answer, error)
	Insert(ctx context.Context, id uint64, img *simimg.Image) (uint64, error)
	Delete(ctx context.Context, id uint64) (uint64, error)
	Stats(ctx context.Context) (server.Stats, error)
	Healthy(ctx context.Context) error
}

// ReadPolicy selects how a query picks its wave-1 shard targets.
type ReadPolicy string

const (
	// ReadPrimary queries every shard — the pre-replica behavior. Maximum
	// redundancy, no read scaling.
	ReadPrimary ReadPolicy = "primary"
	// ReadRoundRobin skips a rotating window of Replicas-1 shards per
	// query (stale shards skipped first), which still covers by the
	// pigeonhole bound. A failed or stale target triggers a repair wave to
	// the skipped shards, so answers stay full whenever coverage is
	// achievable.
	ReadRoundRobin ReadPolicy = "round-robin"
	// ReadHedged is round-robin plus a hedge: targets that have not
	// answered within HedgeTimeout cause the skipped shards to be queried
	// early (racing the stragglers) instead of waiting for the per-shard
	// timeout to expire.
	ReadHedged ReadPolicy = "hedged"
)

// ParseReadPolicy converts a flag string to a ReadPolicy.
func ParseReadPolicy(s string) (ReadPolicy, error) {
	switch ReadPolicy(strings.ToLower(s)) {
	case "", ReadPrimary:
		return ReadPrimary, nil
	case ReadRoundRobin:
		return ReadRoundRobin, nil
	case ReadHedged:
		return ReadHedged, nil
	}
	return "", fmt.Errorf("router: unknown read policy %q (want primary, round-robin or hedged)", s)
}

// Config parameterizes a Router.
type Config struct {
	// Shards are the backends, indexed exactly as the placement ring's
	// shard numbers. Required, at least one.
	Shards []Backend
	// Ring is the placement ring routing photo IDs to shards. Its shard
	// count must equal len(Shards). Required.
	Ring *placement.Ring
	// Replicas is the replica factor the cluster runs at: every id lives
	// on its Replicas ring-order owners. The shards must have been
	// subset with the same factor. 0 means 1 (no replication); clamped to
	// the shard count.
	Replicas int
	// Policy is the read policy; "" means ReadPrimary.
	Policy ReadPolicy
	// ShardTimeout bounds each per-shard call; 0 means 2s.
	ShardTimeout time.Duration
	// HedgeTimeout is how long the hedged policy waits for wave-1 targets
	// before launching the skipped shards; 0 means ShardTimeout/4.
	HedgeTimeout time.Duration
	// TopKLimit caps per-query result budgets; 0 means 1000 (the serving
	// layer's own default).
	TopKLimit int
	// ApplyQueue bounds each shard's async replica-apply queue; an insert
	// or delete that finds a replica's queue full marks that replica dirty
	// (stale for reads) instead of blocking the caller. 0 means 4096.
	ApplyQueue int
	// ApplyRetries is how many times a failed async apply is retried
	// before the replica is marked dirty; 0 means 2.
	ApplyRetries int
}

// ErrQuorumLost is returned when a majority of shards failed to answer a
// query; wrapped errors carry the per-shard failures.
var ErrQuorumLost = errors.New("router: a majority of shards is unreachable")

// ReadMeta annotates a routed answer. Partial: the responding shards do
// not cover the key space, results may be missing entries. Stale: the
// answer is complete but required a shard with unacknowledged replica
// writes, so very recent mutations may be unreflected. Hedged/Repaired:
// the skipped shards were pulled in early (hedge) or after wave 1 failed
// to cover with fresh responders (repair).
type ReadMeta struct {
	Partial  bool
	Stale    bool
	Hedged   bool
	Repaired bool
}

// shardHealth is the router's per-shard freshness ledger.
type shardHealth struct {
	pending  atomic.Int64  // async applies enqueued, not yet finished
	applied  atomic.Int64  // async applies completed successfully
	failed   atomic.Int64  // applies failed or dropped since the last ring commit (dirty while > 0)
	minEpoch atomic.Uint64 // largest acknowledged view epoch (freshness floor)
}

// applyOp is one queued async replica mutation.
type applyOp struct {
	del bool
	id  uint64
	img *simimg.Image
}

// Router fans queries out across replica sets and replicates mutations.
type Router struct {
	cfg Config

	// Placement state; next is non-nil during a live reconfiguration.
	ringMu       sync.RWMutex
	ring         *placement.Ring
	replicas     int
	next         *placement.Ring
	nextReplicas int

	rr      atomic.Uint64 // round-robin rotation counter
	health  []shardHealth
	applyQ  []chan applyOp
	applyWG sync.WaitGroup
	stop    chan struct{}
	closed  sync.Once

	met struct {
		queries        metrics.Counter
		queryErrors    metrics.Counter
		partialQueries metrics.Counter
		staleQueries   metrics.Counter
		hedgedQueries  metrics.Counter
		repairWaves    metrics.Counter
		quorumLost     metrics.Counter
		inserts        metrics.Counter
		insertErrors   metrics.Counter
		deletes        metrics.Counter
		deleteErrors   metrics.Counter
		shardErrors    metrics.Counter
		asyncApplied   metrics.Counter
		asyncErrors    metrics.Counter
		asyncDropped   metrics.Counter
		ringUpdates    metrics.Counter
	}
	start time.Time
}

// New validates cfg and builds a Router. Callers own the returned router's
// apply workers and must Close it when done.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("router: config needs at least one shard")
	}
	if cfg.Ring == nil {
		return nil, errors.New("router: config needs a placement ring")
	}
	if cfg.Ring.Shards() != len(cfg.Shards) {
		return nil, fmt.Errorf("router: ring has %d shards, config has %d backends",
			cfg.Ring.Shards(), len(cfg.Shards))
	}
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = 2 * time.Second
	}
	if cfg.HedgeTimeout <= 0 {
		cfg.HedgeTimeout = cfg.ShardTimeout / 4
	}
	if cfg.TopKLimit <= 0 {
		cfg.TopKLimit = 1000
	}
	if cfg.ApplyQueue <= 0 {
		cfg.ApplyQueue = 4096
	}
	if cfg.ApplyRetries <= 0 {
		cfg.ApplyRetries = 2
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.Replicas > len(cfg.Shards) {
		cfg.Replicas = len(cfg.Shards)
	}
	if _, err := ParseReadPolicy(string(cfg.Policy)); err != nil {
		return nil, err
	}
	if cfg.Policy == "" {
		cfg.Policy = ReadPrimary
	}
	rt := &Router{
		cfg:      cfg,
		ring:     cfg.Ring,
		replicas: cfg.Replicas,
		health:   make([]shardHealth, len(cfg.Shards)),
		applyQ:   make([]chan applyOp, len(cfg.Shards)),
		stop:     make(chan struct{}),
		start:    time.Now(),
	}
	for i := range rt.applyQ {
		rt.applyQ[i] = make(chan applyOp, cfg.ApplyQueue)
		rt.applyWG.Add(1)
		go rt.applyWorker(i, rt.applyQ[i])
	}
	return rt, nil
}

// Close stops the async apply workers. Queued-but-unapplied replica writes
// are abandoned (the affected replicas stay marked dirty); call
// QuiesceReplicas first when the queues must drain.
func (rt *Router) Close() {
	rt.closed.Do(func() {
		close(rt.stop)
		rt.applyWG.Wait()
	})
}

// Ring exposes the current placement ring (the HTTP layer reports its
// epoch and fingerprint in /v1/stats so operators can verify ring
// agreement).
func (rt *Router) Ring() *placement.Ring {
	rt.ringMu.RLock()
	defer rt.ringMu.RUnlock()
	return rt.ring
}

// ringState snapshots the placement state one operation runs under.
func (rt *Router) ringState() (cur *placement.Ring, n int, next *placement.Ring, nn int) {
	rt.ringMu.RLock()
	defer rt.ringMu.RUnlock()
	return rt.ring, rt.replicas, rt.next, rt.nextReplicas
}

// MergeTopK merges per-shard topK lists into the global topK with exactly
// the engine's result ordering: score descending, ID ascending on ties.
// Replicas hold bit-identical copies of shared entries, so the merge
// dedups by ID (keeping the first, i.e. highest-ranked, occurrence):
// overlap degrades to correct answers rather than duplicates. The global
// topK is always a subset of the union of per-shard topKs: a result
// ranking in the global top k must rank in the top k of its own shard.
func MergeTopK(lists [][]core.SearchResult, topK int) []core.SearchResult {
	n := 0
	for _, l := range lists {
		n += len(l)
	}
	merged := make([]core.SearchResult, 0, n)
	for _, l := range lists {
		merged = append(merged, l...)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Score != merged[j].Score {
			return merged[i].Score > merged[j].Score
		}
		return merged[i].ID < merged[j].ID
	})
	out := merged[:0]
	seen := make(map[uint64]struct{}, len(merged))
	for _, r := range merged {
		if _, dup := seen[r.ID]; dup {
			continue
		}
		seen[r.ID] = struct{}{}
		out = append(out, r)
		if len(out) == topK {
			break
		}
	}
	return out
}

// shardAnswer is one shard's slot in a query's fan-out state. Each slot is
// written by at most one goroutine per wave and read only after that
// wave's WaitGroup settles.
type shardAnswer struct {
	queried bool
	ok      bool
	results []core.SearchResult
	epoch   uint64
	err     error
}

// isFresh reports whether shard s's answer carrying the given epoch
// reflects every mutation the router has had acknowledged: no async
// applies in flight or failed for it, and the answer's view has reached
// the acknowledged epoch floor.
func (rt *Router) isFresh(s int, epoch uint64) bool {
	h := &rt.health[s]
	return h.pending.Load() == 0 && h.failed.Load() == 0 && epoch >= h.minEpoch.Load()
}

// noteAck raises shard s's freshness floor to the acknowledged epoch.
func (rt *Router) noteAck(s int, epoch uint64) {
	h := &rt.health[s]
	for {
		cur := h.minEpoch.Load()
		if epoch <= cur || h.minEpoch.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// pickTargets chooses the wave-1 shards for a scaled read: all shards
// minus a window of n-1, preferring to skip stale shards (their answers
// could not count toward fresh coverage anyway) and rotating the skip
// window across queries for the fresh ones. The skipped shards are the
// reserves the hedge and the repair wave draw from.
func (rt *Router) pickTargets(n int) (targets, reserves []int) {
	S := len(rt.cfg.Shards)
	start := int(rt.rr.Add(1) % uint64(S))
	stale := make([]int, 0, S)
	fresh := make([]int, 0, S)
	for i := 0; i < S; i++ {
		s := (start + i) % S
		h := &rt.health[s]
		if h.pending.Load() > 0 || h.failed.Load() > 0 {
			stale = append(stale, s)
		} else {
			fresh = append(fresh, s)
		}
	}
	order := append(stale, fresh...)
	drop := n - 1
	return order[drop:], order[:drop]
}

// covers reports whether the shard set selected by have covers the whole
// key space under the query's placement state — both rings during a
// reconfiguration window, since entries are only guaranteed present at
// their old owners before shards commit and at their new owners after.
func covers(cur *placement.Ring, n int, next *placement.Ring, nn int, have func(int) bool) bool {
	if !cur.Covers(n, have) {
		return false
	}
	return next == nil || next.Covers(nn, have)
}

// queryWave fans img to the not-yet-queried shards in targets, writing
// into answers. For the hedged policy wave 1 also receives reserves: if
// the targets have not all answered within HedgeTimeout the reserves are
// launched to race them.
func (rt *Router) queryWave(ctx context.Context, img *simimg.Image, topK int, targets, reserves []int, answers []shardAnswer) (hedged bool) {
	launch := func(wg *sync.WaitGroup, s int) {
		a := &answers[s]
		if a.queried {
			return
		}
		a.queried = true
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Failpoint: Error deterministically fails this shard's leg
			// (driving the partial/stale/repair paths), Delay simulates a
			// slow shard racing the per-shard and hedge timeouts.
			if err := failpoint.Eval(failpoint.RouterFanout); err != nil {
				a.err = err
				return
			}
			sctx, cancel := context.WithTimeout(ctx, rt.cfg.ShardTimeout)
			defer cancel()
			ans, err := rt.cfg.Shards[s].Query(sctx, img, topK)
			if err != nil {
				a.err = err
				return
			}
			a.ok, a.results, a.epoch = true, ans.Results, ans.Epoch
		}()
	}
	var wg1, wg2 sync.WaitGroup
	for _, s := range targets {
		launch(&wg1, s)
	}
	if len(reserves) > 0 {
		wg1done := make(chan struct{})
		go func() { wg1.Wait(); close(wg1done) }()
		timer := time.NewTimer(rt.cfg.HedgeTimeout)
		select {
		case <-wg1done:
		case <-timer.C:
			// Failpoint: Error suppresses the hedge, so the slow leg must
			// be repaired by the post-wave failure fallback instead.
			if failpoint.Eval(failpoint.RouterHedge) == nil {
				hedged = true
				for _, s := range reserves {
					launch(&wg2, s)
				}
			}
		}
		timer.Stop()
	}
	wg1.Wait()
	wg2.Wait()
	return hedged
}

// Query fans the probe across the replica sets under the configured read
// policy and merges. See ReadMeta for the partial/stale semantics; when
// the responding shards miss coverage AND form at most half the cluster,
// the error wraps ErrQuorumLost.
func (rt *Router) Query(ctx context.Context, img *simimg.Image, topK int) ([]core.SearchResult, ReadMeta, error) {
	if topK <= 0 {
		topK = 50
	}
	if topK > rt.cfg.TopKLimit {
		topK = rt.cfg.TopKLimit
	}
	cur, n, next, nn := rt.ringState()
	S := len(rt.cfg.Shards)
	answers := make([]shardAnswer, S)
	all := make([]int, S)
	for i := range all {
		all[i] = i
	}

	// Wave 1: the policy's targets. Scaled reads are only attempted in
	// steady state — during a reconfiguration window every query double-
	// reads all shards, because coverage must hold under both rings.
	targets, reserves := all, []int(nil)
	var meta ReadMeta
	if next == nil && n > 1 && rt.cfg.Policy != ReadPrimary {
		// Failpoint: Error abandons the scaled pick, falling back to the
		// full fan-out — never a wrong answer, only lost read scaling.
		if failpoint.Eval(failpoint.RouterReplicaPick) == nil {
			targets, reserves = rt.pickTargets(n)
		}
	}
	if rt.cfg.Policy != ReadHedged {
		rt.queryWave(ctx, img, topK, targets, nil, answers)
	} else {
		meta.Hedged = rt.queryWave(ctx, img, topK, targets, reserves, answers)
	}

	freshOK := func(s int) bool { return answers[s].ok && rt.isFresh(s, answers[s].epoch) }
	anyOK := func(s int) bool { return answers[s].ok }

	// Repair wave: if the fresh responders do not cover, pull in every
	// shard not yet queried before classifying the answer. This is what
	// keeps round-robin full when its rotating window hid the only live
	// owner of some arc, and what lets any policy route around a shard
	// that died mid-fan-out.
	if !covers(cur, n, next, nn, freshOK) {
		unqueried := make([]int, 0, S)
		for s := range answers {
			if !answers[s].queried {
				unqueried = append(unqueried, s)
			}
		}
		if len(unqueried) > 0 {
			meta.Repaired = true
			rt.met.repairWaves.Inc()
			rt.queryWave(ctx, img, topK, unqueried, nil, answers)
		}
	}

	var shardErrs []error
	okCount := 0
	for s := range answers {
		if answers[s].ok {
			okCount++
		} else if answers[s].queried {
			rt.met.shardErrors.Inc()
			shardErrs = append(shardErrs, fmt.Errorf("shard %d: %w", s, answers[s].err))
		}
	}

	// Classify: fresh-covered answers merge only fresh shards (a stale
	// list could still contain an entry whose delete is in flight);
	// covered-but-stale answers merge everything that responded and are
	// flagged; uncovered answers are partial, or a quorum error when at
	// most half the cluster responded.
	var pick func(int) bool
	switch {
	case covers(cur, n, next, nn, freshOK):
		pick = freshOK
	case covers(cur, n, next, nn, anyOK):
		pick = anyOK
		meta.Stale = true
	default:
		if okCount*2 <= S {
			rt.met.quorumLost.Inc()
			rt.met.queryErrors.Inc()
			return nil, meta, fmt.Errorf("%w: %d of %d shards answered: %v",
				ErrQuorumLost, okCount, S, errors.Join(shardErrs...))
		}
		pick = anyOK
		meta.Partial = true
	}
	if err := failpoint.Eval(failpoint.RouterMerge); err != nil {
		rt.met.queryErrors.Inc()
		return nil, meta, fmt.Errorf("router: merging shard answers: %w", err)
	}
	// Ownership fence: each shard's list is filtered to the ids the
	// placement actually assigns it (under either ring during a
	// transition). Placement is authoritative for reads, so a stray copy —
	// an async replica apply that landed after its target shard shed the
	// region, or a duplicate left behind by an aborted migration — can
	// never surface in an answer. In steady state every entry a shard
	// serves is one it owns and the fence is a no-op.
	lists := make([][]core.SearchResult, 0, okCount)
	for s := range answers {
		if pick(s) {
			lists = append(lists, ownedResults(answers[s].results, s, cur, n, next, nn))
		}
	}
	rt.met.queries.Inc()
	if meta.Partial {
		rt.met.partialQueries.Inc()
	}
	if meta.Stale {
		rt.met.staleQueries.Inc()
	}
	if meta.Hedged {
		rt.met.hedgedQueries.Inc()
	}
	return MergeTopK(lists, topK), meta, nil
}

// ownedResults filters one shard's result list down to the ids the
// placement assigns that shard — under the current ring, or under either
// ring while a reconfiguration is in flight. Lists are usually entirely
// owned (the common case returns the input slice untouched).
func ownedResults(res []core.SearchResult, s int, cur *placement.Ring, n int, next *placement.Ring, nn int) []core.SearchResult {
	owned := func(id uint64) bool {
		return cur.OwnedBy(id, n, s) || (next != nil && next.OwnedBy(id, nn, s))
	}
	for i := range res {
		if !owned(res[i].ID) {
			out := make([]core.SearchResult, i, len(res))
			copy(out, res[:i])
			for _, r := range res[i+1:] {
				if owned(r.ID) {
					out = append(out, r)
				}
			}
			return out
		}
	}
	return res
}

// writeOwners returns the shards a mutation of id must reach, primary
// (the current ring's first owner) first. During a reconfiguration window
// it is the union of both rings' owner sets, so entries keep landing where
// the old ring can read them AND where the new ring will.
func (rt *Router) writeOwners(id uint64) []int {
	cur, n, next, nn := rt.ringState()
	owners := cur.Owners(id, n)
	if next != nil {
		for _, s := range next.Owners(id, nn) {
			dup := false
			for _, o := range owners {
				if o == s {
					dup = true
					break
				}
			}
			if !dup {
				owners = append(owners, s)
			}
		}
	}
	return owners
}

// Insert routes the photo to its owning replica set: the primary
// synchronously (its failure is the caller's failure), the other owners
// through the async apply queues.
func (rt *Router) Insert(ctx context.Context, id uint64, img *simimg.Image) error {
	owners := rt.writeOwners(id)
	primary := owners[0]
	sctx, cancel := context.WithTimeout(ctx, rt.cfg.ShardTimeout)
	defer cancel()
	epoch, err := rt.cfg.Shards[primary].Insert(sctx, id, img)
	if err != nil {
		rt.met.insertErrors.Inc()
		return fmt.Errorf("router: shard %d (owner of %d): %w", primary, id, err)
	}
	rt.noteAck(primary, epoch)
	rt.met.inserts.Inc()
	for _, s := range owners[1:] {
		rt.enqueueApply(s, applyOp{id: id, img: img})
	}
	return nil
}

// Delete routes the deletion to the photo's owning replica set, primary
// synchronously and the other owners async, like Insert.
func (rt *Router) Delete(ctx context.Context, id uint64) error {
	owners := rt.writeOwners(id)
	primary := owners[0]
	sctx, cancel := context.WithTimeout(ctx, rt.cfg.ShardTimeout)
	defer cancel()
	epoch, err := rt.cfg.Shards[primary].Delete(sctx, id)
	if err != nil {
		rt.met.deleteErrors.Inc()
		return fmt.Errorf("router: shard %d (owner of %d): %w", primary, id, err)
	}
	rt.noteAck(primary, epoch)
	rt.met.deletes.Inc()
	for _, s := range owners[1:] {
		rt.enqueueApply(s, applyOp{del: true, id: id})
	}
	return nil
}

// enqueueApply hands an async replica mutation to shard s's apply worker.
// A full queue marks the replica dirty and drops the op instead of
// blocking the caller: reads stop trusting the replica immediately, and
// repair is a chunk-diff catch-up (or the next ring commit), not a stalled
// ingest path.
func (rt *Router) enqueueApply(s int, op applyOp) {
	h := &rt.health[s]
	h.pending.Add(1)
	select {
	case rt.applyQ[s] <- op:
	default:
		h.pending.Add(-1)
		h.failed.Add(1)
		rt.met.asyncDropped.Inc()
	}
}

// applyWorker drains shard s's apply queue in FIFO order — a replica sees
// an id's insert before its delete exactly because one goroutine owns the
// shard's queue.
func (rt *Router) applyWorker(s int, q chan applyOp) {
	defer rt.applyWG.Done()
	for {
		select {
		case op := <-q:
			rt.applyOne(s, op)
		case <-rt.stop:
			return
		}
	}
}

// applyOne applies a replica mutation with bounded retries. "Already
// indexed" (for inserts) and "not indexed" (for deletes) replies count as
// convergence, not failure: a ring migration or an operator catch-up may
// have landed the entry's state before the queue drained.
func (rt *Router) applyOne(s int, op applyOp) {
	h := &rt.health[s]
	defer h.pending.Add(-1)
	var epoch uint64
	var err error
	for attempt := 0; attempt <= rt.cfg.ApplyRetries; attempt++ {
		sctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ShardTimeout)
		if op.del {
			epoch, err = rt.cfg.Shards[s].Delete(sctx, op.id)
		} else {
			epoch, err = rt.cfg.Shards[s].Insert(sctx, op.id, op.img)
		}
		cancel()
		if err == nil {
			break
		}
		msg := err.Error()
		if (!op.del && strings.Contains(msg, "already indexed")) ||
			(op.del && strings.Contains(msg, "not indexed")) {
			err = nil
			epoch = 0 // converged, but no fresh epoch to raise the floor with
			break
		}
	}
	if err != nil {
		h.failed.Add(1)
		rt.met.asyncErrors.Inc()
		return
	}
	h.applied.Add(1)
	rt.met.asyncApplied.Inc()
	if epoch > 0 {
		rt.noteAck(s, epoch)
	}
}

// QuiesceReplicas blocks until every async apply queue is empty (or ctx
// expires) — the barrier tests and operators use before demanding
// byte-identical reads from every replica.
func (rt *Router) QuiesceReplicas(ctx context.Context) error {
	for {
		pending := int64(0)
		for i := range rt.health {
			pending += rt.health[i].pending.Load()
		}
		if pending == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("router: %d replica applies still pending: %w", pending, ctx.Err())
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// ShardStats is one shard's row in the router's stats document.
type ShardStats struct {
	Shard   int    `json:"shard"`
	Healthy bool   `json:"healthy"`
	Error   string `json:"error,omitempty"`
	// Photos/Queries are the shard's own counters (zero when unreachable).
	Photos  int   `json:"photos"`
	Queries int64 `json:"queries"`
	// Replica freshness: async applies in flight / completed / failed for
	// this shard, the largest acknowledged view epoch, and whether the
	// router currently considers the replica synced (nothing pending or
	// failed). ApplyPending is the per-replica freshness lag.
	ApplyPending int64  `json:"apply_pending"`
	ApplyDone    int64  `json:"apply_done"`
	ApplyErrors  int64  `json:"apply_errors"`
	AckedEpoch   uint64 `json:"acked_epoch"`
	Synced       bool   `json:"synced"`
}

// Stats is the router's /v1/stats document: its own fan-out counters, the
// ring identity both tiers must agree on, the replica/policy state, and a
// per-shard health/freshness row (fetched live, under the per-shard
// timeout).
type Stats struct {
	Shards          int    `json:"shards"`
	ShardsHealthy   int    `json:"shards_healthy"`
	Replicas        int    `json:"replicas"`
	ReadPolicy      string `json:"read_policy"`
	RingEpoch       uint64 `json:"ring_epoch"`
	RingFingerprint uint64 `json:"ring_fingerprint"`
	// RingTransition/RingNextEpoch report a live reconfiguration window
	// (double-read/double-write active).
	RingTransition bool         `json:"ring_transition"`
	RingNextEpoch  uint64       `json:"ring_next_epoch,omitempty"`
	RingUpdates    int64        `json:"ring_updates"`
	Queries        int64        `json:"queries"`
	QueryErrors    int64        `json:"query_errors"`
	PartialQueries int64        `json:"partial_queries"`
	StaleQueries   int64        `json:"stale_queries"`
	HedgedQueries  int64        `json:"hedged_queries"`
	RepairWaves    int64        `json:"repair_waves"`
	QuorumLost     int64        `json:"quorum_lost"`
	Inserts        int64        `json:"inserts"`
	InsertErrors   int64        `json:"insert_errors"`
	Deletes        int64        `json:"deletes"`
	DeleteErrors   int64        `json:"delete_errors"`
	ShardErrors    int64        `json:"shard_errors"`
	AsyncApplied   int64        `json:"async_applied"`
	AsyncPending   int64        `json:"async_pending"`
	AsyncErrors    int64        `json:"async_errors"`
	AsyncDropped   int64        `json:"async_dropped"`
	PhotosTotal    int          `json:"photos_total"`
	UptimeNs       int64        `json:"uptime_ns"`
	PerShard       []ShardStats `json:"per_shard"`
}

// Stats polls every shard (concurrently, under the shard timeout) and
// assembles the aggregate document.
func (rt *Router) Stats(ctx context.Context) Stats {
	cur, n, next, _ := rt.ringState()
	st := Stats{
		Shards:          len(rt.cfg.Shards),
		Replicas:        n,
		ReadPolicy:      string(rt.cfg.Policy),
		RingEpoch:       cur.Epoch(),
		RingFingerprint: cur.Fingerprint(),
		RingTransition:  next != nil,
		RingUpdates:     rt.met.ringUpdates.Load(),
		Queries:         rt.met.queries.Load(),
		QueryErrors:     rt.met.queryErrors.Load(),
		PartialQueries:  rt.met.partialQueries.Load(),
		StaleQueries:    rt.met.staleQueries.Load(),
		HedgedQueries:   rt.met.hedgedQueries.Load(),
		RepairWaves:     rt.met.repairWaves.Load(),
		QuorumLost:      rt.met.quorumLost.Load(),
		Inserts:         rt.met.inserts.Load(),
		InsertErrors:    rt.met.insertErrors.Load(),
		Deletes:         rt.met.deletes.Load(),
		DeleteErrors:    rt.met.deleteErrors.Load(),
		ShardErrors:     rt.met.shardErrors.Load(),
		AsyncApplied:    rt.met.asyncApplied.Load(),
		AsyncErrors:     rt.met.asyncErrors.Load(),
		AsyncDropped:    rt.met.asyncDropped.Load(),
		UptimeNs:        time.Since(rt.start).Nanoseconds(),
		PerShard:        make([]ShardStats, len(rt.cfg.Shards)),
	}
	if next != nil {
		st.RingNextEpoch = next.Epoch()
	}
	var wg sync.WaitGroup
	for i, shard := range rt.cfg.Shards {
		wg.Add(1)
		go func(i int, shard Backend) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, rt.cfg.ShardTimeout)
			defer cancel()
			row := ShardStats{Shard: i}
			if ss, err := shard.Stats(sctx); err != nil {
				row.Error = err.Error()
			} else {
				row.Healthy = true
				row.Photos = ss.Photos
				row.Queries = ss.Queries
			}
			h := &rt.health[i]
			row.ApplyPending = h.pending.Load()
			row.ApplyDone = h.applied.Load()
			row.ApplyErrors = h.failed.Load()
			row.AckedEpoch = h.minEpoch.Load()
			row.Synced = row.ApplyPending == 0 && row.ApplyErrors == 0
			st.PerShard[i] = row
		}(i, shard)
	}
	wg.Wait()
	for _, row := range st.PerShard {
		if row.Healthy {
			st.ShardsHealthy++
			st.PhotosTotal += row.Photos
		}
		st.AsyncPending += row.ApplyPending
	}
	return st
}

// Healthy reports whether a majority of shards answers its health check.
func (rt *Router) Healthy(ctx context.Context) error {
	healthy := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, shard := range rt.cfg.Shards {
		wg.Add(1)
		go func(shard Backend) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, rt.cfg.ShardTimeout)
			defer cancel()
			if shard.Healthy(sctx) == nil {
				mu.Lock()
				healthy++
				mu.Unlock()
			}
		}(shard)
	}
	wg.Wait()
	if healthy*2 <= len(rt.cfg.Shards) {
		return fmt.Errorf("%w: %d of %d shards healthy", ErrQuorumLost, healthy, len(rt.cfg.Shards))
	}
	return nil
}
