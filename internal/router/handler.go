package router

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"github.com/fastrepro/fast/internal/server"
)

// The router's HTTP surface speaks the same /v1 wire format as a single
// fastd (internal/server/wire.go), so fastctl and internal/client work
// against a router unchanged. The one addition is the "partial" flag in
// query responses; the subtractions are the snapshot/restore endpoints,
// which are per-shard concerns (a router holds no index to snapshot).

// maxRouterBody bounds request bodies (probes and inserts are single
// images; the serving layer's own default exists for whole-snapshot
// restores the router doesn't accept).
const maxRouterBody = 64 << 20

// Handler returns the router's /v1 mux.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/v1/query", rt.handleQuery)
	mux.HandleFunc("/v1/insert", rt.handleInsert)
	mux.HandleFunc("/v1/delete", rt.handleDelete)
	mux.HandleFunc("/v1/ring", rt.handleRing)
	mux.HandleFunc("/v1/stats", rt.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, server.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func decode(w http.ResponseWriter, r *http.Request, body interface{}) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRouterBody))
	if err := dec.Decode(body); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return false
	}
	return true
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if err := rt.Healthy(r.Context()); err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req server.QueryRequest
	if !decode(w, r, &req) {
		return
	}
	img, err := server.DecodeImage(req.Image)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	results, meta, err := rt.Query(r.Context(), img, req.TopK)
	if err != nil {
		if errors.Is(err, ErrQuorumLost) {
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		} else {
			writeError(w, http.StatusUnprocessableEntity, "query failed: %v", err)
		}
		return
	}
	out := server.QueryResponse{
		Results: make([]server.WireResult, len(results)),
		Partial: meta.Partial,
		Stale:   meta.Stale,
	}
	for i, res := range results {
		out.Results[i] = server.WireResult{ID: res.ID, Score: res.Score}
	}
	writeJSON(w, http.StatusOK, out)
}

func (rt *Router) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req server.InsertRequest
	if !decode(w, r, &req) {
		return
	}
	img, err := server.DecodeImage(req.Image)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := rt.Insert(r.Context(), req.ID, img); err != nil {
		writeError(w, http.StatusUnprocessableEntity, "insert failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, server.OKResponse{OK: true})
}

func (rt *Router) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req server.DeleteRequest
	if !decode(w, r, &req) {
		return
	}
	if err := rt.Delete(r.Context(), req.ID); err != nil {
		writeError(w, http.StatusUnprocessableEntity, "delete failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, server.OKResponse{OK: true})
}

// handleRing serves GET (status) and POST (prepare/commit/abort) /v1/ring
// — the router's half of the live reconfiguration protocol.
func (rt *Router) handleRing(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, rt.RingStatus())
	case http.MethodPost:
		var req server.RingUpdateRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRouterBody))
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "decoding request: %v", err)
			return
		}
		st, err := rt.RingPhase(req)
		if err != nil {
			writeError(w, http.StatusConflict, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	default:
		writeError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, rt.Stats(r.Context()))
}
