package router

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/failpoint"
	"github.com/fastrepro/fast/internal/placement"
	"github.com/fastrepro/fast/internal/server"
	"github.com/fastrepro/fast/internal/simimg"
	"github.com/fastrepro/fast/internal/workload"
)

// engineBackend adapts an in-process engine to the Backend interface, so
// router semantics are tested against real index behavior without HTTP in
// the loop (the client/server wire is float64-exact by construction and is
// exercised by the experiment and the CI cluster smoke). The mutex guards
// the op logs: async replica applies hit a backend from worker goroutines.
type engineBackend struct {
	eng *core.Engine

	mu         sync.Mutex
	failReads  bool
	failWrites bool
	inserts    []uint64
	deletes    []uint64
}

var errShardDown = errors.New("shard down")

func (b *engineBackend) fail(write bool) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if write {
		return b.failWrites
	}
	return b.failReads
}

func (b *engineBackend) setFail(reads, writes bool) {
	b.mu.Lock()
	b.failReads, b.failWrites = reads, writes
	b.mu.Unlock()
}

func (b *engineBackend) Query(ctx context.Context, img *simimg.Image, topK int) (Answer, error) {
	if b.fail(false) {
		return Answer{}, errShardDown
	}
	// Same ordering as the serving layer: sample the freshness token
	// before the query so the claimed epoch is a lower bound on the view.
	epoch := b.eng.PublishedEpoch()
	res, err := b.eng.Query(img, topK)
	if err != nil {
		return Answer{}, err
	}
	return Answer{Results: res, Epoch: epoch}, nil
}

func (b *engineBackend) Insert(ctx context.Context, id uint64, img *simimg.Image) (uint64, error) {
	if b.fail(true) {
		return 0, errShardDown
	}
	if err := b.eng.Insert(&simimg.Photo{ID: id, Img: img}); err != nil {
		return 0, err
	}
	b.mu.Lock()
	b.inserts = append(b.inserts, id)
	b.mu.Unlock()
	return b.eng.PublishedEpoch(), nil
}

func (b *engineBackend) Delete(ctx context.Context, id uint64) (uint64, error) {
	if b.fail(true) {
		return 0, errShardDown
	}
	if err := b.eng.Delete(id); err != nil {
		return 0, err
	}
	b.mu.Lock()
	b.deletes = append(b.deletes, id)
	b.mu.Unlock()
	return b.eng.PublishedEpoch(), nil
}

func (b *engineBackend) insertLog() []uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]uint64(nil), b.inserts...)
}

func (b *engineBackend) deleteLog() []uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]uint64(nil), b.deletes...)
}

func (b *engineBackend) Stats(ctx context.Context) (server.Stats, error) {
	if b.fail(false) {
		return server.Stats{}, errShardDown
	}
	return server.Stats{Photos: b.eng.Len()}, nil
}

func (b *engineBackend) Healthy(ctx context.Context) error {
	if b.fail(false) {
		return errShardDown
	}
	return nil
}

// testCorpus builds the union dataset shared by the router tests.
func testCorpus(t *testing.T) *workload.Dataset {
	t.Helper()
	ds, err := workload.Generate(workload.Spec{
		Name: "router", Scenes: 6, Photos: 120, Subjects: 3,
		SubjectRate: 0.25, Resolution: 32, Seed: 17, SceneBase: 700,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// buildUnion builds the oracle engine over the whole corpus with group
// expansion disabled — expansion walks stored summaries of top hits across
// the whole index, which cannot be replicated by shards that each hold a
// subset, so cluster serving always runs with it off.
func buildUnion(t *testing.T, ds *workload.Dataset) *core.Engine {
	t.Helper()
	eng := core.NewEngine(core.Config{GroupExpand: -1})
	if _, err := eng.Build(ds.Photos); err != nil {
		t.Fatal(err)
	}
	return eng
}

// shardEngines derives per-shard engines from the union engine's
// serialization: every shard restores the same snapshot (same trained PCA
// basis, same LSH geometry — the preconditions for identical scores) and
// deletes the photos outside its Owners(id, replicas) membership. This
// mirrors exactly what fastd -shard-index -replicas does at bootstrap.
func shardEngines(t *testing.T, union *core.Engine, ring *placement.Ring, replicas int) []*core.Engine {
	t.Helper()
	var buf bytes.Buffer
	if _, err := union.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	engines := make([]*core.Engine, ring.Shards())
	for s := range engines {
		eng, err := core.ReadEngine(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range eng.IDs() {
			if !ring.OwnedBy(id, replicas, s) {
				if err := eng.Delete(id); err != nil {
					t.Fatal(err)
				}
			}
		}
		engines[s] = eng
	}
	return engines
}

func newTestRouter(t *testing.T, engines []*core.Engine, ring *placement.Ring, replicas int, policy ReadPolicy) (*Router, []*engineBackend) {
	t.Helper()
	backends := make([]*engineBackend, len(engines))
	shards := make([]Backend, len(engines))
	for i, eng := range engines {
		backends[i] = &engineBackend{eng: eng}
		shards[i] = backends[i]
	}
	rt, err := New(Config{Shards: shards, Ring: ring, Replicas: replicas, Policy: policy, ShardTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt, backends
}

func assertIdentical(t *testing.T, label string, got, want []core.SearchResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, oracle %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s rank %d: got {%d %.17g}, oracle {%d %.17g}",
				label, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
		}
	}
}

var allPolicies = []ReadPolicy{ReadPrimary, ReadRoundRobin, ReadHedged}

// TestRouterTopKByteIdenticalOverRandomSplits is the cluster's core
// correctness property: for random shard counts, ring seeds, and topK
// budgets, a query routed over the shard split and merged must return
// exactly — same IDs, bit-identical scores, same order — what the
// single-node union engine returns.
func TestRouterTopKByteIdenticalOverRandomSplits(t *testing.T) {
	ds := testCorpus(t)
	union := buildUnion(t, ds)
	qs, err := ds.Queries(6, 900)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4242))
	trials := 5
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		shards := 2 + rng.Intn(4) // 2..5
		ring, err := placement.New(placement.Config{
			Shards: shards,
			VNodes: 16 + rng.Intn(64),
			Seed:   rng.Uint64(),
		})
		if err != nil {
			t.Fatal(err)
		}
		rt, _ := newTestRouter(t, shardEngines(t, union, ring, 1), ring, 1, ReadPrimary)
		topK := 1 + rng.Intn(60)
		for qi, q := range qs {
			want, err := union.Query(q.Probe, topK)
			if err != nil {
				t.Fatal(err)
			}
			got, meta, err := rt.Query(context.Background(), q.Probe, topK)
			if err != nil {
				t.Fatalf("trial %d query %d: %v", trial, qi, err)
			}
			if meta.Partial {
				t.Fatalf("trial %d query %d flagged partial with all shards up", trial, qi)
			}
			assertIdentical(t, fmt.Sprintf("trial %d (shards=%d topK=%d) query %d", trial, shards, topK, qi), got, want)
		}
	}
}

// TestReplicaPoliciesByteIdenticalProperty is the replication property
// battery: over random shard counts × replica factors × ring seeds, every
// read policy must answer byte-identically to the single-node oracle —
// and with rf ≥ 2, killing any single randomly chosen shard mid-fan-out
// must still yield a FULL (partial=false) identical answer served from
// the surviving replicas.
func TestReplicaPoliciesByteIdenticalProperty(t *testing.T) {
	ds := testCorpus(t)
	union := buildUnion(t, ds)
	qs, err := ds.Queries(4, 903)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(90125))
	trials := 6
	if testing.Short() {
		trials = 2
	}
	const topK = 30
	for trial := 0; trial < trials; trial++ {
		shards := 2 + rng.Intn(4) // 2..5
		rf := 1 + rng.Intn(shards)
		if rf > 3 {
			rf = 3
		}
		ring, err := placement.New(placement.Config{
			Shards: shards,
			VNodes: 16 + rng.Intn(48),
			Seed:   rng.Uint64(),
		})
		if err != nil {
			t.Fatal(err)
		}
		engines := shardEngines(t, union, ring, rf)
		for _, pol := range allPolicies {
			rt, backends := newTestRouter(t, engines, ring, rf, pol)
			label := fmt.Sprintf("trial %d (shards=%d rf=%d policy=%s)", trial, shards, rf, pol)
			for qi, q := range qs {
				want, err := union.Query(q.Probe, topK)
				if err != nil {
					t.Fatal(err)
				}
				got, meta, err := rt.Query(context.Background(), q.Probe, topK)
				if err != nil {
					t.Fatalf("%s query %d: %v", label, qi, err)
				}
				if meta.Partial || meta.Stale {
					t.Fatalf("%s query %d flagged partial=%v stale=%v with all shards up",
						label, qi, meta.Partial, meta.Stale)
				}
				assertIdentical(t, fmt.Sprintf("%s query %d", label, qi), got, want)
			}
			// Kill one random shard: with rf ≥ 2 the survivors hold every
			// photo (any S-1 shards intersect every rf-owner window), so
			// the answer must stay full and identical.
			if rf >= 2 {
				victim := rng.Intn(shards)
				backends[victim].setFail(true, true)
				for qi, q := range qs {
					want, err := union.Query(q.Probe, topK)
					if err != nil {
						t.Fatal(err)
					}
					got, meta, err := rt.Query(context.Background(), q.Probe, topK)
					if err != nil {
						t.Fatalf("%s query %d with shard %d down: %v", label, qi, victim, err)
					}
					if meta.Partial {
						t.Fatalf("%s query %d flagged partial with shard %d down and rf=%d",
							label, qi, victim, rf)
					}
					assertIdentical(t, fmt.Sprintf("%s query %d (shard %d down)", label, qi, victim), got, want)
				}
				backends[victim].setFail(false, false)
			}
		}
	}
}

// TestReplicaKillAnySingleShardFullAnswer pins the fail-over guarantee
// exhaustively on the CI topology: 3 shards, rf=2, killing EACH shard in
// turn under EVERY policy still answers full and byte-identical.
func TestReplicaKillAnySingleShardFullAnswer(t *testing.T) {
	ds := testCorpus(t)
	union := buildUnion(t, ds)
	ring, err := placement.New(placement.Config{Shards: 3, VNodes: 32, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	engines := shardEngines(t, union, ring, 2)
	qs, err := ds.Queries(3, 904)
	if err != nil {
		t.Fatal(err)
	}
	const topK = 25
	for _, pol := range allPolicies {
		for victim := 0; victim < 3; victim++ {
			rt, backends := newTestRouter(t, engines, ring, 2, pol)
			backends[victim].setFail(true, true)
			for qi, q := range qs {
				want, err := union.Query(q.Probe, topK)
				if err != nil {
					t.Fatal(err)
				}
				got, meta, err := rt.Query(context.Background(), q.Probe, topK)
				if err != nil {
					t.Fatalf("policy %s, shard %d down, query %d: %v", pol, victim, qi, err)
				}
				if meta.Partial {
					t.Fatalf("policy %s, shard %d down, query %d: flagged partial at rf=2", pol, victim, qi)
				}
				assertIdentical(t, fmt.Sprintf("policy %s shard %d down query %d", pol, victim, qi), got, want)
			}
			rt.Close()
		}
	}
}

// TestReplicatedWritesReachAllOwners: every insert and delete lands
// synchronously on its primary and asynchronously on every other owner;
// after a quiesce each owner's engine holds (or no longer holds) the id.
func TestReplicatedWritesReachAllOwners(t *testing.T) {
	ds := testCorpus(t)
	union := buildUnion(t, ds)
	ring, err := placement.New(placement.Config{Shards: 4, VNodes: 32, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	const rf = 2
	rt, backends := newTestRouter(t, shardEngines(t, union, ring, rf), ring, rf, ReadRoundRobin)
	ctx := context.Background()

	ids := make([]uint64, 12)
	for i := range ids {
		ids[i] = uint64(500_000 + i)
		p := ds.FreshPhoto(ids[i], int64(i))
		if err := rt.Insert(ctx, ids[i], p.Img); err != nil {
			t.Fatalf("Insert %d: %v", ids[i], err)
		}
	}
	qctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := rt.QuiesceReplicas(qctx); err != nil {
		t.Fatalf("quiesce after inserts: %v", err)
	}
	for _, id := range ids {
		owners := ring.Owners(id, rf)
		for s, b := range backends {
			owned := ring.OwnedBy(id, rf, s)
			if owned != b.eng.Contains(id) {
				t.Fatalf("insert %d: shard %d contains=%v, owners %v", id, s, b.eng.Contains(id), owners)
			}
			logged := false
			for _, got := range b.insertLog() {
				if got == id {
					logged = true
				}
			}
			if logged != owned {
				t.Fatalf("insert %d: shard %d logged=%v, owners %v", id, s, logged, owners)
			}
		}
	}

	victim := ids[0]
	if err := rt.Delete(ctx, victim); err != nil {
		t.Fatalf("Delete %d: %v", victim, err)
	}
	qctx2, cancel2 := context.WithTimeout(ctx, 10*time.Second)
	defer cancel2()
	if err := rt.QuiesceReplicas(qctx2); err != nil {
		t.Fatalf("quiesce after delete: %v", err)
	}
	for s, b := range backends {
		if b.eng.Contains(victim) {
			t.Fatalf("delete %d: shard %d still holds it", victim, s)
		}
		if ring.OwnedBy(victim, rf, s) {
			if log := b.deleteLog(); len(log) != 1 || log[0] != victim {
				t.Fatalf("delete %d: owner shard %d log %v", victim, s, log)
			}
		}
	}
	st := rt.Stats(ctx)
	if st.AsyncErrors != 0 || st.AsyncDropped != 0 || st.AsyncPending != 0 {
		t.Fatalf("async replication not clean: %+v", st)
	}
}

// TestStaleReplicaSkippedUntilClean: a replica that fails its async
// applies is marked dirty; scaled reads skip it (answers stay full, fresh
// and identical) rather than serving from a shard known to lag.
func TestStaleReplicaSkipped(t *testing.T) {
	ds := testCorpus(t)
	union := buildUnion(t, ds)
	ring, err := placement.New(placement.Config{Shards: 3, VNodes: 32, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	const rf = 2
	rt, backends := newTestRouter(t, shardEngines(t, union, ring, rf), ring, rf, ReadRoundRobin)
	ctx := context.Background()

	// Find fresh ids whose replica set includes shard 2 but whose primary
	// is elsewhere, so the sync write succeeds and only the async replica
	// apply fails.
	const lagged = 2
	backends[lagged].setFail(false, true)
	var planted []uint64
	for i := 0; len(planted) < 4 && i < 4000; i++ {
		id := uint64(600_000 + i)
		owners := ring.Owners(id, rf)
		if owners[0] != lagged && ring.OwnedBy(id, rf, lagged) {
			p := ds.FreshPhoto(id, int64(100+i))
			if err := rt.Insert(ctx, id, p.Img); err != nil {
				t.Fatalf("Insert %d: %v", id, err)
			}
			if err := union.Insert(ds.FreshPhoto(id, int64(100+i))); err != nil {
				t.Fatal(err)
			}
			planted = append(planted, id)
		}
	}
	if len(planted) == 0 {
		t.Fatal("no candidate ids replicated onto the lagging shard")
	}
	qctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := rt.QuiesceReplicas(qctx); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	st := rt.Stats(ctx)
	if st.AsyncErrors == 0 {
		t.Fatalf("lagging shard produced no apply errors: %+v", st)
	}
	if st.PerShard[lagged].Synced {
		t.Fatalf("lagging shard still considered synced: %+v", st.PerShard[lagged])
	}

	// Reads must not trust the dirty replica: answers stay full, fresh,
	// and identical to the oracle that has all the inserts.
	qs, err := ds.Queries(4, 905)
	if err != nil {
		t.Fatal(err)
	}
	const topK = 30
	for qi, q := range qs {
		want, err := union.Query(q.Probe, topK)
		if err != nil {
			t.Fatal(err)
		}
		got, meta, err := rt.Query(ctx, q.Probe, topK)
		if err != nil {
			t.Fatalf("query %d with dirty replica: %v", qi, err)
		}
		if meta.Partial || meta.Stale {
			t.Fatalf("query %d flagged partial=%v stale=%v; a clean replica set exists", qi, meta.Partial, meta.Stale)
		}
		assertIdentical(t, fmt.Sprintf("query %d (dirty replica)", qi), got, want)
	}
}

// TestRouterPartialAndQuorum drives the degradation ladder on a 3-shard
// rf=1 cluster: one dead shard → partial answers that exactly merge the
// live shards; two dead shards → quorum lost.
func TestRouterPartialAndQuorum(t *testing.T) {
	ds := testCorpus(t)
	union := buildUnion(t, ds)
	ring, err := placement.New(placement.Config{Shards: 3, VNodes: 32, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	engines := shardEngines(t, union, ring, 1)
	rt, backends := newTestRouter(t, engines, ring, 1, ReadPrimary)
	qs, err := ds.Queries(3, 901)
	if err != nil {
		t.Fatal(err)
	}
	const topK = 30

	backends[1].setFail(true, true)
	for qi, q := range qs {
		got, meta, err := rt.Query(context.Background(), q.Probe, topK)
		if err != nil {
			t.Fatalf("query %d with one shard down: %v", qi, err)
		}
		if !meta.Partial {
			t.Fatalf("query %d not flagged partial with shard 1 down at rf=1", qi)
		}
		// The partial answer must be exactly the merge of the live shards.
		var lists [][]core.SearchResult
		for s, eng := range engines {
			if s == 1 {
				continue
			}
			res, err := eng.Query(q.Probe, topK)
			if err != nil {
				t.Fatal(err)
			}
			lists = append(lists, res)
		}
		want := MergeTopK(lists, topK)
		assertIdentical(t, fmt.Sprintf("query %d partial", qi), got, want)
	}
	if err := rt.Healthy(context.Background()); err != nil {
		t.Fatalf("router unhealthy with 2/3 shards up: %v", err)
	}

	backends[2].setFail(true, true)
	if _, _, err := rt.Query(context.Background(), qs[0].Probe, topK); !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("2/3 shards down: got %v, want ErrQuorumLost", err)
	}
	if err := rt.Healthy(context.Background()); !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("healthz with 1/3 shards up: got %v, want ErrQuorumLost", err)
	}

	st := rt.Stats(context.Background())
	if st.PartialQueries != int64(len(qs)) || st.QuorumLost != 1 || st.ShardsHealthy != 1 {
		t.Fatalf("stats missed the degradation: %+v", st)
	}
}

// TestRouterFanoutFailpoint exercises the deterministic failure injection
// the crash/timeout matrix uses: an Error policy on router/fanout fails
// exactly one shard leg (partial at rf=1), and router/merge fails the
// whole query after a successful fan-out.
func TestRouterFanoutFailpoint(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	failpoint.Reset()
	ds := testCorpus(t)
	union := buildUnion(t, ds)
	ring, err := placement.New(placement.Config{Shards: 3, VNodes: 32, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	rt, _ := newTestRouter(t, shardEngines(t, union, ring, 1), ring, 1, ReadPrimary)
	qs, err := ds.Queries(1, 902)
	if err != nil {
		t.Fatal(err)
	}

	failpoint.Enable(failpoint.RouterFanout, failpoint.Policy{Action: failpoint.Error, Times: 1})
	_, meta, err := rt.Query(context.Background(), qs[0].Probe, 20)
	failpoint.Disable(failpoint.RouterFanout)
	if err != nil || !meta.Partial {
		t.Fatalf("one injected fanout failure: partial=%v err=%v, want partial answer", meta.Partial, err)
	}

	failpoint.Enable(failpoint.RouterMerge, failpoint.Policy{Action: failpoint.Error, Times: 1})
	_, _, err = rt.Query(context.Background(), qs[0].Probe, 20)
	failpoint.Disable(failpoint.RouterMerge)
	if err == nil || !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("injected merge failure: got %v, want injected error", err)
	}
}

// TestRouterReplicaFailpoints drives the two replica-path sites:
// router/replica-pick (Error → the scaled read falls back to a full
// fan-out, never a wrong answer) and router/hedge (Error → the hedge is
// suppressed; a slow target is repaired by the failure fallback instead).
func TestRouterReplicaFailpoints(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	failpoint.Reset()
	ds := testCorpus(t)
	union := buildUnion(t, ds)
	ring, err := placement.New(placement.Config{Shards: 3, VNodes: 32, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	engines := shardEngines(t, union, ring, 2)
	qs, err := ds.Queries(2, 906)
	if err != nil {
		t.Fatal(err)
	}
	const topK = 25
	ctx := context.Background()

	// replica-pick failure: round-robin degrades to the full fan-out.
	rt, _ := newTestRouter(t, engines, ring, 2, ReadRoundRobin)
	failpoint.Enable(failpoint.RouterReplicaPick, failpoint.Policy{Action: failpoint.Error, Times: 1})
	want, err := union.Query(qs[0].Probe, topK)
	if err != nil {
		t.Fatal(err)
	}
	got, meta, err := rt.Query(ctx, qs[0].Probe, topK)
	failpoint.Disable(failpoint.RouterReplicaPick)
	if err != nil || meta.Partial {
		t.Fatalf("replica-pick failure: partial=%v err=%v, want full fallback answer", meta.Partial, err)
	}
	assertIdentical(t, "replica-pick fallback", got, want)

	// hedge suppression: the hedged policy still answers identically (the
	// repair wave covers what the suppressed hedge would have).
	hrt, hbackends := newTestRouter(t, engines, ring, 2, ReadHedged)
	hbackends[0].setFail(true, true)
	failpoint.Enable(failpoint.RouterHedge, failpoint.Policy{Action: failpoint.Error, Times: -1})
	for qi, q := range qs {
		want, err := union.Query(q.Probe, topK)
		if err != nil {
			t.Fatal(err)
		}
		got, meta, err := hrt.Query(ctx, q.Probe, topK)
		if err != nil {
			t.Fatalf("hedge suppressed, query %d: %v", qi, err)
		}
		if meta.Partial {
			t.Fatalf("hedge suppressed, query %d: partial at rf=2 with one shard down", qi)
		}
		assertIdentical(t, fmt.Sprintf("hedge suppressed query %d", qi), got, want)
	}
	failpoint.Disable(failpoint.RouterHedge)
}

// TestRouterRingTransitionDoubleRead: during a prepared-but-uncommitted
// ring update the router reads under BOTH placements (scaled reads are
// suspended), so answers stay full and identical whichever ring a photo's
// owners currently follow; commit under a wrong epoch is refused.
func TestRouterRingTransitionDoubleRead(t *testing.T) {
	ds := testCorpus(t)
	union := buildUnion(t, ds)
	ring, err := placement.New(placement.Config{Shards: 3, VNodes: 32, Seed: 10, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	const rf = 2
	engines := shardEngines(t, union, ring, rf)
	rt, _ := newTestRouter(t, engines, ring, rf, ReadRoundRobin)
	qs, err := ds.Queries(3, 907)
	if err != nil {
		t.Fatal(err)
	}
	const topK = 25
	ctx := context.Background()

	next := placement.Config{Shards: 3, VNodes: 32, Seed: 77, Epoch: 2}
	if err := rt.RingPrepare(next, rf); err != nil {
		t.Fatalf("RingPrepare: %v", err)
	}
	if st := rt.Stats(ctx); !st.RingTransition || st.RingNextEpoch != 2 {
		t.Fatalf("transition not visible in stats: %+v", st)
	}
	// Shards still hold the OLD placement's data; double-read must keep
	// answers full and identical anyway.
	for qi, q := range qs {
		want, err := union.Query(q.Probe, topK)
		if err != nil {
			t.Fatal(err)
		}
		got, meta, err := rt.Query(ctx, q.Probe, topK)
		if err != nil {
			t.Fatalf("query %d mid-transition: %v", qi, err)
		}
		if meta.Partial || meta.Stale {
			t.Fatalf("query %d mid-transition flagged partial=%v stale=%v", qi, meta.Partial, meta.Stale)
		}
		assertIdentical(t, fmt.Sprintf("query %d mid-transition", qi), got, want)
	}
	if err := rt.RingCommit(99); err == nil {
		t.Fatal("RingCommit with a wrong epoch succeeded")
	}
	rt.RingAbort()
	if st := rt.Stats(ctx); st.RingTransition || st.RingEpoch != 1 {
		t.Fatalf("abort did not restore steady state: %+v", st)
	}
	// Prepare again and commit properly this time.
	if err := rt.RingPrepare(next, rf); err != nil {
		t.Fatalf("re-prepare: %v", err)
	}
	if err := rt.RingCommit(2); err != nil {
		t.Fatalf("RingCommit: %v", err)
	}
	if st := rt.Stats(ctx); st.RingTransition || st.RingEpoch != 2 || st.RingUpdates != 1 {
		t.Fatalf("commit did not land: %+v", st)
	}
}

// TestMergeTopKOrdering pins the merge comparator to the engine's exact
// ordering — score descending, ID ascending on ties — plus dedup-by-ID
// keeping the best-ranked occurrence and truncation to topK.
func TestMergeTopKOrdering(t *testing.T) {
	r := func(id uint64, score float64) core.SearchResult { return core.SearchResult{ID: id, Score: score} }
	lists := [][]core.SearchResult{
		{r(5, 0.9), r(2, 0.5), r(9, 0.5)},
		{r(1, 0.9), r(3, 0.5), r(2, 0.3)}, // 2 duplicated at lower rank
		{},
	}
	got := MergeTopK(lists, 10)
	want := []core.SearchResult{r(1, 0.9), r(5, 0.9), r(2, 0.5), r(3, 0.5), r(9, 0.5)}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("merge order:\n got %v\nwant %v", got, want)
	}
	if got := MergeTopK(lists, 2); len(got) != 2 || got[0].ID != 1 || got[1].ID != 5 {
		t.Fatalf("topK truncation: %v", got)
	}
	if got := MergeTopK(nil, 5); len(got) != 0 {
		t.Fatalf("empty merge: %v", got)
	}
}
