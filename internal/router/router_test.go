package router

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/fastrepro/fast/internal/core"
	"github.com/fastrepro/fast/internal/failpoint"
	"github.com/fastrepro/fast/internal/placement"
	"github.com/fastrepro/fast/internal/server"
	"github.com/fastrepro/fast/internal/simimg"
	"github.com/fastrepro/fast/internal/workload"
)

// engineBackend adapts an in-process engine to the Backend interface, so
// router semantics are tested against real index behavior without HTTP in
// the loop (the client/server wire is float64-exact by construction and is
// exercised by the experiment and the CI cluster smoke).
type engineBackend struct {
	eng     *core.Engine
	fail    bool
	inserts []uint64
	deletes []uint64
}

var errShardDown = errors.New("shard down")

func (b *engineBackend) Query(ctx context.Context, img *simimg.Image, topK int) ([]core.SearchResult, error) {
	if b.fail {
		return nil, errShardDown
	}
	return b.eng.Query(img, topK)
}

func (b *engineBackend) Insert(ctx context.Context, id uint64, img *simimg.Image) error {
	if b.fail {
		return errShardDown
	}
	b.inserts = append(b.inserts, id)
	return b.eng.Insert(&simimg.Photo{ID: id, Img: img})
}

func (b *engineBackend) Delete(ctx context.Context, id uint64) error {
	if b.fail {
		return errShardDown
	}
	b.deletes = append(b.deletes, id)
	return b.eng.Delete(id)
}

func (b *engineBackend) Stats(ctx context.Context) (server.Stats, error) {
	if b.fail {
		return server.Stats{}, errShardDown
	}
	return server.Stats{Photos: b.eng.Len()}, nil
}

func (b *engineBackend) Healthy(ctx context.Context) error {
	if b.fail {
		return errShardDown
	}
	return nil
}

// testCorpus builds the union dataset shared by the router tests.
func testCorpus(t *testing.T) *workload.Dataset {
	t.Helper()
	ds, err := workload.Generate(workload.Spec{
		Name: "router", Scenes: 6, Photos: 120, Subjects: 3,
		SubjectRate: 0.25, Resolution: 32, Seed: 17, SceneBase: 700,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// buildUnion builds the oracle engine over the whole corpus with group
// expansion disabled — expansion walks stored summaries of top hits across
// the whole index, which cannot be replicated by shards that each hold a
// subset, so cluster serving always runs with it off.
func buildUnion(t *testing.T, ds *workload.Dataset) *core.Engine {
	t.Helper()
	eng := core.NewEngine(core.Config{GroupExpand: -1})
	if _, err := eng.Build(ds.Photos); err != nil {
		t.Fatal(err)
	}
	return eng
}

// shardEngines derives per-shard engines from the union engine's
// serialization: every shard restores the same snapshot (same trained PCA
// basis, same LSH geometry — the preconditions for identical scores) and
// deletes the photos the ring assigns elsewhere. This mirrors exactly what
// fastd -shard-index does at bootstrap.
func shardEngines(t *testing.T, union *core.Engine, ring *placement.Ring) []*core.Engine {
	t.Helper()
	var buf bytes.Buffer
	if _, err := union.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	engines := make([]*core.Engine, ring.Shards())
	for s := range engines {
		eng, err := core.ReadEngine(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range eng.IDs() {
			if ring.Owner(id) != s {
				if err := eng.Delete(id); err != nil {
					t.Fatal(err)
				}
			}
		}
		engines[s] = eng
	}
	return engines
}

func newTestRouter(t *testing.T, engines []*core.Engine, ring *placement.Ring) (*Router, []*engineBackend) {
	t.Helper()
	backends := make([]*engineBackend, len(engines))
	shards := make([]Backend, len(engines))
	for i, eng := range engines {
		backends[i] = &engineBackend{eng: eng}
		shards[i] = backends[i]
	}
	rt, err := New(Config{Shards: shards, Ring: ring, ShardTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return rt, backends
}

// TestRouterTopKByteIdenticalOverRandomSplits is the cluster's core
// correctness property: for random shard counts, ring seeds, and topK
// budgets, a query routed over the shard split and merged must return
// exactly — same IDs, bit-identical scores, same order — what the
// single-node union engine returns.
func TestRouterTopKByteIdenticalOverRandomSplits(t *testing.T) {
	ds := testCorpus(t)
	union := buildUnion(t, ds)
	qs, err := ds.Queries(6, 900)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4242))
	trials := 5
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		shards := 2 + rng.Intn(4) // 2..5
		ring, err := placement.New(placement.Config{
			Shards: shards,
			VNodes: 16 + rng.Intn(64),
			Seed:   rng.Uint64(),
		})
		if err != nil {
			t.Fatal(err)
		}
		rt, _ := newTestRouter(t, shardEngines(t, union, ring), ring)
		topK := 1 + rng.Intn(60)
		for qi, q := range qs {
			want, err := union.Query(q.Probe, topK)
			if err != nil {
				t.Fatal(err)
			}
			got, partial, err := rt.Query(context.Background(), q.Probe, topK)
			if err != nil {
				t.Fatalf("trial %d query %d: %v", trial, qi, err)
			}
			if partial {
				t.Fatalf("trial %d query %d flagged partial with all shards up", trial, qi)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d (shards=%d topK=%d) query %d: %d results, oracle %d",
					trial, shards, topK, qi, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d (shards=%d topK=%d) query %d rank %d: got {%d %.17g}, oracle {%d %.17g}",
						trial, shards, topK, qi, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
				}
			}
		}
	}
}

// TestRouterPartialAndQuorum drives the degradation ladder on a 3-shard
// cluster: one dead shard → partial answers that exactly merge the live
// shards; two dead shards → quorum lost.
func TestRouterPartialAndQuorum(t *testing.T) {
	ds := testCorpus(t)
	union := buildUnion(t, ds)
	ring, err := placement.New(placement.Config{Shards: 3, VNodes: 32, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	engines := shardEngines(t, union, ring)
	rt, backends := newTestRouter(t, engines, ring)
	qs, err := ds.Queries(3, 901)
	if err != nil {
		t.Fatal(err)
	}
	const topK = 30

	backends[1].fail = true
	for qi, q := range qs {
		got, partial, err := rt.Query(context.Background(), q.Probe, topK)
		if err != nil {
			t.Fatalf("query %d with one shard down: %v", qi, err)
		}
		if !partial {
			t.Fatalf("query %d not flagged partial with shard 1 down", qi)
		}
		// The partial answer must be exactly the merge of the live shards.
		var lists [][]core.SearchResult
		for s, eng := range engines {
			if s == 1 {
				continue
			}
			res, err := eng.Query(q.Probe, topK)
			if err != nil {
				t.Fatal(err)
			}
			lists = append(lists, res)
		}
		want := MergeTopK(lists, topK)
		if len(got) != len(want) {
			t.Fatalf("query %d partial: %d results, want %d", qi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d partial rank %d: got %+v want %+v", qi, i, got[i], want[i])
			}
		}
	}
	if err := rt.Healthy(context.Background()); err != nil {
		t.Fatalf("router unhealthy with 2/3 shards up: %v", err)
	}

	backends[2].fail = true
	if _, _, err := rt.Query(context.Background(), qs[0].Probe, topK); !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("2/3 shards down: got %v, want ErrQuorumLost", err)
	}
	if err := rt.Healthy(context.Background()); !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("healthz with 1/3 shards up: got %v, want ErrQuorumLost", err)
	}

	st := rt.Stats(context.Background())
	if st.PartialQueries != int64(len(qs)) || st.QuorumLost != 1 || st.ShardsHealthy != 1 {
		t.Fatalf("stats missed the degradation: %+v", st)
	}
}

// TestRouterFanoutFailpoint exercises the deterministic failure injection
// the crash/timeout matrix uses: an Error policy on router/fanout fails
// exactly one shard leg (partial), and router/merge fails the whole query
// after a successful fan-out.
func TestRouterFanoutFailpoint(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	failpoint.Reset()
	ds := testCorpus(t)
	union := buildUnion(t, ds)
	ring, err := placement.New(placement.Config{Shards: 3, VNodes: 32, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	rt, _ := newTestRouter(t, shardEngines(t, union, ring), ring)
	qs, err := ds.Queries(1, 902)
	if err != nil {
		t.Fatal(err)
	}

	failpoint.Enable(failpoint.RouterFanout, failpoint.Policy{Action: failpoint.Error, Times: 1})
	_, partial, err := rt.Query(context.Background(), qs[0].Probe, 20)
	failpoint.Disable(failpoint.RouterFanout)
	if err != nil || !partial {
		t.Fatalf("one injected fanout failure: partial=%v err=%v, want partial answer", partial, err)
	}

	failpoint.Enable(failpoint.RouterMerge, failpoint.Policy{Action: failpoint.Error, Times: 1})
	_, _, err = rt.Query(context.Background(), qs[0].Probe, 20)
	failpoint.Disable(failpoint.RouterMerge)
	if err == nil || !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("injected merge failure: got %v, want injected error", err)
	}
}

// TestRouterMutationsRouteByPlacement: every insert and delete lands on
// exactly the shard the ring owns the ID on, and is visible to subsequent
// routed queries.
func TestRouterMutationsRouteByPlacement(t *testing.T) {
	ds := testCorpus(t)
	union := buildUnion(t, ds)
	ring, err := placement.New(placement.Config{Shards: 4, VNodes: 32, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rt, backends := newTestRouter(t, shardEngines(t, union, ring), ring)
	ctx := context.Background()

	for i := 0; i < 12; i++ {
		id := uint64(500_000 + i)
		p := ds.FreshPhoto(id, int64(i))
		if err := rt.Insert(ctx, id, p.Img); err != nil {
			t.Fatalf("Insert %d: %v", id, err)
		}
	}
	for i := 0; i < 12; i++ {
		id := uint64(500_000 + i)
		owner := ring.Owner(id)
		found := false
		for s, b := range backends {
			for _, got := range b.inserts {
				if got == id {
					if s != owner {
						t.Fatalf("insert %d landed on shard %d, ring owner is %d", id, s, owner)
					}
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("insert %d reached no shard", id)
		}
	}

	victim := union.IDs()[0]
	if err := rt.Delete(ctx, victim); err != nil {
		t.Fatalf("Delete %d: %v", victim, err)
	}
	owner := ring.Owner(victim)
	if len(backends[owner].deletes) != 1 || backends[owner].deletes[0] != victim {
		t.Fatalf("delete %d did not land on owner %d: %v", victim, owner, backends[owner].deletes)
	}
}

// TestMergeTopKOrdering pins the merge comparator to the engine's exact
// ordering — score descending, ID ascending on ties — plus dedup-by-ID
// keeping the best-ranked occurrence and truncation to topK.
func TestMergeTopKOrdering(t *testing.T) {
	r := func(id uint64, score float64) core.SearchResult { return core.SearchResult{ID: id, Score: score} }
	lists := [][]core.SearchResult{
		{r(5, 0.9), r(2, 0.5), r(9, 0.5)},
		{r(1, 0.9), r(3, 0.5), r(2, 0.3)}, // 2 duplicated at lower rank
		{},
	}
	got := MergeTopK(lists, 10)
	want := []core.SearchResult{r(1, 0.9), r(5, 0.9), r(2, 0.5), r(3, 0.5), r(9, 0.5)}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("merge order:\n got %v\nwant %v", got, want)
	}
	if got := MergeTopK(lists, 2); len(got) != 2 || got[0].ID != 1 || got[1].ID != 5 {
		t.Fatalf("topK truncation: %v", got)
	}
	if got := MergeTopK(nil, 5); len(got) != 0 {
		t.Fatalf("empty merge: %v", got)
	}
}
