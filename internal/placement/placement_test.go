package placement

import "testing"

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Shards: 0}); err == nil {
		t.Error("zero shards should fail")
	}
	if _, err := New(Config{Shards: -3}); err == nil {
		t.Error("negative shards should fail")
	}
	if _, err := New(Config{Shards: 2, VNodes: -1}); err == nil {
		t.Error("negative vnodes should fail")
	}
	if _, err := New(Config{Shards: 2, VNodes: maxVNodes + 1}); err == nil {
		t.Error("oversized vnodes should fail")
	}
	r, err := New(Config{Shards: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if r.Config().VNodes != DefaultVNodes {
		t.Errorf("VNodes defaulted to %d, want %d", r.Config().VNodes, DefaultVNodes)
	}
}

func TestOwnerDeterministicAcrossConstructions(t *testing.T) {
	cfg := Config{Shards: 5, VNodes: 48, Seed: 1234, Epoch: 7}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("same config, different fingerprints: %x vs %x", a.Fingerprint(), b.Fingerprint())
	}
	for id := uint64(0); id < 10_000; id++ {
		ao, bo := a.Owner(id), b.Owner(id)
		if ao != bo {
			t.Fatalf("Owner(%d) differs across constructions: %d vs %d", id, ao, bo)
		}
		if ao < 0 || ao >= cfg.Shards {
			t.Fatalf("Owner(%d) = %d out of range", id, ao)
		}
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := Config{Shards: 3, VNodes: 32, Seed: 9, Epoch: 1}
	r0, _ := New(base)
	for name, cfg := range map[string]Config{
		"shards": {Shards: 4, VNodes: 32, Seed: 9, Epoch: 1},
		"vnodes": {Shards: 3, VNodes: 33, Seed: 9, Epoch: 1},
		"seed":   {Shards: 3, VNodes: 32, Seed: 10, Epoch: 1},
		"epoch":  {Shards: 3, VNodes: 32, Seed: 9, Epoch: 2},
	} {
		r1, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Fingerprint() == r0.Fingerprint() {
			t.Errorf("changing %s did not change the fingerprint", name)
		}
	}
}

func TestSpreadBalance(t *testing.T) {
	r, err := New(Config{Shards: 3, VNodes: 128, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]uint64, 60_000)
	for i := range ids {
		ids[i] = uint64(i) * 2654435761 // arbitrary but deterministic key set
	}
	counts := r.Spread(ids)
	mean := float64(len(ids)) / float64(len(counts))
	for s, c := range counts {
		if ratio := float64(c) / mean; ratio < 0.6 || ratio > 1.5 {
			t.Errorf("shard %d owns %d keys (%.2fx mean) — ring badly imbalanced: %v", s, c, ratio, counts)
		}
	}
}

func TestMinimalMovementOnGrowth(t *testing.T) {
	const n = 4
	before, err := New(Config{Shards: n, VNodes: 64, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	after, err := New(Config{Shards: n + 1, VNodes: 64, Seed: 5, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	const keys = 50_000
	moved, movedElsewhere := 0, 0
	for i := 0; i < keys; i++ {
		id := uint64(i)*0x9e3779b9 + 17
		a, b := before.Owner(id), after.Owner(id)
		if a != b {
			moved++
			if b != n { // legal moves go to the new shard only
				movedElsewhere++
			}
		}
	}
	// Adding one shard to n should move ~1/(n+1) of the keys; allow 2x
	// slack for vnode variance.
	frac := float64(moved) / keys
	if want := 1.0 / float64(n+1); frac > 2*want {
		t.Errorf("growth moved %.1f%% of keys, want about %.1f%%", 100*frac, 100*want)
	}
	if movedElsewhere != 0 {
		t.Errorf("%d keys moved between pre-existing shards; consistent hashing must only move keys to the new shard", movedElsewhere)
	}
	if frac == 0 {
		t.Error("growth moved no keys at all — new shard owns nothing")
	}
}

func TestOwnersDistinctAndOwnerFirst(t *testing.T) {
	r, err := New(Config{Shards: 4, VNodes: 32, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 2000; id++ {
		owners := r.Owners(id, 3)
		if len(owners) != 3 {
			t.Fatalf("Owners(%d, 3) = %v, want 3 shards", id, owners)
		}
		if owners[0] != r.Owner(id) {
			t.Fatalf("Owners(%d)[0] = %d, Owner = %d", id, owners[0], r.Owner(id))
		}
		seen := map[int]bool{}
		for _, s := range owners {
			if seen[s] {
				t.Fatalf("Owners(%d) has duplicate shard: %v", id, owners)
			}
			seen[s] = true
		}
	}
	if got := r.Owners(1, 99); len(got) != 4 {
		t.Errorf("Owners clamped to shard count: got %d, want 4", len(got))
	}
	if got := r.Owners(1, 0); got != nil {
		t.Errorf("Owners(_, 0) = %v, want nil", got)
	}
}

// TestOwnedByMatchesOwners checks the membership helper against the
// authoritative Owners list across shard counts and replica factors.
func TestOwnedByMatchesOwners(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 5, 8} {
		for _, n := range []int{1, 2, 3} {
			r, err := New(Config{Shards: shards, VNodes: 16, Seed: uint64(7*shards + n)})
			if err != nil {
				t.Fatal(err)
			}
			for id := uint64(0); id < 200; id++ {
				owners := r.Owners(id, n)
				member := make(map[int]bool, len(owners))
				for _, s := range owners {
					member[s] = true
				}
				for s := 0; s < shards; s++ {
					if got := r.OwnedBy(id, n, s); got != member[s] {
						t.Fatalf("shards=%d n=%d id=%d shard=%d: OwnedBy=%v, Owners=%v",
							shards, n, id, s, got, owners)
					}
				}
			}
		}
	}
}

// TestCoversLemma asserts the pigeonhole guarantee replica reads build on:
// with replica factor n, ANY subset of Shards-n+1 shards covers the whole
// key space, while at n-1 losses plus one more some key set must go dark.
// It also cross-checks Covers against brute force over a dense ID sample.
func TestCoversLemma(t *testing.T) {
	for _, shards := range []int{2, 3, 4, 6} {
		for n := 1; n <= 3 && n <= shards; n++ {
			r, err := New(Config{Shards: shards, VNodes: 32, Seed: uint64(13*shards + n)})
			if err != nil {
				t.Fatal(err)
			}
			// Every subset of size shards-n+1 covers. Enumerate all subsets
			// via bitmask (shard counts here are tiny).
			for mask := 0; mask < 1<<shards; mask++ {
				size := 0
				for s := 0; s < shards; s++ {
					if mask&(1<<s) != 0 {
						size++
					}
				}
				have := func(s int) bool { return mask&(1<<s) != 0 }
				got := r.Covers(n, have)
				// Brute-force ground truth over a dense sample of keys.
				want := true
				for id := uint64(0); id < 512; id++ {
					hit := false
					for _, s := range r.Owners(id, n) {
						if have(s) {
							hit = true
							break
						}
					}
					if !hit {
						want = false
						break
					}
				}
				if got != want {
					t.Fatalf("shards=%d n=%d mask=%b: Covers=%v, brute-force=%v", shards, n, mask, got, want)
				}
				if size >= shards-n+1 && !got {
					t.Fatalf("shards=%d n=%d mask=%b size=%d: pigeonhole violated, Covers=false", shards, n, mask, size)
				}
			}
			// The full set always covers; the empty set never does (shards>=1).
			if !r.Covers(n, func(int) bool { return true }) {
				t.Fatalf("shards=%d n=%d: full set does not cover", shards, n)
			}
			if r.Covers(n, func(int) bool { return false }) {
				t.Fatalf("shards=%d n=%d: empty set covers", shards, n)
			}
		}
	}
}
