// Package placement is the single source of truth for which shard owns
// which photo ID in a multi-node FAST cluster: a consistent-hash ring over
// the 64-bit photo-ID space. The router (cmd/fastrouter), the shards
// (fastd -shard-index/-shard-count), the cluster simulator
// (internal/cluster) and the benchmark harness all build their rings
// through this package, so placement decisions cannot drift between the
// simulated and the real tier.
//
// Design:
//
//   - Every shard projects VNodes virtual points onto the ring. A key is
//     owned by the shard whose point is the first at or clockwise after
//     the key's hash. Virtual nodes smooth the load imbalance inherent in
//     random arc lengths (the classic consistent-hashing construction).
//   - All hashing is seeded and deterministic (splitmix64 finalizers over
//     the configured Seed), with no dependence on map iteration, process
//     identity, or time: two processes given the same Config agree on
//     every owner, which is what makes scatter-gather answers mergeable
//     and placement-routed writes safe.
//   - Rings are versioned: Config.Epoch names the placement generation.
//     Fingerprint folds the epoch, the geometry, and every ring point into
//     one value, so a router and a shard can cheaply verify they are
//     talking about the same placement before trusting each other's
//     routing decisions.
//   - Reconfiguration is minimal-movement by construction: adding a shard
//     adds only that shard's points, so roughly 1/(n+1) of the key space
//     changes owner and everything else stays put. The movement bound is
//     asserted in the package tests.
package placement

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultVNodes is the virtual-node count per shard when Config.VNodes is
// zero. 64 points per shard keeps the expected per-shard load within a few
// percent of uniform at small cluster sizes while the ring stays tiny
// (3 shards × 64 points = 192 entries).
const DefaultVNodes = 64

// maxVNodes bounds the ring size against misconfiguration.
const maxVNodes = 1 << 16

// Config describes one placement generation. Router and shards must be
// constructed from identical configs; Fingerprint verifies that.
type Config struct {
	// Shards is the number of shards on the ring; required, ≥ 1.
	Shards int
	// VNodes is the virtual-node count per shard; 0 means DefaultVNodes.
	VNodes int
	// Seed seeds every ring hash. Different seeds give statistically
	// independent placements.
	Seed uint64
	// Epoch versions the placement; bump it on any reconfiguration so
	// stale rings are detectable by fingerprint.
	Epoch uint64
}

// point is one virtual node: a position on the ring and the shard it maps
// to. Ties on hash (astronomically unlikely but cheap to handle) break by
// (shard, vnode) so ordering is a strict total order.
type point struct {
	hash  uint64
	shard int32
	vnode int32
}

// Ring is an immutable consistent-hash ring. Safe for concurrent use.
type Ring struct {
	cfg    Config
	points []point
	fp     uint64

	// windows memoizes, per replica factor, the deduplicated set of
	// distinct n-owner sequences the ring can produce (one per ring arc).
	// Lazily built; placement answers never depend on it, only coverage
	// queries do, so the Ring stays logically immutable.
	windowsMu sync.Mutex
	windows   map[int][][]int32
}

// New builds the ring for cfg.
func New(cfg Config) (*Ring, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("placement: need at least 1 shard, got %d", cfg.Shards)
	}
	if cfg.VNodes == 0 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.VNodes < 1 || cfg.VNodes > maxVNodes {
		return nil, fmt.Errorf("placement: vnodes %d out of range [1, %d]", cfg.VNodes, maxVNodes)
	}
	r := &Ring{cfg: cfg}
	r.points = make([]point, 0, cfg.Shards*cfg.VNodes)
	for s := 0; s < cfg.Shards; s++ {
		for v := 0; v < cfg.VNodes; v++ {
			r.points = append(r.points, point{
				hash:  pointHash(cfg.Seed, s, v),
				shard: int32(s),
				vnode: int32(v),
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		if a.shard != b.shard {
			return a.shard < b.shard
		}
		return a.vnode < b.vnode
	})
	r.fp = r.fingerprint()
	return r, nil
}

// Config returns the ring's effective configuration (VNodes defaulted).
func (r *Ring) Config() Config { return r.cfg }

// Shards returns the shard count.
func (r *Ring) Shards() int { return r.cfg.Shards }

// Epoch returns the placement generation this ring materializes.
func (r *Ring) Epoch() uint64 { return r.cfg.Epoch }

// Owner returns the shard owning the given photo ID.
func (r *Ring) Owner(id uint64) int {
	return int(r.points[r.successor(keyHash(r.cfg.Seed, id))].shard)
}

// Owners returns up to n distinct shards for the ID in ring order: the
// owner first, then the replica successors (the shards whose points follow
// clockwise). n beyond the shard count is clamped. This is the replica
// placement policy future read-scaling builds on; today callers use
// Owners(id, 1) via Owner.
func (r *Ring) Owners(id uint64, n int) []int {
	if n < 1 {
		return nil
	}
	if n > r.cfg.Shards {
		n = r.cfg.Shards
	}
	out := make([]int, 0, n)
	seen := make(map[int32]struct{}, n)
	idx := r.successor(keyHash(r.cfg.Seed, id))
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(idx+i)%len(r.points)]
		if _, dup := seen[p.shard]; dup {
			continue
		}
		seen[p.shard] = struct{}{}
		out = append(out, int(p.shard))
	}
	return out
}

// OwnedBy reports whether shard is one of the first n owners of id — the
// membership test replica-factor-n nodes use to decide which entries of a
// common corpus they keep. OwnedBy(id, 1, s) is exactly Owner(id) == s.
func (r *Ring) OwnedBy(id uint64, n, shard int) bool {
	for _, s := range r.Owners(id, n) {
		if s == shard {
			return true
		}
	}
	return false
}

// ownerWindows returns the deduplicated list of distinct n-owner sets the
// ring can produce. Every key's Owners(id, n) equals the window of the
// arc its hash lands on, and there are at most len(points) distinct arcs,
// so enumerating windows enumerates every possible replica set without
// enumerating keys. Each window is returned sorted by shard.
func (r *Ring) ownerWindows(n int) [][]int32 {
	if n < 1 {
		n = 1
	}
	if n > r.cfg.Shards {
		n = r.cfg.Shards
	}
	r.windowsMu.Lock()
	defer r.windowsMu.Unlock()
	if w, ok := r.windows[n]; ok {
		return w
	}
	seen := make(map[string]struct{})
	var out [][]int32
	var keyBuf []byte
	for idx := range r.points {
		win := make([]int32, 0, n)
		for i := 0; i < len(r.points) && len(win) < n; i++ {
			s := r.points[(idx+i)%len(r.points)].shard
			dup := false
			for _, have := range win {
				if have == s {
					dup = true
					break
				}
			}
			if !dup {
				win = append(win, s)
			}
		}
		sort.Slice(win, func(i, j int) bool { return win[i] < win[j] })
		keyBuf = keyBuf[:0]
		for _, s := range win {
			keyBuf = append(keyBuf, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
		}
		if _, dup := seen[string(keyBuf)]; dup {
			continue
		}
		seen[string(keyBuf)] = struct{}{}
		out = append(out, win)
	}
	if r.windows == nil {
		r.windows = make(map[int][][]int32)
	}
	r.windows[n] = out
	return out
}

// Covers reports whether querying exactly the shards for which have
// returns true is guaranteed to observe every key, assuming each key is
// stored on its n ring-order owners (Owners(id, n)). It holds iff the
// shard set intersects every distinct n-owner window on the ring. Two
// consequences the router relies on:
//
//   - Any set of Shards-n+1 shards covers (an n-owner set cannot be
//     disjoint from it), so with replica factor n the cluster tolerates
//     n-1 arbitrary shard losses with zero answer loss, and a read policy
//     may deliberately skip up to n-1 shards per query for read scaling.
//   - Covers(1, have) is true only when have includes every shard that
//     owns at least one arc — for non-degenerate rings, all shards —
//     matching the pre-replica rule that any failure forces a partial
//     answer.
func (r *Ring) Covers(n int, have func(shard int) bool) bool {
	for _, win := range r.ownerWindows(n) {
		hit := false
		for _, s := range win {
			if have(int(s)) {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	return true
}

// successor returns the index of the first point at or clockwise after h.
func (r *Ring) successor(h uint64) int {
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if idx == len(r.points) {
		idx = 0 // wrap past the last point to the ring start
	}
	return idx
}

// Fingerprint is a deterministic digest of the entire placement: epoch,
// geometry, seed, and every ring point. Two rings agree on every Owner
// answer if (practically: exactly when) their fingerprints match; router
// and shards compare fingerprints to detect configuration drift.
func (r *Ring) Fingerprint() uint64 { return r.fp }

func (r *Ring) fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	mix(r.cfg.Epoch)
	mix(uint64(r.cfg.Shards))
	mix(uint64(r.cfg.VNodes))
	mix(r.cfg.Seed)
	for _, p := range r.points {
		mix(p.hash)
		mix(uint64(p.shard)<<32 | uint64(uint32(p.vnode)))
	}
	return h
}

// Spread counts how many of the given IDs each shard owns — the load
// balance diagnostic the benchmark report includes.
func (r *Ring) Spread(ids []uint64) []int {
	counts := make([]int, r.cfg.Shards)
	for _, id := range ids {
		counts[r.Owner(id)]++
	}
	return counts
}

// mix64 is the splitmix64 finalizer: a full-avalanche 64-bit permutation.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// pointHash positions virtual node (shard, vnode) on the seeded ring.
func pointHash(seed uint64, shard, vnode int) uint64 {
	h := mix64(seed + 0x9e3779b97f4a7c15)
	h = mix64(h ^ (uint64(shard)+1)*0xbf58476d1ce4e5b9)
	return mix64(h ^ (uint64(vnode)+1)*0x94d049bb133111eb)
}

// keyHash positions a photo ID on the seeded ring.
func keyHash(seed uint64, id uint64) uint64 {
	return mix64(mix64(seed+0x9e3779b97f4a7c15) ^ mix64(id+0x632be59bd9b4e019))
}
