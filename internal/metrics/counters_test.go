package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatal("zero value not zero")
	}
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("Load = %d, want 5", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8000 {
		t.Fatalf("Load = %d, want 8000", got)
	}
}

func TestIntDist(t *testing.T) {
	var d IntDist
	if d.Count() != 0 || d.Mean() != 0 || d.Min() != 0 || d.Max() != 0 {
		t.Fatal("zero value not empty")
	}
	for _, v := range []int64{4, 1, 9, 2} {
		d.Record(v)
	}
	if d.Count() != 4 || d.Sum() != 16 {
		t.Fatalf("count/sum = %d/%d", d.Count(), d.Sum())
	}
	if d.Min() != 1 || d.Max() != 9 {
		t.Fatalf("min/max = %d/%d", d.Min(), d.Max())
	}
	if d.Mean() != 4 {
		t.Fatalf("mean = %v", d.Mean())
	}
}

func TestSummaryP95(t *testing.T) {
	l := NewLatency()
	for i := 1; i <= 100; i++ {
		l.Record(time.Duration(i) * time.Millisecond)
	}
	s := l.Summarize()
	if s.P95 < s.P90 || s.P95 > s.P99 {
		t.Fatalf("P95 %v outside [P90 %v, P99 %v]", s.P95, s.P90, s.P99)
	}
	if s.P95 != 96*time.Millisecond {
		t.Fatalf("P95 = %v, want 96ms", s.P95)
	}

	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	hs := h.Summarize()
	if hs.P95 < hs.P90 || hs.P95 > hs.P99 {
		t.Fatalf("histogram P95 %v outside [P90 %v, P99 %v]", hs.P95, hs.P90, hs.P99)
	}
}
