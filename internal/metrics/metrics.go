// Package metrics provides the latency, throughput and accuracy statistics
// used by the evaluation harness: streaming latency collection with
// percentiles, and set-based retrieval scoring (recall/precision against
// generator ground truth, normalized accuracy against a reference scheme as
// in Table III).
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Latency collects duration samples; it is safe for concurrent use.
type Latency struct {
	mu      sync.Mutex
	samples []time.Duration
}

// NewLatency returns an empty collector.
func NewLatency() *Latency { return &Latency{} }

// Record appends one sample.
func (l *Latency) Record(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.samples = append(l.samples, d)
}

// Count returns the number of samples.
func (l *Latency) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.samples)
}

// Summary holds order statistics of a latency distribution.
type Summary struct {
	Count         int
	Mean, Median  time.Duration
	P90, P95      time.Duration
	P99, Min, Max time.Duration
	Total         time.Duration
}

// Summarize computes the distribution summary. An empty collector returns a
// zero Summary.
func (l *Latency) Summarize() Summary {
	l.mu.Lock()
	defer l.mu.Unlock()
	var s Summary
	s.Count = len(l.samples)
	if s.Count == 0 {
		return s
	}
	sorted := make([]time.Duration, s.Count)
	copy(sorted, l.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, d := range sorted {
		s.Total += d
	}
	s.Mean = s.Total / time.Duration(s.Count)
	s.Median = sorted[s.Count/2]
	s.P90 = sorted[min(s.Count*90/100, s.Count-1)]
	s.P95 = sorted[min(s.Count*95/100, s.Count-1)]
	s.P99 = sorted[min(s.Count*99/100, s.Count-1)]
	s.Min = sorted[0]
	s.Max = sorted[s.Count-1]
	return s
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Retrieval scores one query's result set against ground truth.
type Retrieval struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
}

// ScoreRetrieval compares returned IDs against the relevant set.
func ScoreRetrieval(returned []uint64, relevant map[uint64]bool) Retrieval {
	var r Retrieval
	seen := make(map[uint64]bool, len(returned))
	for _, id := range returned {
		if seen[id] {
			continue
		}
		seen[id] = true
		if relevant[id] {
			r.TruePositives++
		} else {
			r.FalsePositives++
		}
	}
	for id := range relevant {
		if !seen[id] {
			r.FalseNegatives++
		}
	}
	return r
}

// Recall returns TP / (TP + FN), or 1 when there are no relevant items.
func (r Retrieval) Recall() float64 {
	denom := r.TruePositives + r.FalseNegatives
	if denom == 0 {
		return 1
	}
	return float64(r.TruePositives) / float64(denom)
}

// Precision returns TP / (TP + FP), or 1 when nothing was returned.
func (r Retrieval) Precision() float64 {
	denom := r.TruePositives + r.FalsePositives
	if denom == 0 {
		return 1
	}
	return float64(r.TruePositives) / float64(denom)
}

// F1 returns the harmonic mean of precision and recall.
func (r Retrieval) F1() float64 {
	p, rec := r.Precision(), r.Recall()
	if p+rec == 0 {
		return 0
	}
	return 2 * p * rec / (p + rec)
}

// Accuracy is an accumulating mean of per-query recalls; Table III reports
// this value normalized to SIFT's.
type Accuracy struct {
	mu    sync.Mutex
	sum   float64
	count int
}

// Add accumulates one query's recall.
func (a *Accuracy) Add(recall float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sum += recall
	a.count++
}

// Mean returns the average recall, or 0 with no queries.
func (a *Accuracy) Mean() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.count == 0 {
		return 0
	}
	return a.sum / float64(a.count)
}

// NormalizedTo returns this accuracy divided by the baseline's. It returns
// an error if the baseline accuracy is zero.
func (a *Accuracy) NormalizedTo(baseline *Accuracy) (float64, error) {
	b := baseline.Mean()
	if b == 0 {
		return 0, fmt.Errorf("metrics: baseline accuracy is zero")
	}
	return a.Mean() / b, nil
}
