package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestLatencySummary(t *testing.T) {
	l := NewLatency()
	if s := l.Summarize(); s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	for i := 1; i <= 100; i++ {
		l.Record(time.Duration(i) * time.Millisecond)
	}
	s := l.Summarize()
	if s.Count != 100 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.Min != time.Millisecond || s.Max != 100*time.Millisecond {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Mean != 50500*time.Microsecond {
		t.Errorf("Mean = %v, want 50.5ms", s.Mean)
	}
	if s.Median < 50*time.Millisecond || s.Median > 51*time.Millisecond {
		t.Errorf("Median = %v", s.Median)
	}
	if s.P90 < 90*time.Millisecond || s.P99 < 99*time.Millisecond {
		t.Errorf("P90/P99 = %v/%v", s.P90, s.P99)
	}
	if s.P99 > s.Max {
		t.Error("P99 exceeds Max")
	}
}

func TestLatencyConcurrent(t *testing.T) {
	l := NewLatency()
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Record(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if l.Count() != 1000 {
		t.Errorf("Count = %d, want 1000", l.Count())
	}
}

func TestScoreRetrieval(t *testing.T) {
	relevant := map[uint64]bool{1: true, 2: true, 3: true}
	r := ScoreRetrieval([]uint64{1, 2, 9, 9}, relevant)
	if r.TruePositives != 2 || r.FalsePositives != 1 || r.FalseNegatives != 1 {
		t.Fatalf("retrieval = %+v", r)
	}
	if r.Recall() != 2.0/3.0 {
		t.Errorf("Recall = %v", r.Recall())
	}
	if r.Precision() != 2.0/3.0 {
		t.Errorf("Precision = %v", r.Precision())
	}
	if f1 := r.F1(); f1 <= 0.6 || f1 >= 0.7 {
		t.Errorf("F1 = %v", f1)
	}
}

func TestRetrievalDegenerate(t *testing.T) {
	empty := ScoreRetrieval(nil, map[uint64]bool{})
	if empty.Recall() != 1 || empty.Precision() != 1 {
		t.Errorf("empty/empty should be perfect: %+v", empty)
	}
	if empty.F1() != 1 {
		t.Errorf("empty/empty F1 = %v", empty.F1())
	}
	none := ScoreRetrieval(nil, map[uint64]bool{5: true})
	if none.Recall() != 0 || none.Precision() != 1 {
		t.Errorf("no results: %+v recall=%v precision=%v", none, none.Recall(), none.Precision())
	}
	if none.F1() != 0 {
		t.Errorf("F1 with zero recall = %v", none.F1())
	}
}

func TestAccuracyNormalization(t *testing.T) {
	var sift, fast Accuracy
	for i := 0; i < 10; i++ {
		sift.Add(1.0)
		fast.Add(0.99995)
	}
	n, err := fast.NormalizedTo(&sift)
	if err != nil {
		t.Fatalf("NormalizedTo: %v", err)
	}
	if n <= 0.9999 || n > 1 {
		t.Errorf("normalized = %v", n)
	}
	var zero Accuracy
	if _, err := fast.NormalizedTo(&zero); err == nil {
		t.Error("zero baseline should fail")
	}
	if zero.Mean() != 0 {
		t.Errorf("empty accuracy mean = %v", zero.Mean())
	}
}
