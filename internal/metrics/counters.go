package metrics

import (
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event counter safe for concurrent
// use. The zero value is ready; serving-layer code embeds Counters for
// request totals, admission rejections and error counts.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta int64) { c.n.Add(delta) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.n.Load() }

// IntDist accumulates a distribution of integer samples — batch sizes,
// queue depths — keeping count, sum, min and max. It is safe for concurrent
// use; the zero value is ready. Samples arrive at batch granularity (one
// Record per dispatched batch), so a mutex is cheap enough.
type IntDist struct {
	mu    sync.Mutex
	count int64
	sum   int64
	min   int64
	max   int64
}

// Record adds one sample.
func (d *IntDist) Record(v int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.count++
	d.sum += v
	if d.count == 1 || v < d.min {
		d.min = v
	}
	if v > d.max {
		d.max = v
	}
}

// Count returns the number of samples.
func (d *IntDist) Count() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.count
}

// Sum returns the sample sum.
func (d *IntDist) Sum() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sum
}

// Mean returns the average sample, or 0 when empty.
func (d *IntDist) Mean() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.count == 0 {
		return 0
	}
	return float64(d.sum) / float64(d.count)
}

// Min returns the smallest sample, or 0 when empty.
func (d *IntDist) Min() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.min
}

// Max returns the largest sample, or 0 when empty.
func (d *IntDist) Max() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.max
}
