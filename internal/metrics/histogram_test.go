package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Errorf("empty histogram: count=%d mean=%v q=%v", h.Count(), h.Mean(), h.Quantile(0.5))
	}
	if !strings.Contains(h.String(), "empty") {
		t.Error("empty String missing marker")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	samples := []time.Duration{
		10 * time.Microsecond,
		20 * time.Microsecond,
		1 * time.Millisecond,
		2 * time.Millisecond,
		100 * time.Millisecond,
	}
	for _, s := range samples {
		h.Record(s)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	wantMean := (10*time.Microsecond + 20*time.Microsecond + time.Millisecond + 2*time.Millisecond + 100*time.Millisecond) / 5
	if h.Mean() != wantMean {
		t.Errorf("Mean = %v, want %v", h.Mean(), wantMean)
	}
	// Median upper bound must cover the third sample (1ms) but stay well
	// below the max.
	med := h.Quantile(0.5)
	if med < time.Millisecond || med > 4*time.Millisecond {
		t.Errorf("median bound = %v", med)
	}
	// p100 hits the max bucket.
	if q := h.Quantile(1); q < 100*time.Millisecond {
		t.Errorf("p100 = %v below max sample", q)
	}
	// Quantiles are monotone.
	prev := time.Duration(0)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone at %v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramClampsInputs(t *testing.T) {
	h := NewHistogram()
	h.Record(-time.Second) // clamped to 0
	if h.Count() != 1 {
		t.Fatal("negative sample dropped")
	}
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Error("out-of-range quantiles not clamped")
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	s := h.String()
	if !strings.Contains(s, "100 samples") {
		t.Errorf("String missing count: %s", s)
	}
	if !strings.Contains(s, "#") {
		t.Error("String missing bars")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Record(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Errorf("Count = %d, want 4000", h.Count())
	}
}
