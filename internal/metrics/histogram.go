package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Histogram buckets duration samples logarithmically (one bucket per
// power-of-two microsecond range) for cheap, fixed-memory latency
// distributions — used by long-running drivers where keeping every sample
// (as Latency does) would grow without bound.
type Histogram struct {
	mu      sync.Mutex
	buckets map[int]int64 // log2(µs) -> count
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make(map[int]int64)}
}

// bucketOf returns the log2 bucket for d (clamped at 0 for sub-µs values).
func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	b := 0
	for us > 1 {
		us >>= 1
		b++
	}
	return b
}

// bucketLow returns the lower bound of bucket b.
func bucketLow(b int) time.Duration {
	return time.Duration(int64(1)<<uint(b)) * time.Microsecond
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets[bucketOf(d)]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the average sample, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]) at bucket
// resolution: the upper edge of the bucket containing that rank. Empty
// histograms return 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) time.Duration {
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	if h.count == 0 {
		return 0
	}
	rank := int64(q * float64(h.count-1))
	keys := make([]int, 0, len(h.buckets))
	for b := range h.buckets {
		keys = append(keys, b)
	}
	sort.Ints(keys)
	var seen int64
	for _, b := range keys {
		seen += h.buckets[b]
		if seen > rank {
			return bucketLow(b + 1) // bucket upper edge
		}
	}
	return h.max
}

// Summarize renders the histogram as a Summary compatible with the
// sample-keeping Latency collector. Count, Mean, Min, Max and Total are
// exact; the order statistics are bucket-resolution upper bounds.
func (h *Histogram) Summarize() Summary {
	h.mu.Lock()
	defer h.mu.Unlock()
	var s Summary
	s.Count = int(h.count)
	if h.count == 0 {
		return s
	}
	s.Total = h.sum
	s.Mean = h.sum / time.Duration(h.count)
	s.Min = h.min
	s.Max = h.max
	s.Median = h.quantileLocked(0.5)
	s.P90 = h.quantileLocked(0.9)
	s.P95 = h.quantileLocked(0.95)
	s.P99 = h.quantileLocked(0.99)
	return s
}

// String renders a compact text histogram, one line per occupied bucket.
func (h *Histogram) String() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return "histogram: empty"
	}
	keys := make([]int, 0, len(h.buckets))
	for b := range h.buckets {
		keys = append(keys, b)
	}
	sort.Ints(keys)
	var sb strings.Builder
	fmt.Fprintf(&sb, "histogram: %d samples, min %v, max %v\n", h.count, h.min, h.max)
	var peak int64
	for _, b := range keys {
		if h.buckets[b] > peak {
			peak = h.buckets[b]
		}
	}
	for _, b := range keys {
		n := h.buckets[b]
		bar := strings.Repeat("#", int(40*n/peak))
		fmt.Fprintf(&sb, "%12v-%-12v %8d %s\n", bucketLow(b), bucketLow(b+1), n, bar)
	}
	return sb.String()
}
