package metrics

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"time"
)

// Histogram buckets duration samples for cheap, fixed-memory latency
// distributions — used by long-running drivers where keeping every sample
// (as Latency does) would grow without bound.
//
// Buckets are log-linear over nanoseconds (the HDR-histogram scheme): each
// power-of-two octave is split into 2^subBits linear sub-buckets, and
// durations below 2^subBits ns are exact. A reported quantile is therefore
// an upper bound at most 1/2^subBits (≈3.1%) above the true sample, instead
// of the up-to-2x error a plain power-of-two bucketing gives — coarse
// buckets made every benchmark row report the same handful of quantized
// percentile values (p50 ≡ 4.096ms and so on), which masked real tail
// movement from the perf-regression gate.
type Histogram struct {
	mu      sync.Mutex
	buckets map[int]int64 // bucketOf(ns) -> count
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

// subBits sets the per-octave resolution: 2^subBits linear sub-buckets per
// power-of-two range, bounding quantile overshoot at 1/2^subBits.
const subBits = 5

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make(map[int]int64)}
}

// bucketOf maps a non-negative duration to its log-linear bucket index.
// Indexes are contiguous: [0, 2^subBits) are exact one-nanosecond buckets,
// then each octave o contributes 2^subBits buckets of width 2^(o-subBits).
func bucketOf(d time.Duration) int {
	ns := uint64(d.Nanoseconds())
	if ns < 1<<subBits {
		return int(ns)
	}
	o := bits.Len64(ns) - 1 // o >= subBits
	g := uint(o - subBits)  // sub-bucket width is 2^g ns
	return int(g)*(1<<subBits) + int(ns>>g)
}

// bucketLow returns the inclusive lower bound of bucket idx — the inverse
// of bucketOf up to sub-bucket width.
func bucketLow(idx int) time.Duration {
	if idx < 1<<subBits {
		return time.Duration(idx)
	}
	g := uint(idx/(1<<subBits) - 1)
	m := idx - int(g)*(1<<subBits) // in [2^subBits, 2^(subBits+1))
	return time.Duration(uint64(m) << g)
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets[bucketOf(d)]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the average sample, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]) at bucket
// resolution: the upper edge of the bucket containing that rank, clamped to
// the recorded maximum. Empty histograms return 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) time.Duration {
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	if h.count == 0 {
		return 0
	}
	rank := int64(q * float64(h.count-1))
	keys := make([]int, 0, len(h.buckets))
	for b := range h.buckets {
		keys = append(keys, b)
	}
	sort.Ints(keys)
	var seen int64
	for _, b := range keys {
		seen += h.buckets[b]
		if seen > rank {
			edge := bucketLow(b + 1) // bucket upper edge
			if edge > h.max {
				edge = h.max
			}
			return edge
		}
	}
	return h.max
}

// Summarize renders the histogram as a Summary compatible with the
// sample-keeping Latency collector. Count, Mean, Min, Max and Total are
// exact; the order statistics are bucket-resolution upper bounds (within
// 1/2^subBits of the true sample).
func (h *Histogram) Summarize() Summary {
	h.mu.Lock()
	defer h.mu.Unlock()
	var s Summary
	s.Count = int(h.count)
	if h.count == 0 {
		return s
	}
	s.Total = h.sum
	s.Mean = h.sum / time.Duration(h.count)
	s.Min = h.min
	s.Max = h.max
	s.Median = h.quantileLocked(0.5)
	s.P90 = h.quantileLocked(0.9)
	s.P95 = h.quantileLocked(0.95)
	s.P99 = h.quantileLocked(0.99)
	return s
}

// String renders a compact text histogram, one line per occupied octave
// (sub-buckets are folded together for readability; quantiles still use the
// full resolution).
func (h *Histogram) String() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return "histogram: empty"
	}
	octaves := make(map[int]int64)
	for b, n := range h.buckets {
		octaves[b/(1<<subBits)] += n
	}
	keys := make([]int, 0, len(octaves))
	for o := range octaves {
		keys = append(keys, o)
	}
	sort.Ints(keys)
	var sb strings.Builder
	fmt.Fprintf(&sb, "histogram: %d samples, min %v, max %v\n", h.count, h.min, h.max)
	var peak int64
	for _, o := range keys {
		if octaves[o] > peak {
			peak = octaves[o]
		}
	}
	for _, o := range keys {
		n := octaves[o]
		bar := strings.Repeat("#", int(40*n/peak))
		fmt.Fprintf(&sb, "%12v-%-12v %8d %s\n",
			bucketLow(o*(1<<subBits)), bucketLow((o+1)*(1<<subBits)), n, bar)
	}
	return sb.String()
}
