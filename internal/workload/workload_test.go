package workload

import (
	"testing"

	"github.com/fastrepro/fast/internal/simimg"
)

func smallSpec() Spec {
	return Spec{
		Name:        "test",
		Scenes:      4,
		Photos:      40,
		Subjects:    3,
		SubjectRate: 0.5,
		Resolution:  48,
		Seed:        7,
		SceneBase:   500,
	}
}

func TestGenerateBasics(t *testing.T) {
	ds, err := Generate(smallSpec())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(ds.Photos) != 40 {
		t.Fatalf("got %d photos, want 40", len(ds.Photos))
	}
	if ds.TotalBytes <= 0 {
		t.Error("TotalBytes not positive")
	}
	ids := make(map[uint64]bool)
	for i, p := range ds.Photos {
		if p == nil {
			t.Fatalf("photo %d is nil", i)
		}
		if p.Img.W != 48 {
			t.Errorf("photo %d resolution %d, want 48", i, p.Img.W)
		}
		if ids[p.ID] {
			t.Fatalf("duplicate photo ID %d", p.ID)
		}
		ids[p.ID] = true
		if p.Scene < 500 || p.Scene >= 504 {
			t.Errorf("photo %d scene %d outside dataset range", i, p.Scene)
		}
	}
	// Ground-truth indexes agree with photo metadata.
	for sid, idList := range ds.BySubject {
		for _, id := range idList {
			p := ds.PhotoByID(id)
			if p == nil || !p.ContainsSubject(sid) {
				t.Fatalf("BySubject[%d] lists photo %d which does not contain it", sid, id)
			}
		}
	}
	total := 0
	for _, idList := range ds.ByScene {
		total += len(idList)
	}
	if total != 40 {
		t.Errorf("ByScene covers %d photos, want 40", total)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Photos {
		if a.Photos[i].ID != b.Photos[i].ID || a.Photos[i].Scene != b.Photos[i].Scene {
			t.Fatalf("metadata differs at photo %d", i)
		}
		mad, _ := simimg.MAD(a.Photos[i].Img, b.Photos[i].Img)
		if mad != 0 {
			t.Fatalf("pixels differ at photo %d (MAD %v)", i, mad)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Spec{}); err == nil {
		t.Error("empty spec should fail")
	}
	bad := smallSpec()
	bad.SubjectRate = 1.5
	if _, err := Generate(bad); err == nil {
		t.Error("bad subject rate should fail")
	}
}

func TestSpecPresets(t *testing.T) {
	w := Wuhan(0)
	s := Shanghai(0)
	if w.Photos != 2100 || s.Photos != 3900 {
		t.Errorf("default-scale photo counts = %d, %d; want 2100, 3900", w.Photos, s.Photos)
	}
	if w.Scenes != 16 || s.Scenes != 22 {
		t.Errorf("landmark counts = %d, %d; want 16, 22 (Table II)", w.Scenes, s.Scenes)
	}
	w2 := Wuhan(1_000_000)
	if w2.Photos != 21 {
		t.Errorf("scaled Wuhan photos = %d, want 21", w2.Photos)
	}
	if w.SceneBase == s.SceneBase {
		t.Error("datasets share scene namespaces")
	}
}

func TestPhotoByID(t *testing.T) {
	ds, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	p := ds.Photos[5]
	if got := ds.PhotoByID(p.ID); got != p {
		t.Error("PhotoByID did not return the photo")
	}
	if ds.PhotoByID(1) != nil {
		t.Error("absent ID should return nil")
	}
}

func TestQueries(t *testing.T) {
	ds, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	qs, err := ds.Queries(10, 3)
	if err != nil {
		t.Fatalf("Queries: %v", err)
	}
	if len(qs) != 10 {
		t.Fatalf("got %d queries, want 10", len(qs))
	}
	for i, q := range qs {
		if q.Probe == nil {
			t.Fatalf("query %d has nil probe", i)
		}
		if len(q.Relevant) == 0 {
			t.Fatalf("query %d has empty relevant set", i)
		}
		for id := range q.Relevant {
			p := ds.PhotoByID(id)
			if p == nil || p.Scene != q.Scene {
				t.Fatalf("query %d relevant photo %d not from scene %d", i, id, q.Scene)
			}
		}
		for sid, rel := range q.SubjectRelevant {
			for id := range rel {
				p := ds.PhotoByID(id)
				if p == nil || !p.ContainsSubject(sid) {
					t.Fatalf("query %d subject %d lists photo %d without it", i, sid, id)
				}
			}
		}
	}
	// Determinism.
	qs2, _ := ds.Queries(10, 3)
	for i := range qs {
		if qs[i].Scene != qs2[i].Scene {
			t.Fatal("queries not deterministic")
		}
	}
}

func TestQueriesValidation(t *testing.T) {
	ds, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Queries(0, 1); err == nil {
		t.Error("zero queries should fail")
	}
	empty := &Dataset{Spec: smallSpec()}
	if _, err := empty.Queries(5, 1); err == nil {
		t.Error("empty dataset should fail")
	}
}
