// Package workload generates the evaluation datasets and query sets. It is
// the stand-in for the paper's 60-million-image crowd-sourced corpus
// (Table II): two datasets named after Wuhan (16 landmarks, 21M photos,
// 62.7 TB) and Shanghai (22 landmarks, 39M photos, 152.5 TB), scaled down
// by a configurable factor for laptop-scale runs.
//
// Every photo is rendered by the simimg substrate from a landmark scene
// with a randomly drawn perturbation; a configurable fraction of photos
// additionally contains "subject" patches (the missing children of the use
// case). Because the generator records which photos contain which subjects
// and scenes, retrieval ground truth is exact.
package workload

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"github.com/fastrepro/fast/internal/simimg"
)

// Spec describes a dataset to generate.
type Spec struct {
	Name         string
	Scenes       int     // number of landmark scenes
	Photos       int     // total photos
	Subjects     int     // distinct subject identities
	SubjectRate  float64 // fraction of photos containing a subject
	Resolution   int     // raster size; 0 means 64
	MeanSeverity float64 // average perturbation severity; 0 means 0.12
	Seed         int64
	SceneBase    simimg.SceneID // first scene ID (keeps datasets disjoint)
}

// DefaultScale is the down-scaling factor applied to the paper's photo
// counts for laptop-scale runs (1:10000 → 2100 and 3900 photos).
const DefaultScale = 10000

// Wuhan returns the Wuhan dataset spec scaled down by scale (0 selects
// DefaultScale). The paper's corpus: 16 landmarks, 21M photos.
func Wuhan(scale int) Spec {
	if scale <= 0 {
		scale = DefaultScale
	}
	return Spec{
		Name:        "Wuhan",
		Scenes:      16,
		Photos:      21_000_000 / scale,
		Subjects:    12,
		SubjectRate: 0.2,
		Seed:        101,
		SceneBase:   1000,
	}
}

// Shanghai returns the Shanghai dataset spec scaled down by scale
// (0 selects DefaultScale). The paper's corpus: 22 landmarks, 39M photos.
func Shanghai(scale int) Spec {
	if scale <= 0 {
		scale = DefaultScale
	}
	return Spec{
		Name:        "Shanghai",
		Scenes:      22,
		Photos:      39_000_000 / scale,
		Subjects:    16,
		SubjectRate: 0.2,
		Seed:        202,
		SceneBase:   2000,
	}
}

func (s Spec) withDefaults() (Spec, error) {
	if s.Resolution == 0 {
		s.Resolution = 64
	}
	if s.MeanSeverity == 0 {
		s.MeanSeverity = 0.12
	}
	if s.Scenes < 1 || s.Photos < 1 {
		return s, fmt.Errorf("workload: spec needs scenes and photos, got %+v", s)
	}
	if s.SubjectRate < 0 || s.SubjectRate > 1 {
		return s, fmt.Errorf("workload: subject rate %v out of [0,1]", s.SubjectRate)
	}
	return s, nil
}

// Dataset is a generated corpus with ground truth.
type Dataset struct {
	Spec       Spec
	Photos     []*simimg.Photo
	BySubject  map[simimg.SubjectID][]uint64 // subject -> photo IDs
	ByScene    map[simimg.SceneID][]uint64   // scene -> photo IDs
	TotalBytes int64                         // simulated original corpus size
}

// Generate renders the dataset. Photos are generated deterministically from
// the spec seed; generation parallelizes across GOMAXPROCS workers.
func Generate(spec Spec) (*Dataset, error) {
	spec, err := spec.withDefaults()
	if err != nil {
		return nil, err
	}
	ds := &Dataset{
		Spec:      spec,
		Photos:    make([]*simimg.Photo, spec.Photos),
		BySubject: make(map[simimg.SubjectID][]uint64),
		ByScene:   make(map[simimg.SceneID][]uint64),
	}
	scenes := make([]*simimg.Scene, spec.Scenes)
	for i := range scenes {
		scenes[i] = simimg.NewScene(spec.SceneBase + simimg.SceneID(i))
	}

	// Pre-draw per-photo parameters sequentially for determinism, then
	// render in parallel.
	type job struct {
		idx    int
		scene  *simimg.Scene
		params simimg.PhotoParams
		seed   int64
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	jobs := make([]job, spec.Photos)
	for i := range jobs {
		scene := scenes[rng.Intn(len(scenes))]
		var subjects []simimg.SubjectID
		if spec.Subjects > 0 && rng.Float64() < spec.SubjectRate {
			subjects = append(subjects, subjectID(spec, rng.Intn(spec.Subjects)))
			// Occasionally two subjects share a frame.
			if rng.Float64() < 0.1 {
				subjects = append(subjects, subjectID(spec, rng.Intn(spec.Subjects)))
			}
		}
		sev := spec.MeanSeverity * (0.5 + rng.Float64())
		if sev > 1 {
			sev = 1
		}
		jobs[i] = job{
			idx:   i,
			scene: scene,
			params: simimg.PhotoParams{
				Resolution: spec.Resolution,
				Severity:   sev,
				Subjects:   subjects,
			},
			seed: rng.Int63(),
		}
	}

	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	ch := make(chan job)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				prng := rand.New(rand.NewSource(j.seed))
				ds.Photos[j.idx] = simimg.RenderPhoto(photoID(spec, j.idx), j.scene, j.params, prng)
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()

	for _, p := range ds.Photos {
		ds.TotalBytes += p.SizeBytes
		ds.ByScene[p.Scene] = append(ds.ByScene[p.Scene], p.ID)
		for _, s := range p.Subjects {
			ds.BySubject[s] = append(ds.BySubject[s], p.ID)
		}
	}
	return ds, nil
}

// photoID gives photos globally unique IDs across datasets.
func photoID(spec Spec, idx int) uint64 {
	return uint64(spec.SceneBase)*10_000_000 + uint64(idx) + 1
}

// subjectID namespaces subjects per dataset.
func subjectID(spec Spec, i int) simimg.SubjectID {
	return simimg.SubjectID(uint64(spec.SceneBase)*1000 + uint64(i) + 1)
}

// PhotoByID returns the photo with the given ID, or nil.
func (d *Dataset) PhotoByID(id uint64) *simimg.Photo {
	base := photoID(d.Spec, 0)
	idx := int(id - base)
	if idx < 0 || idx >= len(d.Photos) {
		return nil
	}
	return d.Photos[idx]
}

// FreshPhoto renders a brand-new photo of one of the dataset's scenes,
// deterministically in (id, seed). Insertion experiments use it to extend a
// built index with photos the corpus has never seen.
func (d *Dataset) FreshPhoto(id uint64, seed int64) *simimg.Photo {
	rng := rand.New(rand.NewSource(seed ^ int64(id)*0x9e3779b9))
	scene := simimg.NewScene(d.Spec.SceneBase + simimg.SceneID(rng.Intn(d.Spec.Scenes)))
	return simimg.RenderPhoto(id, scene, simimg.PhotoParams{
		Resolution: d.Spec.Resolution,
		Severity:   d.Spec.MeanSeverity,
	}, rng)
}

// Query is one retrieval task. The probe is a fresh photograph correlated
// with a corpus photo (a re-take of the same scene, possibly showing the
// same subjects — e.g. the photo the missing child's parents took at the
// park entrance). Relevant is the scene-level ground truth: the corpus
// photos of the same location, which is the correlated group FAST must
// narrow the search to. Subjects carries the probe's subject IDs so the
// use case can post-verify which retrieved photos actually contain the
// child (the paper's human post-verification step).
type Query struct {
	Scene    simimg.SceneID
	Subjects []simimg.SubjectID
	Probe    *simimg.Image
	Relevant map[uint64]bool
	// SubjectRelevant maps each probe subject to the corpus photos
	// containing it (across all scenes).
	SubjectRelevant map[simimg.SubjectID]map[uint64]bool
}

// Queries builds n queries. Each query re-renders a randomly chosen corpus
// photo's scene and subjects under a fresh mild perturbation, so the probe
// is a near-duplicate of the corpus group without being byte-identical to
// any stored photo. Queries are deterministic in the seed.
func (d *Dataset) Queries(n int, seed int64) ([]Query, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: query count must be positive, got %d", n)
	}
	if len(d.Photos) == 0 {
		return nil, fmt.Errorf("workload: dataset %q is empty", d.Spec.Name)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Query, 0, n)
	for i := 0; i < n; i++ {
		target := d.Photos[rng.Intn(len(d.Photos))]
		scene := simimg.NewScene(target.Scene)
		probe := simimg.RenderPhoto(0, scene, simimg.PhotoParams{
			Resolution: d.Spec.Resolution,
			Severity:   0.08,
			Subjects:   target.Subjects,
		}, rng)
		relevant := make(map[uint64]bool, len(d.ByScene[target.Scene]))
		for _, id := range d.ByScene[target.Scene] {
			relevant[id] = true
		}
		subjRel := make(map[simimg.SubjectID]map[uint64]bool, len(target.Subjects))
		for _, s := range target.Subjects {
			m := make(map[uint64]bool, len(d.BySubject[s]))
			for _, id := range d.BySubject[s] {
				m[id] = true
			}
			subjRel[s] = m
		}
		out = append(out, Query{
			Scene:           target.Scene,
			Subjects:        append([]simimg.SubjectID(nil), target.Subjects...),
			Probe:           probe.Img,
			Relevant:        relevant,
			SubjectRelevant: subjRel,
		})
	}
	return out, nil
}
