package core

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"github.com/fastrepro/fast/internal/failpoint"
	"github.com/fastrepro/fast/internal/workload"
)

var (
	fuzzSeedOnce sync.Once
	fuzzSeedSnap []byte
)

// fuzzSeedSnapshot builds one small valid container snapshot for seeding.
func fuzzSeedSnapshot(tb testing.TB) []byte {
	fuzzSeedOnce.Do(func() {
		ds, err := workload.Generate(workload.Spec{
			Name: "core-fuzz", Scenes: 2, Photos: 8, Subjects: 2,
			SubjectRate: 0.25, Resolution: 32, Seed: 3, SceneBase: 50,
		})
		if err != nil {
			return
		}
		e := NewEngine(Config{})
		if _, err := e.Build(ds.Photos); err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := e.WriteTo(&buf); err != nil {
			return
		}
		fuzzSeedSnap = buf.Bytes()
	})
	if fuzzSeedSnap == nil {
		tb.Skip("seed snapshot construction failed")
	}
	return fuzzSeedSnap
}

// FuzzReadEngine throws arbitrary bytes at the snapshot deserializer. The
// invariants: never panic, never return a half-built engine on error, and
// any accepted snapshot must itself round-trip — written back out and
// re-read, it yields an engine of the same size.
func FuzzReadEngine(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("FASTIDX1"))
	f.Add([]byte("FASTSNP1"))
	f.Add([]byte("NOTMAGIC--------"))
	seed := fuzzSeedSnapshot(f)
	f.Add(seed)
	// A truncated and a bit-flipped variant, to seed the mutation space
	// near the interesting boundaries.
	f.Add(seed[:len(seed)/2])
	flipped := bytes.Clone(seed)
	flipped[len(flipped)-1] ^= 1
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		if failpoint.Enabled(failpoint.CoreSnapshotRead) {
			t.Skip("failpoints armed externally")
		}
		e, err := ReadEngine(bytes.NewReader(data))
		if err != nil {
			if e != nil {
				t.Fatal("error return carried a non-nil engine")
			}
			return
		}
		var out bytes.Buffer
		if _, err := e.WriteTo(&out); err != nil {
			t.Fatalf("re-serializing accepted snapshot: %v", err)
		}
		back, err := ReadEngine(&out)
		if err != nil {
			t.Fatalf("re-reading accepted snapshot: %v", err)
		}
		if back.Len() != e.Len() {
			t.Fatalf("round trip changed Len: %d -> %d", e.Len(), back.Len())
		}
	})
}

// sanity pin: ErrBadSnapshot classification never regresses under the
// fuzz corpus's truncation seeds.
func TestFuzzSeedsClassifyAsBadSnapshot(t *testing.T) {
	seed := fuzzSeedSnapshot(t)
	for cut := 0; cut < len(seed); cut += len(seed)/64 + 1 {
		if _, err := ReadEngine(bytes.NewReader(seed[:cut])); err != nil && !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("cut at %d: %v is not ErrBadSnapshot", cut, err)
		}
	}
}
