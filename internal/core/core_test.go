package core

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/fastrepro/fast/internal/metrics"
	"github.com/fastrepro/fast/internal/simimg"
	"github.com/fastrepro/fast/internal/workload"
)

// testDataset builds a small deterministic corpus.
func testDataset(t *testing.T) *workload.Dataset {
	t.Helper()
	ds, err := workload.Generate(workload.Spec{
		Name:        "core-test",
		Scenes:      6,
		Photos:      120,
		Subjects:    4,
		SubjectRate: 0.3,
		Resolution:  64,
		Seed:        11,
		SceneBase:   700,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return ds
}

var (
	cachedDSOnce sync.Once
	cachedDS     *workload.Dataset
)

// testDatasetCached returns the shared corpus, generated once per test
// binary. Tests that only read the dataset (build engines over it, issue
// queries) use this to avoid regenerating 120 images per test.
func testDatasetCached(t *testing.T) *workload.Dataset {
	t.Helper()
	cachedDSOnce.Do(func() { cachedDS = testDataset(t) })
	return cachedDS
}

func builtEngine(t *testing.T, ds *workload.Dataset) *Engine {
	t.Helper()
	e := NewEngine(Config{})
	st, err := e.Build(ds.Photos)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if st.Photos != len(ds.Photos) {
		t.Fatalf("BuildStats.Photos = %d, want %d", st.Photos, len(ds.Photos))
	}
	if st.FeatureTime <= 0 || st.IndexTime <= 0 {
		t.Errorf("timing breakdown missing: %+v", st)
	}
	if st.Descriptors == 0 {
		t.Error("no descriptors extracted during build")
	}
	return e
}

func TestBuildValidation(t *testing.T) {
	e := NewEngine(Config{})
	if _, err := e.Build(nil); err == nil {
		t.Error("empty corpus should fail")
	}
	if err := e.Insert(&simimg.Photo{ID: 1, Img: simimg.New(64, 64)}); err == nil {
		t.Error("Insert before Build should fail")
	}
	if _, err := e.Query(simimg.New(64, 64), 5); err == nil {
		t.Error("Query before Build should fail")
	}
}

func TestBuildAndQueryEndToEnd(t *testing.T) {
	ds := testDataset(t)
	e := builtEngine(t, ds)
	if e.Len() != len(ds.Photos) {
		t.Fatalf("Len = %d, want %d", e.Len(), len(ds.Photos))
	}

	qs, err := ds.Queries(12, 21)
	if err != nil {
		t.Fatal(err)
	}
	var acc metrics.Accuracy
	totalCand := 0
	for _, q := range qs {
		res, err := e.Query(q.Probe, 100)
		if err != nil {
			t.Fatalf("Query: %v", err)
		}
		totalCand += len(res)
		ids := make([]uint64, len(res))
		for i, r := range res {
			ids[i] = r.ID
		}
		acc.Add(metrics.ScoreRetrieval(ids, q.Relevant).Recall())
		// Results must be sorted by descending score.
		for i := 1; i < len(res); i++ {
			if res[i].Score > res[i-1].Score {
				t.Fatal("results not sorted by score")
			}
		}
	}
	if acc.Mean() < 0.3 {
		t.Errorf("mean scene recall %v too low for near-duplicate probes", acc.Mean())
	}
	if totalCand == 0 {
		t.Fatal("no candidates returned across all queries")
	}
}

func TestQueryNarrowsScope(t *testing.T) {
	// The headline property: FAST returns a small correlated group, not the
	// whole corpus, and the group is enriched in same-scene photos.
	ds := testDataset(t)
	e := builtEngine(t, ds)
	qs, err := ds.Queries(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		res, err := e.Query(q.Probe, len(ds.Photos))
		if err != nil {
			t.Fatal(err)
		}
		if len(res) == 0 {
			continue
		}
		sameScene := 0
		for _, r := range res {
			if q.Relevant[r.ID] {
				sameScene++
			}
		}
		frac := float64(sameScene) / float64(len(res))
		baseRate := float64(len(q.Relevant)) / float64(len(ds.Photos))
		if frac < baseRate {
			t.Errorf("scene %d: result enrichment %.2f below base rate %.2f",
				q.Scene, frac, baseRate)
		}
	}
}

func TestTopKLimit(t *testing.T) {
	ds := testDataset(t)
	e := builtEngine(t, ds)
	qs, _ := ds.Queries(1, 2)
	res, err := e.Query(qs[0].Probe, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) > 3 {
		t.Errorf("topK violated: %d results", len(res))
	}
	if _, err := e.Query(qs[0].Probe, 0); err == nil {
		t.Error("topK 0 should fail")
	}
}

func TestInsertAfterBuild(t *testing.T) {
	ds := testDataset(t)
	e := builtEngine(t, ds)
	rng := rand.New(rand.NewSource(9))
	scene := simimg.NewScene(700)
	p := simimg.RenderPhoto(999_999, scene, simimg.PhotoParams{Resolution: 64, Severity: 0.02}, rng)
	if err := e.Insert(p); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if e.Len() != len(ds.Photos)+1 {
		t.Errorf("Len = %d after insert", e.Len())
	}
	// Duplicate IDs rejected.
	if err := e.Insert(p); err == nil {
		t.Error("duplicate insert should fail")
	}
	// The new photo is findable via near-duplicate probes. LSH recall is
	// probabilistic per probe, so try a few independent probes and require
	// at least one hit (expected hit rate per probe is >0.9 at this
	// similarity).
	found := false
	for trial := 0; trial < 3 && !found; trial++ {
		probe := simimg.RenderPhoto(0, scene, simimg.PhotoParams{Resolution: 64, Severity: 0.02}, rng)
		res, err := e.Query(probe.Img, len(ds.Photos)+1)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if r.ID == 999_999 {
				found = true
			}
		}
	}
	if !found {
		t.Error("freshly inserted photo not retrievable by scene probes")
	}
}

func TestQueryParallelMatchesSerial(t *testing.T) {
	ds := testDataset(t)
	e := builtEngine(t, ds)
	qs, _ := ds.Queries(4, 8)
	for _, q := range qs {
		serial, err := e.QueryParallel(q.Probe, 50, 1)
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := e.QueryParallel(q.Probe, 50, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(serial) != len(parallel) {
			t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
		}
		for i := range serial {
			if serial[i] != parallel[i] {
				t.Fatalf("results differ at %d: %+v vs %+v", i, serial[i], parallel[i])
			}
		}
	}
}

func TestIndexBytesSmallVersusRawFeatures(t *testing.T) {
	// Table IV's mechanism: the FAST index is a small fraction of the raw
	// descriptor footprint.
	ds := testDataset(t)
	e := builtEngine(t, ds)
	idx := e.IndexBytes()
	if idx <= 0 {
		t.Fatal("IndexBytes not positive")
	}
	// Raw PCA-SIFT features: descriptors * dim * 8 bytes. Even the compact
	// PCA representation dwarfs the Bloom summaries.
	var raw int64
	for range ds.Photos {
		raw += 64 * 20 * 8 // MaxKeypoints * PCA dim * float64
	}
	if idx >= raw {
		t.Errorf("index %dB not smaller than raw features %dB", idx, raw)
	}
}

func TestStatsAccessors(t *testing.T) {
	e := NewEngine(Config{})
	if st := e.TableStats(); st.Inserts != 0 {
		t.Error("unbuilt engine has table stats")
	}
	if st := e.LSHStats(); st.Buckets != 0 {
		t.Error("unbuilt engine has LSH stats")
	}
	ds := testDataset(t)
	e = builtEngine(t, ds)
	if st := e.TableStats(); st.Inserts != len(ds.Photos) {
		t.Errorf("table inserts = %d, want %d", st.Inserts, len(ds.Photos))
	}
	if st := e.LSHStats(); st.TotalRefs == 0 {
		t.Error("LSH has no references after build")
	}
	if e.TableStats().Failures != 0 {
		t.Error("flat table failed during build at low load")
	}
}

func TestSummarizeConsistency(t *testing.T) {
	ds := testDataset(t)
	e := builtEngine(t, ds)
	img := ds.Photos[0].Img
	a, err := e.Summarize(img)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Summarize(img)
	if err != nil {
		t.Fatal(err)
	}
	if a.PopCount() != b.PopCount() {
		t.Error("Summarize not deterministic")
	}
}

func TestGroupExpandDisabled(t *testing.T) {
	ds := testDataset(t)
	expanded := NewEngine(Config{})
	plain := NewEngine(Config{GroupExpand: -1})
	if _, err := expanded.Build(ds.Photos); err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Build(ds.Photos); err != nil {
		t.Fatal(err)
	}
	qs, _ := ds.Queries(8, 71)
	var withExp, without int
	for _, q := range qs {
		a, err := expanded.Query(q.Probe, len(ds.Photos))
		if err != nil {
			t.Fatal(err)
		}
		b, err := plain.Query(q.Probe, len(ds.Photos))
		if err != nil {
			t.Fatal(err)
		}
		withExp += len(a)
		without += len(b)
	}
	// Expansion must never shrink the result set, and across a batch of
	// queries it should recover strictly more group members.
	if withExp < without {
		t.Fatalf("expansion returned fewer results: %d vs %d", withExp, without)
	}
	if withExp == without {
		t.Error("group expansion had no effect across 8 queries (suspicious)")
	}
}
