package core

import (
	"fmt"

	"github.com/fastrepro/fast/internal/cuckoo"
	"github.com/fastrepro/fast/internal/lsh"
)

// Delete removes a photo from the index: its LSH references, its flat-table
// slot and its summary. The entries slice keeps a tombstone (nil summary)
// so other slots stay valid; tombstones are reclaimed on the next Build.
// It returns an error if the photo is not indexed.
func (e *Engine) Delete(id uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.index == nil {
		return fmt.Errorf("core: engine not built")
	}
	slot, ok := e.byID[id]
	if !ok {
		// Not resident: the photo may have been migrated to the cold tier,
		// where deletion is a durable catalog tombstone (the record itself
		// lingers on disk until the compactor folds it away).
		if e.cold != nil {
			deleted, err := e.cold.Delete(id)
			if err != nil {
				return fmt.Errorf("core: deleting cold photo %d: %w", id, err)
			}
			if deleted {
				e.epoch.Add(1)
				e.publishLocked(false, nil, nil)
				return nil
			}
		}
		return fmt.Errorf("core: photo %d not indexed", id)
	}
	sp := e.entries[slot].summary
	if sp != nil && len(sp.Bits) > 0 {
		if _, err := e.index.Delete(lsh.ItemID(id), sp.Bits); err != nil {
			return fmt.Errorf("core: removing LSH references: %w", err)
		}
	}
	if !e.table.Delete(id) {
		return fmt.Errorf("core: photo %d missing from flat table (index corrupt)", id)
	}
	// Tombstone copy-on-write: the entries backing array is shared with
	// published read views, so the slot must not be cleared in place under a
	// lock-free reader. Appends extend the shared array safely (they write
	// past every published length); overwrites copy.
	next := make([]entry, len(e.entries), cap(e.entries))
	copy(next, e.entries)
	next[slot] = entry{} // tombstone
	e.entries = next
	delete(e.byID, id)
	// Dual residency (a migration interrupted between its cold publish and
	// hot removal) must not resurrect the photo: tombstone the cold copy too.
	if e.cold != nil && e.cold.Contains(id) {
		if _, err := e.cold.Delete(id); err != nil {
			return fmt.Errorf("core: deleting cold copy of photo %d: %w", id, err)
		}
	}
	e.epoch.Add(1) // retire result-cache entries computed before the delete
	var sets [][]uint32
	if sp != nil && len(sp.Bits) > 0 {
		sets = [][]uint32{sp.Bits}
	}
	e.publishLocked(false, sets, []uint64{id})
	return nil
}

// Contains reports whether a photo is currently indexed in either tier.
func (e *Engine) Contains(id uint64) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if _, ok := e.byID[id]; ok {
		return true
	}
	return e.cold != nil && e.cold.Contains(id)
}

// Compact rebuilds the entry storage without deletion tombstones, shrinking
// the per-entry slice and refreshing the flat table. Long-running
// deployments call it after bulk deletions; queries and inserts work
// identically before and after.
func (e *Engine) Compact() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.table == nil {
		return fmt.Errorf("core: engine not built")
	}
	live := make([]entry, 0, len(e.byID))
	for _, ent := range e.entries {
		if ent.summary != nil {
			live = append(live, ent)
		}
	}
	capacity := e.cfg.TableCapacity
	if capacity == 0 {
		capacity = e.table.Cap() // keep the existing size
	}
	table, err := cuckoo.NewFlat(capacity, e.cfg.Neighborhood, 0, 12345)
	if err != nil {
		return err
	}
	byID := make(map[uint64]int, len(live))
	for slot, ent := range live {
		if err := table.Insert(ent.id, uint64(slot)); err != nil {
			return fmt.Errorf("core: compacting entry %d: %w", ent.id, err)
		}
		byID[ent.id] = slot
	}
	e.entries = live
	e.table = table
	e.byID = byID
	e.epoch.Add(1) // entry slots moved; cached results must not outlive them
	e.publishLocked(true, nil, nil)
	return nil
}
