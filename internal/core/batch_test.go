package core

import (
	"testing"

	"github.com/fastrepro/fast/internal/metrics"
	"github.com/fastrepro/fast/internal/simimg"
)

// TestQueryBatchMatchesSequential is the shard-determinism contract: over
// the seed workload, QueryBatch at any worker count must return exactly the
// sequential Query results — same IDs, same scores, same ordering — for
// every probe.
func TestQueryBatchMatchesSequential(t *testing.T) {
	ds := testDataset(t)
	e := builtEngine(t, ds)
	qs, err := ds.Queries(10, 31)
	if err != nil {
		t.Fatal(err)
	}
	imgs := make([]*simimg.Image, len(qs))
	for i, q := range qs {
		imgs[i] = q.Probe
	}

	want := make([][]SearchResult, len(imgs))
	for i, img := range imgs {
		res, err := e.Query(img, 50)
		if err != nil {
			t.Fatalf("sequential Query %d: %v", i, err)
		}
		want[i] = res
	}

	for _, workers := range []int{0, 1, 3, 8} {
		hist := metrics.NewHistogram()
		batch := e.QueryBatch(imgs, 50, workers, hist)
		if len(batch) != len(imgs) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(batch), len(imgs))
		}
		for i, br := range batch {
			if br.Err != nil {
				t.Fatalf("workers=%d query %d: %v", workers, i, br.Err)
			}
			if len(br.Results) != len(want[i]) {
				t.Fatalf("workers=%d query %d: %d hits, sequential returned %d",
					workers, i, len(br.Results), len(want[i]))
			}
			for j := range br.Results {
				if br.Results[j] != want[i][j] {
					t.Fatalf("workers=%d query %d: result %d = %+v, sequential %+v",
						workers, i, j, br.Results[j], want[i][j])
				}
			}
			if br.Latency <= 0 {
				t.Errorf("workers=%d query %d: non-positive latency", workers, i)
			}
		}
		if got := hist.Count(); got != int64(len(imgs)) {
			t.Errorf("workers=%d: histogram has %d samples, want %d", workers, got, len(imgs))
		}
	}
}

// TestQueryBatchEmptyAndErrors covers the edge shapes: empty batch, and a
// batch against an unbuilt engine reporting per-query errors without
// recording latency samples.
func TestQueryBatchEmptyAndErrors(t *testing.T) {
	e := NewEngine(Config{})
	if out := e.QueryBatch(nil, 10, 4, nil); len(out) != 0 {
		t.Errorf("empty batch returned %d results", len(out))
	}
	hist := metrics.NewHistogram()
	imgs := []*simimg.Image{simimg.New(32, 32), simimg.New(32, 32)}
	out := e.QueryBatch(imgs, 10, 2, hist)
	for i, br := range out {
		if br.Err == nil {
			t.Errorf("query %d against unbuilt engine succeeded", i)
		}
	}
	if hist.Count() != 0 {
		t.Errorf("failed queries recorded %d latency samples", hist.Count())
	}
}
