package core

import (
	"testing"

	"github.com/fastrepro/fast/internal/bloom"
	"github.com/fastrepro/fast/internal/metrics"
	"github.com/fastrepro/fast/internal/simimg"
)

// TestQueryBatchMatchesSequential is the shard-determinism contract: over
// the seed workload, QueryBatch at any worker count must return exactly the
// sequential Query results — same IDs, same scores, same ordering — for
// every probe.
func TestQueryBatchMatchesSequential(t *testing.T) {
	ds := testDataset(t)
	e := builtEngine(t, ds)
	qs, err := ds.Queries(10, 31)
	if err != nil {
		t.Fatal(err)
	}
	imgs := make([]*simimg.Image, len(qs))
	for i, q := range qs {
		imgs[i] = q.Probe
	}

	want := make([][]SearchResult, len(imgs))
	for i, img := range imgs {
		res, err := e.Query(img, 50)
		if err != nil {
			t.Fatalf("sequential Query %d: %v", i, err)
		}
		want[i] = res
	}

	for _, workers := range []int{0, 1, 3, 8} {
		hist := metrics.NewHistogram()
		batch := e.QueryBatch(imgs, 50, workers, hist)
		if len(batch) != len(imgs) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(batch), len(imgs))
		}
		for i, br := range batch {
			if br.Err != nil {
				t.Fatalf("workers=%d query %d: %v", workers, i, br.Err)
			}
			if len(br.Results) != len(want[i]) {
				t.Fatalf("workers=%d query %d: %d hits, sequential returned %d",
					workers, i, len(br.Results), len(want[i]))
			}
			for j := range br.Results {
				if br.Results[j] != want[i][j] {
					t.Fatalf("workers=%d query %d: result %d = %+v, sequential %+v",
						workers, i, j, br.Results[j], want[i][j])
				}
			}
			if br.Latency <= 0 {
				t.Errorf("workers=%d query %d: non-positive latency", workers, i)
			}
		}
		if got := hist.Count(); got != int64(len(imgs)) {
			t.Errorf("workers=%d: histogram has %d samples, want %d", workers, got, len(imgs))
		}
	}
}

// TestQueryBatchEmptyAndErrors covers the edge shapes: empty batch, and a
// batch against an unbuilt engine reporting per-query errors without
// recording latency samples.
func TestQueryBatchEmptyAndErrors(t *testing.T) {
	e := NewEngine(Config{})
	if out := e.QueryBatch(nil, 10, 4, nil); len(out) != 0 {
		t.Errorf("empty batch returned %d results", len(out))
	}
	hist := metrics.NewHistogram()
	imgs := []*simimg.Image{simimg.New(32, 32), simimg.New(32, 32)}
	out := e.QueryBatch(imgs, 10, 2, hist)
	for i, br := range out {
		if br.Err == nil {
			t.Errorf("query %d against unbuilt engine succeeded", i)
		}
	}
	if hist.Count() != 0 {
		t.Errorf("failed queries recorded %d latency samples", hist.Count())
	}
}

// TestQuerySummaryBatchMatchesQueryBatch is the prepared-path contract:
// Summarize + ToSparse + QuerySummaryBatch must return exactly what
// QueryBatch returns for the same probes at every worker count — the
// hoisted front half computes the same summary the full pipeline would,
// and the back half is shared code.
func TestQuerySummaryBatchMatchesQueryBatch(t *testing.T) {
	ds := testDataset(t)
	e := builtEngine(t, ds)
	qs, err := ds.Queries(10, 47)
	if err != nil {
		t.Fatal(err)
	}
	imgs := make([]*simimg.Image, len(qs))
	for i, q := range qs {
		imgs[i] = q.Probe
	}
	full := e.QueryBatch(imgs, 50, 4, nil)

	summaries := make([]*bloom.Sparse, len(imgs))
	for i, img := range imgs {
		f, err := e.Summarize(img)
		if err != nil {
			t.Fatalf("Summarize %d: %v", i, err)
		}
		summaries[i] = bloom.ToSparse(f)
	}

	for _, workers := range []int{1, 2, 8} {
		hist := metrics.NewHistogram()
		batch := e.QuerySummaryBatch(summaries, 50, workers, hist)
		if len(batch) != len(full) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(batch), len(full))
		}
		for i, br := range batch {
			if br.Err != nil {
				t.Fatalf("workers=%d summary %d: %v", workers, i, br.Err)
			}
			if len(br.Results) != len(full[i].Results) {
				t.Fatalf("workers=%d summary %d: %d hits, full path returned %d",
					workers, i, len(br.Results), len(full[i].Results))
			}
			for j := range br.Results {
				if br.Results[j] != full[i].Results[j] {
					t.Fatalf("workers=%d summary %d: result %d = %+v, full path %+v",
						workers, i, j, br.Results[j], full[i].Results[j])
				}
			}
		}
		if got := hist.Count(); got != int64(len(imgs)) {
			t.Errorf("workers=%d: histogram has %d samples, want %d", workers, got, len(imgs))
		}
	}

	// Edge shapes: empty batch, nil summary, bad topK.
	if out := e.QuerySummaryBatch(nil, 10, 4, nil); len(out) != 0 {
		t.Errorf("empty summary batch returned %d results", len(out))
	}
	if res, err := e.QuerySummary(nil, 10, 1); err != nil || res != nil {
		t.Errorf("nil summary: got (%v, %v), want (nil, nil)", res, err)
	}
	if _, err := e.QuerySummary(summaries[0], 0, 1); err == nil {
		t.Error("topK=0 accepted")
	}
}
