package core

import (
	"errors"
	"sync"

	"github.com/fastrepro/fast/internal/bloom"
	"github.com/fastrepro/fast/internal/cuckoo"
	"github.com/fastrepro/fast/internal/feature"
	"github.com/fastrepro/fast/internal/lsh"
	"github.com/fastrepro/fast/internal/store"
	"github.com/fastrepro/fast/internal/tiered"
)

// The epoch-published read path.
//
// Queries used to take Engine.mu.RLock for the whole SA+CHS back half,
// which made them contend with writers (Insert/Delete hold the write lock),
// with snapshot I/O (WriteTo holds the read lock for the full serialization)
// and with each other (RWMutex reader counts bounce between cores). The
// engine now follows RCU discipline instead:
//
//   - readView is an immutable snapshot of everything a query needs: the
//     trained basis, a frozen lsh.View, a frozen cuckoo.View, and the entry
//     slice. Nothing reachable from a published readView is ever written
//     again.
//   - Mutators (Insert, InsertBatch's committer, Delete, Compact, Build,
//     snapshot restore) still serialize on Engine.mu, build or patch the
//     next view while holding it, and publish with a single atomic pointer
//     store. Point mutations patch — they re-freeze only the band shards
//     and table shard the mutated key touches and share the rest with the
//     previous view — while structural changes (Build, Compact, restore)
//     freeze from scratch.
//   - Query/QueryBatch load the pointer once and run entirely against that
//     snapshot: no lock acquisition, no write to any shared structure, no
//     waiting on ingest. A query overlapping a mutation answers from the
//     pre-mutation state, which is a legal linearization (the same one the
//     old locked path could produce when the query won the lock race).
//
// Memory reclamation is the garbage collector's: superseded views stay
// alive exactly as long as some in-flight query still holds the pointer,
// then become unreachable. No quiescent-state tracking is needed.
//
// On top of the stable snapshot the per-candidate cost is word-parallel:
// every stored summary keeps a packed []uint64 image of its bits alongside
// the sparse form, and scoring runs fused AND+popcount/OR+popcount over
// those words (bloom.AndOrCount) instead of merging sorted position lists.
// The integer cardinalities are identical to the sparse merge, so scores —
// and therefore answers — are byte-identical to the locked reference path
// (QueryUncached), which the equivalence tests enforce at every worker
// count and under concurrent churn.

// readView is one immutable, atomically published index snapshot.
type readView struct {
	epoch    uint64           // index-mutation epoch this view materializes
	basisGen uint64           // retraining generation of pca (T1 cache keying)
	pca      *feature.PCASIFT // trained basis (read-only)
	index    *lsh.View        // frozen band maps
	table    *cuckoo.View     // frozen flat table
	entries  []entry          // slot storage; shared, never written in place
	minScore float64          // cfg snapshot, so a view is self-contained
	expand   int              // cfg.GroupExpand

	// Cold-tier pairing. The tiered view is captured under the same e.mu
	// hold that froze the hot structures, so a query always sees a coherent
	// hot+cold split of the corpus: an entry mid-migration is visible in
	// exactly one tier of any single readView (or both around the
	// tiered/migrate failpoint window, where the seen-set dedup makes the
	// duplicate benign). All nil when the cold tier is disabled.
	cold      *tiered.View
	coldStore *tiered.Store   // spill-counter sink only; never locked by queries
	coldDisk  store.DiskModel // cost model for cold bucket scans
}

// publishLocked derives the next readView from the engine's mutable
// structures and publishes it. Callers hold e.mu (write). full forces a
// from-scratch freeze (after Build/Compact/restore replace the structures);
// otherwise sets/keys name the LSH element sets and table keys the mutation
// touched, and only those shards are re-frozen.
func (e *Engine) publishLocked(full bool, sets [][]uint32, keys []uint64) {
	if e.pcasift == nil || e.index == nil || e.table == nil {
		e.view.Store(nil)
		return
	}
	prev := e.view.Load()
	var lv *lsh.View
	var tv *cuckoo.View
	if full || prev == nil {
		lv, tv = e.index.Freeze(), e.table.Freeze()
	} else {
		lv = e.index.Refreeze(prev.index, sets...)
		tv = e.table.Refreeze(prev.table, keys...)
	}
	next := &readView{
		epoch:    e.epoch.Load(),
		basisGen: e.basisGen,
		pca:      e.pcasift,
		index:    lv,
		table:    tv,
		entries:  e.entries,
		minScore: e.cfg.MinScore,
		expand:   e.cfg.GroupExpand,
	}
	if e.cold != nil {
		next.cold = e.cold.View()
		next.coldStore = e.cold
		next.coldDisk = e.coldDisk
	}
	e.view.Store(next)
}

// PublishedEpoch reports the epoch of the currently published read view
// (0 before the first Build). The serving layer surfaces it in /v1/stats so
// operators can watch the lock-free read path advance under ingest.
func (e *Engine) PublishedEpoch() uint64 {
	if v := e.view.Load(); v != nil {
		return v.epoch
	}
	return 0
}

// viewScratch recycles the per-query allocations of searchView: the
// candidate list and its dedup set, the packed probe words, the scoring
// slice, the group-expansion member set and the expansion re-query buffers.
type viewScratch struct {
	ids      []lsh.ItemID
	seen     map[lsh.ItemID]struct{}
	words    []uint64
	results  []SearchResult
	inResult map[uint64]bool
	gids     []lsh.ItemID
	gseen    map[lsh.ItemID]struct{}

	// Cold-spill buffers, touched only when the view carries a cold tier:
	// the probe's band keys, the per-posting word scratch (used on hosts
	// without a zero-copy mmap word view), the cold representative's words
	// and reconstructed bits, and the representative's band keys.
	bandKeys []uint64
	cwords   []uint64
	rwords   []uint64
	gkeys    []uint64
	gbits    []uint32
}

var viewScratchPool = sync.Pool{New: func() interface{} { return new(viewScratch) }}

// searchView runs SA+CHS+ranking for a prepared probe summary against the
// published view — no engine lock, no shared-state writes beyond the
// striped sim counters — and reports the epoch its answer is valid for.
// Results are byte-identical to the locked reference path (searchSummary).
func (e *Engine) searchView(probeSparse *bloom.Sparse, topK, workers int) ([]SearchResult, uint64, error) {
	v := e.view.Load()
	if v == nil {
		return nil, e.epoch.Load(), errors.New("core: engine not built")
	}

	sc := viewScratchPool.Get().(*viewScratch)
	putScratch := func() { viewScratchPool.Put(sc) }

	// The dedup map must exist before the call: AppendQuery allocates its
	// own map when handed nil and never returns it, so a nil map here would
	// mean a fresh allocation on every query — exactly the per-query
	// candidate-collection cost the scratch pool exists to recycle.
	if sc.seen == nil {
		sc.seen = make(map[lsh.ItemID]struct{})
	}
	ids, err := v.index.AppendQuery(sc.ids[:0], sc.seen, probeSparse.Bits)
	sc.ids = ids
	if err != nil {
		putScratch()
		return nil, v.epoch, err
	}
	// With a populated cold tier the probe may still hit spilled entries
	// even when every hot bucket came up empty.
	coldActive := v.cold != nil && v.cold.Len() > 0
	if len(ids) == 0 && !coldActive {
		putScratch()
		return nil, v.epoch, nil
	}

	sc.words = bloom.AppendPacked(sc.words, probeSparse.M, probeSparse.Bits)
	probeWords := sc.words

	if cap(sc.results) < len(ids) {
		sc.results = make([]SearchResult, len(ids))
	}
	results := sc.results[:len(ids)]

	// Fetch and score fused, split across workers: each candidate is one
	// constant-width lock-free table probe plus one word-parallel popcount
	// pass — independent work, no shared writes except each worker's own
	// result slots and SimCost scratch.
	nw := workers
	if nw <= 0 {
		nw = 1
	}
	if nw > len(ids) {
		nw = len(ids)
	}
	var qc SimCost
	score := func(lo, hi int, qc *SimCost) {
		for i := lo; i < hi; i++ {
			slot, ok := v.table.Lookup(uint64(ids[i]))
			if !ok {
				results[i] = SearchResult{Score: -1}
				continue
			}
			ent := &v.entries[slot]
			// Charge the summary fetch exactly as the locked path does
			// (which charges every found candidate before scoring).
			sz := int64(ent.summary.SizeBytes())
			qc.charge(e.ram.RandomRead(sz), sz)
			if ent.summary.M != probeSparse.M {
				results[i] = SearchResult{Score: -1}
				continue
			}
			results[i] = SearchResult{ID: ent.id, Score: bloom.JaccardPacked(probeWords, ent.words)}
		}
	}
	if nw <= 1 {
		score(0, len(ids), &qc)
	} else {
		qcs := make([]SimCost, nw)
		var wg sync.WaitGroup
		chunk := (len(ids) + nw - 1) / nw
		for w := 0; w < nw; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > len(ids) {
				hi = len(ids)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				score(lo, hi, &qcs[w])
			}(w, lo, hi)
		}
		wg.Wait()
		for i := range qcs {
			qc.StorageTime += qcs[i].StorageTime
			qc.ComputeTime += qcs[i].ComputeTime
			qc.Accesses += qcs[i].Accesses
			qc.BytesMoved += qcs[i].BytesMoved
		}
	}

	// Spill to the cold tier: scan the same band buckets on disk, skipping
	// anything the hot probe already collected (sc.seen holds the hot
	// candidate set), so the union candidate set — and with the shared
	// total-order sort below, the answer — matches an all-RAM engine over
	// the union corpus.
	if coldActive {
		sc.bandKeys, err = v.index.AppendBandKeys(sc.bandKeys[:0], probeSparse.Bits)
		if err != nil {
			putScratch()
			return nil, v.epoch, err
		}
		if cap(sc.cwords) < len(probeWords) {
			sc.cwords = make([]uint64, len(probeWords))
		}
		results = appendColdHits(v.cold, v.coldStore, sc.bandKeys, probeWords,
			sc.seen, results, sc.cwords[:len(probeWords)], v.coldDisk, &qc)
	}

	// Filter and rank.
	kept := results[:0]
	for _, r := range results {
		if r.Score >= v.minScore {
			kept = append(kept, r)
		}
	}
	sortResults(kept)

	// Group expansion against the same view (see searchSummary for the
	// rationale); member lookups go through the frozen table, which holds
	// exactly the live id → slot mapping byID holds.
	if v.expand > 0 {
		if sc.inResult == nil {
			sc.inResult = make(map[uint64]bool, len(kept))
		} else {
			clear(sc.inResult)
		}
		inResult := sc.inResult
		for _, r := range kept {
			inResult[r.ID] = true
		}
		expandFrom := v.expand
		if expandFrom > len(kept) {
			expandFrom = len(kept)
		}
		for h := 0; h < expandFrom; h++ {
			hit := kept[h]
			// Resolve the representative's summary from whichever tier
			// holds it; a cold rep's bits are reconstructed from its packed
			// words (exact inverse of packing), so the member re-probe uses
			// the identical element set the all-hot engine would.
			var repWords []uint64
			var repBits []uint32
			var repM uint32
			if slot, ok := v.table.Lookup(hit.ID); ok {
				rep := &v.entries[slot]
				if rep.summary == nil || len(rep.summary.Bits) == 0 {
					continue
				}
				repWords, repBits, repM = rep.words, rep.summary.Bits, rep.summary.M
			} else if coldActive {
				seg, rec, ok := v.cold.Lookup(hit.ID)
				if !ok {
					continue
				}
				if cap(sc.rwords) < len(probeWords) {
					sc.rwords = make([]uint64, len(probeWords))
				}
				repWords = seg.RecordWords(rec, sc.rwords[:len(probeWords)])
				sc.gbits = bloom.AppendBits(sc.gbits[:0], repWords)
				repBits = sc.gbits
				if len(repBits) == 0 {
					continue
				}
				repM = probeSparse.M // cold geometry is pinned to the engine's
			} else {
				continue
			}
			if sc.gseen == nil {
				sc.gseen = make(map[lsh.ItemID]struct{})
			}
			gids, err := v.index.AppendQuery(sc.gids[:0], sc.gseen, repBits)
			sc.gids = gids
			if err != nil {
				continue
			}
			for _, gid := range gids {
				id := uint64(gid)
				if inResult[id] {
					continue
				}
				gslot, ok := v.table.Lookup(id)
				if !ok {
					continue
				}
				g := &v.entries[gslot]
				if g.summary == nil || g.summary.M != repM {
					continue
				}
				sim := bloom.JaccardPacked(repWords, g.words)
				if sim < v.minScore {
					continue
				}
				qc.charge(e.ram.RandomRead(int64(g.summary.SizeBytes())), 0)
				inResult[id] = true
				kept = append(kept, SearchResult{ID: id, Score: hit.Score * sim})
			}
			// Cold groupmates: scan the rep's band buckets on disk. gseen
			// holds the hot members AppendQuery just collected, so each
			// member scores once no matter which tier holds it.
			if coldActive && repM == probeSparse.M {
				sc.gkeys, err = v.index.AppendBandKeys(sc.gkeys[:0], repBits)
				if err != nil {
					continue
				}
				if cap(sc.cwords) < len(probeWords) {
					sc.cwords = make([]uint64, len(probeWords))
				}
				kept = appendColdMembers(v.cold, v.coldStore, sc.gkeys, repWords,
					hit.Score, v.minScore, inResult, sc.gseen, kept,
					sc.cwords[:len(probeWords)], v.coldDisk, &qc)
			}
		}
		sortResults(kept)
	}

	if len(kept) > topK {
		kept = kept[:topK]
	}
	out := append([]SearchResult(nil), kept...)

	if cap(kept) > cap(sc.results) {
		sc.results = kept[:0]
	}
	putScratch()
	e.flushSim(qc)
	return out, v.epoch, nil
}
