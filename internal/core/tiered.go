package core

import (
	"errors"
	"fmt"
	"sort"

	"github.com/fastrepro/fast/internal/bloom"
	"github.com/fastrepro/fast/internal/failpoint"
	"github.com/fastrepro/fast/internal/lsh"
	"github.com/fastrepro/fast/internal/store"
	"github.com/fastrepro/fast/internal/tiered"
)

// The disk-resident cold tier.
//
// Everything the engine serves normally lives in RAM, which caps corpus
// size by heap. With a cold tier enabled the index becomes two tiers: the
// hot tier is the existing lock-free epoch-published view, untouched on its
// fast path, and the cold tier (internal/tiered) holds entries migrated out
// of RAM in an on-disk IVF layout — LSH band bucket → postings list of
// packed summaries — mmap'd read-only and scanned sequentially per probed
// bucket. Queries probe hot first and spill to the cold postings of the
// same band keys, so the union candidate set is exactly what an all-RAM
// engine over the union corpus would collect, the scores are the same
// word-parallel Jaccard over the same packed words, and the final ranking
// goes through the same total-order comparator — a tiered engine answers
// byte-identically to the all-hot oracle (enforced by the property and
// crash-matrix tests).
//
// Migration protocol (MigrateCold, all under e.mu):
//
//  1. select the oldest live featured entries (slot order = insertion
//     order; featureless entries have no band keys and stay hot);
//  2. tiered.Store.Migrate writes + publishes a segment and the catalog
//     naming it (failpoints tiered/segment-write and
//     tiered/segment-publish bracket this);
//  3. failpoint tiered/migrate — a death here leaves the batch resident in
//     BOTH tiers: queries dedup dual-resident ids in the meantime, and
//     EnableColdTier reconciles at next open by finishing the hot removal;
//  4. remove the batch from the hot structures, bump the epoch, republish.
//
// Deletes against cold entries become catalog tombstones; the background
// compactor folds them away by rewriting the cold tier (CompactColdTier),
// which preserves answers exactly (same ids, same words, same keys).

// TieredStats is the cold-tier block of EngineStats, surfaced by /v1/stats
// as the tiered_* fields.
type TieredStats struct {
	Enabled             bool
	HotEntries          int // live entries resident in RAM
	ColdEntries         int // live entries served from disk (net of dual-resident crash debris)
	Segments            int
	Tombstones          int
	ColdDiskBytes       int64
	Migrations          int64
	Compactions         int64
	SpillProbes         int64 // cold buckets scanned by queries
	ColdPostingsScanned int64
	ColdBytesScanned    int64
	Watermark           int
}

// EnableColdTier opens (or initializes) the cold tier at dir and attaches
// it to a built engine. watermark > 0 starts the background compactor: when
// the hot tier grows past watermark live entries, the oldest are frozen
// into cold segments in batches of batch (0 means 256). Ids found resident
// in both tiers — debris of a migration that died between the cold publish
// and the hot removal — are reconciled by finishing the removal, since cold
// ownership is the durable side. Returns the stale files swept from dir.
func (e *Engine) EnableColdTier(dir string, watermark, batch int) ([]string, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.index == nil {
		return nil, errors.New("core: engine must be built before enabling the cold tier")
	}
	if e.cold != nil {
		return nil, errors.New("core: cold tier already enabled")
	}
	if batch <= 0 {
		batch = 256
	}
	cold, swept, err := tiered.Open(tiered.Options{
		Dir:    dir,
		M:      e.cfg.Summary.Bits,
		K:      e.cfg.Summary.K,
		Bands:  e.index.Params().Bands,
		SeedFP: e.index.SeedFingerprint(),
	})
	if err != nil {
		return nil, err
	}
	e.cold = cold
	e.coldDisk = store.SSD()
	e.cfg.ColdDir, e.cfg.ColdWatermark, e.cfg.ColdBatch = dir, watermark, batch
	e.reconcileColdLocked()
	e.epoch.Add(1) // answers now cover the union corpus
	e.publishLocked(true, nil, nil)
	e.startCompactorLocked()
	// A snapshot-bootstrapped hot tier may already be over the watermark:
	// start draining now rather than waiting for the first insert.
	e.maybeKickColdLocked()
	return swept, nil
}

// OpenColdTier is EnableColdTier driven by the Config.ColdTier* knobs; a
// no-op when Config.ColdDir is empty.
func (e *Engine) OpenColdTier() ([]string, error) {
	if e.cfg.ColdDir == "" {
		return nil, nil
	}
	return e.EnableColdTier(e.cfg.ColdDir, e.cfg.ColdWatermark, e.cfg.ColdBatch)
}

// AdoptColdTier transfers old's cold tier to e — the snapshot-restore hot
// swap: the restored engine takes over the open store (mappings and all, so
// in-flight queries against old keep scanning valid memory) instead of
// re-opening the directory. old's compactor is stopped first; e's starts
// under the carried-over watermark. A no-op when old has no cold tier.
func (e *Engine) AdoptColdTier(old *Engine) error {
	if old == nil {
		return nil
	}
	old.mu.Lock()
	cold := old.cold
	stop, done := old.coldStop, old.coldDone
	dir, wm, batch := old.cfg.ColdDir, old.cfg.ColdWatermark, old.cfg.ColdBatch
	disk := old.coldDisk
	old.cold = nil
	old.coldStop, old.coldDone, old.coldKick = nil, nil, nil
	old.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	if cold == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.index == nil {
		cold.Close()
		return errors.New("core: engine must be built before adopting a cold tier")
	}
	if e.cold != nil {
		cold.Close()
		return errors.New("core: cold tier already enabled")
	}
	if opts := cold.Options(); opts.M != e.cfg.Summary.Bits || opts.K != e.cfg.Summary.K ||
		opts.Bands != e.index.Params().Bands || opts.SeedFP != e.index.SeedFingerprint() {
		return fmt.Errorf("core: cold tier geometry does not match the restored engine")
	}
	e.cold = cold
	e.coldDisk = disk
	e.cfg.ColdDir, e.cfg.ColdWatermark, e.cfg.ColdBatch = dir, wm, batch
	e.reconcileColdLocked()
	e.epoch.Add(1)
	e.publishLocked(true, nil, nil)
	e.startCompactorLocked()
	// A restored hot tier may exceed the watermark immediately (the
	// snapshot's corpus is independent of the adopted tier's history).
	e.maybeKickColdLocked()
	return nil
}

// CloseColdTier stops the compactor, detaches the cold tier and unmaps its
// segments. Callers must have drained queries first (the serving layer's
// shutdown path); after it returns the engine answers from the hot tier
// alone.
func (e *Engine) CloseColdTier() error {
	e.mu.Lock()
	cold := e.cold
	stop, done := e.coldStop, e.coldDone
	e.cold = nil
	e.coldStop, e.coldDone, e.coldKick = nil, nil, nil
	if cold != nil {
		e.epoch.Add(1)
		e.publishLocked(true, nil, nil)
	}
	e.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	if cold == nil {
		return nil
	}
	return cold.Close()
}

// ColdStats returns the cold tier's counters (zero when disabled).
func (e *Engine) ColdStats() tiered.Stats {
	e.mu.RLock()
	cold := e.cold
	e.mu.RUnlock()
	if cold == nil {
		return tiered.Stats{}
	}
	return cold.Stats()
}

// reconcileColdLocked finishes interrupted migrations: any id the durable
// cold catalog owns is removed from the hot structures.
func (e *Engine) reconcileColdLocked() {
	var dup []uint64
	for _, id := range e.cold.AppendIDs(nil) {
		if _, ok := e.byID[id]; ok {
			dup = append(dup, id)
		}
	}
	if len(dup) == 0 {
		return
	}
	e.removeHotLocked(dup)
}

// removeHotLocked drops ids from the LSH index, the flat table, the entry
// storage (copy-on-write tombstones, one pass) and byID. Callers republish.
func (e *Engine) removeHotLocked(ids []uint64) {
	next := make([]entry, len(e.entries), cap(e.entries))
	copy(next, e.entries)
	for _, id := range ids {
		slot, ok := e.byID[id]
		if !ok {
			continue
		}
		sp := next[slot].summary
		if sp != nil && len(sp.Bits) > 0 {
			e.index.Delete(lsh.ItemID(id), sp.Bits)
		}
		e.table.Delete(id)
		delete(e.byID, id)
		next[slot] = entry{}
	}
	e.entries = next
}

// startCompactorLocked launches the background compactor when a watermark
// is configured. Callers hold e.mu and have set e.cold.
func (e *Engine) startCompactorLocked() {
	if e.cfg.ColdWatermark <= 0 {
		return
	}
	e.coldKick = make(chan struct{}, 1)
	e.coldStop = make(chan struct{})
	e.coldDone = make(chan struct{})
	go e.coldCompactor(e.cold, e.coldKick, e.coldStop, e.coldDone)
}

// maybeKickColdLocked nudges the compactor when the hot tier is over its
// watermark; non-blocking, so the ingest path never waits on migration.
func (e *Engine) maybeKickColdLocked() {
	if e.coldKick == nil || len(e.byID) <= e.cfg.ColdWatermark {
		return
	}
	select {
	case e.coldKick <- struct{}{}:
	default:
	}
}

// coldCompactor is the background migration loop: on every kick it drains
// the hot tier down to the watermark in batches, then rewrites the cold
// tier if enough of its records are dead (tombstoned or superseded). It
// takes the store and channels as arguments so a concurrent Close/Adopt
// detaching them from the engine cannot race its loop.
func (e *Engine) coldCompactor(cold *tiered.Store, kick, stop, done chan struct{}) {
	defer close(done)
	for {
		select {
		case <-stop:
			return
		case <-kick:
		}
		for {
			e.mu.RLock()
			hot, wm, batch := len(e.byID), e.cfg.ColdWatermark, e.cfg.ColdBatch
			e.mu.RUnlock()
			if hot <= wm {
				break
			}
			// Never drain below the watermark: the hot tier is the fast
			// path for the most recent entries, not a staging buffer.
			if over := hot - wm; over < batch {
				batch = over
			}
			n, err := e.MigrateCold(batch)
			if n == 0 || err != nil {
				break
			}
			select {
			case <-stop:
				return
			default:
			}
		}
		// Rewrite when over half the on-disk records score nothing.
		if cold.DeadFraction() > 0.5 {
			e.CompactColdTier()
		}
	}
}

// MigrateCold freezes up to max of the oldest live featured hot entries
// into a new cold segment and removes them from RAM. Returns how many
// entries moved. Featureless entries (empty summaries) have no band keys
// and stay hot forever; ids already cold (dual-resident crash debris) are
// skipped. Answers over the union corpus are unchanged: the entries keep
// their exact packed words and land in cold buckets keyed identically to
// the hot buckets they leave.
func (e *Engine) MigrateCold(max int) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cold == nil {
		return 0, errors.New("core: cold tier not enabled")
	}
	if e.index == nil {
		return 0, errors.New("core: engine not built")
	}
	if max <= 0 {
		max = 256
	}
	batch := make([]tiered.Entry, 0, max)
	ids := make([]uint64, 0, max)
	for slot := 0; slot < len(e.entries) && len(batch) < max; slot++ {
		ent := &e.entries[slot]
		if ent.summary == nil || len(ent.summary.Bits) == 0 {
			continue
		}
		if e.cold.Contains(ent.id) {
			continue
		}
		keys, err := e.index.AppendBandKeys(nil, ent.summary.Bits)
		if err != nil {
			return 0, fmt.Errorf("core: migrating photo %d: %w", ent.id, err)
		}
		batch = append(batch, tiered.Entry{ID: ent.id, Words: ent.words, Keys: keys})
		ids = append(ids, ent.id)
	}
	if len(batch) == 0 {
		return 0, nil
	}
	if err := e.cold.Migrate(batch); err != nil {
		return 0, err
	}
	// The batch is durably cold from here on. A death before the hot
	// removal below (the tiered/migrate site) leaves it dual-resident:
	// queries dedup it in the meantime and the next EnableColdTier
	// reconciles by finishing exactly this removal.
	if err := failpoint.Eval(failpoint.TieredMigrate); err != nil {
		return 0, fmt.Errorf("core: finishing migration: %w", err)
	}
	e.removeHotLocked(ids)
	e.epoch.Add(1)
	e.publishLocked(true, nil, nil)
	return len(batch), nil
}

// CompactColdTier rewrites the cold tier as a single segment holding
// exactly the live cold entries, folding away tombstones and records
// superseded by later migrations. Words are carried over verbatim and band
// keys recomputed under the same hash family (the seed matrix is a pure
// function of the LSH params), so answers are byte-identical across the
// rewrite.
func (e *Engine) CompactColdTier() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cold == nil {
		return errors.New("core: cold tier not enabled")
	}
	cv := e.cold.View()
	ids := cv.AppendIDs(nil)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	batch := make([]tiered.Entry, 0, len(ids))
	scratch := make([]uint64, bloom.PackedWords(e.cfg.Summary.Bits))
	var bits []uint32
	for _, id := range ids {
		seg, rec, ok := cv.Lookup(id)
		if !ok {
			continue
		}
		words := append([]uint64(nil), seg.RecordWords(rec, scratch)...)
		bits = bloom.AppendBits(bits[:0], words)
		keys, err := e.index.AppendBandKeys(nil, bits)
		if err != nil {
			return fmt.Errorf("core: compacting cold photo %d: %w", id, err)
		}
		batch = append(batch, tiered.Entry{ID: id, Words: words, Keys: keys})
	}
	if err := e.cold.ReplaceAll(batch); err != nil {
		return err
	}
	e.epoch.Add(1) // conservative: cached results reference nothing stale, but cheap
	e.publishLocked(true, nil, nil)
	return nil
}

// appendColdHits scans every probed cold bucket — the probe's band keys
// against every live segment — and appends one scored candidate per live,
// unseen posting. seen is the hot candidate set, so dual-resident ids and
// cross-bucket duplicates score exactly once; the owner check skips stale
// postings (tombstoned or superseded records). Scores are the same
// word-parallel Jaccard the hot path computes over the same packed words.
// Every probed bucket is one modeled seek + sequential transfer. No
// closures, no allocations beyond dst growth.
func appendColdHits(cv *tiered.View, coldStore *tiered.Store, bandKeys, probeWords []uint64,
	seen map[lsh.ItemID]struct{}, dst []SearchResult, scratch []uint64,
	disk store.DiskModel, qc *SimCost) []SearchResult {
	var probes, recs, bytes int64
	segs := cv.Segments()
	for b, key := range bandKeys {
		for si := range segs {
			p := segs[si].Bucket(b, key)
			n := p.Len()
			if n == 0 {
				continue
			}
			probes++
			recs += int64(n)
			bb := p.Bytes()
			bytes += bb
			qc.charge(disk.RandomRead(bb), bb)
			for i := 0; i < n; i++ {
				id := p.ID(i)
				if !cv.Owns(id, si) {
					continue
				}
				if _, dup := seen[lsh.ItemID(id)]; dup {
					continue
				}
				seen[lsh.ItemID(id)] = struct{}{}
				dst = append(dst, SearchResult{ID: id, Score: bloom.JaccardPacked(probeWords, p.Words(i, scratch))})
			}
		}
	}
	if coldStore != nil {
		coldStore.NoteSpill(probes, recs, bytes)
	}
	return dst
}

// appendColdMembers is the group-expansion form of the cold spill: scan the
// representative's cold buckets and append qualifying groupmates. gseen
// already holds the hot groupmates (AppendQuery filled it), so the same map
// dedups cold cross-bucket repeats and dual residents; inResult and the
// minScore filter mirror the hot member loop exactly, as does the
// hit.Score·sim member scoring.
func appendColdMembers(cv *tiered.View, coldStore *tiered.Store, repKeys, repWords []uint64,
	hitScore, minScore float64, inResult map[uint64]bool, gseen map[lsh.ItemID]struct{},
	kept []SearchResult, scratch []uint64, disk store.DiskModel, qc *SimCost) []SearchResult {
	var probes, recs, bytes int64
	segs := cv.Segments()
	for b, key := range repKeys {
		for si := range segs {
			p := segs[si].Bucket(b, key)
			n := p.Len()
			if n == 0 {
				continue
			}
			probes++
			recs += int64(n)
			bb := p.Bytes()
			bytes += bb
			qc.charge(disk.RandomRead(bb), bb)
			for i := 0; i < n; i++ {
				id := p.ID(i)
				if !cv.Owns(id, si) {
					continue
				}
				if _, dup := gseen[lsh.ItemID(id)]; dup {
					continue
				}
				gseen[lsh.ItemID(id)] = struct{}{}
				if inResult[id] {
					continue
				}
				sim := bloom.JaccardPacked(repWords, p.Words(i, scratch))
				if sim < minScore {
					continue
				}
				inResult[id] = true
				kept = append(kept, SearchResult{ID: id, Score: hitScore * sim})
			}
		}
	}
	if coldStore != nil {
		coldStore.NoteSpill(probes, recs, bytes)
	}
	return kept
}
