package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestCacheEquivalenceRandomInterleavings drives two engines — one with
// both cache tiers enabled, one with caching off — through identical
// seeded-random interleavings of insert, delete, and query operations.
// Every query must answer byte-identically on both engines (and match the
// cached engine's own uncached reference path), no matter where in the
// mutation stream it lands. This generalizes the fixed-sequence mutation
// test into a property over random schedules.
func TestCacheEquivalenceRandomInterleavings(t *testing.T) {
	ds := testDatasetCached(t)
	for _, seed := range []int64{7, 1234, 987654} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cached := NewEngine(Config{SummaryCache: 128, ResultCache: 128})
			plain := NewEngine(Config{})
			if _, err := cached.Build(ds.Photos); err != nil {
				t.Fatalf("Build(cached): %v", err)
			}
			if _, err := plain.Build(ds.Photos); err != nil {
				t.Fatalf("Build(plain): %v", err)
			}
			qs, err := ds.Queries(6, seed)
			if err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(seed))
			live := make([]uint64, 0, len(ds.Photos))
			for _, p := range ds.Photos {
				live = append(live, p.ID)
			}
			nextID := uint64(910000 + seed*1000)

			for op := 0; op < 120; op++ {
				switch rng.Intn(4) {
				case 0: // insert a fresh photo into both engines
					nextID++
					fresh := ds.FreshPhoto(nextID, seed+int64(op))
					if err := cached.Insert(fresh); err != nil {
						t.Fatalf("op %d: Insert(cached): %v", op, err)
					}
					if err := plain.Insert(fresh); err != nil {
						t.Fatalf("op %d: Insert(plain): %v", op, err)
					}
					live = append(live, nextID)
				case 1: // delete a random live photo from both engines
					if len(live) == 0 {
						continue
					}
					i := rng.Intn(len(live))
					victim := live[i]
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
					if err := cached.Delete(victim); err != nil {
						t.Fatalf("op %d: Delete(cached, %d): %v", op, victim, err)
					}
					if err := plain.Delete(victim); err != nil {
						t.Fatalf("op %d: Delete(plain, %d): %v", op, victim, err)
					}
				default: // query — biased so warm-cache hits interleave mutations
					q := qs[rng.Intn(len(qs))]
					topK := []int{5, 25, 60}[rng.Intn(3)]
					want, err := cached.QueryUncached(q.Probe, topK)
					if err != nil {
						t.Fatalf("op %d: QueryUncached: %v", op, err)
					}
					got, err := cached.Query(q.Probe, topK)
					if err != nil {
						t.Fatalf("op %d: Query(cached): %v", op, err)
					}
					sameResults(t, fmt.Sprintf("op %d cached-vs-uncached", op), got, want)
					off, err := plain.Query(q.Probe, topK)
					if err != nil {
						t.Fatalf("op %d: Query(plain): %v", op, err)
					}
					sameResults(t, fmt.Sprintf("op %d cached-vs-cacheless", op), got, off)
				}
			}
			if cached.Len() != plain.Len() {
				t.Fatalf("engines diverged in size: %d vs %d", cached.Len(), plain.Len())
			}
			// The schedule must actually have exercised the caches.
			if st := cached.CacheStats(); st.Summary.Hits == 0 {
				t.Error("random schedule produced no summary-tier hits")
			}
		})
	}
}
